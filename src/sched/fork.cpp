#include "sched/fork.hpp"

namespace grid::sched {

ForkScheduler::ForkScheduler(sim::Engine& engine,
                             sim::Time fork_cost_per_process,
                             std::int32_t nominal_processors)
    : engine_(&engine),
      fork_cost_(fork_cost_per_process),
      nominal_(nominal_processors) {}

util::Status ForkScheduler::submit(const JobDescriptor& job, StartFn on_start,
                                   EndFn on_end) {
  if (job.count < 1) {
    return {util::ErrorCode::kInvalidArgument, "count must be >= 1"};
  }
  if (jobs_.find(job.id) != nullptr) {
    return {util::ErrorCode::kInvalidArgument, "duplicate job id"};
  }
  Running r;
  r.desc = job;
  r.on_end = std::move(on_end);
  const sim::Time delay = fork_cost_ * job.count;
  Running& slot = jobs_.emplace(job.id, std::move(r));
  slot.start_event = engine_->schedule_after(
      delay, [this, id = job.id, on_start = std::move(on_start)] {
        start_job(id, on_start);
      });
  return util::Status::ok();
}

void ForkScheduler::start_job(JobId id, StartFn on_start) {
  Running* found = jobs_.find(id);
  if (found == nullptr) return;
  Running& r = *found;
  r.started = true;
  running_count_ += r.desc.count;
  ++version_;
  if (r.desc.runtime > 0) {
    r.runtime_event = engine_->schedule_after(
        r.desc.runtime, [this, id] { end_job(id, EndReason::kCompleted); });
  }
  if (r.desc.max_wall_time > 0) {
    r.wall_event = engine_->schedule_after(r.desc.max_wall_time, [this, id] {
      end_job(id, EndReason::kWallTimeExceeded);
    });
  }
  if (on_start) on_start(id);
}

void ForkScheduler::end_job(JobId id, EndReason reason) {
  Running* found = jobs_.find(id);
  if (found == nullptr) return;
  Running r = std::move(*found);
  jobs_.erase(id);
  engine_->cancel(r.start_event);
  engine_->cancel(r.runtime_event);
  engine_->cancel(r.wall_event);
  if (r.started) running_count_ -= r.desc.count;
  ++version_;
  if (r.on_end) r.on_end(id, reason);
}

void ForkScheduler::complete(JobId id) { end_job(id, EndReason::kCompleted); }

bool ForkScheduler::cancel(JobId id) {
  if (jobs_.find(id) == nullptr) return false;
  end_job(id, EndReason::kCancelled);
  return true;
}

QueueSnapshot ForkScheduler::snapshot() const {
  QueueSnapshot s;
  s.taken_at = engine_->now();
  s.total_processors = total_processors();
  s.busy_processors = running_count_;
  return s;
}

QueueSummary ForkScheduler::summary() const {
  QueueSummary s;
  s.taken_at = engine_->now();
  s.total_processors = total_processors();
  s.busy_processors = running_count_;
  return s;
}

}  // namespace grid::sched
