#include "sched/profile.hpp"

#include <algorithm>

#include "simkit/check.hpp"

namespace grid::sched {

Profile::Profile(std::int32_t capacity) : capacity_(capacity) {
  GRID_CHECK(capacity >= 0, "Profile capacity must be non-negative");
  intervals_.push_back(Interval{0, capacity_});
}

std::size_t Profile::index_of(sim::Time t) const {
  // Last interval with start <= t; times before the head clamp to it.
  const auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](sim::Time v, const Interval& iv) { return v < iv.start; });
  if (it == intervals_.begin()) return 0;
  return static_cast<std::size_t>(it - intervals_.begin()) - 1;
}

std::size_t Profile::split_at(sim::Time t) {
  std::size_t i = index_of(t);
  if (intervals_[i].start == t || t < intervals_[i].start) return i;
  intervals_.insert(intervals_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                    Interval{t, intervals_[i].free});
  return i + 1;
}

void Profile::apply(sim::Time start, sim::Time end, std::int32_t delta) {
  if (delta == 0 || start >= end) return;
  // The past before the head breakpoint is forgotten; clamp into range.
  if (start < intervals_.front().start) start = intervals_.front().start;
  if (start >= end) return;
  const std::size_t lo = split_at(start);
  const std::size_t hi = split_at(end);  // first interval NOT affected
  for (std::size_t i = lo; i < hi; ++i) {
    intervals_[i].free += delta;
    GRID_CHECK(intervals_[i].free >= 0,
               "Profile oversubscribed: free below zero");
    GRID_CHECK(intervals_[i].free <= capacity_,
               "Profile release exceeds capacity");
  }
  // Re-coalesce around the touched range so the form stays canonical.
  const std::size_t from = lo > 0 ? lo - 1 : 0;
  std::size_t w = from;
  for (std::size_t r = from + 1; r < intervals_.size(); ++r) {
    if (r <= hi + 1 && intervals_[r].free == intervals_[w].free) continue;
    intervals_[++w] = intervals_[r];
  }
  intervals_.resize(w + 1);
  audit();
}

void Profile::reserve(sim::Time start, sim::Time end, std::int32_t count) {
  GRID_CHECK(count >= 0, "Profile reserve with negative count");
  apply(start, end, -count);
}

void Profile::release(sim::Time start, sim::Time end, std::int32_t count) {
  GRID_CHECK(count >= 0, "Profile release with negative count");
  apply(start, end, count);
}

std::int32_t Profile::free_at(sim::Time t) const {
  return intervals_[index_of(t)].free;
}

Profile::Fit Profile::earliest_fit(sim::Time from, std::int32_t count,
                                   sim::Time duration) const {
  GRID_CHECK(count <= capacity_, "earliest_fit for more than capacity");
  std::size_t i = index_of(from);
  while (true) {
    if (intervals_[i].free >= count) {
      const sim::Time at = std::max(from, intervals_[i].start);
      const sim::Time until =
          duration >= sim::kTimeNever - at ? sim::kTimeNever : at + duration;
      // The window [at, until) must stay wide enough across intervals.
      std::size_t j = i;
      bool ok = true;
      while (j + 1 < intervals_.size() && intervals_[j + 1].start < until) {
        ++j;
        if (intervals_[j].free < count) {
          ok = false;
          break;
        }
      }
      if (ok) return Fit{at, intervals_[i].free};
      i = j;  // restart after the blocking interval
    }
    ++i;
    if (i >= intervals_.size()) {
      // Unreachable for count <= capacity: the final interval always has
      // free == capacity once every occupancy's end has passed.
      return Fit{sim::kTimeNever, intervals_.back().free};
    }
  }
}

std::int32_t Profile::min_free_over(sim::Time from, sim::Time to) const {
  GRID_CHECK(from < to, "min_free_over with an empty window");
  std::size_t i = index_of(from);
  std::int32_t best = intervals_[i].free;
  while (i + 1 < intervals_.size() && intervals_[i + 1].start < to) {
    ++i;
    best = std::min(best, intervals_[i].free);
  }
  return best;
}

std::int64_t Profile::busy_work_after(sim::Time from,
                                      std::int32_t exclude_busy) const {
  std::int64_t work = 0;
  const std::size_t first = index_of(from);
  for (std::size_t i = first; i + 1 < intervals_.size(); ++i) {
    const std::int32_t busy = capacity_ - intervals_[i].free;
    if (busy == exclude_busy) continue;
    GRID_CHECK(busy >= exclude_busy,
               "busy_work_after: exclude_busy exceeds busy");
    const sim::Time s = std::max(from, intervals_[i].start);
    const sim::Time e = intervals_[i + 1].start;
    if (e <= s) continue;
    work += static_cast<std::int64_t>(busy - exclude_busy) * (e - s);
  }
  // The last interval extends forever; its busy share must be exactly the
  // excluded never-ending occupancies or the integral would diverge.
  GRID_CHECK(capacity_ - intervals_.back().free <= exclude_busy,
             "busy_work_after: unbounded tail occupancy");
  return work;
}

void Profile::advance_to(sim::Time t) {
  const std::size_t i = index_of(t);
  if (i == 0) return;
  intervals_.erase(intervals_.begin(),
                   intervals_.begin() + static_cast<std::ptrdiff_t>(i));
  audit();
}

bool Profile::invariants_ok() const {
  if (intervals_.empty()) return false;
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    if (intervals_[i].free < 0 || intervals_[i].free > capacity_) return false;
    if (i > 0 && intervals_[i].start <= intervals_[i - 1].start) return false;
    if (i > 0 && intervals_[i].free == intervals_[i - 1].free) return false;
  }
  return true;
}

void Profile::audit() const {
  GRID_CHECK(invariants_ok(), "Profile interval list invariant violated");
}

}  // namespace grid::sched
