// Fork scheduler: queue-less, timeshared process creation.
//
// Reproduces the configuration of the paper's microbenchmarks (§4.2):
// "GRAM was configured to respond to allocation requests by immediately
// 'forking' the requested number of processes."  Start delay is the
// per-process fork cost times the process count (Figure 3: ~1 ms for one
// process); there is no capacity limit because the host timeshares.
#pragma once

#include "sched/scheduler.hpp"
#include "simkit/idmap.hpp"

namespace grid::sched {

class ForkScheduler final : public LocalScheduler {
 public:
  /// `nominal_processors` is the advertised machine size (information
  /// service / broker view); the timeshared scheduler does not enforce it.
  ForkScheduler(sim::Engine& engine, sim::Time fork_cost_per_process,
                std::int32_t nominal_processors = 0);

  util::Status submit(const JobDescriptor& job, StartFn on_start,
                      EndFn on_end) override;
  void complete(JobId id) override;
  bool cancel(JobId id) override;

  std::int32_t total_processors() const override {
    return nominal_ > 0 ? nominal_ : running_count_;
  }
  std::int32_t busy_processors() const override { return running_count_; }
  std::size_t queue_length() const override { return 0; }
  QueueSnapshot snapshot() const override;
  QueueSummary summary() const override;
  std::uint64_t version() const override { return version_; }
  std::string policy() const override { return "fork"; }

 private:
  struct Running {
    JobDescriptor desc;
    EndFn on_end;
    sim::EventId start_event;
    sim::EventId runtime_event;
    sim::EventId wall_event;
    bool started = false;
  };

  void start_job(JobId id, StartFn on_start);
  void end_job(JobId id, EndReason reason);

  sim::Engine* engine_;
  sim::Time fork_cost_;
  std::int32_t nominal_;
  sim::IdSlab<Running> jobs_;
  std::int32_t running_count_ = 0;
  std::uint64_t version_ = 1;  // dirty-flag counter (0 = untracked)
};

}  // namespace grid::sched
