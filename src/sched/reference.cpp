#include "sched/reference.hpp"

#include <algorithm>
#include <utility>

namespace grid::sched {

ReferenceBackfill::ReferenceBackfill(sim::Engine& engine,
                                     std::int32_t processors,
                                     Backfill backfill)
    : engine_(&engine),
      total_(processors),
      free_(processors),
      backfill_(backfill) {}

util::Status ReferenceBackfill::submit(const JobDescriptor& job,
                                       StartFn on_start, EndFn on_end) {
  if (job.count < 1) {
    return {util::ErrorCode::kInvalidArgument, "count must be >= 1"};
  }
  if (job.count > total_) {
    return {util::ErrorCode::kResourceExhausted,
            "job needs " + std::to_string(job.count) + " processors, machine has " +
                std::to_string(total_)};
  }
  if (job.id == 0) {
    return {util::ErrorCode::kInvalidArgument, "job id 0 is reserved"};
  }
  if (running_.find(job.id) != nullptr) {
    return {util::ErrorCode::kInvalidArgument, "duplicate job id"};
  }
  for (const Queued& entry : queue_) {  // the O(n) scan the IdMap replaced
    if (entry.desc.id == job.id) {
      return {util::ErrorCode::kInvalidArgument, "duplicate job id"};
    }
  }
  Queued q;
  q.desc = job;
  q.on_start = std::move(on_start);
  q.on_end = std::move(on_end);
  q.submitted_at = engine_->now();
  q.queue_length_at_submit = static_cast<std::int32_t>(queue_.size());
  q.queued_work_at_submit = current_queued_work();
  queue_.push_back(std::move(q));
  try_schedule();
  return util::Status::ok();
}

std::int64_t ReferenceBackfill::current_queued_work() const {
  const sim::Time now = engine_->now();
  std::int64_t total = 0;
  for (const Queued& q : queue_) {
    total += static_cast<std::int64_t>(q.desc.count) * q.desc.estimated_runtime;
  }
  running_.for_each([&](JobId, const Running& r) {
    if (r.est_end == sim::kTimeNever || r.est_end <= now) return;
    total += static_cast<std::int64_t>(r.desc.count) * (r.est_end - now);
  });
  return total;
}

sim::Time ReferenceBackfill::estimated_end(const JobDescriptor& d,
                                           sim::Time started) const {
  sim::Time length = 0;
  if (d.estimated_runtime > 0) {
    length = d.estimated_runtime;
  } else if (d.runtime > 0) {
    length = d.runtime;
  } else if (d.max_wall_time > 0) {
    length = d.max_wall_time;
  } else {
    return sim::kTimeNever;
  }
  if (length >= sim::kTimeNever - started) return sim::kTimeNever;
  return started + length;
}

void ReferenceBackfill::try_schedule() {
  if (scheduling_) return;
  scheduling_ = true;
  for (;;) {
    // FCFS: start head jobs while they fit.
    if (!queue_.empty() && queue_.front().desc.count <= free_) {
      Queued q = std::move(queue_.front());
      queue_.pop_front();
      start(std::move(q));
      continue;
    }
    break;
  }
  if (backfill_ == Backfill::kEasy && !queue_.empty()) {
    const sim::Time now = engine_->now();
    const std::int32_t head_count = queue_.front().desc.count;
    // Shadow state by direct simulation: release estimated ends in time
    // order (whole tie groups at once) until the head job fits.  Expired
    // estimates count as available immediately, so the shadow is never in
    // the past.
    std::int32_t avail = free_;
    std::vector<std::pair<sim::Time, std::int32_t>> ends;
    ends.reserve(running_.size());
    running_.for_each([&](JobId, const Running& r) {
      if (r.est_end <= now) {
        avail += r.desc.count;
      } else {
        ends.emplace_back(r.est_end, r.desc.count);
      }
    });
    std::sort(ends.begin(), ends.end());
    sim::Time shadow = sim::kTimeNever;
    std::int32_t extra = 0;
    if (avail >= head_count) {
      shadow = now;
      extra = avail - head_count;
    } else {
      for (std::size_t i = 0; i < ends.size();) {
        const sim::Time group_end = ends[i].first;
        for (; i < ends.size() && ends[i].first == group_end; ++i) {
          avail += ends[i].second;
        }
        if (avail >= head_count) {
          shadow = group_end;
          extra = avail - head_count;
          break;
        }
      }
    }
    // Backfill scan, restarted from the front after every start (the seed
    // loop shape).  Shadow and extra stay frozen for the whole pass.
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t i = 1; i < queue_.size(); ++i) {
        Queued& cand = queue_[i];
        if (cand.desc.count > free_) continue;
        const sim::Time est = cand.desc.estimated_runtime > 0
                                  ? cand.desc.estimated_runtime
                                  : cand.desc.runtime;
        const bool ends_before_shadow =
            shadow != sim::kTimeNever && est > 0 && now + est <= shadow;
        const bool within_extra = cand.desc.count <= extra;
        if (!ends_before_shadow && !within_extra) continue;
        if (!ends_before_shadow) extra -= cand.desc.count;
        Queued q = std::move(cand);
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        start(std::move(q));
        progress = true;
        break;
      }
    }
  }
  scheduling_ = false;
}

void ReferenceBackfill::start(Queued&& q) {
  free_ -= q.desc.count;
  Running r;
  r.desc = q.desc;
  r.on_end = std::move(q.on_end);
  r.started_at = engine_->now();
  r.est_end = estimated_end(r.desc, r.started_at);
  const JobId id = q.desc.id;
  history_.push_back(BatchScheduler::WaitObservation{
      q.submitted_at, r.started_at, q.desc.count, q.queue_length_at_submit,
      q.queued_work_at_submit});
  Running& slot = running_.emplace(id, std::move(r));
  if (slot.desc.runtime > 0) {
    slot.runtime_event = engine_->schedule_after(
        slot.desc.runtime,
        [this, id] { end_running(id, EndReason::kCompleted); });
  }
  if (slot.desc.max_wall_time > 0) {
    slot.wall_event = engine_->schedule_after(slot.desc.max_wall_time, [this, id] {
      end_running(id, EndReason::kWallTimeExceeded);
    });
  }
  if (q.on_start) q.on_start(id);
}

void ReferenceBackfill::end_running(JobId id, EndReason reason) {
  Running* found = running_.find(id);
  if (found == nullptr) return;
  Running r = std::move(*found);
  running_.erase(id);
  engine_->cancel(r.runtime_event);
  engine_->cancel(r.wall_event);
  free_ += r.desc.count;
  if (r.on_end) r.on_end(id, reason);
  try_schedule();
}

void ReferenceBackfill::complete(JobId id) {
  end_running(id, EndReason::kCompleted);
}

bool ReferenceBackfill::cancel(JobId id) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->desc.id == id) {
      Queued q = std::move(*it);
      queue_.erase(it);
      if (q.on_end) q.on_end(id, EndReason::kCancelled);
      try_schedule();
      return true;
    }
  }
  if (running_.find(id) != nullptr) {
    end_running(id, EndReason::kCancelled);
    return true;
  }
  return false;
}

QueueSnapshot ReferenceBackfill::snapshot() const {
  QueueSnapshot s;
  s.taken_at = engine_->now();
  s.total_processors = total_;
  s.busy_processors = total_ - free_;
  s.queued.reserve(queue_.size());
  for (const Queued& q : queue_) {
    s.queued.push_back(QueuedJobInfo{q.desc.id, q.desc.count,
                                     q.desc.estimated_runtime,
                                     q.submitted_at});
  }
  return s;
}

}  // namespace grid::sched
