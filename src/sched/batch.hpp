// Space-shared batch scheduler: FCFS, optionally with EASY backfill.
//
// Stands in for the production schedulers (LoadLeveler, PBS, NQE) whose
// queue waits dominate real co-allocation startup (paper §4.2's closing
// remark) and whose unpredictability motivates the forecast and
// reservation studies (§2.2, §5).
//
// Decisions are made against a time-indexed free-slot profile
// (sched::Profile) instead of rescans of the queue and the running set,
// so a submit into a 100k-deep queue costs O(log n) amortized rather than
// O(n).  The decision *semantics* are the EASY contract spelled out in
// DESIGN.md §5.4 and executable as sched::ReferenceBackfill
// (reference.hpp); tests/sched_diff_test.cpp holds the two equal on
// randomized workloads forever.
#pragma once

#include <deque>

#include "sched/profile.hpp"
#include "sched/scheduler.hpp"
#include "simkit/idmap.hpp"

namespace grid::sched {

enum class Backfill {
  kNone,  // pure FCFS
  kEasy,  // EASY: backfill only if the head job's start is not delayed
};

class BatchScheduler final : public LocalScheduler {
 public:
  BatchScheduler(sim::Engine& engine, std::int32_t processors,
                 Backfill backfill = Backfill::kNone);

  util::Status submit(const JobDescriptor& job, StartFn on_start,
                      EndFn on_end) override;
  void complete(JobId id) override;
  bool cancel(JobId id) override;

  std::int32_t total_processors() const override { return total_; }
  std::int32_t busy_processors() const override { return total_ - free_; }
  std::size_t queue_length() const override { return queue_.size(); }
  QueueSnapshot snapshot() const override;
  QueueSummary summary() const override;
  std::uint64_t version() const override { return version_; }
  std::string policy() const override {
    return backfill_ == Backfill::kEasy ? "easy-backfill" : "fcfs";
  }

  /// Caps the wait-history vector (`wait_history()`): recording stops once
  /// it holds `cap` observations.  Default is unlimited; sustained-load
  /// scenarios set a cap (or 0) so a million-job day does not accrete an
  /// unbounded observation log.
  void set_history_capacity(std::size_t cap) { history_capacity_ = cap; }

  /// Virtual-time wait statistics of started jobs, for predictor training.
  struct WaitObservation {
    sim::Time submitted_at = 0;
    sim::Time started_at = 0;
    std::int32_t count = 0;
    std::int32_t queue_length_at_submit = 0;
    std::int64_t queued_work_at_submit = 0;  // processor-ns ahead of the job
  };
  const std::vector<WaitObservation>& wait_history() const {
    return history_;
  }

  /// The free-slot profile the backfill decisions read (tests/benches).
  const Profile& profile() const { return profile_; }

 private:
  struct Queued {
    JobDescriptor desc;
    StartFn on_start;
    EndFn on_end;
    sim::Time submitted_at = 0;
    std::int32_t queue_length_at_submit = 0;
    std::int64_t queued_work_at_submit = 0;
  };
  struct Running {
    JobDescriptor desc;
    EndFn on_end;
    sim::Time started_at = 0;
    sim::Time est_end = 0;  // profile occupancy end fixed at start time
    sim::EventId runtime_event;
    sim::EventId wall_event;
  };

  /// Full scheduling pass: FCFS holds, then one EASY scan of the queue.
  void try_schedule();
  /// The EASY scan under a frozen (shadow, extra): starts admissible
  /// candidates, returns the remaining extra.  Restarts from the front
  /// when a start callback ends a job re-entrantly (the seed scan shape).
  std::int32_t backfill_scan(sim::Time now, sim::Time shadow,
                             std::int32_t extra);
  /// O(log n) fast path for a submit into an already-blocked queue; falls
  /// back to try_schedule() when the cached shadow state is stale.
  void submit_fast_path();
  void start(Queued&& q);
  void end_running(JobId id, EndReason reason);
  /// Estimated completion if started at `started` (kTimeNever when
  /// unknown); saturates instead of overflowing.
  sim::Time estimated_end(const JobDescriptor& d, sim::Time started) const;
  std::int64_t current_queued_work() const;
  /// Admission estimate for backfill: estimate else runtime (no wall
  /// fallback — mirrors the seed scan and the reference oracle).
  static sim::Time backfill_estimate(const JobDescriptor& d) {
    return d.estimated_runtime > 0 ? d.estimated_runtime : d.runtime;
  }

  sim::Engine* engine_;
  std::int32_t total_;
  std::int32_t free_;
  Backfill backfill_;
  std::deque<Queued> queue_;
  sim::IdSlab<Running> running_;
  sim::IdMap queued_ids_;  // queued job ids (duplicate/cancel lookups)
  Profile profile_;        // future free processors from running jobs
  std::int32_t unknown_busy_ = 0;  // running procs occupying to kTimeNever
  std::int64_t queued_work_ = 0;   // sum of count*estimate over the queue
  std::vector<WaitObservation> history_;
  std::size_t history_capacity_ = static_cast<std::size_t>(-1);
  bool scheduling_ = false;  // re-entrancy guard for try_schedule
  std::uint64_t state_gen_ = 0;  // bumped by end_running (re-entrant ends)
  std::uint64_t version_ = 1;    // dirty-flag counter (0 = untracked)
  // Shadow state cached by the last full EASY pass that left the head
  // blocked; lets a submit decide its own fate without rescanning.
  bool cache_valid_ = false;
  sim::Time cached_shadow_ = 0;
  std::int32_t cached_extra_ = 0;
};

}  // namespace grid::sched
