// Space-shared batch scheduler: FCFS, optionally with EASY backfill.
//
// Stands in for the production schedulers (LoadLeveler, PBS, NQE) whose
// queue waits dominate real co-allocation startup (paper §4.2's closing
// remark) and whose unpredictability motivates the forecast and
// reservation studies (§2.2, §5).
#pragma once

#include <deque>

#include "sched/scheduler.hpp"
#include "simkit/idmap.hpp"

namespace grid::sched {

enum class Backfill {
  kNone,  // pure FCFS
  kEasy,  // EASY: backfill only if the head job's start is not delayed
};

class BatchScheduler final : public LocalScheduler {
 public:
  BatchScheduler(sim::Engine& engine, std::int32_t processors,
                 Backfill backfill = Backfill::kNone);

  util::Status submit(const JobDescriptor& job, StartFn on_start,
                      EndFn on_end) override;
  void complete(JobId id) override;
  bool cancel(JobId id) override;

  std::int32_t total_processors() const override { return total_; }
  std::int32_t busy_processors() const override { return total_ - free_; }
  std::size_t queue_length() const override { return queue_.size(); }
  QueueSnapshot snapshot() const override;
  std::string policy() const override {
    return backfill_ == Backfill::kEasy ? "easy-backfill" : "fcfs";
  }

  /// Virtual-time wait statistics of started jobs, for predictor training.
  struct WaitObservation {
    sim::Time submitted_at = 0;
    sim::Time started_at = 0;
    std::int32_t count = 0;
    std::int32_t queue_length_at_submit = 0;
    std::int64_t queued_work_at_submit = 0;  // processor-ns ahead of the job
  };
  const std::vector<WaitObservation>& wait_history() const {
    return history_;
  }

 private:
  struct Queued {
    JobDescriptor desc;
    StartFn on_start;
    EndFn on_end;
    sim::Time submitted_at = 0;
    std::int32_t queue_length_at_submit = 0;
    std::int64_t queued_work_at_submit = 0;
  };
  struct Running {
    JobDescriptor desc;
    EndFn on_end;
    sim::Time started_at = 0;
    sim::EventId runtime_event;
    sim::EventId wall_event;
  };

  void try_schedule();
  void start(Queued&& q);
  void end_running(JobId id, EndReason reason);
  /// Estimated completion time of a running job (kTimeNever when unknown).
  sim::Time estimated_end(const Running& r) const;
  std::int64_t current_queued_work() const;

  sim::Engine* engine_;
  std::int32_t total_;
  std::int32_t free_;
  Backfill backfill_;
  std::deque<Queued> queue_;
  sim::IdSlab<Running> running_;
  std::vector<WaitObservation> history_;
  bool scheduling_ = false;  // re-entrancy guard for try_schedule
};

}  // namespace grid::sched
