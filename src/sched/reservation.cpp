#include "sched/reservation.hpp"

#include <algorithm>

namespace grid::sched {

ReservationScheduler::ReservationScheduler(sim::Engine& engine,
                                           std::int32_t processors,
                                           sim::Time default_estimate)
    : engine_(&engine), total_(processors),
      default_estimate_(default_estimate), res_(processors),
      commit_(processors) {}

sim::Time ReservationScheduler::job_estimate(const JobDescriptor& d) const {
  if (d.estimated_runtime > 0) return d.estimated_runtime;
  if (d.runtime > 0) return d.runtime;
  if (d.max_wall_time > 0) return d.max_wall_time;
  return default_estimate_;
}

sim::Time ReservationScheduler::horizon(sim::Time now, sim::Time length) const {
  return length >= sim::kTimeNever - now ? sim::kTimeNever : now + length;
}

std::int32_t ReservationScheduler::reserved_at(sim::Time t) const {
  // Public bookkeeping query, exact for any t including the past; the
  // decision paths read the profiles instead.
  std::int32_t sum = 0;
  for (const Reservation& r : reservations_) {
    if (r.start <= t && t < r.end) sum += r.count;
  }
  return sum;
}

util::Result<Reservation> ReservationScheduler::reserve(sim::Time start,
                                                        sim::Time end,
                                                        std::int32_t count) {
  const sim::Time now = engine_->now();
  if (start < now) start = now;
  if (end <= start) {
    return util::Status(util::ErrorCode::kInvalidArgument,
                        "reservation window is empty");
  }
  if (count < 1 || count > total_) {
    return util::Status(util::ErrorCode::kResourceExhausted,
                        "reservation for " + std::to_string(count) +
                            " processors on a " + std::to_string(total_) +
                            "-processor machine");
  }
  // Admission: everywhere in the window, existing reservations plus the
  // estimated tail of running best-effort work plus this reservation must
  // fit the machine.  The committed-load profile answers that as a single
  // range minimum.
  if (count > commit_.min_free_over(start, end)) {
    return util::Status(util::ErrorCode::kResourceExhausted,
                        "reservation window conflicts with existing load");
  }
  Reservation r;
  r.id = next_reservation_++;
  r.start = start;
  r.end = end;
  r.count = count;
  reservations_.push_back(r);
  res_.reserve(start, end, count);
  commit_.reserve(start, end, count);
  // Window-start: start any bound jobs; window-end: reclaim and kill.  The
  // profile occupancies simply elapse at window end — nothing to return.
  engine_->schedule_at(start, [this] { try_schedule(); });
  engine_->schedule_at(end, [this, rid = r.id] {
    std::vector<JobId> to_kill;
    running_.for_each([&](JobId jid, const Running& run) {
      if (run.reservation == rid) to_kill.push_back(jid);
    });
    for (JobId jid : to_kill) end_running(jid, EndReason::kWallTimeExceeded);
    std::erase_if(reservations_,
                  [rid](const Reservation& x) { return x.id == rid; });
    try_schedule();
  });
  return r;
}

bool ReservationScheduler::cancel_reservation(ReservationId id) {
  const auto it =
      std::find_if(reservations_.begin(), reservations_.end(),
                   [id](const Reservation& r) { return r.id == id; });
  if (it == reservations_.end()) return false;
  // Return the un-elapsed remainder of the window to both profiles.
  const sim::Time from = std::max(engine_->now(), it->start);
  if (from < it->end) {
    res_.release(from, it->end, it->count);
    commit_.release(from, it->end, it->count);
  }
  reservations_.erase(it);
  try_schedule();
  return true;
}

util::Status ReservationScheduler::submit_reserved(const JobDescriptor& job,
                                                   ReservationId rid,
                                                   StartFn on_start,
                                                   EndFn on_end) {
  auto it = std::find_if(reservations_.begin(), reservations_.end(),
                         [rid](const Reservation& r) { return r.id == rid; });
  if (it == reservations_.end()) {
    return {util::ErrorCode::kNotFound, "unknown reservation"};
  }
  if (job.count > it->count) {
    return {util::ErrorCode::kResourceExhausted,
            "job exceeds reservation capacity"};
  }
  Queued q;
  q.desc = job;
  q.on_start = std::move(on_start);
  q.on_end = std::move(on_end);
  q.submitted_at = engine_->now();
  q.reservation = rid;
  queued_work_ +=
      static_cast<std::int64_t>(job.count) * job.estimated_runtime;
  queue_.push_back(std::move(q));
  ++version_;
  try_schedule();
  return util::Status::ok();
}

util::Status ReservationScheduler::submit(const JobDescriptor& job,
                                          StartFn on_start, EndFn on_end) {
  if (job.count < 1) {
    return {util::ErrorCode::kInvalidArgument, "count must be >= 1"};
  }
  if (job.count > total_) {
    return {util::ErrorCode::kResourceExhausted, "job exceeds machine size"};
  }
  Queued q;
  q.desc = job;
  q.on_start = std::move(on_start);
  q.on_end = std::move(on_end);
  q.submitted_at = engine_->now();
  queued_work_ +=
      static_cast<std::int64_t>(job.count) * job.estimated_runtime;
  queue_.push_back(std::move(q));
  ++version_;
  try_schedule();
  return util::Status::ok();
}

void ReservationScheduler::try_schedule() {
  if (scheduling_) return;
  scheduling_ = true;
  const sim::Time now = engine_->now();
  res_.advance_to(now);
  commit_.advance_to(now);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Pass 1: reservation-bound jobs run in capacity that was blocked at
    // admission time, so they start the moment their window opens — they
    // are never gated behind the best-effort FCFS head.
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      Queued& q = queue_[i];
      if (q.reservation == 0) continue;
      auto it = std::find_if(
          reservations_.begin(), reservations_.end(),
          [&](const Reservation& r) { return r.id == q.reservation; });
      if (it == reservations_.end()) {
        // Reservation expired or cancelled before the job could start.
        Queued dead = std::move(q);
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        queued_work_ -= static_cast<std::int64_t>(dead.desc.count) *
                        dead.desc.estimated_runtime;
        ++version_;
        if (dead.on_end) dead.on_end(dead.desc.id, EndReason::kCancelled);
        progressed = true;
        break;
      }
      if (it->start <= now) {
        Queued ready = std::move(q);
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        queued_work_ -= static_cast<std::int64_t>(ready.desc.count) *
                        ready.desc.estimated_runtime;
        start(std::move(ready));
        progressed = true;
        break;
      }
    }
    if (progressed) continue;
    // Pass 2: best-effort FCFS — only the first best-effort job is
    // considered, and only if it cannot collide with any admitted window.
    // The peak reserved count over the job's estimated run is one range
    // query on the windows-only profile.
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      Queued& q = queue_[i];
      if (q.reservation != 0) continue;
      const sim::Time est = job_estimate(q.desc);
      const sim::Time until = horizon(now, est);
      const std::int32_t reserved_peak =
          until > now ? total_ - res_.min_free_over(now, until)
                      : total_ - res_.free_at(now);
      if (busy_best_ + q.desc.count + reserved_peak <= total_) {
        Queued ready = std::move(q);
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        queued_work_ -= static_cast<std::int64_t>(ready.desc.count) *
                        ready.desc.estimated_runtime;
        start(std::move(ready));
        progressed = true;
      }
      break;  // FCFS: never look past the first best-effort job
    }
  }
  scheduling_ = false;
}

void ReservationScheduler::start(Queued&& q) {
  busy_ += q.desc.count;
  ++version_;
  Running r;
  r.desc = q.desc;
  r.on_end = std::move(q.on_end);
  r.started_at = engine_->now();
  r.reservation = q.reservation;
  if (q.reservation == 0) {
    // A best-effort job commits its estimated tail so reservation
    // admission sees it; reserved jobs are accounted by their window.
    busy_best_ += q.desc.count;
    r.est_end = horizon(r.started_at, job_estimate(r.desc));
    commit_.reserve(r.started_at, r.est_end, r.desc.count);
  }
  const JobId id = q.desc.id;
  Running& slot = running_.emplace(id, std::move(r));
  if (slot.desc.runtime > 0) {
    slot.runtime_event = engine_->schedule_after(
        slot.desc.runtime,
        [this, id] { end_running(id, EndReason::kCompleted); });
  }
  if (slot.desc.max_wall_time > 0) {
    slot.wall_event = engine_->schedule_after(slot.desc.max_wall_time, [this, id] {
      end_running(id, EndReason::kWallTimeExceeded);
    });
  }
  if (q.on_start) q.on_start(id);
}

void ReservationScheduler::end_running(JobId id, EndReason reason) {
  Running* found = running_.find(id);
  if (found == nullptr) return;
  Running r = std::move(*found);
  running_.erase(id);
  engine_->cancel(r.runtime_event);
  engine_->cancel(r.wall_event);
  busy_ -= r.desc.count;
  ++version_;
  if (r.reservation == 0) {
    busy_best_ -= r.desc.count;
    const sim::Time now = engine_->now();
    if (r.est_end > now) {
      // Return the unused committed tail; a job that ran past its
      // estimate already elapsed out of the profile.
      commit_.release(now, r.est_end, r.desc.count);
    }
  }
  if (r.on_end) r.on_end(id, reason);
  try_schedule();
}

void ReservationScheduler::complete(JobId id) {
  end_running(id, EndReason::kCompleted);
}

bool ReservationScheduler::cancel(JobId id) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->desc.id == id) {
      Queued q = std::move(*it);
      queue_.erase(it);
      queued_work_ -= static_cast<std::int64_t>(q.desc.count) *
                      q.desc.estimated_runtime;
      ++version_;
      if (q.on_end) q.on_end(id, EndReason::kCancelled);
      try_schedule();
      return true;
    }
  }
  if (running_.find(id) != nullptr) {
    end_running(id, EndReason::kCancelled);
    return true;
  }
  return false;
}

QueueSummary ReservationScheduler::summary() const {
  QueueSummary s;
  s.taken_at = engine_->now();
  s.total_processors = total_;
  s.busy_processors = busy_;
  s.queue_length = static_cast<std::uint32_t>(queue_.size());
  s.queued_work = queued_work_;  // maintained incrementally at queue edits
  return s;
}

QueueSnapshot ReservationScheduler::snapshot() const {
  QueueSnapshot s;
  s.taken_at = engine_->now();
  s.total_processors = total_;
  s.busy_processors = busy_;
  for (const Queued& q : queue_) {
    s.queued.push_back(QueuedJobInfo{q.desc.id, q.desc.count,
                                     q.desc.estimated_runtime,
                                     q.submitted_at});
  }
  return s;
}

}  // namespace grid::sched
