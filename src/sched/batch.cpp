#include "sched/batch.hpp"

#include <algorithm>

namespace grid::sched {

std::int64_t QueueSnapshot::queued_work() const {
  std::int64_t total = 0;
  for (const QueuedJobInfo& j : queued) {
    total += static_cast<std::int64_t>(j.count) * j.estimated_runtime;
  }
  return total;
}

BatchScheduler::BatchScheduler(sim::Engine& engine, std::int32_t processors,
                               Backfill backfill)
    : engine_(&engine),
      total_(processors),
      free_(processors),
      backfill_(backfill) {}

util::Status BatchScheduler::submit(const JobDescriptor& job, StartFn on_start,
                                    EndFn on_end) {
  if (job.count < 1) {
    return {util::ErrorCode::kInvalidArgument, "count must be >= 1"};
  }
  if (job.count > total_) {
    return {util::ErrorCode::kResourceExhausted,
            "job needs " + std::to_string(job.count) + " processors, machine has " +
                std::to_string(total_)};
  }
  if (running_.find(job.id) != nullptr) {
    return {util::ErrorCode::kInvalidArgument, "duplicate job id"};
  }
  for (const Queued& q : queue_) {
    if (q.desc.id == job.id) {
      return {util::ErrorCode::kInvalidArgument, "duplicate job id"};
    }
  }
  Queued q;
  q.desc = job;
  q.on_start = std::move(on_start);
  q.on_end = std::move(on_end);
  q.submitted_at = engine_->now();
  q.queue_length_at_submit = static_cast<std::int32_t>(queue_.size());
  q.queued_work_at_submit = current_queued_work();
  queue_.push_back(std::move(q));
  try_schedule();
  return util::Status::ok();
}

std::int64_t BatchScheduler::current_queued_work() const {
  std::int64_t work = 0;
  for (const Queued& q : queue_) {
    work += static_cast<std::int64_t>(q.desc.count) * q.desc.estimated_runtime;
  }
  // Remaining work of running jobs also delays newcomers.
  const sim::Time now = engine_->now();
  running_.for_each([&](JobId, const Running& r) {
    const sim::Time end = estimated_end(r);
    if (end == sim::kTimeNever || end <= now) return;
    work += static_cast<std::int64_t>(r.desc.count) * (end - now);
  });
  return work;
}

sim::Time BatchScheduler::estimated_end(const Running& r) const {
  if (r.desc.estimated_runtime > 0) {
    return r.started_at + r.desc.estimated_runtime;
  }
  if (r.desc.runtime > 0) {
    return r.started_at + r.desc.runtime;
  }
  if (r.desc.max_wall_time > 0) {
    return r.started_at + r.desc.max_wall_time;
  }
  return sim::kTimeNever;
}

void BatchScheduler::try_schedule() {
  if (scheduling_) return;  // start callbacks may complete() synchronously
  scheduling_ = true;
  for (;;) {
    // FCFS: start head jobs while they fit.
    if (!queue_.empty() && queue_.front().desc.count <= free_) {
      Queued q = std::move(queue_.front());
      queue_.pop_front();
      start(std::move(q));
      continue;
    }
    break;
  }
  if (backfill_ == Backfill::kEasy && !queue_.empty()) {
    // Compute the shadow time: the earliest instant the head job could
    // start, assuming running jobs end at their estimated times.
    const Queued& head = queue_.front();
    std::vector<std::pair<sim::Time, std::int32_t>> ends;
    ends.reserve(running_.size());
    running_.for_each([&](JobId, const Running& r) {
      ends.emplace_back(estimated_end(r), r.desc.count);
    });
    std::sort(ends.begin(), ends.end());
    std::int32_t avail = free_;
    sim::Time shadow = sim::kTimeNever;
    std::int32_t extra = 0;
    for (const auto& [end, count] : ends) {
      avail += count;
      if (avail >= head.desc.count) {
        shadow = end;
        extra = avail - head.desc.count;
        break;
      }
    }
    // Backfill later jobs that fit now and either end by the shadow time or
    // use only the head job's spare processors.
    const sim::Time now = engine_->now();
    for (std::size_t i = 1; i < queue_.size();) {
      Queued& cand = queue_[i];
      if (cand.desc.count > free_) {
        ++i;
        continue;
      }
      const sim::Time est = cand.desc.estimated_runtime > 0
                                ? cand.desc.estimated_runtime
                                : cand.desc.runtime;
      const bool ends_before_shadow =
          shadow != sim::kTimeNever && est > 0 && now + est <= shadow;
      const bool within_extra = cand.desc.count <= extra;
      if (!ends_before_shadow && !within_extra) {
        ++i;
        continue;
      }
      if (!ends_before_shadow) extra -= cand.desc.count;
      Queued q = std::move(cand);
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
      start(std::move(q));
      // Starting a job changed free_; restart the scan (indices shifted).
      i = 1;
    }
  }
  scheduling_ = false;
}

void BatchScheduler::start(Queued&& q) {
  free_ -= q.desc.count;
  Running r;
  r.desc = q.desc;
  r.on_end = std::move(q.on_end);
  r.started_at = engine_->now();
  const JobId id = q.desc.id;
  history_.push_back(WaitObservation{q.submitted_at, r.started_at,
                                     q.desc.count, q.queue_length_at_submit,
                                     q.queued_work_at_submit});
  Running& slot = running_.emplace(id, std::move(r));
  if (slot.desc.runtime > 0) {
    slot.runtime_event = engine_->schedule_after(
        slot.desc.runtime,
        [this, id] { end_running(id, EndReason::kCompleted); });
  }
  if (slot.desc.max_wall_time > 0) {
    slot.wall_event = engine_->schedule_after(slot.desc.max_wall_time, [this, id] {
      end_running(id, EndReason::kWallTimeExceeded);
    });
  }
  if (q.on_start) q.on_start(id);
}

void BatchScheduler::end_running(JobId id, EndReason reason) {
  Running* found = running_.find(id);
  if (found == nullptr) return;
  Running r = std::move(*found);
  running_.erase(id);
  engine_->cancel(r.runtime_event);
  engine_->cancel(r.wall_event);
  free_ += r.desc.count;
  if (r.on_end) r.on_end(id, reason);
  try_schedule();
}

void BatchScheduler::complete(JobId id) {
  end_running(id, EndReason::kCompleted);
}

bool BatchScheduler::cancel(JobId id) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->desc.id == id) {
      Queued q = std::move(*it);
      queue_.erase(it);
      if (q.on_end) q.on_end(id, EndReason::kCancelled);
      try_schedule();  // removing a stuck head job may unblock others
      return true;
    }
  }
  if (running_.find(id) != nullptr) {
    end_running(id, EndReason::kCancelled);
    return true;
  }
  return false;
}

QueueSnapshot BatchScheduler::snapshot() const {
  QueueSnapshot s;
  s.taken_at = engine_->now();
  s.total_processors = total_;
  s.busy_processors = total_ - free_;
  s.queued.reserve(queue_.size());
  for (const Queued& q : queue_) {
    s.queued.push_back(QueuedJobInfo{q.desc.id, q.desc.count,
                                     q.desc.estimated_runtime,
                                     q.submitted_at});
  }
  return s;
}

}  // namespace grid::sched
