#include "sched/batch.hpp"

#include <algorithm>

#include "simkit/check.hpp"

namespace grid::sched {

std::int64_t QueueSnapshot::queued_work() const {
  std::int64_t total = 0;
  for (const QueuedJobInfo& j : queued) {
    total += static_cast<std::int64_t>(j.count) * j.estimated_runtime;
  }
  return total;
}

QueueSummary summarize(const QueueSnapshot& snapshot) {
  QueueSummary s;
  s.taken_at = snapshot.taken_at;
  s.total_processors = snapshot.total_processors;
  s.busy_processors = snapshot.busy_processors;
  s.queue_length = static_cast<std::uint32_t>(snapshot.queued.size());
  s.queued_work = snapshot.queued_work();
  return s;
}

BatchScheduler::BatchScheduler(sim::Engine& engine, std::int32_t processors,
                               Backfill backfill)
    : engine_(&engine),
      total_(processors),
      free_(processors),
      backfill_(backfill),
      profile_(processors) {}

util::Status BatchScheduler::submit(const JobDescriptor& job, StartFn on_start,
                                    EndFn on_end) {
  if (job.count < 1) {
    return {util::ErrorCode::kInvalidArgument, "count must be >= 1"};
  }
  if (job.count > total_) {
    return {util::ErrorCode::kResourceExhausted,
            "job needs " + std::to_string(job.count) + " processors, machine has " +
                std::to_string(total_)};
  }
  if (job.id == 0) {
    return {util::ErrorCode::kInvalidArgument, "job id 0 is reserved"};
  }
  if (running_.find(job.id) != nullptr ||
      queued_ids_.find(job.id) != sim::IdMap::kNotFound) {
    return {util::ErrorCode::kInvalidArgument, "duplicate job id"};
  }
  Queued q;
  q.desc = job;
  q.on_start = std::move(on_start);
  q.on_end = std::move(on_end);
  q.submitted_at = engine_->now();
  q.queue_length_at_submit = static_cast<std::int32_t>(queue_.size());
  q.queued_work_at_submit = current_queued_work();
  const bool was_blocked = !queue_.empty();
  queue_.push_back(std::move(q));
  queued_ids_.insert(job.id, 1);
  queued_work_ += static_cast<std::int64_t>(job.count) * job.estimated_runtime;
  ++version_;
  if (was_blocked && !scheduling_) {
    // The head was already blocked and nothing freed processors since the
    // last pass, so FCFS cannot start anything and only the new tail job
    // is an undecided backfill candidate.
    if (backfill_ == Backfill::kEasy) submit_fast_path();
    return util::Status::ok();
  }
  try_schedule();
  return util::Status::ok();
}

void BatchScheduler::submit_fast_path() {
  if (!cache_valid_) {
    try_schedule();
    return;
  }
  // Validity check: recompute the shadow state from the profile.  If it
  // matches what the last pass left behind, every previously rejected
  // candidate is still rejected (the admission conditions only tightened),
  // so only the new tail job needs a decision.  Any drift — an estimate
  // expired, a backfilled job returned spare capacity early — falls back
  // to the full pass, which recomputes everything exactly.
  const sim::Time now = engine_->now();
  const Queued& head = queue_.front();
  const Profile::Fit fit = profile_.earliest_fit(now, head.desc.count);
  const std::int32_t extra = fit.free - head.desc.count;
  if (fit.at != cached_shadow_ || extra != cached_extra_) {
    try_schedule();
    return;
  }
  Queued& cand = queue_.back();
  if (cand.desc.count > free_) return;
  const sim::Time est = backfill_estimate(cand.desc);
  const bool ends_before_shadow = cached_shadow_ != sim::kTimeNever &&
                                  est > 0 && now + est <= cached_shadow_;
  const bool within_extra = cand.desc.count <= cached_extra_;
  if (!ends_before_shadow && !within_extra) return;
  if (!ends_before_shadow) cached_extra_ -= cand.desc.count;
  Queued q = std::move(cand);
  queue_.pop_back();
  // The admission continues the pass that cached the shadow state, so the
  // start runs under the same re-entrancy discipline as a full pass: an
  // end inside the start callback must not trigger a nested fresh pass.
  scheduling_ = true;
  const std::uint64_t gen = state_gen_;
  const std::size_t stable_size = queue_.size();
  start(std::move(q));
  if (state_gen_ != gen || queue_.size() != stable_size) {
    // The start callback ended, cancelled, or submitted jobs re-entrantly.
    // Finish the pass the way the oracle would: rescan the whole queue
    // under the still-frozen shadow state.
    const std::int32_t final_extra =
        backfill_scan(now, cached_shadow_, cached_extra_);
    if (state_gen_ == gen) {
      cached_extra_ = final_extra;  // only submits happened; cache holds
    } else {
      cache_valid_ = false;  // shadow may be stale; next submit rescans
    }
  }
  scheduling_ = false;
}

std::int64_t BatchScheduler::current_queued_work() const {
  // Queued work is maintained incrementally; the remaining work of running
  // jobs (which also delays newcomers) is an integral over the profile,
  // with never-ending occupancies excluded the way the seed scan skipped
  // unknown estimated ends.
  return queued_work_ +
         profile_.busy_work_after(engine_->now(), unknown_busy_);
}

sim::Time BatchScheduler::estimated_end(const JobDescriptor& d,
                                        sim::Time started) const {
  sim::Time length = 0;
  if (d.estimated_runtime > 0) {
    length = d.estimated_runtime;
  } else if (d.runtime > 0) {
    length = d.runtime;
  } else if (d.max_wall_time > 0) {
    length = d.max_wall_time;
  } else {
    return sim::kTimeNever;
  }
  if (length >= sim::kTimeNever - started) return sim::kTimeNever;
  return started + length;
}

void BatchScheduler::try_schedule() {
  if (scheduling_) return;  // start callbacks may complete() synchronously
  scheduling_ = true;
  cache_valid_ = false;
  profile_.advance_to(engine_->now());
  for (;;) {
    // FCFS: start head jobs while they fit.
    if (!queue_.empty() && queue_.front().desc.count <= free_) {
      Queued q = std::move(queue_.front());
      queue_.pop_front();
      start(std::move(q));
      continue;
    }
    break;
  }
  if (backfill_ == Backfill::kEasy && !queue_.empty()) {
    // Shadow state: the earliest instant the head job could start assuming
    // running jobs end at their estimated ends, and the processors it
    // would leave spare then.  One profile query instead of sorting the
    // running set.  Frozen for the whole pass (the EASY contract).
    const sim::Time now = engine_->now();
    const std::int32_t head_count = queue_.front().desc.count;
    const Profile::Fit fit = profile_.earliest_fit(now, head_count);
    const sim::Time shadow = fit.at;
    const std::uint64_t pass_gen = state_gen_;
    const std::int32_t extra = backfill_scan(now, shadow, fit.free - head_count);
    if (state_gen_ == pass_gen && !queue_.empty()) {
      cache_valid_ = true;
      cached_shadow_ = shadow;
      cached_extra_ = extra;
    }
  }
  scheduling_ = false;
}

std::int32_t BatchScheduler::backfill_scan(sim::Time now, sim::Time shadow,
                                           std::int32_t extra) {
  // Backfill jobs behind the head that fit now and either end by the shadow
  // time or use only the head job's spare processors.
  for (std::size_t i = 1; i < queue_.size();) {
    Queued& cand = queue_[i];
    if (cand.desc.count > free_) {
      ++i;
      continue;
    }
    const sim::Time est = backfill_estimate(cand.desc);
    const bool ends_before_shadow =
        shadow != sim::kTimeNever && est > 0 && now + est <= shadow;
    const bool within_extra = cand.desc.count <= extra;
    if (!ends_before_shadow && !within_extra) {
      ++i;
      continue;
    }
    if (!ends_before_shadow) extra -= cand.desc.count;
    Queued q = std::move(cand);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
    const std::uint64_t gen = state_gen_;
    start(std::move(q));
    // Starting a job only tightens the admission conditions, so the scan
    // continues in place — unless the start callback ended or cancelled a
    // job re-entrantly, where the oracle scan's restart-from-the-front
    // behaviour is reproduced exactly.
    if (state_gen_ != gen) i = 1;
  }
  return extra;
}

void BatchScheduler::start(Queued&& q) {
  free_ -= q.desc.count;
  ++version_;
  queued_work_ -=
      static_cast<std::int64_t>(q.desc.count) * q.desc.estimated_runtime;
  Running r;
  r.desc = q.desc;
  r.on_end = std::move(q.on_end);
  r.started_at = engine_->now();
  r.est_end = estimated_end(r.desc, r.started_at);
  const JobId id = q.desc.id;
  queued_ids_.erase(id);
  if (history_.size() < history_capacity_) {
    history_.push_back(WaitObservation{q.submitted_at, r.started_at,
                                       q.desc.count, q.queue_length_at_submit,
                                       q.queued_work_at_submit});
  }
  profile_.reserve(r.started_at, r.est_end, r.desc.count);
  if (r.est_end == sim::kTimeNever) unknown_busy_ += r.desc.count;
  Running& slot = running_.emplace(id, std::move(r));
  if (slot.desc.runtime > 0) {
    slot.runtime_event = engine_->schedule_after(
        slot.desc.runtime,
        [this, id] { end_running(id, EndReason::kCompleted); });
  }
  if (slot.desc.max_wall_time > 0) {
    slot.wall_event = engine_->schedule_after(slot.desc.max_wall_time, [this, id] {
      end_running(id, EndReason::kWallTimeExceeded);
    });
  }
  if (q.on_start) q.on_start(id);
}

void BatchScheduler::end_running(JobId id, EndReason reason) {
  Running* found = running_.find(id);
  if (found == nullptr) return;
  Running r = std::move(*found);
  running_.erase(id);
  engine_->cancel(r.runtime_event);
  engine_->cancel(r.wall_event);
  free_ += r.desc.count;
  ++state_gen_;
  ++version_;
  cache_valid_ = false;
  const sim::Time now = engine_->now();
  if (r.est_end > now) {
    // Return the unused tail of the job's estimated occupancy; a job that
    // ran past its estimate has no tail left to return.
    profile_.release(now, r.est_end, r.desc.count);
  }
  if (r.est_end == sim::kTimeNever) unknown_busy_ -= r.desc.count;
  if (r.on_end) r.on_end(id, reason);
  try_schedule();
}

void BatchScheduler::complete(JobId id) {
  end_running(id, EndReason::kCompleted);
}

bool BatchScheduler::cancel(JobId id) {
  if (queued_ids_.find(id) != sim::IdMap::kNotFound) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->desc.id == id) {
        Queued q = std::move(*it);
        queue_.erase(it);
        queued_ids_.erase(id);
        queued_work_ -=
            static_cast<std::int64_t>(q.desc.count) * q.desc.estimated_runtime;
        ++state_gen_;          // an in-pass scan must not trust its indices
        ++version_;
        cache_valid_ = false;  // the head (and thus the shadow) may change
        if (q.on_end) q.on_end(id, EndReason::kCancelled);
        try_schedule();  // removing a stuck head job may unblock others
        return true;
      }
    }
    GRID_CHECK(false, "queued_ids_ out of sync with the queue");
  }
  if (running_.find(id) != nullptr) {
    end_running(id, EndReason::kCancelled);
    return true;
  }
  return false;
}

QueueSummary BatchScheduler::summary() const {
  QueueSummary s;
  s.taken_at = engine_->now();
  s.total_processors = total_;
  s.busy_processors = total_ - free_;
  s.queue_length = static_cast<std::uint32_t>(queue_.size());
  s.queued_work = queued_work_;  // maintained incrementally by submit/start
  return s;
}

QueueSnapshot BatchScheduler::snapshot() const {
  QueueSnapshot s;
  s.taken_at = engine_->now();
  s.total_processors = total_;
  s.busy_processors = total_ - free_;
  s.queued.reserve(queue_.size());
  for (const Queued& q : queue_) {
    s.queued.push_back(QueuedJobInfo{q.desc.id, q.desc.count,
                                     q.desc.estimated_runtime,
                                     q.submitted_at});
  }
  return s;
}

}  // namespace grid::sched
