// Advance-reservation scheduler (paper §2.2 and §5).
//
// Extends space-shared scheduling with admission-controlled capacity
// reservations: an admitted reservation blocks `count` processors for its
// whole window, jobs bound to a reservation start exactly at the window
// start, and best-effort jobs may only start if they cannot collide with
// any admitted window (using runtime estimates).  This is the local-manager
// capability the paper argues co-reservation ultimately requires; the
// `ablate_reservation` bench quantifies the co-allocation benefit.
//
// Decisions read two sched::Profile free-slot structures instead of
// rescanning the reservation list and the running set (the seed shape):
//   - `res_` holds admitted windows only — the best-effort admission check
//     reads the peak reserved count over a job's estimated run as one
//     range query;
//   - `commit_` additionally holds the estimated tails of running
//     best-effort jobs — reservation admission reads the committed peak
//     over the candidate window as one range query.
// Both queries are exact rewrites of the seed scans: reserved-plus-running
// load only steps up at window starts, so the seed's sampling at starts
// and the profile's minimum over all breakpoints agree everywhere.
#pragma once

#include <deque>
#include <vector>

#include "sched/profile.hpp"
#include "sched/scheduler.hpp"
#include "simkit/idmap.hpp"

namespace grid::sched {

using ReservationId = std::uint64_t;

struct Reservation {
  ReservationId id = 0;
  sim::Time start = 0;
  sim::Time end = 0;
  std::int32_t count = 0;
};

class ReservationScheduler final : public LocalScheduler {
 public:
  /// Jobs without estimates are assumed to run `default_estimate` when
  /// checked against reservation windows.
  ReservationScheduler(sim::Engine& engine, std::int32_t processors,
                       sim::Time default_estimate = sim::kHour);

  // ---- reservations ------------------------------------------------------

  /// Admission control: succeeds iff the window fits alongside all admitted
  /// reservations and the estimated ends of running jobs.
  util::Result<Reservation> reserve(sim::Time start, sim::Time end,
                                    std::int32_t count);

  /// Releases an unused reservation (or the remainder of one).
  bool cancel_reservation(ReservationId id);

  /// Submits a job bound to a reservation; it starts at the window start
  /// (immediately if the window is open) and is killed at window end if
  /// still running.  The job's count must fit the reservation.
  util::Status submit_reserved(const JobDescriptor& job, ReservationId rid,
                               StartFn on_start, EndFn on_end);

  std::size_t reservation_count() const { return reservations_.size(); }

  /// Sum of reserved processors at time t (admitted windows containing t).
  std::int32_t reserved_at(sim::Time t) const;

  // ---- LocalScheduler (best-effort queue) --------------------------------

  util::Status submit(const JobDescriptor& job, StartFn on_start,
                      EndFn on_end) override;
  void complete(JobId id) override;
  bool cancel(JobId id) override;

  std::int32_t total_processors() const override { return total_; }
  std::int32_t busy_processors() const override { return busy_; }
  std::size_t queue_length() const override { return queue_.size(); }
  QueueSnapshot snapshot() const override;
  QueueSummary summary() const override;
  std::uint64_t version() const override { return version_; }
  std::string policy() const override { return "fcfs+reservations"; }

 private:
  struct Queued {
    JobDescriptor desc;
    StartFn on_start;
    EndFn on_end;
    sim::Time submitted_at = 0;
    ReservationId reservation = 0;  // 0 = best-effort
  };
  struct Running {
    JobDescriptor desc;
    EndFn on_end;
    sim::Time started_at = 0;
    sim::Time est_end = 0;  // commit-profile occupancy end (best-effort)
    ReservationId reservation = 0;
    sim::EventId runtime_event;
    sim::EventId wall_event;
  };

  void try_schedule();
  void start(Queued&& q);
  void end_running(JobId id, EndReason reason);
  sim::Time job_estimate(const JobDescriptor& d) const;
  /// `now + length` saturated at the end of time.
  sim::Time horizon(sim::Time now, sim::Time length) const;

  sim::Engine* engine_;
  std::int32_t total_;
  std::int32_t busy_ = 0;       // all running jobs, reserved or not
  std::int32_t busy_best_ = 0;  // running best-effort jobs only
  sim::Time default_estimate_;
  ReservationId next_reservation_ = 1;
  std::vector<Reservation> reservations_;
  Profile res_;     // admitted windows
  Profile commit_;  // admitted windows + estimated best-effort tails
  std::deque<Queued> queue_;
  sim::IdSlab<Running> running_;
  bool scheduling_ = false;
  std::int64_t queued_work_ = 0;  // sum of count*estimate over the queue
  std::uint64_t version_ = 1;     // dirty-flag counter (0 = untracked)
};

}  // namespace grid::sched
