#include "sched/predict.hpp"

#include <algorithm>
#include <cmath>

namespace grid::sched {

AggregateWorkPredictor::AggregateWorkPredictor(sim::Time mean_job_runtime)
    : mean_job_runtime_(mean_job_runtime) {}

sim::Time AggregateWorkPredictor::predict(const QueueSnapshot& snapshot,
                                          std::int32_t count) const {
  return predict(summarize(snapshot), count);
}

sim::Time AggregateWorkPredictor::predict(const QueueSummary& summary,
                                          std::int32_t count) const {
  if (summary.total_processors <= 0) return 0;
  if (summary.queue_length == 0 && count <= summary.free_processors()) {
    return 0;
  }
  // Queued work drains across the whole machine; a busy machine adds the
  // expected residual of the jobs occupying it.
  const double machine = static_cast<double>(summary.total_processors);
  const double drain = static_cast<double>(summary.queued_work) / machine;
  const double residual =
      static_cast<double>(summary.busy_processors) / machine *
      static_cast<double>(mean_job_runtime_) / 2.0;
  return static_cast<sim::Time>(drain + residual);
}

HistoryPredictor::HistoryPredictor(std::size_t capacity,
                                   std::size_t neighbors)
    : capacity_(capacity == 0 ? 1 : capacity),
      neighbors_(neighbors == 0 ? 1 : neighbors) {}

void HistoryPredictor::observe(std::int32_t queue_length,
                               std::int64_t queued_work, std::int32_t count,
                               sim::Time wait) {
  window_.push_back(Observation{queue_length, queued_work, count, wait});
  while (window_.size() > capacity_) window_.pop_front();
}

void HistoryPredictor::train(
    const std::vector<BatchScheduler::WaitObservation>& history) {
  for (const auto& h : history) {
    observe(h.queue_length_at_submit, h.queued_work_at_submit, h.count,
            h.started_at - h.submitted_at);
  }
}

sim::Time HistoryPredictor::predict(const QueueSnapshot& snapshot,
                                    std::int32_t count) const {
  return predict(summarize(snapshot), count);
}

sim::Time HistoryPredictor::predict(const QueueSummary& summary,
                                    std::int32_t count) const {
  if (window_.empty()) return 0;
  // Distance in a normalized (queue length, queued work, count) space.
  const auto qlen = static_cast<double>(summary.queue_length);
  const auto qwork = static_cast<double>(summary.queued_work);
  struct Scored {
    double distance;
    sim::Time wait;
  };
  std::vector<Scored> scored;
  scored.reserve(window_.size());
  for (const Observation& o : window_) {
    const double dl = qlen - static_cast<double>(o.queue_length);
    const double dw =
        (qwork - static_cast<double>(o.queued_work)) /
        static_cast<double>(sim::kMinute);  // work in processor-minutes
    const double dc = static_cast<double>(count - o.count);
    scored.push_back(
        Scored{std::sqrt(dl * dl + dw * dw + 0.25 * dc * dc), o.wait});
  }
  const std::size_t k = std::min(neighbors_, scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(k),
                    scored.end(), [](const Scored& a, const Scored& b) {
                      return a.distance < b.distance;
                    });
  double sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    sum += static_cast<double>(scored[i].wait);
  }
  return static_cast<sim::Time>(sum / static_cast<double>(k));
}

}  // namespace grid::sched
