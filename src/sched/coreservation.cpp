#include "sched/coreservation.hpp"

namespace grid::sched {

util::Result<std::vector<CoReservationAgent::Hold>>
CoReservationAgent::acquire(
    const std::vector<ReservationScheduler*>& schedulers,
    const Options& options) {
  if (schedulers.empty()) {
    return util::Status(util::ErrorCode::kInvalidArgument,
                        "no schedulers to co-reserve");
  }
  if (options.step <= 0 || options.duration <= 0) {
    return util::Status(util::ErrorCode::kInvalidArgument,
                        "step and duration must be positive");
  }
  std::vector<Hold> holds;
  for (sim::Time probe = options.earliest; probe <= options.horizon;
       probe += options.step) {
    holds.clear();
    bool all = true;
    for (ReservationScheduler* sched : schedulers) {
      auto r = sched->reserve(probe, probe + options.duration, options.count);
      if (!r.is_ok()) {
        all = false;
        break;
      }
      holds.push_back(Hold{sched, r.value()});
    }
    if (all) return holds;
    release(holds);  // roll back partial acquisition (phase 2 abort)
  }
  return util::Status(util::ErrorCode::kResourceExhausted,
                      "no common reservation window before the horizon");
}

void CoReservationAgent::release(std::vector<Hold>& holds) {
  for (Hold& h : holds) {
    if (h.scheduler != nullptr) {
      h.scheduler->cancel_reservation(h.reservation.id);
    }
  }
  holds.clear();
}

}  // namespace grid::sched
