// Local scheduler interface: the resource-local allocation policy that a
// GRAM job manager submits to (paper §2.1's LoadLeveler/PBS/NQE role).
//
// A scheduler owns a pool of processors.  Jobs are submitted with a
// processor count; the scheduler decides when they start and invokes the
// start callback.  Jobs either self-complete after `runtime` (synthetic
// background load) or run until the owner calls complete() (application
// jobs whose lifetime the simulation controls).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "simkit/engine.hpp"
#include "simkit/status.hpp"
#include "simkit/time.hpp"

namespace grid::sched {

using JobId = std::uint64_t;

/// What the scheduler needs to know about a job.
struct JobDescriptor {
  JobId id = 0;
  std::int32_t count = 1;  // processors
  /// User-supplied runtime estimate; backfill trusts it, FCFS ignores it.
  sim::Time estimated_runtime = 0;
  /// If > 0 the scheduler self-completes the job this long after start
  /// (synthetic load).  If 0 the owner must call complete().
  sim::Time runtime = 0;
  /// Hard limit: the scheduler kills the job this long after start.
  sim::Time max_wall_time = 0;
  std::string annotation;  // diagnostics only
};

/// Why a running or queued job left the scheduler.
enum class EndReason { kCompleted, kCancelled, kWallTimeExceeded };

struct QueuedJobInfo {
  JobId id = 0;
  std::int32_t count = 0;
  sim::Time estimated_runtime = 0;
  sim::Time submitted_at = 0;
};

/// Point-in-time view of a scheduler used by predictors and information
/// services (paper §2.2: "publish information about the current queue
/// contents and scheduling policy").
struct QueueSnapshot {
  sim::Time taken_at = 0;
  std::int32_t total_processors = 0;
  std::int32_t busy_processors = 0;
  std::vector<QueuedJobInfo> queued;

  /// Aggregate queued work in processor-nanoseconds.
  std::int64_t queued_work() const;
};

/// Aggregate-only view of a scheduler: everything the wait predictors and
/// the broker need, with no per-job detail.  Publishing and serving this is
/// O(1) regardless of queue depth, so the information service prefers it
/// and falls back to full snapshots only when a consumer asks for the
/// queued-job list.
struct QueueSummary {
  sim::Time taken_at = 0;
  std::int32_t total_processors = 0;
  std::int32_t busy_processors = 0;
  std::uint32_t queue_length = 0;
  std::int64_t queued_work = 0;  // processor-nanoseconds

  std::int32_t free_processors() const {
    return total_processors - busy_processors;
  }
};

/// Derives the aggregate view from a full snapshot (O(queue depth); the
/// concrete schedulers override summary() with O(1) incremental state).
QueueSummary summarize(const QueueSnapshot& snapshot);

class LocalScheduler {
 public:
  /// Invoked when the scheduler allocates processors and starts the job.
  using StartFn = std::function<void(JobId)>;
  /// Invoked when a job ends for any reason after having started, or is
  /// cancelled while queued.
  using EndFn = std::function<void(JobId, EndReason)>;

  virtual ~LocalScheduler() = default;

  /// Enqueues a job.  Fails with kResourceExhausted if the job can never
  /// run (count exceeds the machine), kInvalidArgument for bad descriptors.
  virtual util::Status submit(const JobDescriptor& job, StartFn on_start,
                              EndFn on_end) = 0;

  /// Marks a started job's processes as finished, freeing processors.
  /// No-op for unknown ids.
  virtual void complete(JobId id) = 0;

  /// Removes a queued job or kills a running one.  Returns false for
  /// unknown ids.
  virtual bool cancel(JobId id) = 0;

  virtual std::int32_t total_processors() const = 0;
  virtual std::int32_t busy_processors() const = 0;
  virtual std::size_t queue_length() const = 0;
  virtual QueueSnapshot snapshot() const = 0;

  /// Aggregate-only snapshot.  The default derives it from snapshot() and
  /// costs O(queue depth); production schedulers override it with O(1)
  /// incrementally maintained counters.
  virtual QueueSummary summary() const { return summarize(snapshot()); }

  /// Monotonic counter bumped on every observable state change (submit,
  /// start, end, cancel, reservation edit).  Information services use it
  /// as a dirty flag: equal versions guarantee an identical snapshot.
  /// 0 means "untracked" — consumers must treat the state as always dirty.
  virtual std::uint64_t version() const { return 0; }

  /// Human-readable policy name ("fork", "fcfs", "easy-backfill", ...).
  virtual std::string policy() const = 0;
};

}  // namespace grid::sched
