// Co-reservation: all-or-nothing acquisition of matching advance-
// reservation windows across multiple resources (paper §2.2 and §5: "how
// the co-allocation approaches presented in this paper can be applied to
// co-reservation as well as co-allocation").
//
// The agent applies the same two-phase structure as the atomic
// co-allocation strategy, to reservations: probe a window start, try to
// reserve it on every machine, and roll back all partial acquisitions if
// any machine refuses; then advance the probe and retry until the horizon.
#pragma once

#include <vector>

#include "sched/reservation.hpp"

namespace grid::sched {

class CoReservationAgent {
 public:
  struct Options {
    /// Earliest admissible window start.
    sim::Time earliest = 0;
    /// Give up when no common window starts before this.
    sim::Time horizon = 48 * sim::kHour;
    /// Probe granularity.
    sim::Time step = 10 * sim::kMinute;
    /// Window length.
    sim::Time duration = sim::kHour;
    /// Processors reserved on every machine.
    std::int32_t count = 1;
  };

  struct Hold {
    ReservationScheduler* scheduler = nullptr;
    Reservation reservation;
  };

  /// Acquires a common window on every scheduler, or nothing.  On success
  /// all reservations share the same [start, start+duration) window.
  static util::Result<std::vector<Hold>> acquire(
      const std::vector<ReservationScheduler*>& schedulers,
      const Options& options);

  /// Releases held reservations (rollback or cleanup).  Clears `holds`.
  static void release(std::vector<Hold>& holds);

  /// Convenience: the common window start of a successful acquisition.
  static sim::Time window_start(const std::vector<Hold>& holds) {
    return holds.empty() ? -1 : holds.front().reservation.start;
  }
};

}  // namespace grid::sched
