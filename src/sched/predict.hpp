// Queue-wait prediction (paper §2.2).
//
// "The resource management system can publish ... forecasts (based, for
// example, on queue time prediction algorithms [9, 26]) of expected future
// resource availability."  Two predictors are provided:
//
//  * AggregateWorkPredictor — deterministic estimate from the published
//    queue snapshot: queued processor-work divided by machine width
//    (a Downey-style aggregate bound [9]).
//  * HistoryPredictor — Smith/Foster/Taylor-style [26]: remembers
//    (queue state, observed wait) pairs and predicts the mean wait of the
//    most similar historical states.
#pragma once

#include <cstdint>
#include <deque>

#include "sched/batch.hpp"
#include "sched/scheduler.hpp"

namespace grid::sched {

class WaitPredictor {
 public:
  virtual ~WaitPredictor() = default;

  /// Predicted queue wait for a newly submitted job asking for `count`
  /// processors, given a published snapshot of the target queue.
  virtual sim::Time predict(const QueueSnapshot& snapshot,
                            std::int32_t count) const = 0;

  /// Same prediction from the aggregate-only summary.  Both provided
  /// predictors read nothing but aggregates, so this is exact — and it is
  /// the form the broker uses at scale (O(1) data per candidate).
  virtual sim::Time predict(const QueueSummary& summary,
                            std::int32_t count) const = 0;
};

/// Deterministic aggregate bound: remaining queued work spread over the
/// machine, plus a term for how full the machine currently is.
class AggregateWorkPredictor final : public WaitPredictor {
 public:
  /// `mean_job_runtime` calibrates the drain time of currently-busy
  /// processors when the snapshot carries no estimates.
  explicit AggregateWorkPredictor(sim::Time mean_job_runtime = sim::kMinute);

  sim::Time predict(const QueueSnapshot& snapshot,
                    std::int32_t count) const override;
  sim::Time predict(const QueueSummary& summary,
                    std::int32_t count) const override;

 private:
  sim::Time mean_job_runtime_;
};

/// Instance-based predictor trained on observed (state, wait) pairs.
class HistoryPredictor final : public WaitPredictor {
 public:
  /// Keeps at most `capacity` most recent observations.
  explicit HistoryPredictor(std::size_t capacity = 512,
                            std::size_t neighbors = 8);

  /// Records an observed wait under the queue state at submission time.
  void observe(std::int32_t queue_length, std::int64_t queued_work,
               std::int32_t count, sim::Time wait);

  /// Imports a batch scheduler's accumulated wait history.
  void train(const std::vector<BatchScheduler::WaitObservation>& history);

  sim::Time predict(const QueueSnapshot& snapshot,
                    std::int32_t count) const override;
  sim::Time predict(const QueueSummary& summary,
                    std::int32_t count) const override;

  std::size_t observation_count() const { return window_.size(); }

 private:
  struct Observation {
    std::int32_t queue_length;
    std::int64_t queued_work;
    std::int32_t count;
    sim::Time wait;
  };
  std::size_t capacity_;
  std::size_t neighbors_;
  std::deque<Observation> window_;
};

}  // namespace grid::sched
