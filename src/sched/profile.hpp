// Time-indexed free-slot profile for schedule-ahead decisions.
//
// The EASY backfill rewrite (batch.hpp) and the reservation admission path
// (reservation.hpp) both ask the same question: "how many processors are
// free at virtual time t, assuming running jobs end at their estimated
// ends and admitted windows hold?"  The seed implementations answered it
// by rescanning the running set or the reservation list on every decision
// — O(n log n) per decision, quadratic over a deep queue.  Profile keeps
// the answer as a sorted, coalesced interval list over virtual time (the
// shape batsched's `Schedule` and slurm's backfill free-maps use), so the
// question is a binary search.
//
// Representation: a step function.  `intervals()[i]` says `free`
// processors are available on [intervals()[i].start, intervals()[i+1].start);
// the last interval extends forever.  Invariants (audited under
// GRID_CHECKED, checkable in any build via invariants_ok()):
//   - starts strictly increasing,
//   - 0 <= free <= capacity on every interval,
//   - adjacent intervals differ in free (canonical / coalesced form).
// The canonical form makes "rebuild from scratch == incremental updates"
// an exact vector comparison, which the property tests rely on.
//
// Time semantics: an occupancy covers the half-open window [start, end).
// sim::kTimeNever is an ordinary breakpoint — a job with no usable
// estimate occupies [now, kTimeNever), i.e. it is counted free *at*
// kTimeNever and never before.  That mirrors the seed backfill loop, where
// unknown ends sorted last and still released their processors for the
// shadow computation.
#pragma once

#include <cstdint>
#include <vector>

#include "simkit/time.hpp"

namespace grid::sched {

class Profile {
 public:
  struct Interval {
    sim::Time start = 0;
    std::int32_t free = 0;

    bool operator==(const Interval&) const = default;
  };

  /// Result of an earliest-fit query: the time found and the free count
  /// there.  `at` is always a valid time (a query for count <= capacity
  /// succeeds by kTimeNever at the latest).
  struct Fit {
    sim::Time at = sim::kTimeNever;
    std::int32_t free = 0;
  };

  explicit Profile(std::int32_t capacity);

  std::int32_t capacity() const { return capacity_; }

  /// Claims `count` processors over [start, end).  No-op when the window
  /// is empty or count is 0.  Claiming below zero free is a caller bug
  /// (hard abort under GRID_CHECKED).
  void reserve(sim::Time start, sim::Time end, std::int32_t count);

  /// Returns `count` processors over [start, end) — the inverse of a
  /// (remaining slice of a) previous reserve.  Releasing above capacity is
  /// a caller bug (hard abort under GRID_CHECKED).
  void release(sim::Time start, sim::Time end, std::int32_t count);

  /// Free processors at time t.  Times before the first breakpoint report
  /// the first interval's value (the forgotten past after advance_to).
  std::int32_t free_at(sim::Time t) const;

  /// Earliest t >= from such that at least `count` processors stay free
  /// throughout [t, t + duration) (duration 0 = the single instant t).
  /// Requires count <= capacity; saturates t + duration at kTimeNever.
  Fit earliest_fit(sim::Time from, std::int32_t count,
                   sim::Time duration = 0) const;

  /// Minimum free count over [from, to); from < to required.
  std::int32_t min_free_over(sim::Time from, sim::Time to) const;

  /// Integral of (busy(t) - exclude_busy) dt from `from` onward, where
  /// busy = capacity - free.  Intervals where busy == exclude_busy
  /// contribute nothing, which is how never-ending occupancies (busy all
  /// the way to kTimeNever) are kept out of the sum: pass their total
  /// count as exclude_busy.  Requires busy >= exclude_busy wherever the
  /// integrand is evaluated (audited under GRID_CHECKED).
  std::int64_t busy_work_after(sim::Time from,
                               std::int32_t exclude_busy) const;

  /// Forgets breakpoints strictly before `t` (keeps the interval covering
  /// t as the new head).  Amortizes the interval list to O(live
  /// occupancies) over a long run; queries before `t` then report the
  /// head interval's value.
  void advance_to(sim::Time t);

  /// The canonical interval list (tests, benches, and audits).
  const std::vector<Interval>& intervals() const { return intervals_; }

  /// Full invariant check, available in every build (the property tests
  /// run it after each mutation even when GRID_CHECK is compiled out).
  bool invariants_ok() const;

 private:
  /// Adds `delta` to free over [start, end), splitting and re-coalescing.
  void apply(sim::Time start, sim::Time end, std::int32_t delta);
  /// Index of the interval containing t (last interval with start <= t).
  std::size_t index_of(sim::Time t) const;
  /// Ensures a breakpoint exists exactly at t; returns its index.
  std::size_t split_at(sim::Time t);
  void audit() const;  // GRID_CHECK wrapper around invariants_ok()

  std::int32_t capacity_;
  std::vector<Interval> intervals_;
};

}  // namespace grid::sched
