// ReferenceBackfill: the scan-based FCFS/EASY oracle.
//
// This is the seed BatchScheduler kept alive as an executable
// specification.  Every decision is made by rescanning the queue and the
// running set — O(n) per submit, O(n^2) over a deep queue — which is
// exactly why it is trustworthy: each scan is a direct transcription of
// the EASY contract (DESIGN.md §5.4) with no caches, no incremental
// bookkeeping, and no profile to get out of sync.
//
// tests/sched_diff_test.cpp holds BatchScheduler (the profile-based
// production path) equal to this oracle on randomized workloads, and
// bench/micro_sched measures the production path against it.  Test and
// bench use only — never wire it into an experiment.
//
// Two deliberate refinements over the seed loop, shared with the
// production path (see DESIGN.md §5.4 for the rationale):
//   - `extra` is defined as free-at-shadow minus the head's need, so
//     running jobs whose estimated ends coincide all count (the seed
//     under-counted the spare set when ends tied);
//   - estimated ends already in the past count as free immediately and
//     the shadow never lies in the past (the seed kept stale end times).
#pragma once

#include <deque>
#include <vector>

#include "sched/batch.hpp"
#include "sched/scheduler.hpp"
#include "simkit/idmap.hpp"

namespace grid::sched {

class ReferenceBackfill final : public LocalScheduler {
 public:
  ReferenceBackfill(sim::Engine& engine, std::int32_t processors,
                    Backfill backfill = Backfill::kNone);

  util::Status submit(const JobDescriptor& job, StartFn on_start,
                      EndFn on_end) override;
  void complete(JobId id) override;
  bool cancel(JobId id) override;

  std::int32_t total_processors() const override { return total_; }
  std::int32_t busy_processors() const override { return total_ - free_; }
  std::size_t queue_length() const override { return queue_.size(); }
  QueueSnapshot snapshot() const override;
  std::string policy() const override {
    return backfill_ == Backfill::kEasy ? "reference-easy-backfill"
                                        : "reference-fcfs";
  }

  /// Same observation record as the production path, so differential tests
  /// can compare the bookkeeping (queued work, queue lengths) verbatim.
  const std::vector<BatchScheduler::WaitObservation>& wait_history() const {
    return history_;
  }

 private:
  struct Queued {
    JobDescriptor desc;
    StartFn on_start;
    EndFn on_end;
    sim::Time submitted_at = 0;
    std::int32_t queue_length_at_submit = 0;
    std::int64_t queued_work_at_submit = 0;
  };
  struct Running {
    JobDescriptor desc;
    EndFn on_end;
    sim::Time started_at = 0;
    sim::Time est_end = 0;
    sim::EventId runtime_event;
    sim::EventId wall_event;
  };

  void try_schedule();
  void start(Queued&& q);
  void end_running(JobId id, EndReason reason);
  sim::Time estimated_end(const JobDescriptor& d, sim::Time started) const;
  std::int64_t current_queued_work() const;

  sim::Engine* engine_;
  std::int32_t total_;
  std::int32_t free_;
  Backfill backfill_;
  std::deque<Queued> queue_;
  sim::IdSlab<Running> running_;
  std::vector<BatchScheduler::WaitObservation> history_;
  bool scheduling_ = false;
};

}  // namespace grid::sched
