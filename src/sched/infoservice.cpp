#include "sched/infoservice.hpp"

namespace grid::sched {

LoadInformationService::LoadInformationService(sim::Engine& engine,
                                               sim::Time publish_interval)
    : engine_(&engine), interval_(publish_interval) {}

LoadInformationService::~LoadInformationService() { stop(); }

void LoadInformationService::register_resource(std::string contact,
                                               const LocalScheduler* sched) {
  ContactId id = 0;
  auto it = intern_.find(contact);
  if (it != intern_.end()) {
    id = it->second;
  } else {
    entries_.emplace_back();
    id = static_cast<ContactId>(entries_.size());
    entries_.back().contact = contact;
    intern_.emplace(std::move(contact), id);
  }
  Entry& e = entries_[id - 1];
  if (!e.registered) ++registered_count_;
  e.registered = true;
  e.sched = sched;
  e.published = false;
  if (sched != nullptr) {
    e.published_at = engine_->now();
    refresh(e);
  }
}

void LoadInformationService::unregister_resource(const std::string& contact) {
  auto it = intern_.find(contact);
  if (it == intern_.end()) return;
  Entry& e = entries_[it->second - 1];
  if (!e.registered) return;
  e.registered = false;
  e.sched = nullptr;  // may be destroyed after unregistration
  --registered_count_;
  // e.snap stays alive for holders of previously returned SnapshotRefs.
}

void LoadInformationService::start() {
  if (running_ || interval_ <= 0) return;
  running_ = true;
  tick_event_ = engine_->schedule_after(interval_, [this] { tick(); });
}

void LoadInformationService::stop() {
  if (!running_) return;
  running_ = false;
  engine_->cancel(tick_event_);
}

void LoadInformationService::tick() {
  publish_now();
  if (running_) {
    tick_event_ = engine_->schedule_after(interval_, [this] { tick(); });
  }
}

void LoadInformationService::refresh(Entry& e) {
  e.snap = std::make_shared<QueueSnapshot>(e.sched->snapshot());
  e.summary = e.sched->summary();
  e.sched_version = e.sched->version();
  e.published_version = ++next_published_version_;
  e.published = true;
  ++stats_.snapshots_refreshed;
}

void LoadInformationService::publish_now() {
  // Entries are visited in registration order; nothing here schedules
  // events or sends messages, so publication cannot leak ordering.
  ++stats_.publish_rounds;
  const sim::Time now = engine_->now();
  for (Entry& e : entries_) {
    if (!e.registered || e.sched == nullptr) continue;
    e.published_at = now;  // the round ran, even if the content held still
    const std::uint64_t v = e.sched->version();
    if (e.published && v != 0 && v == e.sched_version) {
      ++stats_.snapshots_skipped;  // dirty flag clean: keep the shared copy
      continue;
    }
    refresh(e);
  }
}

LoadInformationService::ContactId LoadInformationService::resolve(
    const std::string& contact) const {
  auto it = intern_.find(contact);
  return it == intern_.end() ? 0 : it->second;
}

LoadInformationService::Entry* LoadInformationService::entry(ContactId id) {
  if (id == 0 || id > entries_.size()) return nullptr;
  return &entries_[id - 1];
}

const LoadInformationService::Entry* LoadInformationService::entry(
    ContactId id) const {
  if (id == 0 || id > entries_.size()) return nullptr;
  return &entries_[id - 1];
}

util::Result<LoadInformationService::SnapshotRef>
LoadInformationService::snapshot_ref(ContactId id) const {
  ++stats_.queries;
  const Entry* e = entry(id);
  if (e == nullptr || !e->registered) {
    ++stats_.misses;
    return util::small_status(util::ErrorCode::kNotFound, "unknown contact");
  }
  if (interval_ <= 0 && e->sched != nullptr) {
    // Perfect-information mode: a live snapshot built per query.
    return std::make_shared<const QueueSnapshot>(e->sched->snapshot());
  }
  if (!e->published) {
    ++stats_.misses;
    return util::small_status(util::ErrorCode::kNotFound, "unpublished");
  }
  return e->snap;
}

util::Result<QueueSummary> LoadInformationService::summary(
    ContactId id) const {
  ++stats_.queries;
  const Entry* e = entry(id);
  if (e == nullptr || !e->registered) {
    ++stats_.misses;
    return util::small_status(util::ErrorCode::kNotFound, "unknown contact");
  }
  if (interval_ <= 0 && e->sched != nullptr) {
    return e->sched->summary();  // perfect information mode
  }
  if (!e->published) {
    ++stats_.misses;
    return util::small_status(util::ErrorCode::kNotFound, "unpublished");
  }
  return e->summary;
}

std::uint64_t LoadInformationService::published_version(ContactId id) const {
  if (interval_ <= 0) return 0;  // live views: never cacheable
  const Entry* e = entry(id);
  if (e == nullptr || !e->registered || !e->published) return 0;
  return e->published_version;
}

sim::Time LoadInformationService::staleness(ContactId id) const {
  const Entry* e = entry(id);
  if (e == nullptr || !e->registered || !e->published) return sim::kTimeNever;
  return engine_->now() - e->published_at;
}

util::Result<QueueSnapshot> LoadInformationService::query(
    const std::string& contact) const {
  auto ref = snapshot_ref(resolve(contact));
  if (!ref.is_ok()) return ref.status();
  return *ref.value();
}

sim::Time LoadInformationService::staleness(const std::string& contact) const {
  return staleness(resolve(contact));
}

}  // namespace grid::sched
