#include "sched/infoservice.hpp"

namespace grid::sched {

LoadInformationService::LoadInformationService(sim::Engine& engine,
                                               sim::Time publish_interval)
    : engine_(&engine), interval_(publish_interval) {}

LoadInformationService::~LoadInformationService() { stop(); }

void LoadInformationService::register_resource(std::string contact,
                                               const LocalScheduler* sched) {
  Entry e;
  e.sched = sched;
  if (sched != nullptr) {
    e.last = sched->snapshot();
    e.published = true;
  }
  resources_[std::move(contact)] = std::move(e);
}

void LoadInformationService::unregister_resource(const std::string& contact) {
  resources_.erase(contact);
}

void LoadInformationService::start() {
  if (running_ || interval_ <= 0) return;
  running_ = true;
  tick_event_ = engine_->schedule_after(interval_, [this] { tick(); });
}

void LoadInformationService::stop() {
  if (!running_) return;
  running_ = false;
  engine_->cancel(tick_event_);
}

void LoadInformationService::tick() {
  publish_now();
  if (running_) {
    tick_event_ = engine_->schedule_after(interval_, [this] { tick(); });
  }
}

void LoadInformationService::publish_now() {
  // Snapshot refresh updates each entry in place; nothing here schedules
  // events or sends messages, so hash order cannot leak into results.
  for (auto& [contact, entry] : resources_) {  // gridlint: allow(unordered-iter)
    if (entry.sched != nullptr) {
      entry.last = entry.sched->snapshot();
      entry.published = true;
    }
  }
}

util::Result<QueueSnapshot> LoadInformationService::query(
    const std::string& contact) const {
  auto it = resources_.find(contact);
  if (it == resources_.end() || !it->second.published) {
    return util::Status(util::ErrorCode::kNotFound,
                        "no published information for '" + contact + "'");
  }
  if (interval_ <= 0 && it->second.sched != nullptr) {
    return it->second.sched->snapshot();  // perfect information mode
  }
  return it->second.last;
}

sim::Time LoadInformationService::staleness(const std::string& contact) const {
  auto it = resources_.find(contact);
  if (it == resources_.end() || !it->second.published) return sim::kTimeNever;
  return engine_->now() - it->second.last.taken_at;
}

}  // namespace grid::sched
