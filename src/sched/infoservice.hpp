// Grid information service: published queue-state snapshots.
//
// Models the paper §2.2 option of resource managers "publish[ing]
// information about the current queue contents and scheduling policy".
// Snapshots are refreshed on a fixed interval, so queries observe stale
// data — the staleness that reference [14]'s simulation study identifies
// as the limit on forecast-guided co-allocation (see bench/ablate_forecast).
//
// Scale architecture (O(1k) resources, 100k-deep queues):
//   - contacts are interned to dense ContactIds once at registration, so
//     the per-query path never hashes a string or allocates an error
//     message;
//   - published snapshots are shared immutable `shared_ptr<const
//     QueueSnapshot>` values — a query hands out a reference, never a
//     deep copy of the queued-job vector;
//   - a publish round re-copies only resources whose scheduler `version()`
//     moved since the last round (dirty-flag republish); unchanged queues
//     cost O(1) per round regardless of depth;
//   - the aggregate `QueueSummary` is published alongside, so consumers
//     that only rank resources (predictors, brokers) never touch the
//     per-job detail at all.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sched/scheduler.hpp"
#include "simkit/engine.hpp"

namespace grid::sched {

class LoadInformationService {
 public:
  /// Dense interned contact handle; 0 is invalid.  Ids are stable for the
  /// service's lifetime (unregistering tombstones the slot, re-registering
  /// the same contact revives it).
  using ContactId = std::uint32_t;

  /// Shared immutable published snapshot.  Holders may keep the reference
  /// across later publish rounds; the service never mutates a snapshot it
  /// has handed out, it swaps in a fresh one.
  using SnapshotRef = std::shared_ptr<const QueueSnapshot>;

  struct Stats {
    std::uint64_t publish_rounds = 0;
    std::uint64_t snapshots_refreshed = 0;  // scheduler version moved
    std::uint64_t snapshots_skipped = 0;    // dirty flag said "unchanged"
    std::uint64_t queries = 0;
    std::uint64_t misses = 0;
  };

  /// Snapshots are refreshed every `publish_interval`; 0 publishes on every
  /// query (perfect information).
  LoadInformationService(sim::Engine& engine, sim::Time publish_interval);
  ~LoadInformationService();

  LoadInformationService(const LoadInformationService&) = delete;
  LoadInformationService& operator=(const LoadInformationService&) = delete;

  /// Registers a resource under its manager contact string.  The scheduler
  /// must outlive the service.  Re-registering a known contact revives its
  /// ContactId.
  void register_resource(std::string contact, const LocalScheduler* sched);
  void unregister_resource(const std::string& contact);

  /// Begins periodic publication (idempotent).
  void start();
  void stop();

  /// Refreshes all snapshots immediately.
  void publish_now();

  // ---- interned hot path ---------------------------------------------------

  /// Contact string -> dense id; 0 for contacts never registered.  Resolve
  /// once, then query by id.
  ContactId resolve(const std::string& contact) const;

  /// Most recently published snapshot, shared (no copy).  kNotFound for
  /// invalid / unregistered / never-published ids.
  util::Result<SnapshotRef> snapshot_ref(ContactId id) const;

  /// Aggregate-only published view — O(1) data regardless of queue depth.
  util::Result<QueueSummary> summary(ContactId id) const;

  /// Version of the published content: moves exactly when a publish round
  /// actually refreshed this resource's snapshot, so consumers can cache
  /// derived artifacts (e.g. encoded reply payloads) keyed on it.
  /// 0 means "don't cache" (unknown id, unregistered, or perfect-
  /// information mode where every query sees live state).
  std::uint64_t published_version(ContactId id) const;

  sim::Time staleness(ContactId id) const;

  // ---- string-keyed compatibility API --------------------------------------

  /// Most recently published snapshot (deep copy); kNotFound for unknown
  /// contacts.  Prefer resolve() + snapshot_ref() on hot paths.
  util::Result<QueueSnapshot> query(const std::string& contact) const;

  /// Age of the published snapshot for a contact (kTimeNever if unknown).
  sim::Time staleness(const std::string& contact) const;

  std::size_t resource_count() const { return registered_count_; }
  sim::Time publish_interval() const { return interval_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    std::string contact;
    const LocalScheduler* sched = nullptr;
    SnapshotRef snap;
    QueueSummary summary;
    std::uint64_t sched_version = 0;      // scheduler version at last refresh
    std::uint64_t published_version = 0;  // bumped on every content refresh
    sim::Time published_at = 0;           // last publish round touching this
    bool published = false;
    bool registered = false;
  };

  void tick();
  void refresh(Entry& e);
  Entry* entry(ContactId id);
  const Entry* entry(ContactId id) const;

  sim::Engine* engine_;
  sim::Time interval_;
  bool running_ = false;
  sim::EventId tick_event_;
  std::vector<Entry> entries_;  // indexed by ContactId - 1
  std::unordered_map<std::string, ContactId> intern_;
  std::size_t registered_count_ = 0;
  std::uint64_t next_published_version_ = 0;
  mutable Stats stats_;
};

}  // namespace grid::sched
