// Grid information service: published queue-state snapshots.
//
// Models the paper §2.2 option of resource managers "publish[ing]
// information about the current queue contents and scheduling policy".
// Snapshots are refreshed on a fixed interval, so queries observe stale
// data — the staleness that reference [14]'s simulation study identifies
// as the limit on forecast-guided co-allocation (see bench/ablate_forecast).
#pragma once

#include <string>
#include <unordered_map>

#include "sched/scheduler.hpp"
#include "simkit/engine.hpp"

namespace grid::sched {

class LoadInformationService {
 public:
  /// Snapshots are refreshed every `publish_interval`; 0 publishes on every
  /// query (perfect information).
  LoadInformationService(sim::Engine& engine, sim::Time publish_interval);
  ~LoadInformationService();

  LoadInformationService(const LoadInformationService&) = delete;
  LoadInformationService& operator=(const LoadInformationService&) = delete;

  /// Registers a resource under its manager contact string.  The scheduler
  /// must outlive the service.
  void register_resource(std::string contact, const LocalScheduler* sched);
  void unregister_resource(const std::string& contact);

  /// Begins periodic publication (idempotent).
  void start();
  void stop();

  /// Refreshes all snapshots immediately.
  void publish_now();

  /// Most recently published snapshot; kNotFound for unknown contacts.
  util::Result<QueueSnapshot> query(const std::string& contact) const;

  /// Age of the published snapshot for a contact (kTimeNever if unknown).
  sim::Time staleness(const std::string& contact) const;

  std::size_t resource_count() const { return resources_.size(); }
  sim::Time publish_interval() const { return interval_; }

 private:
  struct Entry {
    const LocalScheduler* sched = nullptr;
    QueueSnapshot last;
    bool published = false;
  };

  void tick();

  sim::Engine* engine_;
  sim::Time interval_;
  bool running_ = false;
  sim::EventId tick_event_;
  std::unordered_map<std::string, Entry> resources_;
};

}  // namespace grid::sched
