// Failure injection for co-allocation experiments.
//
// Schedules the Grid failure modes of paper §2 against a running
// simulation: host crashes (and recoveries), network partitions, and
// random message loss windows.  Used by the scenario benches and the
// property tests that assert the co-allocators' invariants under fire.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "simkit/engine.hpp"

namespace grid::app {

class FailureInjector {
 public:
  explicit FailureInjector(net::Network& network)
      : network_(&network),
        lossy_active_(std::make_shared<std::multiset<double>>()) {}

  /// Crashes a node at `at`; it stays down until restored.
  void crash_at(net::NodeId node, sim::Time at);

  /// Restores a crashed node at `at`.
  void restore_at(net::NodeId node, sim::Time at);

  /// Blocks traffic between the pair during [from, until).
  void partition_between(net::NodeId a, net::NodeId b, sim::Time from,
                         sim::Time until);

  /// Applies i.i.d. message loss probability `p` during [from, until).
  /// Windows may overlap or nest: at any instant the network sees the
  /// maximum loss probability among the active windows, and the end of one
  /// window never cancels another that is still open.
  void lossy_window(double p, sim::Time from, sim::Time until);

  /// Link flapping: the pair is alternately partitioned and healed every
  /// `period` during [from, until), starting partitioned; the link is
  /// guaranteed healed at `until`.  Models the intermittent-connectivity
  /// failure mode that defeats single-shot liveness checks.
  void flap_link(net::NodeId a, net::NodeId b, sim::Time from, sim::Time until,
                 sim::Time period);

  /// Slow-node latency spike: every message to or from `node` takes an
  /// extra `extra` during [from, until) — the "overloaded system" of §2
  /// that is slow rather than dead, the case a failure detector must NOT
  /// flag while timeouts still expire.
  void slow_node(net::NodeId node, sim::Time extra, sim::Time from,
                 sim::Time until);

  std::size_t injected_events() const { return injected_; }

 private:
  net::Network* network_;
  std::size_t injected_ = 0;
  /// Loss probabilities of currently-open windows; shared with the
  /// scheduled open/close lambdas so they outlive the injector.
  std::shared_ptr<std::multiset<double>> lossy_active_;
};

}  // namespace grid::app
