// Failure injection for co-allocation experiments.
//
// Schedules the Grid failure modes of paper §2 against a running
// simulation: host crashes (and recoveries), network partitions, and
// random message loss windows.  Used by the scenario benches and the
// property tests that assert the co-allocators' invariants under fire.
#pragma once

#include <string>
#include <vector>

#include "net/network.hpp"
#include "simkit/engine.hpp"

namespace grid::app {

class FailureInjector {
 public:
  explicit FailureInjector(net::Network& network) : network_(&network) {}

  /// Crashes a node at `at`; it stays down until restored.
  void crash_at(net::NodeId node, sim::Time at);

  /// Restores a crashed node at `at`.
  void restore_at(net::NodeId node, sim::Time at);

  /// Blocks traffic between the pair during [from, until).
  void partition_between(net::NodeId a, net::NodeId b, sim::Time from,
                         sim::Time until);

  /// Applies i.i.d. message loss probability `p` during [from, until).
  void lossy_window(double p, sim::Time from, sim::Time until);

  std::size_t injected_events() const { return injected_; }

 private:
  net::Network* network_;
  std::size_t injected_ = 0;
};

}  // namespace grid::app
