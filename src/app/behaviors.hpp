// Application process behaviours for co-allocation experiments.
//
// Parameterizes the application half of the paper's protocol: local
// initialization delay and checks, the barrier call, the failure modes of
// §2's scenario (a process that reports a failed check, crashes before
// checking in, or simply never responds because its system is overloaded),
// and post-release run time.  A shared BarrierStats collector records the
// per-process timings the Figure 4 analysis needs (barrier wait blocks,
// minimum wait zero, average wait ~ half of total job latency).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/app_barrier.hpp"
#include "gram/process.hpp"
#include "simkit/rng.hpp"
#include "simkit/stats.hpp"

namespace grid::app {

/// What a process does when it starts.
enum class FailureMode : std::uint8_t {
  kHealthy = 0,        // init, check in ok, run, exit ok
  kFailedCheck,        // init, check in with ok=false (application verdict)
  kCrashBeforeBarrier, // exit(false) without ever checking in
  kHang,               // never checks in (overloaded system, §2's scenario)
};

struct StartupProfile {
  /// Local, side-effect-free initialization before the barrier call.
  sim::Time init_delay = 20 * sim::kMillisecond;
  /// Uniform jitter added to init_delay: [0, init_jitter].
  sim::Time init_jitter = 0;
  /// Post-release computation time; 0 exits immediately after release.
  sim::Time run_time = 0;
  FailureMode mode = FailureMode::kHealthy;
  /// With probability `failure_probability`, a process draws `failure_mode_
  /// on_chance` instead of `mode` (stochastic failures for the scenario
  /// benches).
  double failure_probability = 0.0;
  FailureMode mode_on_chance = FailureMode::kHang;
  /// When true the stochastic failure applies only to local rank 0, making
  /// `failure_probability` a *per-subjob* (per-machine) failure rate — the
  /// paper's failure unit — rather than per-process.
  bool failure_per_job = false;
  /// When > 0 the barrier check-in is re-sent on this period until release
  /// or abort (BarrierClient::set_checkin_resend), protecting the one
  /// unacknowledged protocol step against message loss.  Default off so
  /// loss-free experiments keep their exact message counts.
  sim::Time checkin_resend = 0;
};

/// One process's recorded barrier timings.
struct BarrierRecord {
  std::string host;
  std::uint64_t subjob = 0;  // SubjobHandle, 0 if unconfigured
  std::int32_t rank = 0;
  sim::Time entered_at = -1;
  sim::Time released_at = -1;
  sim::Time wait() const {
    return (entered_at >= 0 && released_at >= 0) ? released_at - entered_at
                                                 : -1;
  }
};

/// Shared collector; one per experiment.
struct BarrierStats {
  std::vector<BarrierRecord> records;
  std::int64_t checkins_ok = 0;
  std::int64_t checkins_failed = 0;
  std::int64_t releases = 0;
  std::int64_t aborts = 0;
  std::int64_t completions = 0;

  util::Samples wait_samples() const;
  void clear();
};

/// The standard co-allocated process: implements the behaviour selected by
/// its StartupProfile.
class CoallocatedProcess final : public gram::ProcessBehavior {
 public:
  CoallocatedProcess(StartupProfile profile, BarrierStats* stats,
                     sim::Rng rng);
  ~CoallocatedProcess() override;

  void start(gram::ProcessApi& api) override;
  void on_terminate() override;

 private:
  void enter_barrier(bool ok, const std::string& message);

  StartupProfile profile_;
  BarrierStats* stats_;
  sim::Rng rng_;
  gram::ProcessApi* api_ = nullptr;
  std::unique_ptr<core::BarrierClient> barrier_;
  sim::EventId init_event_;
  sim::EventId run_event_;
  std::uint64_t subjob_ = 0;
};

/// Installs an executable that spawns CoallocatedProcess instances.
/// `stats` may be nullptr; `seed` derives per-process RNG streams.
void install_app(gram::ExecutableRegistry& registry, const std::string& name,
                 StartupProfile profile, BarrierStats* stats,
                 std::uint64_t seed = 0x5eed);

}  // namespace grid::app
