#include "app/behaviors.hpp"

#include <charconv>

namespace grid::app {

util::Samples BarrierStats::wait_samples() const {
  util::Samples s;
  for (const BarrierRecord& r : records) {
    const sim::Time w = r.wait();
    if (w >= 0) s.add(sim::to_seconds(w));
  }
  return s;
}

void BarrierStats::clear() { *this = BarrierStats{}; }

CoallocatedProcess::CoallocatedProcess(StartupProfile profile,
                                       BarrierStats* stats, sim::Rng rng)
    : profile_(profile), stats_(stats), rng_(rng) {}

CoallocatedProcess::~CoallocatedProcess() {
  // The behaviour can be destroyed with timers pending (exit from another
  // path, job termination); cancel them or they would fire into freed
  // memory.
  if (api_ != nullptr) {
    api_->engine().cancel(init_event_);
    api_->engine().cancel(run_event_);
  }
}

void CoallocatedProcess::start(gram::ProcessApi& api) {
  api_ = &api;
  FailureMode mode = profile_.mode;
  const bool eligible =
      !profile_.failure_per_job || api.local_rank() == 0;
  if (eligible && profile_.failure_probability > 0.0 &&
      rng_.chance(profile_.failure_probability)) {
    mode = profile_.mode_on_chance;
  }
  sim::Time init = profile_.init_delay;
  if (profile_.init_jitter > 0) {
    init += rng_.uniform_time(0, profile_.init_jitter);
  }
  switch (mode) {
    case FailureMode::kHang:
      return;  // never checks in; the co-allocator's timeout decides
    case FailureMode::kCrashBeforeBarrier:
      init_event_ = api.engine().schedule_after(init, [this] {
        api_->exit(false, "process crashed during initialization");
      });
      return;
    case FailureMode::kFailedCheck:
      init_event_ = api.engine().schedule_after(init, [this] {
        enter_barrier(false, "application startup check failed");
      });
      return;
    case FailureMode::kHealthy:
      init_event_ = api.engine().schedule_after(
          init, [this] { enter_barrier(true, ""); });
      return;
  }
}

void CoallocatedProcess::enter_barrier(bool ok, const std::string& message) {
  barrier_ = std::make_unique<core::BarrierClient>(*api_);
  barrier_->set_checkin_resend(profile_.checkin_resend);
  if (!barrier_->configured()) {
    // Started directly under GRAM (no co-allocator): behave as a plain job.
    if (!ok) {
      api_->exit(false, message);
      return;
    }
    if (profile_.run_time > 0) {
      run_event_ = api_->engine().schedule_after(
          profile_.run_time, [this] { api_->exit(true, ""); });
    } else {
      api_->exit(true, "");
    }
    return;
  }
  {
    const std::string s =
        api_->getenv(std::string(core::env::kSubjob));
    std::uint64_t v = 0;
    std::from_chars(s.data(), s.data() + s.size(), v);
    subjob_ = v;
  }
  if (stats_ != nullptr) {
    if (ok) {
      ++stats_->checkins_ok;
    } else {
      ++stats_->checkins_failed;
    }
  }
  barrier_->enter(
      ok, message,
      [this](const core::ReleaseInfo& info) {
        if (stats_ != nullptr) {
          ++stats_->releases;
          BarrierRecord rec;
          rec.host = api_->host_name();
          rec.subjob = subjob_;
          rec.rank = info.global_rank;
          rec.entered_at = barrier_->entered_at();
          rec.released_at = barrier_->released_at();
          stats_->records.push_back(std::move(rec));
        }
        if (profile_.run_time > 0) {
          run_event_ = api_->engine().schedule_after(profile_.run_time, [this] {
            if (stats_ != nullptr) ++stats_->completions;
            api_->exit(true, "");
          });
        } else {
          if (stats_ != nullptr) ++stats_->completions;
          api_->exit(true, "");
        }
      },
      [this](const std::string& /*reason*/) {
        if (stats_ != nullptr) ++stats_->aborts;
        api_->exit(true, "aborted by co-allocator");
      });
}

void CoallocatedProcess::on_terminate() {
  if (api_ != nullptr) {
    api_->engine().cancel(init_event_);
    api_->engine().cancel(run_event_);
  }
  barrier_.reset();  // detach the process endpoint
}

void install_app(gram::ExecutableRegistry& registry, const std::string& name,
                 StartupProfile profile, BarrierStats* stats,
                 std::uint64_t seed) {
  // Each spawned process gets an independent random stream derived from a
  // per-executable base, keeping whole experiments replayable.
  auto base = std::make_shared<sim::Rng>(seed);
  registry.install(name, [profile, stats, base]() {
    return std::make_unique<CoallocatedProcess>(profile, stats, base->fork());
  });
}

}  // namespace grid::app
