#include "app/failure.hpp"

namespace grid::app {

void FailureInjector::crash_at(net::NodeId node, sim::Time at) {
  ++injected_;
  network_->engine().schedule_at(
      at, [net = network_, node] { net->set_node_up(node, false); });
}

void FailureInjector::restore_at(net::NodeId node, sim::Time at) {
  ++injected_;
  network_->engine().schedule_at(
      at, [net = network_, node] { net->set_node_up(node, true); });
}

void FailureInjector::partition_between(net::NodeId a, net::NodeId b,
                                        sim::Time from, sim::Time until) {
  ++injected_;
  network_->engine().schedule_at(
      from, [net = network_, a, b] { net->set_partitioned(a, b, true); });
  network_->engine().schedule_at(
      until, [net = network_, a, b] { net->set_partitioned(a, b, false); });
}

void FailureInjector::lossy_window(double p, sim::Time from, sim::Time until) {
  ++injected_;
  network_->engine().schedule_at(
      from, [net = network_, p] { net->set_drop_probability(p); });
  network_->engine().schedule_at(
      until, [net = network_] { net->set_drop_probability(0.0); });
}

}  // namespace grid::app
