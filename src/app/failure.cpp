#include "app/failure.hpp"

namespace grid::app {

void FailureInjector::crash_at(net::NodeId node, sim::Time at) {
  ++injected_;
  network_->engine().schedule_at(
      at, [net = network_, node] { net->set_node_up(node, false); });
}

void FailureInjector::restore_at(net::NodeId node, sim::Time at) {
  ++injected_;
  network_->engine().schedule_at(
      at, [net = network_, node] { net->set_node_up(node, true); });
}

void FailureInjector::partition_between(net::NodeId a, net::NodeId b,
                                        sim::Time from, sim::Time until) {
  ++injected_;
  network_->engine().schedule_at(
      from, [net = network_, a, b] { net->set_partitioned(a, b, true); });
  network_->engine().schedule_at(
      until, [net = network_, a, b] { net->set_partitioned(a, b, false); });
}

void FailureInjector::lossy_window(double p, sim::Time from, sim::Time until) {
  ++injected_;
  network_->engine().schedule_at(
      from, [net = network_, windows = lossy_active_, p] {
        windows->insert(p);
        net->set_drop_probability(*windows->rbegin());
      });
  network_->engine().schedule_at(
      until, [net = network_, windows = lossy_active_, p] {
        if (auto it = windows->find(p); it != windows->end()) {
          windows->erase(it);
        }
        net->set_drop_probability(windows->empty() ? 0.0
                                                   : *windows->rbegin());
      });
}

void FailureInjector::flap_link(net::NodeId a, net::NodeId b, sim::Time from,
                                sim::Time until, sim::Time period) {
  if (period <= 0) {
    partition_between(a, b, from, until);
    return;
  }
  ++injected_;
  bool down = true;
  for (sim::Time t = from; t < until; t += period) {
    network_->engine().schedule_at(t, [net = network_, a, b, down] {
      net->set_partitioned(a, b, down);
    });
    down = !down;
  }
  network_->engine().schedule_at(
      until, [net = network_, a, b] { net->set_partitioned(a, b, false); });
}

void FailureInjector::slow_node(net::NodeId node, sim::Time extra,
                                sim::Time from, sim::Time until) {
  ++injected_;
  network_->engine().schedule_at(from, [net = network_, node, extra] {
    net->set_node_extra_delay(node, extra);
  });
  network_->engine().schedule_at(until, [net = network_, node] {
    net->set_node_extra_delay(node, 0);
  });
}

}  // namespace grid::app
