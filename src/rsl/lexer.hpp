// RSL lexer.
//
// Follows the Globus RSL v1.0 lexical rules that the paper's Figure 1
// exercises: parenthesized structure, the +/&/| combinators, relational
// operators, unquoted literals, single- or double-quoted strings (a doubled
// quote escapes itself), $(NAME) variable references, and comments
// introduced by "(*" and terminated by "*)".
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "rsl/token.hpp"
#include "simkit/status.hpp"

namespace grid::rsl {

class Lexer {
 public:
  explicit Lexer(std::string_view source);

  /// Returns the next token, advancing the cursor.
  Token next();

  /// Peeks without consuming.
  const Token& peek();

 private:
  Token lex();
  Token lex_quoted(char quote);
  Token lex_variable();
  Token lex_unquoted();
  bool skip_space_and_comments(Token* error_out);
  char cur() const { return src_[pos_]; }
  bool eof() const { return pos_ >= src_.size(); }

  std::string src_;
  std::size_t pos_ = 0;
  bool has_peek_ = false;
  Token peek_;
};

/// Convenience: tokenizes the whole input; stops after the first error
/// token (which is included in the result).
std::vector<Token> tokenize(std::string_view source);

}  // namespace grid::rsl
