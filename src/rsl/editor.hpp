// Multi-request editor: the add / delete / substitute operations that the
// interactive transaction strategy applies to a pending co-allocation
// request before commit (paper §3.2).
//
// The editor works on the typed JobRequest list and tracks an edit journal
// so co-allocation agents (and tests) can audit what changed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rsl/attributes.hpp"
#include "simkit/status.hpp"

namespace grid::rsl {

/// One entry in the edit journal.
struct EditRecord {
  enum class Kind { kAdd, kDelete, kSubstitute };
  Kind kind;
  std::size_t index;      // subjob position the edit applied to
  std::string label;      // label of the affected subjob ("" if unlabeled)
  std::string rendering;  // RSL text of the new subjob (add/substitute)
};

class RequestEditor {
 public:
  explicit RequestEditor(std::vector<JobRequest> subjobs);

  /// Builds an editor from RSL multi-request text.
  static util::Result<RequestEditor> from_text(std::string_view rsl_text);

  const std::vector<JobRequest>& subjobs() const { return subjobs_; }
  std::size_t size() const { return subjobs_.size(); }
  const std::vector<EditRecord>& journal() const { return journal_; }

  /// Appends a subjob; returns its index.
  std::size_t add(JobRequest subjob);

  /// Removes the subjob at `index`.
  util::Status remove(std::size_t index);

  /// Removes the first subjob whose label matches.
  util::Status remove_labeled(std::string_view label);

  /// Replaces the subjob at `index` with `replacement`.
  util::Status substitute(std::size_t index, JobRequest replacement);

  /// Finds the first subjob with the given label; size() if absent.
  std::size_t find_labeled(std::string_view label) const;

  /// Total processes across all subjobs.
  std::int64_t total_count() const;

  /// Rebuilds the multi-request spec.
  Spec to_spec() const;
  std::string to_string() const { return to_spec().to_string(); }

 private:
  std::vector<JobRequest> subjobs_;
  std::vector<EditRecord> journal_;
};

}  // namespace grid::rsl
