#include "rsl/editor.hpp"

#include "rsl/parser.hpp"

namespace grid::rsl {

RequestEditor::RequestEditor(std::vector<JobRequest> subjobs)
    : subjobs_(std::move(subjobs)) {}

util::Result<RequestEditor> RequestEditor::from_text(
    std::string_view rsl_text) {
  auto spec = parse_multi_request(rsl_text);
  if (!spec.is_ok()) return spec.status();
  auto jobs = parse_job_requests(spec.value());
  if (!jobs.is_ok()) return jobs.status();
  return RequestEditor(jobs.take());
}

std::size_t RequestEditor::add(JobRequest subjob) {
  journal_.push_back(EditRecord{EditRecord::Kind::kAdd, subjobs_.size(),
                                subjob.label, subjob.to_spec().to_string()});
  subjobs_.push_back(std::move(subjob));
  return subjobs_.size() - 1;
}

util::Status RequestEditor::remove(std::size_t index) {
  if (index >= subjobs_.size()) {
    return {util::ErrorCode::kNotFound,
            "no subjob at index " + std::to_string(index)};
  }
  journal_.push_back(EditRecord{EditRecord::Kind::kDelete, index,
                                subjobs_[index].label, ""});
  subjobs_.erase(subjobs_.begin() + static_cast<std::ptrdiff_t>(index));
  return util::Status::ok();
}

util::Status RequestEditor::remove_labeled(std::string_view label) {
  const std::size_t i = find_labeled(label);
  if (i == subjobs_.size()) {
    return {util::ErrorCode::kNotFound,
            "no subjob labeled '" + std::string(label) + "'"};
  }
  return remove(i);
}

util::Status RequestEditor::substitute(std::size_t index,
                                       JobRequest replacement) {
  if (index >= subjobs_.size()) {
    return {util::ErrorCode::kNotFound,
            "no subjob at index " + std::to_string(index)};
  }
  journal_.push_back(EditRecord{EditRecord::Kind::kSubstitute, index,
                                replacement.label,
                                replacement.to_spec().to_string()});
  subjobs_[index] = std::move(replacement);
  return util::Status::ok();
}

std::size_t RequestEditor::find_labeled(std::string_view label) const {
  for (std::size_t i = 0; i < subjobs_.size(); ++i) {
    if (subjobs_[i].label == label) return i;
  }
  return subjobs_.size();
}

std::int64_t RequestEditor::total_count() const {
  std::int64_t total = 0;
  for (const JobRequest& j : subjobs_) total += j.count;
  return total;
}

Spec RequestEditor::to_spec() const {
  std::vector<Spec> children;
  children.reserve(subjobs_.size());
  for (const JobRequest& j : subjobs_) children.push_back(j.to_spec());
  return Spec::multi(std::move(children));
}

}  // namespace grid::rsl
