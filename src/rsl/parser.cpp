#include "rsl/parser.hpp"

#include <string>

#include "rsl/lexer.hpp"

namespace grid::rsl {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view source) : lexer_(source) {}

  util::Result<Spec> parse_request() {
    Spec spec;
    if (auto st = parse_spec(&spec); !st.is_ok()) return st;
    const Token& t = lexer_.peek();
    if (t.kind != TokenKind::kEnd) {
      return error(t, "trailing input after specification");
    }
    return spec;
  }

 private:
  static util::Status error(const Token& t, const std::string& what) {
    return {util::ErrorCode::kInvalidArgument,
            "offset " + std::to_string(t.offset) + ": " + what +
                (t.kind == TokenKind::kError ? " (" + t.text + ")" : "")};
  }

  static bool is_combinator(TokenKind k) {
    return k == TokenKind::kPlus || k == TokenKind::kAmp ||
           k == TokenKind::kPipe;
  }

  static bool is_op(TokenKind k) {
    switch (k) {
      case TokenKind::kEq:
      case TokenKind::kNe:
      case TokenKind::kLt:
      case TokenKind::kLe:
      case TokenKind::kGt:
      case TokenKind::kGe:
        return true;
      default:
        return false;
    }
  }

  static Op to_op(TokenKind k) {
    switch (k) {
      case TokenKind::kNe:
        return Op::kNe;
      case TokenKind::kLt:
        return Op::kLt;
      case TokenKind::kLe:
        return Op::kLe;
      case TokenKind::kGt:
        return Op::kGt;
      case TokenKind::kGe:
        return Op::kGe;
      default:
        return Op::kEq;
    }
  }

  // spec := combinator group+ | group+ (implicit conjunction)
  util::Status parse_spec(Spec* out) {
    const Token& t = lexer_.peek();
    Spec::Kind kind = Spec::Kind::kConj;
    if (is_combinator(t.kind)) {
      kind = t.kind == TokenKind::kPlus
                 ? Spec::Kind::kMulti
                 : (t.kind == TokenKind::kAmp ? Spec::Kind::kConj
                                              : Spec::Kind::kDisj);
      lexer_.next();
    } else if (t.kind != TokenKind::kLParen) {
      return error(t, "expected '+', '&', '|', or '('");
    }
    std::vector<Spec> children;
    for (;;) {
      const Token& p = lexer_.peek();
      if (p.kind != TokenKind::kLParen) break;
      Spec child;
      if (auto st = parse_group(&child); !st.is_ok()) return st;
      children.push_back(std::move(child));
    }
    if (children.empty()) {
      return error(lexer_.peek(), "expected at least one '(...)' group");
    }
    switch (kind) {
      case Spec::Kind::kMulti:
        *out = Spec::multi(std::move(children));
        break;
      case Spec::Kind::kConj:
        *out = Spec::conj(std::move(children));
        break;
      case Spec::Kind::kDisj:
        *out = Spec::disj(std::move(children));
        break;
      case Spec::Kind::kRelation:
        break;  // unreachable
    }
    return util::Status::ok();
  }

  // group := '(' (spec | relation) ')'
  util::Status parse_group(Spec* out) {
    Token open = lexer_.next();  // '('
    const Token& t = lexer_.peek();
    if (is_combinator(t.kind) || t.kind == TokenKind::kLParen) {
      if (auto st = parse_spec(out); !st.is_ok()) return st;
    } else if (t.kind == TokenKind::kLiteral) {
      Relation r;
      if (auto st = parse_relation(&r); !st.is_ok()) return st;
      *out = Spec::relation(std::move(r));
    } else {
      return error(t, "expected a nested specification or a relation");
    }
    Token close = lexer_.next();
    if (close.kind != TokenKind::kRParen) {
      return error(close, "expected ')' to close group opened at offset " +
                              std::to_string(open.offset));
    }
    return util::Status::ok();
  }

  // relation := attribute op value+
  util::Status parse_relation(Relation* out) {
    Token attr = lexer_.next();
    if (attr.kind != TokenKind::kLiteral) {
      return error(attr, "expected attribute name");
    }
    out->attribute = canonical_attribute(attr.text);
    Token op = lexer_.next();
    if (!is_op(op.kind)) {
      return error(op, "expected relational operator after attribute '" +
                           attr.text + "'");
    }
    out->op = to_op(op.kind);
    for (;;) {
      const Token& t = lexer_.peek();
      if (t.kind == TokenKind::kRParen) break;
      Value v;
      if (auto st = parse_value(&v); !st.is_ok()) return st;
      out->values.push_back(std::move(v));
    }
    if (out->values.empty()) {
      return error(lexer_.peek(),
                   "relation '" + attr.text + "' has no value");
    }
    return util::Status::ok();
  }

  // value := literal | variable | '(' value+ ')'
  util::Status parse_value(Value* out) {
    Token t = lexer_.next();
    switch (t.kind) {
      case TokenKind::kLiteral:
        *out = Value::literal(std::move(t.text));
        return util::Status::ok();
      case TokenKind::kVariable:
        *out = Value::variable(std::move(t.text));
        return util::Status::ok();
      case TokenKind::kLParen: {
        std::vector<Value> items;
        for (;;) {
          const Token& p = lexer_.peek();
          if (p.kind == TokenKind::kRParen) {
            lexer_.next();
            break;
          }
          if (p.kind == TokenKind::kEnd || p.kind == TokenKind::kError) {
            return error(p, "unterminated value list");
          }
          Value item;
          if (auto st = parse_value(&item); !st.is_ok()) return st;
          items.push_back(std::move(item));
        }
        *out = Value::list(std::move(items));
        return util::Status::ok();
      }
      default:
        return error(t, "expected a value");
    }
  }

  Lexer lexer_;
};

}  // namespace

util::Result<Spec> parse(std::string_view source) {
  Parser parser(source);
  return parser.parse_request();
}

util::Result<Spec> parse_multi_request(std::string_view source) {
  auto result = parse(source);
  if (!result.is_ok()) return result;
  if (!result.value().is_multi()) {
    return util::Status(util::ErrorCode::kInvalidArgument,
                        "co-allocation request must be a '+' multi-request");
  }
  return result;
}

}  // namespace grid::rsl
