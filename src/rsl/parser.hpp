// RSL parser: text -> Spec tree.
//
// Grammar (after the Globus RSL v1.0 grammar, restricted to the constructs
// the resource management architecture defines):
//
//   request   := spec
//   spec      := ('+' | '&' | '|') group+         combinator over groups
//              | group+                           implicit conjunction
//   group     := '(' spec-or-rel ')'
//   spec-or-rel := spec | relation
//   relation  := attribute op value+
//   op        := '=' | '!=' | '<' | '<=' | '>' | '>='
//   value     := literal | $(NAME) | '(' value+ ')'
//
// Attribute names are canonicalized (lowercase, underscores stripped).
#pragma once

#include <string_view>

#include "rsl/ast.hpp"
#include "simkit/status.hpp"

namespace grid::rsl {

/// Parses a complete RSL request.  Errors carry a byte offset and a
/// description, e.g. "offset 17: expected ')'".
util::Result<Spec> parse(std::string_view source);

/// Parses and requires the result to be a multi-request ('+' at top level),
/// the form DUROC accepts (paper Fig. 1).
util::Result<Spec> parse_multi_request(std::string_view source);

}  // namespace grid::rsl
