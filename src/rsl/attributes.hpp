// Typed view of a subjob specification.
//
// Maps between the untyped RSL relation set and the attributes the resource
// management architecture defines (paper [6] §4 and Fig. 1 of this paper):
// resourceManagerContact, count, executable, arguments, environment,
// subjobStartType, label, ...  Unknown attributes are preserved verbatim so
// co-allocators can pass application-specific relations through to local
// managers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rsl/ast.hpp"
#include "simkit/status.hpp"
#include "simkit/time.hpp"

namespace grid::rsl {

/// Canonical names of the well-known attributes.
namespace attr {
inline constexpr std::string_view kResourceManagerContact =
    "resourcemanagercontact";
inline constexpr std::string_view kCount = "count";
inline constexpr std::string_view kExecutable = "executable";
inline constexpr std::string_view kArguments = "arguments";
inline constexpr std::string_view kEnvironment = "environment";
inline constexpr std::string_view kDirectory = "directory";
inline constexpr std::string_view kStdout = "stdout";
inline constexpr std::string_view kStderr = "stderr";
inline constexpr std::string_view kMaxWallTime = "maxwalltime";  // minutes
inline constexpr std::string_view kJobType = "jobtype";
inline constexpr std::string_view kSubjobStartType = "subjobstarttype";
inline constexpr std::string_view kLabel = "label";
inline constexpr std::string_view kReservationId = "reservationid";
}  // namespace attr

/// DUROC subjob commitment category (paper §3.2).
enum class SubjobStartType {
  kRequired,     // failure aborts the whole computation
  kInteractive,  // failure triggers a callback; agent may edit the request
  kOptional,     // failure is ignored; subjob joins if and when it starts
};

std::string to_string(SubjobStartType t);
util::Result<SubjobStartType> parse_start_type(std::string_view text);

/// Job process arrangement requested from the local manager.
enum class JobType {
  kMultiple,  // count independent processes (default)
  kMpi,       // processes started as one parallel job
  kSingle,    // one process regardless of count
};

std::string to_string(JobType t);
util::Result<JobType> parse_job_type(std::string_view text);

/// A fully-typed subjob description.
struct JobRequest {
  std::string resource_manager_contact;  // required
  std::string executable;                // required
  std::int32_t count = 1;
  std::vector<std::string> arguments;
  std::vector<std::pair<std::string, std::string>> environment;
  std::string directory;
  std::string stdout_path;
  std::string stderr_path;
  std::optional<sim::Time> max_wall_time;
  JobType job_type = JobType::kMultiple;
  SubjobStartType start_type = SubjobStartType::kRequired;
  std::string label;
  /// Binds the job to a previously acquired advance reservation on the
  /// target resource manager (paper §5 co-reservation); 0 = best effort.
  std::uint64_t reservation_id = 0;

  /// Relations with attributes this layer does not interpret, preserved in
  /// order for pass-through to the local resource manager.
  std::vector<Relation> extras;

  /// Extracts a typed request from a conjunction spec.  Fails on missing
  /// required attributes, non-'=' operators on known attributes, malformed
  /// counts, or unknown enum values.
  static util::Result<JobRequest> from_spec(const Spec& conj);

  /// Rebuilds an equivalent conjunction spec (canonical attribute order,
  /// extras appended last).
  Spec to_spec() const;

  bool operator==(const JobRequest& other) const = default;
};

/// Parses a '+' multi-request into typed subjob descriptions.
util::Result<std::vector<JobRequest>> parse_job_requests(const Spec& multi);

}  // namespace grid::rsl
