#include "rsl/attributes.hpp"

#include <algorithm>

namespace grid::rsl {
namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

util::Status require_eq(const Relation& r) {
  if (r.op != Op::kEq) {
    return {util::ErrorCode::kInvalidArgument,
            "attribute '" + r.attribute + "' requires '='"};
  }
  return util::Status::ok();
}

util::Result<std::string> single_string(const Relation& r) {
  if (auto st = require_eq(r); !st.is_ok()) return st;
  const Value* v = r.single_value();
  if (v == nullptr || !v->is_literal()) {
    return util::Status(util::ErrorCode::kInvalidArgument,
                        "attribute '" + r.attribute +
                            "' requires a single literal value");
  }
  return v->text();
}

util::Result<std::int64_t> single_int(const Relation& r) {
  auto s = single_string(r);
  if (!s.is_ok()) return s.status();
  const Value* v = r.single_value();
  auto n = v->as_int();
  if (!n.has_value()) {
    return util::Status(util::ErrorCode::kInvalidArgument,
                        "attribute '" + r.attribute + "' requires an integer");
  }
  return *n;
}

}  // namespace

std::string to_string(SubjobStartType t) {
  switch (t) {
    case SubjobStartType::kRequired:
      return "required";
    case SubjobStartType::kInteractive:
      return "interactive";
    case SubjobStartType::kOptional:
      return "optional";
  }
  return "?";
}

util::Result<SubjobStartType> parse_start_type(std::string_view text) {
  const std::string t = lower(text);
  if (t == "required") return SubjobStartType::kRequired;
  if (t == "interactive") return SubjobStartType::kInteractive;
  if (t == "optional") return SubjobStartType::kOptional;
  return util::Status(util::ErrorCode::kInvalidArgument,
                      "unknown subjobStartType '" + std::string(text) + "'");
}

std::string to_string(JobType t) {
  switch (t) {
    case JobType::kMultiple:
      return "multiple";
    case JobType::kMpi:
      return "mpi";
    case JobType::kSingle:
      return "single";
  }
  return "?";
}

util::Result<JobType> parse_job_type(std::string_view text) {
  const std::string t = lower(text);
  if (t == "multiple") return JobType::kMultiple;
  if (t == "mpi") return JobType::kMpi;
  if (t == "single") return JobType::kSingle;
  return util::Status(util::ErrorCode::kInvalidArgument,
                      "unknown jobType '" + std::string(text) + "'");
}

util::Result<JobRequest> JobRequest::from_spec(const Spec& conj) {
  if (!conj.is_conj()) {
    return util::Status(util::ErrorCode::kInvalidArgument,
                        "subjob specification must be a '&' conjunction");
  }
  JobRequest out;
  for (const Spec& child : conj.children()) {
    if (!child.is_relation()) {
      return util::Status(
          util::ErrorCode::kInvalidArgument,
          "nested specifications inside a subjob are not supported");
    }
    const Relation& r = child.relation();
    const std::string& a = r.attribute;
    if (a == attr::kResourceManagerContact) {
      auto s = single_string(r);
      if (!s.is_ok()) return s.status();
      out.resource_manager_contact = s.take();
    } else if (a == attr::kExecutable) {
      auto s = single_string(r);
      if (!s.is_ok()) return s.status();
      out.executable = s.take();
    } else if (a == attr::kCount) {
      auto n = single_int(r);
      if (!n.is_ok()) return n.status();
      if (n.value() < 1 || n.value() > 1'000'000) {
        return util::Status(util::ErrorCode::kInvalidArgument,
                            "count out of range: " +
                                std::to_string(n.value()));
      }
      out.count = static_cast<std::int32_t>(n.value());
    } else if (a == attr::kArguments) {
      if (auto st = require_eq(r); !st.is_ok()) return st;
      for (const Value& v : r.values) {
        if (!v.is_literal()) {
          return util::Status(util::ErrorCode::kInvalidArgument,
                              "arguments must be literal values");
        }
        out.arguments.push_back(v.text());
      }
    } else if (a == attr::kEnvironment) {
      if (auto st = require_eq(r); !st.is_ok()) return st;
      for (const Value& v : r.values) {
        if (!v.is_list() || v.items().size() != 2 ||
            !v.items()[0].is_literal() || !v.items()[1].is_literal()) {
          return util::Status(
              util::ErrorCode::kInvalidArgument,
              "environment entries must be (NAME value) pairs");
        }
        out.environment.emplace_back(v.items()[0].text(),
                                     v.items()[1].text());
      }
    } else if (a == attr::kDirectory) {
      auto s = single_string(r);
      if (!s.is_ok()) return s.status();
      out.directory = s.take();
    } else if (a == attr::kStdout) {
      auto s = single_string(r);
      if (!s.is_ok()) return s.status();
      out.stdout_path = s.take();
    } else if (a == attr::kStderr) {
      auto s = single_string(r);
      if (!s.is_ok()) return s.status();
      out.stderr_path = s.take();
    } else if (a == attr::kMaxWallTime) {
      auto n = single_int(r);
      if (!n.is_ok()) return n.status();
      if (n.value() < 1) {
        return util::Status(util::ErrorCode::kInvalidArgument,
                            "maxWallTime must be positive minutes");
      }
      out.max_wall_time = n.value() * sim::kMinute;
    } else if (a == attr::kJobType) {
      auto s = single_string(r);
      if (!s.is_ok()) return s.status();
      auto t = parse_job_type(s.value());
      if (!t.is_ok()) return t.status();
      out.job_type = t.value();
    } else if (a == attr::kSubjobStartType) {
      auto s = single_string(r);
      if (!s.is_ok()) return s.status();
      auto t = parse_start_type(s.value());
      if (!t.is_ok()) return t.status();
      out.start_type = t.value();
    } else if (a == attr::kLabel) {
      auto s = single_string(r);
      if (!s.is_ok()) return s.status();
      out.label = s.take();
    } else if (a == attr::kReservationId) {
      auto n = single_int(r);
      if (!n.is_ok()) return n.status();
      if (n.value() < 1) {
        return util::Status(util::ErrorCode::kInvalidArgument,
                            "reservationId must be positive");
      }
      out.reservation_id = static_cast<std::uint64_t>(n.value());
    } else {
      out.extras.push_back(r);
    }
  }
  if (out.resource_manager_contact.empty()) {
    return util::Status(util::ErrorCode::kInvalidArgument,
                        "subjob is missing resourceManagerContact");
  }
  if (out.executable.empty()) {
    return util::Status(util::ErrorCode::kInvalidArgument,
                        "subjob is missing executable");
  }
  return out;
}

Spec JobRequest::to_spec() const {
  std::vector<Spec> rels;
  rels.push_back(Spec::relation(Relation::eq(attr::kResourceManagerContact,
                                             resource_manager_contact)));
  rels.push_back(Spec::relation(
      Relation::eq(attr::kCount, static_cast<std::int64_t>(count))));
  rels.push_back(Spec::relation(Relation::eq(attr::kExecutable, executable)));
  if (!arguments.empty()) {
    Relation r;
    r.attribute = std::string(attr::kArguments);
    for (const std::string& a : arguments) {
      r.values.push_back(Value::literal(a));
    }
    rels.push_back(Spec::relation(std::move(r)));
  }
  if (!environment.empty()) {
    Relation r;
    r.attribute = std::string(attr::kEnvironment);
    for (const auto& [name, value] : environment) {
      r.values.push_back(
          Value::list({Value::literal(name), Value::literal(value)}));
    }
    rels.push_back(Spec::relation(std::move(r)));
  }
  if (!directory.empty()) {
    rels.push_back(Spec::relation(Relation::eq(attr::kDirectory, directory)));
  }
  if (!stdout_path.empty()) {
    rels.push_back(Spec::relation(Relation::eq(attr::kStdout, stdout_path)));
  }
  if (!stderr_path.empty()) {
    rels.push_back(Spec::relation(Relation::eq(attr::kStderr, stderr_path)));
  }
  if (max_wall_time.has_value()) {
    rels.push_back(Spec::relation(Relation::eq(
        attr::kMaxWallTime,
        static_cast<std::int64_t>(*max_wall_time / sim::kMinute))));
  }
  if (job_type != JobType::kMultiple) {
    rels.push_back(
        Spec::relation(Relation::eq(attr::kJobType, to_string(job_type))));
  }
  rels.push_back(Spec::relation(
      Relation::eq(attr::kSubjobStartType, to_string(start_type))));
  if (!label.empty()) {
    rels.push_back(Spec::relation(Relation::eq(attr::kLabel, label)));
  }
  if (reservation_id != 0) {
    rels.push_back(Spec::relation(Relation::eq(
        attr::kReservationId, static_cast<std::int64_t>(reservation_id))));
  }
  for (const Relation& r : extras) {
    rels.push_back(Spec::relation(r));
  }
  return Spec::conj(std::move(rels));
}

util::Result<std::vector<JobRequest>> parse_job_requests(const Spec& multi) {
  if (!multi.is_multi()) {
    return util::Status(util::ErrorCode::kInvalidArgument,
                        "expected a '+' multi-request");
  }
  std::vector<JobRequest> out;
  out.reserve(multi.children().size());
  for (const Spec& child : multi.children()) {
    auto r = JobRequest::from_spec(child);
    if (!r.is_ok()) return r.status();
    out.push_back(r.take());
  }
  return out;
}

}  // namespace grid::rsl
