#include "rsl/ast.hpp"

#include <cctype>
#include <charconv>

namespace grid::rsl {
namespace {

bool needs_quoting(const std::string& text) {
  if (text.empty()) return true;
  for (char c : text) {
    switch (c) {
      case '(':
      case ')':
      case '&':
      case '+':
      case '|':
      case '=':
      case '<':
      case '>':
      case '!':
      case '"':
      case '\'':
      case '$':
        return true;
      default:
        if (std::isspace(static_cast<unsigned char>(c)) != 0) return true;
    }
  }
  return false;
}

void print_quoted(std::string& out, const std::string& text) {
  out += '"';
  for (char c : text) {
    if (c == '"') out += '"';  // doubled quote escapes
    out += c;
  }
  out += '"';
}

void print_value(std::string& out, const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kLiteral:
      if (needs_quoting(v.text())) {
        print_quoted(out, v.text());
      } else {
        out += v.text();
      }
      return;
    case Value::Kind::kVariable:
      out += "$(";
      out += v.text();
      out += ')';
      return;
    case Value::Kind::kList: {
      out += '(';
      bool first = true;
      for (const Value& item : v.items()) {
        if (!first) out += ' ';
        first = false;
        print_value(out, item);
      }
      out += ')';
      return;
    }
  }
}

}  // namespace

std::string to_string(Op op) {
  switch (op) {
    case Op::kEq:
      return "=";
    case Op::kNe:
      return "!=";
    case Op::kLt:
      return "<";
    case Op::kLe:
      return "<=";
    case Op::kGt:
      return ">";
    case Op::kGe:
      return ">=";
  }
  return "?";
}

std::string canonical_attribute(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (c == '_') continue;
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

Value Value::literal(std::string text) {
  Value v;
  v.kind_ = Kind::kLiteral;
  v.text_ = std::move(text);
  return v;
}

Value Value::list(std::vector<Value> items) {
  Value v;
  v.kind_ = Kind::kList;
  v.items_ = std::move(items);
  return v;
}

Value Value::variable(std::string name) {
  Value v;
  v.kind_ = Kind::kVariable;
  v.text_ = std::move(name);
  return v;
}

std::optional<std::int64_t> Value::as_int() const {
  if (kind_ != Kind::kLiteral || text_.empty()) return std::nullopt;
  std::int64_t out = 0;
  const char* first = text_.data();
  const char* last = first + text_.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return out;
}

bool Value::operator==(const Value& other) const {
  return kind_ == other.kind_ && text_ == other.text_ &&
         items_ == other.items_;
}

Relation Relation::eq(std::string_view attribute, std::string value) {
  Relation r;
  r.attribute = canonical_attribute(attribute);
  r.op = Op::kEq;
  r.values.push_back(Value::literal(std::move(value)));
  return r;
}

Relation Relation::eq(std::string_view attribute, std::int64_t value) {
  return eq(attribute, std::to_string(value));
}

const Value* Relation::single_value() const {
  return values.size() == 1 ? &values.front() : nullptr;
}

bool Relation::operator==(const Relation& other) const {
  return attribute == other.attribute && op == other.op &&
         values == other.values;
}

Spec Spec::multi(std::vector<Spec> children) {
  Spec s;
  s.kind_ = Kind::kMulti;
  s.children_ = std::move(children);
  return s;
}

Spec Spec::conj(std::vector<Spec> children) {
  Spec s;
  s.kind_ = Kind::kConj;
  s.children_ = std::move(children);
  return s;
}

Spec Spec::disj(std::vector<Spec> children) {
  Spec s;
  s.kind_ = Kind::kDisj;
  s.children_ = std::move(children);
  return s;
}

Spec Spec::relation(Relation r) {
  Spec s;
  s.kind_ = Kind::kRelation;
  s.relation_ = std::move(r);
  return s;
}

const Relation* Spec::find_relation(std::string_view attribute) const {
  if (kind_ != Kind::kConj) return nullptr;
  const std::string canon = canonical_attribute(attribute);
  for (const Spec& child : children_) {
    if (child.is_relation() && child.relation().attribute == canon) {
      return &child.relation();
    }
  }
  return nullptr;
}

void Spec::set_relation(Relation r) {
  if (kind_ != Kind::kConj) return;
  for (Spec& child : children_) {
    if (child.is_relation() && child.relation().attribute == r.attribute) {
      child.relation() = std::move(r);
      return;
    }
  }
  children_.push_back(Spec::relation(std::move(r)));
}

bool Spec::remove_relation(std::string_view attribute) {
  if (kind_ != Kind::kConj) return false;
  const std::string canon = canonical_attribute(attribute);
  for (auto it = children_.begin(); it != children_.end(); ++it) {
    if (it->is_relation() && it->relation().attribute == canon) {
      children_.erase(it);
      return true;
    }
  }
  return false;
}

void Spec::print(std::string& out, int indent, bool pretty) const {
  auto newline = [&](int level) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(level) * 2, ' ');
  };
  switch (kind_) {
    case Kind::kRelation: {
      out += '(';
      out += relation_.attribute;
      out += grid::rsl::to_string(relation_.op);
      bool first = true;
      for (const Value& v : relation_.values) {
        if (!first) out += ' ';
        first = false;
        print_value(out, v);
      }
      out += ')';
      return;
    }
    case Kind::kMulti:
    case Kind::kConj:
    case Kind::kDisj: {
      out += kind_ == Kind::kMulti ? '+' : (kind_ == Kind::kConj ? '&' : '|');
      for (const Spec& child : children_) {
        newline(indent + 1);
        if (child.is_relation()) {
          child.print(out, indent + 1, pretty);
        } else {
          out += '(';
          child.print(out, indent + 1, pretty);
          out += ')';
        }
      }
      return;
    }
  }
}

std::string Spec::to_string() const {
  std::string out;
  print(out, 0, false);
  return out;
}

std::string Spec::to_pretty_string() const {
  std::string out;
  print(out, 0, true);
  return out;
}

bool Spec::operator==(const Spec& other) const {
  return kind_ == other.kind_ && children_ == other.children_ &&
         (kind_ != Kind::kRelation || relation_ == other.relation_);
}

namespace {

util::Status substitute_value(
    const Value& in,
    const std::unordered_map<std::string, std::string>& bindings,
    Value* out) {
  switch (in.kind()) {
    case Value::Kind::kLiteral:
      *out = in;
      return util::Status::ok();
    case Value::Kind::kVariable: {
      auto it = bindings.find(in.text());
      if (it == bindings.end()) {
        return {util::ErrorCode::kNotFound,
                "unbound RSL variable $(" + in.text() + ")"};
      }
      *out = Value::literal(it->second);
      return util::Status::ok();
    }
    case Value::Kind::kList: {
      std::vector<Value> items;
      items.reserve(in.items().size());
      for (const Value& item : in.items()) {
        Value v;
        if (auto st = substitute_value(item, bindings, &v); !st.is_ok()) {
          return st;
        }
        items.push_back(std::move(v));
      }
      *out = Value::list(std::move(items));
      return util::Status::ok();
    }
  }
  return {util::ErrorCode::kInternal, "corrupt value kind"};
}

util::Status substitute_spec(
    const Spec& in,
    const std::unordered_map<std::string, std::string>& bindings,
    Spec* out) {
  if (in.is_relation()) {
    Relation r;
    r.attribute = in.relation().attribute;
    r.op = in.relation().op;
    r.values.reserve(in.relation().values.size());
    for (const Value& v : in.relation().values) {
      Value sv;
      if (auto st = substitute_value(v, bindings, &sv); !st.is_ok()) return st;
      r.values.push_back(std::move(sv));
    }
    *out = Spec::relation(std::move(r));
    return util::Status::ok();
  }
  std::vector<Spec> children;
  children.reserve(in.children().size());
  for (const Spec& child : in.children()) {
    Spec sc;
    if (auto st = substitute_spec(child, bindings, &sc); !st.is_ok()) {
      return st;
    }
    children.push_back(std::move(sc));
  }
  switch (in.kind()) {
    case Spec::Kind::kMulti:
      *out = Spec::multi(std::move(children));
      break;
    case Spec::Kind::kConj:
      *out = Spec::conj(std::move(children));
      break;
    case Spec::Kind::kDisj:
      *out = Spec::disj(std::move(children));
      break;
    case Spec::Kind::kRelation:
      break;  // handled above
  }
  return util::Status::ok();
}

}  // namespace

util::Result<Spec> substitute_variables(
    const Spec& spec,
    const std::unordered_map<std::string, std::string>& bindings) {
  Spec out;
  if (auto st = substitute_spec(spec, bindings, &out); !st.is_ok()) {
    return st;
  }
  return out;
}

}  // namespace grid::rsl
