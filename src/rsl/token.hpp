// Token stream for the RSL (Resource Specification Language) lexer.
#pragma once

#include <cstddef>
#include <string>

namespace grid::rsl {

enum class TokenKind {
  kLParen,    // (
  kRParen,    // )
  kAmp,       // &   conjunction
  kPlus,      // +   multi-request
  kPipe,      // |   disjunction
  kEq,        // =
  kNe,        // !=
  kLt,        // <
  kLe,        // <=
  kGt,        // >
  kGe,        // >=
  kLiteral,   // unquoted or quoted literal (text holds the decoded value)
  kVariable,  // $(NAME) reference (text holds NAME)
  kEnd,       // end of input
  kError,     // lexical error (text holds the diagnostic)
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // decoded literal text, variable name, or diagnostic
  bool quoted = false;  // literal came from a quoted string
  std::size_t offset = 0;  // byte offset in the source, for error messages
};

std::string to_string(TokenKind kind);

}  // namespace grid::rsl
