#include "rsl/alternatives.hpp"

#include "rsl/parser.hpp"

namespace grid::rsl {

util::Result<std::vector<SubjobAlternatives>> parse_with_alternatives(
    const Spec& multi) {
  if (!multi.is_multi()) {
    return util::Status(util::ErrorCode::kInvalidArgument,
                        "expected a '+' multi-request");
  }
  std::vector<SubjobAlternatives> out;
  out.reserve(multi.children().size());
  for (const Spec& child : multi.children()) {
    SubjobAlternatives slot;
    if (child.is_conj()) {
      auto job = JobRequest::from_spec(child);
      if (!job.is_ok()) return job.status();
      slot.options.push_back(job.take());
    } else if (child.is_disj()) {
      if (child.children().empty()) {
        return util::Status(util::ErrorCode::kInvalidArgument,
                            "empty disjunction in multi-request");
      }
      for (const Spec& option : child.children()) {
        auto job = JobRequest::from_spec(option);
        if (!job.is_ok()) return job.status();
        slot.options.push_back(job.take());
      }
    } else {
      return util::Status(
          util::ErrorCode::kInvalidArgument,
          "multi-request children must be conjunctions or disjunctions");
    }
    out.push_back(std::move(slot));
  }
  return out;
}

util::Result<std::vector<SubjobAlternatives>> parse_with_alternatives(
    const std::string& rsl_text) {
  auto spec = parse_multi_request(rsl_text);
  if (!spec.is_ok()) return spec.status();
  return parse_with_alternatives(spec.value());
}

}  // namespace grid::rsl
