// RSL abstract syntax tree.
//
// An RSL specification is a tree: a multi-request ('+') over subjob
// specifications, conjunctions ('&') of relations, disjunctions ('|') of
// alternatives, and leaf relations `attribute op value...` (paper Fig. 1).
// Attribute names are case-insensitive with underscores ignored, as in
// Globus RSL ("resourceManagerContact" == "resource_manager_contact").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "simkit/status.hpp"

namespace grid::rsl {

/// Relational operator in a relation.
enum class Op { kEq, kNe, kLt, kLe, kGt, kGe };

std::string to_string(Op op);

/// Canonical form of an attribute name: lowercase, underscores removed.
std::string canonical_attribute(std::string_view name);

/// A value in a relation: a literal string, a parenthesized list of values,
/// or an unresolved $(NAME) variable reference.
class Value {
 public:
  enum class Kind { kLiteral, kList, kVariable };

  Value() : kind_(Kind::kLiteral) {}

  static Value literal(std::string text);
  static Value list(std::vector<Value> items);
  static Value variable(std::string name);

  Kind kind() const { return kind_; }
  bool is_literal() const { return kind_ == Kind::kLiteral; }
  bool is_list() const { return kind_ == Kind::kList; }
  bool is_variable() const { return kind_ == Kind::kVariable; }

  /// Literal text (kLiteral) or variable name (kVariable).
  const std::string& text() const { return text_; }
  const std::vector<Value>& items() const { return items_; }
  std::vector<Value>& items() { return items_; }

  /// Parses the literal as a base-10 integer; nullopt for non-literals or
  /// non-numeric text.
  std::optional<std::int64_t> as_int() const;

  bool operator==(const Value& other) const;

 private:
  Kind kind_;
  std::string text_;
  std::vector<Value> items_;
};

/// A relation: `attribute op value ...` (values form a sequence).
struct Relation {
  std::string attribute;  // canonical form
  Op op = Op::kEq;
  std::vector<Value> values;

  /// Convenience for the common single-literal case.
  static Relation eq(std::string_view attribute, std::string value);
  static Relation eq(std::string_view attribute, std::int64_t value);

  /// The single literal value, if the relation has exactly one.
  const Value* single_value() const;

  bool operator==(const Relation& other) const;
};

/// A node in the specification tree.
class Spec {
 public:
  enum class Kind { kMulti, kConj, kDisj, kRelation };

  Spec() : kind_(Kind::kConj) {}

  static Spec multi(std::vector<Spec> children);
  static Spec conj(std::vector<Spec> children);
  static Spec disj(std::vector<Spec> children);
  static Spec relation(Relation r);

  Kind kind() const { return kind_; }
  bool is_multi() const { return kind_ == Kind::kMulti; }
  bool is_conj() const { return kind_ == Kind::kConj; }
  bool is_disj() const { return kind_ == Kind::kDisj; }
  bool is_relation() const { return kind_ == Kind::kRelation; }

  const std::vector<Spec>& children() const { return children_; }
  std::vector<Spec>& children() { return children_; }
  const Relation& relation() const { return relation_; }
  Relation& relation() { return relation_; }

  /// For a conjunction: finds the direct-child relation with the given
  /// attribute (canonicalized); nullptr if absent or not a conjunction.
  const Relation* find_relation(std::string_view attribute) const;

  /// Sets (replacing any existing direct-child relation with the same
  /// attribute) a relation on a conjunction node.
  void set_relation(Relation r);

  /// Removes the direct-child relation with the given attribute.
  /// Returns true if one was removed.
  bool remove_relation(std::string_view attribute);

  /// Canonical single-line rendering; parseable back to an equal tree.
  std::string to_string() const;

  /// Indented multi-line rendering for diagnostics and docs.
  std::string to_pretty_string() const;

  bool operator==(const Spec& other) const;

 private:
  void print(std::string& out, int indent, bool pretty) const;

  Kind kind_;
  std::vector<Spec> children_;
  Relation relation_;
};

/// Substitutes $(NAME) variable references using `bindings`.  Unbound
/// variables yield an error status.  The input tree is not modified.
util::Result<Spec> substitute_variables(
    const Spec& spec,
    const std::unordered_map<std::string, std::string>& bindings);

}  // namespace grid::rsl
