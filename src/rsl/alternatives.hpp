// Alternative-resource expansion of RSL disjunctions.
//
// RSL's '|' combinator lets a request name alternatives for one subjob
// slot:
//
//   +(|(&(resourceManagerContact=A)(count=4)(executable=sim))
//      (&(resourceManagerContact=B)(count=4)(executable=sim)))
//    (&(resourceManagerContact=C)(count=1)(executable=master))
//
// means "slot 1 on A or B, slot 2 on C".  This header expands a
// multi-request into per-slot alternative lists; core::AlternativesAgent
// (strategies.hpp) consumes them, trying each option in order — the §3.2
// "replace failed elements if an alternative resource can be found"
// strategy expressed in the request language itself.
#pragma once

#include <vector>

#include "rsl/attributes.hpp"

namespace grid::rsl {

/// The options for one subjob slot, in preference order (first is tried
/// first).  Always non-empty after successful parsing.
struct SubjobAlternatives {
  std::vector<JobRequest> options;
};

/// Expands a '+' multi-request whose children are either conjunctions
/// (one option) or disjunctions of conjunctions (several options).
util::Result<std::vector<SubjobAlternatives>> parse_with_alternatives(
    const Spec& multi);

/// Text convenience.
util::Result<std::vector<SubjobAlternatives>> parse_with_alternatives(
    const std::string& rsl_text);

}  // namespace grid::rsl
