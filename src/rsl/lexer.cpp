#include "rsl/lexer.hpp"

#include <cctype>

namespace grid::rsl {
namespace {

bool is_unquoted_char(char c) {
  // Characters that terminate an unquoted literal: whitespace, structural
  // characters, operators, and quotes.
  switch (c) {
    case '(':
    case ')':
    case '&':
    case '+':
    case '|':
    case '=':
    case '<':
    case '>':
    case '!':
    case '"':
    case '\'':
    case '$':
      return false;
    default:
      return std::isspace(static_cast<unsigned char>(c)) == 0;
  }
}

}  // namespace

std::string to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kAmp:
      return "'&'";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kPipe:
      return "'|'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kLiteral:
      return "literal";
    case TokenKind::kVariable:
      return "variable";
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kError:
      return "lexical error";
  }
  return "?";
}

Lexer::Lexer(std::string_view source) : src_(source) {}

const Token& Lexer::peek() {
  if (!has_peek_) {
    peek_ = lex();
    has_peek_ = true;
  }
  return peek_;
}

Token Lexer::next() {
  if (has_peek_) {
    has_peek_ = false;
    return std::move(peek_);
  }
  return lex();
}

bool Lexer::skip_space_and_comments(Token* error_out) {
  for (;;) {
    while (!eof() && std::isspace(static_cast<unsigned char>(cur())) != 0) {
      ++pos_;
    }
    // "(*" ... "*)" comment.
    if (pos_ + 1 < src_.size() && src_[pos_] == '(' && src_[pos_ + 1] == '*') {
      const std::size_t start = pos_;
      pos_ += 2;
      for (;;) {
        if (pos_ + 1 >= src_.size()) {
          *error_out = Token{TokenKind::kError, "unterminated comment", false,
                             start};
          return false;
        }
        if (src_[pos_] == '*' && src_[pos_ + 1] == ')') {
          pos_ += 2;
          break;
        }
        ++pos_;
      }
      continue;
    }
    return true;
  }
}

Token Lexer::lex() {
  Token err;
  if (!skip_space_and_comments(&err)) return err;
  const std::size_t at = pos_;
  if (eof()) return Token{TokenKind::kEnd, "", false, at};
  const char c = cur();
  switch (c) {
    case '(':
      ++pos_;
      return Token{TokenKind::kLParen, "(", false, at};
    case ')':
      ++pos_;
      return Token{TokenKind::kRParen, ")", false, at};
    case '&':
      ++pos_;
      return Token{TokenKind::kAmp, "&", false, at};
    case '+':
      ++pos_;
      return Token{TokenKind::kPlus, "+", false, at};
    case '|':
      ++pos_;
      return Token{TokenKind::kPipe, "|", false, at};
    case '=':
      ++pos_;
      return Token{TokenKind::kEq, "=", false, at};
    case '<':
      ++pos_;
      if (!eof() && cur() == '=') {
        ++pos_;
        return Token{TokenKind::kLe, "<=", false, at};
      }
      return Token{TokenKind::kLt, "<", false, at};
    case '>':
      ++pos_;
      if (!eof() && cur() == '=') {
        ++pos_;
        return Token{TokenKind::kGe, ">=", false, at};
      }
      return Token{TokenKind::kGt, ">", false, at};
    case '!':
      ++pos_;
      if (!eof() && cur() == '=') {
        ++pos_;
        return Token{TokenKind::kNe, "!=", false, at};
      }
      return Token{TokenKind::kError, "expected '=' after '!'", false, at};
    case '"':
    case '\'':
      return lex_quoted(c);
    case '$':
      return lex_variable();
    default:
      if (is_unquoted_char(c)) return lex_unquoted();
      return Token{TokenKind::kError,
                   std::string("unexpected character '") + c + "'", false, at};
  }
}

Token Lexer::lex_quoted(char quote) {
  const std::size_t at = pos_;
  ++pos_;  // opening quote
  std::string text;
  for (;;) {
    if (eof()) {
      return Token{TokenKind::kError, "unterminated quoted literal", false,
                   at};
    }
    const char c = cur();
    ++pos_;
    if (c == quote) {
      // A doubled quote is an escaped quote character.
      if (!eof() && cur() == quote) {
        text += quote;
        ++pos_;
        continue;
      }
      return Token{TokenKind::kLiteral, std::move(text), true, at};
    }
    text += c;
  }
}

Token Lexer::lex_variable() {
  const std::size_t at = pos_;
  ++pos_;  // '$'
  if (eof() || cur() != '(') {
    return Token{TokenKind::kError, "expected '(' after '$'", false, at};
  }
  ++pos_;
  std::string name;
  while (!eof() && cur() != ')') {
    name += cur();
    ++pos_;
  }
  if (eof()) {
    return Token{TokenKind::kError, "unterminated variable reference", false,
                 at};
  }
  ++pos_;  // ')'
  if (name.empty()) {
    return Token{TokenKind::kError, "empty variable name", false, at};
  }
  return Token{TokenKind::kVariable, std::move(name), false, at};
}

Token Lexer::lex_unquoted() {
  const std::size_t at = pos_;
  std::string text;
  while (!eof() && is_unquoted_char(cur())) {
    text += cur();
    ++pos_;
  }
  return Token{TokenKind::kLiteral, std::move(text), false, at};
}

std::vector<Token> tokenize(std::string_view source) {
  Lexer lexer(source);
  std::vector<Token> out;
  for (;;) {
    Token t = lexer.next();
    const bool stop =
        t.kind == TokenKind::kEnd || t.kind == TokenKind::kError;
    out.push_back(std::move(t));
    if (stop) return out;
  }
}

}  // namespace grid::rsl
