#include "gram/gatekeeper.hpp"

#include "rsl/parser.hpp"
#include "sched/reservation.hpp"

namespace grid::gram {

Gatekeeper::Gatekeeper(net::Network& network, std::string host_name,
                       sched::LocalScheduler& scheduler,
                       const ExecutableRegistry& registry,
                       const gsi::CertificateAuthority& ca,
                       const gsi::GridMap& gridmap,
                       gsi::Credential host_credential, net::NodeId nis_server,
                       gsi::CostModel gsi_costs, GatekeeperCosts costs)
    : endpoint_(network, host_name),
      host_name_(std::move(host_name)),
      scheduler_(&scheduler),
      registry_(&registry),
      gsi_(endpoint_, ca, gridmap, std::move(host_credential), gsi_costs),
      nis_(endpoint_, nis_server),
      costs_(costs),
      log_(network.engine(), "gram/" + host_name_) {
  endpoint_.register_method(
      kMethodJobRequest,
      [this](net::NodeId caller, std::uint64_t call_id, util::Reader& args) {
        handle_job_request(caller, call_id, args);
      });
  endpoint_.register_method(
      kMethodJobCancel,
      [this](net::NodeId caller, std::uint64_t call_id, util::Reader& args) {
        handle_job_cancel(caller, call_id, args);
      });
  endpoint_.register_method(
      kMethodJobStatus,
      [this](net::NodeId caller, std::uint64_t call_id, util::Reader& args) {
        handle_job_status(caller, call_id, args);
      });
  endpoint_.register_method(
      kMethodPing,
      [this](net::NodeId caller, std::uint64_t call_id, util::Reader&) {
        endpoint_.respond(caller, call_id, {});
      });
  endpoint_.register_method(
      kMethodReserve,
      [this](net::NodeId caller, std::uint64_t call_id, util::Reader& args) {
        handle_reserve(caller, call_id, args);
      });
  endpoint_.register_method(
      kMethodReserveCancel,
      [this](net::NodeId caller, std::uint64_t call_id, util::Reader& args) {
        handle_reserve_cancel(caller, call_id, args);
      });
  endpoint_.crash_hook = [this] { crash(); };
}

void Gatekeeper::handle_job_request(net::NodeId caller, std::uint64_t call_id,
                                    util::Reader& args) {
  JobRequestArgs request = JobRequestArgs::decode(args);
  if (!args.ok()) {
    endpoint_.respond_error(caller, call_id, util::ErrorCode::kInvalidArgument,
                            "malformed job request");
    return;
  }
  // Authorization: the GSI session must be live.
  auto session = gsi_.validate(request.session_token);
  if (!session.is_ok()) {
    endpoint_.respond_error(caller, call_id, session.status().code(),
                            session.status().message());
    return;
  }
  const std::string local_user = session.value().local_user;
  // initgroups(): the dominant cost (Figure 3).  The gatekeeper must set up
  // the local user's supplementary groups before spawning the job manager.
  nis_.initgroups(
      local_user, costs_.nis_timeout,
      [this, caller, call_id, request = std::move(request), local_user](
          util::Result<std::vector<std::string>> groups) mutable {
        if (!groups.is_ok()) {
          endpoint_.respond_error(
              caller, call_id, util::ErrorCode::kUnavailable,
              "initgroups failed: " + groups.status().message());
          return;
        }
        // Miscellaneous processing (request parsing, job manager setup).
        endpoint_.engine().schedule_after(
            costs_.misc_processing,
            [this, caller, call_id, request = std::move(request),
             local_user]() mutable {
              accept_job(caller, call_id, std::move(request), local_user);
            });
      });
}

void Gatekeeper::accept_job(net::NodeId caller, std::uint64_t call_id,
                            JobRequestArgs request, std::string local_user) {
  auto spec = rsl::parse(request.rsl);
  if (!spec.is_ok()) {
    endpoint_.respond_error(caller, call_id, spec.status().code(),
                            "bad RSL: " + spec.status().message());
    return;
  }
  auto job_request = rsl::JobRequest::from_spec(spec.value());
  if (!job_request.is_ok()) {
    endpoint_.respond_error(caller, call_id, job_request.status().code(),
                            "bad RSL: " + job_request.status().message());
    return;
  }
  // Job ids are globally unique: gatekeeper address in the high bits.
  const JobId id =
      (static_cast<JobId>(endpoint_.id()) << 32) | next_job_++;
  auto manager = std::make_unique<JobManager>(
      endpoint_, *scheduler_, *registry_, id, job_request.take(), local_user,
      request.callback_contact, costs_.exec_startup,
      log_.child("jm" + std::to_string(id & 0xffffffff)));
  if (auto st = manager->start(); !st.is_ok()) {
    endpoint_.respond_error(caller, call_id, st.code(), st.message());
    return;
  }
  jobs_.emplace(id, std::move(manager));
  util::Writer w;
  w.u64(id);
  endpoint_.respond(caller, call_id, w.take());
}

void Gatekeeper::handle_job_cancel(net::NodeId caller, std::uint64_t call_id,
                                   util::Reader& args) {
  const JobId id = args.u64();
  if (!args.ok()) {
    endpoint_.respond_error(caller, call_id, util::ErrorCode::kInvalidArgument,
                            "malformed cancel");
    return;
  }
  auto* manager = jobs_.find(id);
  if (manager == nullptr) {
    endpoint_.respond_error(caller, call_id, util::ErrorCode::kNotFound,
                            "unknown job");
    return;
  }
  (*manager)->cancel();
  endpoint_.respond(caller, call_id, {});
}

void Gatekeeper::handle_job_status(net::NodeId caller, std::uint64_t call_id,
                                   util::Reader& args) {
  const JobId id = args.u64();
  if (!args.ok()) {
    endpoint_.respond_error(caller, call_id, util::ErrorCode::kInvalidArgument,
                            "malformed status request");
    return;
  }
  auto state = job_state(id);
  if (!state.is_ok()) {
    endpoint_.respond_error(caller, call_id, state.status().code(),
                            state.status().message());
    return;
  }
  util::Writer w;
  w.u8(static_cast<std::uint8_t>(state.value()));
  endpoint_.respond(caller, call_id, w.take());
}

void Gatekeeper::handle_reserve(net::NodeId caller, std::uint64_t call_id,
                                util::Reader& args) {
  ReserveArgs request = ReserveArgs::decode(args);
  if (!args.ok()) {
    endpoint_.respond_error(caller, call_id, util::ErrorCode::kInvalidArgument,
                            "malformed reservation request");
    return;
  }
  auto session = gsi_.validate(request.session_token);
  if (!session.is_ok()) {
    endpoint_.respond_error(caller, call_id, session.status().code(),
                            session.status().message());
    return;
  }
  auto* reserver = dynamic_cast<sched::ReservationScheduler*>(scheduler_);
  if (reserver == nullptr) {
    endpoint_.respond_error(
        caller, call_id, util::ErrorCode::kFailedPrecondition,
        "resource manager does not support advance reservations");
    return;
  }
  // Admission control is cheap relative to a job request (no initgroups,
  // no job manager): just the misc processing cost.
  endpoint_.engine().schedule_after(
      costs_.misc_processing, [this, caller, call_id, request, reserver] {
        auto r = reserver->reserve(request.start, request.end, request.count);
        if (!r.is_ok()) {
          endpoint_.respond_error(caller, call_id, r.status().code(),
                                  r.status().message());
          return;
        }
        util::Writer w;
        w.u64(r.value().id);
        w.i64(r.value().start);
        w.i64(r.value().end);
        endpoint_.respond(caller, call_id, w.take());
      });
}

void Gatekeeper::handle_reserve_cancel(net::NodeId caller,
                                       std::uint64_t call_id,
                                       util::Reader& args) {
  const std::uint64_t rid = args.u64();
  if (!args.ok()) {
    endpoint_.respond_error(caller, call_id, util::ErrorCode::kInvalidArgument,
                            "malformed reservation cancel");
    return;
  }
  auto* reserver = dynamic_cast<sched::ReservationScheduler*>(scheduler_);
  if (reserver == nullptr || !reserver->cancel_reservation(rid)) {
    endpoint_.respond_error(caller, call_id, util::ErrorCode::kNotFound,
                            "unknown reservation");
    return;
  }
  endpoint_.respond(caller, call_id, {});
}

util::Result<JobState> Gatekeeper::job_state(JobId id) const {
  const auto* manager = jobs_.find(id);
  if (manager == nullptr) {
    return util::Status(util::ErrorCode::kNotFound, "unknown job");
  }
  return (*manager)->state();
}

void Gatekeeper::crash() {
  jobs_.for_each(
      [](JobId, std::unique_ptr<JobManager>& manager) { manager->crash(); });
}

}  // namespace grid::gram
