#include "gram/protocol.hpp"

namespace grid::gram {

std::string to_string(JobState s) {
  switch (s) {
    case JobState::kUnsubmitted:
      return "UNSUBMITTED";
    case JobState::kPending:
      return "PENDING";
    case JobState::kActive:
      return "ACTIVE";
    case JobState::kDone:
      return "DONE";
    case JobState::kFailed:
      return "FAILED";
  }
  return "?";
}

void JobRequestArgs::encode(util::Writer& w) const {
  w.reserve(22 + rsl.size());
  w.u64(session_token);
  w.str(rsl);
  w.u32(callback_contact);
}

JobRequestArgs JobRequestArgs::decode(util::Reader& r) {
  JobRequestArgs a;
  a.session_token = r.u64();
  const std::string_view rsl = r.str_view();
  a.rsl.assign(rsl.begin(), rsl.end());
  a.callback_contact = r.u32();
  return a;
}

void ReserveArgs::encode(util::Writer& w) const {
  w.reserve(28);
  w.u64(session_token);
  w.i64(start);
  w.i64(end);
  w.i32(count);
}

ReserveArgs ReserveArgs::decode(util::Reader& r) {
  ReserveArgs a;
  a.session_token = r.u64();
  a.start = r.i64();
  a.end = r.i64();
  a.count = r.i32();
  return a;
}

void encode_state_change(util::Writer& w, const JobStateChange& change) {
  w.reserve(23 + change.message.size());
  w.u64(change.job);
  w.u8(static_cast<std::uint8_t>(change.state));
  w.u8(static_cast<std::uint8_t>(change.error));
  w.str(change.message);
  w.i64(change.at);
}

JobStateChange decode_state_change(util::Reader& r) {
  JobStateChange c;
  c.job = r.u64();
  c.state = static_cast<JobState>(r.u8());
  c.error = static_cast<util::ErrorCode>(r.u8());
  const std::string_view msg = r.str_view();
  c.message.assign(msg.begin(), msg.end());
  c.at = r.i64();
  return c;
}

}  // namespace grid::gram
