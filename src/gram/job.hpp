// GRAM job model: ids, states, and state-change records.
//
// The job state machine follows the Globus GRAM protocol the paper's
// architecture builds on: PENDING (accepted, awaiting local scheduler),
// ACTIVE (processes created), then DONE or FAILED.  State transitions are
// pushed to the client's callback contact; the co-allocation layer treats
// them as advisory only — per §3.2 an application-level check-in, not a
// scheduler's ACTIVE, is what counts as a successful start.
#pragma once

#include <cstdint>
#include <string>

#include "simkit/status.hpp"
#include "simkit/time.hpp"

namespace grid::gram {

using JobId = std::uint64_t;

enum class JobState : std::uint8_t {
  kUnsubmitted = 0,
  kPending = 1,   // accepted by the job manager, queued locally
  kActive = 2,    // processes created by the local scheduler
  kDone = 3,      // all processes exited successfully
  kFailed = 4,    // job failed, was cancelled, or exceeded wall time
};

std::string to_string(JobState s);

/// True for states a job can never leave.
constexpr bool is_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed;
}

/// A state transition as delivered to the callback contact.
struct JobStateChange {
  JobId job = 0;
  JobState state = JobState::kUnsubmitted;
  util::ErrorCode error = util::ErrorCode::kOk;  // set when state == kFailed
  std::string message;
  sim::Time at = 0;  // server-side timestamp of the transition
};

}  // namespace grid::gram
