#include "gram/client.hpp"

namespace grid::gram {

Client::Client(net::Endpoint& endpoint, const gsi::CertificateAuthority& ca,
               gsi::Credential identity, gsi::CostModel gsi_costs)
    : endpoint_(&endpoint),
      gsi_(endpoint, ca, std::move(identity), gsi_costs) {
  endpoint_->register_notify(
      kNotifyJobState, [this](net::NodeId src, util::Reader& payload) {
        on_state_notify(src, payload);
      });
}

struct Client::AuthRetryState {
  net::NodeId gatekeeper;
  sim::Time timeout;
  sim::Time started;
  net::RetrySchedule schedule;
  gsi::ClientContext::DoneFn done;
};

void Client::authenticate_with_retry(net::NodeId gatekeeper, sim::Time timeout,
                                     gsi::ClientContext::DoneFn on_done) {
  if (!retry_.has_value()) {
    gsi_.authenticate(gatekeeper, timeout, std::move(on_done));
    return;
  }
  auto state = std::make_shared<AuthRetryState>(AuthRetryState{
      gatekeeper, timeout, endpoint_->engine().now(),
      net::RetrySchedule(*retry_, next_auth_stream_++), std::move(on_done)});
  auth_attempt(std::move(state), 1);
}

void Client::auth_attempt(std::shared_ptr<AuthRetryState> state, int n) {
  AuthRetryState* s = state.get();
  gsi_.authenticate(
      s->gatekeeper, s->timeout,
      [this, state = std::move(state),
       n](util::Result<gsi::Session> session) mutable {
        const net::RetryPolicy& policy = state->schedule.policy();
        if (session.is_ok() ||
            session.status().code() != util::ErrorCode::kTimeout ||
            n >= policy.max_attempts) {
          state->done(std::move(session));
          return;
        }
        const sim::Time backoff = state->schedule.backoff_before(n + 1);
        if (policy.overall_deadline > 0 &&
            endpoint_->engine().now() + backoff >=
                state->started + policy.overall_deadline) {
          state->done(std::move(session));
          return;
        }
        ++auth_retries_;
        endpoint_->engine().schedule_after(
            backoff, [this, state = std::move(state), n]() mutable {
              auth_attempt(std::move(state), n + 1);
            });
      });
}

void Client::idempotent_call(net::NodeId dst, std::uint32_t method,
                             sim::Payload args, sim::Time timeout,
                             net::Endpoint::ResponseFn on_response) {
  if (retry_.has_value()) {
    net::RetryPolicy policy = *retry_;
    if (policy.attempt_timeout <= 0) policy.attempt_timeout = timeout;
    endpoint_->retrying_call(dst, method, std::move(args), policy,
                             std::move(on_response));
  } else {
    endpoint_->call(dst, method, std::move(args), timeout,
                    std::move(on_response));
  }
}

void Client::submit(net::NodeId gatekeeper, std::string rsl, sim::Time timeout,
                    AcceptedFn on_accepted, StateFn on_state) {
  // Pre-ack phase (handshake) retries; the job-request RPC below is
  // deliberately one-shot — see set_retry_policy().
  authenticate_with_retry(
      gatekeeper, timeout,
      [this, gatekeeper, rsl = std::move(rsl), timeout,
       on_accepted = std::move(on_accepted),
       on_state = std::move(on_state)](util::Result<gsi::Session> session) {
        if (!session.is_ok()) {
          on_accepted(session.status());
          return;
        }
        JobRequestArgs args;
        args.session_token = session.value().token;
        args.rsl = rsl;
        args.callback_contact =
            on_state != nullptr ? endpoint_->id() : net::kInvalidNode;
        util::Writer w;
        args.encode(w);
        endpoint_->call(
            gatekeeper, kMethodJobRequest, w.take(), timeout,
            [this, on_accepted, on_state](const util::Status& status,
                                          util::Reader& reply) {
              if (!status.is_ok()) {
                on_accepted(status);
                return;
              }
              const JobId id = reply.u64();
              if (!reply.ok()) {
                on_accepted(util::Status(util::ErrorCode::kInternal,
                                         "malformed job-request reply"));
                return;
              }
              if (on_state != nullptr) {
                watchers_[id] = on_state;
              }
              on_accepted(id);
              // Flush transitions that beat the accept reply here.
              auto it = early_.find(id);
              if (it != early_.end()) {
                auto changes = std::move(it->second);
                early_.erase(it);
                auto wit = watchers_.find(id);
                if (wit != watchers_.end()) {
                  for (const JobStateChange& c : changes) wit->second(c);
                }
              }
            });
      });
}

void Client::on_state_notify(net::NodeId /*src*/, util::Reader& payload) {
  JobStateChange change = decode_state_change(payload);
  if (!payload.ok()) return;
  auto it = watchers_.find(change.job);
  if (it == watchers_.end()) {
    // Either the accept reply is still in flight (buffer) or the job was
    // forgotten (keep a short buffer anyway; forget() clears it).
    early_[change.job].push_back(change);
    return;
  }
  it->second(change);
}

void Client::cancel(net::NodeId gatekeeper, JobId job, sim::Time timeout,
                    DoneFn on_done) {
  util::Writer w;
  w.u64(job);
  idempotent_call(gatekeeper, kMethodJobCancel, w.take(), timeout,
                  [on_done = std::move(on_done)](const util::Status& status,
                                                 util::Reader&) {
                    if (on_done) on_done(status);
                  });
}

void Client::status(net::NodeId gatekeeper, JobId job, sim::Time timeout,
                    std::function<void(util::Result<JobState>)> on_done) {
  util::Writer w;
  w.u64(job);
  idempotent_call(gatekeeper, kMethodJobStatus, w.take(), timeout,
                  [on_done = std::move(on_done)](const util::Status& status,
                                                 util::Reader& reply) {
                    if (!status.is_ok()) {
                      on_done(status);
                      return;
                    }
                    const auto state = static_cast<JobState>(reply.u8());
                    if (!reply.ok()) {
                      on_done(util::Status(util::ErrorCode::kInternal,
                                           "malformed status reply"));
                      return;
                    }
                    on_done(state);
                  });
}

void Client::ping(net::NodeId gatekeeper, sim::Time timeout, DoneFn on_done) {
  idempotent_call(gatekeeper, kMethodPing, {}, timeout,
                  [on_done = std::move(on_done)](const util::Status& status,
                                                 util::Reader&) {
                    if (on_done) on_done(status);
                  });
}

void Client::reserve(
    net::NodeId gatekeeper, sim::Time start, sim::Time end,
    std::int32_t count, sim::Time timeout,
    std::function<void(util::Result<ReservationHandle>)> on_done) {
  authenticate_with_retry(
      gatekeeper, timeout,
      [this, gatekeeper, start, end, count, timeout,
       on_done = std::move(on_done)](util::Result<gsi::Session> session) {
        if (!session.is_ok()) {
          on_done(session.status());
          return;
        }
        ReserveArgs args;
        args.session_token = session.value().token;
        args.start = start;
        args.end = end;
        args.count = count;
        util::Writer w;
        args.encode(w);
        endpoint_->call(gatekeeper, kMethodReserve, w.take(), timeout,
                        [on_done](const util::Status& status,
                                  util::Reader& reply) {
                          if (!status.is_ok()) {
                            on_done(status);
                            return;
                          }
                          ReservationHandle handle;
                          handle.id = reply.u64();
                          handle.start = reply.i64();
                          handle.end = reply.i64();
                          if (!reply.ok()) {
                            on_done(util::Status(
                                util::ErrorCode::kInternal,
                                "malformed reservation reply"));
                            return;
                          }
                          on_done(handle);
                        });
      });
}

void Client::cancel_reservation(net::NodeId gatekeeper,
                                std::uint64_t reservation, sim::Time timeout,
                                DoneFn on_done) {
  util::Writer w;
  w.u64(reservation);
  idempotent_call(gatekeeper, kMethodReserveCancel, w.take(), timeout,
                  [on_done = std::move(on_done)](const util::Status& status,
                                                 util::Reader&) {
                    if (on_done) on_done(status);
                  });
}

void Client::forget(JobId job) {
  watchers_.erase(job);
  early_.erase(job);
}

}  // namespace grid::gram
