// Simulated application processes.
//
// When the local scheduler starts a job, the job manager "exec"s one
// process per requested processor.  What the process *does* is pluggable:
// executables are looked up by name in an ExecutableRegistry, mirroring a
// real filesystem of application binaries.  Process behaviours implement
// application-defined startup checks, the DUROC barrier call, failure
// modes (crash / hang / slow start), and post-release computation — the
// application half of the paper's co-allocation protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "gram/job.hpp"
#include "net/network.hpp"
#include "simkit/engine.hpp"
#include "simkit/status.hpp"

namespace grid::gram {

/// Services the job manager exposes to a running process.
class ProcessApi {
 public:
  virtual ~ProcessApi() = default;

  virtual sim::Engine& engine() = 0;
  virtual net::Network& network() = 0;

  virtual JobId job() const = 0;
  virtual const std::string& host_name() const = 0;
  /// Rank of this process within its job (0 .. count-1).
  virtual std::int32_t local_rank() const = 0;
  /// Number of processes in this job.
  virtual std::int32_t local_count() const = 0;

  virtual const std::vector<std::string>& arguments() const = 0;
  /// Environment lookup; empty string when unset.
  virtual std::string getenv(const std::string& name) const = 0;

  /// Terminates this process.  `ok` false marks the job as failed with
  /// `message`.  Must be called at most once; the behaviour object may be
  /// destroyed during the call.
  virtual void exit(bool ok, std::string message = "") = 0;
};

/// A process implementation.  `start` is the exec entry point; the
/// behaviour then drives itself with scheduled events through `api`
/// (valid until exit or termination).
class ProcessBehavior {
 public:
  virtual ~ProcessBehavior() = default;

  virtual void start(ProcessApi& api) = 0;

  /// Delivery of a kill signal (job cancel, wall-time limit, DUROC abort).
  /// After this call the process is gone; do not call api.exit().
  virtual void on_terminate() {}
};

using ProcessFactory = std::function<std::unique_ptr<ProcessBehavior>()>;

/// Maps executable names to process implementations, per host or shared.
class ExecutableRegistry {
 public:
  void install(std::string executable, ProcessFactory factory);
  bool contains(const std::string& executable) const;

  /// Instantiates a behaviour; kNotFound for unknown executables (the
  /// "executable does not exist on that machine" failure mode).
  util::Result<std::unique_ptr<ProcessBehavior>> create(
      const std::string& executable) const;

 private:
  std::unordered_map<std::string, ProcessFactory> factories_;
};

}  // namespace grid::gram
