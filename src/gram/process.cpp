#include "gram/process.hpp"

namespace grid::gram {

void ExecutableRegistry::install(std::string executable,
                                 ProcessFactory factory) {
  factories_[std::move(executable)] = std::move(factory);
}

bool ExecutableRegistry::contains(const std::string& executable) const {
  return factories_.contains(executable);
}

util::Result<std::unique_ptr<ProcessBehavior>> ExecutableRegistry::create(
    const std::string& executable) const {
  auto it = factories_.find(executable);
  if (it == factories_.end()) {
    return util::Status(util::ErrorCode::kNotFound,
                        "executable not found: " + executable);
  }
  return it->second();
}

}  // namespace grid::gram
