// GRAM client library: submit / cancel / status against remote gatekeepers.
//
// Each submission performs its own GSI handshake ("each with its inherent
// authentication and protocol overhead", §4.2) and then the job-request
// RPC.  State-change notifications from job managers are dispatched to the
// per-job callback; notifications that race ahead of the accept reply are
// buffered so no transition is lost.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "gram/protocol.hpp"
#include "gsi/protocol.hpp"
#include "net/rpc.hpp"
#include "simkit/status.hpp"

namespace grid::gram {

class Client {
 public:
  /// The client owns the notify registration on `endpoint`; use one Client
  /// per endpoint.
  Client(net::Endpoint& endpoint, const gsi::CertificateAuthority& ca,
         gsi::Credential identity, gsi::CostModel gsi_costs = {});

  using AcceptedFn = std::function<void(util::Result<JobId>)>;
  using StateFn = std::function<void(const JobStateChange&)>;
  using DoneFn = std::function<void(util::Status)>;

  /// Submits `rsl` (a '&' conjunction fragment) to the gatekeeper.
  /// `on_accepted` fires once with the job id or an error; `on_state`
  /// (optional) then receives every state transition.  `timeout` bounds
  /// each protocol phase (handshake round trips and the request RPC).
  void submit(net::NodeId gatekeeper, std::string rsl, sim::Time timeout,
              AcceptedFn on_accepted, StateFn on_state = nullptr);

  /// Cancels a job previously accepted by `gatekeeper`.
  void cancel(net::NodeId gatekeeper, JobId job, sim::Time timeout,
              DoneFn on_done);

  /// Queries a job's server-side state.
  void status(net::NodeId gatekeeper, JobId job, sim::Time timeout,
              std::function<void(util::Result<JobState>)> on_done);

  /// Liveness probe of a gatekeeper.
  void ping(net::NodeId gatekeeper, sim::Time timeout, DoneFn on_done);

  /// An acquired advance reservation as seen by the client.
  struct ReservationHandle {
    std::uint64_t id = 0;
    sim::Time start = 0;
    sim::Time end = 0;
  };

  /// Requests an advance reservation (paper §5); performs its own GSI
  /// handshake.  Fails with kFailedPrecondition on resources without
  /// reservation support.
  void reserve(net::NodeId gatekeeper, sim::Time start, sim::Time end,
               std::int32_t count, sim::Time timeout,
               std::function<void(util::Result<ReservationHandle>)> on_done);

  /// Releases an advance reservation.
  void cancel_reservation(net::NodeId gatekeeper, std::uint64_t reservation,
                          sim::Time timeout, DoneFn on_done);

  /// Detaches the state callback of a job (e.g. after DUROC releases it).
  void forget(JobId job);

  net::Endpoint& endpoint() { return *endpoint_; }

 private:
  void on_state_notify(net::NodeId src, util::Reader& payload);

  net::Endpoint* endpoint_;
  gsi::ClientContext gsi_;
  std::unordered_map<JobId, StateFn> watchers_;
  std::unordered_map<JobId, std::vector<JobStateChange>> early_;
};

}  // namespace grid::gram
