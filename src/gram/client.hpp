// GRAM client library: submit / cancel / status against remote gatekeepers.
//
// Each submission performs its own GSI handshake ("each with its inherent
// authentication and protocol overhead", §4.2) and then the job-request
// RPC.  State-change notifications from job managers are dispatched to the
// per-job callback; notifications that race ahead of the accept reply are
// buffered so no transition is lost.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "gram/protocol.hpp"
#include "gsi/protocol.hpp"
#include "net/retry.hpp"
#include "net/rpc.hpp"
#include "simkit/status.hpp"

namespace grid::gram {

class Client {
 public:
  /// The client owns the notify registration on `endpoint`; use one Client
  /// per endpoint.
  Client(net::Endpoint& endpoint, const gsi::CertificateAuthority& ca,
         gsi::Credential identity, gsi::CostModel gsi_costs = {});

  using AcceptedFn = std::function<void(util::Result<JobId>)>;
  using StateFn = std::function<void(const JobStateChange&)>;
  using DoneFn = std::function<void(util::Status)>;

  /// Opts this client into fault-tolerant RPC.  Idempotent verbs (ping,
  /// status, cancel, reservation cancel) are re-issued on timeout per
  /// `policy`; submit() and reserve() retry only their pre-ack phase (the
  /// GSI handshake) — the job-request / reserve RPC itself is never
  /// re-sent, since a retry after a lost *accept reply* would allocate a
  /// second job or window on the server.  nullopt restores one-shot calls.
  void set_retry_policy(std::optional<net::RetryPolicy> policy) {
    retry_ = policy;
  }
  const std::optional<net::RetryPolicy>& retry_policy() const {
    return retry_;
  }

  /// Pre-ack (GSI handshake) retries performed by submit()/reserve().
  std::uint64_t auth_retries() const { return auth_retries_; }

  /// Submits `rsl` (a '&' conjunction fragment) to the gatekeeper.
  /// `on_accepted` fires once with the job id or an error; `on_state`
  /// (optional) then receives every state transition.  `timeout` bounds
  /// each protocol phase (handshake round trips and the request RPC).
  void submit(net::NodeId gatekeeper, std::string rsl, sim::Time timeout,
              AcceptedFn on_accepted, StateFn on_state = nullptr);

  /// Cancels a job previously accepted by `gatekeeper`.
  void cancel(net::NodeId gatekeeper, JobId job, sim::Time timeout,
              DoneFn on_done);

  /// Queries a job's server-side state.
  void status(net::NodeId gatekeeper, JobId job, sim::Time timeout,
              std::function<void(util::Result<JobState>)> on_done);

  /// Liveness probe of a gatekeeper.
  void ping(net::NodeId gatekeeper, sim::Time timeout, DoneFn on_done);

  /// An acquired advance reservation as seen by the client.
  struct ReservationHandle {
    std::uint64_t id = 0;
    sim::Time start = 0;
    sim::Time end = 0;
  };

  /// Requests an advance reservation (paper §5); performs its own GSI
  /// handshake.  Fails with kFailedPrecondition on resources without
  /// reservation support.
  void reserve(net::NodeId gatekeeper, sim::Time start, sim::Time end,
               std::int32_t count, sim::Time timeout,
               std::function<void(util::Result<ReservationHandle>)> on_done);

  /// Releases an advance reservation.
  void cancel_reservation(net::NodeId gatekeeper, std::uint64_t reservation,
                          sim::Time timeout, DoneFn on_done);

  /// Detaches the state callback of a job (e.g. after DUROC releases it).
  void forget(JobId job);

  net::Endpoint& endpoint() { return *endpoint_; }

 private:
  void on_state_notify(net::NodeId src, util::Reader& payload);
  /// Runs the GSI handshake, re-trying whole handshakes on timeout when a
  /// retry policy is installed (the handshake is idempotent: an abandoned
  /// half-open exchange only leaves server-side state that expires).
  void authenticate_with_retry(net::NodeId gatekeeper, sim::Time timeout,
                               gsi::ClientContext::DoneFn on_done);
  /// One handshake attempt of the retry loop; continuations share `state`
  /// (a plain data holder, so no closure cycle keeps it alive forever).
  struct AuthRetryState;
  void auth_attempt(std::shared_ptr<AuthRetryState> state, int attempt);
  /// Issues `method` with the retry policy when set, one-shot otherwise.
  void idempotent_call(net::NodeId dst, std::uint32_t method,
                       sim::Payload args, sim::Time timeout,
                       net::Endpoint::ResponseFn on_response);

  net::Endpoint* endpoint_;
  gsi::ClientContext gsi_;
  std::optional<net::RetryPolicy> retry_;
  std::uint64_t auth_retries_ = 0;
  std::uint64_t next_auth_stream_ = 1;
  std::unordered_map<JobId, StateFn> watchers_;
  std::unordered_map<JobId, std::vector<JobStateChange>> early_;
};

}  // namespace grid::gram
