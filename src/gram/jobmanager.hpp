// GRAM job manager: runs one accepted job on a local scheduler.
//
// Responsibilities (one instance per job, owned by the gatekeeper):
//  * submit the job to the host's local scheduler;
//  * when the scheduler allocates processors, "exec" the requested number
//    of simulated processes (looked up in the executable registry);
//  * track process exits: all-ok -> DONE, any failure -> kill the rest and
//    FAIL; wall-time expiry and cancellation also FAIL;
//  * push PENDING / ACTIVE / DONE / FAILED callbacks to the client contact.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gram/job.hpp"
#include "gram/process.hpp"
#include "net/rpc.hpp"
#include "rsl/attributes.hpp"
#include "sched/scheduler.hpp"
#include "simkit/log.hpp"

namespace grid::gram {

class JobManager {
 public:
  /// `endpoint` is the gatekeeper's endpoint (used to send callbacks);
  /// `scheduler` and `registry` must outlive the manager.
  /// `exec_startup` models executable load/exec time between processor
  /// allocation and the processes entering main() (ACTIVE is reported when
  /// the processes are actually running).
  JobManager(net::Endpoint& endpoint, sched::LocalScheduler& scheduler,
             const ExecutableRegistry& registry, JobId id,
             rsl::JobRequest request, std::string local_user,
             net::NodeId callback_contact, sim::Time exec_startup,
             util::Logger logger);
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Submits to the scheduler; transitions to PENDING on success.
  util::Status start();

  /// Cancels the job: dequeues or kills, then reports FAILED(cancelled).
  void cancel();

  /// Host crash: destroy all processes silently (no callbacks escape a
  /// dead host).
  void crash();

  JobId id() const { return id_; }
  JobState state() const { return state_; }
  const rsl::JobRequest& request() const { return request_; }
  std::int32_t live_processes() const { return live_; }

 private:
  class Process;

  void on_scheduler_start();
  void exec_processes();
  void on_scheduler_end(sched::EndReason reason);
  void on_process_exit(std::int32_t rank, bool ok, const std::string& message);
  void terminate_processes();
  void transition(JobState state, util::ErrorCode error = util::ErrorCode::kOk,
                  const std::string& message = "");

  net::Endpoint* endpoint_;
  sched::LocalScheduler* scheduler_;
  const ExecutableRegistry* registry_;
  JobId id_;
  rsl::JobRequest request_;
  std::string local_user_;
  net::NodeId callback_contact_;
  sim::Time exec_startup_;
  sim::EventId exec_event_;
  util::Logger log_;

  JobState state_ = JobState::kUnsubmitted;
  std::vector<std::unique_ptr<Process>> processes_;
  std::int32_t live_ = 0;
  bool scheduler_job_live_ = false;
  bool failing_ = false;  // re-entrancy guard while killing processes
};

}  // namespace grid::gram
