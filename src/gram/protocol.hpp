// GRAM wire protocol: method ids and message encodings.
//
// A GRAM interaction is: GSI handshake (methods 0x101/0x102), then a job
// request carrying the session token, an RSL fragment, and a callback
// contact; the gatekeeper replies with a job id and pushes state-change
// notifications to the callback contact thereafter.
#pragma once

#include <cstdint>
#include <string>

#include "gram/job.hpp"
#include "net/network.hpp"
#include "simkit/codec.hpp"

namespace grid::gram {

/// RPC method ids (0x200 block reserved for GRAM).
enum Method : std::uint32_t {
  kMethodJobRequest = 0x201,
  kMethodJobCancel = 0x202,
  kMethodJobStatus = 0x203,
  kMethodPing = 0x204,
  // Advance reservation extension (paper §5 / ref [13]): only answered by
  // gatekeepers whose local scheduler supports reservations.
  kMethodReserve = 0x205,
  kMethodReserveCancel = 0x206,
};

struct ReserveArgs {
  std::uint64_t session_token = 0;
  sim::Time start = 0;
  sim::Time end = 0;
  std::int32_t count = 0;

  void encode(util::Writer& w) const;
  static ReserveArgs decode(util::Reader& r);
};

/// Notification kinds (pushed to the callback contact).
enum Notify : std::uint32_t {
  kNotifyJobState = 0x210,
};

struct JobRequestArgs {
  std::uint64_t session_token = 0;
  std::string rsl;                // a '&' conjunction fragment
  net::NodeId callback_contact = net::kInvalidNode;  // 0 = no callbacks

  void encode(util::Writer& w) const;
  static JobRequestArgs decode(util::Reader& r);
};

void encode_state_change(util::Writer& w, const JobStateChange& change);
JobStateChange decode_state_change(util::Reader& r);

}  // namespace grid::gram
