#include "gram/nis.hpp"

namespace grid::gram {

NisServer::NisServer(net::Network& network, sim::Time service_time)
    : endpoint_(network, "nis"), service_time_(service_time) {
  endpoint_.register_method(
      kMethodInitgroups,
      [this](net::NodeId caller, std::uint64_t call_id, util::Reader& args) {
        std::string user = args.str();
        if (!args.ok()) {
          endpoint_.respond_error(caller, call_id,
                                  util::ErrorCode::kInvalidArgument,
                                  "malformed initgroups request");
          return;
        }
        enqueue(Pending{caller, call_id, std::move(user)});
      });
}

void NisServer::add_user(std::string user, std::vector<std::string> groups) {
  users_[std::move(user)] = std::move(groups);
}

void NisServer::enqueue(Pending p) {
  queue_.push_back(std::move(p));
  if (!busy_) serve_next();
}

void NisServer::serve_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Pending p = std::move(queue_.front());
  queue_.pop_front();
  endpoint_.engine().schedule_after(service_time_, [this, p = std::move(p)] {
    ++served_;
    util::Writer w;
    auto it = users_.find(p.user);
    if (it == users_.end()) {
      w.varint(1);
      w.str("users");  // default primary group
    } else {
      w.varint(it->second.size() + 1);
      w.str("users");
      for (const std::string& g : it->second) w.str(g);
    }
    endpoint_.respond(p.caller, p.call_id, w.take());
    serve_next();
  });
}

NisClient::NisClient(net::Endpoint& endpoint, net::NodeId server)
    : endpoint_(&endpoint), server_(server) {}

void NisClient::initgroups(const std::string& user, sim::Time timeout,
                           DoneFn on_done) {
  util::Writer w;
  w.str(user);
  auto handler = [on_done = std::move(on_done)](const util::Status& status,
                                                util::Reader& reply) {
                    if (!status.is_ok()) {
                      on_done(status);
                      return;
                    }
                    const std::uint64_t n = reply.varint();
                    std::vector<std::string> groups;
                    groups.reserve(n);
                    for (std::uint64_t i = 0; i < n && reply.ok(); ++i) {
                      groups.push_back(reply.str());
                    }
                    if (!reply.ok()) {
                      on_done(util::Status(util::ErrorCode::kInternal,
                                           "malformed initgroups reply"));
                      return;
                    }
                    on_done(std::move(groups));
  };
  if (retry_.has_value()) {
    net::RetryPolicy policy = *retry_;
    if (policy.attempt_timeout <= 0) policy.attempt_timeout = timeout;
    endpoint_->retrying_call(server_, kMethodInitgroups, w.take(), policy,
                             std::move(handler));
  } else {
    endpoint_->call(server_, kMethodInitgroups, w.take(), timeout,
                    std::move(handler));
  }
}

}  // namespace grid::gram
