// GRAM gatekeeper: the per-resource entry point of the resource management
// layer.
//
// Request processing reproduces the cost structure of Figure 3:
//   1. session validation (established by the GSI handshake, ~0.5 s);
//   2. initgroups() via the shared NIS server (~0.7 s);
//   3. miscellaneous request processing (~0.01 s);
//   4. job-manager creation and local-scheduler submission (fork ~1 ms per
//      process under the fork scheduler).
// The request RPC is answered after step 4 (job accepted, PENDING); ACTIVE
// and later states are pushed to the callback contact.  This reply point is
// what serializes DUROC subjob submissions and produces Figure 4's slope.
#pragma once

#include <memory>
#include <string>

#include "gram/jobmanager.hpp"
#include "gram/nis.hpp"
#include "gram/process.hpp"
#include "gram/protocol.hpp"
#include "gsi/protocol.hpp"
#include "net/rpc.hpp"
#include "sched/scheduler.hpp"
#include "simkit/idmap.hpp"
#include "simkit/log.hpp"

namespace grid::gram {

/// Tunable gatekeeper-side costs (see testbed::CostModel for the calibrated
/// set used in the experiments).
struct GatekeeperCosts {
  /// Non-initgroups, non-auth request processing ("misc." in Figure 3).
  sim::Time misc_processing = 10 * sim::kMillisecond;
  /// Timeout of the gatekeeper's own NIS lookups.
  sim::Time nis_timeout = 30 * sim::kSecond;
  /// Executable load/exec time between processor allocation and the job's
  /// processes entering main() (part of Figure 2's "successful startup").
  sim::Time exec_startup = 720 * sim::kMillisecond;
};

class Gatekeeper {
 public:
  /// All referenced collaborators must outlive the gatekeeper.
  Gatekeeper(net::Network& network, std::string host_name,
             sched::LocalScheduler& scheduler,
             const ExecutableRegistry& registry,
             const gsi::CertificateAuthority& ca, const gsi::GridMap& gridmap,
             gsi::Credential host_credential, net::NodeId nis_server,
             gsi::CostModel gsi_costs = {}, GatekeeperCosts costs = {});

  net::NodeId contact() const { return endpoint_.id(); }
  const std::string& host_name() const { return host_name_; }
  net::Endpoint& endpoint() { return endpoint_; }
  sched::LocalScheduler& scheduler() { return *scheduler_; }

  /// Looks up a job's current state (server-side view).
  util::Result<JobState> job_state(JobId id) const;

  std::size_t job_count() const { return jobs_.size(); }

  /// Simulates a host crash: all job managers vanish without callbacks.
  /// (Usually invoked via Network::set_node_up(contact(), false), which
  /// calls back into this through the endpoint crash hook.)
  void crash();

 private:
  void handle_job_request(net::NodeId caller, std::uint64_t call_id,
                          util::Reader& args);
  void handle_job_cancel(net::NodeId caller, std::uint64_t call_id,
                         util::Reader& args);
  void handle_job_status(net::NodeId caller, std::uint64_t call_id,
                         util::Reader& args);
  void handle_reserve(net::NodeId caller, std::uint64_t call_id,
                      util::Reader& args);
  void handle_reserve_cancel(net::NodeId caller, std::uint64_t call_id,
                             util::Reader& args);
  void accept_job(net::NodeId caller, std::uint64_t call_id,
                  JobRequestArgs request, std::string local_user);

  net::Endpoint endpoint_;
  std::string host_name_;
  sched::LocalScheduler* scheduler_;
  const ExecutableRegistry* registry_;
  gsi::ServerContext gsi_;
  NisClient nis_;
  GatekeeperCosts costs_;
  util::Logger log_;
  std::uint64_t next_job_ = 1;
  sim::IdSlab<std::unique_ptr<JobManager>> jobs_;
};

}  // namespace grid::gram
