// Simulated Network Information Service (NIS).
//
// Figure 3 attributes the single largest share of a GRAM request (~0.7 s)
// to the Unix initgroups() call, "expensive because it must consult remote
// group databases (via the Network Information Service)".  We model NIS as
// a shared server with a FIFO request queue and a calibrated per-lookup
// service time, so the cost — and contention when lookups pile up — is
// reproduced structurally rather than hard-coded.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/retry.hpp"
#include "net/rpc.hpp"
#include "simkit/status.hpp"
#include "simkit/time.hpp"

namespace grid::gram {

/// RPC method ids (0x300 block reserved for NIS).
enum NisMethod : std::uint32_t {
  kMethodInitgroups = 0x301,
};

class NisServer {
 public:
  /// `service_time` is the database-consultation cost per lookup; requests
  /// are served one at a time in arrival order.
  NisServer(net::Network& network, sim::Time service_time);

  net::NodeId id() const { return endpoint_.id(); }

  /// Registers a user's supplementary groups.  Lookups for unknown users
  /// still succeed (primary group only), as initgroups() does.
  void add_user(std::string user, std::vector<std::string> groups);

  std::uint64_t lookups_served() const { return served_; }
  sim::Time service_time() const { return service_time_; }

 private:
  struct Pending {
    net::NodeId caller;
    std::uint64_t call_id;
    std::string user;
  };

  void enqueue(Pending p);
  void serve_next();

  net::Endpoint endpoint_;
  sim::Time service_time_;
  std::deque<Pending> queue_;
  bool busy_ = false;
  std::uint64_t served_ = 0;
  std::unordered_map<std::string, std::vector<std::string>> users_;
};

/// Client-side initgroups(): one NIS lookup per call.
class NisClient {
 public:
  NisClient(net::Endpoint& endpoint, net::NodeId server);

  using DoneFn =
      std::function<void(util::Result<std::vector<std::string>> groups)>;

  /// Resolves the supplementary groups of `user`.  `timeout` bounds the
  /// lookup; a crashed NIS server therefore hangs the gatekeeper only for
  /// `timeout`, another real-world failure mode the co-allocator sees.
  void initgroups(const std::string& user, sim::Time timeout, DoneFn on_done);

  /// Opts lookups into retry-on-timeout (initgroups is a pure read, so
  /// re-issuing a lost lookup is always safe).  nullopt restores one-shot.
  void set_retry_policy(std::optional<net::RetryPolicy> policy) {
    retry_ = policy;
  }

 private:
  net::Endpoint* endpoint_;
  net::NodeId server_;
  std::optional<net::RetryPolicy> retry_;
};

}  // namespace grid::gram
