#include "gram/jobmanager.hpp"

#include "gram/protocol.hpp"
#include "sched/reservation.hpp"

namespace grid::gram {

/// One simulated process: adapts ProcessApi onto the job manager.
class JobManager::Process final : public ProcessApi {
 public:
  Process(JobManager& owner, std::int32_t rank)
      : owner_(&owner), rank_(rank) {}

  util::Status exec() {
    auto behavior = owner_->registry_->create(owner_->request_.executable);
    if (!behavior.is_ok()) return behavior.status();
    behavior_ = behavior.take();
    behavior_->start(*this);
    return util::Status::ok();
  }

  void terminate() {
    if (behavior_ == nullptr) return;
    std::shared_ptr<ProcessBehavior> b = std::move(behavior_);
    b->on_terminate();
    // Defer destruction past the current event: the kill may have been
    // triggered from a callback whose owner lives inside the behaviour.
    engine().schedule_after(0, [b]() mutable { b.reset(); });
  }

  bool alive() const { return behavior_ != nullptr; }

  // ---- ProcessApi --------------------------------------------------------

  sim::Engine& engine() override { return owner_->endpoint_->engine(); }
  net::Network& network() override { return owner_->endpoint_->network(); }
  JobId job() const override { return owner_->id_; }
  const std::string& host_name() const override {
    return owner_->endpoint_->name();
  }
  std::int32_t local_rank() const override { return rank_; }
  std::int32_t local_count() const override { return owner_->request_.count; }
  const std::vector<std::string>& arguments() const override {
    return owner_->request_.arguments;
  }
  std::string getenv(const std::string& name) const override {
    for (const auto& [k, v] : owner_->request_.environment) {
      if (k == name) return v;
    }
    return "";
  }
  void exit(bool ok, std::string message) override {
    if (behavior_ == nullptr) return;  // already terminated
    // exit() is almost always called from one of the behaviour's own
    // callbacks (network handler or timer); destroying it synchronously
    // would free objects still on the call stack, so defer.
    std::shared_ptr<ProcessBehavior> b = std::move(behavior_);
    engine().schedule_after(0, [b]() mutable { b.reset(); });
    owner_->on_process_exit(rank_, ok, message);
  }

 private:
  JobManager* owner_;
  std::int32_t rank_;
  std::unique_ptr<ProcessBehavior> behavior_;
};

JobManager::JobManager(net::Endpoint& endpoint,
                       sched::LocalScheduler& scheduler,
                       const ExecutableRegistry& registry, JobId id,
                       rsl::JobRequest request, std::string local_user,
                       net::NodeId callback_contact, sim::Time exec_startup,
                       util::Logger logger)
    : endpoint_(&endpoint),
      scheduler_(&scheduler),
      registry_(&registry),
      id_(id),
      request_(std::move(request)),
      local_user_(std::move(local_user)),
      callback_contact_(callback_contact),
      exec_startup_(exec_startup),
      log_(std::move(logger)) {}

JobManager::~JobManager() { endpoint_->engine().cancel(exec_event_); }

util::Status JobManager::start() {
  sched::JobDescriptor desc;
  desc.id = id_;
  desc.count = request_.count;
  desc.max_wall_time =
      request_.max_wall_time.has_value() ? *request_.max_wall_time : 0;
  desc.annotation = request_.executable;
  util::Status status;
  if (request_.reservation_id != 0) {
    // The job is bound to an advance reservation (paper §5): it starts at
    // the window, inside reserved capacity.
    auto* reserver = dynamic_cast<sched::ReservationScheduler*>(scheduler_);
    if (reserver == nullptr) {
      return {util::ErrorCode::kFailedPrecondition,
              "resource manager does not support advance reservations"};
    }
    status = reserver->submit_reserved(
        desc, request_.reservation_id,
        [this](sched::JobId) { on_scheduler_start(); },
        [this](sched::JobId, sched::EndReason reason) {
          on_scheduler_end(reason);
        });
  } else {
    status = scheduler_->submit(
        desc, [this](sched::JobId) { on_scheduler_start(); },
        [this](sched::JobId, sched::EndReason reason) {
          on_scheduler_end(reason);
        });
  }
  if (!status.is_ok()) return status;
  scheduler_job_live_ = true;
  transition(JobState::kPending);
  return util::Status::ok();
}

void JobManager::on_scheduler_start() {
  if (is_terminal(state_)) return;
  // Processors are allocated; loading and exec'ing the executable takes
  // exec_startup before the processes are really running (ACTIVE).
  if (exec_startup_ > 0) {
    exec_event_ = endpoint_->engine().schedule_after(
        exec_startup_, [this] { exec_processes(); });
    return;
  }
  exec_processes();
}

void JobManager::exec_processes() {
  if (is_terminal(state_)) return;
  // Exec one process per allocated processor.
  processes_.reserve(static_cast<std::size_t>(request_.count));
  for (std::int32_t rank = 0; rank < request_.count; ++rank) {
    processes_.push_back(std::make_unique<Process>(*this, rank));
  }
  live_ = request_.count;
  transition(JobState::kActive);
  for (auto& p : processes_) {
    if (failing_ || is_terminal(state_)) break;
    if (auto st = p->exec(); !st.is_ok()) {
      // Executable missing or broken: the job fails at exec time.
      --live_;
      failing_ = true;
      terminate_processes();
      if (scheduler_job_live_) {
        scheduler_job_live_ = false;
        scheduler_->cancel(id_);
      }
      transition(JobState::kFailed, st.code(), st.message());
      failing_ = false;
      return;
    }
  }
}

void JobManager::on_process_exit(std::int32_t rank, bool ok,
                                 const std::string& message) {
  if (is_terminal(state_)) return;
  --live_;
  if (!ok && !failing_) {
    failing_ = true;
    terminate_processes();
    if (scheduler_job_live_) {
      scheduler_job_live_ = false;
      scheduler_->cancel(id_);
    }
    transition(JobState::kFailed, util::ErrorCode::kInternal,
               "process " + std::to_string(rank) + " failed: " + message);
    failing_ = false;
    return;
  }
  if (ok && live_ == 0 && !failing_) {
    if (scheduler_job_live_) {
      scheduler_job_live_ = false;
      scheduler_->complete(id_);
    }
    transition(JobState::kDone);
  }
}

void JobManager::terminate_processes() {
  for (auto& p : processes_) {
    if (p->alive()) {
      p->terminate();
      --live_;
    }
  }
}

void JobManager::on_scheduler_end(sched::EndReason reason) {
  scheduler_job_live_ = false;
  if (is_terminal(state_)) return;
  switch (reason) {
    case sched::EndReason::kCompleted:
      // complete() initiated by us after processes exited; nothing to do.
      return;
    case sched::EndReason::kCancelled:
      failing_ = true;
      terminate_processes();
      transition(JobState::kFailed, util::ErrorCode::kAborted,
                 "job cancelled");
      failing_ = false;
      return;
    case sched::EndReason::kWallTimeExceeded:
      failing_ = true;
      terminate_processes();
      transition(JobState::kFailed, util::ErrorCode::kTimeout,
                 "wall time limit exceeded");
      failing_ = false;
      return;
  }
}

void JobManager::cancel() {
  if (is_terminal(state_)) return;
  if (scheduler_job_live_) {
    scheduler_job_live_ = false;
    scheduler_->cancel(id_);  // triggers on_scheduler_end only if still known
  }
  failing_ = true;
  terminate_processes();
  transition(JobState::kFailed, util::ErrorCode::kAborted, "job cancelled");
  failing_ = false;
}

void JobManager::crash() {
  // The host died: no callbacks, no scheduler bookkeeping — just vanish.
  for (auto& p : processes_) {
    if (p->alive()) p->terminate();
  }
  live_ = 0;
  state_ = JobState::kFailed;
}

void JobManager::transition(JobState state, util::ErrorCode error,
                            const std::string& message) {
  if (state_ == state) return;
  state_ = state;
  GRID_LOG(log_, kDebug) << "job " << id_ << " -> " << to_string(state)
                         << (message.empty() ? "" : ": " + message);
  if (callback_contact_ == net::kInvalidNode) return;
  JobStateChange change;
  change.job = id_;
  change.state = state;
  change.error = error;
  change.message = message;
  change.at = endpoint_->engine().now();
  util::Writer w;
  encode_state_change(w, change);
  endpoint_->notify(callback_contact_, kNotifyJobState, w.take());
}

}  // namespace grid::gram
