// Leveled, sim-time-stamped logging.
//
// The logger is attached to an Engine so every line carries the virtual
// timestamp of the event that produced it, which is what makes protocol
// traces (e.g. the Figure 5 timeline) legible.  Logging defaults to WARN in
// tests/benches and can be raised per-component.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

#include "simkit/engine.hpp"

namespace grid::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

std::string_view to_string(LogLevel level);

class Logger {
 public:
  using Sink = std::function<void(std::string_view line)>;

  /// A logger that stamps lines with `engine`'s virtual clock and writes to
  /// stderr.  `component` prefixes every line (e.g. "gram/host3").
  Logger(const sim::Engine& engine, std::string component);

  /// Child logger sharing level and sink but with its own component tag.
  Logger child(std::string_view sub) const;

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  bool enabled(LogLevel level) const { return level >= level_; }
  void log(LogLevel level, std::string_view msg) const;

  /// Process-wide default level applied to newly created loggers.
  static void set_default_level(LogLevel level);
  static LogLevel default_level();

 private:
  const sim::Engine* engine_;
  std::string component_;
  LogLevel level_;
  Sink sink_;
};

/// Streaming log statement: GRID_LOG(logger, kInfo) << "x=" << x;
class LogLine {
 public:
  LogLine(const Logger& logger, LogLevel level)
      : logger_(logger), level_(level), live_(logger.enabled(level)) {}
  ~LogLine() {
    if (live_) logger_.log(level_, os_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (live_) os_ << v;
    return *this;
  }

 private:
  const Logger& logger_;
  LogLevel level_;
  bool live_;
  std::ostringstream os_;
};

#define GRID_LOG(logger, level) \
  ::grid::util::LogLine((logger), ::grid::util::LogLevel::level)

}  // namespace grid::util
