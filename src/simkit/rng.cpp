#include "simkit/rng.hpp"

#include <cmath>

namespace grid::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed through splitmix64 per the xoshiro authors' advice.
  for (auto& s : s_) s = splitmix64(seed);
}

Rng Rng::fork() { return Rng(next_u64()); }

std::uint64_t Rng::next_u64() {
  // xoshiro256** step.
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo >= hi) return lo;
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection sampling for an unbiased draw.
  const std::uint64_t limit =
      range == 0 ? 0 : std::numeric_limits<std::uint64_t>::max() -
                           std::numeric_limits<std::uint64_t>::max() % range;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (range != 0 && v >= limit);
  return lo + static_cast<std::int64_t>(range == 0 ? v : v % range);
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

Time Rng::uniform_time(Time lo, Time hi) { return uniform_int(lo, hi); }

Time Rng::exponential_time(Time mean) {
  if (mean <= 0) return 0;
  return static_cast<Time>(exponential(static_cast<double>(mean)));
}

}  // namespace grid::sim
