// GRID_CHECK: hard-failing runtime invariant tripwires.
//
// The simulator's correctness story rests on invariants the type system
// cannot express: pooled buffers are never touched after their last handle
// drops, the engine's index-tracking heap stays consistent across cancels,
// call tables drain at endpoint teardown.  In normal builds those hold by
// construction and cost nothing to assume; under `GRID_CHECKED` (the
// `checked` CMake preset) every one of them is verified at runtime and a
// violation aborts the process with a file:line diagnostic — fail loudly,
// never limp on with corrupted simulation state.
//
// GRID_CHECK compiles to nothing when GRID_CHECKED is off, so it may guard
// O(n) audits (heap scans, table walks) that would be unacceptable in the
// measurement builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace grid::sim {

[[noreturn]] inline void check_fail(const char* file, int line,
                                    const char* what) {
  std::fprintf(stderr, "GRID_CHECK failed at %s:%d: %s\n", file, line, what);
  std::fflush(stderr);
  std::abort();
}

}  // namespace grid::sim

#if defined(GRID_CHECKED)
#define GRID_CHECK(cond, what)                                      \
  do {                                                              \
    if (!(cond)) ::grid::sim::check_fail(__FILE__, __LINE__, what); \
  } while (false)
#define GRID_CHECKED_ONLY(...) __VA_ARGS__
#else
#define GRID_CHECK(cond, what) \
  do {                         \
  } while (false)
#define GRID_CHECKED_ONLY(...)
#endif
