// Global counting allocator hook backing sim::AllocGuard.
//
// Replaces the replaceable global allocation functions with counting
// versions (one thread_local increment per allocation, then malloc /
// aligned_alloc exactly like the defaults).  This TU is linked into a
// binary only when something references AllocGuard::thread_allocations();
// see allocguard.hpp.  Sanitizer builds still see every allocation: the
// replacements bottom out in malloc/free, which ASan/TSan intercept.
#include "simkit/allocguard.hpp"

#include <cstdlib>
#include <new>

namespace {
thread_local std::uint64_t t_alloc_count = 0;
}  // namespace

namespace grid::sim {

std::uint64_t AllocGuard::thread_allocations() { return t_alloc_count; }

}  // namespace grid::sim

// gridlint: allow(naked-new): this IS the allocator — the counting
// replacements for the global allocation functions.
void* operator new(std::size_t n) {
  ++t_alloc_count;
  void* p = std::malloc(n > 0 ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++t_alloc_count;
  return std::malloc(n > 0 ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return ::operator new(n, std::nothrow);
}
void* operator new(std::size_t n, std::align_val_t al) {
  ++t_alloc_count;
  const std::size_t a = static_cast<std::size_t>(al);
  void* p = std::aligned_alloc(a, (n + a - 1) / a * a);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
