#include "simkit/status.hpp"

namespace grid::util {

std::string to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kTimeout:
      return "TIMEOUT";
    case ErrorCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kAborted:
      return "ABORTED";
    case ErrorCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string s = grid::util::to_string(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace grid::util
