#include "simkit/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace grid::util {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Accumulator::reset() { *this = Accumulator(); }

double Accumulator::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Samples::add(double x) {
  xs_.push_back(x);
  sorted_ = false;
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Samples::quantile(double q) const {
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const std::size_t i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= xs_.size()) return xs_.back();
  return xs_[i] * (1.0 - frac) + xs_[i + 1] * frac;
}

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Samples::min() const {
  ensure_sorted();
  return xs_.empty() ? 0.0 : xs_.front();
}

double Samples::max() const {
  ensure_sorted();
  return xs_.empty() ? 0.0 : xs_.back();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto i = static_cast<std::size_t>((x - lo_) / w);
  if (i >= counts_.size()) i = counts_.size() - 1;
  ++counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(counts_[i] * width / peak);
    std::snprintf(line, sizeof line, "[%10.3f, %10.3f) %8llu |", bin_lo(i),
                  bin_hi(i), static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  if (underflow_ != 0 || overflow_ != 0) {
    std::snprintf(line, sizeof line, "underflow=%llu overflow=%llu\n",
                  static_cast<unsigned long long>(underflow_),
                  static_cast<unsigned long long>(overflow_));
    out += line;
  }
  return out;
}

}  // namespace grid::util
