#include "simkit/bufpool.hpp"

#include <utility>

namespace grid::sim {

Payload::Payload(std::vector<std::uint8_t>&& bytes) {
  Payload p = BufferPool::local().adopt(std::move(bytes));
  buf_ = p.buf_;
  p.buf_ = nullptr;
}

const std::vector<std::uint8_t>& Payload::bytes() const {
  static const std::vector<std::uint8_t> kEmpty;
  return buf_ != nullptr ? buf_->data : kEmpty;
}

BufferPool::~BufferPool() {
  // Outstanding handles at pool destruction would dangle; in practice the
  // pool is thread-local and outlives every simulation object on its
  // thread.  Freeing here keeps leak checkers quiet at thread exit.
  for (detail::PayloadBuffer* b : all_) delete b;
}

Payload BufferPool::acquire() {
  ++stats_.acquired;
  detail::PayloadBuffer* b = free_;
  if (b != nullptr) {
    GRID_CHECK(b->on_free_list && b->refs == 0,
               "BufferPool free list holds a live buffer (double take?)");
    b->on_free_list = false;
    free_ = b->next_free;
    b->next_free = nullptr;
    ++stats_.recycled;
  } else {
    // Pool growth, cold path — the buffer is owned by all_ for the pool's
    // lifetime and recycled thereafter.  gridlint: allow(naked-new)
    b = new detail::PayloadBuffer;
    b->pool = this;
    all_.push_back(b);
    ++stats_.fresh;
  }
  b->refs = 1;
  return Payload(b);
}

Payload BufferPool::adopt(std::vector<std::uint8_t>&& bytes) {
  Payload p = acquire();
  p.buf_->data = std::move(bytes);
  // The storage was heap-allocated by the caller, whatever the buffer
  // wrapper's history — count the message as fresh, not recycled.
  p.buf_->recycled = false;
  return p;
}

void BufferPool::release(detail::PayloadBuffer* b) {
  GRID_CHECK(!b->on_free_list,
             "BufferPool::release of a buffer already on the free list");
  GRID_CHECK(b->refs == 0, "BufferPool::release of a buffer with live refs");
  b->data.clear();  // keeps capacity
  b->recycled = true;
  b->on_free_list = true;
  b->next_free = free_;
  free_ = b;
}

std::size_t BufferPool::free_count() const {
  std::size_t n = 0;
  for (detail::PayloadBuffer* b = free_; b != nullptr; b = b->next_free) ++n;
  return n;
}

BufferPool& BufferPool::local() {
  thread_local BufferPool pool;
  return pool;
}

}  // namespace grid::sim
