// Scoped allocation counting for zero-allocation assertions.
//
// The steady-state message path is allocation-free by design (DESIGN.md
// §5.3); bench/micro_net proved it with a local counting `operator new`
// hook.  AllocGuard promotes that hook into simkit so *any* test or bench
// can assert a zero-allocation region:
//
//   sim::AllocGuard guard;
//   ... run the steady-state window ...
//   EXPECT_EQ(guard.allocations(), 0u);
//
// The counting `operator new`/`operator delete` replacements live in
// allocguard.cpp.  Because grid_simkit is a static library, that object
// file — and with it the global replacement — is linked into a binary only
// when the binary actually references AllocGuard; programs that never use
// the guard keep the default allocator.  Counting is per-thread (a
// thread_local counter, no atomics), which both keeps the hook cheap and
// gives the right semantics under sim::TrialPool: a guard observes the
// allocations of its own trial, never a neighbour's.
#pragma once

#include <cstdint>

namespace grid::sim {

class AllocGuard {
 public:
  /// Starts a counting region on the calling thread.
  AllocGuard() : start_(thread_allocations()) {}
  AllocGuard(const AllocGuard&) = delete;
  AllocGuard& operator=(const AllocGuard&) = delete;

  /// Heap allocations (any `new`, including ones buried in libstdc++) made
  /// by this thread since the guard was constructed.
  std::uint64_t allocations() const { return thread_allocations() - start_; }

  /// Total allocations ever observed on the calling thread.  Defined in
  /// allocguard.cpp; referencing it is what pulls in the counting hook.
  static std::uint64_t thread_allocations();

 private:
  std::uint64_t start_;
};

}  // namespace grid::sim
