// Trial-level parallelism for seeded discrete-event ensembles.
//
// Every experiment in this reproduction is an ensemble of independent
// seeded trials: build a Grid from a seed, run the event loop, collect a
// result struct.  The engine itself is single-threaded by design (see
// engine.hpp), so the only safe parallelism is *between* trials — each
// closure owns its entire world (Engine, Network, Rng) and shares nothing.
//
// TrialPool fans such closures across a fixed set of worker threads and
// hands the results back in input order, so a parallel sweep is
// byte-identical to the serial loop it replaces: determinism per seed is
// untouched because no trial ever observes another trial, and determinism
// of the *report* is untouched because results are keyed by index, never
// by completion order.
//
// Closures must be fully isolated: no shared mutable state, no
// EXPECT/ASSERT on shared objects, no engine handles crossing trials.
// `run_indexed` is not reentrant (a trial body must not run nested sweeps
// on the same pool).
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace grid::sim {

class TrialPool {
 public:
  /// Creates `threads` workers; 0 means one per hardware thread (or the
  /// GRID_TRIAL_THREADS environment override, so CI and the determinism
  /// harness can force serial or oversubscribed sweeps).
  explicit TrialPool(unsigned threads = 0);
  ~TrialPool();

  TrialPool(const TrialPool&) = delete;
  TrialPool& operator=(const TrialPool&) = delete;

  /// Number of worker threads actually running.
  unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  /// The thread count a default-constructed pool would use.
  static unsigned default_workers();

  /// Runs body(i) for every i in [0, count), distributed across the
  /// workers; returns when all are done.  If any body throws, the first
  /// exception is rethrown here after the sweep stops claiming new indices.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& body);

  /// Fans count seeded trials out and returns results in index order:
  /// out[i] = fn(i).  `fn` must be callable concurrently from multiple
  /// threads on distinct indices.
  template <typename R, typename Fn>
  std::vector<R> map(std::size_t count, Fn&& fn) {
    std::vector<R> out(count);
    run_indexed(count, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  struct Impl;
  void worker_loop();

  std::vector<std::thread> threads_;
  Impl* impl_;
};

}  // namespace grid::sim
