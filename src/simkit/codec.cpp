#include "simkit/codec.hpp"

namespace grid::util {

void Writer::varint(std::uint64_t v) {
  Bytes& b = buf();
  while (v >= 0x80) {
    b.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  b.push_back(static_cast<std::uint8_t>(v));
}

void Writer::str(std::string_view s) {
  blob(s.data(), s.size());
}

void Writer::blob(const void* data, std::size_t n) {
  varint(n);
  if (n == 0) return;  // memcpy from a null/empty source is UB
  Bytes& b = buf();
  const std::size_t at = b.size();
  b.resize(at + n);
  std::memcpy(b.data() + at, data, n);
}

bool Reader::take(std::size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  pos_ += n;
  return true;
}

std::uint8_t Reader::u8() {
  if (!take(1)) return 0;
  return data_[pos_ - 1];
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return ok_ ? v : 0.0;
}

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (!take(1)) return 0;
    const std::uint8_t b = data_[pos_ - 1];
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
  }
  ok_ = false;  // varint longer than 64 bits
  return 0;
}

std::string_view Reader::str_view() {
  const std::uint64_t n = varint();
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return {};
  }
  std::string_view s(reinterpret_cast<const char*>(data_ + pos_),
                     static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

std::span<const std::uint8_t> Reader::blob_view() {
  const std::uint64_t n = varint();
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return {};
  }
  std::span<const std::uint8_t> b(data_ + pos_, static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return b;
}

}  // namespace grid::util
