#include "simkit/trialpool.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>

namespace grid::sim {

struct TrialPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  // Current sweep; body is non-null only while run_indexed is active.
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t count = 0;
  std::size_t next = 0;
  std::size_t chunk = 1;
  std::size_t in_flight = 0;
  std::exception_ptr error;
  bool stop = false;
};

unsigned TrialPool::default_workers() {
  if (const char* env = std::getenv("GRID_TRIAL_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

TrialPool::TrialPool(unsigned threads) : impl_(new Impl) {
  if (threads == 0) threads = default_workers();
  threads_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

TrialPool::~TrialPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : threads_) t.join();
  delete impl_;
}

void TrialPool::worker_loop() {
  Impl& st = *impl_;
  std::unique_lock<std::mutex> lock(st.mu);
  for (;;) {
    st.work_cv.wait(lock, [&] {
      return st.stop || (st.body != nullptr && st.next < st.count);
    });
    if (st.stop) return;
    // Claim a contiguous chunk per lock acquisition: short trials would
    // otherwise serialize on the sweep mutex instead of running.
    const std::size_t first = st.next;
    const std::size_t take = std::min(st.chunk, st.count - st.next);
    st.next += take;
    ++st.in_flight;
    lock.unlock();
    try {
      for (std::size_t i = first; i < first + take; ++i) (*st.body)(i);
      lock.lock();
    } catch (...) {
      lock.lock();
      if (!st.error) st.error = std::current_exception();
      st.next = st.count;  // stop claiming further trials
    }
    --st.in_flight;
    if (st.next >= st.count && st.in_flight == 0) st.done_cv.notify_all();
  }
}

void TrialPool::run_indexed(std::size_t count,
                            const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (threads_.size() <= 1) {
    // One worker can do no better than the caller itself: run the sweep
    // inline and skip the handoff entirely, so a serial ensemble pays zero
    // synchronization overhead (exceptions propagate naturally).
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  Impl& st = *impl_;
  std::unique_lock<std::mutex> lock(st.mu);
  st.body = &body;
  st.count = count;
  st.next = 0;
  st.in_flight = 0;
  st.error = nullptr;
  // Aim for several chunks per worker so stragglers still balance, while
  // long sweeps of tiny trials take the lock O(workers) times, not O(n).
  st.chunk = std::max<std::size_t>(1, count / (threads_.size() * 8));
  st.work_cv.notify_all();
  st.done_cv.wait(lock,
                  [&] { return st.next >= st.count && st.in_flight == 0; });
  st.body = nullptr;
  if (st.error) {
    std::exception_ptr err = st.error;
    st.error = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace grid::sim
