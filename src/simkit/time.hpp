// Virtual time for the discrete-event simulation.
//
// All simulated clocks are integer nanoseconds so that experiment results
// are reproducible bit-for-bit across runs and platforms.  Helpers convert
// to and from floating-point seconds only at reporting boundaries.
#pragma once

#include <cstdint>
#include <string>

namespace grid::sim {

/// Virtual time or duration, in nanoseconds since simulation start.
using Time = std::int64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1000 * kNanosecond;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;
inline constexpr Time kMinute = 60 * kSecond;
inline constexpr Time kHour = 60 * kMinute;

/// Sentinel meaning "no deadline" / "never".
inline constexpr Time kTimeNever = INT64_MAX;

/// Converts a duration in (possibly fractional) seconds to virtual time.
constexpr Time from_seconds(double s) {
  return static_cast<Time>(s * static_cast<double>(kSecond));
}

/// Converts virtual time to fractional seconds (for reporting only).
constexpr double to_seconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts virtual time to fractional milliseconds (for reporting only).
constexpr double to_millis(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/// Renders a time as a compact human-readable string, e.g. "2.043s".
std::string format_time(Time t);

}  // namespace grid::sim
