// Deterministic random number generation for simulations.
//
// Wraps a xoshiro256** generator with the distribution helpers the
// experiments need.  Every simulated component that needs randomness takes a
// seeded Rng (or forks one from a parent) so experiment runs replay exactly.
#pragma once

#include <cstdint>
#include <limits>

#include "simkit/time.hpp"

namespace grid::sim {

class Rng {
 public:
  /// Seeds the generator; equal seeds produce equal streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives an independent child stream; used to give each simulated host
  /// its own generator without correlating their draws.
  Rng fork();

  /// Uniform 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Normal via Box-Muller (no cached spare: keeps the stream replayable
  /// regardless of call interleaving).
  double normal(double mean, double stddev);

  /// Log-normal parameterized by the mean/stddev of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Uniform duration in [lo, hi] inclusive.
  Time uniform_time(Time lo, Time hi);

  /// Exponentially distributed duration with the given mean.
  Time exponential_time(Time mean);

 private:
  std::uint64_t s_[4];
};

}  // namespace grid::sim
