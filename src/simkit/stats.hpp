// Online statistics used by the benchmark harnesses and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace grid::util {

/// Streaming mean / variance / min / max accumulator (Welford's algorithm).
class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Reservoir of raw samples with exact quantiles; fine at simulation scale.
class Samples {
 public:
  void add(double x);
  std::size_t count() const { return xs_.size(); }
  double quantile(double q) const;  ///< q in [0,1]; linear interpolation.
  double median() const { return quantile(0.5); }
  double mean() const;
  double min() const;
  double max() const;
  const std::vector<double>& values() const { return xs_; }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = true;
  void ensure_sorted() const;
};

/// Fixed-bin linear histogram for wait-time distributions.
class Histogram {
 public:
  /// Bins cover [lo, hi) evenly; samples outside land in under/overflow.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_[i]; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// Multi-line ASCII rendering for bench output.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace grid::util
