#include "simkit/log.hpp"

#include <cstdio>

#include "simkit/time.hpp"

namespace grid::util {
namespace {

LogLevel g_default_level = LogLevel::kWarn;

void stderr_sink(std::string_view line) {
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger::Logger(const sim::Engine& engine, std::string component)
    : engine_(&engine),
      component_(std::move(component)),
      level_(g_default_level),
      sink_(stderr_sink) {}

Logger Logger::child(std::string_view sub) const {
  Logger c = *this;
  c.component_ = component_ + "/" + std::string(sub);
  return c;
}

void Logger::log(LogLevel level, std::string_view msg) const {
  if (!enabled(level) || !sink_) return;
  std::string line;
  line.reserve(msg.size() + component_.size() + 32);
  line += "[";
  line += sim::format_time(engine_->now());
  line += "] ";
  line += to_string(level);
  line += " ";
  line += component_;
  line += ": ";
  line += msg;
  sink_(line);
}

void Logger::set_default_level(LogLevel level) { g_default_level = level; }
LogLevel Logger::default_level() { return g_default_level; }

}  // namespace grid::util
