// Open-addressed id index and the slab built on it.
//
// The RPC layer keeps one table entry per in-flight call, keyed by a
// monotonically increasing 64-bit call id.  `std::unordered_map` pays a
// node allocation per insert — on the hot path, per message.  `IdSlab`
// instead stores entries in a slot vector recycled through a free list
// (mirroring the engine's slab of event entries), with `IdMap` — a small
// open-addressed hash table with backward-shift deletion — mapping the
// sparse ids to slot indices.  Steady state allocates nothing: both the
// slot vector and the hash cells retain capacity across erase/insert.
//
// Keys must be nonzero (0 is the empty-cell marker); call ids start at 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "simkit/check.hpp"

namespace grid::sim {

/// uint64 -> uint32 open-addressed hash map, linear probing, power-of-two
/// capacity, backward-shift deletion (no tombstones, so lookup cost never
/// degrades under churn).  Key 0 is reserved as the empty marker.
class IdMap {
 public:
  static constexpr std::uint32_t kNotFound = 0xffffffffu;

  void insert(std::uint64_t key, std::uint32_t value) {
    GRID_CHECK(key != 0, "IdMap key 0 is reserved (empty-cell marker)");
    GRID_CHECK(find(key) == kNotFound, "IdMap::insert of a key already present");
    if (cells_.empty() || (size_ + 1) * 4 >= cells_.size() * 3) grow();
    const std::size_t mask = cells_.size() - 1;
    std::size_t i = hash(key) & mask;
    while (cells_[i].key != 0) i = (i + 1) & mask;
    cells_[i] = Cell{key, value};
    ++size_;
  }

  std::uint32_t find(std::uint64_t key) const {
    if (size_ == 0) return kNotFound;
    const std::size_t mask = cells_.size() - 1;
    for (std::size_t i = hash(key) & mask;; i = (i + 1) & mask) {
      if (cells_[i].key == key) return cells_[i].value;
      if (cells_[i].key == 0) return kNotFound;
    }
  }

  bool erase(std::uint64_t key) {
    if (size_ == 0) return false;
    const std::size_t mask = cells_.size() - 1;
    std::size_t hole = hash(key) & mask;
    while (cells_[hole].key != key) {
      if (cells_[hole].key == 0) return false;
      hole = (hole + 1) & mask;
    }
    // Backward-shift: walk the probe run after the hole and pull back any
    // entry whose home slot means it can legally occupy the hole.
    std::size_t j = hole;
    while (true) {
      j = (j + 1) & mask;
      if (cells_[j].key == 0) break;
      const std::size_t home = hash(cells_[j].key) & mask;
      if (((j - home) & mask) >= ((j - hole) & mask)) {
        cells_[hole] = cells_[j];
        hole = j;
      }
    }
    cells_[hole] = Cell{};
    --size_;
    return true;
  }

  /// Empties the map but keeps the cell array's capacity.
  void clear() {
    for (Cell& c : cells_) c = Cell{};
    size_ = 0;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return cells_.size(); }

 private:
  struct Cell {
    std::uint64_t key = 0;
    std::uint32_t value = 0;
  };

  static std::size_t hash(std::uint64_t k) {
    // splitmix64 finalizer: sequential ids spread over the whole table.
    k ^= k >> 30;
    k *= 0xbf58476d1ce4e5b9ULL;
    k ^= k >> 27;
    k *= 0x94d049bb133111ebULL;
    k ^= k >> 31;
    return static_cast<std::size_t>(k);
  }

  void grow() {
    std::vector<Cell> old = std::move(cells_);
    cells_.assign(old.empty() ? 16 : old.size() * 2, Cell{});
    size_ = 0;
    for (const Cell& c : old) {
      if (c.key != 0) insert(c.key, c.value);
    }
  }

  std::vector<Cell> cells_;
  std::size_t size_ = 0;
};

/// Slab of T keyed by sparse nonzero 64-bit ids.  Slots are recycled
/// through a free list; lookups go through an IdMap index.  References
/// returned by find()/emplace() stay valid until that entry is erased or
/// the slab grows (so: don't hold them across an emplace).
template <typename T>
class IdSlab {
 public:
  T& emplace(std::uint64_t id, T&& value) {
    GRID_CHECK(id != 0, "IdSlab ids must be nonzero");
    GRID_CHECK(index_.find(id) == IdMap::kNotFound,
               "IdSlab::emplace of an id already present");
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      GRID_CHECK(slots_[slot].id == 0,
                 "IdSlab free list holds an occupied slot");
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    slots_[slot].id = id;
    slots_[slot].value.emplace(std::move(value));
    index_.insert(id, slot);
    return *slots_[slot].value;
  }

  /// Find-or-default-construct, `unordered_map::operator[]` shape (requires
  /// a default-constructible T).  Registration-table idiom:
  /// `table[id] = handler;` replaces any previous entry for `id`.
  T& operator[](std::uint64_t id) {
    if (T* existing = find(id)) return *existing;
    return emplace(id, T{});
  }

  T* find(std::uint64_t id) {
    const std::uint32_t slot = index_.find(id);
    if (slot == IdMap::kNotFound) return nullptr;
    GRID_CHECK(slots_[slot].id == id,
               "IdSlab index/slot generation mismatch (stale index entry)");
    return &*slots_[slot].value;
  }

  const T* find(std::uint64_t id) const {
    const std::uint32_t slot = index_.find(id);
    if (slot == IdMap::kNotFound) return nullptr;
    GRID_CHECK(slots_[slot].id == id,
               "IdSlab index/slot generation mismatch (stale index entry)");
    return &*slots_[slot].value;
  }

  bool erase(std::uint64_t id) {
    const std::uint32_t slot = index_.find(id);
    if (slot == IdMap::kNotFound) return false;
    GRID_CHECK(slots_[slot].id == id,
               "IdSlab index/slot generation mismatch (stale index entry)");
    slots_[slot].value.reset();
    slots_[slot].id = 0;
    ++slots_[slot].gen;  // invalidates any notion of "the previous occupant"
    free_.push_back(slot);
    index_.erase(id);
    GRID_CHECK(consistent(), "IdSlab inconsistent after erase");
    return true;
  }

  /// Visits every live entry as fn(id, T&), in slot order — a deterministic
  /// order (a pure function of the emplace/erase history, never of hashing),
  /// which is why code that sends messages or schedules events may iterate
  /// an IdSlab but not an unordered container.  Erasing during iteration is
  /// not supported — collect ids first or use clear().
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Slot& s : slots_) {
      if (s.id != 0) fn(s.id, *s.value);
    }
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.id != 0) fn(s.id, *s.value);
    }
  }

  /// Destroys every entry; keeps slot/free-list/index capacity.
  void clear() {
    for (Slot& s : slots_) {
      if (s.id != 0) {
        s.value.reset();
        s.id = 0;
      }
    }
    free_.clear();
    for (std::uint32_t i = 0; i < slots_.size(); ++i) free_.push_back(i);
    index_.clear();
  }

  std::size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }

  /// Full cross-check of slab/index/free-list agreement: every live slot
  /// maps back to itself through the index, the index holds exactly the
  /// live slots, and the free list holds exactly the vacant ones.  O(n);
  /// called from GRID_CHECKED tripwires and tests, never the fast path.
  bool consistent() const {
    std::size_t live = 0;
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      const Slot& s = slots_[i];
      if (s.id == 0) {
        if (s.value.has_value()) return false;
        continue;
      }
      ++live;
      if (!s.value.has_value()) return false;
      if (index_.find(s.id) != i) return false;
    }
    if (live != index_.size()) return false;
    if (live + free_.size() != slots_.size()) return false;
    for (const std::uint32_t f : free_) {
      if (f >= slots_.size() || slots_[f].id != 0) return false;
    }
    return true;
  }

 private:
  struct Slot {
    std::uint64_t id = 0;  // 0 = vacant
    /// Occupancy generation, bumped on erase.  Diagnostic only: the
    /// GRID_CHECKED mismatch tripwires compare ids, and a changed gen is
    /// what distinguishes "slot reused by a newer entry" from corruption.
    std::uint32_t gen = 0;
    std::optional<T> value;
  };

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  IdMap index_;
};

}  // namespace grid::sim
