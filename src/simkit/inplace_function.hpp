// Small-buffer-optimized move-only callable, the engine's callback type.
//
// Almost every event callback in this codebase captures a pointer or two
// plus a sequence number / deadline (retry timers, heartbeat ticks, RPC
// timeouts).  `std::function` heap-allocates many of those and pays a
// virtual dispatch on every move; `InplaceFunction<N>` stores any callable
// of size <= N inline and only boxes genuinely large captures.  Move-only
// on purpose: event callbacks are scheduled once and fired once, so copies
// would only hide accidental double-ownership of captured state.
//
// The signature defaults to `void()` (the engine's callback shape); other
// users name theirs explicitly, e.g. the RPC layer's
// `InplaceFunction<48, void(const Status&, Reader&)>` response callbacks.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace grid::sim {

template <std::size_t Capacity, typename Sig = void()>
class InplaceFunction;  // only the R(Args...) specialization exists

template <std::size_t Capacity, typename R, typename... Args>
class InplaceFunction<Capacity, R(Args...)> {
 public:
  InplaceFunction() = default;
  InplaceFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceFunction> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InplaceFunction(InplaceFunction&& other) noexcept { move_from(other); }
  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InplaceFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceFunction> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InplaceFunction& operator=(F&& f) {
    reset();
    emplace(std::forward<F>(f));
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const InplaceFunction& f, std::nullptr_t) {
    return f.ops_ == nullptr;
  }

  R operator()(Args... args) {
    return ops_->invoke(&storage_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    // Move-constructs dst from src and destroys src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  template <typename F>
  struct InlineOps {
    static R invoke(void* p, Args&&... args) {
      return (*static_cast<F*>(p))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) {
      F* from = static_cast<F*>(src);
      ::new (dst) F(std::move(*from));
      from->~F();
    }
    static void destroy(void* p) { static_cast<F*>(p)->~F(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename F>
  struct BoxedOps {
    static F*& slot(void* p) { return *static_cast<F**>(p); }
    static R invoke(void* p, Args&&... args) {
      return (*slot(p))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) {
      ::new (dst) F*(slot(src));
    }
    static void destroy(void* p) { delete slot(p); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (&storage_) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      ::new (&storage_) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &BoxedOps<Fn>::ops;
    }
  }

  void move_from(InplaceFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(&storage_, &other.storage_);
      other.ops_ = nullptr;
    }
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace grid::sim
