// Lightweight status / result types used across module boundaries.
//
// The library reports recoverable errors by value (no exceptions on hot
// protocol paths); exceptions are reserved for programming errors.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace grid::util {

/// Error category for cross-module error reporting.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   // malformed RSL, bad parameters
  kNotFound,          // unknown host, job, or attribute
  kPermissionDenied,  // GSI authentication/authorization failure
  kUnavailable,       // resource down, link partitioned
  kTimeout,           // deadline elapsed
  kResourceExhausted, // scheduler cannot satisfy the request
  kFailedPrecondition,// operation illegal in current state (e.g. edit after commit)
  kAborted,           // co-allocation aborted (required subjob failed)
  kInternal,          // bug or protocol violation
};

std::string to_string(ErrorCode code);

class Status;

/// Builds a Status whose message is short enough for the small-string
/// optimization, so hot miss paths (information-service lookups, slab
/// probes) report errors without touching the heap.  libstdc++ keeps 15
/// chars inline; the static_assert turns a too-long literal into a compile
/// error instead of a silent allocation.
template <std::size_t N>
Status small_status(ErrorCode code, const char (&message)[N]);

class Status {
 public:
  Status() = default;  // OK
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

template <std::size_t N>
Status small_status(ErrorCode code, const char (&message)[N]) {
  static_assert(N <= 16,
                "message exceeds the 15-char SSO budget; shorten it or use "
                "Status directly");
  return Status(code, message);
}

/// A value or a Status; asserts on wrong-side access.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.is_ok() && "Result from OK status needs a value");
  }
  Result(ErrorCode code, std::string message)
      : status_(code, std::move(message)) {}

  bool is_ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  T& value() & {
    assert(is_ok());
    return *value_;
  }
  T&& take() {
    assert(is_ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace grid::util
