// Byte-level serialization for protocol messages.
//
// Every wire protocol in the simulation (GRAM, GSI, NIS, DUROC barrier,
// gridmpi) encodes its messages through this codec rather than passing
// object pointers around, so the protocols are honest about what crosses
// the network: sizes are accountable and decoding can fail.
//
// Format: little-endian fixed-width integers, LEB128 varints for lengths,
// length-prefixed strings/blobs.  Decoding is bounds-checked; a decode past
// the end or an oversized length marks the reader bad instead of throwing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace grid::util {

using Bytes = std::vector<std::uint8_t>;

/// Appends primitive values to a byte buffer.
class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_le(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Unsigned LEB128 varint.
  void varint(std::uint64_t v);

  /// Length-prefixed string.
  void str(std::string_view s);

  /// Length-prefixed opaque blob.
  void blob(const Bytes& b);

  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  Bytes buf_;
};

/// Bounds-checked reader over a byte buffer.  After any failed read the
/// reader is "bad": all further reads return zero values and ok() is false.
class Reader {
 public:
  explicit Reader(const Bytes& buf) : data_(buf.data()), size_(buf.size()) {}
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8();
  std::uint16_t u16() { return get_le<std::uint16_t>(); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  bool boolean() { return u8() != 0; }
  std::uint64_t varint();
  std::string str();
  Bytes blob();

  bool ok() const { return ok_; }
  /// True when the reader is still ok and fully consumed.
  bool done() const { return ok_ && pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  template <typename T>
  T get_le() {
    if (!take(sizeof(T))) return T{};
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ - sizeof(T) + i])
                              << (8 * i)));
    }
    return v;
  }
  bool take(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace grid::util
