// Byte-level serialization for protocol messages.
//
// Every wire protocol in the simulation (GRAM, GSI, NIS, DUROC barrier,
// gridmpi) encodes its messages through this codec rather than passing
// object pointers around, so the protocols are honest about what crosses
// the network: sizes are accountable and decoding can fail.
//
// Format: little-endian fixed-width integers, LEB128 varints for lengths,
// length-prefixed strings/blobs.  Decoding is bounds-checked; a decode past
// the end or an oversized length marks the reader bad instead of throwing.
//
// Memory model: the Writer encodes into a pooled `sim::Payload` buffer
// (acquired lazily on first append, recycled when the last handle drops),
// take() hands the buffer to the network without copying, and the Reader
// is a non-owning view — str_view()/blob_view() return slices of the
// message buffer itself for decoders that don't need to keep the bytes.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "simkit/bufpool.hpp"

namespace grid::util {

using Bytes = std::vector<std::uint8_t>;

/// Appends primitive values to a pooled byte buffer.
class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v) { buf().push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_le(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Unsigned LEB128 varint.
  void varint(std::uint64_t v);

  /// Length-prefixed string.
  void str(std::string_view s);

  /// Length-prefixed opaque blob.
  void blob(const Bytes& b) { blob(b.data(), b.size()); }
  void blob(const sim::Payload& p) { blob(p.data(), p.size()); }
  void blob(const void* data, std::size_t n);

  /// Grows capacity for at least `additional` more bytes.  Hot encoders
  /// call this once up front so a message is one allocation at worst (and
  /// zero once the pooled buffer has warmed up to the message size).
  void reserve(std::size_t additional) {
    Bytes& b = buf();
    b.reserve(b.size() + additional);
  }

  const Bytes& bytes() const { return payload_.bytes(); }
  /// Releases the encoded buffer as a pooled payload; the Writer is empty
  /// afterwards and may be reused.
  sim::Payload take() { return std::move(payload_); }
  /// Moves the encoded bytes out as a plain vector, for callers that need
  /// user-owned data rather than a message payload (e.g. gridmpi user
  /// buffers).  The pooled buffer goes back to the pool empty.
  Bytes take_bytes() {
    Bytes out;
    if (payload_.attached()) out = std::move(payload_.mutable_bytes());
    payload_.reset();
    return out;
  }
  std::size_t size() const { return payload_.size(); }

 private:
  Bytes& buf() {
    if (!payload_.attached()) payload_ = sim::BufferPool::local().acquire();
    return payload_.mutable_bytes();
  }

  template <typename T>
  void put_le(T v) {
    // Bulk append: one resize + memcpy, not sizeof(T) push_backs.  Byte
    // order on the wire is little-endian regardless of host order.
    if constexpr (std::endian::native != std::endian::little) {
      T sw{};
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        sw = static_cast<T>((sw << 8) | ((v >> (8 * i)) & 0xff));
      }
      v = sw;
    }
    Bytes& b = buf();
    const std::size_t at = b.size();
    b.resize(at + sizeof(T));
    std::memcpy(b.data() + at, &v, sizeof(T));
  }

  sim::Payload payload_;
};

/// Bounds-checked reader over a byte buffer.  After any failed read the
/// reader is "bad": all further reads return zero values and ok() is false.
/// Non-owning: the buffer (or payload) must outlive the reader.
class Reader {
 public:
  explicit Reader(const Bytes& buf) : data_(buf.data()), size_(buf.size()) {}
  explicit Reader(const sim::Payload& p) : data_(p.data()), size_(p.size()) {}
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8();
  std::uint16_t u16() { return get_le<std::uint16_t>(); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  bool boolean() { return u8() != 0; }
  std::uint64_t varint();

  /// Copying accessors (for decoders that keep the data).
  std::string str() { return std::string(str_view()); }
  Bytes blob() {
    const auto v = blob_view();
    return Bytes(v.begin(), v.end());
  }

  /// Zero-copy accessors: views into the message buffer, valid only while
  /// it is.  Hot decoders use these to avoid a heap allocation per field.
  std::string_view str_view();
  std::span<const std::uint8_t> blob_view();

  bool ok() const { return ok_; }
  /// True when the reader is still ok and fully consumed.
  bool done() const { return ok_ && pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  template <typename T>
  T get_le() {
    if (!take(sizeof(T))) return T{};
    T v{};
    std::memcpy(&v, data_ + pos_ - sizeof(T), sizeof(T));
    if constexpr (std::endian::native != std::endian::little) {
      T sw{};
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        sw = static_cast<T>((sw << 8) | ((v >> (8 * i)) & 0xff));
      }
      v = sw;
    }
    return v;
  }
  bool take(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace grid::util
