#include "simkit/engine.hpp"

#include <cassert>
#include <memory>

namespace grid::sim {

Engine::~Engine() {
  while (!queue_.empty()) {
    delete queue_.top();
    queue_.pop();
  }
}

EventId Engine::schedule_at(Time t, Callback fn) {
  if (t < now_) t = now_;
  const std::uint64_t seq = next_seq_++;
  auto* e = new Entry{t, seq, std::move(fn)};
  queue_.push(e);
  index_.emplace(seq, e);
  ++live_;
  return EventId(seq);
}

bool Engine::cancel(EventId id) {
  auto it = index_.find(id.seq_);
  if (it == index_.end()) return false;
  it->second->cancelled = true;
  it->second->fn = nullptr;  // release captured state eagerly
  index_.erase(it);
  --live_;
  return true;
}

Engine::Entry* Engine::pop_next() {
  while (!queue_.empty()) {
    Entry* e = queue_.top();
    queue_.pop();
    if (e->cancelled) {
      delete e;
      continue;
    }
    return e;
  }
  return nullptr;
}

bool Engine::step() {
  Entry* e = pop_next();
  if (e == nullptr) return false;
  assert(e->at >= now_);
  now_ = e->at;
  index_.erase(e->seq);
  --live_;
  ++executed_;
  Callback fn = std::move(e->fn);
  delete e;
  fn();
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(Time deadline) {
  for (;;) {
    Entry* e = pop_next();
    if (e == nullptr) return;
    if (e->at > deadline) {
      // Put it back untouched; the clock stops at the deadline.
      queue_.push(e);
      now_ = deadline > now_ ? deadline : now_;
      return;
    }
    now_ = e->at;
    index_.erase(e->seq);
    --live_;
    ++executed_;
    Callback fn = std::move(e->fn);
    delete e;
    fn();
  }
}

}  // namespace grid::sim
