#include "simkit/engine.hpp"

#include <cassert>
#include <utility>

namespace grid::sim {

namespace {

constexpr std::uint64_t kSlotMask = 0xffffffffULL;

std::uint32_t id_slot(std::uint64_t raw) {
  return static_cast<std::uint32_t>(raw & kSlotMask);
}

std::uint32_t id_gen(std::uint64_t raw) {
  return static_cast<std::uint32_t>(raw >> 32);
}

std::uint64_t make_raw(std::uint32_t slot, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(gen) << 32) | slot;
}

}  // namespace

std::uint32_t Engine::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Engine::release_slot(std::uint32_t slot) {
  Entry& e = slots_[slot];
  e.fn = nullptr;  // release captured state eagerly
  // Bumping the generation invalidates every outstanding EventId for this
  // slot; gen is kept nonzero so a live raw id never equals 0 (invalid).
  if (++e.gen == 0) e.gen = 1;
  free_.push_back(slot);
}

void Engine::sift_up(std::uint32_t pos) {
  const HeapItem item = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / kArity;
    if (!before(item, heap_[parent])) break;
    place(pos, heap_[parent]);
    pos = parent;
  }
  place(pos, item);
}

void Engine::sift_down(std::uint32_t pos) {
  const HeapItem item = heap_[pos];
  const std::uint32_t size = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    const std::uint32_t first_child = pos * kArity + 1;
    if (first_child >= size) break;
    const std::uint32_t last_child =
        first_child + kArity - 1 < size ? first_child + kArity - 1 : size - 1;
    std::uint32_t best = first_child;
    for (std::uint32_t c = first_child + 1; c <= last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], item)) break;
    place(pos, heap_[best]);
    pos = best;
  }
  place(pos, item);
}

void Engine::heap_erase(std::uint32_t pos) {
  const std::uint32_t last = static_cast<std::uint32_t>(heap_.size()) - 1;
  if (pos == last) {
    heap_.pop_back();
    return;
  }
  const HeapItem displaced = heap_[last];
  heap_.pop_back();
  place(pos, displaced);
  // The displaced entry may need to move either direction.
  if (pos > 0 && before(displaced, heap_[(pos - 1) / kArity])) {
    sift_up(pos);
  } else {
    sift_down(pos);
  }
}

EventId Engine::schedule_at(Time t, Callback fn) {
  if (t < now_) t = now_;
  const std::uint32_t slot = acquire_slot();
  Entry& e = slots_[slot];
  e.fn = std::move(fn);
  const std::uint32_t pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(HeapItem{t, next_seq_++, slot});
  e.heap_pos = pos;
  sift_up(pos);
  return EventId(make_raw(slot, e.gen));
}

bool Engine::cancel(EventId id) {
  if (!id.valid()) return false;
  const std::uint32_t slot = id_slot(id.raw_);
  if (slot >= slots_.size()) return false;
  Entry& e = slots_[slot];
  // A live slot's generation matches every id handed out for its current
  // occupancy; once fired/cancelled the generation moves on and stale
  // handles fall through here.
  if (e.gen != id_gen(id.raw_)) return false;
  heap_erase(e.heap_pos);
  release_slot(slot);
  GRID_CHECK(heap_consistent(),
             "Engine heap inconsistent after cancel (index-tracking broke)");
  return true;
}

bool Engine::heap_consistent() const {
  for (std::uint32_t i = 0; i < heap_.size(); ++i) {
    const HeapItem& item = heap_[i];
    if (i > 0 && before(item, heap_[(i - 1) / kArity])) return false;
    if (item.slot >= slots_.size()) return false;
    if (slots_[item.slot].heap_pos != i) return false;
  }
  return true;
}

bool Engine::step() {
  if (heap_.empty()) return false;
  const HeapItem next = heap_[0];
  if (next.at == kTimeNever) return false;  // parked: unreachable by time
  assert(next.at >= now_);
  now_ = next.at;
  heap_erase(0);
  ++executed_;
  Callback fn = std::move(slots_[next.slot].fn);
  release_slot(next.slot);
  fn();
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(Time deadline) {
  for (;;) {
    if (heap_.empty()) return;
    const HeapItem next = heap_[0];
    if (next.at == kTimeNever) return;
    if (next.at > deadline) {
      // The next event is beyond the horizon; the clock stops at the
      // deadline and the event stays queued untouched.
      now_ = deadline > now_ ? deadline : now_;
      return;
    }
    now_ = next.at;
    heap_erase(0);
    ++executed_;
    Callback fn = std::move(slots_[next.slot].fn);
    release_slot(next.slot);
    fn();
  }
}

}  // namespace grid::sim
