#include "simkit/time.hpp"

#include <cinttypes>
#include <cstdio>

namespace grid::sim {

std::string format_time(Time t) {
  char buf[64];
  if (t == kTimeNever) {
    return "never";
  }
  const char* sign = t < 0 ? "-" : "";
  const Time a = t < 0 ? -t : t;
  if (a >= kSecond) {
    std::snprintf(buf, sizeof buf, "%s%.3fs", sign, to_seconds(a));
  } else if (a >= kMillisecond) {
    std::snprintf(buf, sizeof buf, "%s%.3fms", sign, to_millis(a));
  } else if (a >= kMicrosecond) {
    std::snprintf(buf, sizeof buf, "%s%" PRId64 "us", sign, a / kMicrosecond);
  } else {
    std::snprintf(buf, sizeof buf, "%s%" PRId64 "ns", sign, a);
  }
  return buf;
}

}  // namespace grid::sim
