// Pooled, ref-counted payload buffers for the message path.
//
// Every RPC frame used to be a fresh `std::vector<uint8_t>`: allocated by
// the Writer, moved into the network, freed after delivery.  At millions of
// messages per ensemble that churn dominates wall-clock (the engine itself
// went allocation-free in the previous round).  `BufferPool` instead hands
// out capacity-retaining buffers that return to a free list when the last
// `Payload` handle drops, so the steady state recycles a handful of buffers
// with zero heap traffic.
//
// Ownership model:
//   - `Payload` is a move-only handle; exactly one handle per buffer in the
//     common point-to-point case, so "who owns the bytes" is always the
//     holder of the handle (Writer -> Network -> delivery lambda).
//   - Fan-out paths (DUROC barrier re-send, abort broadcast, gridmpi
//     tables) call `share()` to take an extra ref-counted handle on the
//     same buffer: one encode, N sends, no copies.  Sharing is explicit so
//     accidental aliasing cannot happen via a copy constructor.
//   - Buffers belong to a thread-local pool (`BufferPool::local()`), which
//     matches sim::TrialPool's one-trial-per-thread isolation: handles must
//     not cross threads, and never do (each trial owns its whole world).
//
// Under GRID_CHECKED (see simkit/check.hpp) the pool turns its ownership
// rules into tripwires: releasing a buffer that is already on the free
// list (double take-back), handing out a free-list buffer with live
// references (free-list corruption), or mutating a shared buffer all
// abort with a diagnostic instead of silently corrupting payloads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "simkit/check.hpp"

namespace grid::sim {

class BufferPool;

namespace detail {
/// The shared backing store.  Lives in a pool's `all_` list for its whole
/// lifetime; cycles between "held by Payload handles" and "on the free
/// list".  `data` keeps its capacity across recycles — that is the point.
struct PayloadBuffer {
  std::vector<std::uint8_t> data;
  std::uint32_t refs = 0;
  /// False only until the buffer's first trip through the free list (and
  /// for adopted vectors, whose storage came from the general allocator).
  /// Drives the NetworkStats fresh/recycled accounting.
  bool recycled = false;
  /// True while the buffer sits on the pool's free list.  The GRID_CHECKED
  /// tripwires use it to catch double-release and use-after-release; the
  /// fast path never reads it.
  bool on_free_list = false;
  PayloadBuffer* next_free = nullptr;
  BufferPool* pool = nullptr;
};
}  // namespace detail

/// Move-only handle to a pooled byte buffer.  Default-constructed handles
/// are empty (no buffer) and cost nothing.
class Payload {
 public:
  Payload() = default;

  /// Adopts an already-built byte vector (compatibility path for callers
  /// that assemble payloads outside a Writer).  The storage came from the
  /// general allocator, so the buffer counts as "fresh" in pool stats.
  Payload(std::vector<std::uint8_t>&& bytes);  // NOLINT: implicit on purpose

  Payload(Payload&& other) noexcept : buf_(other.buf_) { other.buf_ = nullptr; }
  Payload& operator=(Payload&& other) noexcept {
    if (this != &other) {
      reset();
      buf_ = other.buf_;
      other.buf_ = nullptr;
    }
    return *this;
  }
  Payload(const Payload&) = delete;
  Payload& operator=(const Payload&) = delete;
  ~Payload() { reset(); }

  /// Another handle to the same buffer (ref-count bump, no copy).  The
  /// bytes must be treated as frozen once shared: any holder's Reader sees
  /// the same storage.
  Payload share() const {
    if (buf_ != nullptr) {
      GRID_CHECK(!buf_->on_free_list && buf_->refs > 0,
                 "Payload::share on a buffer already returned to the pool");
      ++buf_->refs;
    }
    return Payload(buf_);
  }

  const std::uint8_t* data() const {
    return buf_ != nullptr ? buf_->data.data() : nullptr;
  }
  std::size_t size() const { return buf_ != nullptr ? buf_->data.size() : 0; }
  bool empty() const { return size() == 0; }
  bool attached() const { return buf_ != nullptr; }
  std::uint32_t ref_count() const { return buf_ != nullptr ? buf_->refs : 0; }

  /// True when the backing buffer was recycled from the pool's free list
  /// rather than freshly heap-allocated.  Feeds per-message allocation
  /// accounting in NetworkStats.
  bool recycled() const { return buf_ != nullptr && buf_->recycled; }

  /// Releases this handle; the buffer returns to its pool when the last
  /// handle drops.
  void reset();

  /// The backing vector.  Only the unique owner (ref_count() == 1) may
  /// mutate; the Writer is the only mutating client.
  std::vector<std::uint8_t>& mutable_bytes() {
    GRID_CHECK(buf_ != nullptr && !buf_->on_free_list,
               "Payload::mutable_bytes on a released buffer");
    GRID_CHECK(buf_->refs == 1,
               "Payload::mutable_bytes on a shared buffer (frozen once "
               "shared; only the unique owner may mutate)");
    return buf_->data;
  }
  const std::vector<std::uint8_t>& bytes() const;

 private:
  friend class BufferPool;
  explicit Payload(detail::PayloadBuffer* buf) : buf_(buf) {}
  detail::PayloadBuffer* buf_ = nullptr;
};

/// Recycling allocator for payload buffers.  Not thread-safe by design:
/// use the thread-local instance via local().
class BufferPool {
 public:
  struct Stats {
    std::uint64_t acquired = 0;  // total acquire() calls
    std::uint64_t fresh = 0;     // served by a new heap allocation
    std::uint64_t recycled = 0;  // served from the free list
  };

  BufferPool() = default;
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// An empty buffer, recycled if possible.  Capacity from its previous
  /// life is retained.
  Payload acquire();

  /// Wraps an existing vector in a pooled buffer (see Payload's adopting
  /// constructor).
  Payload adopt(std::vector<std::uint8_t>&& bytes);

  const Stats& stats() const { return stats_; }
  std::size_t free_count() const;
  std::size_t total_buffers() const { return all_.size(); }

  /// The calling thread's pool.  All simkit payload traffic goes through
  /// this; per-thread pools keep TrialPool workers fully isolated.
  static BufferPool& local();

 private:
  friend class Payload;
  void release(detail::PayloadBuffer* b);

  std::vector<detail::PayloadBuffer*> all_;  // owns every buffer ever made
  detail::PayloadBuffer* free_ = nullptr;
  Stats stats_;
};

inline void Payload::reset() {
  if (buf_ != nullptr) {
    GRID_CHECK(!buf_->on_free_list && buf_->refs > 0,
               "Payload handle dropped after its buffer returned to the pool "
               "(double take-back)");
    if (--buf_->refs == 0) buf_->pool->release(buf_);
  }
  buf_ = nullptr;
}

}  // namespace grid::sim
