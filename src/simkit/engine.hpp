// Discrete-event simulation engine.
//
// The engine owns a priority queue of (time, sequence, callback) events and
// advances a virtual clock.  Events scheduled for the same instant fire in
// scheduling order (FIFO), which makes protocol traces deterministic.
// Cancellation is O(1) via generation-checked handles with lazy removal.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "simkit/time.hpp"

namespace grid::sim {

/// Opaque handle to a scheduled event; valid until the event fires or is
/// cancelled.  A default-constructed handle refers to no event.
class EventId {
 public:
  EventId() = default;
  bool valid() const { return seq_ != 0; }
  friend bool operator==(const EventId&, const EventId&) = default;

 private:
  friend class Engine;
  explicit EventId(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

/// The simulation engine.  Not thread-safe: a simulation is a single-threaded
/// event loop by design (see DESIGN.md §5.2); determinism is the point.
class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `t` (>= now()).
  /// Scheduling in the past is clamped to now().
  EventId schedule_at(Time t, Callback fn);

  /// Schedules `fn` to run `delay` after the current time.
  EventId schedule_after(Time delay, Callback fn) {
    return schedule_at(delay >= kTimeNever - now_ ? kTimeNever : now_ + delay,
                       std::move(fn));
  }

  /// Cancels a pending event.  Returns true if the event was still pending.
  bool cancel(EventId id);

  /// Runs a single event.  Returns false if the queue is empty.
  bool step();

  /// Runs until the event queue is empty.
  void run();

  /// Runs until the clock would pass `deadline` or the queue drains.
  /// The clock is left at min(deadline, last event time).
  void run_until(Time deadline);

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return live_; }

  /// Total number of events executed since construction.
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    Callback fn;
    bool cancelled = false;
  };
  struct Order {
    bool operator()(const Entry* a, const Entry* b) const {
      if (a->at != b->at) return a->at > b->at;
      return a->seq > b->seq;
    }
  };

  Entry* pop_next();

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::priority_queue<Entry*, std::vector<Entry*>, Order> queue_;
  // seq -> live entry, for cancellation.  queue_ owns the Entry allocations;
  // index_ only references live (not-yet-fired, not-cancelled) ones.
  std::unordered_map<std::uint64_t, Entry*> index_;
};

}  // namespace grid::sim
