// Discrete-event simulation engine.
//
// The engine owns a priority queue of (time, sequence, callback) events and
// advances a virtual clock.  Events scheduled for the same instant fire in
// scheduling order (FIFO), which makes protocol traces deterministic.
//
// Hot-path layout (see DESIGN.md §5.2): event entries live in a slab with a
// free list, so steady-state scheduling performs no allocation; the pending
// set is an index-tracking 4-ary heap (each entry records its heap slot), so
// `cancel` removes the entry in place in O(log n) with no auxiliary map and
// no lazy tombstones; callbacks are `InplaceFunction<64>`, so the common
// captures (an endpoint pointer plus a sequence number or deadline) never
// touch the heap.  The schedule-then-cancel pattern of the retry/heartbeat
// machinery is exactly the traffic this layout is built for.
//
// `kTimeNever` contract: an event scheduled at exactly `kTimeNever` (which
// is where `schedule_after` lands when the delay overflows past the end of
// time) is unreachable — `step`, `run`, and `run_until` never fire it, even
// `run_until(kTimeNever)`.  It still counts as pending and can be cancelled;
// it is released when the engine is destroyed.
#pragma once

#include <cstdint>
#include <vector>

#include "simkit/check.hpp"
#include "simkit/inplace_function.hpp"
#include "simkit/time.hpp"

namespace grid::sim {

/// Opaque handle to a scheduled event; valid until the event fires or is
/// cancelled.  A default-constructed handle refers to no event.  Handles are
/// generation-checked: once the event fires or is cancelled, the handle goes
/// stale and `cancel` on it returns false even if the underlying slab slot
/// has been reused by a newer event.
class EventId {
 public:
  EventId() = default;
  bool valid() const { return raw_ != 0; }
  friend bool operator==(const EventId&, const EventId&) = default;

 private:
  friend class Engine;
  explicit EventId(std::uint64_t raw) : raw_(raw) {}
  // Low 32 bits: slab slot.  High 32 bits: slot generation (never zero for
  // a live handle, so a default-constructed id never matches).
  std::uint64_t raw_ = 0;
};

/// The simulation engine.  Not thread-safe: a simulation is a single-threaded
/// event loop by design (see DESIGN.md §5.2); determinism is the point.
/// Trial-level parallelism lives above the engine (see trialpool.hpp): one
/// fully-isolated Engine per seeded trial.
class Engine {
 public:
  using Callback = InplaceFunction<64>;

  Engine() = default;
  ~Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `t` (>= now()).
  /// Scheduling in the past is clamped to now().  Scheduling at exactly
  /// `kTimeNever` parks the event forever (see the contract above).
  EventId schedule_at(Time t, Callback fn);

  /// Schedules `fn` to run `delay` after the current time.  A delay that
  /// overflows past the end of time parks the event at `kTimeNever`.
  EventId schedule_after(Time delay, Callback fn) {
    return schedule_at(delay >= kTimeNever - now_ ? kTimeNever : now_ + delay,
                       std::move(fn));
  }

  /// Cancels a pending event.  Returns true if the event was still pending.
  bool cancel(EventId id);

  /// Runs a single event.  Returns false if no runnable event remains
  /// (the queue is empty or holds only kTimeNever-parked events).
  bool step();

  /// Runs until no runnable event remains.
  void run();

  /// Runs until the clock would pass `deadline` or the runnable events
  /// drain.  The clock is left at min(deadline, last event time).
  /// kTimeNever-parked events never fire, even with deadline == kTimeNever.
  void run_until(Time deadline);

  /// Number of pending (non-cancelled) events, including parked ones.
  std::size_t pending() const { return heap_.size(); }

  /// Total number of events executed since construction.
  std::uint64_t executed() const { return executed_; }

  /// Self-audit of the index-tracking heap: the 4-ary heap property holds
  /// and every heap item's slab entry records its true position.  O(n);
  /// GRID_CHECKED builds run it after every cancel (the only operation
  /// that moves an arbitrary interior item), tests may call it directly.
  bool heap_consistent() const;

 private:
  // The slab holds the callback and the handle generation; the sort key
  // lives inline in the heap items so comparisons during sift never chase
  // into the slab.
  struct Entry {
    std::uint32_t gen = 1;       // bumped when the slot is freed
    std::uint32_t heap_pos = 0;  // index into heap_ while scheduled
    Callback fn;
  };
  struct HeapItem {
    Time at;
    std::uint64_t seq;   // tie-break: FIFO among same-time events
    std::uint32_t slot;  // slab index of the entry
  };

  static constexpr std::uint32_t kArity = 4;

  static bool before(const HeapItem& a, const HeapItem& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  void place(std::uint32_t pos, const HeapItem& item) {
    heap_[pos] = item;
    slots_[item.slot].heap_pos = pos;
  }
  void sift_up(std::uint32_t pos);
  void sift_down(std::uint32_t pos);
  void heap_erase(std::uint32_t pos);
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  // Slab of event entries; freed slots are recycled through free_ instead
  // of the allocator.  A plain vector (entries move on growth), so no code
  // may hold an Entry reference across anything that can schedule — the
  // firing callback is moved out of the slab before it runs.
  std::vector<Entry> slots_;
  std::vector<std::uint32_t> free_;
  // 4-ary min-heap ordered by (at, seq).  Entries know their position, so
  // erase-by-handle needs no search and no tombstones.
  std::vector<HeapItem> heap_;
};

}  // namespace grid::sim
