// GSI mutual authentication protocol.
//
// A three-message handshake between a client endpoint and a server
// endpoint, with configurable CPU costs on both sides (Figure 3 attributes
// ~0.5 s of each GRAM request to this exchange):
//
//   client --(INIT: client credential, nonce)--------------> server
//   client <-(server credential, challenge)----------------- server
//   client --(FINAL: challenge response)--------------------> server
//   client <-(session token)--------------------------------- server
//
// On success the client holds a Session token that authorizes subsequent
// calls (GRAM validates it on every job request).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "gsi/credential.hpp"
#include "net/rpc.hpp"
#include "simkit/status.hpp"
#include "simkit/time.hpp"

namespace grid::gsi {

/// RPC method ids (0x100 block reserved for GSI).
enum Method : std::uint32_t {
  kMethodInit = 0x101,
  kMethodFinal = 0x102,
};

/// CPU costs of the handshake operations.  Defaults are calibrated so a
/// handshake over a 2 ms network totals ~0.5 s, matching Figure 3.
struct CostModel {
  sim::Time client_sign = 120 * sim::kMillisecond;
  sim::Time server_verify = 130 * sim::kMillisecond;
  sim::Time client_verify = 100 * sim::kMillisecond;
  sim::Time server_issue = 120 * sim::kMillisecond;

  sim::Time cpu_total() const {
    return client_sign + server_verify + client_verify + server_issue;
  }
};

/// An established security context.
struct Session {
  std::uint64_t token = 0;
  std::string subject;     // authenticated grid identity
  std::string local_user;  // gridmap-resolved local account
  sim::Time expires = 0;
};

/// Server half: attach to an Endpoint to serve handshakes and validate
/// session tokens presented by later requests.
class ServerContext {
 public:
  /// `ca` and `gridmap` must outlive the context.  `identity` is the
  /// server's own credential presented to clients.
  ServerContext(net::Endpoint& endpoint, const CertificateAuthority& ca,
                const GridMap& gridmap, Credential identity,
                CostModel costs = {});

  /// Looks up an established session; kPermissionDenied if unknown/expired.
  util::Result<Session> validate(std::uint64_t token) const;

  /// Number of live sessions (for tests).
  std::size_t session_count() const { return sessions_.size(); }

  const CostModel& costs() const { return costs_; }

 private:
  void handle_init(net::NodeId caller, std::uint64_t call_id,
                   util::Reader& args);
  void handle_final(net::NodeId caller, std::uint64_t call_id,
                    util::Reader& args);

  net::Endpoint* endpoint_;
  const CertificateAuthority* ca_;
  const GridMap* gridmap_;
  Credential identity_;
  CostModel costs_;
  std::uint64_t next_token_ = 1;
  // Challenges outstanding per caller nonce.
  struct PendingHandshake {
    std::string subject;
    std::uint64_t challenge = 0;
  };
  std::unordered_map<std::uint64_t, PendingHandshake> pending_;
  std::uint64_t next_handshake_ = 1;
  std::unordered_map<std::uint64_t, Session> sessions_;
};

/// Expected challenge response: ties the challenge to the subject.
std::uint64_t challenge_response(std::uint64_t challenge,
                                 std::string_view subject);

/// Client half: runs the handshake.  `on_done` fires exactly once with the
/// session or an error (authentication failure, timeout, malformed reply).
class ClientContext {
 public:
  ClientContext(net::Endpoint& endpoint, const CertificateAuthority& ca,
                Credential identity, CostModel costs = {});

  using DoneFn = std::function<void(util::Result<Session>)>;

  /// Starts a handshake with the server at `server`.  `timeout` bounds each
  /// round trip.
  void authenticate(net::NodeId server, sim::Time timeout, DoneFn on_done);

 private:
  net::Endpoint* endpoint_;
  const CertificateAuthority* ca_;
  Credential identity_;
  CostModel costs_;
};

}  // namespace grid::gsi
