#include "gsi/protocol.hpp"

#include <memory>
#include <utility>

namespace grid::gsi {

std::uint64_t challenge_response(std::uint64_t challenge,
                                 std::string_view subject) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ challenge;
  for (char c : subject) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

ServerContext::ServerContext(net::Endpoint& endpoint,
                             const CertificateAuthority& ca,
                             const GridMap& gridmap, Credential identity,
                             CostModel costs)
    : endpoint_(&endpoint),
      ca_(&ca),
      gridmap_(&gridmap),
      identity_(std::move(identity)),
      costs_(costs) {
  endpoint_->register_method(
      kMethodInit,
      [this](net::NodeId caller, std::uint64_t call_id, util::Reader& args) {
        handle_init(caller, call_id, args);
      });
  endpoint_->register_method(
      kMethodFinal,
      [this](net::NodeId caller, std::uint64_t call_id, util::Reader& args) {
        handle_final(caller, call_id, args);
      });
}

void ServerContext::handle_init(net::NodeId caller, std::uint64_t call_id,
                                util::Reader& args) {
  Credential cred = Credential::decode(args);
  if (!args.ok()) {
    endpoint_->respond_error(caller, call_id, util::ErrorCode::kInvalidArgument,
                             "malformed INIT");
    return;
  }
  // Verification burns server CPU before any reply is sent.
  endpoint_->engine().schedule_after(
      costs_.server_verify, [this, caller, call_id, cred = std::move(cred)] {
        const sim::Time now = endpoint_->engine().now();
        if (auto st = ca_->verify(cred, now); !st.is_ok()) {
          endpoint_->respond_error(caller, call_id, st.code(), st.message());
          return;
        }
        if (auto lu = gridmap_->lookup(cred.subject); !lu.is_ok()) {
          endpoint_->respond_error(caller, call_id, lu.status().code(),
                                   lu.status().message());
          return;
        }
        const std::uint64_t handshake_id = next_handshake_++;
        const std::uint64_t challenge =
            0x9e3779b97f4a7c15ULL * handshake_id ^ 0x5bf03635ULL;
        pending_[handshake_id] = PendingHandshake{cred.subject, challenge};
        util::Writer w;
        w.reserve(18);
        identity_.encode(w);
        w.varint(handshake_id);
        w.u64(challenge);
        endpoint_->respond(caller, call_id, w.take());
      });
}

void ServerContext::handle_final(net::NodeId caller, std::uint64_t call_id,
                                 util::Reader& args) {
  const std::uint64_t handshake_id = args.varint();
  const std::uint64_t response = args.u64();
  if (!args.ok()) {
    endpoint_->respond_error(caller, call_id, util::ErrorCode::kInvalidArgument,
                             "malformed FINAL");
    return;
  }
  endpoint_->engine().schedule_after(
      costs_.server_issue, [this, caller, call_id, handshake_id, response] {
        auto it = pending_.find(handshake_id);
        if (it == pending_.end()) {
          endpoint_->respond_error(caller, call_id,
                                   util::ErrorCode::kPermissionDenied,
                                   "unknown handshake");
          return;
        }
        const PendingHandshake hs = it->second;
        pending_.erase(it);
        if (response != challenge_response(hs.challenge, hs.subject)) {
          endpoint_->respond_error(caller, call_id,
                                   util::ErrorCode::kPermissionDenied,
                                   "challenge response mismatch");
          return;
        }
        auto local = gridmap_->lookup(hs.subject);
        if (!local.is_ok()) {
          endpoint_->respond_error(caller, call_id, local.status().code(),
                                   local.status().message());
          return;
        }
        Session session;
        session.token = next_token_++;
        session.subject = hs.subject;
        session.local_user = local.take();
        session.expires = endpoint_->engine().now() + sim::kHour;
        sessions_[session.token] = session;
        util::Writer w;
        w.reserve(22 + session.local_user.size());
        w.u64(session.token);
        w.str(session.local_user);
        w.i64(session.expires);
        endpoint_->respond(caller, call_id, w.take());
      });
}

util::Result<Session> ServerContext::validate(std::uint64_t token) const {
  auto it = sessions_.find(token);
  if (it == sessions_.end()) {
    return util::Status(util::ErrorCode::kPermissionDenied,
                        "unknown session token");
  }
  if (it->second.expires < endpoint_->engine().now()) {
    return util::Status(util::ErrorCode::kPermissionDenied,
                        "session expired");
  }
  return it->second;
}

ClientContext::ClientContext(net::Endpoint& endpoint,
                             const CertificateAuthority& ca,
                             Credential identity, CostModel costs)
    : endpoint_(&endpoint),
      ca_(&ca),
      identity_(std::move(identity)),
      costs_(costs) {}

void ClientContext::authenticate(net::NodeId server, sim::Time timeout,
                                 DoneFn on_done) {
  // State shared across the handshake continuations.
  struct Flow {
    net::Endpoint* endpoint;
    const CertificateAuthority* ca;
    Credential identity;
    CostModel costs;
    net::NodeId server;
    sim::Time timeout;
    DoneFn on_done;
  };
  auto flow = std::make_shared<Flow>(Flow{endpoint_, ca_, identity_, costs_,
                                          server, timeout,
                                          std::move(on_done)});
  // Phase 1: client signing cost, then INIT.
  flow->endpoint->engine().schedule_after(flow->costs.client_sign, [flow] {
    util::Writer w;
    flow->identity.encode(w);
    flow->endpoint->call(
        flow->server, kMethodInit, w.take(), flow->timeout,
        [flow](const util::Status& status, util::Reader& reply) {
          if (!status.is_ok()) {
            flow->on_done(status);
            return;
          }
          Credential server_cred = Credential::decode(reply);
          const std::uint64_t handshake_id = reply.varint();
          const std::uint64_t challenge = reply.u64();
          if (!reply.ok()) {
            flow->on_done(util::Status(util::ErrorCode::kInternal,
                                       "malformed INIT reply"));
            return;
          }
          // Phase 2: verify the server's identity (client CPU), then FINAL.
          flow->endpoint->engine().schedule_after(
              flow->costs.client_verify,
              [flow, server_cred = std::move(server_cred), handshake_id,
               challenge] {
                const sim::Time now = flow->endpoint->engine().now();
                if (auto st = flow->ca->verify(server_cred, now);
                    !st.is_ok()) {
                  flow->on_done(util::Status(
                      st.code(), "server identity rejected: " + st.message()));
                  return;
                }
                util::Writer w2;
                w2.varint(handshake_id);
                w2.u64(challenge_response(challenge, flow->identity.subject));
                flow->endpoint->call(
                    flow->server, kMethodFinal, w2.take(), flow->timeout,
                    [flow](const util::Status& status2, util::Reader& reply2) {
                      if (!status2.is_ok()) {
                        flow->on_done(status2);
                        return;
                      }
                      Session session;
                      session.token = reply2.u64();
                      const std::string_view lu = reply2.str_view();
                      session.local_user.assign(lu.begin(), lu.end());
                      session.expires = reply2.i64();
                      session.subject = flow->identity.subject;
                      if (!reply2.ok()) {
                        flow->on_done(util::Status(util::ErrorCode::kInternal,
                                                   "malformed FINAL reply"));
                        return;
                      }
                      flow->on_done(std::move(session));
                    });
              });
        });
  });
}

}  // namespace grid::gsi
