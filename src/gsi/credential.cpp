#include "gsi/credential.hpp"

namespace grid::gsi {
namespace {

std::uint64_t fnv1a(std::uint64_t h, std::string_view s) {
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

void Credential::encode(util::Writer& w) const {
  w.reserve(26 + subject.size() + issuer.size());
  w.str(subject);
  w.str(issuer);
  w.i64(not_after);
  w.u64(signature);
}

Credential Credential::decode(util::Reader& r) {
  Credential c;
  const std::string_view subject = r.str_view();
  c.subject.assign(subject.begin(), subject.end());
  const std::string_view issuer = r.str_view();
  c.issuer.assign(issuer.begin(), issuer.end());
  c.not_after = r.i64();
  c.signature = r.u64();
  return c;
}

CertificateAuthority::CertificateAuthority(std::string name,
                                           std::uint64_t secret)
    : name_(std::move(name)), secret_(secret) {}

std::uint64_t CertificateAuthority::digest(const Credential& cred) const {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ secret_;
  h = fnv1a(h, cred.subject);
  h = fnv1a(h, cred.issuer);
  h = fnv1a(h, static_cast<std::uint64_t>(cred.not_after));
  return h;
}

Credential CertificateAuthority::issue(std::string subject,
                                       sim::Time not_after) const {
  Credential c;
  c.subject = std::move(subject);
  c.issuer = name_;
  c.not_after = not_after;
  c.signature = digest(c);
  return c;
}

util::Status CertificateAuthority::verify(const Credential& cred,
                                          sim::Time now) const {
  if (cred.issuer != name_) {
    return {util::ErrorCode::kPermissionDenied,
            "credential issued by unknown CA '" + cred.issuer + "'"};
  }
  if (cred.signature != digest(cred)) {
    return {util::ErrorCode::kPermissionDenied,
            "credential signature invalid for '" + cred.subject + "'"};
  }
  if (cred.not_after < now) {
    return {util::ErrorCode::kPermissionDenied,
            "credential expired for '" + cred.subject + "'"};
  }
  if (revoked_.contains(cred.subject)) {
    return {util::ErrorCode::kPermissionDenied,
            "credential revoked for '" + cred.subject + "'"};
  }
  return util::Status::ok();
}

void CertificateAuthority::revoke(std::string_view subject) {
  revoked_.insert(std::string(subject));
}

void GridMap::add(std::string subject, std::string local_user) {
  map_[std::move(subject)] = std::move(local_user);
}

void GridMap::remove(std::string_view subject) {
  map_.erase(std::string(subject));
}

util::Result<std::string> GridMap::lookup(std::string_view subject) const {
  auto it = map_.find(std::string(subject));
  if (it == map_.end()) {
    return util::Status(util::ErrorCode::kPermissionDenied,
                        "subject '" + std::string(subject) +
                            "' not in gridmap");
  }
  return it->second;
}

}  // namespace grid::gsi
