// Simulated Grid Security Infrastructure credentials.
//
// The paper's Figure 3 attributes ~0.5 s of every GRAM request to GSI
// mutual authentication.  We reproduce the *structure* (CA-issued identity
// credentials, mutual verification, gridmap authorization) and the *cost*
// (configurable CPU time per operation), with hash-based stand-in
// signatures — cryptographic strength is irrelevant to the experiments
// (DESIGN.md §1).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "simkit/codec.hpp"
#include "simkit/status.hpp"
#include "simkit/time.hpp"

namespace grid::gsi {

/// An identity credential: subject certified by an issuer until expiry.
struct Credential {
  std::string subject;       // e.g. "/O=Grid/CN=alice"
  std::string issuer;        // CA name
  sim::Time not_after = 0;   // expiry (virtual time)
  std::uint64_t signature = 0;

  void encode(util::Writer& w) const;
  static Credential decode(util::Reader& r);

  bool operator==(const Credential&) const = default;
};

/// Issues and verifies credentials.  The "private key" is a secret mixed
/// into a 64-bit FNV-style digest.
class CertificateAuthority {
 public:
  CertificateAuthority(std::string name, std::uint64_t secret);

  const std::string& name() const { return name_; }

  /// Issues a credential for `subject`, valid until `not_after`.
  Credential issue(std::string subject, sim::Time not_after) const;

  /// Verifies issuer, signature, and expiry against `now`.
  util::Status verify(const Credential& cred, sim::Time now) const;

  /// Revokes a subject; subsequent verification fails.
  void revoke(std::string_view subject);

 private:
  std::uint64_t digest(const Credential& cred) const;

  std::string name_;
  std::uint64_t secret_;
  std::unordered_set<std::string> revoked_;
};

/// Maps grid subjects to local accounts (the Globus "gridmap" file).
/// Authorization fails for unmapped subjects even when authentication
/// succeeds.
class GridMap {
 public:
  void add(std::string subject, std::string local_user);
  void remove(std::string_view subject);

  /// The local account for a subject, or an error if unmapped.
  util::Result<std::string> lookup(std::string_view subject) const;

 private:
  std::unordered_map<std::string, std::string> map_;
};

}  // namespace grid::gsi
