// Grid information service over the network (the MDS role in the paper's
// resource management architecture [6]).
//
// LoadInformationService (sched/infoservice.hpp) models publication and
// staleness locally; GisServer exports those published snapshots over the
// simulated network so that remote co-allocation agents and brokers pay
// realistic query latency, and GisClient is their access library.
// Queries return the *published* (possibly stale) snapshot, never a live
// view — exactly the §2.2 information model.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/rpc.hpp"
#include "sched/infoservice.hpp"

namespace grid::info {

/// RPC method ids (0x600 block reserved for the information service).
enum Method : std::uint32_t {
  kMethodQuery = 0x601,      // contact -> snapshot
  kMethodListContacts = 0x602,
};

void encode_snapshot(util::Writer& w, const sched::QueueSnapshot& snap);
sched::QueueSnapshot decode_snapshot(util::Reader& r);

class GisServer {
 public:
  /// `service` must outlive the server; `query_cost` models directory
  /// lookup time per request.
  GisServer(net::Network& network, sched::LoadInformationService& service,
            sim::Time query_cost = 5 * sim::kMillisecond);

  net::NodeId contact() const { return endpoint_.id(); }
  std::uint64_t queries_served() const { return served_; }

  /// Contacts the server will answer for (mirrors the service registry).
  void set_contacts(std::vector<std::string> contacts);

 private:
  void handle_query(net::NodeId caller, std::uint64_t call_id,
                    util::Reader& args);
  void handle_list(net::NodeId caller, std::uint64_t call_id,
                   util::Reader& args);

  net::Endpoint endpoint_;
  sched::LoadInformationService* service_;
  sim::Time query_cost_;
  std::uint64_t served_ = 0;
  std::vector<std::string> contacts_;
};

class GisClient {
 public:
  GisClient(net::Endpoint& endpoint, net::NodeId server);

  using SnapshotFn =
      std::function<void(util::Result<sched::QueueSnapshot>)>;
  using ContactsFn =
      std::function<void(util::Result<std::vector<std::string>>)>;

  /// Fetches the published snapshot for one resource.
  void query(const std::string& contact, sim::Time timeout,
             SnapshotFn on_done);

  /// Lists the contacts the directory knows about.
  void list_contacts(sim::Time timeout, ContactsFn on_done);

  /// Fetches snapshots for several resources; `on_done` fires once with
  /// one result per contact (same order).  Queries run concurrently.
  void query_many(std::vector<std::string> contacts, sim::Time timeout,
                  std::function<void(
                      std::vector<util::Result<sched::QueueSnapshot>>)>
                      on_done);

 private:
  net::Endpoint* endpoint_;
  net::NodeId server_;
};

}  // namespace grid::info
