// Grid information service over the network (the MDS role in the paper's
// resource management architecture [6]).
//
// LoadInformationService (sched/infoservice.hpp) models publication and
// staleness locally; GisServer exports those published snapshots over the
// simulated network so that remote co-allocation agents and brokers pay
// realistic query latency, and GisClient is their access library.
// Queries return the *published* (possibly stale) snapshot, never a live
// view — exactly the §2.2 information model.
//
// Two server-side properties keep the query path off the O(queue-depth)
// cliff at scale:
//   - summary-first: kMethodQuerySummary serves the aggregate-only
//     QueueSummary (fixed-size reply), which is all the broker/predictor
//     stack needs; the full queued-job list stays available on demand via
//     kMethodQuery;
//   - reply caching: full-snapshot replies are encoded once per published
//     version and fanned out as ref-counted payload shares, so repeated
//     queries between publish rounds skip re-serializing the queue.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/rpc.hpp"
#include "sched/infoservice.hpp"

namespace grid::info {

/// RPC method ids (0x600 block reserved for the information service).
enum Method : std::uint32_t {
  kMethodQuery = 0x601,         // contact -> full snapshot
  kMethodListContacts = 0x602,
  kMethodQuerySummary = 0x603,  // contact -> aggregate summary
};

void encode_snapshot(util::Writer& w, const sched::QueueSnapshot& snap);
sched::QueueSnapshot decode_snapshot(util::Reader& r);
void encode_summary(util::Writer& w, const sched::QueueSummary& summary);
sched::QueueSummary decode_summary(util::Reader& r);

class GisServer {
 public:
  struct CacheStats {
    std::uint64_t hits = 0;    // reply served as a shared pre-encoded frame
    std::uint64_t misses = 0;  // reply encoded from the published snapshot
  };

  /// `service` must outlive the server; `query_cost` models directory
  /// lookup time per request.
  GisServer(net::Network& network, sched::LoadInformationService& service,
            sim::Time query_cost = 5 * sim::kMillisecond);

  net::NodeId contact() const { return endpoint_.id(); }
  std::uint64_t queries_served() const { return served_; }

  /// Contacts the server will answer for (mirrors the service registry).
  void set_contacts(std::vector<std::string> contacts);

  /// Reply-payload cache switch (benchmarks measure both sides of it).
  void set_payload_cache(bool enabled) { cache_enabled_ = enabled; }
  const CacheStats& cache_stats() const { return cache_stats_; }

 private:
  struct CachedReply {
    std::uint64_t version = 0;  // 0 = empty slot
    sim::Payload frame;
  };

  void handle_query(net::NodeId caller, std::uint64_t call_id,
                    util::Reader& args);
  void handle_query_summary(net::NodeId caller, std::uint64_t call_id,
                            util::Reader& args);
  void handle_list(net::NodeId caller, std::uint64_t call_id,
                   util::Reader& args);
  void serve_query(net::NodeId caller, std::uint64_t call_id,
                   sched::LoadInformationService::ContactId id);

  net::Endpoint endpoint_;
  sched::LoadInformationService* service_;
  sim::Time query_cost_;
  std::uint64_t served_ = 0;
  std::vector<std::string> contacts_;
  bool cache_enabled_ = true;
  std::vector<CachedReply> cache_;  // indexed by ContactId - 1
  CacheStats cache_stats_;
};

class GisClient {
 public:
  GisClient(net::Endpoint& endpoint, net::NodeId server);

  using SnapshotFn =
      std::function<void(util::Result<sched::QueueSnapshot>)>;
  using SummaryFn = std::function<void(util::Result<sched::QueueSummary>)>;
  using ContactsFn =
      std::function<void(util::Result<std::vector<std::string>>)>;

  /// Fetches the published snapshot for one resource.
  void query(const std::string& contact, sim::Time timeout,
             SnapshotFn on_done);

  /// Fetches the aggregate summary for one resource (fixed-size reply).
  void query_summary(const std::string& contact, sim::Time timeout,
                     SummaryFn on_done);

  /// Lists the contacts the directory knows about.
  void list_contacts(sim::Time timeout, ContactsFn on_done);

  /// Fetches snapshots for several resources; `on_done` fires once with
  /// one result per contact (same order).  Queries run concurrently.
  void query_many(std::vector<std::string> contacts, sim::Time timeout,
                  std::function<void(
                      std::vector<util::Result<sched::QueueSnapshot>>)>
                      on_done);

  /// Summary-first fan-out: like query_many, but each reply is the O(1)
  /// aggregate view.  This is the broker's default at scale.
  void query_many_summaries(
      std::vector<std::string> contacts, sim::Time timeout,
      std::function<void(std::vector<util::Result<sched::QueueSummary>>)>
          on_done);

 private:
  net::Endpoint* endpoint_;
  net::NodeId server_;
};

}  // namespace grid::info
