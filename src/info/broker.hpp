// Resource broker: forecast-guided resource selection (paper §2.2, §3.1).
//
// "applications (or resource brokers acting on their behalf) that require
// collections of resources" — the broker is the agent-side consumer of the
// information service: it queries published queue snapshots for a set of
// candidate resources, ranks them with a wait-time predictor, and builds
// the subjob requests for the best candidates, which the caller then feeds
// to a co-allocator.  §2.2's over-allocation strategy ("attempt to
// allocate more resources than it really needs") is supported by selecting
// more placements than required and marking the surplus interactive.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "info/gis.hpp"
#include "rsl/attributes.hpp"
#include "sched/predict.hpp"

namespace grid::info {

class ResourceBroker {
 public:
  /// `client` and `predictor` must outlive the broker.
  ResourceBroker(GisClient& client, const sched::WaitPredictor& predictor)
      : client_(&client), predictor_(&predictor) {}

  struct Placement {
    std::string contact;
    sim::Time predicted_wait = 0;
    std::int32_t free_processors = 0;
  };

  using SelectFn =
      std::function<void(util::Result<std::vector<Placement>>)>;

  /// Ranks `candidates` for a subjob of `count` processors and returns the
  /// best `k` (ascending predicted wait).  Candidates whose machine is too
  /// small, or whose snapshot cannot be fetched, are skipped; fewer than
  /// `k` usable candidates is an error.
  void select(std::vector<std::string> candidates, std::size_t k,
              std::int32_t count, sim::Time timeout, SelectFn on_done);

  /// Same ranking via aggregate-only summary queries: replies are O(1)
  /// regardless of queue depth, and both stock predictors produce results
  /// identical to select().  This is the path sustained co-allocation
  /// traffic uses at scale.
  void select_by_summary(std::vector<std::string> candidates, std::size_t k,
                         std::int32_t count, sim::Time timeout,
                         SelectFn on_done);

  /// Builds one subjob request per placement.
  static std::vector<rsl::JobRequest> build_requests(
      const std::vector<Placement>& placements, std::int32_t count,
      const std::string& executable,
      rsl::SubjobStartType start_type = rsl::SubjobStartType::kInteractive);

 private:
  GisClient* client_;
  const sched::WaitPredictor* predictor_;
};

}  // namespace grid::info
