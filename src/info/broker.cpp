#include "info/broker.hpp"

#include <algorithm>

namespace grid::info {

void ResourceBroker::select(std::vector<std::string> candidates,
                            std::size_t k, std::int32_t count,
                            sim::Time timeout, SelectFn on_done) {
  if (k == 0 || candidates.empty()) {
    on_done(util::Status(util::ErrorCode::kInvalidArgument,
                         "no candidates or zero selection size"));
    return;
  }
  auto names = candidates;  // keep order for result mapping
  client_->query_many(
      std::move(candidates), timeout,
      [this, names = std::move(names), k, count,
       on_done = std::move(on_done)](
          std::vector<util::Result<sched::QueueSnapshot>> snaps) {
        std::vector<Placement> usable;
        for (std::size_t i = 0; i < snaps.size(); ++i) {
          if (!snaps[i].is_ok()) continue;  // unreachable or unknown
          const sched::QueueSnapshot& snap = snaps[i].value();
          if (snap.total_processors < count) continue;  // machine too small
          Placement p;
          p.contact = names[i];
          p.predicted_wait = predictor_->predict(snap, count);
          p.free_processors = snap.total_processors - snap.busy_processors;
          usable.push_back(std::move(p));
        }
        if (usable.size() < k) {
          on_done(util::Status(
              util::ErrorCode::kResourceExhausted,
              "only " + std::to_string(usable.size()) + " of " +
                  std::to_string(k) + " required candidates are usable"));
          return;
        }
        std::stable_sort(usable.begin(), usable.end(),
                         [](const Placement& a, const Placement& b) {
                           return a.predicted_wait < b.predicted_wait;
                         });
        usable.resize(k);
        on_done(std::move(usable));
      });
}

void ResourceBroker::select_by_summary(std::vector<std::string> candidates,
                                       std::size_t k, std::int32_t count,
                                       sim::Time timeout, SelectFn on_done) {
  if (k == 0 || candidates.empty()) {
    on_done(util::Status(util::ErrorCode::kInvalidArgument,
                         "no candidates or zero selection size"));
    return;
  }
  auto names = candidates;  // keep order for result mapping
  client_->query_many_summaries(
      std::move(candidates), timeout,
      [this, names = std::move(names), k, count,
       on_done = std::move(on_done)](
          std::vector<util::Result<sched::QueueSummary>> summaries) {
        std::vector<Placement> usable;
        for (std::size_t i = 0; i < summaries.size(); ++i) {
          if (!summaries[i].is_ok()) continue;  // unreachable or unknown
          const sched::QueueSummary& s = summaries[i].value();
          if (s.total_processors < count) continue;  // machine too small
          Placement p;
          p.contact = names[i];
          p.predicted_wait = predictor_->predict(s, count);
          p.free_processors = s.free_processors();
          usable.push_back(std::move(p));
        }
        if (usable.size() < k) {
          on_done(util::Status(
              util::ErrorCode::kResourceExhausted,
              "only " + std::to_string(usable.size()) + " of " +
                  std::to_string(k) + " required candidates are usable"));
          return;
        }
        std::stable_sort(usable.begin(), usable.end(),
                         [](const Placement& a, const Placement& b) {
                           return a.predicted_wait < b.predicted_wait;
                         });
        usable.resize(k);
        on_done(std::move(usable));
      });
}

std::vector<rsl::JobRequest> ResourceBroker::build_requests(
    const std::vector<Placement>& placements, std::int32_t count,
    const std::string& executable, rsl::SubjobStartType start_type) {
  std::vector<rsl::JobRequest> out;
  out.reserve(placements.size());
  for (const Placement& p : placements) {
    rsl::JobRequest j;
    j.resource_manager_contact = p.contact;
    j.executable = executable;
    j.count = count;
    j.start_type = start_type;
    out.push_back(std::move(j));
  }
  return out;
}

}  // namespace grid::info
