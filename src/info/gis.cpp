#include "info/gis.hpp"

#include <memory>

namespace grid::info {

void encode_snapshot(util::Writer& w, const sched::QueueSnapshot& snap) {
  w.i64(snap.taken_at);
  w.i32(snap.total_processors);
  w.i32(snap.busy_processors);
  w.varint(snap.queued.size());
  for (const sched::QueuedJobInfo& j : snap.queued) {
    w.u64(j.id);
    w.i32(j.count);
    w.i64(j.estimated_runtime);
    w.i64(j.submitted_at);
  }
}

sched::QueueSnapshot decode_snapshot(util::Reader& r) {
  sched::QueueSnapshot snap;
  snap.taken_at = r.i64();
  snap.total_processors = r.i32();
  snap.busy_processors = r.i32();
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    sched::QueuedJobInfo j;
    j.id = r.u64();
    j.count = r.i32();
    j.estimated_runtime = r.i64();
    j.submitted_at = r.i64();
    snap.queued.push_back(j);
  }
  return snap;
}

void encode_summary(util::Writer& w, const sched::QueueSummary& summary) {
  w.i64(summary.taken_at);
  w.i32(summary.total_processors);
  w.i32(summary.busy_processors);
  w.u32(summary.queue_length);
  w.i64(summary.queued_work);
}

sched::QueueSummary decode_summary(util::Reader& r) {
  sched::QueueSummary s;
  s.taken_at = r.i64();
  s.total_processors = r.i32();
  s.busy_processors = r.i32();
  s.queue_length = r.u32();
  s.queued_work = r.i64();
  return s;
}

GisServer::GisServer(net::Network& network,
                     sched::LoadInformationService& service,
                     sim::Time query_cost)
    : endpoint_(network, "gis"), service_(&service), query_cost_(query_cost) {
  endpoint_.register_method(
      kMethodQuery,
      [this](net::NodeId caller, std::uint64_t call_id, util::Reader& args) {
        handle_query(caller, call_id, args);
      });
  endpoint_.register_method(
      kMethodListContacts,
      [this](net::NodeId caller, std::uint64_t call_id, util::Reader& args) {
        handle_list(caller, call_id, args);
      });
  endpoint_.register_method(
      kMethodQuerySummary,
      [this](net::NodeId caller, std::uint64_t call_id, util::Reader& args) {
        handle_query_summary(caller, call_id, args);
      });
}

void GisServer::set_contacts(std::vector<std::string> contacts) {
  contacts_ = std::move(contacts);
}

void GisServer::handle_query(net::NodeId caller, std::uint64_t call_id,
                             util::Reader& args) {
  std::string contact = args.str();
  if (!args.ok()) {
    endpoint_.respond_error(caller, call_id, util::ErrorCode::kInvalidArgument,
                            "malformed query");
    return;
  }
  // Resolve the contact to its interned id at arrival; the deferred service
  // body then runs string-free (registration changes while the query is in
  // flight are re-checked against the id at service time).
  const auto id = service_->resolve(contact);
  endpoint_.engine().schedule_after(query_cost_, [this, caller, call_id, id] {
    serve_query(caller, call_id, id);
  });
}

void GisServer::serve_query(net::NodeId caller, std::uint64_t call_id,
                            sched::LoadInformationService::ContactId id) {
  ++served_;
  const std::uint64_t version = service_->published_version(id);
  if (cache_enabled_ && version != 0 && id <= cache_.size() &&
      cache_[id - 1].version == version) {
    ++cache_stats_.hits;
    endpoint_.respond(caller, call_id, cache_[id - 1].frame.share());
    return;
  }
  auto snap = service_->snapshot_ref(id);
  if (!snap.is_ok()) {
    endpoint_.respond_error(caller, call_id, snap.status().code(),
                            snap.status().message());
    return;
  }
  ++cache_stats_.misses;
  util::Writer w;
  encode_snapshot(w, *snap.value());
  sim::Payload reply = w.take();
  if (cache_enabled_ && version != 0) {
    if (cache_.size() < id) cache_.resize(id);
    cache_[id - 1] = CachedReply{version, reply.share()};
  }
  endpoint_.respond(caller, call_id, std::move(reply));
}

void GisServer::handle_query_summary(net::NodeId caller, std::uint64_t call_id,
                                     util::Reader& args) {
  std::string contact = args.str();
  if (!args.ok()) {
    endpoint_.respond_error(caller, call_id, util::ErrorCode::kInvalidArgument,
                            "malformed query");
    return;
  }
  const auto id = service_->resolve(contact);
  endpoint_.engine().schedule_after(query_cost_, [this, caller, call_id, id] {
    ++served_;
    auto summary = service_->summary(id);
    if (!summary.is_ok()) {
      endpoint_.respond_error(caller, call_id, summary.status().code(),
                              summary.status().message());
      return;
    }
    util::Writer w;
    encode_summary(w, summary.value());
    endpoint_.respond(caller, call_id, w.take());
  });
}

void GisServer::handle_list(net::NodeId caller, std::uint64_t call_id,
                            util::Reader&) {
  endpoint_.engine().schedule_after(query_cost_, [this, caller, call_id] {
    ++served_;
    util::Writer w;
    w.varint(contacts_.size());
    for (const std::string& c : contacts_) w.str(c);
    endpoint_.respond(caller, call_id, w.take());
  });
}

GisClient::GisClient(net::Endpoint& endpoint, net::NodeId server)
    : endpoint_(&endpoint), server_(server) {}

void GisClient::query(const std::string& contact, sim::Time timeout,
                      SnapshotFn on_done) {
  util::Writer w;
  w.str(contact);
  endpoint_->call(server_, kMethodQuery, w.take(), timeout,
                  [on_done = std::move(on_done)](const util::Status& status,
                                                 util::Reader& reply) {
                    if (!status.is_ok()) {
                      on_done(status);
                      return;
                    }
                    sched::QueueSnapshot snap = decode_snapshot(reply);
                    if (!reply.ok()) {
                      on_done(util::Status(util::ErrorCode::kInternal,
                                           "malformed snapshot"));
                      return;
                    }
                    on_done(std::move(snap));
                  });
}

void GisClient::query_summary(const std::string& contact, sim::Time timeout,
                              SummaryFn on_done) {
  util::Writer w;
  w.str(contact);
  endpoint_->call(server_, kMethodQuerySummary, w.take(), timeout,
                  [on_done = std::move(on_done)](const util::Status& status,
                                                 util::Reader& reply) {
                    if (!status.is_ok()) {
                      on_done(status);
                      return;
                    }
                    sched::QueueSummary summary = decode_summary(reply);
                    if (!reply.ok()) {
                      on_done(util::Status(util::ErrorCode::kInternal,
                                           "malformed summary"));
                      return;
                    }
                    on_done(summary);
                  });
}

void GisClient::list_contacts(sim::Time timeout, ContactsFn on_done) {
  endpoint_->call(server_, kMethodListContacts, {}, timeout,
                  [on_done = std::move(on_done)](const util::Status& status,
                                                 util::Reader& reply) {
                    if (!status.is_ok()) {
                      on_done(status);
                      return;
                    }
                    const std::uint64_t n = reply.varint();
                    std::vector<std::string> contacts;
                    contacts.reserve(n);
                    for (std::uint64_t i = 0; i < n && reply.ok(); ++i) {
                      contacts.push_back(reply.str());
                    }
                    if (!reply.ok()) {
                      on_done(util::Status(util::ErrorCode::kInternal,
                                           "malformed contact list"));
                      return;
                    }
                    on_done(std::move(contacts));
                  });
}

void GisClient::query_many(
    std::vector<std::string> contacts, sim::Time timeout,
    std::function<void(std::vector<util::Result<sched::QueueSnapshot>>)>
        on_done) {
  struct Gather {
    std::vector<util::Result<sched::QueueSnapshot>> results;
    std::size_t pending = 0;
    std::function<void(std::vector<util::Result<sched::QueueSnapshot>>)>
        on_done;
  };
  auto gather = std::make_shared<Gather>();
  gather->pending = contacts.size();
  gather->on_done = std::move(on_done);
  gather->results.reserve(contacts.size());
  for (std::size_t i = 0; i < contacts.size(); ++i) {
    gather->results.emplace_back(
        util::Status(util::ErrorCode::kInternal, "pending"));
  }
  if (contacts.empty()) {
    gather->on_done({});
    return;
  }
  for (std::size_t i = 0; i < contacts.size(); ++i) {
    query(contacts[i], timeout,
          [gather, i](util::Result<sched::QueueSnapshot> result) {
            gather->results[i] = std::move(result);
            if (--gather->pending == 0) {
              gather->on_done(std::move(gather->results));
            }
          });
  }
}

void GisClient::query_many_summaries(
    std::vector<std::string> contacts, sim::Time timeout,
    std::function<void(std::vector<util::Result<sched::QueueSummary>>)>
        on_done) {
  struct Gather {
    std::vector<util::Result<sched::QueueSummary>> results;
    std::size_t pending = 0;
    std::function<void(std::vector<util::Result<sched::QueueSummary>>)>
        on_done;
  };
  auto gather = std::make_shared<Gather>();
  gather->pending = contacts.size();
  gather->on_done = std::move(on_done);
  gather->results.reserve(contacts.size());
  for (std::size_t i = 0; i < contacts.size(); ++i) {
    gather->results.emplace_back(
        util::Status(util::ErrorCode::kInternal, "pending"));
  }
  if (contacts.empty()) {
    gather->on_done({});
    return;
  }
  for (std::size_t i = 0; i < contacts.size(); ++i) {
    query_summary(contacts[i], timeout,
                  [gather, i](util::Result<sched::QueueSummary> result) {
                    gather->results[i] = std::move(result);
                    if (--gather->pending == 0) {
                      gather->on_done(std::move(gather->results));
                    }
                  });
  }
}

}  // namespace grid::info
