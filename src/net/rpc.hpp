// Request/response and notification framing over the simulated network.
//
// Every protocol component (GRAM gatekeeper, NIS, GSI handshakes, DUROC
// barrier) is an Endpoint.  Calls carry an id, are matched to responses,
// and fail with kTimeout when the peer is crashed, partitioned, or slow —
// giving the co-allocation layer the realistic failure surface it needs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "net/network.hpp"
#include "simkit/codec.hpp"
#include "simkit/engine.hpp"
#include "simkit/status.hpp"

namespace grid::net {

/// Frame types used in Message::kind.
enum Frame : std::uint32_t {
  kFrameRequest = 1,
  kFrameResponse = 2,
  kFrameNotify = 3,
};

/// A bidirectional RPC endpoint attached to the network.
///
/// Server side: register_method() handlers receive (caller, call_id, args)
/// and reply later via respond()/respond_error() — responses may be delayed
/// by scheduled events to model server processing time.
/// Client side: call() with a timeout; exactly one of the response callback
/// invocations happens (response, error response, or timeout).
class Endpoint : public Node {
 public:
  Endpoint(Network& network, std::string name);
  ~Endpoint() override;

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  NodeId id() const { return id_; }
  Network& network() { return *network_; }
  sim::Engine& engine() { return network_->engine(); }
  const std::string& name() const { return name_; }
  bool crashed() const { return crashed_; }

  // ---- client side -------------------------------------------------------

  using ResponseFn =
      std::function<void(const util::Status& status, util::Reader& result)>;

  /// Issues a call.  `timeout` <= 0 means no timeout.  Returns a call id
  /// usable with cancel_call().  The callback fires exactly once unless the
  /// call is cancelled or this endpoint crashes first.
  std::uint64_t call(NodeId dst, std::uint32_t method, util::Bytes args,
                     sim::Time timeout, ResponseFn on_response);

  /// Abandons a pending call; its callback will not fire.  Returns true if
  /// the call was still pending.
  bool cancel_call(std::uint64_t call_id);

  std::size_t pending_calls() const { return pending_.size(); }

  // ---- server side -------------------------------------------------------

  using MethodHandler = std::function<void(NodeId caller, std::uint64_t call_id,
                                           util::Reader& args)>;

  void register_method(std::uint32_t method, MethodHandler handler);

  void respond(NodeId caller, std::uint64_t call_id, util::Bytes result);
  void respond_error(NodeId caller, std::uint64_t call_id, util::ErrorCode code,
                     std::string message);

  // ---- one-way notifications (used for GRAM state callbacks etc.) --------

  using NotifyHandler = std::function<void(NodeId src, util::Reader& payload)>;

  void notify(NodeId dst, std::uint32_t kind, util::Bytes payload);
  void register_notify(std::uint32_t kind, NotifyHandler handler);

  // ---- Node --------------------------------------------------------------

  void handle_message(const Message& msg) override;
  void on_crash() override;

  /// Clears the crashed flag after the host is restored (reboot).  Pending
  /// state from before the crash is already gone.
  void restart() { crashed_ = false; }

  /// Optional hook invoked when this endpoint's host is crashed.
  std::function<void()> crash_hook;

 private:
  struct PendingCall {
    ResponseFn on_response;
    sim::EventId timeout_event;
  };

  void fail_call(std::uint64_t call_id, util::ErrorCode code,
                 const std::string& message);

  Network* network_;
  NodeId id_;
  std::string name_;
  bool crashed_ = false;
  std::uint64_t next_call_id_ = 1;
  std::unordered_map<std::uint64_t, PendingCall> pending_;
  std::unordered_map<std::uint32_t, MethodHandler> methods_;
  std::unordered_map<std::uint32_t, NotifyHandler> notifies_;
};

}  // namespace grid::net
