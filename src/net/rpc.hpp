// Request/response and notification framing over the simulated network.
//
// Every protocol component (GRAM gatekeeper, NIS, GSI handshakes, DUROC
// barrier) is an Endpoint.  Calls carry an id, are matched to responses,
// and fail with kTimeout when the peer is crashed, partitioned, or slow —
// giving the co-allocation layer the realistic failure surface it needs.
//
// Hot-path memory model: call/response args travel in pooled payload
// buffers (simkit/bufpool.hpp), in-flight call state lives in slab tables
// recycled through free lists (simkit/idmap.hpp), and response callbacks
// are InplaceFunction so typical captures (a pointer, a ticket, a small
// std::function to forward to) stay inline.  A steady-state round-trip
// therefore touches the heap zero times — bench/micro_net asserts this.
#pragma once

#include <cstdint>
#include <string>

#include "net/network.hpp"
#include "net/retry.hpp"
#include "simkit/codec.hpp"
#include "simkit/engine.hpp"
#include "simkit/idmap.hpp"
#include "simkit/inplace_function.hpp"
#include "simkit/status.hpp"

namespace grid::net {

/// Frame types used in Message::kind.
enum Frame : std::uint32_t {
  kFrameRequest = 1,
  kFrameResponse = 2,
  kFrameNotify = 3,
};

/// A bidirectional RPC endpoint attached to the network.
///
/// Server side: register_method() handlers receive (caller, call_id, args)
/// and reply later via respond()/respond_error() — responses may be delayed
/// by scheduled events to model server processing time.
/// Client side: call() with a timeout; exactly one of the response callback
/// invocations happens (response, error response, or timeout).
class Endpoint : public Node {
 public:
  Endpoint(Network& network, std::string name);
  ~Endpoint() override;

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  NodeId id() const { return id_; }
  Network& network() { return *network_; }
  sim::Engine& engine() { return network_->engine(); }
  const std::string& name() const { return name_; }
  bool crashed() const { return crashed_; }

  // ---- client side -------------------------------------------------------

  /// 48 bytes of inline capture covers every hot response callback in the
  /// tree (a this-pointer plus a forwarded std::function is 40); larger
  /// captures still work, they just box.
  using ResponseFn =
      sim::InplaceFunction<48,
                           void(const util::Status& status,
                                util::Reader& result)>;

  /// Issues a call.  `timeout` <= 0 means no timeout.  Returns a call id
  /// usable with cancel_call().  The callback fires exactly once unless the
  /// call is cancelled or this endpoint crashes first.
  std::uint64_t call(NodeId dst, std::uint32_t method, sim::Payload args,
                     sim::Time timeout, ResponseFn on_response);

  /// Abandons a pending call; its callback will not fire.  Returns true if
  /// the call was still pending.
  bool cancel_call(std::uint64_t call_id);

  /// Issues a call that is transparently re-issued on kTimeout, following
  /// `policy`'s backoff schedule.  ONLY safe for idempotent methods: a
  /// retry after a lost *reply* re-executes the request on the server.
  /// The callback fires exactly once — with the first non-timeout outcome,
  /// or with a single kTimeout error once attempts/deadline are exhausted.
  /// Returns a ticket usable with cancel_retrying_call(); the ticket id
  /// space is shared with plain call ids.  The frozen args buffer is
  /// share()d into each attempt, so retries re-send without re-encoding.
  std::uint64_t retrying_call(NodeId dst, std::uint32_t method,
                              sim::Payload args, const RetryPolicy& policy,
                              ResponseFn on_response);

  /// Abandons a retrying call between or during attempts; its callback
  /// will not fire.  Returns true if the operation was still pending.
  bool cancel_retrying_call(std::uint64_t ticket);

  std::size_t pending_calls() const { return pending_.size(); }
  std::size_t pending_retrying_calls() const { return retrying_.size(); }

  // ---- server side -------------------------------------------------------

  /// Handlers are InplaceFunction, not std::function: dispatch happens per
  /// message, and the registration-time captures in this tree are a `this`
  /// pointer (64 bytes of inline room covers them all; larger captures box
  /// once at registration, never per call).
  using MethodHandler =
      sim::InplaceFunction<64, void(NodeId caller, std::uint64_t call_id,
                                    util::Reader& args)>;

  void register_method(std::uint32_t method, MethodHandler handler);

  void respond(NodeId caller, std::uint64_t call_id, sim::Payload result);
  void respond_error(NodeId caller, std::uint64_t call_id, util::ErrorCode code,
                     std::string message);

  // ---- one-way notifications (used for GRAM state callbacks etc.) --------

  using NotifyHandler =
      sim::InplaceFunction<64, void(NodeId src, util::Reader& payload)>;

  void notify(NodeId dst, std::uint32_t kind, sim::Payload payload);
  void register_notify(std::uint32_t kind, NotifyHandler handler);

  /// Pre-frames a notify payload so fan-out paths (DUROC abort broadcast,
  /// barrier check-in re-send, gridmpi tables) can encode once and send
  /// the SAME buffer to N destinations via notify_frame(frame.share()).
  static sim::Payload encode_notify(std::uint32_t kind,
                                    const sim::Payload& payload);
  void notify_frame(NodeId dst, sim::Payload frame);

  // ---- Node --------------------------------------------------------------

  void handle_message(const Message& msg) override;
  void on_crash() override;

  /// Clears the crashed flag after the host is restored (reboot).  Pending
  /// state from before the crash is already gone.
  void restart() { crashed_ = false; }

  /// Optional hook invoked when this endpoint's host is crashed.
  sim::InplaceFunction<48> crash_hook;

  /// Teardown accounting, written by every ~Endpoint on this thread (see
  /// last_teardown_report()).  Under GRID_CHECKED a teardown that leaks —
  /// a call-table slot that survives the drain, or an inconsistent slab —
  /// aborts; in all builds the report lets tests assert the audit's
  /// numbers directly.
  struct TeardownReport {
    std::uint64_t pending_calls = 0;    // live plain calls found at teardown
    std::uint64_t retrying_calls = 0;   // live retrying tickets found
    std::uint64_t timers_cancelled = 0; // engine events this teardown killed
    std::uint64_t leaked_slots = 0;     // entries surviving the drain (== 0)
  };

  /// The most recent teardown on the calling thread (thread-local, so
  /// TrialPool workers never see a neighbour trial's teardown).
  static const TeardownReport& last_teardown_report();

 private:
  struct PendingCall {
    ResponseFn on_response;
    sim::EventId timeout_event;
  };

  /// One retrying operation: the frozen request, its schedule, and the
  /// currently in-flight attempt (or the backoff timer between attempts).
  struct RetryingCall {
    NodeId dst = kInvalidNode;
    std::uint32_t method = 0;
    sim::Payload args;
    RetrySchedule schedule;
    ResponseFn on_response;
    int attempt = 0;            // attempts issued so far
    sim::Time started_at = 0;   // deadline anchor
    std::uint64_t inner_call = 0;  // pending call id of the live attempt
    sim::EventId backoff_event;    // pending timer between attempts

    RetryingCall(const RetryPolicy& policy, std::uint64_t stream)
        : schedule(policy, stream) {}
  };

  void fail_call(std::uint64_t call_id, util::ErrorCode code,
                 const std::string& message);
  void issue_attempt(std::uint64_t ticket);
  void on_attempt_response(std::uint64_t ticket, const util::Status& status,
                           util::Reader& result);
  /// Cancels timers and live attempts of every retrying call; callbacks
  /// will not fire.  Used by teardown and crash handling.
  void drop_retrying_calls();

  Network* network_;
  NodeId id_;
  std::string name_;
  bool crashed_ = false;
  /// Wire call ids stay a plain monotonic counter (NOT slab slot/
  /// generation encodings): keeping id values — and so their varint
  /// lengths — identical to the pre-slab implementation is part of the
  /// byte-identical-results guarantee for seeded experiments.
  std::uint64_t next_call_id_ = 1;
  sim::IdSlab<PendingCall> pending_;
  sim::IdSlab<RetryingCall> retrying_;
  // Registration tables keyed by method/notify kind.  IdSlab instead of
  // unordered_map: the lookup runs on every delivered frame, and slab
  // storage is deterministic and allocation-free once warm.
  sim::IdSlab<MethodHandler> methods_;
  sim::IdSlab<NotifyHandler> notifies_;
};

}  // namespace grid::net
