#include "net/retry.hpp"

namespace grid::net {
namespace {

/// splitmix64 finalizer: decorrelates the per-call stream id from the
/// policy seed so consecutive stream ids do not produce related streams.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

RetrySchedule::RetrySchedule(const RetryPolicy& policy, std::uint64_t stream)
    : policy_(policy), rng_(policy.jitter_seed ^ mix(stream)) {}

sim::Time RetrySchedule::backoff_before(int attempt) {
  if (attempt < 2) return 0;
  double delay = static_cast<double>(policy_.initial_backoff);
  for (int i = 2; i < attempt; ++i) {
    delay *= policy_.multiplier;
    if (delay >= static_cast<double>(policy_.max_backoff)) break;
  }
  if (delay > static_cast<double>(policy_.max_backoff)) {
    delay = static_cast<double>(policy_.max_backoff);
  }
  if (policy_.jitter > 0.0) {
    delay *= rng_.uniform(1.0 - policy_.jitter, 1.0 + policy_.jitter);
  }
  if (delay < 0.0) delay = 0.0;
  return static_cast<sim::Time>(delay);
}

}  // namespace grid::net
