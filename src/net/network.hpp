// Simulated network: message transport between attached nodes.
//
// This module stands in for the paper's LAN/WAN substrate.  Delivery takes
// latency_model->latency(src, dst, size); messages to crashed nodes or
// across an injected partition are dropped silently — exactly the failure
// surface the co-allocation layer has to survive (paper §2).  Reliability
// semantics (timeouts, retries) belong to the RPC layer above.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "simkit/codec.hpp"
#include "simkit/engine.hpp"
#include "simkit/idmap.hpp"
#include "simkit/rng.hpp"
#include "simkit/status.hpp"

namespace grid::net {

/// Network-wide node address.  0 is never a valid address.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0;

/// A framed message in flight.  `kind` is a frame type owned by the layer
/// above (see rpc.hpp); `payload` is a pooled buffer of codec-encoded
/// bytes.  Move-only: the payload buffer travels sender -> network ->
/// receiver without ever being copied (fan-out paths `share()` it).
struct Message {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint32_t kind = 0;
  sim::Payload payload;
};

/// Implemented by every simulated entity that receives messages.
class Node {
 public:
  virtual ~Node() = default;

  /// Called on message delivery (at the receiving side's virtual time).
  virtual void handle_message(const Message& msg) = 0;

  /// Called when the node's host is crashed via Network::set_node_up(false).
  virtual void on_crash() {}
};

/// Pluggable one-way latency model.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual sim::Time latency(NodeId src, NodeId dst, std::size_t bytes) = 0;
};

/// Constant one-way latency regardless of endpoints and size.
class FixedLatency final : public LatencyModel {
 public:
  explicit FixedLatency(sim::Time one_way) : one_way_(one_way) {}
  sim::Time latency(NodeId, NodeId, std::size_t) override { return one_way_; }

 private:
  sim::Time one_way_;
};

/// Base latency plus uniform jitter in [0, jitter].
class JitterLatency final : public LatencyModel {
 public:
  JitterLatency(sim::Time base, sim::Time jitter, sim::Rng rng)
      : base_(base), jitter_(jitter), rng_(rng) {}
  sim::Time latency(NodeId, NodeId, std::size_t) override {
    return base_ + (jitter_ > 0 ? rng_.uniform_time(0, jitter_) : 0);
  }

 private:
  sim::Time base_;
  sim::Time jitter_;
  sim::Rng rng_;
};

/// Per-pair latency table with a default; pairs are symmetric.
class MatrixLatency final : public LatencyModel {
 public:
  explicit MatrixLatency(sim::Time default_one_way)
      : default_(default_one_way) {}
  void set_pair(NodeId a, NodeId b, sim::Time one_way);
  sim::Time latency(NodeId src, NodeId dst, std::size_t) override;

 private:
  static std::uint64_t key(NodeId a, NodeId b);
  sim::Time default_;
  // pair key -> index into values_.  IdMap instead of unordered_map: the
  // lookup sits on the per-message send path (gridlint: hot-container).
  sim::IdMap pair_index_;
  std::vector<sim::Time> values_;
};

/// Base latency plus a serialization term bytes / bandwidth.
class BandwidthLatency final : public LatencyModel {
 public:
  BandwidthLatency(sim::Time base, double bytes_per_second)
      : base_(base), bps_(bytes_per_second) {}
  sim::Time latency(NodeId, NodeId, std::size_t bytes) override;

 private:
  sim::Time base_;
  double bps_;
};

/// Counters for tests and reporting.
struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_down = 0;       // destination crashed/detached
  std::uint64_t dropped_partition = 0;  // src-dst pair partitioned
  std::uint64_t dropped_random = 0;     // injected loss
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
  // Message-path allocation accounting: how many sent payloads rode a
  // buffer recycled from the pool vs. a fresh heap allocation.  Benches
  // and chaos tests assert budgets against these (steady state should be
  // almost entirely recycled).  Payload-less messages count in neither.
  std::uint64_t payloads_fresh = 0;
  std::uint64_t payloads_recycled = 0;
  // RPC retry layer (Endpoint::retrying_call).
  std::uint64_t rpc_retries = 0;          // re-issued attempts
  std::uint64_t rpc_retry_successes = 0;  // calls that recovered via retry
  std::uint64_t rpc_retry_exhausted = 0;  // calls that ran out of attempts
};

/// The network itself.  Owns addressing, delivery, and failure injection.
class Network {
 public:
  explicit Network(sim::Engine& engine);

  sim::Engine& engine() { return *engine_; }

  /// Attaches a node and returns its address.  `name` is for diagnostics.
  NodeId attach(Node* node, std::string name);

  /// Detaches a node; in-flight messages to it are dropped on arrival.
  void detach(NodeId id);

  /// Replaces the latency model (default: fixed 2 ms one-way, the paper's
  /// client-resource distance in §4.2).
  void set_latency_model(std::unique_ptr<LatencyModel> model);

  /// Sends a message; the payload buffer is moved, never copied.  Returns
  /// InvalidArgument for unknown src, but unknown or crashed destinations
  /// are *not* an error at send time: the message is silently dropped in
  /// flight, as on a real network.
  ///
  /// Determinism contract (ordering of the RNG-consuming steps, relied on
  /// for byte-identical seeded trials — see net_test's coverage):
  ///   1. send-side drop checks run FIRST: a message dropped because the
  ///      source is down or by injected random loss never consults the
  ///      latency model, so dropped sends do not advance a stateful
  ///      model's RNG (JitterLatency) and later deliveries keep their
  ///      timing regardless of earlier losses;
  ///   2. the random-loss check itself consumes one draw from the drop RNG
  ///      per message that reaches it (only when drop_probability > 0);
  ///   3. the latency model is consulted exactly once per message that
  ///      survives the send-side checks — including messages later dropped
  ///      at DELIVERY time (partition, crash epoch, detach), which have
  ///      already consumed their latency draw by design: the partition
  ///      swallows the message in flight, it does not un-send it.
  util::Status send(NodeId src, NodeId dst, std::uint32_t kind,
                    sim::Payload payload);

  /// Crash (up=false) or restore (up=true) a node.  Crashing invokes
  /// Node::on_crash and drops all in-flight messages to and from the node.
  void set_node_up(NodeId id, bool up);
  bool is_up(NodeId id) const;

  /// Blocks (or unblocks) delivery between a pair, both directions.
  void set_partitioned(NodeId a, NodeId b, bool blocked);
  bool is_partitioned(NodeId a, NodeId b) const;

  /// Injects i.i.d. random loss with probability p on every message.
  void set_drop_probability(double p) { drop_prob_ = p; }
  double drop_probability() const { return drop_prob_; }

  /// Reseeds the random-loss stream.  Without this every network draws the
  /// same loss pattern, so seeded trials would all lose the same messages.
  void set_drop_seed(std::uint64_t seed) { drop_rng_ = sim::Rng(seed); }

  /// Adds `extra` one-way latency to every message to or from `node` (a
  /// "slow node" latency spike); 0 clears it.  Applied at send time, so
  /// messages already in flight keep their original delivery time.
  void set_node_extra_delay(NodeId node, sim::Time extra);
  sim::Time node_extra_delay(NodeId node) const;

  const NetworkStats& stats() const { return stats_; }
  /// Mutable counters, for the RPC layer's retry accounting.
  NetworkStats& mutable_stats() { return stats_; }
  const std::string& name(NodeId id) const;
  std::size_t node_count() const { return attached_; }

 private:
  /// Per-node state, indexed directly by NodeId (ids are dense, assigned
  /// sequentially from 1).  Slots are never erased — `attached` flips off
  /// on detach — so address lookups are a bounds check plus an index, and
  /// nothing about node bookkeeping involves hashing or rehash-order.
  struct Slot {
    Node* node = nullptr;
    std::string name;
    bool up = true;
    bool attached = false;
    /// Bumped on every crash: messages in flight across a crash of either
    /// endpoint are dropped even if the node is restored before their
    /// delivery time (the crash cut the wire).
    std::uint64_t epoch = 0;
    /// Injected one-way latency spike ("slow node"); 0 = none.  Survives
    /// detach, matching the old side-table semantics.
    sim::Time extra_delay = 0;
  };

  void deliver(Message msg, std::uint64_t src_epoch, std::uint64_t dst_epoch);
  std::uint64_t epoch_of(NodeId id) const;
  Slot* slot(NodeId id);
  const Slot* slot(NodeId id) const;

  sim::Engine* engine_;
  std::unique_ptr<LatencyModel> latency_;
  sim::Rng drop_rng_;
  double drop_prob_ = 0.0;
  NodeId next_id_ = 1;
  std::size_t attached_ = 0;
  std::vector<Slot> nodes_;  // index = NodeId; slot 0 unused (kInvalidNode)
  // Blocked (a,b) pair keys.  An IdMap used as a set: deterministic across
  // platforms and allocation-free at steady state.
  sim::IdMap partitions_;
  NetworkStats stats_;
};

}  // namespace grid::net
