// Retry policy for idempotent RPC calls.
//
// The network drops messages silently (crashes, partitions, injected
// loss), so every lost request or reply surfaces as kTimeout at the RPC
// layer.  A RetryPolicy turns that one-shot failure surface into a
// bounded, deterministic retry schedule: exponential backoff with seeded
// jitter, a per-attempt timeout, and an overall deadline.  Only calls the
// caller declares idempotent should be retried — re-issuing a
// non-idempotent request whose reply was lost duplicates its effect.
#pragma once

#include <cstdint>

#include "simkit/rng.hpp"
#include "simkit/time.hpp"

namespace grid::net {

struct RetryPolicy {
  /// Total attempts, including the first.  1 behaves like a plain call.
  int max_attempts = 4;
  /// Backoff before the second attempt; doubles (times `multiplier`) for
  /// each further attempt, clamped to `max_backoff`.
  sim::Time initial_backoff = 100 * sim::kMillisecond;
  double multiplier = 2.0;
  sim::Time max_backoff = 5 * sim::kSecond;
  /// Each backoff is scaled by a uniform draw from [1-jitter, 1+jitter].
  /// The draw stream is seeded from `jitter_seed` and the per-call stream
  /// id, so equal seeds replay identical schedules.
  double jitter = 0.0;
  std::uint64_t jitter_seed = 0x5eedbac0ffULL;
  /// Timeout of each individual attempt.  Must be > 0: without a
  /// per-attempt timeout a lost message would never trigger a retry.
  sim::Time attempt_timeout = 5 * sim::kSecond;
  /// Bound on the whole operation, measured from the first attempt; the
  /// last attempt's timeout is truncated to the remaining budget and no
  /// attempt starts after expiry.  0 means attempts-only bounding.
  sim::Time overall_deadline = 0;
};

/// The materialized backoff schedule of one retrying call.  Draws jitter
/// from its own RNG stream, so two schedules with equal (policy, stream)
/// produce identical delays regardless of what else the simulation does.
class RetrySchedule {
 public:
  RetrySchedule(const RetryPolicy& policy, std::uint64_t stream);

  /// Backoff to wait before attempt `attempt` (2-based: the first retry).
  /// Call with consecutive attempt numbers to stay on the jitter stream.
  sim::Time backoff_before(int attempt);

  const RetryPolicy& policy() const { return policy_; }

 private:
  RetryPolicy policy_;
  sim::Rng rng_;
};

}  // namespace grid::net
