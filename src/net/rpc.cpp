#include "net/rpc.hpp"

#include <utility>

namespace grid::net {

Endpoint::Endpoint(Network& network, std::string name)
    : network_(&network), name_(std::move(name)) {
  id_ = network_->attach(this, name_);
}

Endpoint::~Endpoint() {
  for (auto& [call_id, pc] : pending_) {
    engine().cancel(pc.timeout_event);
  }
  network_->detach(id_);
}

std::uint64_t Endpoint::call(NodeId dst, std::uint32_t method,
                             util::Bytes args, sim::Time timeout,
                             ResponseFn on_response) {
  const std::uint64_t call_id = next_call_id_++;
  util::Writer w;
  w.varint(call_id);
  w.u32(method);
  w.blob(args);
  PendingCall pc;
  pc.on_response = std::move(on_response);
  if (timeout > 0) {
    pc.timeout_event = engine().schedule_after(timeout, [this, call_id] {
      fail_call(call_id, util::ErrorCode::kTimeout, "rpc timeout");
    });
  }
  pending_.emplace(call_id, std::move(pc));
  network_->send(id_, dst, kFrameRequest, w.take());
  return call_id;
}

bool Endpoint::cancel_call(std::uint64_t call_id) {
  auto it = pending_.find(call_id);
  if (it == pending_.end()) return false;
  engine().cancel(it->second.timeout_event);
  pending_.erase(it);
  return true;
}

void Endpoint::fail_call(std::uint64_t call_id, util::ErrorCode code,
                         const std::string& message) {
  auto it = pending_.find(call_id);
  if (it == pending_.end()) return;
  ResponseFn fn = std::move(it->second.on_response);
  engine().cancel(it->second.timeout_event);
  pending_.erase(it);
  util::Bytes empty;
  util::Reader r(empty);
  const util::Status status(code, message);
  fn(status, r);
}

void Endpoint::register_method(std::uint32_t method, MethodHandler handler) {
  methods_[method] = std::move(handler);
}

void Endpoint::respond(NodeId caller, std::uint64_t call_id,
                       util::Bytes result) {
  util::Writer w;
  w.varint(call_id);
  w.boolean(true);
  w.blob(result);
  network_->send(id_, caller, kFrameResponse, w.take());
}

void Endpoint::respond_error(NodeId caller, std::uint64_t call_id,
                             util::ErrorCode code, std::string message) {
  util::Writer w;
  w.varint(call_id);
  w.boolean(false);
  w.u8(static_cast<std::uint8_t>(code));
  w.str(message);
  network_->send(id_, caller, kFrameResponse, w.take());
}

void Endpoint::notify(NodeId dst, std::uint32_t kind, util::Bytes payload) {
  util::Writer w;
  w.u32(kind);
  w.blob(payload);
  network_->send(id_, dst, kFrameNotify, w.take());
}

void Endpoint::register_notify(std::uint32_t kind, NotifyHandler handler) {
  notifies_[kind] = std::move(handler);
}

void Endpoint::handle_message(const Message& msg) {
  if (crashed_) return;
  util::Reader r(msg.payload);
  switch (msg.kind) {
    case kFrameRequest: {
      const std::uint64_t call_id = r.varint();
      const std::uint32_t method = r.u32();
      const util::Bytes args = r.blob();
      if (!r.ok()) return;  // malformed frame: drop
      auto it = methods_.find(method);
      if (it == methods_.end()) {
        respond_error(msg.src, call_id, util::ErrorCode::kNotFound,
                      "unknown method " + std::to_string(method));
        return;
      }
      util::Reader args_reader(args);
      it->second(msg.src, call_id, args_reader);
      return;
    }
    case kFrameResponse: {
      const std::uint64_t call_id = r.varint();
      const bool ok = r.boolean();
      auto it = pending_.find(call_id);
      if (it == pending_.end()) return;  // late or cancelled: ignore
      ResponseFn fn = std::move(it->second.on_response);
      engine().cancel(it->second.timeout_event);
      pending_.erase(it);
      if (ok) {
        const util::Bytes result = r.blob();
        if (!r.ok()) {
          util::Bytes empty;
          util::Reader rr(empty);
          fn(util::Status(util::ErrorCode::kInternal, "malformed response"),
             rr);
          return;
        }
        util::Reader result_reader(result);
        fn(util::Status::ok(), result_reader);
      } else {
        const auto code = static_cast<util::ErrorCode>(r.u8());
        const std::string message = r.str();
        util::Bytes empty;
        util::Reader rr(empty);
        fn(util::Status(r.ok() ? code : util::ErrorCode::kInternal, message),
           rr);
      }
      return;
    }
    case kFrameNotify: {
      const std::uint32_t kind = r.u32();
      const util::Bytes payload = r.blob();
      if (!r.ok()) return;
      auto it = notifies_.find(kind);
      if (it == notifies_.end()) return;
      util::Reader payload_reader(payload);
      it->second(msg.src, payload_reader);
      return;
    }
    default:
      return;  // unknown frame: drop
  }
}

void Endpoint::on_crash() {
  crashed_ = true;
  for (auto& [call_id, pc] : pending_) {
    engine().cancel(pc.timeout_event);
  }
  pending_.clear();
  if (crash_hook) crash_hook();
}

}  // namespace grid::net
