#include "net/rpc.hpp"

#include <utility>

#include "simkit/check.hpp"

namespace grid::net {

namespace {
Endpoint::TeardownReport& teardown_report_slot() {
  thread_local Endpoint::TeardownReport report;
  return report;
}
}  // namespace

const Endpoint::TeardownReport& Endpoint::last_teardown_report() {
  return teardown_report_slot();
}

Endpoint::Endpoint(Network& network, std::string name)
    : network_(&network), name_(std::move(name)) {
  id_ = network_->attach(this, name_);
}

Endpoint::~Endpoint() {
  // Teardown with outstanding calls must leave nothing scheduled that
  // captures `this`: cancel every per-call timeout and every retry backoff
  // timer (each holds a lambda over this endpoint — a use-after-free if it
  // ever fired after destruction).  Callbacks simply never fire.  The
  // audit counts what the drain found and proves both tables emptied.
  TeardownReport report;
  report.pending_calls = pending_.size();
  report.retrying_calls = retrying_.size();
  pending_.for_each([this, &report](std::uint64_t, PendingCall& pc) {
    if (engine().cancel(pc.timeout_event)) ++report.timers_cancelled;
  });
  pending_.clear();
  retrying_.for_each([this, &report](std::uint64_t, RetryingCall& rc) {
    if (engine().cancel(rc.backoff_event)) ++report.timers_cancelled;
  });
  retrying_.clear();
  report.leaked_slots = pending_.size() + retrying_.size();
  GRID_CHECK(report.leaked_slots == 0,
             "Endpoint teardown leaked call-table slots");
  GRID_CHECK(pending_.consistent() && retrying_.consistent(),
             "Endpoint call tables inconsistent at teardown");
  teardown_report_slot() = report;
  network_->detach(id_);
}

std::uint64_t Endpoint::call(NodeId dst, std::uint32_t method,
                             sim::Payload args, sim::Time timeout,
                             ResponseFn on_response) {
  const std::uint64_t call_id = next_call_id_++;
  util::Writer w;
  w.reserve(16 + args.size());
  w.varint(call_id);
  w.u32(method);
  w.blob(args);
  PendingCall pc;
  pc.on_response = std::move(on_response);
  if (timeout > 0) {
    pc.timeout_event = engine().schedule_after(timeout, [this, call_id] {
      fail_call(call_id, util::ErrorCode::kTimeout, "rpc timeout");
    });
  }
  pending_.emplace(call_id, std::move(pc));
  network_->send(id_, dst, kFrameRequest, w.take());
  return call_id;
}

bool Endpoint::cancel_call(std::uint64_t call_id) {
  PendingCall* pc = pending_.find(call_id);
  if (pc == nullptr) return false;
  engine().cancel(pc->timeout_event);
  pending_.erase(call_id);
  return true;
}

std::uint64_t Endpoint::retrying_call(NodeId dst, std::uint32_t method,
                                      sim::Payload args,
                                      const RetryPolicy& policy,
                                      ResponseFn on_response) {
  const std::uint64_t ticket = next_call_id_++;
  RetryingCall rc(policy, ticket);
  rc.dst = dst;
  rc.method = method;
  rc.args = std::move(args);
  rc.on_response = std::move(on_response);
  rc.started_at = engine().now();
  retrying_.emplace(ticket, std::move(rc));
  issue_attempt(ticket);
  return ticket;
}

bool Endpoint::cancel_retrying_call(std::uint64_t ticket) {
  RetryingCall* rc = retrying_.find(ticket);
  if (rc == nullptr) return false;
  engine().cancel(rc->backoff_event);
  if (rc->inner_call != 0) cancel_call(rc->inner_call);
  retrying_.erase(ticket);
  return true;
}

void Endpoint::issue_attempt(std::uint64_t ticket) {
  RetryingCall* rc = retrying_.find(ticket);
  if (rc == nullptr) return;
  const RetryPolicy& policy = rc->schedule.policy();
  sim::Time timeout = policy.attempt_timeout;
  if (policy.overall_deadline > 0) {
    const sim::Time remaining =
        rc->started_at + policy.overall_deadline - engine().now();
    if (remaining <= 0) {
      util::Reader r(nullptr, 0);
      on_attempt_response(
          ticket,
          util::Status(util::ErrorCode::kTimeout, "rpc deadline exhausted"),
          r);
      return;
    }
    if (timeout <= 0 || remaining < timeout) timeout = remaining;
  }
  ++rc->attempt;
  if (rc->attempt > 1) ++network_->mutable_stats().rpc_retries;
  // The frozen args buffer is shared into the attempt; call() only reads
  // it (copying into the frame), so re-sends never re-encode.  Note the
  // inner call lives in pending_, a different slab than retrying_, so
  // `rc` stays valid across the call.
  rc->inner_call =
      call(rc->dst, rc->method, rc->args.share(), timeout,
           [this, ticket](const util::Status& status, util::Reader& result) {
             on_attempt_response(ticket, status, result);
           });
}

void Endpoint::on_attempt_response(std::uint64_t ticket,
                                   const util::Status& status,
                                   util::Reader& result) {
  RetryingCall* rc = retrying_.find(ticket);
  if (rc == nullptr) return;  // cancelled mid-flight
  rc->inner_call = 0;
  const RetryPolicy& policy = rc->schedule.policy();
  if (status.code() != util::ErrorCode::kTimeout) {
    // Success or a definitive (non-retryable) error: deliver it.
    if (status.is_ok() && rc->attempt > 1) {
      ++network_->mutable_stats().rpc_retry_successes;
    }
    ResponseFn fn = std::move(rc->on_response);
    retrying_.erase(ticket);
    fn(status, result);
    return;
  }
  const sim::Time deadline = policy.overall_deadline > 0
                                 ? rc->started_at + policy.overall_deadline
                                 : sim::kTimeNever;
  sim::Time backoff = 0;
  bool exhausted = rc->attempt >= policy.max_attempts;
  if (!exhausted) {
    backoff = rc->schedule.backoff_before(rc->attempt + 1);
    // No attempt may start at or past the deadline.
    exhausted = engine().now() + backoff >= deadline;
  }
  if (exhausted) {
    ++network_->mutable_stats().rpc_retry_exhausted;
    const int attempts = rc->attempt;
    ResponseFn fn = std::move(rc->on_response);
    retrying_.erase(ticket);
    util::Reader r(nullptr, 0);
    fn(util::Status(util::ErrorCode::kTimeout,
                    "rpc timeout after " + std::to_string(attempts) +
                        " attempt(s)"),
       r);
    return;
  }
  rc->backoff_event =
      engine().schedule_after(backoff, [this, ticket] {
        RetryingCall* rit = retrying_.find(ticket);
        if (rit != nullptr) rit->backoff_event = {};
        issue_attempt(ticket);
      });
}

void Endpoint::drop_retrying_calls() {
  retrying_.for_each([this](std::uint64_t, RetryingCall& rc) {
    engine().cancel(rc.backoff_event);
  });
  retrying_.clear();
}

void Endpoint::fail_call(std::uint64_t call_id, util::ErrorCode code,
                         const std::string& message) {
  PendingCall* pc = pending_.find(call_id);
  if (pc == nullptr) return;
  ResponseFn fn = std::move(pc->on_response);
  engine().cancel(pc->timeout_event);
  pending_.erase(call_id);
  util::Reader r(nullptr, 0);
  const util::Status status(code, message);
  fn(status, r);
}

void Endpoint::register_method(std::uint32_t method, MethodHandler handler) {
  methods_[method] = std::move(handler);  // IdSlab::operator[]: replace-on-re-register
}

void Endpoint::respond(NodeId caller, std::uint64_t call_id,
                       sim::Payload result) {
  util::Writer w;
  w.reserve(12 + result.size());
  w.varint(call_id);
  w.boolean(true);
  w.blob(result);
  network_->send(id_, caller, kFrameResponse, w.take());
}

void Endpoint::respond_error(NodeId caller, std::uint64_t call_id,
                             util::ErrorCode code, std::string message) {
  util::Writer w;
  w.reserve(13 + message.size());
  w.varint(call_id);
  w.boolean(false);
  w.u8(static_cast<std::uint8_t>(code));
  w.str(message);
  network_->send(id_, caller, kFrameResponse, w.take());
}

void Endpoint::notify(NodeId dst, std::uint32_t kind, sim::Payload payload) {
  notify_frame(dst, encode_notify(kind, payload));
}

sim::Payload Endpoint::encode_notify(std::uint32_t kind,
                                     const sim::Payload& payload) {
  util::Writer w;
  w.reserve(14 + payload.size());
  w.u32(kind);
  w.blob(payload);
  return w.take();
}

void Endpoint::notify_frame(NodeId dst, sim::Payload frame) {
  network_->send(id_, dst, kFrameNotify, std::move(frame));
}

void Endpoint::register_notify(std::uint32_t kind, NotifyHandler handler) {
  notifies_[kind] = std::move(handler);
}

void Endpoint::handle_message(const Message& msg) {
  if (crashed_) return;
  util::Reader r(msg.payload);
  switch (msg.kind) {
    case kFrameRequest: {
      const std::uint64_t call_id = r.varint();
      const std::uint32_t method = r.u32();
      // View into the message buffer: the args reader borrows the payload
      // for the duration of the handler, no copy.
      const auto args = r.blob_view();
      if (!r.ok()) return;  // malformed frame: drop
      MethodHandler* handler = methods_.find(method);
      if (handler == nullptr) {
        respond_error(msg.src, call_id, util::ErrorCode::kNotFound,
                      "unknown method " + std::to_string(method));
        return;
      }
      util::Reader args_reader(args.data(), args.size());
      (*handler)(msg.src, call_id, args_reader);
      return;
    }
    case kFrameResponse: {
      const std::uint64_t call_id = r.varint();
      const bool ok = r.boolean();
      PendingCall* pc = pending_.find(call_id);
      if (pc == nullptr) return;  // late or cancelled: ignore
      ResponseFn fn = std::move(pc->on_response);
      engine().cancel(pc->timeout_event);
      pending_.erase(call_id);
      if (ok) {
        const auto result = r.blob_view();
        if (!r.ok()) {
          util::Reader rr(nullptr, 0);
          fn(util::Status(util::ErrorCode::kInternal, "malformed response"),
             rr);
          return;
        }
        util::Reader result_reader(result.data(), result.size());
        fn(util::Status::ok(), result_reader);
      } else {
        const auto code = static_cast<util::ErrorCode>(r.u8());
        const std::string message = r.str();
        util::Reader rr(nullptr, 0);
        fn(util::Status(r.ok() ? code : util::ErrorCode::kInternal, message),
           rr);
      }
      return;
    }
    case kFrameNotify: {
      const std::uint32_t kind = r.u32();
      const auto payload = r.blob_view();
      if (!r.ok()) return;
      NotifyHandler* handler = notifies_.find(kind);
      if (handler == nullptr) return;
      util::Reader payload_reader(payload.data(), payload.size());
      (*handler)(msg.src, payload_reader);
      return;
    }
    default:
      return;  // unknown frame: drop
  }
}

void Endpoint::on_crash() {
  crashed_ = true;
  pending_.for_each([this](std::uint64_t, PendingCall& pc) {
    engine().cancel(pc.timeout_event);
  });
  pending_.clear();
  // Retrying calls die with the host: a crashed client must not wake up
  // from a backoff timer and transmit.
  drop_retrying_calls();
  if (crash_hook) crash_hook();
}

}  // namespace grid::net
