#include "net/network.hpp"

#include <utility>

namespace grid::net {

void MatrixLatency::set_pair(NodeId a, NodeId b, sim::Time one_way) {
  pairs_[key(a, b)] = one_way;
}

sim::Time MatrixLatency::latency(NodeId src, NodeId dst, std::size_t) {
  auto it = pairs_.find(key(src, dst));
  return it == pairs_.end() ? default_ : it->second;
}

std::uint64_t MatrixLatency::key(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

sim::Time BandwidthLatency::latency(NodeId, NodeId, std::size_t bytes) {
  if (bps_ <= 0.0) return base_;
  const double serialize =
      static_cast<double>(bytes) / bps_ * static_cast<double>(sim::kSecond);
  return base_ + static_cast<sim::Time>(serialize);
}

Network::Network(sim::Engine& engine)
    : engine_(&engine),
      latency_(std::make_unique<FixedLatency>(2 * sim::kMillisecond)),
      drop_rng_(0xda7a5eedULL) {}

NodeId Network::attach(Node* node, std::string name) {
  const NodeId id = next_id_++;
  nodes_[id] = Slot{node, std::move(name), true};
  return id;
}

void Network::detach(NodeId id) { nodes_.erase(id); }

void Network::set_latency_model(std::unique_ptr<LatencyModel> model) {
  if (model) latency_ = std::move(model);
}

util::Status Network::send(NodeId src, NodeId dst, std::uint32_t kind,
                           sim::Payload payload) {
  auto sit = nodes_.find(src);
  if (sit == nodes_.end()) {
    return {util::ErrorCode::kInvalidArgument, "send from unknown node"};
  }
  ++stats_.sent;
  stats_.bytes_sent += payload.size();
  if (payload.attached()) {
    if (payload.recycled()) {
      ++stats_.payloads_recycled;
    } else {
      ++stats_.payloads_fresh;
    }
  }
  // Step order below is the determinism contract documented on send() in
  // network.hpp: drop checks BEFORE the latency-model consult.
  if (!sit->second.up) {
    // A crashed host cannot transmit.
    ++stats_.dropped_down;
    return util::Status::ok();
  }
  if (drop_prob_ > 0.0 && drop_rng_.chance(drop_prob_)) {
    ++stats_.dropped_random;
    return util::Status::ok();
  }
  const sim::Time dt = latency_->latency(src, dst, payload.size()) +
                       node_extra_delay(src) + node_extra_delay(dst);
  Message msg{src, dst, kind, std::move(payload)};
  engine_->schedule_after(
      dt, [this, m = std::move(msg), se = epoch_of(src),
           de = epoch_of(dst)]() mutable { deliver(std::move(m), se, de); });
  return util::Status::ok();
}

void Network::deliver(Message msg, std::uint64_t src_epoch,
                      std::uint64_t dst_epoch) {
  // Partition and liveness are evaluated at delivery time, so a partition
  // injected while a message is in flight still swallows it.
  if (is_partitioned(msg.src, msg.dst)) {
    ++stats_.dropped_partition;
    return;
  }
  auto it = nodes_.find(msg.dst);
  if (it == nodes_.end() || !it->second.up || it->second.node == nullptr) {
    ++stats_.dropped_down;
    return;
  }
  // A crash of either endpoint while the message was in flight loses it,
  // even if the node was restored before the nominal delivery time.
  if (it->second.epoch != dst_epoch || epoch_of(msg.src) != src_epoch) {
    ++stats_.dropped_down;
    return;
  }
  ++stats_.delivered;
  stats_.bytes_delivered += msg.payload.size();
  it->second.node->handle_message(msg);
}

std::uint64_t Network::epoch_of(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? 0 : it->second.epoch;
}

void Network::set_node_up(NodeId id, bool up) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  const bool was_up = it->second.up;
  it->second.up = up;
  if (was_up && !up) {
    ++it->second.epoch;
    if (it->second.node != nullptr) it->second.node->on_crash();
  }
}

bool Network::is_up(NodeId id) const {
  auto it = nodes_.find(id);
  return it != nodes_.end() && it->second.up;
}

void Network::set_partitioned(NodeId a, NodeId b, bool blocked) {
  const std::uint64_t k =
      a < b ? (static_cast<std::uint64_t>(a) << 32) | b
            : (static_cast<std::uint64_t>(b) << 32) | a;
  if (blocked) {
    partitions_.insert(k);
  } else {
    partitions_.erase(k);
  }
}

bool Network::is_partitioned(NodeId a, NodeId b) const {
  const std::uint64_t k =
      a < b ? (static_cast<std::uint64_t>(a) << 32) | b
            : (static_cast<std::uint64_t>(b) << 32) | a;
  return partitions_.contains(k);
}

void Network::set_node_extra_delay(NodeId node, sim::Time extra) {
  if (extra <= 0) {
    extra_delay_.erase(node);
  } else {
    extra_delay_[node] = extra;
  }
}

sim::Time Network::node_extra_delay(NodeId node) const {
  auto it = extra_delay_.find(node);
  return it == extra_delay_.end() ? 0 : it->second;
}

const std::string& Network::name(NodeId id) const {
  static const std::string kUnknown = "<unknown>";
  auto it = nodes_.find(id);
  return it == nodes_.end() ? kUnknown : it->second.name;
}

}  // namespace grid::net
