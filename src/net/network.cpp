#include "net/network.hpp"

#include <utility>

namespace grid::net {

void MatrixLatency::set_pair(NodeId a, NodeId b, sim::Time one_way) {
  const std::uint64_t k = key(a, b);
  const std::uint32_t idx = pair_index_.find(k);
  if (idx != sim::IdMap::kNotFound) {
    values_[idx] = one_way;
    return;
  }
  pair_index_.insert(k, static_cast<std::uint32_t>(values_.size()));
  values_.push_back(one_way);
}

sim::Time MatrixLatency::latency(NodeId src, NodeId dst, std::size_t) {
  const std::uint32_t idx = pair_index_.find(key(src, dst));
  return idx == sim::IdMap::kNotFound ? default_ : values_[idx];
}

std::uint64_t MatrixLatency::key(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

sim::Time BandwidthLatency::latency(NodeId, NodeId, std::size_t bytes) {
  if (bps_ <= 0.0) return base_;
  const double serialize =
      static_cast<double>(bytes) / bps_ * static_cast<double>(sim::kSecond);
  return base_ + static_cast<sim::Time>(serialize);
}

Network::Network(sim::Engine& engine)
    : engine_(&engine),
      latency_(std::make_unique<FixedLatency>(2 * sim::kMillisecond)),
      drop_rng_(0xda7a5eedULL) {}

Network::Slot* Network::slot(NodeId id) {
  if (id >= nodes_.size() || !nodes_[id].attached) return nullptr;
  return &nodes_[id];
}

const Network::Slot* Network::slot(NodeId id) const {
  if (id >= nodes_.size() || !nodes_[id].attached) return nullptr;
  return &nodes_[id];
}

NodeId Network::attach(Node* node, std::string name) {
  const NodeId id = next_id_++;
  nodes_.resize(id + 1);
  Slot& s = nodes_[id];
  s.node = node;
  s.name = std::move(name);
  s.up = true;
  s.attached = true;
  ++attached_;
  return id;
}

void Network::detach(NodeId id) {
  Slot* s = slot(id);
  if (s == nullptr) return;
  s->node = nullptr;
  s->attached = false;
  --attached_;
}

void Network::set_latency_model(std::unique_ptr<LatencyModel> model) {
  if (model) latency_ = std::move(model);
}

util::Status Network::send(NodeId src, NodeId dst, std::uint32_t kind,
                           sim::Payload payload) {
  const Slot* s = slot(src);
  if (s == nullptr) {
    return {util::ErrorCode::kInvalidArgument, "send from unknown node"};
  }
  ++stats_.sent;
  stats_.bytes_sent += payload.size();
  if (payload.attached()) {
    if (payload.recycled()) {
      ++stats_.payloads_recycled;
    } else {
      ++stats_.payloads_fresh;
    }
  }
  // Step order below is the determinism contract documented on send() in
  // network.hpp: drop checks BEFORE the latency-model consult.
  if (!s->up) {
    // A crashed host cannot transmit.
    ++stats_.dropped_down;
    return util::Status::ok();
  }
  if (drop_prob_ > 0.0 && drop_rng_.chance(drop_prob_)) {
    ++stats_.dropped_random;
    return util::Status::ok();
  }
  const sim::Time dt = latency_->latency(src, dst, payload.size()) +
                       node_extra_delay(src) + node_extra_delay(dst);
  Message msg{src, dst, kind, std::move(payload)};
  engine_->schedule_after(
      dt, [this, m = std::move(msg), se = epoch_of(src),
           de = epoch_of(dst)]() mutable { deliver(std::move(m), se, de); });
  return util::Status::ok();
}

void Network::deliver(Message msg, std::uint64_t src_epoch,
                      std::uint64_t dst_epoch) {
  // Partition and liveness are evaluated at delivery time, so a partition
  // injected while a message is in flight still swallows it.
  if (is_partitioned(msg.src, msg.dst)) {
    ++stats_.dropped_partition;
    return;
  }
  const Slot* d = slot(msg.dst);
  if (d == nullptr || !d->up || d->node == nullptr) {
    ++stats_.dropped_down;
    return;
  }
  // A crash of either endpoint while the message was in flight loses it,
  // even if the node was restored before the nominal delivery time.
  if (d->epoch != dst_epoch || epoch_of(msg.src) != src_epoch) {
    ++stats_.dropped_down;
    return;
  }
  ++stats_.delivered;
  stats_.bytes_delivered += msg.payload.size();
  d->node->handle_message(msg);
}

std::uint64_t Network::epoch_of(NodeId id) const {
  const Slot* s = slot(id);
  return s == nullptr ? 0 : s->epoch;
}

void Network::set_node_up(NodeId id, bool up) {
  Slot* s = slot(id);
  if (s == nullptr) return;
  const bool was_up = s->up;
  s->up = up;
  if (was_up && !up) {
    ++s->epoch;
    if (s->node != nullptr) s->node->on_crash();
  }
}

bool Network::is_up(NodeId id) const {
  const Slot* s = slot(id);
  return s != nullptr && s->up;
}

void Network::set_partitioned(NodeId a, NodeId b, bool blocked) {
  const std::uint64_t k =
      a < b ? (static_cast<std::uint64_t>(a) << 32) | b
            : (static_cast<std::uint64_t>(b) << 32) | a;
  if (blocked) {
    if (partitions_.find(k) == sim::IdMap::kNotFound) partitions_.insert(k, 1);
  } else {
    partitions_.erase(k);
  }
}

bool Network::is_partitioned(NodeId a, NodeId b) const {
  const std::uint64_t k =
      a < b ? (static_cast<std::uint64_t>(a) << 32) | b
            : (static_cast<std::uint64_t>(b) << 32) | a;
  return partitions_.find(k) != sim::IdMap::kNotFound;
}

void Network::set_node_extra_delay(NodeId node, sim::Time extra) {
  // Stored even for ids that are no longer (or not yet) attached, matching
  // the old side-table semantics; clamped at zero.
  if (node >= nodes_.size()) {
    if (extra <= 0) return;
    nodes_.resize(node + 1);
  }
  nodes_[node].extra_delay = extra > 0 ? extra : 0;
}

sim::Time Network::node_extra_delay(NodeId node) const {
  return node < nodes_.size() ? nodes_[node].extra_delay : 0;
}

const std::string& Network::name(NodeId id) const {
  static const std::string kUnknown = "<unknown>";
  const Slot* s = slot(id);
  return s == nullptr ? kUnknown : s->name;
}

}  // namespace grid::net
