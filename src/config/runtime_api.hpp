// Configuration mechanism queries (paper §3.3).
//
// The paper defines a minimal operation set from which alternative
// configuration approaches can be built:
//   * determine the number of subjobs in a resource set;
//   * determine the size of a specific subjob;
//   * communicate between at least one node in a subjob and every other
//     node in the subjob (intra-subjob: member addresses);
//   * for at least one node in a subjob, communicate with at least one
//     node in every other subjob (inter-subjob: leader addresses).
// ConfigRuntime exposes exactly these over the release payload.
#pragma once

#include "core/runtime.hpp"

namespace grid::cfg {

class ConfigRuntime {
 public:
  explicit ConfigRuntime(core::ReleaseInfo info) : info_(std::move(info)) {}

  // ---- the §3.3 operation set --------------------------------------------

  /// Number of subjobs in the released resource set.
  std::int32_t subjob_count() const {
    return static_cast<std::int32_t>(info_.config.subjobs.size());
  }

  /// Size (process count) of subjob `index`; 0 for out-of-range indices.
  std::int32_t subjob_size(std::int32_t index) const;

  /// Address of one node (the leader, local rank 0) of subjob `index`.
  net::NodeId subjob_leader(std::int32_t index) const;

  /// Addresses of every member of *this process's* subjob, by local rank.
  const std::vector<net::NodeId>& my_subjob_members() const {
    return info_.subjob_members;
  }

  // ---- derived conveniences ------------------------------------------------

  std::int32_t my_subjob() const { return info_.subjob_index; }
  std::int32_t my_local_rank() const { return info_.local_rank; }
  std::int32_t my_global_rank() const { return info_.global_rank; }
  bool is_leader() const { return info_.local_rank == 0; }
  std::int32_t total_processes() const {
    return info_.config.total_processes;
  }

  /// Global rank of subjob `index`'s local rank 0.
  std::int32_t rank_base(std::int32_t index) const;

  /// Maps a global rank to its (subjob, local rank); {-1,-1} if invalid.
  std::pair<std::int32_t, std::int32_t> locate(std::int32_t global_rank) const;

  const core::ReleaseInfo& info() const { return info_; }
  const core::RuntimeConfig& config() const { return info_.config; }

 private:
  core::ReleaseInfo info_;
};

}  // namespace grid::cfg
