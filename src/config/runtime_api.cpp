#include "config/runtime_api.hpp"

namespace grid::cfg {

std::int32_t ConfigRuntime::subjob_size(std::int32_t index) const {
  if (index < 0 || index >= subjob_count()) return 0;
  return info_.config.subjobs[static_cast<std::size_t>(index)].size;
}

net::NodeId ConfigRuntime::subjob_leader(std::int32_t index) const {
  if (index < 0 || index >= subjob_count()) return net::kInvalidNode;
  return info_.config.subjobs[static_cast<std::size_t>(index)].leader;
}

std::int32_t ConfigRuntime::rank_base(std::int32_t index) const {
  if (index < 0 || index >= subjob_count()) return -1;
  return info_.config.subjobs[static_cast<std::size_t>(index)].rank_base;
}

std::pair<std::int32_t, std::int32_t> ConfigRuntime::locate(
    std::int32_t global_rank) const {
  for (const core::SubjobLayout& s : info_.config.subjobs) {
    if (global_rank >= s.rank_base && global_rank < s.rank_base + s.size) {
      return {s.index, global_rank - s.rank_base};
    }
  }
  return {-1, -1};
}

}  // namespace grid::cfg
