// gridmpi: a miniature message-passing runtime bootstrapped from the
// configuration mechanisms — the MPICH-G analog (paper §4.3).
//
// MPICH-G "uses DUROC to start the elements of an MPI job" and wires up a
// global communicator from the subjob structure.  gridmpi does the same
// over the simulated network: after barrier release, init() runs a
// three-stage address exchange built from exactly the §3.3 mechanisms
// (members -> leader gather; leader <-> leader exchange; leader -> member
// table broadcast), after which every rank can reach every other rank and
// the usual operations (send/recv, barrier, bcast, allreduce) work.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "config/runtime_api.hpp"
#include "net/rpc.hpp"

namespace grid::cfg {

/// Notification kind (0x500 block reserved for gridmpi).
inline constexpr std::uint32_t kNotifyGridMpi = 0x501;

class Communicator {
 public:
  /// `endpoint` is the process's endpoint (typically the barrier client's);
  /// `info` is the release payload.  Call init() before any communication.
  Communicator(net::Endpoint& endpoint, core::ReleaseInfo info);
  ~Communicator();

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  /// Runs the bootstrap address exchange.  `on_ready` fires when this rank
  /// holds the full rank -> address table.
  void init(std::function<void()> on_ready);
  bool initialized() const { return initialized_; }

  std::int32_t rank() const { return runtime_.my_global_rank(); }
  std::int32_t size() const { return runtime_.total_processes(); }
  const ConfigRuntime& runtime() const { return runtime_; }

  // ---- point-to-point ------------------------------------------------------

  using RecvHandler =
      std::function<void(std::int32_t src_rank, util::Reader& payload)>;

  /// Sends `payload` to `dst_rank` under `tag`.  Requires init().
  void send(std::int32_t dst_rank, std::int32_t tag, util::Bytes payload);

  /// Registers the handler for user messages with `tag`.  Messages that
  /// arrive before registration are queued and delivered on registration.
  void recv(std::int32_t tag, RecvHandler handler);

  // ---- collectives (flat; adequate at simulation scale) --------------------

  /// Completes once all ranks have entered.
  void barrier(std::function<void()> on_done);

  /// Root's payload is delivered to every rank (including the root).
  void bcast(std::int32_t root, util::Bytes payload,
             std::function<void(util::Bytes)> on_done);

  /// Global sum; every rank receives the total.
  void allreduce_sum(std::int64_t value,
                     std::function<void(std::int64_t)> on_done);

  /// Global minimum / maximum; every rank receives the result.
  void allreduce_min(std::int64_t value,
                     std::function<void(std::int64_t)> on_done);
  void allreduce_max(std::int64_t value,
                     std::function<void(std::int64_t)> on_done);

  /// Gathers every rank's payload at `root`, ordered by rank.  Only the
  /// root's callback fires; other ranks' callbacks receive an empty vector
  /// immediately after their contribution is sent.
  void gather(std::int32_t root, util::Bytes payload,
              std::function<void(std::vector<util::Bytes>)> on_done);

 private:
  // Internal message kinds multiplexed on kNotifyGridMpi.
  enum Kind : std::uint8_t {
    kGatherAddress = 1,   // member -> leader: (local_rank, node)
    kLeaderTable = 2,     // leader -> leader: (subjob, [(rank, node)...])
    kFullTable = 3,       // leader -> member: [(global_rank, node)...]
    kUser = 4,            // user payload: (src_rank, tag, blob)
    kBarrierEnter = 5,    // rank -> 0
    kBarrierLeave = 6,    // 0 -> rank
    kBcast = 7,           // root -> rank: (seq, blob)
    kReduceContrib = 8,   // rank -> 0: (seq, op, value)
    kReduceResult = 9,    // 0 -> rank: (seq, value)
    kGatherContrib = 10,  // rank -> root: (seq, rank, blob)
  };

  enum class ReduceOp : std::uint8_t { kSum = 0, kMin = 1, kMax = 2 };

  void handle(net::NodeId src, util::Reader& payload);
  void on_member_address(std::int32_t local_rank, net::NodeId node);
  void maybe_leader_exchange();
  void on_leader_table(std::int32_t subjob,
                       const std::vector<net::NodeId>& nodes);
  void maybe_broadcast_table();
  void adopt_table(std::vector<net::NodeId> table);
  net::NodeId address_of(std::int32_t global_rank) const;
  void raw_send(net::NodeId node, sim::Payload frame);
  void deliver_user(std::int32_t src_rank, std::int32_t tag,
                    const util::Bytes& blob);

  net::Endpoint* endpoint_;
  ConfigRuntime runtime_;
  bool initialized_ = false;
  std::function<void()> on_ready_;

  // Bootstrap state (leaders only use the gather/exchange parts).
  std::vector<net::NodeId> my_subjob_nodes_;  // by local rank
  std::int32_t gathered_ = 0;
  std::vector<std::vector<net::NodeId>> leader_tables_;  // by subjob index
  std::int32_t leader_tables_received_ = 0;
  std::vector<net::NodeId> table_;  // by global rank (post-init)

  // User receive dispatch.
  std::map<std::int32_t, RecvHandler> handlers_;
  std::map<std::int32_t, std::vector<std::pair<std::int32_t, util::Bytes>>>
      early_;

  // Collective state (flat algorithms rooted at global rank 0).
  std::int32_t barrier_arrivals_ = 0;
  std::vector<std::function<void()>> barrier_waiters_;
  std::uint64_t bcast_seq_ = 0;
  std::map<std::uint64_t, std::function<void(util::Bytes)>> bcast_waiters_;
  std::map<std::uint64_t, util::Bytes> bcast_early_;
  std::uint64_t reduce_seq_ = 0;
  std::map<std::uint64_t, std::int64_t> reduce_early_;
  struct ReduceState {
    std::int64_t value = 0;
    std::int32_t contributions = 0;
    ReduceOp op = ReduceOp::kSum;
  };
  std::map<std::uint64_t, ReduceState> reduce_state_;  // rank 0 only
  std::map<std::uint64_t, std::function<void(std::int64_t)>> reduce_waiters_;
  void allreduce(ReduceOp op, std::int64_t value,
                 std::function<void(std::int64_t)> on_done);
  std::uint64_t gather_seq_ = 0;
  struct GatherState {
    std::vector<util::Bytes> pieces;
    std::vector<bool> present;
    std::int32_t received = 0;
  };
  std::map<std::uint64_t, GatherState> gather_state_;  // root only
  std::map<std::uint64_t, std::function<void(std::vector<util::Bytes>)>>
      gather_waiters_;
  void gather_contribute(std::uint64_t seq, std::int32_t src_rank,
                         util::Bytes blob);
};

}  // namespace grid::cfg
