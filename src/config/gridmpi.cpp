#include "config/gridmpi.hpp"

#include <algorithm>

namespace grid::cfg {

Communicator::Communicator(net::Endpoint& endpoint, core::ReleaseInfo info)
    : endpoint_(&endpoint), runtime_(std::move(info)) {
  my_subjob_nodes_ = runtime_.my_subjob_members();
  endpoint_->register_notify(
      kNotifyGridMpi, [this](net::NodeId src, util::Reader& payload) {
        handle(src, payload);
      });
}

Communicator::~Communicator() = default;

void Communicator::raw_send(net::NodeId node, sim::Payload frame) {
  endpoint_->notify(node, kNotifyGridMpi, std::move(frame));
}

net::NodeId Communicator::address_of(std::int32_t global_rank) const {
  if (global_rank < 0 ||
      static_cast<std::size_t>(global_rank) >= table_.size()) {
    return net::kInvalidNode;
  }
  return table_[static_cast<std::size_t>(global_rank)];
}

// ---- bootstrap ---------------------------------------------------------------

void Communicator::init(std::function<void()> on_ready) {
  on_ready_ = std::move(on_ready);
  const std::int32_t nsub = runtime_.subjob_count();
  if (!runtime_.is_leader()) {
    // Members wait for the full table from their leader (stage 3).
    return;
  }
  // Stage 2: leaders exchange member tables.  Each leader already knows its
  // own subjob's members from the release payload (§3.3 intra-subjob
  // mechanism) and every other subjob's leader address (inter-subjob
  // mechanism).
  leader_tables_.assign(static_cast<std::size_t>(nsub), {});
  leader_tables_[static_cast<std::size_t>(runtime_.my_subjob())] =
      my_subjob_nodes_;
  leader_tables_received_ = 1;
  util::Writer w;
  w.u8(kLeaderTable);
  w.i32(runtime_.my_subjob());
  w.varint(my_subjob_nodes_.size());
  for (net::NodeId n : my_subjob_nodes_) w.u32(n);
  const sim::Payload frame =
      net::Endpoint::encode_notify(kNotifyGridMpi, w.take());
  for (std::int32_t s = 0; s < nsub; ++s) {
    if (s == runtime_.my_subjob()) continue;
    endpoint_->notify_frame(runtime_.subjob_leader(s), frame.share());
  }
  maybe_broadcast_table();
}

void Communicator::on_leader_table(std::int32_t subjob,
                                   const std::vector<net::NodeId>& nodes) {
  if (subjob < 0 || subjob >= runtime_.subjob_count()) return;
  auto& slot = leader_tables_[static_cast<std::size_t>(subjob)];
  if (!slot.empty()) return;  // duplicate
  slot = nodes;
  ++leader_tables_received_;
  maybe_broadcast_table();
}

void Communicator::maybe_broadcast_table() {
  if (initialized_ ||
      leader_tables_received_ < runtime_.subjob_count()) {
    return;
  }
  // Stage 3: assemble the global table and push it to our members.
  std::vector<net::NodeId> table(
      static_cast<std::size_t>(runtime_.total_processes()),
      net::kInvalidNode);
  for (std::int32_t s = 0; s < runtime_.subjob_count(); ++s) {
    const auto& nodes = leader_tables_[static_cast<std::size_t>(s)];
    const std::int32_t base = runtime_.rank_base(s);
    for (std::size_t r = 0; r < nodes.size(); ++r) {
      const std::size_t g = static_cast<std::size_t>(base) + r;
      if (g < table.size()) table[g] = nodes[r];
    }
  }
  util::Writer w;
  w.u8(kFullTable);
  w.varint(table.size());
  for (net::NodeId n : table) w.u32(n);
  const sim::Payload frame =
      net::Endpoint::encode_notify(kNotifyGridMpi, w.take());
  for (std::size_t r = 1; r < my_subjob_nodes_.size(); ++r) {
    endpoint_->notify_frame(my_subjob_nodes_[r], frame.share());
  }
  adopt_table(std::move(table));
}

void Communicator::adopt_table(std::vector<net::NodeId> table) {
  if (initialized_) return;
  table_ = std::move(table);
  initialized_ = true;
  if (on_ready_) {
    auto cb = std::move(on_ready_);
    cb();
  }
}

// ---- dispatch ------------------------------------------------------------------

void Communicator::handle(net::NodeId /*src*/, util::Reader& r) {
  const auto kind = static_cast<Kind>(r.u8());
  switch (kind) {
    case kGatherAddress:
      return;  // unused: the release payload already carries member lists
    case kLeaderTable: {
      const std::int32_t subjob = r.i32();
      const std::uint64_t n = r.varint();
      std::vector<net::NodeId> nodes;
      nodes.reserve(n);
      for (std::uint64_t i = 0; i < n && r.ok(); ++i) nodes.push_back(r.u32());
      if (r.ok()) on_leader_table(subjob, nodes);
      return;
    }
    case kFullTable: {
      const std::uint64_t n = r.varint();
      std::vector<net::NodeId> table;
      table.reserve(n);
      for (std::uint64_t i = 0; i < n && r.ok(); ++i) table.push_back(r.u32());
      if (r.ok()) adopt_table(std::move(table));
      return;
    }
    case kUser: {
      const std::int32_t src_rank = r.i32();
      const std::int32_t tag = r.i32();
      const util::Bytes blob = r.blob();
      if (r.ok()) deliver_user(src_rank, tag, blob);
      return;
    }
    case kBarrierEnter: {
      ++barrier_arrivals_;
      if (barrier_arrivals_ >= size()) {
        barrier_arrivals_ -= size();
        util::Writer w;
        w.u8(kBarrierLeave);
        const sim::Payload frame =
            net::Endpoint::encode_notify(kNotifyGridMpi, w.take());
        for (std::int32_t g = 1; g < size(); ++g) {
          endpoint_->notify_frame(address_of(g), frame.share());
        }
        if (!barrier_waiters_.empty()) {
          auto cb = std::move(barrier_waiters_.front());
          barrier_waiters_.erase(barrier_waiters_.begin());
          cb();
        }
      }
      return;
    }
    case kBarrierLeave: {
      if (!barrier_waiters_.empty()) {
        auto cb = std::move(barrier_waiters_.front());
        barrier_waiters_.erase(barrier_waiters_.begin());
        cb();
      }
      return;
    }
    case kBcast: {
      const std::uint64_t seq = r.u64();
      const util::Bytes blob = r.blob();
      if (!r.ok()) return;
      auto it = bcast_waiters_.find(seq);
      if (it == bcast_waiters_.end()) {
        bcast_early_[seq] = blob;
        return;
      }
      auto cb = std::move(it->second);
      bcast_waiters_.erase(it);
      cb(blob);
      return;
    }
    case kReduceContrib: {
      const std::uint64_t seq = r.u64();
      const auto op = static_cast<ReduceOp>(r.u8());
      const std::int64_t value = r.i64();
      if (!r.ok()) return;
      ReduceState& state = reduce_state_[seq];
      if (state.contributions == 0) {
        state.value = value;
        state.op = op;
      } else {
        switch (state.op) {
          case ReduceOp::kSum:
            state.value += value;
            break;
          case ReduceOp::kMin:
            state.value = std::min(state.value, value);
            break;
          case ReduceOp::kMax:
            state.value = std::max(state.value, value);
            break;
        }
      }
      ++state.contributions;
      if (state.contributions >= size()) {
        const std::int64_t total = state.value;
        reduce_state_.erase(seq);
        util::Writer w;
        w.u8(kReduceResult);
        w.u64(seq);
        w.i64(total);
        const sim::Payload frame =
            net::Endpoint::encode_notify(kNotifyGridMpi, w.take());
        for (std::int32_t g = 1; g < size(); ++g) {
          endpoint_->notify_frame(address_of(g), frame.share());
        }
        auto it = reduce_waiters_.find(seq);
        if (it != reduce_waiters_.end()) {
          auto cb = std::move(it->second);
          reduce_waiters_.erase(it);
          cb(total);
        } else {
          reduce_early_[seq] = total;
        }
      }
      return;
    }
    case kReduceResult: {
      const std::uint64_t seq = r.u64();
      const std::int64_t total = r.i64();
      if (!r.ok()) return;
      auto it = reduce_waiters_.find(seq);
      if (it == reduce_waiters_.end()) {
        reduce_early_[seq] = total;
        return;
      }
      auto cb = std::move(it->second);
      reduce_waiters_.erase(it);
      cb(total);
      return;
    }
    case kGatherContrib: {
      const std::uint64_t seq = r.u64();
      const std::int32_t src_rank = r.i32();
      util::Bytes blob = r.blob();
      if (!r.ok()) return;
      gather_contribute(seq, src_rank, std::move(blob));
      return;
    }
  }
}

void Communicator::gather_contribute(std::uint64_t seq, std::int32_t src_rank,
                                     util::Bytes blob) {
  GatherState& state = gather_state_[seq];
  if (state.pieces.empty()) {
    state.pieces.resize(static_cast<std::size_t>(size()));
    state.present.resize(static_cast<std::size_t>(size()), false);
  }
  if (src_rank < 0 || static_cast<std::size_t>(src_rank) >= state.pieces.size() ||
      state.present[static_cast<std::size_t>(src_rank)]) {
    return;
  }
  state.pieces[static_cast<std::size_t>(src_rank)] = std::move(blob);
  state.present[static_cast<std::size_t>(src_rank)] = true;
  ++state.received;
  if (state.received >= size()) {
    auto pieces = std::move(state.pieces);
    gather_state_.erase(seq);
    auto it = gather_waiters_.find(seq);
    if (it == gather_waiters_.end()) return;  // root callback not set yet?
    auto cb = std::move(it->second);
    gather_waiters_.erase(it);
    cb(std::move(pieces));
  }
}

void Communicator::deliver_user(std::int32_t src_rank, std::int32_t tag,
                                const util::Bytes& blob) {
  auto it = handlers_.find(tag);
  if (it == handlers_.end()) {
    early_[tag].emplace_back(src_rank, blob);
    return;
  }
  util::Reader r(blob);
  it->second(src_rank, r);
}

// ---- user operations ------------------------------------------------------------

void Communicator::send(std::int32_t dst_rank, std::int32_t tag,
                        util::Bytes payload) {
  util::Writer w;
  w.u8(kUser);
  w.i32(rank());
  w.i32(tag);
  w.blob(payload);
  raw_send(address_of(dst_rank), w.take());
}

void Communicator::recv(std::int32_t tag, RecvHandler handler) {
  handlers_[tag] = std::move(handler);
  auto it = early_.find(tag);
  if (it == early_.end()) return;
  auto queued = std::move(it->second);
  early_.erase(it);
  auto& h = handlers_[tag];
  for (auto& [src_rank, blob] : queued) {
    util::Reader r(blob);
    h(src_rank, r);
  }
}

void Communicator::barrier(std::function<void()> on_done) {
  barrier_waiters_.push_back(std::move(on_done));
  if (rank() == 0) {
    const util::Bytes frame{static_cast<std::uint8_t>(kBarrierEnter)};
    util::Reader self(frame);
    handle(endpoint_->id(), self);
    return;
  }
  util::Writer w;
  w.u8(kBarrierEnter);
  raw_send(address_of(0), w.take());
}

void Communicator::bcast(std::int32_t root, util::Bytes payload,
                         std::function<void(util::Bytes)> on_done) {
  const std::uint64_t seq = bcast_seq_++;
  if (rank() == root) {
    util::Writer w;
    w.u8(kBcast);
    w.u64(seq);
    w.blob(payload);
    const sim::Payload frame =
        net::Endpoint::encode_notify(kNotifyGridMpi, w.take());
    for (std::int32_t g = 0; g < size(); ++g) {
      if (g == root) continue;
      endpoint_->notify_frame(address_of(g), frame.share());
    }
    on_done(std::move(payload));
    return;
  }
  auto it = bcast_early_.find(seq);
  if (it != bcast_early_.end()) {
    util::Bytes blob = std::move(it->second);
    bcast_early_.erase(it);
    on_done(std::move(blob));
    return;
  }
  bcast_waiters_[seq] = std::move(on_done);
}

void Communicator::allreduce(ReduceOp op, std::int64_t value,
                             std::function<void(std::int64_t)> on_done) {
  const std::uint64_t seq = reduce_seq_++;
  reduce_waiters_[seq] = std::move(on_done);
  // A result that raced ahead of this call (possible on non-root ranks
  // when others finished first) is delivered immediately.
  if (auto it = reduce_early_.find(seq); it != reduce_early_.end()) {
    const std::int64_t total = it->second;
    reduce_early_.erase(it);
    auto cb = std::move(reduce_waiters_[seq]);
    reduce_waiters_.erase(seq);
    cb(total);
    return;
  }
  util::Writer w;
  w.u8(kReduceContrib);
  w.u64(seq);
  w.u8(static_cast<std::uint8_t>(op));
  w.i64(value);
  if (rank() == 0) {
    util::Reader self(w.bytes());
    handle(endpoint_->id(), self);
  } else {
    raw_send(address_of(0), w.take());
  }
}

void Communicator::allreduce_sum(std::int64_t value,
                                 std::function<void(std::int64_t)> on_done) {
  allreduce(ReduceOp::kSum, value, std::move(on_done));
}

void Communicator::allreduce_min(std::int64_t value,
                                 std::function<void(std::int64_t)> on_done) {
  allreduce(ReduceOp::kMin, value, std::move(on_done));
}

void Communicator::allreduce_max(std::int64_t value,
                                 std::function<void(std::int64_t)> on_done) {
  allreduce(ReduceOp::kMax, value, std::move(on_done));
}

void Communicator::gather(std::int32_t root, util::Bytes payload,
                          std::function<void(std::vector<util::Bytes>)>
                              on_done) {
  const std::uint64_t seq = gather_seq_++;
  if (rank() == root) {
    gather_waiters_[seq] = std::move(on_done);
    gather_contribute(seq, rank(), std::move(payload));
    return;
  }
  util::Writer w;
  w.u8(kGatherContrib);
  w.u64(seq);
  w.i32(rank());
  w.blob(payload);
  raw_send(address_of(root), w.take());
  on_done({});  // non-root ranks complete immediately
}

}  // namespace grid::cfg
