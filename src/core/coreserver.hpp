// Network co-reservation agent (paper §5: applying the co-allocation
// approaches to co-reservation).
//
// Acquires a common advance-reservation window on a set of remote
// resources through the GRAM reservation extension, using the same
// two-phase all-or-nothing structure as the atomic co-allocation strategy:
// reserve the probe window on each resource in turn (each call pays GSI
// authentication and network latency, as any GRAM interaction does); if
// any resource refuses, cancel the partial acquisition and retry the next
// probe.  The resulting holds carry the reservation ids that subjob RSL
// binds with the reservationId attribute — the full co-reserve-then-
// co-allocate pipeline the paper sketches as future work.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/request.hpp"
#include "gram/client.hpp"

namespace grid::core {

class NetworkCoReserver {
 public:
  struct Options {
    sim::Time earliest = 0;
    sim::Time horizon = 48 * sim::kHour;
    sim::Time step = 10 * sim::kMinute;
    sim::Time duration = sim::kHour;
    std::int32_t count = 1;
    sim::Time rpc_timeout = 30 * sim::kSecond;
  };

  struct Hold {
    std::string contact;
    net::NodeId gatekeeper = net::kInvalidNode;
    std::uint64_t reservation = 0;
    sim::Time start = 0;
    sim::Time end = 0;
  };

  /// `client` and the resolver must outlive any in-flight acquisition.
  NetworkCoReserver(gram::Client& client, ContactResolver resolver)
      : client_(&client), resolver_(std::move(resolver)) {}

  using DoneFn = std::function<void(util::Result<std::vector<Hold>>)>;

  /// Asynchronously acquires a common window on every contact, or nothing.
  /// Exactly one on_done invocation.
  void acquire(std::vector<std::string> contacts, Options options,
               DoneFn on_done);

  /// Releases held reservations (fire-and-forget cancels).
  void release(const std::vector<Hold>& holds);

  /// Builds subjob requests bound to the holds (one per hold).
  static std::vector<rsl::JobRequest> build_requests(
      const std::vector<Hold>& holds, std::int32_t count,
      const std::string& executable,
      rsl::SubjobStartType start_type = rsl::SubjobStartType::kRequired);

 private:
  struct Flow;
  void try_probe(std::shared_ptr<Flow> flow);
  void reserve_next(std::shared_ptr<Flow> flow);

  gram::Client* client_;
  ContactResolver resolver_;
};

}  // namespace grid::core
