// Application-side co-allocation library (paper §4.1).
//
// "A process that is to run on a co-allocated node starts as normal.  The
// first thing it does is perform any non-side-effect-producing
// initialization ... It then calls the co-allocation barrier, signalling
// whether or not it has completed startup successfully."
//
// BarrierClient is that library: a process constructs one (it reads the
// DUROC contact from its environment and opens its own network endpoint),
// performs its checks, and calls enter().  Exactly one of the release or
// abort callbacks eventually fires — unless the request dies with the
// co-allocator, in which case the process's owner should rely on GRAM
// termination.
#pragma once

#include <functional>
#include <string>

#include "core/barrier_protocol.hpp"
#include "gram/process.hpp"
#include "net/rpc.hpp"

namespace grid::core {

class BarrierClient {
 public:
  /// Reads GRID_DUROC_* from the process environment and opens the
  /// process's endpoint.  `api` must outlive the client.
  explicit BarrierClient(gram::ProcessApi& api);
  ~BarrierClient();

  /// True when the process was started under a co-allocator (the contact
  /// environment is present and well-formed).
  bool configured() const { return contact_ != net::kInvalidNode; }

  using ReleaseFn = std::function<void(const ReleaseInfo&)>;
  using AbortFn = std::function<void(const std::string& reason)>;

  /// Reports the application's startup verdict and enters the barrier.
  /// With ok=false the co-allocator will fail the subjob; no release can
  /// follow.  Calling enter() on an unconfigured client is an error the
  /// caller should have avoided via configured().
  void enter(bool ok, const std::string& message, ReleaseFn on_release,
             AbortFn on_abort);

  /// Arms periodic re-transmission of the check-in (period > 0; call
  /// before enter()).  The check-in notify is the one unacknowledged step
  /// of the barrier protocol, so on a lossy network a single lost message
  /// stalls the whole barrier until the startup deadline; re-sending makes
  /// it reliable.  The co-allocator deduplicates by rank, so duplicates
  /// are harmless.  Re-sending stops at release or abort.
  void set_checkin_resend(sim::Time period) { resend_period_ = period; }

  /// Check-in transmissions, first send included.
  std::uint64_t checkins_sent() const { return checkins_sent_; }

  /// The process's network endpoint (usable for application communication
  /// after release, e.g. by the gridmpi runtime).
  net::Endpoint& endpoint() { return endpoint_; }

  sim::Time entered_at() const { return entered_at_; }
  sim::Time released_at() const { return released_at_; }
  bool released() const { return released_at_ >= 0; }

 private:
  void send_checkin();

  gram::ProcessApi* api_;
  net::Endpoint endpoint_;
  net::NodeId contact_ = net::kInvalidNode;
  RequestId request_ = 0;
  SubjobHandle subjob_ = 0;
  sim::Time entered_at_ = -1;
  sim::Time released_at_ = -1;
  ReleaseFn on_release_;
  AbortFn on_abort_;
  sim::Time resend_period_ = 0;
  /// The check-in, pre-framed once at enter(); re-sends share the same
  /// pooled buffer instead of re-encoding or copying.
  sim::Payload checkin_frame_;
  sim::EventId resend_event_;
  std::uint64_t checkins_sent_ = 0;
  bool settled_ = false;  // release or abort observed: stop re-sending
};

}  // namespace grid::core
