#include "core/request.hpp"

#include <algorithm>

#include "core/coallocator.hpp"
#include "rsl/parser.hpp"

namespace grid::core {
namespace {

/// Strips any pre-existing barrier environment and injects this request's
/// coordinates, as DUROC did with its contact environment variables.
void inject_barrier_env(rsl::JobRequest& job, net::NodeId contact,
                        RequestId request, SubjobHandle handle) {
  std::erase_if(job.environment, [](const auto& kv) {
    return kv.first == env::kContact || kv.first == env::kRequest ||
           kv.first == env::kSubjob;
  });
  job.environment.emplace_back(std::string(env::kContact),
                               std::to_string(contact));
  job.environment.emplace_back(std::string(env::kRequest),
                               std::to_string(request));
  job.environment.emplace_back(std::string(env::kSubjob),
                               std::to_string(handle));
}

}  // namespace

CoallocationRequest::CoallocationRequest(Coallocator& owner, RequestId id,
                                         RequestCallbacks callbacks,
                                         RequestConfig config)
    : owner_(&owner),
      id_(id),
      callbacks_(std::move(callbacks)),
      config_(config),
      log_(owner.engine(), "coalloc/req" + std::to_string(id)) {}

CoallocationRequest::~CoallocationRequest() {
  *alive_ = false;
  slots_.for_each([this](SubjobHandle, Subjob& sj) {
    owner_->engine().cancel(sj.timeout_event);
    owner_->engine().cancel(sj.probe_event);
    // Unregister the state watcher so late notifies from the job manager
    // don't fire into a destroyed request.
    if (sj.gram_job != 0) owner_->gram().forget(sj.gram_job);
  });
}

CoallocationRequest::Subjob* CoallocationRequest::find(SubjobHandle handle) {
  return slots_.find(handle);
}

const CoallocationRequest::Subjob* CoallocationRequest::find(
    SubjobHandle handle) const {
  return slots_.find(handle);
}

// ---- editing ---------------------------------------------------------------

util::Result<SubjobHandle> CoallocationRequest::add_subjob(
    rsl::JobRequest request) {
  if (state_ != RequestState::kEditing) {
    return util::Status(util::ErrorCode::kFailedPrecondition,
                        "request contents may not be changed once committed");
  }
  const SubjobHandle handle = next_handle_++;
  Subjob sj;
  sj.handle = handle;
  sj.request = std::move(request);
  order_.push_back(handle);
  agg_add(slots_.emplace(handle, std::move(sj)));
  if (started_) enqueue_submission(handle);
  return handle;
}

util::Status CoallocationRequest::add_rsl(const std::string& rsl_text) {
  auto spec = rsl::parse_multi_request(rsl_text);
  if (!spec.is_ok()) return spec.status();
  auto jobs = rsl::parse_job_requests(spec.value());
  if (!jobs.is_ok()) return jobs.status();
  for (rsl::JobRequest& j : jobs.value()) {
    if (auto added = add_subjob(std::move(j)); !added.is_ok()) {
      return added.status();
    }
  }
  return util::Status::ok();
}

util::Status CoallocationRequest::remove_subjob(SubjobHandle handle) {
  if (state_ != RequestState::kEditing) {
    return {util::ErrorCode::kFailedPrecondition,
            "request contents may not be changed once committed"};
  }
  Subjob* sj = find(handle);
  if (sj == nullptr || sj->state == SubjobState::kDeleted) {
    return {util::ErrorCode::kNotFound, "unknown subjob"};
  }
  owner_->engine().cancel(sj->timeout_event);
  owner_->engine().cancel(sj->probe_event);
  cancel_gram_job(*sj);
  abort_subjob_processes(*sj, "subjob removed from request");
  set_state(*sj, SubjobState::kDeleted);
  notify_subjob(*sj);
  return util::Status::ok();
}

util::Status CoallocationRequest::substitute_subjob(SubjobHandle handle,
                                                    rsl::JobRequest request) {
  if (state_ != RequestState::kEditing) {
    return {util::ErrorCode::kFailedPrecondition,
            "request contents may not be changed once committed"};
  }
  Subjob* sj = find(handle);
  if (sj == nullptr || sj->state == SubjobState::kDeleted) {
    return {util::ErrorCode::kNotFound, "unknown subjob"};
  }
  owner_->engine().cancel(sj->timeout_event);
  owner_->engine().cancel(sj->probe_event);
  cancel_gram_job(*sj);
  abort_subjob_processes(*sj, "subjob substituted");
  agg_remove(*sj);
  ++sj->incarnation;
  sj->request = std::move(request);
  sj->state = SubjobState::kUnsubmitted;
  agg_add(*sj);
  sj->gram_job = 0;
  sj->gatekeeper = net::kInvalidNode;
  sj->process_nodes.clear();
  sj->checked.clear();
  sj->checked_count = 0;
  sj->probe_misses = 0;
  sj->early_checkins.clear();
  sj->failure = util::Status::ok();
  sj->submitted_at = sj->accepted_at = sj->active_at = sj->checked_in_at = -1;
  notify_subjob(*sj);
  if (started_) enqueue_submission(handle);
  return util::Status::ok();
}

// ---- submission pipeline ---------------------------------------------------

void CoallocationRequest::start() {
  if (started_) return;
  started_ = true;
  for (SubjobHandle h : order_) {
    Subjob* sj = find(h);
    if (sj != nullptr && sj->state == SubjobState::kUnsubmitted &&
        !sj->queued) {
      enqueue_submission(h);
    }
  }
}

void CoallocationRequest::enqueue_submission(SubjobHandle handle) {
  Subjob* sj = find(handle);
  if (sj == nullptr) return;
  sj->queued = true;
  submit_queue_.push_back(handle);
  pump_submissions();
}

void CoallocationRequest::pump_submissions() {
  // Subjob requests are submitted sequentially (§4.2, Figure 5): the next
  // request leaves the client only after the previous accept reply arrives.
  // Remote processing of earlier subjobs overlaps with later submissions.
  if (submission_in_flight_ || hold_handle_ != 0 ||
      is_request_terminal(state_)) {
    return;
  }
  while (!submit_queue_.empty()) {
    const SubjobHandle handle = submit_queue_.front();
    submit_queue_.pop_front();
    Subjob* sj = find(handle);
    if (sj == nullptr || !sj->queued ||
        sj->state != SubjobState::kUnsubmitted) {
      continue;
    }
    sj->queued = false;
    const auto& resolver = owner_->resolver();
    if (!resolver) {
      fail_subjob(handle, util::Status(util::ErrorCode::kInternal,
                                       "no contact resolver installed"));
      continue;
    }
    auto gatekeeper = resolver(sj->request.resource_manager_contact);
    if (!gatekeeper.is_ok()) {
      fail_subjob(handle, gatekeeper.status());
      continue;
    }
    sj->gatekeeper = gatekeeper.value();
    set_state(*sj, SubjobState::kSubmitting);
    sj->submitted_at = owner_->engine().now();
    arm_timeout(*sj);
    rsl::JobRequest to_send = sj->request;
    inject_barrier_env(to_send, owner_->endpoint().id(), id_, handle);
    const std::uint32_t inc = sj->incarnation;
    notify_subjob(*sj);
    submission_in_flight_ = true;
    owner_->gram().submit(
        sj->gatekeeper, to_send.to_spec().to_string(), config_.rpc_timeout,
        [this, handle, inc, alive = alive_, client = &owner_->gram(),
         gatekeeper = sj->gatekeeper,
         timeout = config_.rpc_timeout](util::Result<gram::JobId> result) {
          if (!*alive) {
            // The request was destroyed while the submit was in flight; any
            // job that did get created is an orphan — reap it.
            if (result.is_ok()) {
              client->forget(result.value());
              client->cancel(gatekeeper, result.value(), timeout, nullptr);
            }
            return;
          }
          submission_in_flight_ = false;
          on_accepted(handle, inc, std::move(result));
          pump_submissions();
        },
        [this, handle, inc,
         alive = alive_](const gram::JobStateChange& change) {
          if (!*alive) return;
          on_gram_state(handle, inc, change);
        });
    return;  // one submission at a time
  }
}

void CoallocationRequest::on_accepted(SubjobHandle handle,
                                      std::uint32_t incarnation,
                                      util::Result<gram::JobId> result) {
  Subjob* sj = find(handle);
  if (sj == nullptr || sj->incarnation != incarnation ||
      sj->state != SubjobState::kSubmitting) {
    // The slot was edited or failed while the request was in flight; any
    // job that did get created is an orphan — reap it.
    if (result.is_ok() && sj != nullptr &&
        sj->gatekeeper != net::kInvalidNode) {
      owner_->gram().cancel(sj->gatekeeper, result.value(),
                            config_.rpc_timeout, nullptr);
    }
    return;
  }
  if (!result.is_ok()) {
    fail_subjob(handle, result.status());
    return;
  }
  sj->gram_job = result.value();
  sj->accepted_at = owner_->engine().now();
  set_state(*sj, SubjobState::kPending);
  if (config_.serialize_until_checkin) hold_handle_ = handle;
  arm_liveness_probe(*sj);
  notify_subjob(*sj);
  // Replay check-ins that raced ahead of this accept reply.
  if (!sj->early_checkins.empty()) {
    auto buffered = std::move(sj->early_checkins);
    sj->early_checkins.clear();
    for (auto& [src, msg] : buffered) {
      on_checkin(src, msg);
    }
  }
}

void CoallocationRequest::on_gram_state(SubjobHandle handle,
                                        std::uint32_t incarnation,
                                        const gram::JobStateChange& change) {
  Subjob* sj = find(handle);
  if (sj == nullptr || sj->incarnation != incarnation) return;
  if (is_request_terminal(state_)) return;
  switch (change.state) {
    case gram::JobState::kActive:
      if (sj->state == SubjobState::kPending) {
        set_state(*sj, SubjobState::kActive);
        sj->active_at = owner_->engine().now();
        notify_subjob(*sj);
      }
      return;
    case gram::JobState::kFailed: {
      if (sj->state == SubjobState::kFailed ||
          sj->state == SubjobState::kDeleted) {
        return;
      }
      const util::Status why(change.error, "GRAM: " + change.message);
      if (sj->state == SubjobState::kReleased) {
        // Post-release failure: a monitoring event, not (by default) fatal
        // to the ensemble (§3.4).
        set_state(*sj, SubjobState::kFailed);
        sj->failure = why;
        notify_subjob(*sj);
        if (config_.abort_on_post_release_failure) {
          abort("post-release failure: " + change.message);
        } else {
          maybe_done();
        }
        return;
      }
      fail_subjob(handle, why);
      return;
    }
    case gram::JobState::kDone:
      if (sj->state == SubjobState::kReleased) {
        set_state(*sj, SubjobState::kDone);
        notify_subjob(*sj);
        maybe_done();
      } else if (!is_subjob_terminal(sj->state)) {
        fail_subjob(handle,
                    util::Status(util::ErrorCode::kInternal,
                                 "job exited before barrier release"));
      }
      return;
    case gram::JobState::kPending:
    case gram::JobState::kUnsubmitted:
      return;
  }
}

// ---- barrier ----------------------------------------------------------------

void CoallocationRequest::on_checkin(net::NodeId src,
                                     const CheckinMessage& msg) {
  Subjob* sj = find(msg.subjob);
  if (sj == nullptr || is_request_terminal(state_)) {
    // Unknown slot or dead request: tell the orphan process to exit.
    AbortMessage abort_msg{id_, "request no longer live"};
    util::Writer w;
    abort_msg.encode(w);
    owner_->endpoint().notify(src, kNotifyAbort, w.take());
    return;
  }
  if (sj->gram_job == 0 && sj->state == SubjobState::kSubmitting) {
    // The check-in overtook the GRAM accept reply (possible under latency
    // jitter): hold it until the job id is known.
    sj->early_checkins.emplace_back(src, msg);
    return;
  }
  if (msg.gram_job != sj->gram_job || is_subjob_terminal(sj->state)) {
    // Stale incarnation (substituted or failed slot): reap the process.
    AbortMessage abort_msg{id_, "subjob superseded"};
    util::Writer w;
    abort_msg.encode(w);
    owner_->endpoint().notify(src, kNotifyAbort, w.take());
    return;
  }
  if (!msg.ok) {
    fail_subjob(msg.subjob,
                util::Status(util::ErrorCode::kInternal,
                             "process " + std::to_string(msg.rank) +
                                 " reported failed startup: " + msg.message));
    return;
  }
  const auto count = static_cast<std::size_t>(sj->request.count);
  if (sj->process_nodes.size() != count) {
    sj->process_nodes.assign(count, net::kInvalidNode);
    sj->checked.assign(count, false);
  }
  if (msg.rank < 0 || static_cast<std::size_t>(msg.rank) >= count) {
    GRID_LOG(log_, kWarn) << "check-in with out-of-range rank " << msg.rank;
    return;
  }
  const auto rank = static_cast<std::size_t>(msg.rank);
  if (sj->checked[rank]) return;  // duplicate
  sj->checked[rank] = true;
  sj->process_nodes[rank] = src;
  ++sj->checked_count;
  if (sj->checked_count == sj->request.count) {
    set_state(*sj, SubjobState::kCheckedIn);
    sj->checked_in_at = owner_->engine().now();
    owner_->engine().cancel(sj->timeout_event);
    owner_->engine().cancel(sj->probe_event);
    notify_subjob(*sj);
    if (hold_handle_ == sj->handle) {
      hold_handle_ = 0;
      pump_submissions();
    }
    if (state_ == RequestState::kReleased) {
      // A late optional subjob joins the running computation (§3.2).
      release_subjob(*sj);
    } else {
      maybe_release();
    }
  }
}

void CoallocationRequest::maybe_release() {
  if (state_ != RequestState::kCommitted) return;
  std::size_t live = 0;
  for (SubjobHandle h : order_) {
    const Subjob* sj = find(h);
    if (sj == nullptr || !is_live(*sj)) continue;
    ++live;
    if (sj->request.start_type == rsl::SubjobStartType::kOptional) continue;
    if (sj->state != SubjobState::kCheckedIn) return;  // barrier not full
  }
  if (live == 0) {
    abort("no live subjobs remain in the committed request");
    return;
  }
  // Release: build the final configuration over fully checked-in subjobs
  // (insertion order), then let every process out of the barrier.
  state_ = RequestState::kReleased;
  released_at_ = owner_->engine().now();
  config_table_ = RuntimeConfig{};
  config_table_.request = id_;
  for (SubjobHandle h : order_) {
    Subjob* sj = find(h);
    if (sj == nullptr || !is_live(*sj)) continue;
    if (sj->state != SubjobState::kCheckedIn) continue;  // pending optional
    SubjobLayout layout;
    layout.subjob = sj->handle;
    layout.index = static_cast<std::int32_t>(config_table_.subjobs.size());
    layout.size = sj->request.count;
    layout.rank_base = config_table_.total_processes;
    layout.leader = sj->process_nodes.empty() ? net::kInvalidNode
                                              : sj->process_nodes.front();
    layout.contact = sj->request.resource_manager_contact;
    config_table_.total_processes += sj->request.count;
    config_table_.subjobs.push_back(std::move(layout));
  }
  for (SubjobHandle h : order_) {
    Subjob* sj = find(h);
    if (sj == nullptr || sj->state != SubjobState::kCheckedIn) continue;
    set_state(*sj, SubjobState::kReleased);
    sj->released = true;
    sj->released_at = owner_->engine().now();
    for (std::int32_t rank = 0; rank < sj->request.count; ++rank) {
      send_release(*sj, rank);
    }
    notify_subjob(*sj);
  }
  if (callbacks_.on_released) callbacks_.on_released(config_table_);
}

void CoallocationRequest::release_subjob(Subjob& sj) {
  // Late join: extend the configuration without renumbering existing ranks.
  SubjobLayout layout;
  layout.subjob = sj.handle;
  layout.index = static_cast<std::int32_t>(config_table_.subjobs.size());
  layout.size = sj.request.count;
  layout.rank_base = config_table_.total_processes;
  layout.leader = sj.process_nodes.empty() ? net::kInvalidNode
                                           : sj.process_nodes.front();
  layout.contact = sj.request.resource_manager_contact;
  config_table_.total_processes += sj.request.count;
  config_table_.subjobs.push_back(std::move(layout));
  set_state(sj, SubjobState::kReleased);
  sj.released = true;
  sj.released_at = owner_->engine().now();
  for (std::int32_t rank = 0; rank < sj.request.count; ++rank) {
    send_release(sj, rank);
  }
  notify_subjob(sj);
}

void CoallocationRequest::send_release(const Subjob& sj, std::int32_t rank) {
  const SubjobLayout* layout = nullptr;
  for (const SubjobLayout& l : config_table_.subjobs) {
    if (l.subjob == sj.handle) {
      layout = &l;
      break;
    }
  }
  if (layout == nullptr) return;
  ReleaseMessage msg;
  msg.request = id_;
  msg.info.config = config_table_;
  msg.info.subjob_index = layout->index;
  msg.info.local_rank = rank;
  msg.info.global_rank = layout->rank_base + rank;
  msg.info.subjob_members = sj.process_nodes;
  util::Writer w;
  msg.encode(w);
  owner_->endpoint().notify(sj.process_nodes[static_cast<std::size_t>(rank)],
                            kNotifyRelease, w.take());
}

// ---- commit / abort / failure ----------------------------------------------

util::Status CoallocationRequest::commit() {
  if (state_ != RequestState::kEditing) {
    return {util::ErrorCode::kFailedPrecondition,
            "commit is only valid from the editing phase"};
  }
  if (order_.empty()) {
    return {util::ErrorCode::kFailedPrecondition,
            "cannot commit an empty request"};
  }
  start();  // commit implies the pipeline is running
  state_ = RequestState::kCommitted;
  maybe_release();
  return util::Status::ok();
}

void CoallocationRequest::arm_timeout(Subjob& sj) {
  if (config_.startup_timeout <= 0) return;
  owner_->engine().cancel(sj.timeout_event);
  sj.timeout_event = owner_->engine().schedule_after(
      config_.startup_timeout, [this, handle = sj.handle] {
        Subjob* s = find(handle);
        if (s == nullptr || is_subjob_terminal(s->state) ||
            s->state == SubjobState::kCheckedIn ||
            s->state == SubjobState::kReleased) {
          return;
        }
        fail_subjob(handle,
                    util::Status(util::ErrorCode::kTimeout,
                                 "subjob did not check in before the startup "
                                 "deadline"));
      });
}

void CoallocationRequest::arm_liveness_probe(Subjob& sj) {
  if (config_.liveness_probe_interval <= 0) return;
  owner_->engine().cancel(sj.probe_event);
  sj.probe_event = owner_->engine().schedule_after(
      config_.liveness_probe_interval,
      [this, handle = sj.handle, inc = sj.incarnation] {
        probe_liveness(handle, inc);
      });
}

void CoallocationRequest::probe_liveness(SubjobHandle handle,
                                         std::uint32_t incarnation) {
  Subjob* sj = find(handle);
  if (sj == nullptr || sj->incarnation != incarnation ||
      is_request_terminal(state_)) {
    return;
  }
  if (sj->state != SubjobState::kPending &&
      sj->state != SubjobState::kActive) {
    return;  // barrier reached or slot edited: probing is over
  }
  owner_->gram().ping(
      sj->gatekeeper, config_.rpc_timeout,
      [this, handle, incarnation, alive = alive_](util::Status status) {
        if (!*alive) return;
        Subjob* s = find(handle);
        if (s == nullptr || s->incarnation != incarnation ||
            is_request_terminal(state_) ||
            (s->state != SubjobState::kPending &&
             s->state != SubjobState::kActive)) {
          return;
        }
        if (status.is_ok()) {
          s->probe_misses = 0;
          arm_liveness_probe(*s);
          return;
        }
        if (++s->probe_misses >= config_.liveness_failures_allowed) {
          fail_subjob(handle,
                      util::Status(util::ErrorCode::kUnavailable,
                                   "resource manager unresponsive to " +
                                       std::to_string(s->probe_misses) +
                                       " consecutive liveness probes"));
          return;
        }
        arm_liveness_probe(*s);
      });
}

void CoallocationRequest::cancel_gram_job(Subjob& sj) {
  if (sj.gram_job == 0 || sj.gatekeeper == net::kInvalidNode) return;
  owner_->gram().forget(sj.gram_job);
  owner_->gram().cancel(sj.gatekeeper, sj.gram_job, config_.rpc_timeout,
                        nullptr);
  sj.gram_job = 0;
}

void CoallocationRequest::abort_subjob_processes(Subjob& sj,
                                                 const std::string& reason) {
  AbortMessage msg{id_, reason};
  util::Writer w;
  msg.encode(w);
  // One encode, one buffer: every checked-in process gets a share of the
  // same pooled frame.
  const sim::Payload frame =
      net::Endpoint::encode_notify(kNotifyAbort, w.take());
  for (std::size_t rank = 0; rank < sj.process_nodes.size(); ++rank) {
    if (sj.checked[rank] && sj.process_nodes[rank] != net::kInvalidNode) {
      owner_->endpoint().notify_frame(sj.process_nodes[rank], frame.share());
    }
  }
}

void CoallocationRequest::fail_subjob(SubjobHandle handle, util::Status why) {
  Subjob* sj = find(handle);
  if (sj == nullptr || is_subjob_terminal(sj->state)) return;
  owner_->engine().cancel(sj->timeout_event);
  owner_->engine().cancel(sj->probe_event);
  cancel_gram_job(*sj);
  abort_subjob_processes(*sj, "subjob failed: " + why.message());
  set_state(*sj, SubjobState::kFailed);
  sj->failure = why;
  if (hold_handle_ == handle) {
    hold_handle_ = 0;
    pump_submissions();
  }
  GRID_LOG(log_, kInfo) << "subjob " << handle << " ("
                        << sj->request.resource_manager_contact
                        << ") failed: " << why.to_string();
  const rsl::SubjobStartType type = sj->request.start_type;
  // The agent callback runs before category handling so a failure can be
  // repaired (substitute/remove) in the same turn (§3.2).
  notify_subjob(*sj);
  if (is_request_terminal(state_)) return;  // agent aborted in the callback
  // If the agent edited the slot during the callback it is no longer a
  // failed member of the request: category handling does not apply.
  sj = find(handle);
  if (sj == nullptr || sj->state != SubjobState::kFailed) return;
  switch (type) {
    case rsl::SubjobStartType::kRequired:
      abort("required subjob on '" + sj->request.resource_manager_contact +
            "' failed: " + why.message());
      return;
    case rsl::SubjobStartType::kInteractive:
      if (state_ == RequestState::kCommitted) {
        // Edits are frozen after commit, so an interactive failure that the
        // agent could not repair beforehand is unrecoverable.
        abort("interactive subjob on '" +
              sj->request.resource_manager_contact +
              "' failed after commit: " + why.message());
      }
      return;
    case rsl::SubjobStartType::kOptional:
      if (state_ == RequestState::kReleased) maybe_done();
      return;
  }
}

void CoallocationRequest::abort(const std::string& reason) {
  if (is_request_terminal(state_)) return;
  state_ = RequestState::kAborted;  // set first: callbacks see a dead request
  for (SubjobHandle h : order_) {
    Subjob* sj = find(h);
    if (sj == nullptr) continue;
    owner_->engine().cancel(sj->timeout_event);
    owner_->engine().cancel(sj->probe_event);
    if (sj->state == SubjobState::kDeleted) continue;
    cancel_gram_job(*sj);
    abort_subjob_processes(*sj, reason);
    if (sj->state != SubjobState::kFailed &&
        sj->state != SubjobState::kDone) {
      set_state(*sj, SubjobState::kFailed);
      sj->failure = util::Status(util::ErrorCode::kAborted, reason);
      notify_subjob(*sj);
    }
  }
  finish(util::Status(util::ErrorCode::kAborted, reason));
}

void CoallocationRequest::maybe_done() {
  if (state_ != RequestState::kReleased) return;
  bool any = false;
  for (SubjobHandle h : order_) {
    const Subjob* sj = find(h);
    if (sj == nullptr || !is_live(*sj)) continue;
    any = true;
    if (sj->state != SubjobState::kDone) return;
  }
  if (!any) {
    finish(util::Status(util::ErrorCode::kAborted,
                        "every subjob failed after release"));
    return;
  }
  finish(util::Status::ok());
}

void CoallocationRequest::finish(util::Status status) {
  if (!is_request_terminal(state_)) {
    state_ = status.is_ok() ? RequestState::kDone : RequestState::kAborted;
  }
  if (callbacks_.on_terminal) {
    auto cb = callbacks_.on_terminal;  // survives agent-side destroy_request
    cb(status);
  }
}

// ---- monitoring --------------------------------------------------------------

void CoallocationRequest::notify_subjob(const Subjob& sj) {
  if (callbacks_.on_subjob) {
    callbacks_.on_subjob(sj.handle, sj.state, sj.failure);
  }
}

std::vector<SubjobHandle> CoallocationRequest::subjobs() const {
  return order_;
}

void CoallocationRequest::agg_add(const Subjob& sj) {
  ++agg_.by_state[static_cast<std::size_t>(sj.state)];
  if (sj.state != SubjobState::kFailed && sj.state != SubjobState::kDeleted) {
    ++agg_.live_subjobs;
    agg_.live_processes += sj.request.count;
    if (sj.state == SubjobState::kReleased ||
        sj.state == SubjobState::kDone) {
      agg_.released_processes += sj.request.count;
    }
  }
}

void CoallocationRequest::agg_remove(const Subjob& sj) {
  --agg_.by_state[static_cast<std::size_t>(sj.state)];
  if (sj.state != SubjobState::kFailed && sj.state != SubjobState::kDeleted) {
    --agg_.live_subjobs;
    agg_.live_processes -= sj.request.count;
    if (sj.state == SubjobState::kReleased ||
        sj.state == SubjobState::kDone) {
      agg_.released_processes -= sj.request.count;
    }
  }
}

void CoallocationRequest::set_state(Subjob& sj, SubjobState to) {
  agg_remove(sj);
  sj.state = to;
  agg_add(sj);
}

util::Result<CoallocationRequest::SubjobBrief>
CoallocationRequest::subjob_brief(SubjobHandle handle) const {
  const Subjob* sj = find(handle);
  if (sj == nullptr) {
    return util::small_status(util::ErrorCode::kNotFound, "unknown subjob");
  }
  SubjobBrief b;
  b.state = sj->state;
  b.start_type = sj->request.start_type;
  b.count = sj->request.count;
  b.gram_job = sj->gram_job;
  b.gatekeeper = sj->gatekeeper;
  return b;
}

util::Result<SubjobView> CoallocationRequest::subjob(
    SubjobHandle handle) const {
  const Subjob* sj = find(handle);
  if (sj == nullptr) {
    return util::Status(util::ErrorCode::kNotFound, "unknown subjob");
  }
  SubjobView v;
  v.handle = sj->handle;
  v.state = sj->state;
  v.start_type = sj->request.start_type;
  v.contact = sj->request.resource_manager_contact;
  v.label = sj->request.label;
  v.count = sj->request.count;
  v.checked_in = sj->checked_count;
  v.gram_job = sj->gram_job;
  v.gatekeeper = sj->gatekeeper;
  v.failure = sj->failure;
  v.submitted_at = sj->submitted_at;
  v.accepted_at = sj->accepted_at;
  v.active_at = sj->active_at;
  v.checked_in_at = sj->checked_in_at;
  v.released_at = sj->released_at;
  return v;
}

util::Result<rsl::JobRequest> CoallocationRequest::subjob_request(
    SubjobHandle handle) const {
  const Subjob* sj = find(handle);
  if (sj == nullptr) {
    return util::Status(util::ErrorCode::kNotFound, "unknown subjob");
  }
  return sj->request;
}

SubjobHandle CoallocationRequest::find_labeled(std::string_view label) const {
  for (SubjobHandle h : order_) {
    const Subjob* sj = find(h);
    if (sj != nullptr && is_live(*sj) && sj->request.label == label) {
      return h;
    }
  }
  return 0;
}

std::size_t CoallocationRequest::live_subjob_count() const {
  std::size_t n = 0;
  for (SubjobHandle h : order_) {
    const Subjob* sj = find(h);
    if (sj != nullptr && is_live(*sj)) ++n;
  }
  return n;
}

std::int32_t CoallocationRequest::total_live_processes() const {
  std::int32_t n = 0;
  for (SubjobHandle h : order_) {
    const Subjob* sj = find(h);
    if (sj != nullptr && is_live(*sj)) n += sj->request.count;
  }
  return n;
}

}  // namespace grid::core
