// Core co-allocation types: request and subjob identities and states.
#pragma once

#include <cstdint>
#include <string>

#include "simkit/status.hpp"
#include "simkit/time.hpp"

namespace grid::core {

/// Identity of a co-allocation request, unique per co-allocator.
using RequestId = std::uint64_t;

/// Stable identity of a subjob slot within a request.  A handle survives
/// substitution (the slot is re-submitted with a new GRAM job underneath),
/// which is what lets agents reason about "the same resource slot" across
/// interactive edits.
using SubjobHandle = std::uint64_t;

/// Subjob lifecycle within the co-allocation protocol (paper §3.2 + §4.1).
enum class SubjobState : std::uint8_t {
  kUnsubmitted = 0,  // edited into the request, not yet sent
  kSubmitting,       // GSI handshake / GRAM request in flight
  kPending,          // accepted by the gatekeeper, queued locally
  kActive,           // processes created by the local scheduler
  kCheckedIn,        // every process reported successful startup (barrier)
  kReleased,         // barrier exited; application running
  kDone,             // all processes exited successfully
  kFailed,           // failed, timed out, or was terminated
  kDeleted,          // edited out of the request
};

std::string to_string(SubjobState s);

constexpr bool is_subjob_terminal(SubjobState s) {
  return s == SubjobState::kDone || s == SubjobState::kFailed ||
         s == SubjobState::kDeleted;
}

/// Overall state of a co-allocation request.
enum class RequestState : std::uint8_t {
  kEditing = 0,  // accepting edits; submissions may be in flight
  kCommitted,    // commit issued; waiting for the barrier to fill
  kReleased,     // barrier released; monitoring/control phase
  kDone,         // every live subjob ran to completion
  kAborted,      // terminated (required failure, explicit abort, or kill)
};

std::string to_string(RequestState s);

constexpr bool is_request_terminal(RequestState s) {
  return s == RequestState::kDone || s == RequestState::kAborted;
}

}  // namespace grid::core
