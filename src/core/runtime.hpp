// Post-release runtime configuration (paper §3.3).
//
// The barrier release message carries everything a process needs for the
// configuration mechanisms: the number of subjobs, the size of each, rank
// bases, a leader address per subjob (inter-subjob communication), and the
// member addresses of the process's own subjob (intra-subjob
// communication).  No extra rendezvous round is needed (DESIGN.md §5.6).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "net/network.hpp"
#include "simkit/codec.hpp"

namespace grid::core {

/// One subjob's slot in the released configuration.
struct SubjobLayout {
  SubjobHandle subjob = 0;
  std::int32_t index = 0;      // position in the configuration
  std::int32_t size = 0;       // processes in the subjob
  std::int32_t rank_base = 0;  // global rank of the subjob's rank 0
  net::NodeId leader = net::kInvalidNode;  // rank-0 process address
  std::string contact;         // resource manager contact (diagnostics)

  bool operator==(const SubjobLayout&) const = default;
};

/// The ensemble-wide configuration shared by all released processes.
struct RuntimeConfig {
  RequestId request = 0;
  std::int32_t total_processes = 0;
  std::vector<SubjobLayout> subjobs;

  void encode(util::Writer& w) const;
  static RuntimeConfig decode(util::Reader& r);

  bool operator==(const RuntimeConfig&) const = default;
};

/// Per-process release payload: the shared configuration plus this
/// process's coordinates and its own subjob's member addresses.
struct ReleaseInfo {
  RuntimeConfig config;
  std::int32_t subjob_index = 0;
  std::int32_t local_rank = 0;
  std::int32_t global_rank = 0;
  std::vector<net::NodeId> subjob_members;  // address of each local rank

  void encode(util::Writer& w) const;
  static ReleaseInfo decode(util::Reader& r);
};

}  // namespace grid::core
