#include "core/coreserver.hpp"

namespace grid::core {

struct NetworkCoReserver::Flow {
  std::vector<std::string> contacts;
  std::vector<net::NodeId> gatekeepers;
  Options options;
  DoneFn on_done;
  sim::Time probe = 0;
  std::size_t next = 0;  // contact index being reserved in this probe
  std::vector<Hold> holds;
};

void NetworkCoReserver::acquire(std::vector<std::string> contacts,
                                Options options, DoneFn on_done) {
  if (contacts.empty()) {
    on_done(util::Status(util::ErrorCode::kInvalidArgument,
                         "no contacts to co-reserve"));
    return;
  }
  if (options.step <= 0 || options.duration <= 0) {
    on_done(util::Status(util::ErrorCode::kInvalidArgument,
                         "step and duration must be positive"));
    return;
  }
  auto flow = std::make_shared<Flow>();
  flow->contacts = std::move(contacts);
  flow->options = options;
  flow->on_done = std::move(on_done);
  flow->probe = options.earliest;
  // Resolve every contact up front; an unknown contact fails fast.
  for (const std::string& contact : flow->contacts) {
    auto gatekeeper = resolver_ ? resolver_(contact)
                                : util::Result<net::NodeId>(util::Status(
                                      util::ErrorCode::kInternal,
                                      "no contact resolver installed"));
    if (!gatekeeper.is_ok()) {
      flow->on_done(gatekeeper.status());
      return;
    }
    flow->gatekeepers.push_back(gatekeeper.value());
  }
  try_probe(flow);
}

void NetworkCoReserver::try_probe(std::shared_ptr<Flow> flow) {
  if (flow->probe > flow->options.horizon) {
    flow->on_done(util::Status(
        util::ErrorCode::kResourceExhausted,
        "no common reservation window before the horizon"));
    return;
  }
  flow->next = 0;
  flow->holds.clear();
  reserve_next(std::move(flow));
}

void NetworkCoReserver::reserve_next(std::shared_ptr<Flow> flow) {
  if (flow->next == flow->contacts.size()) {
    // Phase 2 commit: every resource granted the window.
    flow->on_done(std::move(flow->holds));
    return;
  }
  const std::size_t i = flow->next;
  client_->reserve(
      flow->gatekeepers[i], flow->probe, flow->probe + flow->options.duration,
      flow->options.count, flow->options.rpc_timeout,
      [this, flow](util::Result<gram::Client::ReservationHandle> result) {
        if (result.is_ok()) {
          Hold hold;
          hold.contact = flow->contacts[flow->next];
          hold.gatekeeper = flow->gatekeepers[flow->next];
          hold.reservation = result.value().id;
          hold.start = result.value().start;
          hold.end = result.value().end;
          flow->holds.push_back(std::move(hold));
          ++flow->next;
          reserve_next(flow);
          return;
        }
        // Unsupported resources can never succeed: give up immediately.
        if (result.status().code() == util::ErrorCode::kFailedPrecondition) {
          release(flow->holds);
          flow->on_done(result.status());
          return;
        }
        // Phase 2 abort: roll back and try the next window.
        release(flow->holds);
        flow->probe += flow->options.step;
        try_probe(flow);
      });
}

void NetworkCoReserver::release(const std::vector<Hold>& holds) {
  for (const Hold& hold : holds) {
    client_->cancel_reservation(hold.gatekeeper, hold.reservation,
                                30 * sim::kSecond, nullptr);
  }
}

std::vector<rsl::JobRequest> NetworkCoReserver::build_requests(
    const std::vector<Hold>& holds, std::int32_t count,
    const std::string& executable, rsl::SubjobStartType start_type) {
  std::vector<rsl::JobRequest> out;
  out.reserve(holds.size());
  for (const Hold& hold : holds) {
    rsl::JobRequest j;
    j.resource_manager_contact = hold.contact;
    j.executable = executable;
    j.count = count;
    j.start_type = start_type;
    j.reservation_id = hold.reservation;
    out.push_back(std::move(j));
  }
  return out;
}

}  // namespace grid::core
