// Ensemble monitoring and control (paper §3.4).
//
// "During the program's execution, it is desirable that we be able to
// monitor and control the ensemble as a collective unit."  The mechanism
// layer already signals per-subjob transitions; EnsembleMonitor aggregates
// them into the collective view: global state transitions (released,
// degraded, done, aborted), a live summary of the resource set, and the
// collective kill operation.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/coallocator.hpp"
#include "core/request.hpp"
#include "simkit/idmap.hpp"

namespace grid::core {

/// Collective state transitions of the ensemble.
enum class GlobalEvent : std::uint8_t {
  kAllPending,   // every live subjob accepted by its local manager
  kAllActive,    // every live subjob's processes are running
  kReleased,     // the barrier released (computation configured & running)
  kDegraded,     // a component failed after release but the ensemble
                 // continues (the [21]-style partial-failure tolerance)
  kDone,         // every live subjob ran to completion
  kAborted,      // the computation was terminated
};

std::string to_string(GlobalEvent e);

class EnsembleMonitor {
 public:
  using EventFn = std::function<void(GlobalEvent)>;

  /// Point-in-time aggregate over the request's subjobs.
  struct Summary {
    std::array<std::size_t, 9> by_state{};  // indexed by SubjobState
    std::size_t live_subjobs = 0;
    std::int32_t live_processes = 0;
    std::int32_t released_processes = 0;
    std::size_t failures = 0;
    RequestState request_state = RequestState::kEditing;

    std::size_t count(SubjobState s) const {
      return by_state[static_cast<std::size_t>(s)];
    }
  };

  EnsembleMonitor() = default;

  /// Wraps user callbacks so the monitor observes every transition; pass
  /// the result to create_request, then bind() the created request.
  RequestCallbacks wrap(RequestCallbacks user);

  void bind(CoallocationRequest* request) { request_ = request; }

  void set_event_handler(EventFn handler) { on_event_ = std::move(handler); }

  Summary summary() const;

  /// Collective control operation (§3.4): kill the whole ensemble.
  void kill() {
    if (request_ != nullptr) request_->kill();
  }

  /// Events observed so far, in order.
  const std::vector<GlobalEvent>& history() const { return history_; }

 private:
  void observe(SubjobHandle handle, SubjobState state,
               const util::Status& why);
  void emit(GlobalEvent event);

  CoallocationRequest* request_ = nullptr;
  RequestCallbacks user_;
  EventFn on_event_;
  std::vector<GlobalEvent> history_;
  bool saw_all_pending_ = false;
  bool saw_all_active_ = false;
};

// ---- heartbeat failure detection -------------------------------------------
//
// §3.4 lists failure modes "ranging from an error report to lack of
// progress".  The lack-of-progress class is the hard one: a crashed or
// partitioned resource manager produces no event at all.  The detector
// turns silence into an explicit verdict by pinging every watched subjob's
// gatekeeper on a fixed beat and escalating consecutive misses
// (healthy -> suspect -> dead); a dead verdict is fed back into the
// mechanism layer as an ordinary subjob failure, so the category semantics
// of §3.2 (required aborts, optional degrades) apply unchanged.

/// Detector opinion of one subjob's resource manager.
enum class SubjobHealth : std::uint8_t {
  kHealthy = 0,
  kSuspect,  // >= misses_to_suspect consecutive beats unanswered
  kDead,     // >= misses_to_dead; verdict delivered, no further beats
};

std::string to_string(SubjobHealth h);

struct HeartbeatConfig {
  /// Beat period.  Each watched subjob's gatekeeper is pinged once per
  /// interval (single-attempt, so the detector — not an RPC retry layer —
  /// does the counting).
  sim::Time interval = 5 * sim::kSecond;
  /// Per-beat reply deadline; an unanswered beat is one miss.
  sim::Time beat_timeout = 2 * sim::kSecond;
  int misses_to_suspect = 1;
  int misses_to_dead = 3;
  /// Keep beating after barrier release (detects post-release deaths that
  /// would otherwise only surface when the application notices).
  bool monitor_released = true;
};

class HeartbeatDetector {
 public:
  /// Fired on every health transition; for kDead the status carries the
  /// cause that is about to be reported to the request.
  using HealthFn =
      std::function<void(SubjobHandle, SubjobHealth, const util::Status&)>;

  /// Watches the request with the given id.  The detector resolves the id
  /// through `mechanisms` on every beat, so it tolerates the request being
  /// destroyed while it is running (it simply stops).
  HeartbeatDetector(Coallocator& mechanisms, RequestId request,
                    HeartbeatConfig config = {});
  ~HeartbeatDetector();

  HeartbeatDetector(const HeartbeatDetector&) = delete;
  HeartbeatDetector& operator=(const HeartbeatDetector&) = delete;

  /// Begins beating (idempotent).  Subjobs become watchable once their
  /// GRAM job is accepted; a substitution (new gram_job) resets the slot's
  /// miss count.
  void start();
  void stop();
  bool running() const { return running_; }

  void set_health_handler(HealthFn handler) {
    on_health_ = std::move(handler);
  }

  /// kHealthy for slots never watched.
  SubjobHealth health(SubjobHandle handle) const;

  std::uint64_t beats_sent() const { return beats_sent_; }
  std::uint64_t beats_answered() const { return beats_answered_; }
  std::uint64_t beats_missed() const { return beats_missed_; }
  /// Dead verdicts delivered to the request.
  std::uint64_t verdicts() const { return verdicts_; }

  const HeartbeatConfig& config() const { return config_; }

 private:
  struct Watch {
    gram::JobId job = 0;  // incarnation tracking: new job resets the watch
    int misses = 0;
    SubjobHealth health = SubjobHealth::kHealthy;
    bool in_flight = false;  // previous beat still outstanding
  };

  void tick();
  void beat(SubjobHandle handle, net::NodeId gatekeeper, gram::JobId job);
  void transition(SubjobHandle handle, Watch& w, SubjobHealth to,
                  const util::Status& why);

  Coallocator* mech_;
  RequestId request_;
  HeartbeatConfig config_;
  HealthFn on_health_;
  sim::IdSlab<Watch> watches_;
  sim::EventId tick_event_;
  bool running_ = false;
  /// Beat replies and timer lambdas check this before touching `this`, so
  /// destroying the detector with beats in flight is safe.
  std::shared_ptr<bool> alive_;
  std::uint64_t beats_sent_ = 0;
  std::uint64_t beats_answered_ = 0;
  std::uint64_t beats_missed_ = 0;
  std::uint64_t verdicts_ = 0;
};

}  // namespace grid::core
