// Ensemble monitoring and control (paper §3.4).
//
// "During the program's execution, it is desirable that we be able to
// monitor and control the ensemble as a collective unit."  The mechanism
// layer already signals per-subjob transitions; EnsembleMonitor aggregates
// them into the collective view: global state transitions (released,
// degraded, done, aborted), a live summary of the resource set, and the
// collective kill operation.
#pragma once

#include <array>
#include <functional>
#include <string>

#include "core/request.hpp"

namespace grid::core {

/// Collective state transitions of the ensemble.
enum class GlobalEvent : std::uint8_t {
  kAllPending,   // every live subjob accepted by its local manager
  kAllActive,    // every live subjob's processes are running
  kReleased,     // the barrier released (computation configured & running)
  kDegraded,     // a component failed after release but the ensemble
                 // continues (the [21]-style partial-failure tolerance)
  kDone,         // every live subjob ran to completion
  kAborted,      // the computation was terminated
};

std::string to_string(GlobalEvent e);

class EnsembleMonitor {
 public:
  using EventFn = std::function<void(GlobalEvent)>;

  /// Point-in-time aggregate over the request's subjobs.
  struct Summary {
    std::array<std::size_t, 9> by_state{};  // indexed by SubjobState
    std::size_t live_subjobs = 0;
    std::int32_t live_processes = 0;
    std::int32_t released_processes = 0;
    std::size_t failures = 0;
    RequestState request_state = RequestState::kEditing;

    std::size_t count(SubjobState s) const {
      return by_state[static_cast<std::size_t>(s)];
    }
  };

  EnsembleMonitor() = default;

  /// Wraps user callbacks so the monitor observes every transition; pass
  /// the result to create_request, then bind() the created request.
  RequestCallbacks wrap(RequestCallbacks user);

  void bind(CoallocationRequest* request) { request_ = request; }

  void set_event_handler(EventFn handler) { on_event_ = std::move(handler); }

  Summary summary() const;

  /// Collective control operation (§3.4): kill the whole ensemble.
  void kill() {
    if (request_ != nullptr) request_->kill();
  }

  /// Events observed so far, in order.
  const std::vector<GlobalEvent>& history() const { return history_; }

 private:
  void observe(SubjobHandle handle, SubjobState state,
               const util::Status& why);
  void emit(GlobalEvent event);

  CoallocationRequest* request_ = nullptr;
  RequestCallbacks user_;
  EventFn on_event_;
  std::vector<GlobalEvent> history_;
  bool saw_all_pending_ = false;
  bool saw_all_active_ = false;
};

}  // namespace grid::core
