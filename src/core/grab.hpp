// GRAB — the Globus Resource Allocation Broker (paper §4.1).
//
// The atomic transaction co-allocator: "All required resources are
// specified at the time the request is made.  The request succeeds if all
// resources required by the application are allocated.  Otherwise, the
// request fails and none of the resources are acquired."
//
// GRAB is the degenerate configuration of the co-allocation mechanism
// layer: every subjob is forced to `required`, the request is committed
// immediately (no editing window), and any failure or timeout rolls the
// whole allocation back.  Its limitations under realistic failure modes
// (§4.3) are what motivated DUROC.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/coallocator.hpp"
#include "core/monitor.hpp"
#include "simkit/idmap.hpp"

namespace grid::core {

class GrabAllocator {
 public:
  struct Callbacks {
    /// Fired when all resources are acquired and the barrier released.
    std::function<void(const RuntimeConfig&)> on_started;
    /// Fired once at the end: OK after the application completes, or the
    /// error that rolled the transaction back.
    std::function<void(const util::Status&)> on_done;
  };

  explicit GrabAllocator(Coallocator& mechanisms) : mech_(&mechanisms) {}

  /// Starts an atomic co-allocation from RSL text.  subjobStartType
  /// attributes are ignored: every subjob is treated as required.  Without
  /// an explicit config the mechanism layer's defaults apply.
  util::Result<RequestId> allocate(
      const std::string& rsl_text, Callbacks callbacks,
      std::optional<RequestConfig> config = std::nullopt);

  /// Same, from typed subjob descriptions.
  util::Result<RequestId> allocate(
      std::vector<rsl::JobRequest> subjobs, Callbacks callbacks,
      std::optional<RequestConfig> config = std::nullopt);

  /// Rolls back / kills an allocation.
  void cancel(RequestId id);

  /// Arms heartbeat failure detection on subsequently allocated requests.
  /// Since every GRAB subjob is required, a dead verdict aborts the whole
  /// transaction immediately ("abort fast") instead of waiting out the
  /// startup deadline — atomicity is preserved, only detection latency
  /// changes.  nullopt disables for later allocations.
  void set_heartbeats(std::optional<HeartbeatConfig> config) {
    heartbeats_ = config;
  }

  /// The detector watching `id`; nullptr when heartbeats were not armed.
  const HeartbeatDetector* detector(RequestId id) const {
    const auto* d = detectors_.find(id);
    return d == nullptr ? nullptr : d->get();
  }

  Coallocator& mechanisms() { return *mech_; }

 private:
  Coallocator* mech_;
  std::optional<HeartbeatConfig> heartbeats_;
  sim::IdSlab<std::unique_ptr<HeartbeatDetector>> detectors_;
};

}  // namespace grid::core
