#include "core/monitor.hpp"

namespace grid::core {

std::string to_string(GlobalEvent e) {
  switch (e) {
    case GlobalEvent::kAllPending:
      return "ALL_PENDING";
    case GlobalEvent::kAllActive:
      return "ALL_ACTIVE";
    case GlobalEvent::kReleased:
      return "RELEASED";
    case GlobalEvent::kDegraded:
      return "DEGRADED";
    case GlobalEvent::kDone:
      return "DONE";
    case GlobalEvent::kAborted:
      return "ABORTED";
  }
  return "?";
}

RequestCallbacks EnsembleMonitor::wrap(RequestCallbacks user) {
  user_ = std::move(user);
  RequestCallbacks cbs;
  cbs.on_subjob = [this](SubjobHandle h, SubjobState s,
                         const util::Status& why) { observe(h, s, why); };
  cbs.on_released = [this](const RuntimeConfig& config) {
    emit(GlobalEvent::kReleased);
    if (user_.on_released) user_.on_released(config);
  };
  cbs.on_terminal = [this](const util::Status& status) {
    emit(status.is_ok() ? GlobalEvent::kDone : GlobalEvent::kAborted);
    if (user_.on_terminal) user_.on_terminal(status);
  };
  return cbs;
}

void EnsembleMonitor::observe(SubjobHandle handle, SubjobState state,
                              const util::Status& why) {
  if (request_ != nullptr) {
    const Summary s = summary();
    // "All X" transitions fire once, when every live subjob has reached at
    // least the given stage.
    if (!saw_all_pending_ && s.live_subjobs > 0 &&
        s.count(SubjobState::kUnsubmitted) == 0 &&
        s.count(SubjobState::kSubmitting) == 0) {
      saw_all_pending_ = true;
      emit(GlobalEvent::kAllPending);
    }
    if (!saw_all_active_ && s.live_subjobs > 0 &&
        s.count(SubjobState::kUnsubmitted) == 0 &&
        s.count(SubjobState::kSubmitting) == 0 &&
        s.count(SubjobState::kPending) == 0) {
      saw_all_active_ = true;
      emit(GlobalEvent::kAllActive);
    }
    if (state == SubjobState::kFailed &&
        s.request_state == RequestState::kReleased) {
      emit(GlobalEvent::kDegraded);
    }
  }
  if (user_.on_subjob) user_.on_subjob(handle, state, why);
}

void EnsembleMonitor::emit(GlobalEvent event) {
  history_.push_back(event);
  if (on_event_) on_event_(event);
}

EnsembleMonitor::Summary EnsembleMonitor::summary() const {
  Summary s;
  if (request_ == nullptr) return s;
  // The request maintains the aggregate incrementally, so building the
  // collective view is O(1) — observe() calls this on every subjob event,
  // which used to make ensemble monitoring O(n²) in subjob count.
  s.request_state = request_->state();
  const CoallocationRequest::SubjobAggregate& a = request_->aggregate();
  s.by_state = a.by_state;
  s.live_subjobs = a.live_subjobs;
  s.live_processes = a.live_processes;
  s.released_processes = a.released_processes;
  s.failures = a.count(SubjobState::kFailed);
  return s;
}

// ---- heartbeat failure detection -------------------------------------------

std::string to_string(SubjobHealth h) {
  switch (h) {
    case SubjobHealth::kHealthy:
      return "HEALTHY";
    case SubjobHealth::kSuspect:
      return "SUSPECT";
    case SubjobHealth::kDead:
      return "DEAD";
  }
  return "?";
}

HeartbeatDetector::HeartbeatDetector(Coallocator& mechanisms,
                                     RequestId request, HeartbeatConfig config)
    : mech_(&mechanisms),
      request_(request),
      config_(config),
      alive_(std::make_shared<bool>(true)) {}

HeartbeatDetector::~HeartbeatDetector() {
  *alive_ = false;
  mech_->engine().cancel(tick_event_);
}

void HeartbeatDetector::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void HeartbeatDetector::stop() {
  running_ = false;
  mech_->engine().cancel(tick_event_);
}

SubjobHealth HeartbeatDetector::health(SubjobHandle handle) const {
  const Watch* w = watches_.find(handle);
  return w == nullptr ? SubjobHealth::kHealthy : w->health;
}

void HeartbeatDetector::tick() {
  if (!running_) return;
  CoallocationRequest* req = mech_->find_request(request_);
  if (req == nullptr || is_request_terminal(req->state())) {
    stop();
    return;
  }
  for (SubjobHandle h : req->subjob_order()) {
    auto brief = req->subjob_brief(h);
    if (!brief.is_ok()) continue;
    const CoallocationRequest::SubjobBrief& v = brief.value();
    const bool watchable =
        v.gram_job != 0 && v.gatekeeper != net::kInvalidNode &&
        (v.state == SubjobState::kPending || v.state == SubjobState::kActive ||
         v.state == SubjobState::kCheckedIn ||
         (config_.monitor_released && v.state == SubjobState::kReleased));
    if (!watchable) continue;
    Watch& w = watches_[h];
    if (w.job != v.gram_job) w = Watch{v.gram_job};  // substituted: fresh slate
    if (w.health == SubjobHealth::kDead) continue;   // verdict already out
    if (w.in_flight) continue;  // previous beat still pending; let it miss
    beat(h, v.gatekeeper, v.gram_job);
  }
  tick_event_ = mech_->engine().schedule_after(
      config_.interval, [this, alive = alive_] {
        if (*alive) tick();
      });
}

void HeartbeatDetector::beat(SubjobHandle handle, net::NodeId gatekeeper,
                             gram::JobId job) {
  ++beats_sent_;
  watches_[handle].in_flight = true;
  // Raw single-attempt ping: a beat the RPC layer silently retried would
  // hide exactly the misses this detector exists to count.
  mech_->endpoint().call(
      gatekeeper, gram::kMethodPing, {}, config_.beat_timeout,
      [this, alive = alive_, handle, job](const util::Status& status,
                                          util::Reader&) {
        if (!*alive) return;
        Watch* wp = watches_.find(handle);
        if (wp == nullptr || wp->job != job) return;  // stale
        Watch& w = *wp;
        w.in_flight = false;
        if (w.health == SubjobHealth::kDead) return;
        if (status.is_ok()) {
          ++beats_answered_;
          w.misses = 0;
          if (w.health == SubjobHealth::kSuspect) {
            transition(handle, w, SubjobHealth::kHealthy, util::Status::ok());
          }
          return;
        }
        ++beats_missed_;
        ++w.misses;
        if (w.misses >= config_.misses_to_dead) {
          const util::Status why(
              util::ErrorCode::kUnavailable,
              "heartbeat detector: " + std::to_string(w.misses) +
                  " consecutive beats unanswered");
          transition(handle, w, SubjobHealth::kDead, why);
          ++verdicts_;
          CoallocationRequest* req = mech_->find_request(request_);
          if (req != nullptr && !is_request_terminal(req->state())) {
            req->report_subjob_failure(handle, why);
          }
        } else if (w.misses >= config_.misses_to_suspect &&
                   w.health == SubjobHealth::kHealthy) {
          transition(handle, w, SubjobHealth::kSuspect,
                     util::Status(util::ErrorCode::kUnavailable,
                                  "heartbeat missed"));
        }
      });
}

void HeartbeatDetector::transition(SubjobHandle handle, Watch& w,
                                   SubjobHealth to, const util::Status& why) {
  w.health = to;
  if (on_health_) on_health_(handle, to, why);
}

}  // namespace grid::core
