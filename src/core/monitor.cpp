#include "core/monitor.hpp"

namespace grid::core {

std::string to_string(GlobalEvent e) {
  switch (e) {
    case GlobalEvent::kAllPending:
      return "ALL_PENDING";
    case GlobalEvent::kAllActive:
      return "ALL_ACTIVE";
    case GlobalEvent::kReleased:
      return "RELEASED";
    case GlobalEvent::kDegraded:
      return "DEGRADED";
    case GlobalEvent::kDone:
      return "DONE";
    case GlobalEvent::kAborted:
      return "ABORTED";
  }
  return "?";
}

RequestCallbacks EnsembleMonitor::wrap(RequestCallbacks user) {
  user_ = std::move(user);
  RequestCallbacks cbs;
  cbs.on_subjob = [this](SubjobHandle h, SubjobState s,
                         const util::Status& why) { observe(h, s, why); };
  cbs.on_released = [this](const RuntimeConfig& config) {
    emit(GlobalEvent::kReleased);
    if (user_.on_released) user_.on_released(config);
  };
  cbs.on_terminal = [this](const util::Status& status) {
    emit(status.is_ok() ? GlobalEvent::kDone : GlobalEvent::kAborted);
    if (user_.on_terminal) user_.on_terminal(status);
  };
  return cbs;
}

void EnsembleMonitor::observe(SubjobHandle handle, SubjobState state,
                              const util::Status& why) {
  if (request_ != nullptr) {
    const Summary s = summary();
    // "All X" transitions fire once, when every live subjob has reached at
    // least the given stage.
    if (!saw_all_pending_ && s.live_subjobs > 0 &&
        s.count(SubjobState::kUnsubmitted) == 0 &&
        s.count(SubjobState::kSubmitting) == 0) {
      saw_all_pending_ = true;
      emit(GlobalEvent::kAllPending);
    }
    if (!saw_all_active_ && s.live_subjobs > 0 &&
        s.count(SubjobState::kUnsubmitted) == 0 &&
        s.count(SubjobState::kSubmitting) == 0 &&
        s.count(SubjobState::kPending) == 0) {
      saw_all_active_ = true;
      emit(GlobalEvent::kAllActive);
    }
    if (state == SubjobState::kFailed &&
        s.request_state == RequestState::kReleased) {
      emit(GlobalEvent::kDegraded);
    }
  }
  if (user_.on_subjob) user_.on_subjob(handle, state, why);
}

void EnsembleMonitor::emit(GlobalEvent event) {
  history_.push_back(event);
  if (on_event_) on_event_(event);
}

EnsembleMonitor::Summary EnsembleMonitor::summary() const {
  Summary s;
  if (request_ == nullptr) return s;
  s.request_state = request_->state();
  for (SubjobHandle h : request_->subjobs()) {
    auto view = request_->subjob(h);
    if (!view.is_ok()) continue;
    const SubjobView& v = view.value();
    ++s.by_state[static_cast<std::size_t>(v.state)];
    if (v.state == SubjobState::kFailed) ++s.failures;
    if (v.state != SubjobState::kFailed &&
        v.state != SubjobState::kDeleted) {
      ++s.live_subjobs;
      s.live_processes += v.count;
      if (v.state == SubjobState::kReleased ||
          v.state == SubjobState::kDone) {
        s.released_processes += v.count;
      }
    }
  }
  return s;
}

}  // namespace grid::core
