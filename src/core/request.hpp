// CoallocationRequest: the co-allocation mechanism layer (paper §3).
//
// One instance manages one multi-resource request through the distributed
// two-phase commit of §3.2:
//
//   1. subjob GRAM requests are issued *sequentially* (the property that
//      produces Figure 4's slope) while their remote processing overlaps;
//   2. application processes perform local checks and check in to the
//      barrier with their own success verdict;
//   3. the agent edits the request (add / remove / substitute) until it
//      calls commit(); once committed and every live non-optional subjob
//      has fully checked in, the barrier is released with the final
//      configuration.
//
// Failure semantics by category (§3.2):
//   required     failure or timeout aborts the whole computation, before
//                or after commit;
//   interactive  failure fires the agent callback; before commit the agent
//                may remove/substitute and the request continues — after
//                commit an unrecoverable interactive failure aborts;
//   optional     failures are ignored; the barrier never waits for
//                optional subjobs, which join as and when they check in
//                (including after release).
//
// Both co-allocators are built from this one mechanism set: DUROC exposes
// it directly; GRAB (atomic transactions) is the degenerate configuration
// "all subjobs required, commit immediately, no edits" (core/grab.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/barrier_protocol.hpp"
#include "core/runtime.hpp"
#include "core/types.hpp"
#include "gram/client.hpp"
#include "rsl/attributes.hpp"
#include "simkit/idmap.hpp"
#include "simkit/log.hpp"

namespace grid::core {

/// Resolves a resourceManagerContact string to a gatekeeper address.
using ContactResolver =
    std::function<util::Result<net::NodeId>(const std::string&)>;

struct RequestConfig {
  /// Timeout of each protocol phase of a GRAM interaction.
  sim::Time rpc_timeout = 30 * sim::kSecond;
  /// Deadline from subjob submission to full barrier check-in; expiry is a
  /// failure handled per the subjob's category.  0 disables.
  sim::Time startup_timeout = 10 * sim::kMinute;
  /// Post-release GRAM failure policy: true kills the whole computation,
  /// false reports the event and lets the application continue (§3.4).
  bool abort_on_post_release_failure = false;
  /// Ablation knob (bench/ablate_pipelining): when true the pipeline holds
  /// the next subjob until the previous one has fully checked in — the
  /// "zero concurrency" behaviour Figure 4 compares against.  The default
  /// (false) overlaps remote processing with later submissions.
  bool serialize_until_checkin = false;
  /// When > 0, the co-allocator pings each waiting subjob's gatekeeper on
  /// this interval; `liveness_failures_allowed` consecutive unanswered
  /// probes fail the subjob immediately instead of waiting for the full
  /// startup deadline (§3.4: failure modes "ranging from an error report
  /// to lack of progress").  0 disables probing.
  sim::Time liveness_probe_interval = 0;
  int liveness_failures_allowed = 2;
};

/// A subjob slot as visible to co-allocation agents.
struct SubjobView {
  SubjobHandle handle = 0;
  SubjobState state = SubjobState::kUnsubmitted;
  rsl::SubjobStartType start_type = rsl::SubjobStartType::kRequired;
  std::string contact;
  std::string label;
  std::int32_t count = 0;
  std::int32_t checked_in = 0;
  gram::JobId gram_job = 0;
  net::NodeId gatekeeper = net::kInvalidNode;
  util::Status failure;
  sim::Time submitted_at = -1;
  sim::Time accepted_at = -1;
  sim::Time active_at = -1;
  sim::Time checked_in_at = -1;
  sim::Time released_at = -1;
};

struct RequestCallbacks {
  /// Fired on every subjob state transition.  For failures the status
  /// carries the cause; interactive-failure edits are made from here.
  std::function<void(SubjobHandle, SubjobState, const util::Status&)>
      on_subjob;
  /// Fired once when the barrier releases, with the final configuration.
  std::function<void(const RuntimeConfig&)> on_released;
  /// Fired once when the request terminates: OK when every live subjob ran
  /// to completion, an error when aborted.
  std::function<void(const util::Status&)> on_terminal;
};

class Coallocator;

class CoallocationRequest {
 public:
  CoallocationRequest(Coallocator& owner, RequestId id,
                      RequestCallbacks callbacks, RequestConfig config);
  ~CoallocationRequest();

  CoallocationRequest(const CoallocationRequest&) = delete;
  CoallocationRequest& operator=(const CoallocationRequest&) = delete;

  RequestId id() const { return id_; }
  RequestState state() const { return state_; }

  // ---- editing operations (§3.2: add / delete / substitute) --------------

  /// Appends a subjob.  Before start() it is queued; after start() it is
  /// submitted when the pipeline reaches it.  Rejected after commit().
  util::Result<SubjobHandle> add_subjob(rsl::JobRequest request);

  /// Parses a '+' multi-request and adds every subjob.
  util::Status add_rsl(const std::string& rsl_text);

  /// Edits a subjob out of the request.  Its GRAM job (if any) is
  /// cancelled and its processes aborted.  Rejected after commit().
  util::Status remove_subjob(SubjobHandle handle);

  /// Replaces a subjob's specification; the slot keeps its handle and is
  /// re-submitted.  Rejected after commit().
  util::Status substitute_subjob(SubjobHandle handle, rsl::JobRequest request);

  // ---- lifecycle ----------------------------------------------------------

  /// Begins the sequential submission pipeline (idempotent).
  void start();

  /// Enters the commit phase: edits are frozen and the barrier releases
  /// once every live non-optional subjob has checked in.  Fails if no
  /// submissions were started or the request already left the edit phase.
  util::Status commit();

  /// Aborts the computation: cancels all GRAM jobs, aborts all checked-in
  /// processes, and reports kAborted.
  void abort(const std::string& reason);

  /// Control operation (§3.4): kills the ensemble, valid in any phase.
  void kill() { abort("killed by control operation"); }

  /// External failure verdict (e.g. from a heartbeat detector): fails the
  /// subjob with the category semantics of §3.2, exactly as an internally
  /// observed GRAM failure would.  No-op on unknown or already-terminal
  /// slots, so a late verdict against an edited slot is harmless.
  void report_subjob_failure(SubjobHandle handle, util::Status why) {
    fail_subjob(handle, std::move(why));
  }

  // ---- monitoring (§3.4) --------------------------------------------------

  /// Aggregate over all subjob slots, maintained incrementally at every
  /// transition — reading it is O(1) no matter how many subjobs the
  /// request carries, so per-event monitors stay off the O(n²) cliff.
  struct SubjobAggregate {
    std::array<std::size_t, 9> by_state{};  // indexed by SubjobState
    std::size_t live_subjobs = 0;           // not failed, not deleted
    std::int32_t live_processes = 0;
    std::int32_t released_processes = 0;  // live and released or done

    std::size_t count(SubjobState s) const {
      return by_state[static_cast<std::size_t>(s)];
    }
  };

  /// Cheap fixed-size view of one subjob slot: everything periodic
  /// monitors (heartbeats, summaries) need, with no string copies.
  struct SubjobBrief {
    SubjobState state = SubjobState::kUnsubmitted;
    rsl::SubjobStartType start_type = rsl::SubjobStartType::kRequired;
    std::int32_t count = 0;
    gram::JobId gram_job = 0;
    net::NodeId gatekeeper = net::kInvalidNode;
  };

  std::vector<SubjobHandle> subjobs() const;
  /// Insertion-order slot handles without the copy subjobs() makes.
  const std::vector<SubjobHandle>& subjob_order() const { return order_; }
  const SubjobAggregate& aggregate() const { return agg_; }
  util::Result<SubjobBrief> subjob_brief(SubjobHandle handle) const;
  util::Result<SubjobView> subjob(SubjobHandle handle) const;
  /// The full specification currently bound to a slot (agents use this to
  /// build substitutes from the failed subjob's shape).
  util::Result<rsl::JobRequest> subjob_request(SubjobHandle handle) const;
  /// First live subjob whose RSL label matches; 0 when absent.  Labels are
  /// how Figure 1-style requests name their logical pieces.
  SubjobHandle find_labeled(std::string_view label) const;
  /// Live subjobs: edited in and not failed/deleted.
  std::size_t live_subjob_count() const;
  std::int32_t total_live_processes() const;
  sim::Time released_at() const { return released_at_; }

  /// The configuration sent at release (valid once state >= kReleased).
  const RuntimeConfig& runtime_config() const { return config_table_; }

 private:
  friend class Coallocator;

  struct Subjob {
    SubjobHandle handle = 0;
    rsl::JobRequest request;
    SubjobState state = SubjobState::kUnsubmitted;
    std::uint32_t incarnation = 0;
    net::NodeId gatekeeper = net::kInvalidNode;
    gram::JobId gram_job = 0;
    std::vector<net::NodeId> process_nodes;  // indexed by local rank
    std::vector<bool> checked;
    std::int32_t checked_count = 0;
    bool queued = false;    // waiting in the submission pipeline
    bool released = false;
    util::Status failure;
    sim::EventId timeout_event;
    sim::EventId probe_event;
    int probe_misses = 0;
    /// Check-ins that overtook the GRAM accept reply on a jittery network;
    /// replayed once the job id is known.
    std::vector<std::pair<net::NodeId, CheckinMessage>> early_checkins;
    sim::Time submitted_at = -1;
    sim::Time accepted_at = -1;
    sim::Time active_at = -1;
    sim::Time checked_in_at = -1;
    sim::Time released_at = -1;
  };

  // Submission pipeline.
  void enqueue_submission(SubjobHandle handle);
  void pump_submissions();
  void on_accepted(SubjobHandle handle, std::uint32_t incarnation,
                   util::Result<gram::JobId> result);
  void on_gram_state(SubjobHandle handle, std::uint32_t incarnation,
                     const gram::JobStateChange& change);

  // Barrier.
  void on_checkin(net::NodeId src, const CheckinMessage& msg);
  void maybe_release();
  void release_subjob(Subjob& sj);
  void send_release(const Subjob& sj, std::int32_t rank);

  // Failure handling.
  void fail_subjob(SubjobHandle handle, util::Status why);
  void abort_subjob_processes(Subjob& sj, const std::string& reason);
  void cancel_gram_job(Subjob& sj);
  void arm_timeout(Subjob& sj);
  void arm_liveness_probe(Subjob& sj);
  void probe_liveness(SubjobHandle handle, std::uint32_t incarnation);
  void maybe_done();
  void finish(util::Status status);

  void notify_subjob(const Subjob& sj);
  /// All slot-state transitions go through here so `agg_` stays exact.
  void set_state(Subjob& sj, SubjobState to);
  void agg_add(const Subjob& sj);
  void agg_remove(const Subjob& sj);
  Subjob* find(SubjobHandle handle);
  const Subjob* find(SubjobHandle handle) const;
  bool is_live(const Subjob& sj) const {
    return sj.state != SubjobState::kFailed &&
           sj.state != SubjobState::kDeleted;
  }

  Coallocator* owner_;
  RequestId id_;
  RequestCallbacks callbacks_;
  RequestConfig config_;
  util::Logger log_;

  RequestState state_ = RequestState::kEditing;
  bool started_ = false;
  bool submission_in_flight_ = false;
  SubjobHandle hold_handle_ = 0;  // serialize_until_checkin gate
  std::deque<SubjobHandle> submit_queue_;
  std::vector<SubjobHandle> order_;  // insertion order of slots
  sim::IdSlab<Subjob> slots_;
  SubjobAggregate agg_;
  SubjobHandle next_handle_ = 1;
  RuntimeConfig config_table_;
  sim::Time released_at_ = -1;
  /// Cleared by the destructor; captured by callbacks handed to the gram
  /// client (submit accept, state notify, liveness ping), which can outlive
  /// the request when it is destroyed mid-flight.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace grid::core
