#include "core/barrier_protocol.hpp"

namespace grid::core {

std::string to_string(SubjobState s) {
  switch (s) {
    case SubjobState::kUnsubmitted:
      return "UNSUBMITTED";
    case SubjobState::kSubmitting:
      return "SUBMITTING";
    case SubjobState::kPending:
      return "PENDING";
    case SubjobState::kActive:
      return "ACTIVE";
    case SubjobState::kCheckedIn:
      return "CHECKED_IN";
    case SubjobState::kReleased:
      return "RELEASED";
    case SubjobState::kDone:
      return "DONE";
    case SubjobState::kFailed:
      return "FAILED";
    case SubjobState::kDeleted:
      return "DELETED";
  }
  return "?";
}

std::string to_string(RequestState s) {
  switch (s) {
    case RequestState::kEditing:
      return "EDITING";
    case RequestState::kCommitted:
      return "COMMITTED";
    case RequestState::kReleased:
      return "RELEASED";
    case RequestState::kDone:
      return "DONE";
    case RequestState::kAborted:
      return "ABORTED";
  }
  return "?";
}

void RuntimeConfig::encode(util::Writer& w) const {
  std::size_t need = 17;
  for (const SubjobLayout& s : subjobs) need += 29 + s.contact.size();
  w.reserve(need);
  w.u64(request);
  w.i32(total_processes);
  w.varint(subjobs.size());
  for (const SubjobLayout& s : subjobs) {
    w.u64(s.subjob);
    w.i32(s.index);
    w.i32(s.size);
    w.i32(s.rank_base);
    w.u32(s.leader);
    w.str(s.contact);
  }
}

RuntimeConfig RuntimeConfig::decode(util::Reader& r) {
  RuntimeConfig c;
  c.request = r.u64();
  c.total_processes = r.i32();
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    SubjobLayout s;
    s.subjob = r.u64();
    s.index = r.i32();
    s.size = r.i32();
    s.rank_base = r.i32();
    s.leader = r.u32();
    const std::string_view contact = r.str_view();
    s.contact.assign(contact.begin(), contact.end());
    c.subjobs.push_back(std::move(s));
  }
  return c;
}

void ReleaseInfo::encode(util::Writer& w) const {
  config.encode(w);
  w.reserve(17 + 4 * subjob_members.size());
  w.i32(subjob_index);
  w.i32(local_rank);
  w.i32(global_rank);
  w.varint(subjob_members.size());
  for (net::NodeId m : subjob_members) w.u32(m);
}

ReleaseInfo ReleaseInfo::decode(util::Reader& r) {
  ReleaseInfo i;
  i.config = RuntimeConfig::decode(r);
  i.subjob_index = r.i32();
  i.local_rank = r.i32();
  i.global_rank = r.i32();
  const std::uint64_t n = r.varint();
  for (std::uint64_t k = 0; k < n && r.ok(); ++k) {
    i.subjob_members.push_back(r.u32());
  }
  return i;
}

void CheckinMessage::encode(util::Writer& w) const {
  w.reserve(34 + message.size());
  w.u64(request);
  w.u64(subjob);
  w.u64(gram_job);
  w.i32(rank);
  w.boolean(ok);
  w.str(message);
}

CheckinMessage CheckinMessage::decode(util::Reader& r) {
  CheckinMessage m;
  m.request = r.u64();
  m.subjob = r.u64();
  m.gram_job = r.u64();
  m.rank = r.i32();
  m.ok = r.boolean();
  const std::string_view msg = r.str_view();
  m.message.assign(msg.begin(), msg.end());
  return m;
}

void ReleaseMessage::encode(util::Writer& w) const {
  w.u64(request);
  info.encode(w);
}

ReleaseMessage ReleaseMessage::decode(util::Reader& r) {
  ReleaseMessage m;
  m.request = r.u64();
  m.info = ReleaseInfo::decode(r);
  return m;
}

void AbortMessage::encode(util::Writer& w) const {
  w.reserve(13 + reason.size());
  w.u64(request);
  w.str(reason);
}

AbortMessage AbortMessage::decode(util::Reader& r) {
  AbortMessage m;
  m.request = r.u64();
  const std::string_view reason = r.str_view();
  m.reason.assign(reason.begin(), reason.end());
  return m;
}

}  // namespace grid::core
