#include <memory>

#include "core/strategies.hpp"

namespace grid::core {

// ---- ReplacementAgent -------------------------------------------------------

ReplacementAgent::ReplacementAgent(Coallocator& mechanisms, Options options,
                                   RequestCallbacks user_callbacks)
    : mech_(&mechanisms),
      options_(std::move(options)),
      user_(std::move(user_callbacks)),
      spares_(options_.spare_contacts) {
  RequestCallbacks cbs;
  cbs.on_subjob = [this](SubjobHandle h, SubjobState s,
                         const util::Status& why) { on_subjob(h, s, why); };
  cbs.on_released = user_.on_released;
  cbs.on_terminal = user_.on_terminal;
  request_ = mech_->create_request(std::move(cbs));
}

void ReplacementAgent::on_subjob(SubjobHandle handle, SubjobState state,
                                 const util::Status& why) {
  if (user_.on_subjob) user_.on_subjob(handle, state, why);
  if (state == SubjobState::kFailed &&
      request_->state() == RequestState::kEditing) {
    auto view = request_->subjob(handle);
    if (view.is_ok() &&
        view.value().start_type == rsl::SubjobStartType::kInteractive &&
        !spares_.empty() && substitutions_ < options_.max_substitutions) {
      auto original = request_->subjob_request(handle);
      if (original.is_ok()) {
        rsl::JobRequest replacement = original.take();
        replacement.resource_manager_contact = spares_.front();
        spares_.erase(spares_.begin());
        ++substitutions_;
        request_->substitute_subjob(handle, std::move(replacement));
        return;
      }
    }
  }
  // A check-in may complete the barrier; an unrepairable failure may leave
  // the remaining (checked-in) subjobs as the final ensemble.
  if (state == SubjobState::kCheckedIn || state == SubjobState::kFailed) {
    maybe_commit();
  }
}

void ReplacementAgent::maybe_commit() {
  if (!options_.auto_commit || committed_ ||
      request_->state() != RequestState::kEditing) {
    return;
  }
  for (SubjobHandle h : request_->subjobs()) {
    auto view = request_->subjob(h);
    if (!view.is_ok()) continue;
    const SubjobView& v = view.value();
    if (v.state == SubjobState::kFailed || v.state == SubjobState::kDeleted) {
      continue;
    }
    if (v.start_type == rsl::SubjobStartType::kOptional) continue;
    if (v.state != SubjobState::kCheckedIn) return;
  }
  committed_ = true;
  request_->commit();
}

// ---- MinimumCountAgent ------------------------------------------------------

MinimumCountAgent::MinimumCountAgent(Coallocator& mechanisms, Options options,
                                     RequestCallbacks user_callbacks)
    : mech_(&mechanisms),
      options_(options),
      user_(std::move(user_callbacks)) {
  RequestCallbacks cbs;
  cbs.on_subjob = [this](SubjobHandle h, SubjobState s,
                         const util::Status& why) { on_subjob(h, s, why); };
  cbs.on_released = user_.on_released;
  cbs.on_terminal = user_.on_terminal;
  request_ = mech_->create_request(std::move(cbs));
  if (options_.decision_deadline > 0) {
    deadline_event_ = mech_->engine().schedule_after(
        options_.decision_deadline, [this] {
          if (committed_ || is_request_terminal(request_->state())) return;
          if (checked_in_processes() >= options_.minimum_processes) {
            evaluate();
            return;
          }
          request_->abort("minimum process count not reached by deadline");
        });
  }
}

MinimumCountAgent::~MinimumCountAgent() {
  mech_->engine().cancel(deadline_event_);
}

std::int32_t MinimumCountAgent::checked_in_processes() const {
  std::int32_t n = 0;
  for (SubjobHandle h : request_->subjobs()) {
    auto view = request_->subjob(h);
    if (view.is_ok() && view.value().state == SubjobState::kCheckedIn) {
      n += view.value().count;
    }
  }
  return n;
}

void MinimumCountAgent::on_subjob(SubjobHandle handle, SubjobState state,
                                  const util::Status& why) {
  if (user_.on_subjob) user_.on_subjob(handle, state, why);
  if (state == SubjobState::kCheckedIn) evaluate();
}

void MinimumCountAgent::evaluate() {
  if (committed_ || request_->state() != RequestState::kEditing) return;
  // Required subjobs must all be in before the ensemble can be trimmed:
  // deleting laggards only applies to interactive ones (Fig. 1 semantics).
  std::int32_t ready = 0;
  bool required_pending = false;
  for (SubjobHandle h : request_->subjobs()) {
    auto view = request_->subjob(h);
    if (!view.is_ok()) continue;
    const SubjobView& v = view.value();
    if (v.state == SubjobState::kFailed || v.state == SubjobState::kDeleted) {
      continue;
    }
    if (v.state == SubjobState::kCheckedIn) {
      ready += v.count;
    } else if (v.start_type == rsl::SubjobStartType::kRequired) {
      required_pending = true;
    }
  }
  if (ready < options_.minimum_processes || required_pending) return;
  committed_ = true;
  // Terminate subjobs that have not yet responded, then commit (§4.1).
  for (SubjobHandle h : request_->subjobs()) {
    auto view = request_->subjob(h);
    if (!view.is_ok()) continue;
    const SubjobView& v = view.value();
    if (v.state == SubjobState::kFailed || v.state == SubjobState::kDeleted ||
        v.state == SubjobState::kCheckedIn) {
      continue;
    }
    if (v.start_type == rsl::SubjobStartType::kInteractive) {
      request_->remove_subjob(h);
    }
  }
  request_->commit();
}

// ---- AlternativesAgent ------------------------------------------------------

AlternativesAgent::AlternativesAgent(
    Coallocator& mechanisms, std::vector<rsl::SubjobAlternatives> slots,
    RequestCallbacks user_callbacks)
    : mech_(&mechanisms), user_(std::move(user_callbacks)) {
  RequestCallbacks cbs;
  cbs.on_subjob = [this](SubjobHandle h, SubjobState s,
                         const util::Status& why) { on_subjob(h, s, why); };
  cbs.on_released = user_.on_released;
  cbs.on_terminal = user_.on_terminal;
  request_ = mech_->create_request(std::move(cbs));
  for (rsl::SubjobAlternatives& slot : slots) {
    if (slot.options.empty()) continue;
    rsl::JobRequest first = std::move(slot.options.front());
    slot.options.erase(slot.options.begin());
    auto added = request_->add_subjob(std::move(first));
    if (added.is_ok()) {
      remaining_[added.value()] = std::move(slot.options);
    }
  }
  request_->start();
}

util::Result<std::unique_ptr<AlternativesAgent>> AlternativesAgent::from_rsl(
    Coallocator& mechanisms, const std::string& rsl_text,
    RequestCallbacks user_callbacks) {
  auto slots = rsl::parse_with_alternatives(rsl_text);
  if (!slots.is_ok()) return slots.status();
  return std::make_unique<AlternativesAgent>(mechanisms, slots.take(),
                                             std::move(user_callbacks));
}

void AlternativesAgent::on_subjob(SubjobHandle handle, SubjobState state,
                                  const util::Status& why) {
  if (user_.on_subjob) user_.on_subjob(handle, state, why);
  if (state == SubjobState::kFailed &&
      request_->state() == RequestState::kEditing) {
    std::vector<rsl::JobRequest>* options = remaining_.find(handle);
    if (options != nullptr && !options->empty()) {
      rsl::JobRequest next = std::move(options->front());
      options->erase(options->begin());
      ++fallbacks_;
      request_->substitute_subjob(handle, std::move(next));
      return;
    }
  }
  if (state == SubjobState::kCheckedIn || state == SubjobState::kFailed) {
    maybe_commit();
  }
}

void AlternativesAgent::maybe_commit() {
  if (committed_ || request_->state() != RequestState::kEditing) return;
  for (SubjobHandle h : request_->subjobs()) {
    auto view = request_->subjob(h);
    if (!view.is_ok()) continue;
    const SubjobView& v = view.value();
    if (v.state == SubjobState::kFailed || v.state == SubjobState::kDeleted) {
      continue;
    }
    if (v.start_type == rsl::SubjobStartType::kOptional) continue;
    if (v.state != SubjobState::kCheckedIn) return;
  }
  committed_ = true;
  request_->commit();
}

// ---- FirstAvailableAgent ----------------------------------------------------

FirstAvailableAgent::FirstAvailableAgent(
    Coallocator& mechanisms, std::vector<rsl::JobRequest> alternatives,
    RequestCallbacks user_callbacks)
    : mech_(&mechanisms), user_(std::move(user_callbacks)) {
  RequestCallbacks cbs;
  cbs.on_subjob = [this](SubjobHandle h, SubjobState s,
                         const util::Status& why) { on_subjob(h, s, why); };
  cbs.on_released = user_.on_released;
  cbs.on_terminal = user_.on_terminal;
  request_ = mech_->create_request(std::move(cbs));
  for (rsl::JobRequest& alt : alternatives) {
    alt.start_type = rsl::SubjobStartType::kInteractive;
    request_->add_subjob(std::move(alt));
  }
  alternatives_live_ = alternatives.size();
  request_->start();
}

void FirstAvailableAgent::on_subjob(SubjobHandle handle, SubjobState state,
                                    const util::Status& why) {
  if (user_.on_subjob) user_.on_subjob(handle, state, why);
  if (is_request_terminal(request_->state())) return;
  if (state == SubjobState::kCheckedIn && winner_ == 0) {
    winner_ = handle;
    // Commit to the first responder; release the losers.
    for (SubjobHandle h : request_->subjobs()) {
      if (h == winner_) continue;
      auto view = request_->subjob(h);
      if (view.is_ok() && view.value().state != SubjobState::kFailed &&
          view.value().state != SubjobState::kDeleted) {
        request_->remove_subjob(h);
      }
    }
    request_->commit();
    return;
  }
  if (state == SubjobState::kFailed && winner_ == 0 &&
      request_->live_subjob_count() == 0) {
    request_->abort("no alternative resource became available");
  }
}

}  // namespace grid::core
