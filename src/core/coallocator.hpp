// Coallocator: owns the network identity and GRAM client shared by the
// co-allocation requests of one agent, and dispatches barrier traffic.
//
// This is the "co-allocation mechanism component" of the layered
// architecture (paper §3.1): co-allocation agents (applications, resource
// brokers, the GRAB/DUROC strategy classes) create requests through it and
// drive them with the editing / commit / monitoring operations.
#pragma once

#include <memory>
#include <string>

#include "core/request.hpp"
#include "gsi/credential.hpp"
#include "gsi/protocol.hpp"
#include "net/rpc.hpp"
#include "simkit/idmap.hpp"

namespace grid::core {

class Coallocator {
 public:
  Coallocator(net::Network& network, std::string name,
              const gsi::CertificateAuthority& ca, gsi::Credential identity,
              gsi::CostModel gsi_costs = {}, RequestConfig defaults = {});
  ~Coallocator();

  Coallocator(const Coallocator&) = delete;
  Coallocator& operator=(const Coallocator&) = delete;

  /// Maps resourceManagerContact strings to gatekeeper addresses.  Must be
  /// set before any request is started (the testbed installs its registry).
  void set_contact_resolver(ContactResolver resolver);

  /// Creates a request; the returned pointer is owned by the co-allocator
  /// and valid until destroy_request() or the co-allocator's destruction.
  CoallocationRequest* create_request(RequestCallbacks callbacks);
  CoallocationRequest* create_request(RequestCallbacks callbacks,
                                      RequestConfig config);

  CoallocationRequest* find_request(RequestId id);
  void destroy_request(RequestId id);

  net::Endpoint& endpoint() { return endpoint_; }
  sim::Engine& engine() { return endpoint_.engine(); }
  gram::Client& gram() { return gram_client_; }
  const ContactResolver& resolver() const { return resolver_; }
  std::size_t request_count() const { return requests_.size(); }

 private:
  void on_checkin_notify(net::NodeId src, util::Reader& payload);

  net::Endpoint endpoint_;
  gram::Client gram_client_;
  ContactResolver resolver_;
  RequestConfig defaults_;
  RequestId next_request_ = 1;
  sim::IdSlab<std::unique_ptr<CoallocationRequest>> requests_;
};

}  // namespace grid::core
