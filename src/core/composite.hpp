// Hierarchical co-allocation (paper §3.1: the common mechanism set
// "enables the development of sophisticated co-allocation schemes, for
// example by nested or hierarchical co-allocators").
//
// A CompositeAgent treats whole child co-allocation requests as the units
// of a higher-level two-phase commit: every child gathers its own
// resources and holds them at the barrier; only when *every* child is
// fully checked in does the composite commit them all, releasing the
// union simultaneously.  Any child failure before that point aborts every
// other child.  Children may live on different co-allocators (different
// agent identities or even different organizations' brokers), which is
// what makes the scheme hierarchical rather than just bigger.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/coallocator.hpp"

namespace grid::core {

class CompositeAgent {
 public:
  struct Callbacks {
    /// Fired once when every child's barrier has released; the configs
    /// arrive in child-addition order.
    std::function<void(const std::vector<RuntimeConfig>&)> on_released;
    /// Fired once: OK when all children complete, or the first abort.
    std::function<void(const util::Status&)> on_terminal;
  };

  explicit CompositeAgent(Callbacks callbacks)
      : callbacks_(std::move(callbacks)) {}

  CompositeAgent(const CompositeAgent&) = delete;
  CompositeAgent& operator=(const CompositeAgent&) = delete;

  /// Creates a child request on `mechanisms`.  The caller configures it
  /// (add_rsl / add_subjob) before start(); per-child user callbacks are
  /// chained after the composite's own bookkeeping.
  CoallocationRequest* add_child(Coallocator& mechanisms,
                                 RequestCallbacks user = {},
                                 RequestConfig config = {});

  /// Starts every child's submission pipeline.
  void start();

  /// Aborts the whole hierarchy.
  void abort(const std::string& reason);

  std::size_t child_count() const { return children_.size(); }
  bool released() const { return released_count_ == children_.size(); }

 private:
  struct Child {
    CoallocationRequest* request = nullptr;
    RequestCallbacks user;
    bool ready = false;     // every live non-optional subjob checked in
    bool released = false;
    RuntimeConfig config;
  };

  void on_child_subjob(std::size_t index, SubjobHandle handle,
                       SubjobState state, const util::Status& why);
  void evaluate();
  void finish(const util::Status& status);

  Callbacks callbacks_;
  std::vector<Child> children_;
  bool committed_ = false;
  bool finished_ = false;
  std::size_t released_count_ = 0;
  std::size_t terminal_count_ = 0;
  bool any_failed_ = false;
  util::Status first_failure_;
};

}  // namespace grid::core
