// DUROC barrier wire protocol (co-allocator <-> application processes).
//
// Check-in (process -> co-allocator) carries the application's own startup
// verdict — per §3.2 "it is not sufficient that the local operating system
// ... tell us that the process has started successfully; we need to hear
// from the application itself".  Release and abort flow the other way.
// Processes find their co-allocator through environment variables injected
// into the subjob's RSL, exactly as DUROC did.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/runtime.hpp"
#include "core/types.hpp"
#include "gram/job.hpp"
#include "simkit/codec.hpp"

namespace grid::core {

/// Notification kinds (0x400 block reserved for the barrier protocol).
enum BarrierNotify : std::uint32_t {
  kNotifyCheckin = 0x401,  // process -> co-allocator
  kNotifyRelease = 0x402,  // co-allocator -> process
  kNotifyAbort = 0x403,    // co-allocator -> process (terminate)
};

/// Environment variables injected into every co-allocated subjob.
namespace env {
inline constexpr std::string_view kContact = "GRID_DUROC_CONTACT";
inline constexpr std::string_view kRequest = "GRID_DUROC_REQUEST";
inline constexpr std::string_view kSubjob = "GRID_DUROC_SUBJOB";
}  // namespace env

struct CheckinMessage {
  RequestId request = 0;
  SubjobHandle subjob = 0;
  gram::JobId gram_job = 0;  // incarnation check: stale check-ins dropped
  std::int32_t rank = 0;
  bool ok = true;
  std::string message;  // application diagnostic on failure

  void encode(util::Writer& w) const;
  static CheckinMessage decode(util::Reader& r);
};

struct ReleaseMessage {
  RequestId request = 0;
  ReleaseInfo info;

  void encode(util::Writer& w) const;
  static ReleaseMessage decode(util::Reader& r);
};

struct AbortMessage {
  RequestId request = 0;
  std::string reason;

  void encode(util::Writer& w) const;
  static AbortMessage decode(util::Reader& r);
};

}  // namespace grid::core
