#include "core/composite.hpp"

namespace grid::core {

CoallocationRequest* CompositeAgent::add_child(Coallocator& mechanisms,
                                               RequestCallbacks user,
                                               RequestConfig config) {
  const std::size_t index = children_.size();
  children_.push_back(Child{});
  Child& child = children_.back();
  child.user = std::move(user);
  RequestCallbacks cbs;
  cbs.on_subjob = [this, index](SubjobHandle h, SubjobState s,
                                const util::Status& why) {
    on_child_subjob(index, h, s, why);
  };
  cbs.on_released = [this, index](const RuntimeConfig& config_table) {
    Child& c = children_[index];
    c.released = true;
    c.config = config_table;
    ++released_count_;
    if (c.user.on_released) c.user.on_released(config_table);
    if (released_count_ == children_.size() && callbacks_.on_released) {
      std::vector<RuntimeConfig> configs;
      configs.reserve(children_.size());
      for (const Child& ch : children_) configs.push_back(ch.config);
      callbacks_.on_released(configs);
    }
  };
  cbs.on_terminal = [this, index](const util::Status& status) {
    Child& c = children_[index];
    if (c.user.on_terminal) c.user.on_terminal(status);
    ++terminal_count_;
    if (!status.is_ok()) {
      any_failed_ = true;
      if (first_failure_.is_ok()) first_failure_ = status;
      // One child collapsing collapses the hierarchy.
      abort("child request aborted: " + status.message());
    }
    if (terminal_count_ == children_.size()) {
      finish(any_failed_ ? first_failure_ : util::Status::ok());
    }
  };
  child.request = mechanisms.create_request(std::move(cbs), config);
  return child.request;
}

void CompositeAgent::start() {
  for (Child& child : children_) child.request->start();
}

void CompositeAgent::on_child_subjob(std::size_t index, SubjobHandle handle,
                                     SubjobState state,
                                     const util::Status& why) {
  Child& child = children_[index];
  if (child.user.on_subjob) child.user.on_subjob(handle, state, why);
  if (committed_ || finished_) return;
  if (state == SubjobState::kCheckedIn || state == SubjobState::kFailed ||
      state == SubjobState::kDeleted) {
    evaluate();
  }
}

void CompositeAgent::evaluate() {
  // Top-level commit point: every child must hold its full resource set at
  // the barrier before any child is committed (two-level two-phase commit).
  for (Child& child : children_) {
    if (is_request_terminal(child.request->state())) return;
    bool ready = true;
    bool any_live = false;
    for (SubjobHandle h : child.request->subjobs()) {
      auto view = child.request->subjob(h);
      if (!view.is_ok()) continue;
      const SubjobView& v = view.value();
      if (v.state == SubjobState::kFailed ||
          v.state == SubjobState::kDeleted) {
        continue;
      }
      any_live = true;
      if (v.start_type == rsl::SubjobStartType::kOptional) continue;
      if (v.state != SubjobState::kCheckedIn) ready = false;
    }
    child.ready = ready && any_live;
    if (!child.ready) return;
  }
  committed_ = true;
  for (Child& child : children_) child.request->commit();
}

void CompositeAgent::abort(const std::string& reason) {
  for (Child& child : children_) {
    if (!is_request_terminal(child.request->state())) {
      child.request->abort(reason);
    }
  }
}

void CompositeAgent::finish(const util::Status& status) {
  if (finished_) return;
  finished_ = true;
  if (callbacks_.on_terminal) callbacks_.on_terminal(status);
}

}  // namespace grid::core
