#include "core/app_barrier.hpp"

#include <charconv>

namespace grid::core {
namespace {

std::uint64_t parse_u64(const std::string& s) {
  std::uint64_t v = 0;
  const char* first = s.data();
  const char* last = first + s.size();
  auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) return 0;
  return v;
}

std::string endpoint_name(gram::ProcessApi& api) {
  return api.host_name() + "/job" + std::to_string(api.job() & 0xffffffff) +
         ".r" + std::to_string(api.local_rank());
}

}  // namespace

BarrierClient::BarrierClient(gram::ProcessApi& api)
    : api_(&api), endpoint_(api.network(), endpoint_name(api)) {
  contact_ = static_cast<net::NodeId>(
      parse_u64(api.getenv(std::string(env::kContact))));
  request_ = parse_u64(api.getenv(std::string(env::kRequest)));
  subjob_ = parse_u64(api.getenv(std::string(env::kSubjob)));
  endpoint_.register_notify(
      kNotifyRelease, [this](net::NodeId, util::Reader& payload) {
        ReleaseMessage msg = ReleaseMessage::decode(payload);
        if (!payload.ok() || msg.request != request_) return;
        if (released_at_ >= 0) return;  // duplicate release
        released_at_ = endpoint_.engine().now();
        settled_ = true;
        endpoint_.engine().cancel(resend_event_);
        if (on_release_) {
          auto cb = std::move(on_release_);
          on_abort_ = nullptr;
          cb(msg.info);
        }
      });
  endpoint_.register_notify(
      kNotifyAbort, [this](net::NodeId, util::Reader& payload) {
        AbortMessage msg = AbortMessage::decode(payload);
        if (!payload.ok() || msg.request != request_) return;
        settled_ = true;
        endpoint_.engine().cancel(resend_event_);
        if (on_abort_) {
          auto cb = std::move(on_abort_);
          on_release_ = nullptr;
          cb(msg.reason);
        }
      });
}

BarrierClient::~BarrierClient() {
  endpoint_.engine().cancel(resend_event_);
}

void BarrierClient::enter(bool ok, const std::string& message,
                          ReleaseFn on_release, AbortFn on_abort) {
  entered_at_ = endpoint_.engine().now();
  on_release_ = std::move(on_release);
  on_abort_ = std::move(on_abort);
  CheckinMessage msg;
  msg.request = request_;
  msg.subjob = subjob_;
  msg.gram_job = api_->job();
  msg.rank = api_->local_rank();
  msg.ok = ok;
  msg.message = message;
  util::Writer w;
  msg.encode(w);
  checkin_frame_ = net::Endpoint::encode_notify(kNotifyCheckin, w.take());
  send_checkin();
}

void BarrierClient::send_checkin() {
  if (settled_) return;
  ++checkins_sent_;
  endpoint_.notify_frame(contact_, checkin_frame_.share());
  if (resend_period_ > 0) {
    resend_event_ = endpoint_.engine().schedule_after(
        resend_period_, [this] { send_checkin(); });
  }
}

}  // namespace grid::core
