#include "core/coallocator.hpp"

namespace grid::core {

Coallocator::Coallocator(net::Network& network, std::string name,
                         const gsi::CertificateAuthority& ca,
                         gsi::Credential identity, gsi::CostModel gsi_costs,
                         RequestConfig defaults)
    : endpoint_(network, std::move(name)),
      gram_client_(endpoint_, ca, std::move(identity), gsi_costs),
      defaults_(defaults) {
  endpoint_.register_notify(
      kNotifyCheckin, [this](net::NodeId src, util::Reader& payload) {
        on_checkin_notify(src, payload);
      });
}

Coallocator::~Coallocator() = default;

void Coallocator::set_contact_resolver(ContactResolver resolver) {
  resolver_ = std::move(resolver);
}

CoallocationRequest* Coallocator::create_request(RequestCallbacks callbacks) {
  return create_request(std::move(callbacks), defaults_);
}

CoallocationRequest* Coallocator::create_request(RequestCallbacks callbacks,
                                                 RequestConfig config) {
  const RequestId id = next_request_++;
  auto request = std::make_unique<CoallocationRequest>(
      *this, id, std::move(callbacks), config);
  CoallocationRequest* ptr = request.get();
  requests_.emplace(id, std::move(request));
  return ptr;
}

CoallocationRequest* Coallocator::find_request(RequestId id) {
  auto* r = requests_.find(id);
  return r == nullptr ? nullptr : r->get();
}

void Coallocator::destroy_request(RequestId id) { requests_.erase(id); }

void Coallocator::on_checkin_notify(net::NodeId src, util::Reader& payload) {
  CheckinMessage msg = CheckinMessage::decode(payload);
  if (!payload.ok()) return;
  CoallocationRequest* request = find_request(msg.request);
  if (request == nullptr) {
    // Dead request: reap the orphan process.
    AbortMessage abort_msg{msg.request, "request no longer exists"};
    util::Writer w;
    abort_msg.encode(w);
    endpoint_.notify(src, kNotifyAbort, w.take());
    return;
  }
  request->on_checkin(src, msg);
}

}  // namespace grid::core
