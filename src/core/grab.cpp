#include "core/grab.hpp"

#include "rsl/parser.hpp"

namespace grid::core {

util::Result<RequestId> GrabAllocator::allocate(
    const std::string& rsl_text, Callbacks callbacks,
    std::optional<RequestConfig> config) {
  auto spec = rsl::parse_multi_request(rsl_text);
  if (!spec.is_ok()) return spec.status();
  auto jobs = rsl::parse_job_requests(spec.value());
  if (!jobs.is_ok()) return jobs.status();
  return allocate(jobs.take(), std::move(callbacks), config);
}

util::Result<RequestId> GrabAllocator::allocate(
    std::vector<rsl::JobRequest> subjobs, Callbacks callbacks,
    std::optional<RequestConfig> config) {
  if (subjobs.empty()) {
    return util::Status(util::ErrorCode::kInvalidArgument,
                        "empty co-allocation request");
  }
  RequestCallbacks cbs;
  cbs.on_released = std::move(callbacks.on_started);
  cbs.on_terminal = std::move(callbacks.on_done);
  CoallocationRequest* request =
      config.has_value() ? mech_->create_request(std::move(cbs), *config)
                         : mech_->create_request(std::move(cbs));
  for (rsl::JobRequest& j : subjobs) {
    j.start_type = rsl::SubjobStartType::kRequired;  // atomic semantics
    auto added = request->add_subjob(std::move(j));
    if (!added.is_ok()) {
      const RequestId id = request->id();
      mech_->destroy_request(id);
      return added.status();
    }
  }
  const RequestId id = request->id();
  if (heartbeats_.has_value()) {
    // Armed before start() so the first beat can fire as soon as a subjob
    // is accepted.  The detector resolves the request by id each tick and
    // stops itself once the transaction reaches a terminal state.
    auto detector =
        std::make_unique<HeartbeatDetector>(*mech_, id, *heartbeats_);
    detector->start();
    detectors_[id] = std::move(detector);
  }
  request->start();
  // No editing window: commit immediately; the request releases iff every
  // subjob checks in, and any failure aborts everything.
  if (auto st = request->commit(); !st.is_ok()) return st;
  return id;
}

void GrabAllocator::cancel(RequestId id) {
  if (auto* d = detectors_.find(id)) {
    (*d)->stop();
  }
  if (CoallocationRequest* request = mech_->find_request(id)) {
    request->kill();
  }
}

}  // namespace grid::core
