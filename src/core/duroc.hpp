// DUROC — the Dynamically-Updated Request Online Co-allocator (paper §4.1).
//
// The interactive transaction co-allocator.  DUROC *is* the mechanism
// layer used directly: a co-allocation agent creates a request, edits it
// (add / remove / substitute) while monitoring subjob callbacks, commits
// when satisfied, and then monitors/controls the released ensemble.  This
// header gives that usage its paper name and bundles the pieces an agent
// needs; reusable agent strategies built on top live in strategies.hpp.
//
//   core::DurocAllocator duroc(mechanisms);
//   auto* req = duroc.create_request({
//       .on_subjob  = ...,   // failure callbacks drive interactive edits
//       .on_released = ...,  // barrier released with final configuration
//       .on_terminal = ...});
//   req->add_rsl("+(&(resourceManagerContact=...)...)...");
//   req->start();
//   ...edit until satisfied...
//   req->commit();
#pragma once

#include <memory>

#include "core/app_barrier.hpp"
#include "core/coallocator.hpp"
#include "core/monitor.hpp"
#include "core/request.hpp"

namespace grid::core {

/// The DUROC control library: a thin facade over the mechanism layer that
/// carries the co-allocator's paper name and default configuration.
class DurocAllocator {
 public:
  explicit DurocAllocator(Coallocator& mechanisms) : mech_(&mechanisms) {}

  CoallocationRequest* create_request(RequestCallbacks callbacks) {
    return mech_->create_request(std::move(callbacks));
  }
  CoallocationRequest* create_request(RequestCallbacks callbacks,
                                      RequestConfig config) {
    return mech_->create_request(std::move(callbacks), config);
  }

  CoallocationRequest* find_request(RequestId id) {
    return mech_->find_request(id);
  }
  void destroy_request(RequestId id) { mech_->destroy_request(id); }

  /// Attaches a started heartbeat failure detector to a request; the
  /// caller owns it (keep it alive as long as monitoring is wanted — it is
  /// safe to hold past the request's destruction).  Verdicts flow through
  /// the ordinary §3.2 category semantics: required deaths abort, optional
  /// deaths after release degrade the ensemble and let it continue.
  std::unique_ptr<HeartbeatDetector> watch(RequestId id,
                                           HeartbeatConfig config = {}) {
    auto detector = std::make_unique<HeartbeatDetector>(*mech_, id, config);
    detector->start();
    return detector;
  }

  Coallocator& mechanisms() { return *mech_; }

 private:
  Coallocator* mech_;
};

}  // namespace grid::core
