// Reusable co-allocation agent strategies (paper §3.2's examples).
//
// The mechanism layer deliberately implements no policy; these classes are
// the application-specific strategies the paper says agents should compose
// from the mechanisms:
//
//  * ReplacementAgent — "interactive resources allow an application ... to
//    replace slow or failed elements of a request if an alternative
//    resource can be found": failed interactive subjobs are substituted
//    with spares from a candidate pool.
//
//  * MinimumCountAgent — the Figure 1 master/worker strategy: commit as
//    soon as enough worker processes have checked in, deleting interactive
//    subjobs that have not yet responded; abort if the minimum cannot be
//    reached by a deadline.
//
//  * FirstAvailableAgent — "decrease allocation time by requesting several
//    alternative resources simultaneously and committing to the first that
//    becomes available".
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/coallocator.hpp"
#include "rsl/alternatives.hpp"
#include "simkit/idmap.hpp"

namespace grid::core {

/// Substitutes failed interactive subjobs with alternates from a pool.
class ReplacementAgent {
 public:
  struct Options {
    /// Contacts tried, in order, when an interactive subjob fails.
    std::vector<std::string> spare_contacts;
    /// Cap on total substitutions across the request.
    std::size_t max_substitutions = SIZE_MAX;
    /// Commit automatically once every live subjob has checked in.
    bool auto_commit = true;
  };

  ReplacementAgent(Coallocator& mechanisms, Options options,
                   RequestCallbacks user_callbacks);

  CoallocationRequest& request() { return *request_; }
  std::size_t substitutions_made() const { return substitutions_; }
  const std::vector<std::string>& spares_left() const { return spares_; }

 private:
  void on_subjob(SubjobHandle handle, SubjobState state,
                 const util::Status& why);
  void maybe_commit();

  Coallocator* mech_;
  Options options_;
  RequestCallbacks user_;
  CoallocationRequest* request_ = nullptr;
  std::vector<std::string> spares_;
  std::size_t substitutions_ = 0;
  bool committed_ = false;
};

/// Commits once a minimum process count has checked in, dropping
/// unresponsive interactive subjobs at that point (Figure 1 semantics).
class MinimumCountAgent {
 public:
  struct Options {
    /// Total checked-in processes (across checked-in subjobs) required
    /// before committing.
    std::int32_t minimum_processes = 1;
    /// Give up and abort if the minimum is not reached in time; 0 disables.
    sim::Time decision_deadline = 0;
  };

  MinimumCountAgent(Coallocator& mechanisms, Options options,
                    RequestCallbacks user_callbacks);
  ~MinimumCountAgent();

  CoallocationRequest& request() { return *request_; }
  std::int32_t checked_in_processes() const;

 private:
  void on_subjob(SubjobHandle handle, SubjobState state,
                 const util::Status& why);
  void evaluate();

  Coallocator* mech_;
  Options options_;
  RequestCallbacks user_;
  CoallocationRequest* request_ = nullptr;
  sim::EventId deadline_event_;
  bool committed_ = false;
};

/// Drives a request whose slots carry RSL '|' alternatives: each slot
/// starts on its first option; when an option fails the slot is
/// substituted with the next one, preserving the slot's position in the
/// configuration.  Commits automatically once every live slot checks in.
class AlternativesAgent {
 public:
  AlternativesAgent(Coallocator& mechanisms,
                    std::vector<rsl::SubjobAlternatives> slots,
                    RequestCallbacks user_callbacks);

  /// Convenience: parse RSL text with '|' alternatives and start.
  static util::Result<std::unique_ptr<AlternativesAgent>> from_rsl(
      Coallocator& mechanisms, const std::string& rsl_text,
      RequestCallbacks user_callbacks);

  CoallocationRequest& request() { return *request_; }
  std::size_t fallbacks_used() const { return fallbacks_; }

 private:
  void on_subjob(SubjobHandle handle, SubjobState state,
                 const util::Status& why);
  void maybe_commit();

  Coallocator* mech_;
  RequestCallbacks user_;
  CoallocationRequest* request_ = nullptr;
  sim::IdSlab<std::vector<rsl::JobRequest>> remaining_;
  std::size_t fallbacks_ = 0;
  bool committed_ = false;
};

/// Races alternative resources for one logical slot: all alternatives are
/// submitted as interactive subjobs; the first to check in is kept and the
/// rest removed, then the request commits.
class FirstAvailableAgent {
 public:
  FirstAvailableAgent(Coallocator& mechanisms,
                      std::vector<rsl::JobRequest> alternatives,
                      RequestCallbacks user_callbacks);

  CoallocationRequest& request() { return *request_; }
  /// The winning subjob (0 until one checks in).
  SubjobHandle winner() const { return winner_; }

 private:
  void on_subjob(SubjobHandle handle, SubjobState state,
                 const util::Status& why);

  Coallocator* mech_;
  RequestCallbacks user_;
  CoallocationRequest* request_ = nullptr;
  SubjobHandle winner_ = 0;
  std::size_t alternatives_live_ = 0;
};

}  // namespace grid::core
