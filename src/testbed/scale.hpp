// Grid-at-scale scenario: sustained co-allocation against O(1k) resources.
//
// The paper's experiments (§4) measure one co-allocation at a time against
// a handful of resources.  This scenario family asks the opposite
// question: does the whole stack — information service, broker, GRAM,
// DUROC mechanisms — stay cheap when a computational grid runs at
// production scale?  It assembles:
//
//   - O(1k) heterogeneous resource managers (mixed scheduler policies,
//     16..256 processors, per-host cost scaling);
//   - an open-loop background workload: Poisson arrivals with a diurnal
//     rate profile submitted directly to the local schedulers, O(100k..1M)
//     jobs per simulated day, keeping every queue busy and the published
//     snapshots churning;
//   - a sustained stream of co-allocation transactions (mixed GRAB-style
//     atomic and DUROC-style interactive, 2..N subjobs each) routed
//     through GisClient + ResourceBroker summary queries from a small pool
//     of co-allocation agents.
//
// Everything is driven by the simulation engine and seeded RNG streams:
// two runs with the same spec produce identical metrics, including the
// order-sensitive fingerprint.  The scenario itself never reads wall
// clocks — bench/app_grid_scale measures wall time and RSS around run().
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "app/behaviors.hpp"
#include "core/coallocator.hpp"
#include "info/broker.hpp"
#include "info/gis.hpp"
#include "sched/infoservice.hpp"
#include "sched/predict.hpp"
#include "simkit/rng.hpp"
#include "testbed/grid.hpp"

namespace grid::testbed {

/// One simulated day; the diurnal rate profile repeats on this period.
inline constexpr sim::Time kSimDay = 24 * sim::kHour;

struct ScaleSpec {
  int resources = 1000;
  std::uint64_t seed = 0x5ca1eULL;
  sim::Time duration = kSimDay;

  // Background (locally submitted) workload.
  double background_jobs_per_day = 950'000.0;
  /// lambda(t) = mean * (1 + amplitude * sin(2*pi*t / day)).
  double diurnal_amplitude = 0.6;
  sim::Time background_mean_runtime = 6 * sim::kMinute;
  std::int32_t background_max_count = 16;

  // Co-allocation transactions.
  double transactions_per_day = 24'000.0;
  double atomic_fraction = 0.5;  // remainder run DUROC-interactive
  int min_subjobs = 2;
  int max_subjobs = 5;
  std::int32_t min_count = 2;
  std::int32_t max_count = 12;
  std::size_t broker_candidates = 12;
  int agents = 4;

  // Information plane.
  sim::Time publish_interval = 30 * sim::kSecond;
  bool gis_payload_cache = true;

  /// CI-sized preset: same shape, ~2 orders of magnitude fewer jobs.
  static ScaleSpec quick();
};

struct ScaleMetrics {
  sim::Time simulated = 0;
  std::uint64_t events_executed = 0;

  std::uint64_t background_submitted = 0;
  std::uint64_t background_rejected = 0;
  std::uint64_t background_completed = 0;

  std::uint64_t txn_attempted = 0;
  std::uint64_t txn_placed = 0;        // broker found k placements
  std::uint64_t txn_select_failed = 0;
  std::uint64_t txn_released = 0;      // barrier released
  std::uint64_t txn_done = 0;          // terminal OK
  std::uint64_t txn_aborted = 0;       // terminal error
  std::uint64_t subjobs_requested = 0;

  sched::LoadInformationService::Stats info;
  std::uint64_t gis_queries_served = 0;
  info::GisServer::CacheStats gis_cache;

  /// Order-sensitive digest of the run (completion/terminal sequence);
  /// equal specs must produce equal fingerprints.
  std::uint64_t fingerprint = 0;

  /// Jobs that entered a scheduler: background + co-allocated subjobs.
  std::uint64_t jobs_total() const {
    return background_submitted + subjobs_requested;
  }
};

class ScaleScenario {
 public:
  explicit ScaleScenario(ScaleSpec spec);
  ~ScaleScenario();

  ScaleScenario(const ScaleScenario&) = delete;
  ScaleScenario& operator=(const ScaleScenario&) = delete;

  Grid& grid() { return grid_; }
  sched::LoadInformationService& info_service() { return *service_; }
  info::GisServer& gis_server() { return *gis_server_; }

  /// Runs the scenario for spec.duration and reports.  Call once.
  ScaleMetrics run();

 private:
  struct Agent {
    std::unique_ptr<core::Coallocator> coallocator;
    std::unique_ptr<info::GisClient> gis;
    std::unique_ptr<info::ResourceBroker> broker;
  };

  void schedule_background_arrival();
  void schedule_transaction_arrival();
  void submit_background_job();
  void launch_transaction();
  /// Thinning acceptance for the non-homogeneous Poisson processes.
  bool accept_arrival(sim::Rng& rng);
  void mix(std::uint64_t value);

  ScaleSpec spec_;
  Grid grid_;
  std::vector<Host*> hosts_;
  std::unique_ptr<sched::LoadInformationService> service_;
  std::unique_ptr<info::GisServer> gis_server_;
  sched::AggregateWorkPredictor predictor_;
  app::BarrierStats barrier_stats_;
  std::vector<Agent> agents_;

  sim::Rng arrivals_rng_;
  sim::Rng background_rng_;
  sim::Rng txn_rng_;

  ScaleMetrics metrics_;
  std::uint64_t next_background_id_;
  std::uint64_t txn_seq_ = 0;
  bool ran_ = false;
};

}  // namespace grid::testbed
