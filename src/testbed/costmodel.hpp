// Calibrated cost model for the simulated testbed.
//
// The defaults reproduce the measured constants of the paper's §4.2
// environment (remote client 2 ms from a 64-node Origin 2000, fork-started
// jobs):
//
//   GSI mutual authentication  ~0.50 s   (Figure 3 "authentication")
//   initgroups via NIS         ~0.70 s   (Figure 3 "initgroups()")
//   misc request processing     0.01 s   (Figure 3 "misc.")
//   fork                        0.001 s / process (Figure 3 "fork()")
//   executable load/exec        0.72 s   (closes the gap between Figure 3's
//                                         component sum (~1.21 s) and
//                                         Figure 2's end-to-end ~2 s)
//
// With these, a single GRAM submission lands at ~2 s regardless of process
// count (Figure 2), the DUROC per-subjob serialized cost k is ~1.2 s, and
// a 64-process 25-subjob DUROC request takes ~30 s (Figure 4's shape).
#pragma once

#include "gram/gatekeeper.hpp"
#include "gsi/protocol.hpp"
#include "simkit/time.hpp"

namespace grid::testbed {

struct CostModel {
  /// One-way network latency between any two nodes (paper: ~2 ms).
  sim::Time network_latency = 2 * sim::kMillisecond;
  /// GSI handshake CPU costs (sums to ~0.47 s + 2 RTT ~= 0.5 s).
  gsi::CostModel gsi{};
  /// NIS lookup service time (initgroups ~= this + 1 RTT ~= 0.7 s).
  sim::Time nis_service = 680 * sim::kMillisecond;
  /// Gatekeeper misc processing + executable startup.
  gram::GatekeeperCosts gatekeeper{};
  /// Fork scheduler: per-process process-creation cost.
  sim::Time fork_cost_per_process = 1 * sim::kMillisecond;

  /// The calibrated paper configuration (same as the defaults).
  static CostModel paper() { return CostModel{}; }

  /// A fast configuration for unit tests that don't measure time shapes.
  static CostModel fast();
};

}  // namespace grid::testbed
