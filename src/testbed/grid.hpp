// Testbed assembly: builds a complete simulated grid in one call.
//
// A Grid owns the simulation engine, the network, the security
// infrastructure (CA, gridmap), the shared NIS server, the executable
// registry, and a set of hosts (local scheduler + GRAM gatekeeper each).
// Benches, tests, and examples construct a Grid, install application
// executables, create a co-allocator, and run the event loop.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/coallocator.hpp"
#include "gram/gatekeeper.hpp"
#include "gram/nis.hpp"
#include "gsi/credential.hpp"
#include "net/network.hpp"
#include "sched/batch.hpp"
#include "sched/fork.hpp"
#include "sched/reservation.hpp"
#include "simkit/engine.hpp"
#include "testbed/costmodel.hpp"

namespace grid::testbed {

/// Which local scheduler a host runs.
enum class SchedulerKind {
  kFork,         // queue-less fork starts (the §4.2 benchmark setup)
  kFcfs,         // space-shared FCFS batch queue
  kBackfill,     // FCFS + EASY backfill
  kReservation,  // FCFS + advance reservations
};

struct HostSpec {
  std::string name;
  std::int32_t processors = 64;
  SchedulerKind scheduler = SchedulerKind::kFork;
  /// Multiplies this host's service costs (GSI, gatekeeper, fork) relative
  /// to the grid cost model — heterogeneous testbeds give each resource a
  /// different speed.  1.0 uses the grid model untouched.
  double cost_scale = 1.0;
};

/// One resource: a local scheduler plus its GRAM gatekeeper.
class Host {
 public:
  Host(class Grid& grid, const HostSpec& spec);

  const std::string& name() const { return spec_.name; }
  const HostSpec& spec() const { return spec_; }
  net::NodeId contact() const { return gatekeeper_->contact(); }
  gram::Gatekeeper& gatekeeper() { return *gatekeeper_; }
  sched::LocalScheduler& scheduler() { return *scheduler_; }

  /// The concrete scheduler, when the experiment needs policy-specific
  /// operations (reservations, wait history); nullptr on kind mismatch.
  sched::BatchScheduler* batch_scheduler();
  sched::ReservationScheduler* reservation_scheduler();

  /// Crashes / restores this host (gatekeeper and all its jobs).
  void crash();
  void restore();
  bool is_up() const;

 private:
  class Grid* grid_;
  HostSpec spec_;
  std::unique_ptr<sched::LocalScheduler> scheduler_;
  std::unique_ptr<gram::Gatekeeper> gatekeeper_;
};

class Grid {
 public:
  explicit Grid(CostModel costs = CostModel::paper(),
                std::uint64_t seed = 0x9e3779b9);
  ~Grid();

  Grid(const Grid&) = delete;
  Grid& operator=(const Grid&) = delete;

  sim::Engine& engine() { return engine_; }
  net::Network& network() { return *network_; }
  const CostModel& costs() const { return costs_; }
  gsi::CertificateAuthority& ca() { return ca_; }
  gsi::GridMap& gridmap() { return gridmap_; }
  gram::ExecutableRegistry& executables() { return executables_; }
  gram::NisServer& nis() { return *nis_; }

  /// Adds a host; names must be unique (they are the RSL contact strings).
  Host& add_host(const HostSpec& spec);
  Host& add_host(const std::string& name, std::int32_t processors = 64,
                 SchedulerKind scheduler = SchedulerKind::kFork);
  Host* host(const std::string& name);
  std::size_t host_count() const { return hosts_.size(); }

  /// resourceManagerContact -> gatekeeper address, for co-allocators.
  core::ContactResolver resolver();

  /// Issues a user credential valid for the whole simulation and maps the
  /// subject in the gridmap.
  gsi::Credential make_user(const std::string& subject,
                            const std::string& local_user);

  /// Builds a ready-to-use co-allocator for `subject` (resolver installed).
  std::unique_ptr<core::Coallocator> make_coallocator(
      const std::string& name, const std::string& subject,
      core::RequestConfig defaults = {});

  /// Runs the event loop to completion / until a deadline.
  void run() { engine_.run(); }
  void run_until(sim::Time deadline) { engine_.run_until(deadline); }
  void run_for(sim::Time duration) {
    engine_.run_until(engine_.now() + duration);
  }

 private:
  friend class Host;

  CostModel costs_;
  sim::Engine engine_;
  std::unique_ptr<net::Network> network_;
  gsi::CertificateAuthority ca_;
  gsi::GridMap gridmap_;
  gram::ExecutableRegistry executables_;
  std::unique_ptr<gram::NisServer> nis_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::unordered_map<std::string, Host*> by_name_;
};

/// RSL text helpers used across benches / tests / examples.
std::string rsl_subjob(const std::string& contact, std::int32_t count,
                       const std::string& executable,
                       const std::string& start_type = "required",
                       const std::string& label = "");
std::string rsl_multi(const std::vector<std::string>& subjobs);

}  // namespace grid::testbed
