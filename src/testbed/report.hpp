// Fixed-width table reporting for the benchmark harnesses.
//
// Every bench prints the same rows/series the paper's tables and figures
// report; this formatter keeps that output uniform and diff-friendly.
#pragma once

#include <string>
#include <vector>

namespace grid::testbed {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; cells beyond the header count are dropped, missing cells
  /// render empty.
  void add_row(std::vector<std::string> cells);

  /// Convenience for numeric rows.
  static std::string num(double v, int precision = 3);
  static std::string num(std::int64_t v);

  /// Renders with a header rule and right-aligned numeric-looking cells.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section heading ("== Figure 4: ... ==").
void print_heading(const std::string& title);

/// Prints a table to stdout.
void print_table(const Table& table);

/// Prints a labelled key/value line ("  slope_s_per_subjob = 1.19").
void print_metric(const std::string& name, double value,
                  const std::string& unit = "");

}  // namespace grid::testbed
