#include "testbed/grid.hpp"

namespace grid::testbed {

CostModel CostModel::fast() {
  CostModel m;
  m.network_latency = 1 * sim::kMillisecond;
  m.gsi.client_sign = 1 * sim::kMillisecond;
  m.gsi.server_verify = 1 * sim::kMillisecond;
  m.gsi.client_verify = 1 * sim::kMillisecond;
  m.gsi.server_issue = 1 * sim::kMillisecond;
  m.nis_service = 1 * sim::kMillisecond;
  m.gatekeeper.misc_processing = 1 * sim::kMillisecond;
  m.gatekeeper.exec_startup = 1 * sim::kMillisecond;
  m.fork_cost_per_process = 10 * sim::kMicrosecond;
  return m;
}

namespace {

sim::Time scale_time(sim::Time t, double s) {
  return static_cast<sim::Time>(static_cast<double>(t) * s);
}

}  // namespace

Host::Host(Grid& grid, const HostSpec& spec) : grid_(&grid), spec_(spec) {
  // cost_scale == 1.0 must leave every figure byte-identical, so the
  // unscaled path passes the grid's cost structs through untouched.
  gsi::CostModel gsi_costs = grid_->costs().gsi;
  gram::GatekeeperCosts gk_costs = grid_->costs().gatekeeper;
  sim::Time fork_cost = grid_->costs().fork_cost_per_process;
  if (spec_.cost_scale != 1.0) {
    const double s = spec_.cost_scale;
    gsi_costs.client_sign = scale_time(gsi_costs.client_sign, s);
    gsi_costs.server_verify = scale_time(gsi_costs.server_verify, s);
    gsi_costs.client_verify = scale_time(gsi_costs.client_verify, s);
    gsi_costs.server_issue = scale_time(gsi_costs.server_issue, s);
    gk_costs.misc_processing = scale_time(gk_costs.misc_processing, s);
    gk_costs.exec_startup = scale_time(gk_costs.exec_startup, s);
    fork_cost = scale_time(fork_cost, s);
  }
  switch (spec_.scheduler) {
    case SchedulerKind::kFork:
      scheduler_ = std::make_unique<sched::ForkScheduler>(
          grid_->engine(), fork_cost, spec_.processors);
      break;
    case SchedulerKind::kFcfs:
      scheduler_ = std::make_unique<sched::BatchScheduler>(
          grid_->engine(), spec_.processors, sched::Backfill::kNone);
      break;
    case SchedulerKind::kBackfill:
      scheduler_ = std::make_unique<sched::BatchScheduler>(
          grid_->engine(), spec_.processors, sched::Backfill::kEasy);
      break;
    case SchedulerKind::kReservation:
      scheduler_ = std::make_unique<sched::ReservationScheduler>(
          grid_->engine(), spec_.processors);
      break;
  }
  gatekeeper_ = std::make_unique<gram::Gatekeeper>(
      grid_->network(), spec_.name, *scheduler_, grid_->executables(),
      grid_->ca(), grid_->gridmap(),
      grid_->ca().issue("/O=Grid/CN=host/" + spec_.name,
                        sim::kTimeNever / 2),
      grid_->nis().id(), gsi_costs, gk_costs);
}

sched::BatchScheduler* Host::batch_scheduler() {
  return dynamic_cast<sched::BatchScheduler*>(scheduler_.get());
}

sched::ReservationScheduler* Host::reservation_scheduler() {
  return dynamic_cast<sched::ReservationScheduler*>(scheduler_.get());
}

void Host::crash() {
  grid_->network().set_node_up(gatekeeper_->contact(), false);
}

void Host::restore() {
  grid_->network().set_node_up(gatekeeper_->contact(), true);
  gatekeeper_->endpoint().restart();
}

bool Host::is_up() const {
  return grid_->network().is_up(gatekeeper_->contact());
}

Grid::Grid(CostModel costs, std::uint64_t seed)
    : costs_(costs),
      ca_("/O=Grid/CN=TestbedCA", seed ^ 0xca5eedULL) {
  network_ = std::make_unique<net::Network>(engine_);
  network_->set_drop_seed(seed ^ 0xd70b5eedULL);
  network_->set_latency_model(
      std::make_unique<net::FixedLatency>(costs_.network_latency));
  nis_ = std::make_unique<gram::NisServer>(*network_, costs_.nis_service);
}

Grid::~Grid() = default;

Host& Grid::add_host(const HostSpec& spec) {
  auto host = std::make_unique<Host>(*this, spec);
  Host& ref = *host;
  by_name_[spec.name] = host.get();
  hosts_.push_back(std::move(host));
  return ref;
}

Host& Grid::add_host(const std::string& name, std::int32_t processors,
                     SchedulerKind scheduler) {
  return add_host(HostSpec{name, processors, scheduler});
}

Host* Grid::host(const std::string& name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

core::ContactResolver Grid::resolver() {
  return [this](const std::string& contact) -> util::Result<net::NodeId> {
    Host* h = host(contact);
    if (h == nullptr) {
      // Static message: brokers probing a churning testbed hit this miss
      // path per candidate, and an allocating status would put string
      // construction on the selection hot path.
      return util::small_status(util::ErrorCode::kNotFound,
                                "unknown contact");
    }
    return h->contact();
  };
}

gsi::Credential Grid::make_user(const std::string& subject,
                                const std::string& local_user) {
  gridmap_.add(subject, local_user);
  nis_->add_user(local_user, {"grid", "research"});
  return ca_.issue(subject, sim::kTimeNever / 2);
}

std::unique_ptr<core::Coallocator> Grid::make_coallocator(
    const std::string& name, const std::string& subject,
    core::RequestConfig defaults) {
  auto coallocator = std::make_unique<core::Coallocator>(
      *network_, name, ca_, make_user(subject, "user-" + name), costs_.gsi,
      defaults);
  coallocator->set_contact_resolver(resolver());
  return coallocator;
}

std::string rsl_subjob(const std::string& contact, std::int32_t count,
                       const std::string& executable,
                       const std::string& start_type,
                       const std::string& label) {
  std::string s = "(&(resourceManagerContact=\"" + contact + "\")" +
                  "(count=" + std::to_string(count) + ")" +
                  "(executable=\"" + executable + "\")" +
                  "(subjobStartType=" + start_type + ")";
  if (!label.empty()) {
    s += "(label=\"" + label + "\")";
  }
  s += ")";
  return s;
}

std::string rsl_multi(const std::vector<std::string>& subjobs) {
  std::string s = "+";
  for (const std::string& sub : subjobs) s += sub;
  return s;
}

}  // namespace grid::testbed
