#include "testbed/scale.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace grid::testbed {
namespace {

// Background job ids must never collide with the gatekeepers' GRAM job
// ids, which share the same local scheduler id space and count up from 1.
constexpr std::uint64_t kBackgroundJobBase = 1ULL << 32;

constexpr double kPi = 3.14159265358979323846;

std::string host_name(int index) {
  std::string n = std::to_string(index);
  return "rm" + std::string(4 - std::min<std::size_t>(4, n.size()), '0') + n;
}

}  // namespace

ScaleSpec ScaleSpec::quick() {
  ScaleSpec s;
  s.resources = 96;
  s.duration = 2 * sim::kHour;
  s.background_jobs_per_day = 120'000.0;  // ~10k jobs over the 2h window
  s.transactions_per_day = 2'400.0;       // ~200 transactions
  s.agents = 2;
  s.broker_candidates = 8;
  return s;
}

ScaleScenario::ScaleScenario(ScaleSpec spec)
    : spec_(spec),
      grid_(CostModel::fast(), spec.seed),
      predictor_(spec.background_mean_runtime),
      arrivals_rng_(spec.seed ^ 0xa771ULL),
      background_rng_(spec.seed ^ 0xb4c6ULL),
      txn_rng_(spec.seed ^ 0x7a17ULL),
      next_background_id_(kBackgroundJobBase) {
  // Heterogeneous resource pool: mixed sizes, speeds, and policies.  The
  // draw order is fixed, so the pool is a pure function of the seed.
  sim::Rng shape_rng(spec_.seed ^ 0x5a9eULL);
  static constexpr std::int32_t kSizes[] = {16, 32, 64, 128, 256};
  hosts_.reserve(static_cast<std::size_t>(spec_.resources));
  for (int i = 0; i < spec_.resources; ++i) {
    HostSpec hs;
    hs.name = host_name(i);
    hs.processors = kSizes[shape_rng.uniform_int(0, 4)];
    const std::int64_t policy = shape_rng.uniform_int(0, 9);
    hs.scheduler = policy < 7   ? SchedulerKind::kBackfill
                   : policy < 9 ? SchedulerKind::kFcfs
                                : SchedulerKind::kFork;
    hs.cost_scale = shape_rng.uniform(0.5, 2.0);
    Host& h = grid_.add_host(hs);
    if (auto* batch = h.batch_scheduler()) {
      // A day of open-loop arrivals would otherwise accumulate O(1M) wait
      // observations nobody reads; the scenario keeps none.
      batch->set_history_capacity(0);
    }
    hosts_.push_back(&h);
  }

  service_ = std::make_unique<sched::LoadInformationService>(
      grid_.engine(), spec_.publish_interval);
  std::vector<std::string> contacts;
  contacts.reserve(hosts_.size());
  for (Host* h : hosts_) {
    service_->register_resource(h->name(), &h->scheduler());
    contacts.push_back(h->name());
  }
  gis_server_ = std::make_unique<info::GisServer>(grid_.network(), *service_,
                                                  1 * sim::kMillisecond);
  gis_server_->set_contacts(std::move(contacts));
  gis_server_->set_payload_cache(spec_.gis_payload_cache);

  app::StartupProfile profile;
  profile.init_delay = 50 * sim::kMillisecond;
  profile.init_jitter = 100 * sim::kMillisecond;
  profile.run_time = 2 * sim::kMinute;
  profile.failure_probability = 0.02;  // per-subjob stochastic failures
  profile.mode_on_chance = app::FailureMode::kCrashBeforeBarrier;
  profile.failure_per_job = true;
  app::install_app(grid_.executables(), "scale_app", profile, &barrier_stats_,
                   spec_.seed ^ 0xab91ULL);

  core::RequestConfig config;
  config.rpc_timeout = 15 * sim::kSecond;
  config.startup_timeout = 1 * sim::kHour;  // queued subjobs may wait
  agents_.reserve(static_cast<std::size_t>(spec_.agents));
  for (int i = 0; i < spec_.agents; ++i) {
    Agent agent;
    agent.coallocator = grid_.make_coallocator(
        "agent" + std::to_string(i),
        "/O=Grid/CN=agent" + std::to_string(i), config);
    agent.gis = std::make_unique<info::GisClient>(
        agent.coallocator->endpoint(), gis_server_->contact());
    agent.broker =
        std::make_unique<info::ResourceBroker>(*agent.gis, predictor_);
    agents_.push_back(std::move(agent));
  }
}

ScaleScenario::~ScaleScenario() = default;

void ScaleScenario::mix(std::uint64_t value) {
  metrics_.fingerprint =
      (metrics_.fingerprint ^ value) * 0x100000001b3ULL;
}

bool ScaleScenario::accept_arrival(sim::Rng& rng) {
  // Thinning: candidate arrivals are drawn at the peak rate
  // lambda_max = mean * (1 + A) and kept with probability
  // lambda(t) / lambda_max, which yields the diurnal profile exactly.
  const double phase = 2.0 * kPi *
                       static_cast<double>(grid_.engine().now() % kSimDay) /
                       static_cast<double>(kSimDay);
  const double relative = 1.0 + spec_.diurnal_amplitude * std::sin(phase);
  const double peak = 1.0 + spec_.diurnal_amplitude;
  return rng.uniform(0.0, peak) < relative;
}

void ScaleScenario::schedule_background_arrival() {
  if (spec_.background_jobs_per_day <= 0.0) return;
  const double peak_per_day =
      spec_.background_jobs_per_day * (1.0 + spec_.diurnal_amplitude);
  const sim::Time mean_gap = std::max<sim::Time>(
      1, static_cast<sim::Time>(static_cast<double>(kSimDay) / peak_per_day));
  grid_.engine().schedule_after(
      arrivals_rng_.exponential_time(mean_gap), [this] {
        if (accept_arrival(arrivals_rng_)) submit_background_job();
        schedule_background_arrival();
      });
}

void ScaleScenario::submit_background_job() {
  Host* host = hosts_[static_cast<std::size_t>(
      background_rng_.uniform_int(0, spec_.resources - 1))];
  sched::JobDescriptor desc;
  desc.id = next_background_id_++;
  desc.count = static_cast<std::int32_t>(background_rng_.uniform_int(
      1, std::min(spec_.background_max_count,
                  host->scheduler().total_processors())));
  desc.runtime = std::max<sim::Time>(
      sim::kMillisecond,
      background_rng_.exponential_time(spec_.background_mean_runtime));
  // Users over-estimate; backfill plans with the estimate, not the truth.
  desc.estimated_runtime = static_cast<sim::Time>(
      static_cast<double>(desc.runtime) * background_rng_.uniform(1.0, 2.0));
  const util::Status status = host->scheduler().submit(
      desc, [](sched::JobId) {},
      [this](sched::JobId id, sched::EndReason reason) {
        if (reason == sched::EndReason::kCompleted) {
          ++metrics_.background_completed;
          mix(id);
        }
      });
  if (status.is_ok()) {
    ++metrics_.background_submitted;
  } else {
    ++metrics_.background_rejected;
  }
}

void ScaleScenario::schedule_transaction_arrival() {
  if (spec_.transactions_per_day <= 0.0) return;
  const double peak_per_day =
      spec_.transactions_per_day * (1.0 + spec_.diurnal_amplitude);
  const sim::Time mean_gap = std::max<sim::Time>(
      1, static_cast<sim::Time>(static_cast<double>(kSimDay) / peak_per_day));
  grid_.engine().schedule_after(
      arrivals_rng_.exponential_time(mean_gap), [this] {
        if (accept_arrival(arrivals_rng_)) launch_transaction();
        schedule_transaction_arrival();
      });
}

void ScaleScenario::launch_transaction() {
  ++metrics_.txn_attempted;
  Agent& agent = agents_[txn_seq_++ % agents_.size()];
  const int subjobs = static_cast<int>(
      txn_rng_.uniform_int(spec_.min_subjobs, spec_.max_subjobs));
  const std::int32_t count = static_cast<std::int32_t>(
      txn_rng_.uniform_int(spec_.min_count, spec_.max_count));
  const bool atomic = txn_rng_.uniform(0.0, 1.0) < spec_.atomic_fraction;

  // Sample a distinct candidate set; a rare duplicate after the bounded
  // retry loop is harmless (the broker queries it twice).
  std::vector<std::string> candidates;
  candidates.reserve(spec_.broker_candidates);
  std::vector<int> picked;
  for (std::size_t c = 0; c < spec_.broker_candidates; ++c) {
    int index = 0;
    for (int attempt = 0; attempt < 4; ++attempt) {
      index = static_cast<int>(txn_rng_.uniform_int(0, spec_.resources - 1));
      if (std::find(picked.begin(), picked.end(), index) == picked.end())
        break;
    }
    picked.push_back(index);
    candidates.push_back(hosts_[static_cast<std::size_t>(index)]->name());
  }

  core::Coallocator* mech = agent.coallocator.get();
  agent.broker->select_by_summary(
      std::move(candidates), static_cast<std::size_t>(subjobs), count,
      10 * sim::kSecond,
      [this, mech, count, atomic](
          util::Result<std::vector<info::ResourceBroker::Placement>> result) {
        if (!result.is_ok()) {
          ++metrics_.txn_select_failed;
          mix(metrics_.txn_select_failed);
          return;
        }
        core::RequestCallbacks callbacks;
        callbacks.on_released = [this](const core::RuntimeConfig&) {
          ++metrics_.txn_released;
        };
        // The id is only known after create_request, so the terminal
        // callback reads it through shared state; destruction is deferred
        // one event because a request must never die inside its own
        // callback.
        auto id_holder = std::make_shared<core::RequestId>(0);
        callbacks.on_terminal = [this, mech,
                                 id_holder](const util::Status& status) {
          if (status.is_ok()) {
            ++metrics_.txn_done;
          } else {
            ++metrics_.txn_aborted;
          }
          mix(static_cast<std::uint64_t>(grid_.engine().now()) ^
              (status.is_ok() ? 0x90ULL : 0xbadULL));
          const core::RequestId id = *id_holder;
          grid_.engine().schedule_after(
              0, [mech, id] { mech->destroy_request(id); });
        };
        core::CoallocationRequest* req = mech->create_request(callbacks);
        *id_holder = req->id();
        // GRAB-style atomic transactions make every subjob required; the
        // DUROC-interactive mix anchors one required subjob and lets the
        // rest fail individually (§3.2 categories).
        const auto requests = info::ResourceBroker::build_requests(
            result.value(), count, "scale_app",
            atomic ? rsl::SubjobStartType::kRequired
                   : rsl::SubjobStartType::kInteractive);
        bool first = true;
        for (rsl::JobRequest jr : requests) {
          if (!atomic && first) jr.start_type = rsl::SubjobStartType::kRequired;
          first = false;
          req->add_subjob(std::move(jr));
          ++metrics_.subjobs_requested;
        }
        ++metrics_.txn_placed;
        req->start();
        req->commit();
      });
}

ScaleMetrics ScaleScenario::run() {
  if (ran_) return metrics_;
  ran_ = true;
  service_->start();
  schedule_background_arrival();
  schedule_transaction_arrival();
  grid_.run_until(spec_.duration);

  metrics_.simulated = grid_.engine().now();
  metrics_.events_executed = grid_.engine().executed();
  metrics_.info = service_->stats();
  metrics_.gis_queries_served = gis_server_->queries_served();
  metrics_.gis_cache = gis_server_->cache_stats();
  return metrics_;
}

}  // namespace grid::testbed
