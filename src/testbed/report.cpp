#include "testbed/report.hpp"

#include <cctype>
#include <cstdio>

namespace grid::testbed {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' &&
        c != '-' && c != '+' && c != 'e' && c != '%' && c != 'x') {
      return false;
    }
  }
  return true;
}

}  // namespace

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto pad = [](const std::string& s, std::size_t w, bool right) {
    std::string out;
    if (right) out.append(w - s.size(), ' ');
    out += s;
    if (!right) out.append(w - s.size(), ' ');
    return out;
  };
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) out += "  ";
    out += pad(headers_[c], widths[c], false);
  }
  out += '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) out += "  ";
    out.append(widths[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c != 0) out += "  ";
      out += pad(row[c], widths[c], looks_numeric(row[c]));
    }
    out += '\n';
  }
  return out;
}

void print_heading(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

void print_table(const Table& table) {
  std::fputs(table.render().c_str(), stdout);
}

void print_metric(const std::string& name, double value,
                  const std::string& unit) {
  std::printf("  %s = %.4f%s%s\n", name.c_str(), value,
              unit.empty() ? "" : " ", unit.c_str());
}

}  // namespace grid::testbed
