#!/usr/bin/env bash
# The full correctness gauntlet, locally: gridlint (tree scan + fixture
# selftest), then build + ctest under every correctness preset — default,
# asan (ASan+UBSan), ubsan, tsan, and checked (GRID_CHECKED invariant
# tripwires).  clang-tidy runs if the binary is installed, and is skipped
# with a note otherwise.
#
# Usage: scripts/run_checks.sh [preset...]   (default: all presets)
# Exit code: non-zero on the first failing stage.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan ubsan tsan checked)
fi

echo "== gridlint =="
python3 tools/gridlint/gridlint.py --root . || exit 1
python3 tools/gridlint/gridlint.py --root . --selftest || exit 1

for preset in "${presets[@]}"; do
  echo "== ${preset}: configure + build + ctest =="
  cmake --preset "$preset" >/dev/null || exit 1
  cmake --build --preset "$preset" -j "$(nproc)" >/dev/null || exit 1
  ctest --preset "$preset" -j "$(nproc)" --output-on-failure || exit 1
done

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy =="
  cmake --build build --target tidy || exit 1
else
  echo "== clang-tidy: not installed, skipped =="
fi

echo "all checks passed"
