#!/usr/bin/env bash
# Builds the Release bench preset, runs the engine, message-path and
# scheduler microbenches, the grid-at-scale workload, and the retry
# ablation, and diffs each fresh
# BENCH_*.json
# against its committed baseline, warning when any throughput figure
# regressed by more than 20%.
#
# Usage: scripts/run_benches.sh
# Exit code: non-zero if a bench itself fails its shape check; regressions
# against the baseline only warn (wall-clock numbers are machine-relative).
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

echo "== configure + build (bench preset, Release) =="
cmake --preset bench >/dev/null || exit 1
cmake --build --preset bench -j "$(nproc)" >/dev/null || exit 1

status=0

echo
echo "== bench/micro_engine =="
fresh_engine_json="build-bench/BENCH_engine.json"
./build-bench/bench/micro_engine "$fresh_engine_json" || status=1

echo
echo "== bench/micro_net =="
fresh_net_json="build-bench/BENCH_net.json"
./build-bench/bench/micro_net "$fresh_net_json" || status=1

echo
echo "== bench/micro_sched =="
fresh_sched_json="build-bench/BENCH_sched.json"
./build-bench/bench/micro_sched "$fresh_sched_json" || status=1

echo
echo "== bench/app_grid_scale =="
fresh_scale_json="build-bench/BENCH_scale.json"
./build-bench/bench/app_grid_scale "$fresh_scale_json" || status=1

echo
echo "== bench/ablate_retry =="
./build-bench/bench/ablate_retry || status=1

# diff_json <committed baseline> <fresh output>
diff_json() {
  local baseline="$1" fresh="$2"
  [[ -f "$baseline" && -f "$fresh" ]] || return 0
  echo
  echo "== regression check vs committed $baseline (warn at >20%) =="
  python3 - "$baseline" "$fresh" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    base = json.load(f)
with open(sys.argv[2]) as f:
    fresh = json.load(f)

def walk(prefix, b, f, rows):
    for key, bv in b.items():
        fv = f.get(key)
        if isinstance(bv, dict) and isinstance(fv, dict):
            walk(prefix + key + ".", bv, fv, rows)
        elif isinstance(bv, (int, float)) and not isinstance(bv, bool) \
                and isinstance(fv, (int, float)) and bv > 0:
            rows.append((prefix + key, bv, fv))

rows = []
walk("", base, fresh, rows)
worst = 0
for name, bv, fv in rows:
    # Throughput-style fields: smaller is worse.  Skip wall-clock seconds,
    # per-query microseconds, memory footprints and machine shape, where
    # smaller is better or the value is machine-relative.
    if name.endswith(("_s", "workers", "_us", "_mb", "threads")):
        continue
    delta = (fv - bv) / bv
    flag = ""
    if delta < -0.20:
        flag = "  <-- REGRESSION"
        worst += 1
    print(f"  {name:55s} {bv:10.2f} -> {fv:10.2f}  {delta:+6.1%}{flag}")
if worst:
    print(f"\nWARNING: {worst} figure(s) regressed by more than 20% "
          f"against the committed baseline.")
else:
    print("\nno >20% regressions against the committed baseline.")
PY
}

diff_json BENCH_engine.json "$fresh_engine_json"
diff_json BENCH_net.json "$fresh_net_json"
diff_json BENCH_sched.json "$fresh_sched_json"
diff_json BENCH_scale.json "$fresh_scale_json"

exit $status
