// §2.2 ablation — forecast-guided resource selection vs. information
// staleness.
//
// "the co-allocator may use information published by local managers to
// select from among alternative candidate resources ... Simulation studies
// have shown that this approach can be effective if there is a minimum
// period of time over which load information remains valid [14]."
//
// Experiment: a broker must place a 16-processor subjob on one of 8 batch
// machines with churning background load.  It picks the machine with the
// smallest predicted wait, computed from snapshots published by the grid
// information service every `interval`.  As the publish interval grows
// past the timescale on which load changes, forecast-guided selection
// degrades toward random selection.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sched/batch.hpp"
#include "sched/infoservice.hpp"
#include "sched/predict.hpp"
#include "simkit/engine.hpp"
#include "simkit/rng.hpp"
#include "simkit/stats.hpp"
#include "simkit/trialpool.hpp"
#include "testbed/report.hpp"

using namespace grid;

namespace {

constexpr int kMachines = 8;
constexpr std::int32_t kProcs = 64;
constexpr std::int32_t kJobSize = 16;
// Background load changes on a ~5 minute timescale.
const sim::Time kChurn = 5 * sim::kMinute;

struct World {
  sim::Engine engine;
  std::vector<std::unique_ptr<sched::BatchScheduler>> machines;
  sim::Rng rng;

  explicit World(std::uint64_t seed) : rng(seed) {
    for (int i = 0; i < kMachines; ++i) {
      machines.push_back(
          std::make_unique<sched::BatchScheduler>(engine, kProcs));
    }
    // Churning background load: each machine receives random jobs forever.
    for (int i = 0; i < kMachines; ++i) {
      schedule_background(i);
    }
  }

  void schedule_background(int machine) {
    // ~50% utilization per machine: jobs of ~32 processors x ~kChurn
    // runtime arriving every ~kChurn, so queue states change on the kChurn
    // timescale without saturating the system.
    const sim::Time gap = rng.exponential_time(kChurn);
    engine.schedule_after(gap, [this, machine] {
      sched::JobDescriptor d;
      d.id = next_id++;
      d.count = static_cast<std::int32_t>(rng.uniform_int(8, 56));
      d.runtime = rng.exponential_time(kChurn);
      d.estimated_runtime = d.runtime;
      machines[static_cast<std::size_t>(machine)]->submit(d, nullptr, nullptr);
      schedule_background(machine);
    });
  }

  sched::JobId next_id = 1;
};

/// Mean wait of probe jobs placed with a given strategy.
/// interval < 0 selects randomly (no information at all).
double run(sim::Time interval, std::uint64_t seed, int probes) {
  World world(seed);
  sched::LoadInformationService gis(
      world.engine, interval < 0 ? sim::kHour : interval);
  for (int i = 0; i < kMachines; ++i) {
    gis.register_resource("m" + std::to_string(i),
                          world.machines[static_cast<std::size_t>(i)].get());
  }
  gis.start();
  sched::AggregateWorkPredictor predictor(kChurn);
  auto waits = std::make_shared<util::Accumulator>();
  sim::Rng pick_rng(seed ^ 0xabcdef);

  // Warm the system up, then place probes every ~3 minutes.
  for (int p = 0; p < probes; ++p) {
    const sim::Time at = sim::kHour + p * 5 * sim::kMinute;
    world.engine.schedule_at(at, [&world, &gis, &predictor, &pick_rng,
                                  interval, waits] {
      int best = 0;
      if (interval < 0) {
        best = static_cast<int>(pick_rng.uniform_int(0, kMachines - 1));
      } else {
        sim::Time best_wait = sim::kTimeNever;
        for (int i = 0; i < kMachines; ++i) {
          auto snap = gis.query("m" + std::to_string(i));
          if (!snap.is_ok()) continue;
          const sim::Time w = predictor.predict(snap.value(), kJobSize);
          if (w < best_wait) {
            best_wait = w;
            best = i;
          }
        }
      }
      sched::JobDescriptor d;
      d.id = world.next_id++;
      d.count = kJobSize;
      d.runtime = sim::kMinute;
      d.estimated_runtime = d.runtime;
      const sim::Time submitted = world.engine.now();
      world.machines[static_cast<std::size_t>(best)]->submit(
          d,
          [waits, submitted, &world](sched::JobId) {
            waits->add(sim::to_seconds(world.engine.now() - submitted));
          },
          nullptr);
    });
  }
  world.engine.run_until(sim::kHour + (probes + 30) * 5 * sim::kMinute);
  return waits->mean();
}

}  // namespace

int main() {
  testbed::print_heading(
      "Forecast-guided co-allocation vs. load-information staleness "
      "(background load churns on a ~5 min timescale)");
  testbed::Table table({"publish_interval", "mean_probe_wait_s",
                        "vs_random"});
  constexpr int kProbes = 60;
  constexpr int kSeeds = 5;
  // Seeded trials are isolated worlds; fan them across the pool and fold
  // the per-seed means in seed order so the report never depends on
  // completion order.
  sim::TrialPool pool;
  auto mean_over_seeds = [&](sim::Time interval) {
    const std::vector<double> means = pool.map<double>(
        kSeeds, [interval](std::size_t s) {
          return run(interval, 100 + static_cast<std::uint64_t>(s), kProbes);
        });
    util::Accumulator acc;
    for (double m : means) acc.add(m);
    return acc.mean();
  };
  const double random_wait = mean_over_seeds(-1);
  double fresh_wait = 0, stale_wait = 0;
  struct Row {
    std::string label;
    sim::Time interval;
  };
  const std::vector<Row> rows = {
      {"10 s", 10 * sim::kSecond},   {"1 min", sim::kMinute},
      {"5 min", 5 * sim::kMinute},   {"15 min", 15 * sim::kMinute},
      {"60 min", 60 * sim::kMinute},
  };
  for (const Row& row : rows) {
    const double w = mean_over_seeds(row.interval);
    if (row.interval == 10 * sim::kSecond) fresh_wait = w;
    if (row.interval == 60 * sim::kMinute) stale_wait = w;
    table.add_row({row.label, testbed::Table::num(w, 1),
                   testbed::Table::num(w / random_wait, 2)});
  }
  table.add_row({"random (no info)", testbed::Table::num(random_wait, 1),
                 "1.00"});
  testbed::print_table(table);
  const bool shape_ok =
      fresh_wait < 0.7 * random_wait && stale_wait > 0.8 * fresh_wait;
  std::printf(
      "\nshape check: fresh load information beats random selection; once\n"
      "the publish interval exceeds the load-validity period (~5 min) the\n"
      "benefit collapses (ref [14]'s simulation finding): %s\n",
      shape_ok ? "HOLDS" : "VIOLATED");
  return shape_ok ? 0 : 1;
}
