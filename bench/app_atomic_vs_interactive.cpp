// §4.3 — GRAB (atomic transactions) vs. DUROC (interactive transactions)
// under realistic failure rates.
//
// "On several occasions, we had actually acquired an acceptable number of
// resources, but then had to abort and restart the simulation due to
// failure or slowness of a single resource.  As startup and initialization
// of large simulations on large parallel computers can take 15 minutes or
// more, the cost inherent in such unnecessary restarts is tremendous."
//
// Experiment: co-allocate 5 machines whose applications take ~15 virtual
// minutes to initialize; each subjob independently fails with probability
// p.  The atomic strategy aborts everything and resubmits until a run
// succeeds; the interactive strategy substitutes failed subjobs from a
// spare pool without restarting the survivors.  Metric: expected time to a
// released (fully co-allocated) computation, and restarts/substitutions.
#include <cstdio>

#include "app/behaviors.hpp"
#include "core/grab.hpp"
#include "core/strategies.hpp"
#include "testbed/grid.hpp"
#include "testbed/report.hpp"

using namespace grid;

namespace {

constexpr int kMachines = 5;
constexpr int kSpares = 20;
constexpr std::int32_t kProcsPerMachine = 80;
const sim::Time kInitTime = 15 * sim::kMinute;
const sim::Time kStartupTimeout = 45 * sim::kMinute;

struct TrialSetup {
  std::unique_ptr<testbed::Grid> grid;
  app::BarrierStats stats;
  std::unique_ptr<core::Coallocator> mech;

  TrialSetup(double failure_prob, std::uint64_t seed) {
    grid = std::make_unique<testbed::Grid>(testbed::CostModel::paper(), seed);
    for (int i = 1; i <= kMachines + kSpares; ++i) {
      grid->add_host("site" + std::to_string(i), 128);
    }
    app::StartupProfile profile;
    profile.init_delay = kInitTime;
    profile.init_jitter = 2 * sim::kMinute;
    // A failing process crashes partway through initialization, so the
    // failure is discovered only after substantial time has been sunk —
    // the paper's "failures in a resource often could not be detected
    // until after the application had been started".
    profile.failure_probability = failure_prob;  // per machine, not process
    profile.failure_per_job = true;
    profile.mode_on_chance = app::FailureMode::kCrashBeforeBarrier;
    app::install_app(grid->executables(), "sim", profile, &stats, seed * 7);
    core::RequestConfig defaults;
    defaults.startup_timeout = kStartupTimeout;
    mech = grid->make_coallocator("agent", "/CN=bench", defaults);
  }

  std::string rsl() const {
    std::vector<std::string> subs;
    for (int i = 1; i <= kMachines; ++i) {
      subs.push_back(testbed::rsl_subjob("site" + std::to_string(i),
                                         kProcsPerMachine, "sim",
                                         "interactive"));
    }
    return testbed::rsl_multi(subs);
  }
};

struct TrialResult {
  double time_to_start_s = -1;
  int attempts = 0;  // restarts (GRAB) or substitutions (DUROC)
  bool success = false;
};

/// GRAB: atomic all-or-nothing; on failure, resubmit the whole request.
TrialResult run_atomic(double p, std::uint64_t seed) {
  TrialSetup setup(p, seed);
  core::GrabAllocator grab(*setup.mech);
  TrialResult result;
  constexpr int kMaxAttempts = 40;
  std::function<void()> attempt = [&] {
    ++result.attempts;
    grab.allocate(
        setup.rsl(),
        {.on_started =
             [&](const core::RuntimeConfig&) {
               result.success = true;
               result.time_to_start_s =
                   sim::to_seconds(setup.grid->engine().now());
             },
         .on_done =
             [&](const util::Status& status) {
               if (!status.is_ok() && !result.success &&
                   result.attempts < kMaxAttempts) {
                 attempt();  // formulate and resubmit (paper §3.2)
               }
             }});
  };
  attempt();
  setup.grid->run();
  return result;
}

/// DUROC: interactive; failed subjobs are substituted from the spare pool.
TrialResult run_interactive(double p, std::uint64_t seed) {
  TrialSetup setup(p, seed);
  std::vector<std::string> spares;
  for (int i = kMachines + 1; i <= kMachines + kSpares; ++i) {
    spares.push_back("site" + std::to_string(i));
  }
  TrialResult result;
  core::ReplacementAgent agent(
      *setup.mech, {.spare_contacts = spares, .auto_commit = true},
      {.on_subjob = nullptr,
       .on_released =
           [&](const core::RuntimeConfig& config) {
             if (config.total_processes == kMachines * kProcsPerMachine) {
               result.success = true;
               result.time_to_start_s =
                   sim::to_seconds(setup.grid->engine().now());
             }
           },
       .on_terminal = nullptr});
  agent.request().add_rsl(setup.rsl());
  agent.request().start();
  setup.grid->run();
  result.attempts = static_cast<int>(agent.substitutions_made());
  return result;
}

}  // namespace

int main() {
  testbed::print_heading(
      "GRAB (atomic) vs DUROC (interactive) time-to-start, 5 machines, "
      "~15 min application startup");
  testbed::Table table({"failure_prob", "atomic_mean_s", "atomic_restarts",
                        "interactive_mean_s", "interactive_substs",
                        "speedup"});
  constexpr int kTrials = 10;
  bool interactive_always_wins = true;
  for (double p : {0.0, 0.05, 0.1, 0.2, 0.3, 0.4}) {
    util::Accumulator atomic_time, atomic_attempts;
    util::Accumulator inter_time, inter_attempts;
    for (int t = 0; t < kTrials; ++t) {
      const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(t);
      const TrialResult a = run_atomic(p, seed);
      const TrialResult d = run_interactive(p, seed);
      if (a.success) {
        atomic_time.add(a.time_to_start_s);
        atomic_attempts.add(a.attempts - 1);  // restarts beyond the first
      }
      if (d.success) {
        inter_time.add(d.time_to_start_s);
        inter_attempts.add(d.attempts);
      }
    }
    const double speedup = atomic_time.mean() / inter_time.mean();
    if (p > 0.05 && speedup < 1.0) interactive_always_wins = false;
    table.add_row({testbed::Table::num(p, 2),
                   testbed::Table::num(atomic_time.mean(), 1),
                   testbed::Table::num(atomic_attempts.mean(), 2),
                   testbed::Table::num(inter_time.mean(), 1),
                   testbed::Table::num(inter_attempts.mean(), 2),
                   testbed::Table::num(speedup, 2)});
  }
  testbed::print_table(table);
  std::printf(
      "\nshape check: at p=0 the strategies tie; as per-resource failure\n"
      "probability grows, atomic restarts multiply the ~15-minute startup\n"
      "cost while interactive substitution pays it once: %s\n",
      interactive_always_wins ? "HOLDS" : "VIOLATED");
  return interactive_always_wins ? 0 : 1;
}
