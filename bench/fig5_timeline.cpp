// Figure 5 — timeline of a DUROC submission.
//
// The paper's figure shows that the individual GRAM requests of a DUROC
// submission are issued sequentially (GSI, initgroups, misc, fork phases
// per subjob on the client's critical path) while the startup tail of each
// subjob (exec, application init, barrier wait) overlaps with later
// submissions, until the commit releases every process at once.
//
// This bench reconstructs that timeline from per-subjob timestamps and
// renders it as an ASCII Gantt chart.
#include <cstdio>
#include <string>
#include <vector>

#include "app/behaviors.hpp"
#include "core/duroc.hpp"
#include "testbed/grid.hpp"
#include "testbed/report.hpp"

using namespace grid;

int main() {
  testbed::Grid grid(testbed::CostModel::paper());
  grid.add_host("origin2000", 256);
  app::BarrierStats stats;
  app::install_app(grid.executables(), "app", app::StartupProfile{}, &stats);
  auto mech = grid.make_coallocator("duroc-agent", "/CN=bench");
  core::DurocAllocator duroc(*mech);
  sim::Time released_at = -1;
  auto* req = duroc.create_request(
      {.on_subjob = nullptr,
       .on_released =
           [&](const core::RuntimeConfig&) { released_at = grid.engine().now(); },
       .on_terminal = nullptr});
  req->add_rsl(testbed::rsl_multi({
      testbed::rsl_subjob("origin2000", 16, "app", "required"),
      testbed::rsl_subjob("origin2000", 16, "app", "required"),
      testbed::rsl_subjob("origin2000", 16, "app", "required"),
      testbed::rsl_subjob("origin2000", 16, "app", "required"),
  }));
  req->commit();
  grid.run();

  testbed::print_heading("Figure 5: timeline of a DUROC submission "
                         "(4 subjobs x 16 processes)");
  testbed::Table table({"subjob", "submit_s", "accept_s", "active_s",
                        "checkin_s", "release_s"});
  std::vector<core::SubjobView> views;
  for (core::SubjobHandle h : req->subjobs()) {
    auto view = req->subjob(h);
    if (view.is_ok()) views.push_back(view.value());
  }
  for (const auto& v : views) {
    table.add_row({testbed::Table::num(static_cast<std::int64_t>(v.handle)),
                   testbed::Table::num(sim::to_seconds(v.submitted_at)),
                   testbed::Table::num(sim::to_seconds(v.accepted_at)),
                   testbed::Table::num(sim::to_seconds(v.active_at)),
                   testbed::Table::num(sim::to_seconds(v.checked_in_at)),
                   testbed::Table::num(sim::to_seconds(v.released_at))});
  }
  testbed::print_table(table);

  // ASCII Gantt: S = submission (client critical path: GSI + initgroups +
  // misc + fork), x = startup tail (exec + app init), b = barrier wait,
  // R = release instant.
  const double horizon = sim::to_seconds(released_at) + 0.2;
  const int width = 100;
  auto col = [&](sim::Time t) {
    int c = static_cast<int>(sim::to_seconds(t) / horizon * width);
    return std::min(std::max(c, 0), width - 1);
  };
  std::printf("\n  0s %*s %.1fs\n", width - 8, "", horizon);
  for (const auto& v : views) {
    std::string line(static_cast<std::size_t>(width), ' ');
    for (int c = col(v.submitted_at); c <= col(v.accepted_at); ++c) {
      line[static_cast<std::size_t>(c)] = 'S';
    }
    for (int c = col(v.accepted_at) + 1; c <= col(v.checked_in_at); ++c) {
      line[static_cast<std::size_t>(c)] = 'x';
    }
    for (int c = col(v.checked_in_at) + 1; c < col(v.released_at); ++c) {
      line[static_cast<std::size_t>(c)] = 'b';
    }
    line[static_cast<std::size_t>(col(v.released_at))] = 'R';
    std::printf("  subjob %llu |%s|\n",
                static_cast<unsigned long long>(v.handle), line.c_str());
  }
  std::printf("\n  S = GRAM request on the client critical path "
              "(sequential)\n  x = remote startup (overlaps later "
              "submissions)\n  b = barrier wait\n  R = commit releases all "
              "subjobs at %.3f s\n",
              sim::to_seconds(released_at));

  // Shape checks: submissions strictly sequential, startup tails overlap.
  bool sequential = true;
  bool overlapped = false;
  for (std::size_t i = 1; i < views.size(); ++i) {
    if (views[i].submitted_at < views[i - 1].accepted_at) sequential = false;
    if (views[i].submitted_at < views[i - 1].checked_in_at) overlapped = true;
  }
  std::printf("\nshape check (sequential submissions, overlapped startup): "
              "%s\n",
              sequential && overlapped ? "HOLDS" : "VIOLATED");
  return sequential && overlapped ? 0 : 1;
}
