// §3.2 ablation — acquisition ordering and the cost of failure.
//
// "A user can control the order in which resources are allocated, so as to
// reduce the cost of failure."  Experiment: a request needs one *required*
// resource that happens to be down, plus 7 healthy interactive resources.
// Because subjob submissions are serialized, placing the risky required
// subjob first discovers the failure before anything else is acquired;
// placing it last wastes a full acquisition (GSI + initgroups + job
// manager) on every healthy machine before the abort rolls them back.
#include <cstdio>

#include "app/behaviors.hpp"
#include "core/duroc.hpp"
#include "testbed/grid.hpp"
#include "testbed/report.hpp"

using namespace grid;

namespace {

struct Measure {
  double time_to_abort_s = -1;
  int wasted_acquisitions = 0;  // subjobs accepted before the abort
};

Measure run(bool required_first) {
  testbed::Grid grid(testbed::CostModel::paper());
  for (int i = 1; i <= 7; ++i) {
    grid.add_host("safe" + std::to_string(i), 64);
  }
  grid.add_host("risky", 64);
  grid.host("risky")->crash();  // the required resource is down
  app::BarrierStats stats;
  app::install_app(grid.executables(), "app", app::StartupProfile{}, &stats);
  core::RequestConfig config;
  config.rpc_timeout = 10 * sim::kSecond;
  auto mech = grid.make_coallocator("agent", "/CN=bench", config);
  core::DurocAllocator duroc(*mech);
  Measure out;
  auto* req = duroc.create_request(
      {.on_subjob =
           [&](core::SubjobHandle, core::SubjobState s, const util::Status&) {
             if (s == core::SubjobState::kPending) ++out.wasted_acquisitions;
           },
       .on_released = nullptr,
       .on_terminal =
           [&](const util::Status& status) {
             if (!status.is_ok()) {
               out.time_to_abort_s = sim::to_seconds(grid.engine().now());
             }
           }});
  auto add = [&](const std::string& contact, const std::string& type) {
    rsl::JobRequest j;
    j.resource_manager_contact = contact;
    j.executable = "app";
    j.count = 8;
    j.start_type = type == "required" ? rsl::SubjobStartType::kRequired
                                      : rsl::SubjobStartType::kInteractive;
    req->add_subjob(std::move(j));
  };
  if (required_first) add("risky", "required");
  for (int i = 1; i <= 7; ++i) {
    add("safe" + std::to_string(i), "interactive");
  }
  if (!required_first) add("risky", "required");
  req->commit();
  grid.run();
  return out;
}

}  // namespace

int main() {
  testbed::print_heading(
      "Ablation: acquisition ordering vs. cost of failure "
      "(1 dead required resource + 7 healthy interactive)");
  const Measure first = run(/*required_first=*/true);
  const Measure last = run(/*required_first=*/false);
  testbed::Table table({"ordering", "time_to_abort_s",
                        "acquisitions_wasted"});
  table.add_row({"required first", testbed::Table::num(first.time_to_abort_s),
                 testbed::Table::num(
                     static_cast<std::int64_t>(first.wasted_acquisitions))});
  table.add_row({"required last", testbed::Table::num(last.time_to_abort_s),
                 testbed::Table::num(
                     static_cast<std::int64_t>(last.wasted_acquisitions))});
  testbed::print_table(table);
  const bool shape_ok = first.time_to_abort_s >= 0 &&
                        first.time_to_abort_s < last.time_to_abort_s &&
                        first.wasted_acquisitions == 0 &&
                        last.wasted_acquisitions >= 7;
  std::printf("\nshape check: acquiring the risky required resource first "
              "discovers the\nfailure before any other resource is touched: "
              "%s\n",
              shape_ok ? "HOLDS" : "VIOLATED");
  return shape_ok ? 0 : 1;
}
