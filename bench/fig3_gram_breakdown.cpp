// Figure 3 — breakdown of time spent processing a single-process GRAM
// request.
//
// Paper values:  initgroups() 0.7 s, authentication 0.5 s, misc 0.01 s,
// fork 0.001 s.  Each component here is *measured* by driving the live
// protocol piece in isolation (not read back from the cost model): the GSI
// handshake against a real gatekeeper endpoint, an initgroups() lookup
// against the shared NIS server, a fork-scheduler submission, and the
// residual request-processing time of a full submission.
#include <cstdio>

#include "app/behaviors.hpp"
#include "gram/client.hpp"
#include "gram/nis.hpp"
#include "gsi/protocol.hpp"
#include "sched/fork.hpp"
#include "testbed/grid.hpp"
#include "testbed/report.hpp"

using namespace grid;

int main() {
  testbed::Grid grid(testbed::CostModel::paper());
  grid.add_host("origin2000", 64);
  app::BarrierStats stats;
  app::install_app(grid.executables(), "app", app::StartupProfile{}, &stats);
  const gsi::Credential cred = grid.make_user("/CN=bench", "bench");

  // --- authentication: a GSI mutual-auth handshake against the gatekeeper.
  net::Endpoint auth_ep(grid.network(), "auth-probe");
  gsi::ClientContext auth_client(auth_ep, grid.ca(), cred, grid.costs().gsi);
  sim::Time auth_time = -1;
  {
    const sim::Time t0 = grid.engine().now();
    auth_client.authenticate(
        grid.host("origin2000")->contact(), 60 * sim::kSecond,
        [&](util::Result<gsi::Session> s) {
          if (s.is_ok()) auth_time = grid.engine().now() - t0;
        });
    grid.run();
  }

  // --- initgroups(): one NIS lookup (remote group database consultation).
  net::Endpoint nis_ep(grid.network(), "nis-probe");
  gram::NisClient nis_client(nis_ep, grid.nis().id());
  sim::Time initgroups_time = -1;
  {
    const sim::Time t0 = grid.engine().now();
    nis_client.initgroups("bench", 60 * sim::kSecond,
                          [&](util::Result<std::vector<std::string>> groups) {
                            if (groups.is_ok()) {
                              initgroups_time = grid.engine().now() - t0;
                            }
                          });
    grid.run();
  }

  // --- fork(): process creation under the fork scheduler.
  sim::Time fork_time = -1;
  {
    sched::ForkScheduler forker(grid.engine(),
                                grid.costs().fork_cost_per_process);
    const sim::Time t0 = grid.engine().now();
    sched::JobDescriptor d;
    d.id = 1;
    d.count = 1;
    forker.submit(d, [&](sched::JobId) { fork_time = grid.engine().now() - t0; },
                  nullptr);
    grid.run();
    forker.complete(1);
  }

  // --- full request, to derive the misc. residual.
  sim::Time full_time = -1;
  {
    net::Endpoint ep(grid.network(), "remote-client");
    gram::Client client(ep, grid.ca(), cred, grid.costs().gsi);
    const sim::Time t0 = grid.engine().now();
    client.submit(grid.host("origin2000")->contact(),
                  "&(resourceManagerContact=origin2000)(count=1)"
                  "(executable=app)",
                  60 * sim::kSecond, [&](util::Result<gram::JobId> r) {
                    if (r.is_ok()) full_time = grid.engine().now() - t0;
                  });
    grid.run();
  }

  const double auth_s = sim::to_seconds(auth_time);
  const double ig_s = sim::to_seconds(initgroups_time);
  const double fork_s = sim::to_seconds(fork_time);
  const double full_s = sim::to_seconds(full_time);
  const double misc_s = full_s - auth_s - ig_s;  // request parsing & setup

  testbed::print_heading(
      "Figure 3: breakdown of a single-process GRAM request");
  testbed::Table table({"operation", "measured_s", "paper_s"});
  table.add_row({"initgroups()", testbed::Table::num(ig_s), "0.7"});
  table.add_row({"authentication", testbed::Table::num(auth_s), "0.5"});
  table.add_row({"misc.", testbed::Table::num(misc_s), "0.01"});
  table.add_row({"fork()", testbed::Table::num(fork_s), "0.001"});
  testbed::print_table(table);
  testbed::print_metric("request_accept_total", full_s, "s");
  std::printf("\nshape check: initgroups() is the largest contributor, then\n"
              "authentication; all other costs are an order of magnitude "
              "smaller.\n");
  const bool shape_ok = ig_s > auth_s && auth_s > 10 * misc_s &&
                        misc_s > fork_s;
  std::printf("ordering initgroups > auth >> misc > fork: %s\n",
              shape_ok ? "HOLDS" : "VIOLATED");
  return shape_ok ? 0 : 1;
}
