// Engine-core microbenchmark: schedule/cancel/fire throughput of the slab +
// 4-ary-heap + inplace-callback engine versus the seed engine, plus the
// TrialPool serial-vs-parallel ensemble comparison.
//
// The seed engine (heap-allocated entries, `std::function` callbacks,
// `unordered_map` cancellation index, lazy tombstone removal) is embedded
// below verbatim as `legacy::Engine`, so the comparison is measured inside
// one binary on the same workload rather than against a remembered number.
//
// Three event-loop patterns, chosen to match real traffic in this repo:
//   schedule_fire — pure event-loop throughput (network message delivery);
//   schedule_cancel — timers armed and disarmed before firing (RPC
//     timeouts, heartbeat deadlines: the dominant pattern since PR 1);
//   timer_churn — the full RPC shape: completion fires and cancels its
//     own timeout, then re-arms the next pair.
//
// Writes the measurements to BENCH_engine.json (override with argv[1]);
// scripts/run_benches.sh diffs that against the committed baseline.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "app/behaviors.hpp"
#include "core/duroc.hpp"
#include "simkit/engine.hpp"
#include "simkit/rng.hpp"
#include "simkit/trialpool.hpp"
#include "testbed/grid.hpp"
#include "testbed/report.hpp"

using namespace grid;

namespace legacy {

// The seed implementation of sim::Engine, kept as the measurement baseline.
using Time = sim::Time;

class EventId {
 public:
  EventId() = default;

 private:
  friend class Engine;
  explicit EventId(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  ~Engine() {
    while (!queue_.empty()) {
      delete queue_.top();
      queue_.pop();
    }
  }
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  EventId schedule_at(Time t, Callback fn) {
    if (t < now_) t = now_;
    const std::uint64_t seq = next_seq_++;
    auto* e = new Entry{t, seq, std::move(fn), false};
    queue_.push(e);
    index_.emplace(seq, e);
    ++live_;
    return EventId(seq);
  }

  EventId schedule_after(Time delay, Callback fn) {
    return schedule_at(
        delay >= sim::kTimeNever - now_ ? sim::kTimeNever : now_ + delay,
        std::move(fn));
  }

  bool cancel(EventId id) {
    auto it = index_.find(id.seq_);
    if (it == index_.end()) return false;
    it->second->cancelled = true;
    it->second->fn = nullptr;
    index_.erase(it);
    --live_;
    return true;
  }

  bool step() {
    Entry* e = pop_next();
    if (e == nullptr) return false;
    now_ = e->at;
    index_.erase(e->seq);
    --live_;
    ++executed_;
    Callback fn = std::move(e->fn);
    delete e;
    fn();
    return true;
  }

  void run() {
    while (step()) {
    }
  }

  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Callback fn;
    bool cancelled = false;
  };
  struct Order {
    bool operator()(const Entry* a, const Entry* b) const {
      if (a->at != b->at) return a->at > b->at;
      return a->seq > b->seq;
    }
  };

  Entry* pop_next() {
    while (!queue_.empty()) {
      Entry* e = queue_.top();
      queue_.pop();
      if (e->cancelled) {
        delete e;
        continue;
      }
      return e;
    }
    return nullptr;
  }

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::priority_queue<Entry*, std::vector<Entry*>, Order> queue_;
  std::unordered_map<std::uint64_t, Entry*> index_;
};

}  // namespace legacy

namespace {

constexpr int kBatch = 4096;      // outstanding events per round
constexpr int kRounds = 400;      // rounds per pattern
volatile std::uint64_t g_sink = 0;  // defeats callback elision

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ---- the three event-loop patterns, templated over the engine ------------

/// Schedule a batch at scattered future times, drain, repeat.
/// Ops counted: one schedule + one fire per event.
template <typename EngineT>
double bench_schedule_fire() {
  EngineT e;
  sim::Rng rng(0x5eedf00d);
  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < kRounds; ++round) {
    const sim::Time base = e.now();
    for (int i = 0; i < kBatch; ++i) {
      e.schedule_at(base + rng.uniform_time(1, 1000),
                    [] { g_sink = g_sink + 1; });
    }
    e.run();
  }
  return 2.0 * kBatch * kRounds / seconds_since(t0);
}

/// Arm a batch of far-future timers, then disarm every one before it can
/// fire — the retry/heartbeat pattern.  Ops: one schedule + one cancel.
template <typename EngineT, typename EventIdT>
double bench_schedule_cancel() {
  EngineT e;
  sim::Rng rng(0xcafe);
  std::vector<EventIdT> ids(kBatch);
  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < kRounds; ++round) {
    const sim::Time base = e.now();
    for (int i = 0; i < kBatch; ++i) {
      ids[static_cast<std::size_t>(i)] =
          e.schedule_at(base + 1000000 + rng.uniform_time(1, 1000),
                        [] { g_sink = g_sink + 1; });
    }
    for (int i = 0; i < kBatch; ++i) {
      e.cancel(ids[static_cast<std::size_t>(i)]);
    }
  }
  return 2.0 * kBatch * kRounds / seconds_since(t0);
}

/// The full RPC shape: each completion event cancels its paired timeout
/// and re-arms the next (completion, timeout) pair.  Ops: two schedules,
/// one cancel, one fire per logical call.
template <typename EngineT, typename EventIdT>
double bench_timer_churn() {
  EngineT e;
  const std::uint64_t calls =
      static_cast<std::uint64_t>(kBatch) * kRounds / 4;
  struct Loop {
    EngineT* e;
    std::uint64_t remaining;
    std::function<void()> next;
  } loop{&e, calls, nullptr};
  loop.next = [&loop] {
    if (loop.remaining-- == 0) return;
    // Timeout armed far in the future; completion beats it and disarms it.
    EventIdT timeout = loop.e->schedule_after(
        1000000, [] { g_sink = g_sink + 1; });
    loop.e->schedule_after(10, [&loop, timeout] {
      loop.e->cancel(timeout);
      loop.next();
    });
  };
  const auto t0 = std::chrono::steady_clock::now();
  loop.next();
  e.run();
  return 4.0 * static_cast<double>(calls) / seconds_since(t0);
}

// ---- trial-ensemble comparison -------------------------------------------

/// One small DUROC co-allocation trial, the unit of every ensemble sweep.
std::uint64_t run_ensemble_trial(std::uint64_t seed) {
  testbed::Grid grid(testbed::CostModel::paper(), seed);
  app::BarrierStats stats;
  for (int i = 1; i <= 3; ++i) {
    grid.add_host("site" + std::to_string(i), 16);
  }
  app::StartupProfile profile;
  profile.init_delay = 50 * sim::kMillisecond;
  profile.init_jitter = 100 * sim::kMillisecond;
  profile.run_time = 5 * sim::kSecond;
  app::install_app(grid.executables(), "sim", profile, &stats, seed * 7 + 1);
  auto mech = grid.make_coallocator("agent", "/CN=micro", {});
  core::DurocAllocator duroc(*mech);
  sim::Time released_at = -1;
  core::RequestCallbacks cbs;
  cbs.on_released = [&](const core::RuntimeConfig&) {
    released_at = grid.engine().now();
  };
  core::CoallocationRequest* req = duroc.create_request(std::move(cbs));
  std::vector<std::string> subs;
  for (int i = 1; i <= 3; ++i) {
    subs.push_back(
        testbed::rsl_subjob("site" + std::to_string(i), 4, "sim", "required"));
  }
  if (!req->add_rsl(testbed::rsl_multi(subs)).is_ok()) return 0;
  req->start();
  if (!req->commit().is_ok()) return 0;
  grid.run_until(5 * sim::kMinute);
  return static_cast<std::uint64_t>(released_at) ^ grid.engine().executed();
}

struct EnsembleResult {
  double serial_s = 0;
  double parallel_s = 0;
  unsigned workers = 0;
  unsigned hw_threads = 0;
  bool identical = false;
};

EnsembleResult bench_ensemble(int trials) {
  EnsembleResult r;
  std::vector<std::uint64_t> serial(static_cast<std::size_t>(trials));
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < trials; ++i) {
    serial[static_cast<std::size_t>(i)] =
        run_ensemble_trial(1000 + static_cast<std::uint64_t>(i));
  }
  r.serial_s = seconds_since(t0);
  sim::TrialPool pool;
  r.workers = pool.workers();
  r.hw_threads = std::thread::hardware_concurrency();
  t0 = std::chrono::steady_clock::now();
  const std::vector<std::uint64_t> parallel = pool.map<std::uint64_t>(
      static_cast<std::size_t>(trials), [](std::size_t i) {
        return run_ensemble_trial(1000 + static_cast<std::uint64_t>(i));
      });
  r.parallel_s = seconds_since(t0);
  r.identical = serial == parallel;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_engine.json";
  testbed::print_heading(
      "Engine core: slab + 4-ary heap + inplace callbacks vs. seed engine");

  const double new_fire = bench_schedule_fire<sim::Engine>();
  const double old_fire = bench_schedule_fire<legacy::Engine>();
  const double new_cancel =
      bench_schedule_cancel<sim::Engine, sim::EventId>();
  const double old_cancel =
      bench_schedule_cancel<legacy::Engine, legacy::EventId>();
  const double new_churn = bench_timer_churn<sim::Engine, sim::EventId>();
  const double old_churn =
      bench_timer_churn<legacy::Engine, legacy::EventId>();

  const double s_fire = new_fire / old_fire;
  const double s_cancel = new_cancel / old_cancel;
  const double s_churn = new_churn / old_churn;
  const double s_geomean = std::cbrt(s_fire * s_cancel * s_churn);

  testbed::Table table(
      {"pattern", "seed_Mops", "new_Mops", "speedup"});
  auto row = [&](const char* name, double old_ops, double new_ops) {
    table.add_row({name, testbed::Table::num(old_ops / 1e6, 2),
                   testbed::Table::num(new_ops / 1e6, 2),
                   testbed::Table::num(new_ops / old_ops, 2) + "x"});
  };
  row("schedule_fire", old_fire, new_fire);
  row("schedule_cancel", old_cancel, new_cancel);
  row("timer_churn", old_churn, new_churn);
  testbed::print_table(table);

  testbed::print_heading("Trial ensemble: serial loop vs TrialPool");
  const EnsembleResult ens = bench_ensemble(256);
  const double ens_speedup =
      ens.parallel_s > 0 ? ens.serial_s / ens.parallel_s : 0;
  testbed::Table etable({"hw_threads", "workers", "serial_s", "parallel_s",
                         "speedup", "byte_identical"});
  etable.add_row(
      {testbed::Table::num(static_cast<std::int64_t>(ens.hw_threads)),
       testbed::Table::num(static_cast<std::int64_t>(ens.workers)),
       testbed::Table::num(ens.serial_s, 3),
       testbed::Table::num(ens.parallel_s, 3),
       testbed::Table::num(ens_speedup, 2) + "x",
       ens.identical ? "yes" : "NO"});
  testbed::print_table(etable);

  std::FILE* f = std::fopen(out_path, "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"schema\": \"grid.bench_engine.v1\",\n"
                 "  \"engine\": {\n"
                 "    \"schedule_fire_Mops\": %.2f,\n"
                 "    \"schedule_cancel_Mops\": %.2f,\n"
                 "    \"timer_churn_Mops\": %.2f,\n"
                 "    \"speedup_vs_seed\": {\n"
                 "      \"schedule_fire\": %.2f,\n"
                 "      \"schedule_cancel\": %.2f,\n"
                 "      \"timer_churn\": %.2f,\n"
                 "      \"geomean\": %.2f\n"
                 "    }\n"
                 "  },\n"
                 "  \"trial_ensemble\": {\n"
                 "    \"hw_threads\": %u,\n"
                 "    \"workers\": %u,\n"
                 "    \"serial_s\": %.3f,\n"
                 "    \"parallel_s\": %.3f,\n"
                 "    \"speedup\": %.2f,\n"
                 "    \"byte_identical\": %s\n"
                 "  }\n"
                 "}\n",
                 new_fire / 1e6, new_cancel / 1e6, new_churn / 1e6, s_fire,
                 s_cancel, s_churn, s_geomean, ens.hw_threads, ens.workers,
                 ens.serial_s, ens.parallel_s, ens_speedup,
                 ens.identical ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path);
  }

  // Ensemble gate: with real parallel hardware (>=4 workers) the pool must
  // scale >=2x; on fewer workers — e.g. a single-CPU CI box, where a
  // wall-clock speedup is physically impossible — it must at least not
  // pessimize the sweep (single-worker pools run inline), and in every
  // case the parallel results must be byte-identical to the serial loop.
  const double ens_want = ens.workers >= 4 ? 2.0 : 0.85;
  const bool ens_ok = ens.identical && ens_speedup >= ens_want;
  const bool ok = s_geomean >= 3.0 && ens_ok;
  std::printf(
      "\nshape check: engine core >=3x over the seed engine (geomean %.2fx),\n"
      "ensemble speedup %.2fx >= %.2fx at %u worker(s) on %u hardware "
      "thread(s),\nand parallel ensemble byte-identical to serial: %s\n",
      s_geomean, ens_speedup, ens_want, ens.workers, ens.hw_threads,
      ok ? "HOLDS" : "VIOLATED");
  return ok ? 0 : 1;
}
