// Scheduler decision-path microbenchmark: the profile-based EASY backfill
// (sched::BatchScheduler) versus the scan-based reference oracle
// (sched::ReferenceBackfill), measured in one binary on the same workload
// (the micro_engine / micro_net recipe).
//
// The workload is the shape the rewrite targets: a machine saturated by
// running jobs with staggered estimates, a wide head job that cannot start
// (so EASY shadow/extra gate every decision), and a queue already D jobs
// deep.  Each measured "decision" is one submit into that queue — the
// scheduler must decide admit-now / hold, which costs the reference a full
// O(D) queue rescan and the profile path one O(log) fit query against the
// cached shadow state.  Both paths run the identical submit sequence, and
// the bench cross-checks that they agreed on every outcome (queue length,
// busy processors, accept count) — a miniature of tests/sched_diff_test.
//
// Sweeps queue depth 1k -> 100k (--quick shrinks to 1k/4k for ctest).
// Writes measurements to BENCH_sched.json (override with argv[1]);
// scripts/run_benches.sh diffs the JSON against the committed baseline.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sched/batch.hpp"
#include "sched/reference.hpp"
#include "simkit/engine.hpp"
#include "simkit/time.hpp"
#include "testbed/report.hpp"

using namespace grid;

namespace {

constexpr std::int32_t kProcessors = 256;
constexpr std::int32_t kFillJobs = 32;       // running jobs saturating the machine
constexpr std::int32_t kFillWidth = kProcessors / kFillJobs;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

sched::JobDescriptor job(sched::JobId id, std::int32_t count,
                         sim::Time estimate) {
  sched::JobDescriptor d;
  d.id = id;
  d.count = count;
  d.estimated_runtime = estimate;
  return d;
}

/// One scheduler world in the measured configuration.  All submits happen
/// at virtual time 0; the engine never advances, so the decision cost is
/// the only thing on the clock.
template <typename Scheduler>
struct World {
  sim::Engine engine;
  Scheduler sched{engine, kProcessors, sched::Backfill::kEasy};
  sched::JobId next_id = 1;
  std::uint64_t accepted = 0;

  void submit(std::int32_t count, sim::Time estimate) {
    if (sched.submit(job(next_id++, count, estimate), {}, {}).is_ok()) {
      ++accepted;
    }
  }

  /// Saturate the machine, block the head, grow the queue to `depth`.
  void fill_to(std::size_t depth) {
    // Running load: staggered estimated ends give the profile (and the
    // reference's shadow sort) a realistic breakpoint population.
    for (std::int32_t i = 0; i < kFillJobs; ++i) {
      submit(kFillWidth, (100000 + i * 1000) * sim::kSecond);
    }
    // The head wants the whole machine: shadow lands at the last
    // estimated end, extra is zero, and everything behind it holds.
    submit(kProcessors, 1000 * sim::kSecond);
    // Queue filler: too wide for the zero free processors, too long to
    // finish before the shadow — held, exactly like the measured submits.
    while (sched.queue_length() < depth) {
      submit(2, 500000 * sim::kSecond);
    }
  }
};

struct Measured {
  double decisions_per_s = 0;
  std::uint64_t accepted = 0;
  std::size_t queue_length = 0;
  std::int32_t busy = 0;
};

template <typename Scheduler>
Measured run_depth(std::size_t depth, std::uint64_t decisions) {
  World<Scheduler> w;
  w.fill_to(depth);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < decisions; ++i) {
    w.submit(2, 500000 * sim::kSecond);
  }
  const double dt = seconds_since(t0);
  Measured m;
  m.decisions_per_s = static_cast<double>(decisions) / dt;
  m.accepted = w.accepted;
  m.queue_length = w.sched.queue_length();
  m.busy = w.sched.busy_processors();
  return m;
}

struct Row {
  std::size_t depth = 0;
  Measured profile;
  Measured reference;
  double speedup = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_sched.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }
  const std::vector<std::size_t> depths =
      quick ? std::vector<std::size_t>{1000, 4000}
            : std::vector<std::size_t>{1000, 10000, 100000};

  testbed::print_heading(
      "Scheduler decision path: profile-based EASY backfill vs. scan-based "
      "reference oracle");

  std::vector<Row> rows;
  bool agreed = true;
  for (const std::size_t depth : depths) {
    const std::uint64_t decisions =
        quick ? 500 : std::max<std::uint64_t>(1000, depth / 10);
    Row row;
    row.depth = depth;
    row.profile = run_depth<sched::BatchScheduler>(depth, decisions);
    row.reference = run_depth<sched::ReferenceBackfill>(depth, decisions);
    row.speedup =
        row.profile.decisions_per_s / row.reference.decisions_per_s;
    // The two paths ran the identical submit sequence; any disagreement on
    // the observable outcome means the equivalence contract broke.
    if (row.profile.accepted != row.reference.accepted ||
        row.profile.queue_length != row.reference.queue_length ||
        row.profile.busy != row.reference.busy) {
      agreed = false;
      std::printf("DISAGREEMENT at depth %zu: accepted %llu/%llu queue "
                  "%zu/%zu busy %d/%d\n",
                  depth,
                  static_cast<unsigned long long>(row.profile.accepted),
                  static_cast<unsigned long long>(row.reference.accepted),
                  row.profile.queue_length, row.reference.queue_length,
                  row.profile.busy, row.reference.busy);
    }
    rows.push_back(row);
  }

  testbed::Table table({"queue_depth", "ref_kdec/s", "profile_kdec/s",
                        "ref_us/dec", "profile_us/dec", "speedup"});
  for (const Row& r : rows) {
    table.add_row({std::to_string(r.depth),
                   testbed::Table::num(r.reference.decisions_per_s / 1e3, 1),
                   testbed::Table::num(r.profile.decisions_per_s / 1e3, 1),
                   testbed::Table::num(1e6 / r.reference.decisions_per_s, 3),
                   testbed::Table::num(1e6 / r.profile.decisions_per_s, 3),
                   testbed::Table::num(r.speedup, 1) + "x"});
  }
  testbed::print_table(table);

  std::FILE* f = std::fopen(out_path, "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"schema\": \"grid.bench_sched.v1\",\n"
                 "  \"sched\": {\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      // The reference oracle's absolute throughput is deliberately left
      // out: it is the machine-relative denominator (any slowdown there
      // inflates the speedup), so only the figures a regression should
      // move — profile throughput and the ratio — are baselined.
      std::fprintf(f,
                   "    \"depth_%zu\": {\n"
                   "      \"profile_kdec_per_sec\": %.1f,\n"
                   "      \"speedup\": %.1f\n"
                   "    },\n",
                   r.depth, r.profile.decisions_per_s / 1e3, r.speedup);
    }
    std::fprintf(f,
                 "    \"speedup_at_deepest\": %.1f\n"
                 "  }\n"
                 "}\n",
                 rows.back().speedup);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path);
  }

  const double deepest = rows.back().speedup;
  const double want = quick ? 1.5 : 10.0;
#if defined(GRID_SANITIZED)
  // Sanitizer instrumentation skews the two paths differently, so the
  // timing half of the shape is not asserted in those builds.
  const bool check_speedup = false;
#else
  const bool check_speedup = true;
#endif
  const bool ok = agreed && (!check_speedup || deepest >= want);
  std::printf(
      "\nshape check: both paths agree on every decision (%s)\nand the "
      "profile path is >=%.1fx the reference at depth %zu "
      "(%.1fx%s): %s\n",
      agreed ? "yes" : "NO", want, rows.back().depth, deepest,
      check_speedup ? "" : ", not asserted under sanitizers",
      ok ? "HOLDS" : "VIOLATED");
  return ok ? 0 : 1;
}
