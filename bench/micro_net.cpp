// Message-path microbenchmark: the pooled-payload / slab-call-table /
// zero-copy-decode path versus the seed message path, measured inside one
// binary on the same workload (the same recipe as micro_engine).
//
// The seed path (fresh `std::vector<uint8_t>` per frame, byte-at-a-time
// put_le, `unordered_map` pending-call table, `std::function` response
// captures, copying `str()`/`blob()` decoders) is embedded below verbatim
// as `legacy::{Writer,Reader,Network,Endpoint}`.  Both paths run over the
// current sim::Engine so the comparison isolates the message layer, not
// the event loop (that was the previous round's benchmark).
//
// Three traffic patterns, chosen to match real load in this repo:
//   rpc_roundtrip — request/response pairs, the GRAM/GSI/NIS shape;
//   notify_fanout — one frame to many receivers, the DUROC barrier
//     broadcast / abort / gridmpi table shape (new path encodes once and
//     share()s the buffer; seed path re-encodes per receiver);
//   codec_churn — encode+decode of a CheckinMessage-shaped record with no
//     network in between (new path decodes through str_view()).
//
// A scoped sim::AllocGuard (the counting `operator new` hook in
// simkit/allocguard.hpp) asserts the headline claim: after warmup, the new
// path's request/response round-trip allocates NOTHING.
//
// Writes measurements to BENCH_net.json (override with argv[1]; --quick
// shrinks the workload for ctest); scripts/run_benches.sh diffs the JSON
// against the committed baseline.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/rpc.hpp"
#include "simkit/allocguard.hpp"
#include "simkit/codec.hpp"
#include "simkit/engine.hpp"
#include "simkit/status.hpp"
#include "testbed/report.hpp"

using namespace grid;

// ---- the seed message path, embedded verbatim -------------------------------

namespace legacy {

using Bytes = std::vector<std::uint8_t>;

/// The seed util::Writer: appends into a freshly allocated vector, one
/// push_back per byte for fixed-width integers.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_le(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void str(std::string_view s) {
    varint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void blob(const Bytes& b) {
    varint(b.size());
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  Bytes buf_;
};

/// The seed util::Reader: copying str()/blob() accessors only.
class Reader {
 public:
  explicit Reader(const Bytes& buf) : data_(buf.data()), size_(buf.size()) {}
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return data_[pos_ - 1];
  }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return ok_ ? v : 0.0;
  }
  bool boolean() { return u8() != 0; }
  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (!take(1)) return 0;
      const std::uint8_t b = data_[pos_ - 1];
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
    }
    ok_ = false;
    return 0;
  }
  std::string str() {
    const std::uint64_t n = varint();
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  Bytes blob() {
    const std::uint64_t n = varint();
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return {};
    }
    Bytes b(data_ + pos_, data_ + pos_ + n);
    pos_ += static_cast<std::size_t>(n);
    return b;
  }
  bool ok() const { return ok_; }

 private:
  template <typename T>
  T get_le() {
    if (!take(sizeof(T))) return T{};
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ - sizeof(T) + i])
                              << (8 * i)));
    }
    return v;
  }
  bool take(std::size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

using NodeId = std::uint32_t;

struct Message {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t kind = 0;
  Bytes payload;
};

class Node {
 public:
  virtual ~Node() = default;
  virtual void handle_message(const Message& msg) = 0;
};

/// The seed net::Network message path: vector payloads moved through the
/// engine, per-message latency via a virtual model call (fixed here, as in
/// the benchmark's new-path configuration).
class Network {
 public:
  explicit Network(sim::Engine& engine) : engine_(&engine) {}

  NodeId attach(Node* node) {
    const NodeId id = next_id_++;
    nodes_[id] = Slot{node, true, 0};
    return id;
  }

  void send(NodeId src, NodeId dst, std::uint32_t kind, Bytes payload) {
    auto sit = nodes_.find(src);
    if (sit == nodes_.end()) return;
    ++sent_;
    bytes_sent_ += payload.size();
    if (!sit->second.up) return;
    const sim::Time dt = latency(src, dst, payload.size());
    Message msg{src, dst, kind, std::move(payload)};
    engine_->schedule_after(
        dt, [this, m = std::move(msg), se = epoch_of(src),
             de = epoch_of(dst)]() mutable { deliver(std::move(m), se, de); });
  }

  sim::Engine& engine() { return *engine_; }

 private:
  struct Slot {
    Node* node = nullptr;
    bool up = true;
    std::uint64_t epoch = 0;
  };

  sim::Time latency(NodeId, NodeId, std::size_t) {
    return 2 * sim::kMillisecond;
  }
  std::uint64_t epoch_of(NodeId id) const {
    auto it = nodes_.find(id);
    return it == nodes_.end() ? 0 : it->second.epoch;
  }
  void deliver(Message msg, std::uint64_t src_epoch, std::uint64_t dst_epoch) {
    auto it = nodes_.find(msg.dst);
    if (it == nodes_.end() || !it->second.up || it->second.node == nullptr) {
      return;
    }
    if (it->second.epoch != dst_epoch || epoch_of(msg.src) != src_epoch) {
      return;
    }
    ++delivered_;
    it->second.node->handle_message(msg);
  }

  sim::Engine* engine_;
  NodeId next_id_ = 1;
  std::unordered_map<NodeId, Slot> nodes_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

enum Frame : std::uint32_t {
  kFrameRequest = 1,
  kFrameResponse = 2,
  kFrameNotify = 3,
};

/// The seed net::Endpoint client/server path: `unordered_map` pending-call
/// table, `std::function` response callbacks, a fresh Writer vector per
/// frame, copying blob() sub-readers on every dispatch.
class Endpoint : public Node {
 public:
  using ResponseFn =
      std::function<void(const util::Status& status, Reader& result)>;
  using MethodHandler =
      std::function<void(NodeId caller, std::uint64_t call_id, Reader& args)>;
  using NotifyHandler = std::function<void(NodeId src, Reader& payload)>;

  explicit Endpoint(Network& network) : network_(&network) {
    id_ = network_->attach(this);
  }
  ~Endpoint() override {
    for (auto& [call_id, pc] : pending_) {
      engine().cancel(pc.timeout_event);
    }
  }

  NodeId id() const { return id_; }
  sim::Engine& engine() { return network_->engine(); }

  std::uint64_t call(NodeId dst, std::uint32_t method, Bytes args,
                     sim::Time timeout, ResponseFn on_response) {
    const std::uint64_t call_id = next_call_id_++;
    Writer w;
    w.varint(call_id);
    w.u32(method);
    w.blob(args);
    PendingCall pc;
    pc.on_response = std::move(on_response);
    if (timeout > 0) {
      pc.timeout_event = engine().schedule_after(timeout, [this, call_id] {
        fail_call(call_id, util::ErrorCode::kTimeout, "rpc timeout");
      });
    }
    pending_.emplace(call_id, std::move(pc));
    network_->send(id_, dst, kFrameRequest, w.take());
    return call_id;
  }

  void register_method(std::uint32_t method, MethodHandler handler) {
    methods_[method] = std::move(handler);
  }

  void respond(NodeId caller, std::uint64_t call_id, Bytes result) {
    Writer w;
    w.varint(call_id);
    w.boolean(true);
    w.blob(result);
    network_->send(id_, caller, kFrameResponse, w.take());
  }

  void notify(NodeId dst, std::uint32_t kind, Bytes payload) {
    Writer w;
    w.u32(kind);
    w.blob(payload);
    network_->send(id_, dst, kFrameNotify, w.take());
  }

  void register_notify(std::uint32_t kind, NotifyHandler handler) {
    notifies_[kind] = std::move(handler);
  }

  void handle_message(const Message& msg) override {
    Reader r(msg.payload);
    switch (msg.kind) {
      case kFrameRequest: {
        const std::uint64_t call_id = r.varint();
        const std::uint32_t method = r.u32();
        const Bytes args = r.blob();
        if (!r.ok()) return;
        auto it = methods_.find(method);
        if (it == methods_.end()) return;
        Reader args_reader(args);
        it->second(msg.src, call_id, args_reader);
        return;
      }
      case kFrameResponse: {
        const std::uint64_t call_id = r.varint();
        const bool ok = r.boolean();
        auto it = pending_.find(call_id);
        if (it == pending_.end()) return;
        ResponseFn fn = std::move(it->second.on_response);
        engine().cancel(it->second.timeout_event);
        pending_.erase(it);
        if (ok) {
          const Bytes result = r.blob();
          if (!r.ok()) return;
          Reader result_reader(result);
          fn(util::Status::ok(), result_reader);
        }
        return;
      }
      case kFrameNotify: {
        const std::uint32_t kind = r.u32();
        const Bytes payload = r.blob();
        if (!r.ok()) return;
        auto it = notifies_.find(kind);
        if (it == notifies_.end()) return;
        Reader payload_reader(payload);
        it->second(msg.src, payload_reader);
        return;
      }
      default:
        return;
    }
  }

 private:
  struct PendingCall {
    ResponseFn on_response;
    sim::EventId timeout_event;
  };

  void fail_call(std::uint64_t call_id, util::ErrorCode code,
                 const std::string& message) {
    auto it = pending_.find(call_id);
    if (it == pending_.end()) return;
    ResponseFn fn = std::move(it->second.on_response);
    engine().cancel(it->second.timeout_event);
    pending_.erase(it);
    Bytes empty;
    Reader r(empty);
    fn(util::Status(code, message), r);
  }

  Network* network_;
  NodeId id_ = 0;
  std::uint64_t next_call_id_ = 1;
  std::unordered_map<std::uint64_t, PendingCall> pending_;
  std::unordered_map<std::uint32_t, MethodHandler> methods_;
  std::unordered_map<std::uint32_t, NotifyHandler> notifies_;
};

}  // namespace legacy

// ---- the benchmark ----------------------------------------------------------

namespace {

volatile std::uint64_t g_sink = 0;  // defeats elision of decoded values

constexpr std::uint32_t kEchoMethod = 0x42;
constexpr std::uint32_t kNotifyKind = 0x301;
constexpr int kFanout = 24;  // receivers per broadcast frame

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Measured {
  double ops_per_s = 0;
  std::uint64_t allocs = 0;  // heap allocations inside the measured window
  std::uint64_t ops = 0;
};

/// Runs `body(ops)` twice: a warmup pass (pools and tables grow to steady
/// state) and a measured pass inside a sim::AllocGuard counting region.
template <typename Body>
Measured run_measured(std::uint64_t warmup_ops, std::uint64_t ops,
                      Body&& body) {
  body(warmup_ops);
  sim::AllocGuard guard;
  const auto t0 = std::chrono::steady_clock::now();
  body(ops);
  const double dt = seconds_since(t0);
  Measured m;
  m.ops_per_s = static_cast<double>(ops) / dt;
  m.allocs = guard.allocations();
  m.ops = ops;
  return m;
}

// ---- pattern 1: request/response round-trips --------------------------------

Measured bench_roundtrip_new(std::uint64_t warmup, std::uint64_t roundtrips) {
  sim::Engine e;
  net::Network n{e};
  net::Endpoint server(n, "server");
  net::Endpoint client(n, "client");
  server.register_method(
      kEchoMethod,
      [&server](net::NodeId caller, std::uint64_t call_id, util::Reader& args) {
        const std::uint64_t v = args.u64();
        util::Writer w;
        w.reserve(12);
        w.u64(v + 1);
        server.respond(caller, call_id, w.take());
      });

  std::uint64_t remaining = 0;
  std::function<void()> next = [&] {
    if (remaining-- == 0) return;
    util::Writer w;
    w.reserve(12);
    w.u64(remaining);
    client.call(server.id(), kEchoMethod, w.take(), sim::kSecond,
                [&](const util::Status& status, util::Reader& result) {
                  if (status.is_ok()) g_sink = g_sink + result.u64();
                  next();
                });
  };
  return run_measured(warmup, roundtrips, [&](std::uint64_t ops) {
    remaining = ops;
    next();
    e.run();
  });
}

Measured bench_roundtrip_old(std::uint64_t warmup, std::uint64_t roundtrips) {
  sim::Engine e;
  legacy::Network n{e};
  legacy::Endpoint server(n);
  legacy::Endpoint client(n);
  server.register_method(
      kEchoMethod, [&server](legacy::NodeId caller, std::uint64_t call_id,
                             legacy::Reader& args) {
        const std::uint64_t v = args.u64();
        legacy::Writer w;
        w.u64(v + 1);
        server.respond(caller, call_id, w.take());
      });

  std::uint64_t remaining = 0;
  std::function<void()> next = [&] {
    if (remaining-- == 0) return;
    legacy::Writer w;
    w.u64(remaining);
    client.call(server.id(), kEchoMethod, w.take(), sim::kSecond,
                [&](const util::Status& status, legacy::Reader& result) {
                  if (status.is_ok()) g_sink = g_sink + result.u64();
                  next();
                });
  };
  return run_measured(warmup, roundtrips, [&](std::uint64_t ops) {
    remaining = ops;
    next();
    e.run();
  });
}

// ---- pattern 2: one frame fanned out to many receivers ----------------------

Measured bench_fanout_new(std::uint64_t warmup, std::uint64_t sends) {
  sim::Engine e;
  net::Network n{e};
  net::Endpoint sender(n, "sender");
  std::vector<std::unique_ptr<net::Endpoint>> receivers;
  for (int i = 0; i < kFanout; ++i) {
    receivers.push_back(
        std::make_unique<net::Endpoint>(n, "rx" + std::to_string(i)));
    receivers.back()->register_notify(
        kNotifyKind, [](net::NodeId, util::Reader& r) {
          g_sink = g_sink + r.u64() + r.blob_view().size();
        });
  }
  const util::Bytes body(64, 0x7e);
  return run_measured(warmup, sends, [&](std::uint64_t ops) {
    const std::uint64_t rounds = ops / kFanout;
    for (std::uint64_t round = 0; round < rounds; ++round) {
      util::Writer w;
      w.reserve(80);
      w.u64(round);
      w.blob(body);
      // Encode the notify frame once; every receiver's send shares the
      // same pooled buffer.
      const sim::Payload frame =
          net::Endpoint::encode_notify(kNotifyKind, w.take());
      for (auto& rx : receivers) {
        sender.notify_frame(rx->id(), frame.share());
      }
      e.run();
    }
  });
}

Measured bench_fanout_old(std::uint64_t warmup, std::uint64_t sends) {
  sim::Engine e;
  legacy::Network n{e};
  legacy::Endpoint sender(n);
  std::vector<std::unique_ptr<legacy::Endpoint>> receivers;
  for (int i = 0; i < kFanout; ++i) {
    receivers.push_back(std::make_unique<legacy::Endpoint>(n));
    receivers.back()->register_notify(
        kNotifyKind, [](legacy::NodeId, legacy::Reader& r) {
          g_sink = g_sink + r.u64() + r.blob().size();
        });
  }
  const legacy::Bytes body(64, 0x7e);
  return run_measured(warmup, sends, [&](std::uint64_t ops) {
    const std::uint64_t rounds = ops / kFanout;
    for (std::uint64_t round = 0; round < rounds; ++round) {
      // The seed path re-encodes the payload and the notify frame for
      // every receiver.
      for (auto& rx : receivers) {
        legacy::Writer w;
        w.u64(round);
        w.blob(body);
        sender.notify(rx->id(), kNotifyKind, w.take());
      }
      e.run();
    }
  });
}

// ---- pattern 3: encode/decode churn, no network -----------------------------
//
// The record mirrors core::CheckinMessage: ids, a contact string, a state
// message, a float and a flag.

constexpr std::string_view kContact = "gatekeeper.site-07.example.org:2119";
constexpr std::string_view kStateMsg = "state change: ACTIVE";

Measured bench_churn_new(std::uint64_t warmup, std::uint64_t pairs) {
  return run_measured(warmup, pairs, [&](std::uint64_t ops) {
    for (std::uint64_t i = 0; i < ops; ++i) {
      util::Writer w;
      w.reserve(80);
      w.varint(i);
      w.u32(static_cast<std::uint32_t>(i & 7));
      w.u32(static_cast<std::uint32_t>(i & 63));
      w.str(kContact);
      w.str(kStateMsg);
      w.f64(0.25 * static_cast<double>(i & 1023));
      w.boolean((i & 1) != 0);
      const sim::Payload p = w.take();
      util::Reader r(p);
      std::uint64_t acc = r.varint();
      acc += r.u32();
      acc += r.u32();
      acc += r.str_view().size();   // zero-copy: no std::string built
      acc += r.str_view().size();
      acc += static_cast<std::uint64_t>(r.f64());
      acc += r.boolean() ? 1 : 0;
      g_sink = g_sink + acc;
    }
  });
}

Measured bench_churn_old(std::uint64_t warmup, std::uint64_t pairs) {
  return run_measured(warmup, pairs, [&](std::uint64_t ops) {
    for (std::uint64_t i = 0; i < ops; ++i) {
      legacy::Writer w;
      w.varint(i);
      w.u32(static_cast<std::uint32_t>(i & 7));
      w.u32(static_cast<std::uint32_t>(i & 63));
      w.str(kContact);
      w.str(kStateMsg);
      w.f64(0.25 * static_cast<double>(i & 1023));
      w.boolean((i & 1) != 0);
      const legacy::Bytes p = w.take();
      legacy::Reader r(p);
      std::uint64_t acc = r.varint();
      acc += r.u32();
      acc += r.u32();
      acc += r.str().size();        // the seed decoders copied into strings
      acc += r.str().size();
      acc += static_cast<std::uint64_t>(r.f64());
      acc += r.boolean() ? 1 : 0;
      g_sink = g_sink + acc;
    }
  });
}

double allocs_per_op(const Measured& m) {
  return m.ops > 0
             ? static_cast<double>(m.allocs) / static_cast<double>(m.ops)
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_net.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }
  const std::uint64_t scale = quick ? 1 : 10;
  const std::uint64_t roundtrips = 30000 * scale;
  const std::uint64_t fanout_sends = kFanout * 2000 * scale;
  const std::uint64_t churn_pairs = 50000 * scale;
  const std::uint64_t warmup = 2000;

  testbed::print_heading(
      "Message path: pooled payloads + slab call table + zero-copy decode "
      "vs. seed path");

  const Measured new_rt = bench_roundtrip_new(warmup, roundtrips);
  const Measured old_rt = bench_roundtrip_old(warmup, roundtrips);
  const Measured new_fan = bench_fanout_new(warmup, fanout_sends);
  const Measured old_fan = bench_fanout_old(warmup, fanout_sends);
  const Measured new_churn = bench_churn_new(warmup, churn_pairs);
  const Measured old_churn = bench_churn_old(warmup, churn_pairs);

  const double s_rt = new_rt.ops_per_s / old_rt.ops_per_s;
  const double s_fan = new_fan.ops_per_s / old_fan.ops_per_s;
  const double s_churn = new_churn.ops_per_s / old_churn.ops_per_s;
  const double s_geomean = std::cbrt(s_rt * s_fan * s_churn);

  testbed::Table table({"pattern", "seed_Mops", "new_Mops", "speedup",
                        "seed_allocs/op", "new_allocs/op"});
  auto row = [&](const char* name, const Measured& oldm, const Measured& newm) {
    table.add_row({name, testbed::Table::num(oldm.ops_per_s / 1e6, 3),
                   testbed::Table::num(newm.ops_per_s / 1e6, 3),
                   testbed::Table::num(newm.ops_per_s / oldm.ops_per_s, 2) +
                       "x",
                   testbed::Table::num(allocs_per_op(oldm), 2),
                   testbed::Table::num(allocs_per_op(newm), 2)});
  };
  row("rpc_roundtrip", old_rt, new_rt);
  row("notify_fanout", old_fan, new_fan);
  row("codec_churn", old_churn, new_churn);
  testbed::print_table(table);

  std::FILE* f = std::fopen(out_path, "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"schema\": \"grid.bench_net.v1\",\n"
                 "  \"net\": {\n"
                 "    \"rpc_roundtrip_Mops\": %.3f,\n"
                 "    \"notify_fanout_Mops\": %.3f,\n"
                 "    \"codec_churn_Mops\": %.3f,\n"
                 "    \"steady_state_allocs\": %llu,\n"
                 "    \"speedup_vs_seed\": {\n"
                 "      \"rpc_roundtrip\": %.2f,\n"
                 "      \"notify_fanout\": %.2f,\n"
                 "      \"codec_churn\": %.2f,\n"
                 "      \"geomean\": %.2f\n"
                 "    }\n"
                 "  }\n"
                 "}\n",
                 new_rt.ops_per_s / 1e6, new_fan.ops_per_s / 1e6,
                 new_churn.ops_per_s / 1e6,
                 static_cast<unsigned long long>(new_rt.allocs + new_fan.allocs +
                                                 new_churn.allocs),
                 s_rt, s_fan, s_churn, s_geomean);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path);
  }

  const std::uint64_t new_allocs =
      new_rt.allocs + new_fan.allocs + new_churn.allocs;
#if defined(GRID_SANITIZED)
  // Sanitizer instrumentation skews the seed-vs-new timing ratio, so only
  // the allocation half of the shape is asserted in those builds.
  const bool check_speedup = false;
#else
  const bool check_speedup = true;
#endif
  const bool ok = new_allocs == 0 && (!check_speedup || s_geomean >= 2.0);
  std::printf(
      "\nshape check: zero steady-state allocations on the new path "
      "(%llu seen)\nand >=2x geomean speedup over the seed path "
      "(%.2fx%s): %s\n",
      static_cast<unsigned long long>(new_allocs), s_geomean,
      check_speedup ? "" : ", not asserted under sanitizers",
      ok ? "HOLDS" : "VIOLATED");
  return ok ? 0 : 1;
}
