// §4.3 — the large-scale application experiences.
//
// Reproduces two results:
//
//  1. The SF-Express record run: "DUROC was used to start the largest
//     distributed interactive simulation ever performed, starting a
//     computation on 1386 processors distributed across 13 different
//     parallel supercomputers ... there were difficulties starting some
//     components ... and DUROC was successfully used to configure around
//     these failures."
//
//  2. The GRAB-era claim: "the cost of allocation, monitoring, and control
//     operations was reduced from literally tens of minutes when performed
//     manually to a few keystrokes" — modelled as a manual operator who
//     needs ~2 minutes of interaction per machine (login, submit, verify)
//     versus the co-allocator's protocol cost.
#include <cstdio>
#include <numeric>

#include "app/behaviors.hpp"
#include "core/strategies.hpp"
#include "simkit/trialpool.hpp"
#include "testbed/grid.hpp"
#include "testbed/report.hpp"

using namespace grid;

namespace {

const std::vector<std::int32_t> kSizes = {128, 128, 128, 128, 108, 108, 108,
                                          108, 108, 108, 104, 61, 61};

struct ScaleResult {
  bool released = false;
  double release_time_s = -1;
  int failures_configured_around = 0;
  std::int32_t processes = 0;
};

ScaleResult run_sf_express(int broken_machines, std::uint64_t seed) {
  testbed::Grid grid(testbed::CostModel::paper(), seed);
  app::BarrierStats stats;
  for (std::size_t i = 0; i < kSizes.size(); ++i) {
    grid.add_host("super" + std::to_string(i + 1), 256);
  }
  for (int i = 0; i < broken_machines + 2; ++i) {
    grid.add_host("spare" + std::to_string(i + 1), 256);
  }
  app::StartupProfile sim_profile;
  sim_profile.init_delay = 3 * sim::kMinute;
  sim_profile.init_jitter = sim::kMinute;
  app::install_app(grid.executables(), "sf", sim_profile, &stats, seed);
  // Machine failure, the §4.3 failure mode: the first `broken_machines`
  // supercomputers are down when the request arrives.
  for (int i = 0; i < broken_machines; ++i) {
    grid.host("super" + std::to_string(i + 1))->crash();
  }

  core::RequestConfig defaults;
  defaults.startup_timeout = 30 * sim::kMinute;
  defaults.rpc_timeout = 15 * sim::kSecond;
  auto mech = grid.make_coallocator("agent", "/CN=sf", defaults);
  std::vector<std::string> spares;
  for (int i = 0; i < broken_machines + 2; ++i) {
    spares.push_back("spare" + std::to_string(i + 1));
  }
  ScaleResult result;
  core::ReplacementAgent agent(
      *mech, {.spare_contacts = spares, .auto_commit = true},
      {.on_subjob =
           [&](core::SubjobHandle, core::SubjobState s, const util::Status&) {
             if (s == core::SubjobState::kFailed) {
               ++result.failures_configured_around;
             }
           },
       .on_released =
           [&](const core::RuntimeConfig& config) {
             result.released = true;
             result.release_time_s = sim::to_seconds(grid.engine().now());
             result.processes = config.total_processes;
           },
       .on_terminal = nullptr});
  for (std::size_t i = 0; i < kSizes.size(); ++i) {
    rsl::JobRequest j;
    j.resource_manager_contact = "super" + std::to_string(i + 1);
    j.executable = "sf";
    j.count = kSizes[i];
    j.start_type = rsl::SubjobStartType::kInteractive;
    agent.request().add_subjob(std::move(j));
  }
  agent.request().start();
  grid.run();
  return result;
}

}  // namespace

int main() {
  const std::int32_t total = std::accumulate(kSizes.begin(), kSizes.end(), 0);
  testbed::print_heading(
      "SF-Express scale run: 1386 processes on 13 supercomputers");
  std::printf("total processes requested: %d (paper: 1386)\n\n", total);

  testbed::Table table({"broken_machines", "released", "processes",
                        "failures_handled", "time_to_release_s"});
  bool all_ok = true;
  // Each broken-machine scenario is an isolated 15-host world; fan them
  // out and report in scenario order.
  sim::TrialPool pool;
  const std::vector<ScaleResult> results = pool.map<ScaleResult>(
      4, [](std::size_t broken) {
        return run_sf_express(static_cast<int>(broken), 42);
      });
  for (int broken : {0, 1, 2, 3}) {
    const ScaleResult& r = results[static_cast<std::size_t>(broken)];
    all_ok = all_ok && r.released && r.processes == total &&
             r.failures_configured_around >= broken;
    table.add_row(
        {testbed::Table::num(static_cast<std::int64_t>(broken)),
         r.released ? "yes" : "no",
         testbed::Table::num(static_cast<std::int64_t>(r.processes)),
         testbed::Table::num(
             static_cast<std::int64_t>(r.failures_configured_around)),
         testbed::Table::num(r.release_time_s, 1)});
  }
  testbed::print_table(table);

  // Manual vs co-allocated operation cost ("tens of minutes" -> seconds of
  // operator effort).  The manual operator serially handles each machine
  // (~2 min each) and restarts the whole procedure when a machine turns
  // out broken; the co-allocator's operator effort is one request.
  testbed::print_heading("allocation operator effort: manual vs GRAB/DUROC");
  const double manual_per_machine_min = 2.0;
  const double manual_min =
      manual_per_machine_min * static_cast<double>(kSizes.size());
  const ScaleResult automated = run_sf_express(1, 7);
  testbed::Table effort({"method", "operator_interaction", "notes"});
  effort.add_row({"manual", testbed::Table::num(manual_min, 0) + " min",
                  "serial logins, resubmits on any failure"});
  effort.add_row({"co-allocator", "one request (seconds)",
                  "protocol time " +
                      testbed::Table::num(automated.release_time_s, 0) +
                      " s, failures handled automatically"});
  testbed::print_table(effort);
  std::printf("\nshape check: full 1386-process ensemble released despite "
              "injected machine failures: %s\n",
              all_ok ? "HOLDS" : "VIOLATED");
  return all_ok ? 0 : 1;
}
