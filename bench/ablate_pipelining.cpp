// Design ablation — pipelined vs. fully serialized subjob submission.
//
// Figure 4 credits the sub-linear DUROC cost ("44% less time ... than one
// would expect with zero concurrency") to overlapping each subjob's remote
// startup with later submissions.  This ablation switches the overlap off
// (RequestConfig::serialize_until_checkin) and measures the price.
#include <cstdio>

#include "app/behaviors.hpp"
#include "core/duroc.hpp"
#include "testbed/grid.hpp"
#include "testbed/report.hpp"

using namespace grid;

namespace {

double run(int subjobs, bool serialize) {
  testbed::Grid grid(testbed::CostModel::paper());
  grid.add_host("origin2000", 256);
  app::BarrierStats stats;
  app::install_app(grid.executables(), "app", app::StartupProfile{}, &stats);
  core::RequestConfig config;
  config.serialize_until_checkin = serialize;
  auto mech = grid.make_coallocator("agent", "/CN=bench", config);
  core::DurocAllocator duroc(*mech);
  sim::Time released = -1;
  auto* req = duroc.create_request(
      {.on_subjob = nullptr,
       .on_released =
           [&](const core::RuntimeConfig&) { released = grid.engine().now(); },
       .on_terminal = nullptr});
  std::vector<std::string> subs;
  for (int i = 0; i < subjobs; ++i) {
    subs.push_back(testbed::rsl_subjob("origin2000", 64 / subjobs, "app",
                                       "required"));
  }
  req->add_rsl(testbed::rsl_multi(subs));
  req->commit();
  grid.run();
  return sim::to_seconds(released);
}

}  // namespace

int main() {
  testbed::print_heading(
      "Ablation: pipelined vs. zero-concurrency subjob submission "
      "(64 processes total)");
  testbed::Table table({"subjobs", "pipelined_s", "serialized_s",
                        "overlap_saving"});
  bool monotone = true;
  double saving16 = 0;
  for (int m : {1, 2, 4, 8, 16}) {
    const double piped = run(m, false);
    const double serial = run(m, true);
    const double saving = 1.0 - piped / serial;
    if (m == 16) saving16 = saving;
    if (piped > serial + 1e-9) monotone = false;
    table.add_row({testbed::Table::num(static_cast<std::int64_t>(m)),
                   testbed::Table::num(piped),
                   testbed::Table::num(serial),
                   testbed::Table::num(saving, 3)});
  }
  testbed::print_table(table);
  std::printf("\nshape check: pipelining never loses and saves a large\n"
              "fraction at high subjob counts (paper: 44%% at 25 subjobs): "
              "%s\n",
              monotone && saving16 > 0.25 ? "HOLDS" : "VIOLATED");
  return monotone && saving16 > 0.25 ? 0 : 1;
}
