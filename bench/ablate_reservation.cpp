// §2.2 / §5 ablation — advance reservation vs. best-effort co-allocation.
//
// "by incorporating advance reservation capabilities into a local resource
// manager, a co-allocator can obtain guarantees that a resource will
// deliver a required level of service when required" ... "we believe that
// some form of advance reservation will ultimately be required."
//
// Experiment: co-allocate a 16-processor piece on each of k contended
// batch machines.  Best-effort: the pieces queue independently and the
// computation starts when the *last* machine delivers (the co-allocation
// skew grows with k).  Co-reservation: windows are pre-arranged on all
// machines; the pieces start simultaneously at the window.
#include <cstdio>
#include <algorithm>
#include <memory>
#include <vector>

#include "sched/coreservation.hpp"
#include "sched/reservation.hpp"
#include "simkit/engine.hpp"
#include "simkit/rng.hpp"
#include "simkit/stats.hpp"
#include "testbed/report.hpp"

using namespace grid;

namespace {

constexpr std::int32_t kProcs = 64;
constexpr std::int32_t kPiece = 16;
const sim::Time kMeanJob = 10 * sim::kMinute;

struct Contended {
  sim::Engine engine;
  std::vector<std::unique_ptr<sched::ReservationScheduler>> machines;
  sched::JobId next_id = 1;

  Contended(int k, std::uint64_t seed) {
    sim::Rng rng(seed);
    for (int i = 0; i < k; ++i) {
      machines.push_back(
          std::make_unique<sched::ReservationScheduler>(engine, kProcs));
      // Pre-existing queued load: 4-10 jobs of various widths.
      const auto jobs = rng.uniform_int(4, 10);
      for (std::int64_t j = 0; j < jobs; ++j) {
        sched::JobDescriptor d;
        d.id = next_id++;
        d.count = static_cast<std::int32_t>(rng.uniform_int(16, kProcs));
        d.runtime = rng.exponential_time(kMeanJob);
        d.estimated_runtime = d.runtime;
        machines.back()->submit(d, nullptr, nullptr);
      }
    }
  }
};

struct Measure {
  double start_s = -1;      // when all pieces are running
  double skew_s = -1;       // last piece start - first piece start
  bool simultaneous = false;
};

Measure best_effort(int k, std::uint64_t seed) {
  Contended world(k, seed);
  std::vector<sim::Time> starts;
  for (auto& m : world.machines) {
    sched::JobDescriptor d;
    d.id = world.next_id++;
    d.count = kPiece;
    d.runtime = sim::kHour;  // the co-allocated application
    d.estimated_runtime = d.runtime;
    m->submit(d,
              [&starts, &world](sched::JobId) {
                starts.push_back(world.engine.now());
              },
              nullptr);
  }
  world.engine.run_until(24 * sim::kHour);
  Measure out;
  if (starts.size() != static_cast<std::size_t>(k)) return out;
  const auto [lo, hi] = std::minmax_element(starts.begin(), starts.end());
  out.start_s = sim::to_seconds(*hi);
  out.skew_s = sim::to_seconds(*hi - *lo);
  out.simultaneous = (*hi - *lo) == 0;
  return out;
}

Measure co_reservation(int k, std::uint64_t seed) {
  Contended world(k, seed);
  std::vector<sched::ReservationScheduler*> schedulers;
  for (auto& m : world.machines) schedulers.push_back(m.get());
  sched::CoReservationAgent::Options options;
  options.duration = sim::kHour;
  options.count = kPiece;
  options.step = 10 * sim::kMinute;
  auto holds = sched::CoReservationAgent::acquire(schedulers, options);
  Measure out;
  if (!holds.is_ok()) return out;
  std::vector<sim::Time> starts;
  for (auto& hold : holds.value()) {
    sched::JobDescriptor d;
    d.id = world.next_id++;
    d.count = kPiece;
    d.runtime = 50 * sim::kMinute;
    hold.scheduler->submit_reserved(
        d, hold.reservation.id,
        [&starts, &world](sched::JobId) {
          starts.push_back(world.engine.now());
        },
        nullptr);
  }
  world.engine.run_until(72 * sim::kHour);
  if (starts.size() != world.machines.size()) return out;
  const auto [lo, hi] = std::minmax_element(starts.begin(), starts.end());
  out.start_s = sim::to_seconds(*hi);
  out.skew_s = sim::to_seconds(*hi - *lo);
  out.simultaneous = (*hi - *lo) == 0;
  return out;
}

}  // namespace

int main() {
  testbed::print_heading(
      "Co-reservation vs. best-effort co-allocation on contended machines");
  testbed::Table table({"machines", "besteffort_start_s", "besteffort_skew_s",
                        "reserved_start_s", "reserved_skew_s"});
  constexpr int kSeeds = 8;
  bool reserved_always_simultaneous = true;
  bool skew_grows = true;
  double prev_skew = -1;
  for (int k : {2, 4, 8, 12}) {
    util::Accumulator be_start, be_skew, rv_start, rv_skew;
    for (int s = 0; s < kSeeds; ++s) {
      const auto seed = static_cast<std::uint64_t>(s) * 97 + 11;
      const Measure be = best_effort(k, seed);
      const Measure rv = co_reservation(k, seed);
      if (be.start_s >= 0) {
        be_start.add(be.start_s);
        be_skew.add(be.skew_s);
      }
      if (rv.start_s >= 0) {
        rv_start.add(rv.start_s);
        rv_skew.add(rv.skew_s);
        reserved_always_simultaneous &= rv.simultaneous;
      }
    }
    if (prev_skew >= 0 && be_skew.mean() < prev_skew * 0.5) {
      skew_grows = false;
    }
    prev_skew = be_skew.mean();
    table.add_row({testbed::Table::num(static_cast<std::int64_t>(k)),
                   testbed::Table::num(be_start.mean(), 0),
                   testbed::Table::num(be_skew.mean(), 0),
                   testbed::Table::num(rv_start.mean(), 0),
                   testbed::Table::num(rv_skew.mean(), 0)});
  }
  testbed::print_table(table);
  std::printf(
      "\nshape check: best-effort pieces start minutes-to-hours apart (skew\n"
      "growing with ensemble size, wasting the early machines), while\n"
      "co-reserved pieces start simultaneously at the window: %s\n",
      reserved_always_simultaneous && skew_grows ? "HOLDS" : "VIOLATED");
  return reserved_always_simultaneous && skew_grows ? 0 : 1;
}
