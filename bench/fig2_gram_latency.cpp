// Figure 2 — GRAM submission latency for several parallel job sizes.
//
// Paper setup (§4.2): allocation requests submitted from a remote machine
// 2 ms away; GRAM configured to fork the requested number of processes
// immediately.  Metric: time from invocation of the allocation command to
// successful startup of the processes on the target machine.
//
// Paper result: "the cost of a GRAM submission is largely insensitive to
// the number of processes created" — a flat ~2 s across 16/32/64.
#include <cstdio>

#include "app/behaviors.hpp"
#include "gram/client.hpp"
#include "testbed/grid.hpp"
#include "testbed/report.hpp"

using namespace grid;

namespace {

/// One GRAM submission; returns time-to-ACTIVE (all processes running).
sim::Time measure_submission(std::int32_t count) {
  testbed::Grid grid(testbed::CostModel::paper());
  grid.add_host("origin2000", 64);  // the paper's 64-node Origin 2000
  app::BarrierStats stats;
  app::install_app(grid.executables(), "app", app::StartupProfile{}, &stats);
  net::Endpoint ep(grid.network(), "remote-client");
  gram::Client client(ep, grid.ca(), grid.make_user("/CN=bench", "bench"),
                      grid.costs().gsi);
  sim::Time started = -1;
  client.submit(
      grid.host("origin2000")->contact(),
      "&(resourceManagerContact=origin2000)(count=" + std::to_string(count) +
          ")(executable=app)",
      60 * sim::kSecond, [](util::Result<gram::JobId>) {},
      [&](const gram::JobStateChange& c) {
        if (c.state == gram::JobState::kActive && started < 0) {
          started = grid.engine().now();
        }
      });
  grid.run();
  return started;
}

}  // namespace

int main() {
  testbed::print_heading(
      "Figure 2: GRAM submission latency vs. parallel job size");
  std::printf("paper: flat ~2 s across process counts (fork-started jobs,\n"
              "client 2 ms from the resource)\n\n");
  testbed::Table table({"processes", "latency_s", "paper_s"});
  double lo = 1e9, hi = 0;
  for (std::int32_t count : {1, 2, 4, 8, 16, 32, 64}) {
    const sim::Time t = measure_submission(count);
    const double s = sim::to_seconds(t);
    lo = std::min(lo, s);
    hi = std::max(hi, s);
    table.add_row({testbed::Table::num(static_cast<std::int64_t>(count)),
                   testbed::Table::num(s),
                   count >= 16 ? "~2" : "-"});
  }
  testbed::print_table(table);
  testbed::print_metric("spread_max_minus_min", hi - lo, "s");
  testbed::print_metric("flatness_ratio_hi_over_lo", hi / lo);
  std::printf("\nshape check: latency insensitive to process count "
              "(spread %.3f s over 1..64 processes)\n", hi - lo);
  return 0;
}
