// Ablation — fault-tolerance stack (RPC retries + check-in re-send +
// heartbeat detection) vs. a bare stack, DUROC ensembles under message loss.
//
// The paper's co-allocation layer has to live on an unreliable substrate:
// "the GRAM API is designed so that every operation can fail" (§2).  The
// seed implementation surfaced every lost message as a kTimeout and gave
// the request one chance per RPC; this bench measures what the retry layer
// buys.  Experiment: a 4-subjob DUROC ensemble (required + interactive +
// 2 optional) starts up while the network drops each message i.i.d. with
// probability p.  The baseline issues every RPC and check-in exactly once;
// the fault-tolerant configuration arms gram-level retries with backoff,
// periodic barrier check-in re-send, and a heartbeat failure detector.
// Metric: fraction of seeds whose ensemble reaches release (the
// co-allocation succeeded), and mean virtual time to release.  Every trial is replayed
// with the same seed to demonstrate determinism.
#include <cstdio>
#include <cstdlib>

#include "app/behaviors.hpp"
#include "core/duroc.hpp"
#include "core/monitor.hpp"
#include "simkit/stats.hpp"
#include "simkit/trialpool.hpp"
#include "testbed/grid.hpp"
#include "testbed/report.hpp"

using namespace grid;

namespace {

constexpr int kMachines = 4;
constexpr int kTrials = 20;
const sim::Time kStartupTimeout = 2 * sim::kMinute;
const sim::Time kHorizon = 10 * sim::kMinute;

struct TrialResult {
  bool ok = false;           // terminal status was OK
  bool released = false;     // barrier released
  double release_s = -1.0;   // virtual seconds to release
  double finish_s = -1.0;    // virtual seconds to the terminal callback
  std::uint64_t retries = 0;
  std::uint64_t verdicts = 0;

  bool operator==(const TrialResult&) const = default;
};

net::RetryPolicy bench_retry_policy(std::uint64_t seed) {
  net::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = 200 * sim::kMillisecond;
  policy.multiplier = 2.0;
  policy.jitter = 0.2;
  policy.jitter_seed = seed;
  policy.attempt_timeout = 3 * sim::kSecond;
  return policy;
}

core::HeartbeatConfig bench_heartbeats() {
  core::HeartbeatConfig config;
  config.interval = 2 * sim::kSecond;
  config.beat_timeout = sim::kSecond;
  config.misses_to_suspect = 2;
  // Five consecutive losses at p=0.1 per direction is ~1e-5 per window:
  // the detector is tuned to ambient loss so it only convicts real deaths.
  config.misses_to_dead = 5;
  return config;
}

TrialResult run_trial(bool fault_tolerant, double loss, std::uint64_t seed) {
  testbed::Grid grid(testbed::CostModel::paper(), seed);
  std::vector<std::string> sites;
  for (int i = 1; i <= kMachines; ++i) {
    sites.push_back("site" + std::to_string(i));
    grid.add_host(sites.back(), 16);
  }
  app::BarrierStats stats;
  app::StartupProfile profile;
  profile.init_delay = 50 * sim::kMillisecond;
  profile.init_jitter = 100 * sim::kMillisecond;
  profile.run_time = 30 * sim::kSecond;
  if (fault_tolerant) profile.checkin_resend = 2 * sim::kSecond;
  app::install_app(grid.executables(), "sim", profile, &stats, seed * 7 + 1);

  core::RequestConfig defaults;
  defaults.rpc_timeout = 5 * sim::kSecond;
  defaults.startup_timeout = kStartupTimeout;
  auto mech = grid.make_coallocator("agent", "/CN=ablate", defaults);
  if (fault_tolerant) mech->gram().set_retry_policy(bench_retry_policy(seed));
  grid.network().set_drop_probability(loss);

  core::DurocAllocator duroc(*mech);
  TrialResult out;
  core::RequestCallbacks cbs;
  cbs.on_released = [&](const core::RuntimeConfig&) {
    out.released = true;
    out.release_s = sim::to_seconds(grid.engine().now());
  };
  cbs.on_terminal = [&](const util::Status& status) {
    out.ok = status.is_ok();
    out.finish_s = sim::to_seconds(grid.engine().now());
  };
  core::CoallocationRequest* req = duroc.create_request(std::move(cbs));
  const char* kinds[] = {"required", "interactive", "optional", "optional"};
  std::vector<std::string> subs;
  for (int i = 0; i < kMachines; ++i) {
    subs.push_back(testbed::rsl_subjob(sites[i], 4, "sim", kinds[i]));
  }
  if (!req->add_rsl(testbed::rsl_multi(subs)).is_ok()) return out;
  req->start();
  if (!req->commit().is_ok()) return out;
  std::unique_ptr<core::HeartbeatDetector> detector;
  if (fault_tolerant) detector = duroc.watch(req->id(), bench_heartbeats());

  grid.run_until(kHorizon);
  if (out.finish_s < 0.0) {
    // Lost state callbacks can leave the request waiting forever; the
    // control operation must still produce the terminal.
    req->kill();
    grid.run_until(kHorizon + kStartupTimeout);
  }
  out.retries = grid.network().stats().rpc_retries;
  if (detector) out.verdicts = detector->verdicts();
  return out;
}

/// Both arms of one seed, plus the serial replays that prove determinism.
struct SeedPair {
  TrialResult base;
  TrialResult ft;
  bool replays_identically = false;

  bool operator==(const SeedPair&) const = default;
};

SeedPair run_seed_pair(double loss, std::uint64_t seed) {
  SeedPair pair;
  pair.base = run_trial(false, loss, seed);
  pair.ft = run_trial(true, loss, seed);
  pair.replays_identically = run_trial(false, loss, seed) == pair.base &&
                             run_trial(true, loss, seed) == pair.ft;
  return pair;
}

}  // namespace

int main() {
  testbed::print_heading(
      "Ablation: RPC retries + check-in re-send + heartbeats vs. bare "
      "stack, 4-subjob DUROC ensemble under i.i.d. message loss");
  testbed::Table table({"loss_prob", "bare_released", "ft_released", "bare_release_s",
                        "ft_release_s", "ft_retries"});
  bool ft_never_worse = true;
  bool ft_wins_at_5pct = false;
  bool deterministic = true;
  sim::TrialPool pool;
  for (double loss : {0.0, 0.02, 0.05, 0.10}) {
    int base_ok = 0, ft_ok = 0;
    util::Accumulator base_time, ft_time, retries;
    // Every seed is an isolated world, so the ensemble fans out across the
    // pool; results come back in seed order, keeping the report and the
    // determinism verdict byte-identical to the serial loop.
    const std::vector<SeedPair> pairs = pool.map<SeedPair>(
        kTrials, [loss](std::size_t t) {
          return run_seed_pair(loss, 4200 + static_cast<std::uint64_t>(t));
        });
    for (int t = 0; t < kTrials; ++t) {
      const std::uint64_t seed = 4200 + static_cast<std::uint64_t>(t);
      const SeedPair& pair = pairs[static_cast<std::size_t>(t)];
      const TrialResult& base = pair.base;
      const TrialResult& ft = pair.ft;
      if (std::getenv("ABLATE_DEBUG") != nullptr) {
        std::printf(
            "loss=%.2f seed=%llu base{ok=%d rel=%d rel_s=%.2f fin_s=%.2f} "
            "ft{ok=%d rel=%d rel_s=%.2f fin_s=%.2f retries=%llu "
            "verdicts=%llu}\n",
            loss, static_cast<unsigned long long>(seed), base.ok,
            base.released, base.release_s, base.finish_s, ft.ok, ft.released,
            ft.release_s, ft.finish_s,
            static_cast<unsigned long long>(ft.retries),
            static_cast<unsigned long long>(ft.verdicts));
      }
      if (!pair.replays_identically) deterministic = false;
      if (base.released) ++base_ok;
      if (ft.released) ++ft_ok;
      if (base.released) base_time.add(base.release_s);
      if (ft.released) ft_time.add(ft.release_s);
      retries.add(static_cast<double>(ft.retries));
    }
    if (ft_ok < base_ok) ft_never_worse = false;
    if (loss == 0.05 && ft_ok > base_ok) ft_wins_at_5pct = true;
    table.add_row({testbed::Table::num(loss, 2),
                   testbed::Table::num(static_cast<double>(base_ok) / kTrials,
                                       2),
                   testbed::Table::num(static_cast<double>(ft_ok) / kTrials,
                                       2),
                   testbed::Table::num(base_time.mean(), 2),
                   testbed::Table::num(ft_time.mean(), 2),
                   testbed::Table::num(retries.mean(), 1)});
  }
  testbed::print_table(table);
  std::printf(
      "\nshape check: the fault-tolerant stack is never worse and strictly\n"
      "improves ensemble success at 5%% loss: %s\n"
      "determinism check: every trial replayed bit-identically per seed: "
      "%s\n",
      (ft_never_worse && ft_wins_at_5pct) ? "HOLDS" : "VIOLATED",
      deterministic ? "HOLDS" : "VIOLATED");
  return (ft_never_worse && ft_wins_at_5pct && deterministic) ? 0 : 1;
}
