// Figure 4 — DUROC submission times vs. subjob count.
//
// Paper setup (§4.2): 64 processes total, split into 1..25 subjobs, all on
// a host 2 ms from the client; time measured from the co-allocation call
// to receipt of a message sent by an application process immediately upon
// exiting the co-allocation barrier.
//
// Paper results: co-allocation time is independent of the process count
// but linear in the subjob count (~2 s at 1 subjob, ~28 s at 25, i.e. 44%
// below the zero-concurrency GRAM*count line); the average barrier wait is
// about half the total job latency (the kM/2 model); per-process barrier
// waits occur in per-subjob blocks and the shortest wait is ~0.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "simkit/stats.hpp"

#include "app/behaviors.hpp"
#include "core/duroc.hpp"
#include "testbed/grid.hpp"
#include "testbed/report.hpp"

using namespace grid;

namespace {

struct RunResult {
  double total_s = -1;        // co-allocation call -> first barrier exit
  double avg_wait_s = 0;      // mean per-process barrier wait
  double min_wait_s = 0;
  std::vector<app::BarrierRecord> records;
};

/// Runs one DUROC co-allocation of `total` processes over `subjobs`
/// equal slices of the same 64-processor machine.
RunResult run_duroc(int subjobs, int total) {
  testbed::Grid grid(testbed::CostModel::paper());
  grid.add_host("origin2000", 256);
  app::BarrierStats stats;
  app::install_app(grid.executables(), "app", app::StartupProfile{}, &stats);
  auto mech = grid.make_coallocator("duroc-agent", "/CN=bench");
  core::DurocAllocator duroc(*mech);
  bool released = false;
  auto* req = duroc.create_request(
      {.on_subjob = nullptr,
       .on_released = [&](const core::RuntimeConfig&) { released = true; },
       .on_terminal = nullptr});
  std::vector<std::string> subs;
  int assigned = 0;
  for (int i = 0; i < subjobs; ++i) {
    const int count = (total - assigned) / (subjobs - i);
    assigned += count;
    subs.push_back(
        testbed::rsl_subjob("origin2000", count, "app", "required"));
  }
  req->add_rsl(testbed::rsl_multi(subs));
  req->commit();
  grid.run();
  RunResult out;
  if (!released) return out;
  // The measurement endpoint is the process side: first barrier *exit*.
  sim::Time first_exit = sim::kTimeNever;
  util::Accumulator waits;
  sim::Time min_wait = sim::kTimeNever;
  for (const app::BarrierRecord& r : stats.records) {
    first_exit = std::min(first_exit, r.released_at);
    waits.add(sim::to_seconds(r.wait()));
    min_wait = std::min(min_wait, r.wait());
  }
  out.total_s = sim::to_seconds(first_exit);
  out.avg_wait_s = waits.mean();
  out.min_wait_s = sim::to_seconds(min_wait);
  out.records = stats.records;
  return out;
}

}  // namespace

int main() {
  testbed::print_heading("Figure 4: DUROC submission time vs. subjob count "
                         "(64 processes total, host 2 ms away)");

  // Baseline: one independent GRAM request (the k1 of the model) and the
  // per-subjob serialized cost k (slope).
  const RunResult one = run_duroc(1, 64);
  const RunResult two = run_duroc(2, 64);
  const double k1 = one.total_s;
  const double k = two.total_s - one.total_s;  // serialized per-subjob cost

  testbed::Table table({"subjobs", "measured_s", "synthetic_kM_s",
                        "gram_x_count_s", "avg_barrier_wait_s",
                        "kM_over_2_s"});
  double measured25 = 0;
  for (int m : {1, 2, 4, 6, 8, 10, 12, 15, 20, 25}) {
    const RunResult r = run_duroc(m, 64);
    const double synthetic = k1 + k * (m - 1);
    const double zero_concurrency = k1 * m;
    if (m == 25) measured25 = r.total_s;
    table.add_row({testbed::Table::num(static_cast<std::int64_t>(m)),
                   testbed::Table::num(r.total_s),
                   testbed::Table::num(synthetic),
                   testbed::Table::num(zero_concurrency),
                   testbed::Table::num(r.avg_wait_s),
                   testbed::Table::num(k * m / 2)});
  }
  testbed::print_table(table);
  testbed::print_metric("single_subjob_total (paper ~2)", k1, "s");
  testbed::print_metric("slope_per_subjob_k (paper ~1.08)", k, "s");
  const double saving = 1.0 - measured25 / (25 * k1);
  testbed::print_metric("saving_vs_zero_concurrency_at_25 (paper 0.44)",
                        saving);

  // Process-count independence at fixed subjob count (the other half of
  // the paper's claim).
  testbed::print_heading("co-allocation time vs. process count (8 subjobs)");
  testbed::Table bycount({"processes", "measured_s"});
  for (int total : {16, 32, 64, 128}) {
    const RunResult r = run_duroc(8, total);
    bycount.add_row({testbed::Table::num(static_cast<std::int64_t>(total)),
                     testbed::Table::num(r.total_s)});
  }
  testbed::print_table(bycount);

  // §4.2 raw-data check: barrier waits in per-subjob blocks, min ~ 0.
  testbed::print_heading("per-process barrier waits (4 subjobs x 4 procs): "
                         "per-subjob blocks, shortest wait ~0");
  const RunResult blocks = run_duroc(4, 16);
  std::vector<app::BarrierRecord> recs = blocks.records;
  std::sort(recs.begin(), recs.end(),
            [](const app::BarrierRecord& a, const app::BarrierRecord& b) {
              return a.rank < b.rank;
            });
  testbed::Table waits({"global_rank", "subjob", "wait_s"});
  for (const auto& r : recs) {
    waits.add_row({testbed::Table::num(static_cast<std::int64_t>(r.rank)),
                   testbed::Table::num(static_cast<std::int64_t>(r.subjob)),
                   testbed::Table::num(sim::to_seconds(r.wait()))});
  }
  testbed::print_table(waits);
  testbed::print_metric("min_wait (paper ~0, 10 ms resolution)",
                        blocks.min_wait_s, "s");

  // Distribution view of the 25-subjob run: waits cluster in per-subjob
  // bands between 0 and the total job latency.
  testbed::print_heading("barrier wait distribution (25 subjobs, 64 procs)");
  const RunResult dist = run_duroc(25, 64);
  util::Histogram hist(0.0, dist.total_s, 12);
  for (const app::BarrierRecord& r : dist.records) {
    hist.add(sim::to_seconds(r.wait()));
  }
  std::fputs(hist.render().c_str(), stdout);

  const bool shape_ok = k > 0.8 && k < 1.6 && k1 > 1.5 && k1 < 2.5 &&
                        saving > 0.25 && blocks.min_wait_s < 0.01;
  std::printf("\nshape check (linear in subjobs, ~2 s single, large saving "
              "vs zero concurrency, min wait ~0): %s\n",
              shape_ok ? "HOLDS" : "VIOLATED");
  return shape_ok ? 0 : 1;
}
