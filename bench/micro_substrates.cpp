// Wall-clock microbenchmarks of the substrate hot paths (google-benchmark).
//
// These measure the *simulator's* real-time performance — event dispatch,
// codec, RSL parsing, network delivery, and a full end-to-end DUROC
// co-allocation per second of host CPU — to document that the experiment
// harness itself scales to the paper's 1386-process runs.
#include <benchmark/benchmark.h>

#include "app/behaviors.hpp"
#include "core/duroc.hpp"
#include "rsl/parser.hpp"
#include "simkit/codec.hpp"
#include "simkit/engine.hpp"
#include "testbed/grid.hpp"

using namespace grid;

namespace {

void BM_EngineScheduleAndRun(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < n; ++i) {
      engine.schedule_at(i, [] {});
    }
    engine.run();
    benchmark::DoNotOptimize(engine.executed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineScheduleAndRun)->Arg(1000)->Arg(100000);

void BM_EngineCancel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::vector<sim::EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(engine.schedule_at(i, [] {}));
    }
    for (auto& id : ids) engine.cancel(id);
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineCancel);

void BM_CodecRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    util::Writer w;
    for (int i = 0; i < 100; ++i) {
      w.varint(static_cast<std::uint64_t>(i) * 2654435761u);
      w.str("resourceManagerContact");
      w.i64(i);
    }
    util::Reader r(w.bytes());
    std::uint64_t sum = 0;
    for (int i = 0; i < 100; ++i) {
      sum += r.varint();
      benchmark::DoNotOptimize(r.str());
      sum += static_cast<std::uint64_t>(r.i64());
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_CodecRoundTrip);

void BM_RslParseFigure1(benchmark::State& state) {
  const std::string rsl = testbed::rsl_multi({
      testbed::rsl_subjob("RM1", 1, "master", "required"),
      testbed::rsl_subjob("RM2", 4, "worker", "interactive"),
      testbed::rsl_subjob("RM3", 4, "worker", "interactive"),
      testbed::rsl_subjob("RM4", 4, "worker", "interactive"),
  });
  for (auto _ : state) {
    auto spec = rsl::parse_multi_request(rsl);
    benchmark::DoNotOptimize(spec.is_ok());
  }
}
BENCHMARK(BM_RslParseFigure1);

void BM_NetworkDelivery(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    net::Network network(engine);
    struct Sink : net::Node {
      void handle_message(const net::Message&) override { ++count; }
      int count = 0;
    } sink;
    const net::NodeId src = network.attach(&sink, "src");
    const net::NodeId dst = network.attach(&sink, "dst");
    for (int i = 0; i < 1000; ++i) {
      network.send(src, dst, 1, {});
    }
    engine.run();
    benchmark::DoNotOptimize(sink.count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_NetworkDelivery);

void BM_FullCoallocation(benchmark::State& state) {
  // End-to-end: grid build + GSI + GRAM + DUROC + barrier for
  // range(0) processes across 4 subjobs, in real time.
  const auto procs = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    testbed::Grid grid(testbed::CostModel::fast());
    for (int i = 1; i <= 4; ++i) {
      grid.add_host("host" + std::to_string(i), 512);
    }
    app::BarrierStats stats;
    app::install_app(grid.executables(), "app", app::StartupProfile{},
                     &stats);
    auto mech = grid.make_coallocator("agent", "/CN=bench");
    core::DurocAllocator duroc(*mech);
    bool released = false;
    auto* req = duroc.create_request(
        {.on_subjob = nullptr,
         .on_released = [&](const core::RuntimeConfig&) { released = true; },
         .on_terminal = nullptr});
    std::vector<std::string> subs;
    for (int i = 1; i <= 4; ++i) {
      subs.push_back(testbed::rsl_subjob("host" + std::to_string(i),
                                         procs / 4, "app", "required"));
    }
    req->add_rsl(testbed::rsl_multi(subs));
    req->commit();
    grid.run();
    if (!released) state.SkipWithError("co-allocation failed");
  }
  state.SetItemsProcessed(state.iterations() * procs);
}
BENCHMARK(BM_FullCoallocation)->Arg(64)->Arg(512)->Arg(1386);

}  // namespace

BENCHMARK_MAIN();
