// Grid-at-scale workload bench: sustained co-allocation at O(1k) resources
// and O(1M) jobs per simulated day (testbed::ScaleScenario), plus a
// focused probe of the information-service query path the scale run leans
// on.
//
// Two measurements:
//
//   1. GIS query-path probe: one resource with a deep backfill queue,
//      served over the simulated network.  Full-snapshot queries are
//      measured with the reply-payload cache off (every query re-encodes
//      the queued-job list: the old O(queue-depth) behaviour) and on
//      (encode once per published version, fan out ref-counted shares),
//      and against the aggregate-only summary method (fixed-size reply
//      regardless of depth).  This is the before/after number for the
//      query-path fix.
//
//   2. The scale scenario itself: heterogeneous resources, open-loop
//      diurnal background arrivals, a sustained stream of mixed
//      atomic/interactive co-allocation transactions.  The scenario is
//      deterministic (the committed JSON carries its event counts and an
//      order-sensitive fingerprint); wall-clock throughput and peak RSS
//      are measured around it.
//
// Writes BENCH_scale.json (override with argv[1]); --quick shrinks both
// measurements to ctest size and gates the shape.
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "info/gis.hpp"
#include "net/rpc.hpp"
#include "sched/batch.hpp"
#include "sched/infoservice.hpp"
#include "testbed/grid.hpp"
#include "testbed/report.hpp"
#include "testbed/scale.hpp"

using namespace grid;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double peak_rss_mb() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
}

// ---- GIS query-path probe --------------------------------------------------

struct GisProbe {
  std::size_t depth = 0;
  double uncached_query_us = 0;  // full snapshot, payload cache off
  double cached_query_us = 0;   // full snapshot, payload cache on
  double summary_query_us = 0;  // aggregate-only method
  std::uint64_t cache_hits = 0;
};

GisProbe probe_gis(std::size_t depth, int queries) {
  testbed::Grid g(testbed::CostModel::fast(), 42);
  testbed::Host& host =
      g.add_host("rm0", 256, testbed::SchedulerKind::kBackfill);
  sched::BatchScheduler* batch = host.batch_scheduler();
  batch->set_history_capacity(0);
  // Saturate the machine with owner-controlled jobs that never finish,
  // then hold `depth` jobs in the queue — the published snapshot carries
  // the full queued-job list.
  sched::JobId next_id = 1;
  for (int i = 0; i < 32; ++i) {
    sched::JobDescriptor d;
    d.id = next_id++;
    d.count = 8;
    d.estimated_runtime = 1000 * sim::kSecond;
    (void)batch->submit(d, {}, {});
  }
  while (batch->queue_length() < depth) {
    sched::JobDescriptor d;
    d.id = next_id++;
    d.count = 2;
    d.estimated_runtime = 500 * sim::kSecond;
    (void)batch->submit(d, {}, {});
  }

  sched::LoadInformationService service(g.engine(), 30 * sim::kSecond);
  service.register_resource("rm0", batch);
  info::GisServer server(g.network(), service, 0);
  server.set_contacts({"rm0"});
  net::Endpoint ep(g.network(), "probe");
  info::GisClient client(ep, server.contact());

  GisProbe result;
  result.depth = batch->queue_length();

  const auto measure = [&](bool cache, bool summary) {
    server.set_payload_cache(cache);
    int done = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < queries; ++i) {
      if (summary) {
        client.query_summary(
            "rm0", 30 * sim::kSecond,
            [&done](util::Result<sched::QueueSummary>) { ++done; });
      } else {
        client.query("rm0", 30 * sim::kSecond,
                     [&done](util::Result<sched::QueueSnapshot>) { ++done; });
      }
    }
    g.run();
    const double dt = seconds_since(t0);
    if (done != queries) std::printf("probe lost replies: %d\n", done);
    return dt / static_cast<double>(queries) * 1e6;
  };

  result.uncached_query_us = measure(/*cache=*/false, /*summary=*/false);
  result.cached_query_us = measure(/*cache=*/true, /*summary=*/false);
  result.summary_query_us = measure(/*cache=*/true, /*summary=*/true);
  result.cache_hits = server.cache_stats().hits;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_scale.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }

  testbed::print_heading(
      "Grid at scale: O(1k) resources, O(1M) jobs/day, sustained "
      "co-allocation");

  // ---- 1. query-path probe -------------------------------------------------
  const std::size_t probe_depth = quick ? 4000 : 50000;
  const int probe_queries = quick ? 100 : 200;
  const GisProbe probe = probe_gis(probe_depth, probe_queries);
  const double cached_speedup =
      probe.uncached_query_us / probe.cached_query_us;
  const double summary_speedup =
      probe.uncached_query_us / probe.summary_query_us;

  testbed::Table gis_table({"queue_depth", "uncached_us", "cached_us",
                            "summary_us", "cached_speedup",
                            "summary_speedup"});
  gis_table.add_row({std::to_string(probe.depth),
                     testbed::Table::num(probe.uncached_query_us, 1),
                     testbed::Table::num(probe.cached_query_us, 1),
                     testbed::Table::num(probe.summary_query_us, 1),
                     testbed::Table::num(cached_speedup, 1) + "x",
                     testbed::Table::num(summary_speedup, 1) + "x"});
  testbed::print_table(gis_table);

  // ---- 2. the scale scenario ----------------------------------------------
  const testbed::ScaleSpec spec =
      quick ? testbed::ScaleSpec::quick() : testbed::ScaleSpec{};
  testbed::ScaleScenario scenario(spec);
  const auto t0 = std::chrono::steady_clock::now();
  const testbed::ScaleMetrics m = scenario.run();
  const double wall_s = seconds_since(t0);
  const double rss_mb = peak_rss_mb();

  const double sim_days = static_cast<double>(m.simulated) /
                          static_cast<double>(testbed::kSimDay);
  const double wall_per_simday_s = wall_s / sim_days;
  const double events_per_sec = static_cast<double>(m.events_executed) / wall_s;
  const double txn_per_sec = static_cast<double>(m.txn_placed) / wall_s;

  testbed::Table table({"metric", "value"});
  table.add_row({"resources", std::to_string(spec.resources)});
  table.add_row({"simulated_days", testbed::Table::num(sim_days, 3)});
  table.add_row({"jobs_total", std::to_string(m.jobs_total())});
  table.add_row({"background_submitted",
                 std::to_string(m.background_submitted)});
  table.add_row({"background_completed",
                 std::to_string(m.background_completed)});
  table.add_row({"txn_attempted", std::to_string(m.txn_attempted)});
  table.add_row({"txn_placed", std::to_string(m.txn_placed)});
  table.add_row({"txn_released", std::to_string(m.txn_released)});
  table.add_row({"txn_done", std::to_string(m.txn_done)});
  table.add_row({"txn_aborted", std::to_string(m.txn_aborted)});
  table.add_row({"txn_select_failed", std::to_string(m.txn_select_failed)});
  table.add_row({"subjobs_requested", std::to_string(m.subjobs_requested)});
  table.add_row({"gis_queries_served", std::to_string(m.gis_queries_served)});
  table.add_row({"publish_rounds", std::to_string(m.info.publish_rounds)});
  table.add_row({"snapshots_refreshed",
                 std::to_string(m.info.snapshots_refreshed)});
  table.add_row({"snapshots_skipped",
                 std::to_string(m.info.snapshots_skipped)});
  table.add_row({"events_executed", std::to_string(m.events_executed)});
  table.add_row({"wall_s", testbed::Table::num(wall_s, 2)});
  table.add_row({"wall_per_simday_s", testbed::Table::num(wall_per_simday_s, 2)});
  table.add_row({"events_per_sec", testbed::Table::num(events_per_sec / 1e6, 2) + "M"});
  table.add_row({"peak_rss_mb", testbed::Table::num(rss_mb, 1)});
  testbed::print_table(table);

  std::FILE* f = std::fopen(out_path, "w");
  if (f != nullptr) {
    std::fprintf(
        f,
        "{\n"
        "  \"schema\": \"grid.bench_scale.v1\",\n"
        "  \"gis_probe\": {\n"
        "    \"queue_depth\": %zu,\n"
        "    \"uncached_query_us\": %.1f,\n"
        "    \"cached_query_us\": %.1f,\n"
        "    \"summary_query_us\": %.1f,\n"
        "    \"cached_speedup\": %.1f,\n"
        "    \"summary_speedup\": %.1f\n"
        "  },\n",
        probe.depth, probe.uncached_query_us, probe.cached_query_us,
        probe.summary_query_us, cached_speedup, summary_speedup);
    std::fprintf(
        f,
        "  \"scale\": {\n"
        "    \"resources\": %d,\n"
        "    \"simulated_days\": %.3f,\n"
        "    \"jobs_total\": %llu,\n"
        "    \"background_submitted\": %llu,\n"
        "    \"background_completed\": %llu,\n"
        "    \"txn_attempted\": %llu,\n"
        "    \"txn_placed\": %llu,\n"
        "    \"txn_released\": %llu,\n"
        "    \"txn_done\": %llu,\n"
        "    \"txn_aborted\": %llu,\n"
        "    \"txn_select_failed\": %llu,\n"
        "    \"subjobs_requested\": %llu,\n"
        "    \"gis_queries_served\": %llu,\n"
        "    \"publish_rounds\": %llu,\n"
        "    \"snapshots_refreshed\": %llu,\n"
        "    \"snapshots_skipped\": %llu,\n"
        "    \"events_executed\": %llu,\n"
        "    \"fingerprint\": \"0x%016llx\",\n"
        "    \"wall_s\": %.2f,\n"
        "    \"wall_per_simday_s\": %.2f,\n"
        "    \"events_per_sec\": %.0f,\n"
        "    \"peak_rss_mb\": %.1f\n"
        "  }\n"
        "}\n",
        spec.resources, sim_days,
        static_cast<unsigned long long>(m.jobs_total()),
        static_cast<unsigned long long>(m.background_submitted),
        static_cast<unsigned long long>(m.background_completed),
        static_cast<unsigned long long>(m.txn_attempted),
        static_cast<unsigned long long>(m.txn_placed),
        static_cast<unsigned long long>(m.txn_released),
        static_cast<unsigned long long>(m.txn_done),
        static_cast<unsigned long long>(m.txn_aborted),
        static_cast<unsigned long long>(m.txn_select_failed),
        static_cast<unsigned long long>(m.subjobs_requested),
        static_cast<unsigned long long>(m.gis_queries_served),
        static_cast<unsigned long long>(m.info.publish_rounds),
        static_cast<unsigned long long>(m.info.snapshots_refreshed),
        static_cast<unsigned long long>(m.info.snapshots_skipped),
        static_cast<unsigned long long>(m.events_executed),
        static_cast<unsigned long long>(m.fingerprint), wall_s,
        wall_per_simday_s, events_per_sec, rss_mb);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path);
  }
  (void)txn_per_sec;

  // ---- shape checks --------------------------------------------------------
#if defined(GRID_SANITIZED)
  const bool check_timing = false;  // instrumentation skews the two paths
#else
  const bool check_timing = true;
#endif
  bool ok = true;
  const auto check = [&ok](bool cond, const char* what) {
    std::printf("shape: %-58s %s\n", what, cond ? "HOLDS" : "VIOLATED");
    if (!cond) ok = false;
  };
  check(m.background_submitted > 0 && m.background_completed > 0,
        "background workload ran and completed jobs");
  check(m.txn_placed > 0 && m.txn_released > 0 && m.txn_done > 0,
        "co-allocation transactions placed, released, completed");
  check(m.gis_queries_served >= m.txn_attempted,
        "broker routed every transaction through the GIS");
  check(m.info.snapshots_skipped > 0,
        "dirty-flag republish skipped unchanged queues");
  check(probe.cache_hits > 0, "payload cache served shared reply frames");
  if (check_timing) {
    // The cached path still pays the client-side decode (O(depth) by
    // definition of a full-snapshot reply), so its margin shrinks with
    // depth and machine load; gate only that caching never makes the
    // query slower.  The summary path is the one that leaves the
    // O(depth) cliff entirely, so it carries the hard perf gate.
    check(cached_speedup >= 0.9,
          "cached full-snapshot query never slower than re-encode");
    check(summary_speedup >= 10.0,
          "summary query >=10x over full re-encode at depth");
  }
  return ok ? 0 : 1;
}
