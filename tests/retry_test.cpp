// Unit tests for the RPC retry layer: RetryPolicy schedules and
// Endpoint::retrying_call() semantics.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/retry.hpp"
#include "net/rpc.hpp"

namespace grid {
namespace {

// ---- RetrySchedule ---------------------------------------------------------

TEST(RetrySchedule, ExponentialSequenceWithoutJitter) {
  net::RetryPolicy policy;
  policy.initial_backoff = 100 * sim::kMillisecond;
  policy.multiplier = 2.0;
  policy.max_backoff = 5 * sim::kSecond;
  policy.jitter = 0.0;
  net::RetrySchedule schedule(policy, 1);
  EXPECT_EQ(schedule.backoff_before(2), 100 * sim::kMillisecond);
  EXPECT_EQ(schedule.backoff_before(3), 200 * sim::kMillisecond);
  EXPECT_EQ(schedule.backoff_before(4), 400 * sim::kMillisecond);
  EXPECT_EQ(schedule.backoff_before(5), 800 * sim::kMillisecond);
}

TEST(RetrySchedule, ClampsToMaxBackoff) {
  net::RetryPolicy policy;
  policy.initial_backoff = sim::kSecond;
  policy.multiplier = 10.0;
  policy.max_backoff = 3 * sim::kSecond;
  policy.jitter = 0.0;
  net::RetrySchedule schedule(policy, 1);
  EXPECT_EQ(schedule.backoff_before(2), sim::kSecond);
  EXPECT_EQ(schedule.backoff_before(3), 3 * sim::kSecond);
  EXPECT_EQ(schedule.backoff_before(4), 3 * sim::kSecond);
}

TEST(RetrySchedule, NoBackoffBeforeFirstAttempt) {
  net::RetryPolicy policy;
  net::RetrySchedule schedule(policy, 1);
  EXPECT_EQ(schedule.backoff_before(1), 0);
}

TEST(RetrySchedule, JitterIsDeterministicPerSeedAndStream) {
  net::RetryPolicy policy;
  policy.jitter = 0.5;
  policy.jitter_seed = 42;
  std::vector<sim::Time> first, second, other_stream;
  {
    net::RetrySchedule s(policy, 7);
    for (int a = 2; a <= 6; ++a) first.push_back(s.backoff_before(a));
  }
  {
    net::RetrySchedule s(policy, 7);
    for (int a = 2; a <= 6; ++a) second.push_back(s.backoff_before(a));
  }
  {
    net::RetrySchedule s(policy, 8);
    for (int a = 2; a <= 6; ++a) other_stream.push_back(s.backoff_before(a));
  }
  EXPECT_EQ(first, second);  // replayable
  EXPECT_NE(first, other_stream);  // decorrelated across calls
}

TEST(RetrySchedule, JitterStaysInBand) {
  net::RetryPolicy policy;
  policy.initial_backoff = 100 * sim::kMillisecond;
  policy.multiplier = 1.0;  // constant nominal backoff
  policy.jitter = 0.2;
  net::RetrySchedule schedule(policy, 3);
  for (int a = 2; a < 100; ++a) {
    const sim::Time t = schedule.backoff_before(a);
    EXPECT_GE(t, 80 * sim::kMillisecond);
    EXPECT_LE(t, 120 * sim::kMillisecond);
  }
}

// ---- retrying_call ---------------------------------------------------------

struct RetryRpcFixture : ::testing::Test {
  sim::Engine engine;
  net::Network network{engine};
  net::Endpoint client{network, "client"};
  net::Endpoint server{network, "server"};

  /// Deterministic flakiness: the server swallows the first `ignore`
  /// requests and answers from then on.
  int requests = 0;
  void serve_after(int ignore) {
    server.register_method(
        1, [this, ignore](net::NodeId caller, std::uint64_t id,
                          util::Reader&) {
          if (++requests <= ignore) return;  // lost in the server
          util::Writer w;
          w.u32(7);
          server.respond(caller, id, w.take());
        });
  }

  static net::RetryPolicy quick_policy() {
    net::RetryPolicy policy;
    policy.max_attempts = 4;
    policy.initial_backoff = 100 * sim::kMillisecond;
    policy.multiplier = 2.0;
    policy.jitter = 0.0;
    policy.attempt_timeout = sim::kSecond;
    return policy;
  }
};

TEST_F(RetryRpcFixture, SucceedsAfterLosses) {
  serve_after(2);
  int callbacks = 0;
  util::Status got;
  std::uint32_t value = 0;
  client.retrying_call(server.id(), 1, {}, quick_policy(),
                       [&](const util::Status& status, util::Reader& reply) {
                         ++callbacks;
                         got = status;
                         if (status.is_ok()) value = reply.u32();
                       });
  engine.run();
  EXPECT_EQ(callbacks, 1);
  EXPECT_TRUE(got.is_ok());
  EXPECT_EQ(value, 7u);
  EXPECT_EQ(requests, 3);
  EXPECT_EQ(client.pending_retrying_calls(), 0u);
  EXPECT_EQ(network.stats().rpc_retries, 2u);
  EXPECT_EQ(network.stats().rpc_retry_successes, 1u);
  EXPECT_EQ(network.stats().rpc_retry_exhausted, 0u);
}

TEST_F(RetryRpcFixture, ExhaustionDeliversSingleTimeout) {
  serve_after(1000);  // never answers
  int callbacks = 0;
  util::Status got;
  client.retrying_call(server.id(), 1, {}, quick_policy(),
                       [&](const util::Status& status, util::Reader&) {
                         ++callbacks;
                         got = status;
                       });
  engine.run();
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(got.code(), util::ErrorCode::kTimeout);
  EXPECT_EQ(requests, 4);  // max_attempts
  // 4 x 1 s attempts + 0.1 + 0.2 + 0.4 s of backoff.
  EXPECT_EQ(engine.now(), 4 * sim::kSecond + 700 * sim::kMillisecond);
  EXPECT_EQ(network.stats().rpc_retry_exhausted, 1u);
  EXPECT_EQ(client.pending_retrying_calls(), 0u);
}

TEST_F(RetryRpcFixture, OverallDeadlineTruncatesLastAttempt) {
  serve_after(1000);
  auto policy = quick_policy();
  policy.max_attempts = 10;
  policy.overall_deadline = 1500 * sim::kMillisecond;
  int callbacks = 0;
  util::Status got;
  client.retrying_call(server.id(), 1, {}, policy,
                       [&](const util::Status& status, util::Reader&) {
                         ++callbacks;
                         got = status;
                       });
  engine.run();
  // Attempt 1 times out at 1 s; attempt 2 starts at 1.1 s with its timeout
  // truncated to the remaining 0.4 s; the next retry would start past the
  // deadline, so the operation fails exactly at it.
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(got.code(), util::ErrorCode::kTimeout);
  EXPECT_EQ(requests, 2);
  EXPECT_EQ(engine.now(), 1500 * sim::kMillisecond);
}

TEST_F(RetryRpcFixture, DefinitiveErrorIsNotRetried) {
  server.register_method(
      1, [this](net::NodeId caller, std::uint64_t id, util::Reader&) {
        ++requests;
        server.respond_error(caller, id, util::ErrorCode::kPermissionDenied,
                             "nope");
      });
  int callbacks = 0;
  util::Status got;
  client.retrying_call(server.id(), 1, {}, quick_policy(),
                       [&](const util::Status& status, util::Reader&) {
                         ++callbacks;
                         got = status;
                       });
  engine.run();
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(got.code(), util::ErrorCode::kPermissionDenied);
  EXPECT_EQ(requests, 1);
  EXPECT_EQ(network.stats().rpc_retries, 0u);
}

TEST_F(RetryRpcFixture, LateReplyOfEarlierAttemptIsIgnored) {
  // The first reply arrives after its attempt already timed out; the
  // second attempt answers promptly.  Exactly one callback fires.
  server.register_method(
      1, [this](net::NodeId caller, std::uint64_t id, util::Reader&) {
        ++requests;
        const sim::Time delay = requests == 1 ? 2 * sim::kSecond : 0;
        engine.schedule_after(delay, [this, caller, id] {
          util::Writer w;
          w.u32(static_cast<std::uint32_t>(requests));
          server.respond(caller, id, w.take());
        });
      });
  int callbacks = 0;
  client.retrying_call(server.id(), 1, {}, quick_policy(),
                       [&](const util::Status& status, util::Reader&) {
                         ++callbacks;
                         EXPECT_TRUE(status.is_ok());
                       });
  engine.run();
  EXPECT_EQ(callbacks, 1);
}

TEST_F(RetryRpcFixture, CancelDuringBackoffPreventsCallbackAndAttempts) {
  serve_after(1000);
  int callbacks = 0;
  const auto ticket = client.retrying_call(
      server.id(), 1, {}, quick_policy(),
      [&](const util::Status&, util::Reader&) { ++callbacks; });
  // 1.05 s is inside the first backoff window (timeout at 1 s + 0.1 s).
  engine.schedule_after(1050 * sim::kMillisecond, [&] {
    EXPECT_TRUE(client.cancel_retrying_call(ticket));
    EXPECT_FALSE(client.cancel_retrying_call(ticket));
  });
  engine.run();
  EXPECT_EQ(callbacks, 0);
  EXPECT_EQ(requests, 1);  // the queued second attempt never fired
  EXPECT_EQ(client.pending_retrying_calls(), 0u);
}

TEST_F(RetryRpcFixture, ClientCrashDropsRetryingCalls) {
  serve_after(1000);
  int callbacks = 0;
  client.retrying_call(server.id(), 1, {}, quick_policy(),
                       [&](const util::Status&, util::Reader&) {
                         ++callbacks;
                       });
  // Crash during the first backoff: the backoff timer must not wake a dead
  // client up and transmit.
  engine.schedule_after(1050 * sim::kMillisecond, [&] {
    network.set_node_up(client.id(), false);
  });
  engine.run();
  EXPECT_EQ(callbacks, 0);
  EXPECT_EQ(requests, 1);
  EXPECT_EQ(client.pending_retrying_calls(), 0u);
}

TEST_F(RetryRpcFixture, EndpointDestructionWithRetryInFlightIsSafe) {
  serve_after(1000);
  auto doomed = std::make_unique<net::Endpoint>(network, "doomed");
  int callbacks = 0;
  doomed->retrying_call(server.id(), 1, {}, quick_policy(),
                        [&](const util::Status&, util::Reader&) {
                          ++callbacks;
                        });
  doomed->call(server.id(), 1, {}, sim::kSecond,
               [&](const util::Status&, util::Reader&) { ++callbacks; });
  doomed.reset();  // outstanding attempt + backoff timer + plain call
  engine.run();    // must not touch freed memory
  EXPECT_EQ(callbacks, 0);
}

TEST_F(RetryRpcFixture, SingleAttemptPolicyBehavesLikePlainCall) {
  serve_after(1000);
  auto policy = quick_policy();
  policy.max_attempts = 1;
  util::Status got;
  client.retrying_call(server.id(), 1, {}, policy,
                       [&](const util::Status& status, util::Reader&) {
                         got = status;
                       });
  engine.run();
  EXPECT_EQ(got.code(), util::ErrorCode::kTimeout);
  EXPECT_EQ(requests, 1);
  EXPECT_EQ(engine.now(), sim::kSecond);
  EXPECT_EQ(network.stats().rpc_retries, 0u);
}

}  // namespace
}  // namespace grid
