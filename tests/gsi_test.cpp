// Unit tests for the GSI security substrate: credentials, CA, gridmap,
// and the mutual authentication handshake with its calibrated costs.
#include <gtest/gtest.h>

#include "gsi/credential.hpp"
#include "gsi/protocol.hpp"
#include "net/network.hpp"
#include "net/rpc.hpp"

namespace grid::gsi {
namespace {

TEST(Credential, IssueAndVerify) {
  CertificateAuthority ca("/CN=CA", 1234);
  const Credential c = ca.issue("/CN=alice", 100 * sim::kSecond);
  EXPECT_TRUE(ca.verify(c, 0).is_ok());
  EXPECT_TRUE(ca.verify(c, 100 * sim::kSecond).is_ok());
}

TEST(Credential, ExpiryRejected) {
  CertificateAuthority ca("/CN=CA", 1234);
  const Credential c = ca.issue("/CN=alice", 100);
  EXPECT_FALSE(ca.verify(c, 101).is_ok());
}

TEST(Credential, WrongIssuerRejected) {
  CertificateAuthority ca("/CN=CA", 1234);
  CertificateAuthority other("/CN=Other", 1234);
  const Credential c = other.issue("/CN=alice", 100);
  EXPECT_EQ(ca.verify(c, 0).code(), util::ErrorCode::kPermissionDenied);
}

TEST(Credential, TamperedSubjectRejected) {
  CertificateAuthority ca("/CN=CA", 1234);
  Credential c = ca.issue("/CN=alice", 100);
  c.subject = "/CN=mallory";
  EXPECT_FALSE(ca.verify(c, 0).is_ok());
}

TEST(Credential, TamperedExpiryRejected) {
  CertificateAuthority ca("/CN=CA", 1234);
  Credential c = ca.issue("/CN=alice", 100);
  c.not_after = 1000000;
  EXPECT_FALSE(ca.verify(c, 0).is_ok());
}

TEST(Credential, DifferentCaSecretsProduceDifferentSignatures) {
  CertificateAuthority a("/CN=CA", 1);
  CertificateAuthority b("/CN=CA", 2);
  EXPECT_NE(a.issue("/CN=x", 10).signature, b.issue("/CN=x", 10).signature);
  EXPECT_FALSE(a.verify(b.issue("/CN=x", 10), 0).is_ok());
}

TEST(Credential, RevocationRejects) {
  CertificateAuthority ca("/CN=CA", 1234);
  const Credential c = ca.issue("/CN=alice", 100);
  ca.revoke("/CN=alice");
  EXPECT_FALSE(ca.verify(c, 0).is_ok());
}

TEST(Credential, CodecRoundTrip) {
  CertificateAuthority ca("/CN=CA", 99);
  const Credential c = ca.issue("/CN=bob", 42);
  util::Writer w;
  c.encode(w);
  util::Reader r(w.bytes());
  EXPECT_EQ(Credential::decode(r), c);
  EXPECT_TRUE(r.done());
}

TEST(GridMap, LookupAndRemoval) {
  GridMap gm;
  gm.add("/CN=alice", "alice");
  auto hit = gm.lookup("/CN=alice");
  ASSERT_TRUE(hit.is_ok());
  EXPECT_EQ(hit.value(), "alice");
  EXPECT_FALSE(gm.lookup("/CN=bob").is_ok());
  gm.remove("/CN=alice");
  EXPECT_FALSE(gm.lookup("/CN=alice").is_ok());
}

// ---- handshake -----------------------------------------------------------------

struct GsiFixture : ::testing::Test {
  sim::Engine engine;
  net::Network network{engine};
  CertificateAuthority ca{"/CN=CA", 777};
  GridMap gridmap;
  net::Endpoint server_ep{network, "server"};
  net::Endpoint client_ep{network, "client"};

  GsiFixture() {
    network.set_latency_model(
        std::make_unique<net::FixedLatency>(2 * sim::kMillisecond));
    gridmap.add("/CN=alice", "alice");
  }

  ServerContext make_server(CostModel costs = {}) {
    return ServerContext(server_ep, ca, gridmap,
                         ca.issue("/CN=server", sim::kTimeNever / 2), costs);
  }
};

TEST_F(GsiFixture, SuccessfulMutualAuth) {
  ServerContext server = make_server();
  ClientContext client(client_ep, ca,
                       ca.issue("/CN=alice", sim::kTimeNever / 2));
  util::Result<Session> got{util::Status(util::ErrorCode::kInternal, "unset")};
  client.authenticate(server_ep.id(), 10 * sim::kSecond,
                      [&](util::Result<Session> session) {
                        got = std::move(session);
                      });
  engine.run();
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  EXPECT_EQ(got.value().subject, "/CN=alice");
  EXPECT_EQ(got.value().local_user, "alice");
  EXPECT_GT(got.value().token, 0u);
  EXPECT_EQ(server.session_count(), 1u);
  // Session validates server-side.
  auto validated = server.validate(got.value().token);
  ASSERT_TRUE(validated.is_ok());
  EXPECT_EQ(validated.value().local_user, "alice");
}

TEST_F(GsiFixture, HandshakeCostMatchesFigure3) {
  // Default cost model: ~0.47 s CPU + 4 one-way 2 ms hops ~= 0.48 s; the
  // paper attributes ~0.5 s of a GRAM request to authentication.
  ServerContext server = make_server();
  ClientContext client(client_ep, ca,
                       ca.issue("/CN=alice", sim::kTimeNever / 2));
  sim::Time done_at = -1;
  client.authenticate(server_ep.id(), 10 * sim::kSecond,
                      [&](util::Result<Session>) { done_at = engine.now(); });
  engine.run();
  EXPECT_NEAR(sim::to_seconds(done_at), 0.5, 0.05);
}

TEST_F(GsiFixture, UnmappedSubjectDenied) {
  ServerContext server = make_server();
  ClientContext client(client_ep, ca,
                       ca.issue("/CN=stranger", sim::kTimeNever / 2));
  util::Result<Session> got{util::Status(util::ErrorCode::kInternal, "unset")};
  bool called = false;
  client.authenticate(server_ep.id(), 10 * sim::kSecond,
                      [&](util::Result<Session> session) {
                        called = true;
                        got = std::move(session);
                      });
  engine.run();
  ASSERT_TRUE(called);
  EXPECT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), util::ErrorCode::kPermissionDenied);
  EXPECT_EQ(server.session_count(), 0u);
}

TEST_F(GsiFixture, RevokedClientDenied) {
  ServerContext server = make_server();
  const Credential cred = ca.issue("/CN=alice", sim::kTimeNever / 2);
  ca.revoke("/CN=alice");
  ClientContext client(client_ep, ca, cred);
  util::Result<Session> got{util::Status(util::ErrorCode::kInternal, "unset")};
  client.authenticate(server_ep.id(), 10 * sim::kSecond,
                      [&](util::Result<Session> s) { got = std::move(s); });
  engine.run();
  EXPECT_FALSE(got.is_ok());
}

TEST_F(GsiFixture, ForgedCredentialDenied) {
  ServerContext server = make_server();
  Credential forged;
  forged.subject = "/CN=alice";
  forged.issuer = "/CN=CA";
  forged.not_after = sim::kTimeNever / 2;
  forged.signature = 0xbadbadbad;
  ClientContext client(client_ep, ca, forged);
  util::Result<Session> got{util::Status(util::ErrorCode::kInternal, "unset")};
  client.authenticate(server_ep.id(), 10 * sim::kSecond,
                      [&](util::Result<Session> s) { got = std::move(s); });
  engine.run();
  EXPECT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), util::ErrorCode::kPermissionDenied);
}

TEST_F(GsiFixture, ClientRejectsForgedServer) {
  // Server presents a credential from a different CA.
  CertificateAuthority rogue("/CN=Rogue", 1);
  ServerContext server(server_ep, ca, gridmap,
                       rogue.issue("/CN=server", sim::kTimeNever / 2));
  ClientContext client(client_ep, ca,
                       ca.issue("/CN=alice", sim::kTimeNever / 2));
  util::Result<Session> got{util::Status(util::ErrorCode::kInternal, "unset")};
  client.authenticate(server_ep.id(), 10 * sim::kSecond,
                      [&](util::Result<Session> s) { got = std::move(s); });
  engine.run();
  EXPECT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), util::ErrorCode::kPermissionDenied);
}

TEST_F(GsiFixture, CrashedServerTimesOut) {
  ServerContext server = make_server();
  network.set_node_up(server_ep.id(), false);
  ClientContext client(client_ep, ca,
                       ca.issue("/CN=alice", sim::kTimeNever / 2));
  util::Result<Session> got{util::Status(util::ErrorCode::kInternal, "unset")};
  client.authenticate(server_ep.id(), sim::kSecond,
                      [&](util::Result<Session> s) { got = std::move(s); });
  engine.run();
  EXPECT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), util::ErrorCode::kTimeout);
}

TEST_F(GsiFixture, UnknownTokenRejected) {
  ServerContext server = make_server();
  EXPECT_FALSE(server.validate(424242).is_ok());
}

TEST_F(GsiFixture, ConcurrentHandshakesGetDistinctTokens) {
  ServerContext server = make_server();
  gridmap.add("/CN=bob", "bob");
  ClientContext alice(client_ep, ca,
                      ca.issue("/CN=alice", sim::kTimeNever / 2));
  net::Endpoint bob_ep(network, "bob");
  ClientContext bob(bob_ep, ca, ca.issue("/CN=bob", sim::kTimeNever / 2));
  std::vector<std::uint64_t> tokens;
  auto collect = [&](util::Result<Session> s) {
    ASSERT_TRUE(s.is_ok());
    tokens.push_back(s.value().token);
  };
  alice.authenticate(server_ep.id(), 10 * sim::kSecond, collect);
  bob.authenticate(server_ep.id(), 10 * sim::kSecond, collect);
  engine.run();
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_NE(tokens[0], tokens[1]);
  EXPECT_EQ(server.session_count(), 2u);
}

TEST_F(GsiFixture, SessionsExpireAfterAnHour) {
  ServerContext server = make_server();
  ClientContext client(client_ep, ca,
                       ca.issue("/CN=alice", sim::kTimeNever / 2));
  std::uint64_t token = 0;
  client.authenticate(server_ep.id(), 10 * sim::kSecond,
                      [&](util::Result<Session> s) {
                        ASSERT_TRUE(s.is_ok());
                        token = s.value().token;
                      });
  engine.run();
  ASSERT_GT(token, 0u);
  EXPECT_TRUE(server.validate(token).is_ok());
  // Advance past the session lifetime: the token no longer authorizes.
  engine.schedule_at(2 * sim::kHour, [] {});
  engine.run();
  auto validated = server.validate(token);
  EXPECT_FALSE(validated.is_ok());
  EXPECT_EQ(validated.status().code(), util::ErrorCode::kPermissionDenied);
}

TEST_F(GsiFixture, ReplayedChallengeResponseRejected) {
  // A FINAL for an unknown/consumed handshake id must be denied: each
  // challenge is single-use.
  ServerContext server = make_server();
  util::Writer w;
  w.varint(4242);  // a handshake id the server never issued
  w.u64(challenge_response(1, "/CN=alice"));
  util::Status status;
  client_ep.call(server_ep.id(), kMethodFinal, w.take(), 10 * sim::kSecond,
                 [&](const util::Status& s, util::Reader&) { status = s; });
  engine.run();
  EXPECT_EQ(status.code(), util::ErrorCode::kPermissionDenied);
}

TEST(ChallengeResponse, BindsSubjectAndChallenge) {
  EXPECT_NE(challenge_response(1, "a"), challenge_response(2, "a"));
  EXPECT_NE(challenge_response(1, "a"), challenge_response(1, "b"));
  EXPECT_EQ(challenge_response(7, "x"), challenge_response(7, "x"));
}

}  // namespace
}  // namespace grid::gsi
