// gridlint-fixture: src/rsl/fixture.cpp -
// Outside the hot layers an unordered container is fine as long as it is
// never iterated: RSL attribute tables are lookup-only, string-keyed.
#include <string>
#include <unordered_map>

struct FixtureBindings {
  std::unordered_map<std::string, std::string> params;
  const std::string* find(const std::string& key) const {
    auto it = params.find(key);
    return it == params.end() ? nullptr : &it->second;
  }
};
