// gridlint-fixture: src/core/fixture.cpp wallclock
// Reading the host clock inside simulated code makes results depend on
// the machine running the simulation.
#include <chrono>

long long fixture_now_ns() {
  const auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}
