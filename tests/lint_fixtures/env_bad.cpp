// gridlint-fixture: src/gram/fixture.cpp env
// Raw environment reads bypass the ProcessApi abstraction that lets tests
// inject a simulated environment.
#include <cstdlib>
#include <string>

std::string fixture_user() {
  const char* u = std::getenv("USER");
  return u == nullptr ? "" : u;
}
