// gridlint-fixture: src/sched/fixture.cpp unordered-iter
// Iterating an unordered container in code that could schedule events or
// send messages leaks hash order into simulation results.
#include <unordered_map>

struct FixtureSweep {
  std::unordered_map<unsigned long long, int> running_jobs;
  int total() {
    int sum = 0;
    for (const auto& entry : running_jobs) {
      sum += entry.second;
    }
    return sum;
  }
};
