// gridlint-fixture: src/net/fixture.hpp hot-function
// std::function's type-erased heap capture is banned where callbacks run
// per message; sim::InplaceFunction keeps typical captures inline.
#include <functional>

struct FixtureHandler {
  std::function<void(int)> on_message;
};
