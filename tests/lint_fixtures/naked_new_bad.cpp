// gridlint-fixture: src/net/fixture.cpp naked-new
// Steady-state message code draws buffers from the pool and call slots
// from slabs; a raw allocation here is a regression.
#include <cstdint>

std::uint8_t* fixture_frame(std::size_t n) {
  return new std::uint8_t[n];
}
