// gridlint-fixture: src/net/fixture.cpp -
// A justified inline suppression silences exactly the named rule on the
// next line — the scanner must report nothing here.
#include <cstdint>

struct FixturePool {
  std::uint8_t* grow(std::size_t n) {
    // Cold-path pool growth, owned for the process lifetime.
    // gridlint: allow(naked-new)
    return new std::uint8_t[n];
  }
};
