// gridlint-fixture: src/core/fixture.cpp -
// Idiomatic hot-layer code: slab storage, inline callbacks, engine time.
// Mentions of banned names inside comments (std::unordered_map,
// steady_clock, getenv) and strings must not trip the scanner.
#include <cstdint>

#include "simkit/engine.hpp"
#include "simkit/idmap.hpp"
#include "simkit/inplace_function.hpp"

struct FixtureAgent {
  grid::sim::IdSlab<int> jobs;
  grid::sim::InplaceFunction<48, void(std::uint64_t)> on_done;
  const char* banner = "not a real getenv( call";
};
