// gridlint-fixture: src/net/fixture.hpp hot-container
// A node-based hash map on the message path allocates per insert and
// iterates in hash order; the hot layers use sim::IdMap / sim::IdSlab.
#include <cstdint>
#include <unordered_map>

struct FixtureTable {
  std::unordered_map<std::uint64_t, int> calls;
};
