// Tests for co-reservation through the GRAM protocol (the §5 extension):
// remote reserve/cancel, the network two-phase co-reserver, and the full
// co-reserve-then-co-allocate pipeline via the reservationId attribute.
#include <gtest/gtest.h>

#include "core/coreserver.hpp"
#include "rsl/parser.hpp"
#include "test_util.hpp"

namespace grid {
namespace {

using test::Outcome;

struct CoReserveFixture : ::testing::Test {
  CoReserveFixture() : grid(testbed::CostModel::fast()) {
    for (int i = 1; i <= 3; ++i) {
      grid.add_host("res" + std::to_string(i), 64,
                    testbed::SchedulerKind::kReservation);
    }
    grid.add_host("plain", 64, testbed::SchedulerKind::kFork);
    app::install_app(grid.executables(), "app", {}, &stats);
    coallocator = grid.make_coallocator("agent", "/CN=coreserve");
  }

  testbed::Grid grid;
  app::BarrierStats stats;
  std::unique_ptr<core::Coallocator> coallocator;
};

TEST_F(CoReserveFixture, RemoteReserveGrantsWindow) {
  util::Result<gram::Client::ReservationHandle> got{
      util::Status(util::ErrorCode::kInternal, "unset")};
  coallocator->gram().reserve(
      grid.host("res1")->contact(), sim::kHour, 2 * sim::kHour, 32,
      10 * sim::kSecond,
      [&](util::Result<gram::Client::ReservationHandle> r) {
        got = std::move(r);
      });
  // Stop before the window expires: the scheduler reclaims windows at their
  // end time, so a full run() would observe an empty reservation table.
  grid.run_until(sim::kMinute);
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  EXPECT_GT(got.value().id, 0u);
  EXPECT_EQ(got.value().start, sim::kHour);
  EXPECT_EQ(got.value().end, 2 * sim::kHour);
  EXPECT_EQ(grid.host("res1")->reservation_scheduler()->reservation_count(),
            1u);
}

TEST_F(CoReserveFixture, ReserveOnPlainHostRefused) {
  util::Status status;
  coallocator->gram().reserve(
      grid.host("plain")->contact(), sim::kHour, 2 * sim::kHour, 32,
      10 * sim::kSecond,
      [&](util::Result<gram::Client::ReservationHandle> r) {
        status = r.status();
      });
  grid.run();
  EXPECT_EQ(status.code(), util::ErrorCode::kFailedPrecondition);
}

TEST_F(CoReserveFixture, OversizedReserveRefused) {
  util::Status status;
  coallocator->gram().reserve(
      grid.host("res1")->contact(), sim::kHour, 2 * sim::kHour, 128,
      10 * sim::kSecond,
      [&](util::Result<gram::Client::ReservationHandle> r) {
        status = r.status();
      });
  grid.run();
  EXPECT_EQ(status.code(), util::ErrorCode::kResourceExhausted);
}

TEST_F(CoReserveFixture, RemoteCancelReleasesWindow) {
  std::uint64_t rid = 0;
  coallocator->gram().reserve(
      grid.host("res1")->contact(), sim::kHour, 2 * sim::kHour, 64,
      10 * sim::kSecond,
      [&](util::Result<gram::Client::ReservationHandle> r) {
        ASSERT_TRUE(r.is_ok());
        rid = r.value().id;
      });
  grid.run_until(sim::kMinute);
  ASSERT_GT(rid, 0u);
  util::Status status(util::ErrorCode::kInternal, "unset");
  coallocator->gram().cancel_reservation(grid.host("res1")->contact(), rid,
                                         10 * sim::kSecond,
                                         [&](util::Status s) { status = s; });
  grid.run_until(2 * sim::kMinute);
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(grid.host("res1")->reservation_scheduler()->reservation_count(),
            0u);
  // Cancelling again is NotFound.
  util::Status again;
  coallocator->gram().cancel_reservation(grid.host("res1")->contact(), rid,
                                         10 * sim::kSecond,
                                         [&](util::Status s) { again = s; });
  grid.run_until(3 * sim::kMinute);
  EXPECT_EQ(again.code(), util::ErrorCode::kNotFound);
}

TEST_F(CoReserveFixture, NetworkCoReserverFindsCommonWindow) {
  // res2 is blocked for the first two hours.
  ASSERT_TRUE(grid.host("res2")
                  ->reservation_scheduler()
                  ->reserve(0, 2 * sim::kHour, 64)
                  .is_ok());
  core::NetworkCoReserver reserver(coallocator->gram(), grid.resolver());
  core::NetworkCoReserver::Options options;
  options.duration = sim::kHour;
  options.count = 32;
  options.step = 30 * sim::kMinute;
  util::Result<std::vector<core::NetworkCoReserver::Hold>> got{
      util::Status(util::ErrorCode::kInternal, "unset")};
  reserver.acquire(
      {"res1", "res2", "res3"}, options,
      [&](util::Result<std::vector<core::NetworkCoReserver::Hold>> r) {
        got = std::move(r);
      });
  grid.run_until(sim::kHour);  // before any window expires
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  ASSERT_EQ(got.value().size(), 3u);
  for (const auto& hold : got.value()) {
    EXPECT_EQ(hold.start, 2 * sim::kHour);
    EXPECT_GT(hold.reservation, 0u);
  }
  // Rollbacks left no strays: each machine holds exactly the final window
  // (plus res2's pre-existing block).
  EXPECT_EQ(grid.host("res1")->reservation_scheduler()->reservation_count(),
            1u);
  EXPECT_EQ(grid.host("res2")->reservation_scheduler()->reservation_count(),
            2u);
}

TEST_F(CoReserveFixture, CoReserverFailsFastOnUnsupportedResource) {
  core::NetworkCoReserver reserver(coallocator->gram(), grid.resolver());
  util::Status status;
  reserver.acquire(
      {"res1", "plain"}, {},
      [&](util::Result<std::vector<core::NetworkCoReserver::Hold>> r) {
        status = r.status();
      });
  grid.run();
  EXPECT_EQ(status.code(), util::ErrorCode::kFailedPrecondition);
  // The res1 acquisition was rolled back.
  EXPECT_EQ(grid.host("res1")->reservation_scheduler()->reservation_count(),
            0u);
}

TEST_F(CoReserveFixture, CoReserverUnknownContactFails) {
  core::NetworkCoReserver reserver(coallocator->gram(), grid.resolver());
  util::Status status;
  reserver.acquire(
      {"res1", "nowhere"}, {},
      [&](util::Result<std::vector<core::NetworkCoReserver::Hold>> r) {
        status = r.status();
      });
  grid.run();
  EXPECT_EQ(status.code(), util::ErrorCode::kNotFound);
}

TEST_F(CoReserveFixture, ReservationIdRslRoundTrip) {
  rsl::JobRequest j;
  j.resource_manager_contact = "res1";
  j.executable = "app";
  j.count = 8;
  j.reservation_id = 42;
  const std::string text = j.to_spec().to_string();
  EXPECT_NE(text.find("reservationid=42"), std::string::npos);
  auto spec = rsl::parse(text);
  ASSERT_TRUE(spec.is_ok());
  auto back = rsl::JobRequest::from_spec(spec.value());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().reservation_id, 42u);
  EXPECT_EQ(back.value(), j);
}

TEST_F(CoReserveFixture, ReservedJobOnPlainHostFailsAtSubmission) {
  Outcome outcome;
  auto* req = coallocator->create_request(outcome.callbacks());
  rsl::JobRequest j;
  j.resource_manager_contact = "plain";
  j.executable = "app";
  j.count = 4;
  j.reservation_id = 7;
  req->add_subjob(std::move(j));
  req->commit();
  grid.run();
  EXPECT_FALSE(outcome.released);
  EXPECT_EQ(outcome.status.code(), util::ErrorCode::kAborted);
}

TEST_F(CoReserveFixture, CoReserveThenCoallocatePipeline) {
  // The full §5 pipeline: acquire a common window on three machines, bind
  // the subjobs to the reservations, and verify every subjob goes ACTIVE
  // exactly at the window start.
  for (auto* name : {"res1", "res2", "res3"}) {
    // Pre-existing best-effort load on every machine.
    sched::JobDescriptor bg;
    bg.id = 0xb0;
    bg.count = 64;
    bg.runtime = 90 * sim::kMinute;
    bg.estimated_runtime = bg.runtime;
    grid.host(name)->scheduler().submit(bg, nullptr, nullptr);
  }
  core::NetworkCoReserver reserver(coallocator->gram(), grid.resolver());
  core::NetworkCoReserver::Options options;
  options.duration = sim::kHour;
  options.count = 16;
  options.step = 30 * sim::kMinute;
  // The subjobs wait for a window ~90 minutes out; the startup deadline
  // must cover the wait-for-window period.
  core::RequestConfig config;
  config.startup_timeout = 3 * sim::kHour;
  Outcome outcome;
  sim::Time window = -1;
  reserver.acquire(
      {"res1", "res2", "res3"}, options,
      [&](util::Result<std::vector<core::NetworkCoReserver::Hold>> r) {
        ASSERT_TRUE(r.is_ok()) << r.status().to_string();
        window = r.value().front().start;
        auto jobs = core::NetworkCoReserver::build_requests(
            r.value(), 16, "app", rsl::SubjobStartType::kRequired);
        auto* req = coallocator->create_request(outcome.callbacks(), config);
        for (auto& job : jobs) req->add_subjob(std::move(job));
        req->commit();
      });
  grid.run();
  ASSERT_TRUE(outcome.released);
  ASSERT_GT(window, 0);
  EXPECT_EQ(outcome.config.total_processes, 48);
  // Every subjob's processes started (ACTIVE) at the window, simultaneously.
  auto* req = coallocator->find_request(outcome.config.request);
  ASSERT_NE(req, nullptr);
  for (core::SubjobHandle h : req->subjobs()) {
    auto view = req->subjob(h);
    ASSERT_TRUE(view.is_ok());
    // active_at = window + exec_startup (1 ms in the fast model).
    EXPECT_NEAR(sim::to_seconds(view.value().active_at),
                sim::to_seconds(window), 0.01);
  }
}

}  // namespace
}  // namespace grid
