// Seeded chaos suite: GRAB and DUROC ensembles under injected failures.
//
// Each trial builds a small grid, arms the full fault-tolerance stack
// (RPC retries, barrier check-in re-send, heartbeat failure detection),
// runs one co-allocation under a failure schedule drawn from a seeded RNG,
// and asserts the protocol invariants that must hold no matter what the
// network does:
//
//   1. exactly one terminal callback per request;
//   2. no release after the terminal callback;
//   3. at most one release;
//   4. in a quiet network the failure detector never kills a healthy
//      subjob.
//
// Success is NOT an invariant — under heavy loss an abort is a correct
// outcome — but every run must be deterministic per seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "app/behaviors.hpp"
#include "app/failure.hpp"
#include "core/duroc.hpp"
#include "core/grab.hpp"
#include "core/monitor.hpp"
#include "simkit/trialpool.hpp"
#include "testbed/grid.hpp"

namespace grid {
namespace {

constexpr int kSeeds = 32;
const sim::Time kHorizon = 20 * sim::kMinute;
const sim::Time kStartupTimeout = 2 * sim::kMinute;

enum class Schedule { kCrash, kPartition, kLossy, kFlapping };

const char* to_string(Schedule s) {
  switch (s) {
    case Schedule::kCrash:
      return "crash";
    case Schedule::kPartition:
      return "partition";
    case Schedule::kLossy:
      return "lossy";
    case Schedule::kFlapping:
      return "flapping";
  }
  return "?";
}

/// What one trial observed; equality is the determinism check.
struct Outcome {
  int terminals = 0;
  int releases = 0;
  bool release_after_terminal = false;
  bool ok = false;             // terminal status was OK
  sim::Time released_at = -1;  // virtual release time, -1 if none
  sim::Time finished_at = -1;  // virtual time of the terminal callback

  bool operator==(const Outcome&) const = default;
};

net::RetryPolicy chaos_retry_policy(std::uint64_t seed) {
  net::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = 200 * sim::kMillisecond;
  policy.multiplier = 2.0;
  policy.jitter = 0.2;
  policy.jitter_seed = seed;
  policy.attempt_timeout = 3 * sim::kSecond;
  return policy;
}

core::HeartbeatConfig chaos_heartbeats() {
  core::HeartbeatConfig config;
  config.interval = 2 * sim::kSecond;
  config.beat_timeout = sim::kSecond;
  config.misses_to_suspect = 1;
  config.misses_to_dead = 3;
  return config;
}

struct ChaosTrial {
  std::unique_ptr<testbed::Grid> grid;
  app::BarrierStats stats;
  std::unique_ptr<core::Coallocator> mech;
  std::unique_ptr<app::FailureInjector> inject;
  std::vector<std::string> sites;

  ChaosTrial(int hosts, std::uint64_t seed) {
    grid = std::make_unique<testbed::Grid>(testbed::CostModel::paper(), seed);
    for (int i = 1; i <= hosts; ++i) {
      sites.push_back("site" + std::to_string(i));
      grid->add_host(sites.back(), 16);
    }
    app::StartupProfile profile;
    profile.init_delay = 50 * sim::kMillisecond;
    profile.init_jitter = 100 * sim::kMillisecond;
    profile.run_time = 30 * sim::kSecond;
    profile.checkin_resend = 2 * sim::kSecond;
    app::install_app(grid->executables(), "sim", profile, &stats,
                     seed * 7 + 1);
    core::RequestConfig defaults;
    defaults.rpc_timeout = 5 * sim::kSecond;
    defaults.startup_timeout = kStartupTimeout;
    mech = grid->make_coallocator("agent", "/CN=chaos", defaults);
    mech->gram().set_retry_policy(chaos_retry_policy(seed));
    inject = std::make_unique<app::FailureInjector>(grid->network());
  }

  std::string rsl(const std::vector<std::string>& start_types) const {
    std::vector<std::string> subs;
    for (std::size_t i = 0; i < sites.size(); ++i) {
      subs.push_back(testbed::rsl_subjob(sites[i], 4, "sim",
                                         start_types[i % start_types.size()]));
    }
    return testbed::rsl_multi(subs);
  }

  /// Draws one failure schedule from `rng` and schedules it.  Targets the
  /// agent<->gatekeeper paths, which is where the co-allocation protocol
  /// actually lives.
  void apply(Schedule schedule, sim::Rng& rng) {
    const net::NodeId agent = mech->endpoint().id();
    const auto victim = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(sites.size()) - 1));
    const net::NodeId contact = grid->host(sites[victim])->contact();
    const sim::Time from = rng.uniform_time(sim::kSecond, 8 * sim::kSecond);
    switch (schedule) {
      case Schedule::kCrash: {
        inject->crash_at(contact, from);
        if (rng.chance(0.5)) {
          inject->restore_at(
              contact, from + rng.uniform_time(5 * sim::kSecond,
                                               20 * sim::kSecond));
        }
        return;
      }
      case Schedule::kPartition: {
        const sim::Time until =
            from + rng.uniform_time(5 * sim::kSecond, 30 * sim::kSecond);
        inject->partition_between(agent, contact, from, until);
        return;
      }
      case Schedule::kLossy: {
        const sim::Time until =
            from + rng.uniform_time(20 * sim::kSecond, 60 * sim::kSecond);
        inject->lossy_window(rng.uniform(0.05, 0.3), from, until);
        if (rng.chance(0.5)) {
          // Nested burst of heavier loss.
          inject->lossy_window(rng.uniform(0.3, 0.6), from + sim::kSecond,
                               from + 10 * sim::kSecond);
        }
        return;
      }
      case Schedule::kFlapping: {
        const sim::Time until =
            from + rng.uniform_time(10 * sim::kSecond, 40 * sim::kSecond);
        inject->flap_link(agent, contact, from, until,
                          rng.uniform_time(sim::kSecond, 4 * sim::kSecond));
        return;
      }
    }
  }
};

Outcome run_grab_trial(Schedule schedule, std::uint64_t seed) {
  ChaosTrial trial(3, seed);
  core::GrabAllocator grab(*trial.mech);
  grab.set_heartbeats(chaos_heartbeats());
  Outcome out;
  auto allocated = grab.allocate(
      trial.rsl({"required"}),
      {.on_started =
           [&](const core::RuntimeConfig&) {
             if (out.terminals > 0) out.release_after_terminal = true;
             ++out.releases;
             out.released_at = trial.grid->engine().now();
           },
       .on_done =
           [&](const util::Status& status) {
             ++out.terminals;
             out.ok = status.is_ok();
             out.finished_at = trial.grid->engine().now();
           }});
  EXPECT_TRUE(allocated.is_ok());
  sim::Rng rng(seed ^ 0xc4a05);
  trial.apply(schedule, rng);
  trial.grid->run_until(kHorizon);
  if (out.terminals == 0 && allocated.is_ok()) {
    // The request survived the horizon (e.g. waiting out a timeout that
    // message loss keeps extending); the control operation must still
    // produce exactly one terminal callback.
    grab.cancel(allocated.value());
    trial.grid->run_until(kHorizon + 2 * sim::kMinute);
  }
  return out;
}

Outcome run_duroc_trial(Schedule schedule, std::uint64_t seed) {
  ChaosTrial trial(4, seed);
  core::DurocAllocator duroc(*trial.mech);
  Outcome out;
  core::RequestCallbacks cbs;
  cbs.on_released = [&](const core::RuntimeConfig&) {
    if (out.terminals > 0) out.release_after_terminal = true;
    ++out.releases;
    out.released_at = trial.grid->engine().now();
  };
  cbs.on_terminal = [&](const util::Status& status) {
    ++out.terminals;
    out.ok = status.is_ok();
    out.finished_at = trial.grid->engine().now();
  };
  core::CoallocationRequest* req = duroc.create_request(std::move(cbs));
  // Mixed categories: one failure-sensitive subjob, one repairable, two
  // that must never block or kill the ensemble.
  EXPECT_TRUE(req->add_rsl(trial.rsl({"required", "interactive", "optional",
                                      "optional"}))
                  .is_ok());
  req->start();
  EXPECT_TRUE(req->commit().is_ok());
  auto detector = duroc.watch(req->id(), chaos_heartbeats());
  sim::Rng rng(seed ^ 0xd00cbeef);
  trial.apply(schedule, rng);
  trial.grid->run_until(kHorizon);
  if (out.terminals == 0) {
    req->kill();
    trial.grid->run_until(kHorizon + 2 * sim::kMinute);
  }
  return out;
}

void check_invariants(const Outcome& out, Schedule schedule,
                      std::uint64_t seed, const char* flavor) {
  SCOPED_TRACE(std::string(flavor) + "/" + to_string(schedule) + "/seed=" +
               std::to_string(seed));
  EXPECT_EQ(out.terminals, 1);
  EXPECT_LE(out.releases, 1);
  EXPECT_FALSE(out.release_after_terminal);
  if (out.ok) {
    // A successful computation must actually have been released.
    EXPECT_EQ(out.releases, 1);
  }
}

constexpr Schedule kAllSchedules[] = {Schedule::kCrash, Schedule::kPartition,
                                      Schedule::kLossy, Schedule::kFlapping};

/// Runs the full 4-schedule x kSeeds matrix through `trial` on the pool;
/// every trial is a fully isolated world, so the fan-out cannot perturb
/// per-seed determinism.  Outcomes come back in (schedule, seed) order and
/// the invariants are checked on the main thread where SCOPED_TRACE works.
template <typename Trial>
std::vector<Outcome> sweep_matrix(sim::TrialPool& pool, Trial trial) {
  return pool.map<Outcome>(std::size(kAllSchedules) * kSeeds,
                           [&](std::size_t i) {
                             const Schedule schedule = kAllSchedules[i / kSeeds];
                             const std::uint64_t seed = i % kSeeds + 1;
                             return trial(schedule, seed);
                           });
}

TEST(ChaosSweep, GrabInvariantsHoldUnderAllSchedules) {
  sim::TrialPool pool;
  const std::vector<Outcome> outcomes = sweep_matrix(pool, run_grab_trial);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    check_invariants(outcomes[i], kAllSchedules[i / kSeeds], i % kSeeds + 1,
                     "grab");
  }
}

TEST(ChaosSweep, DurocInvariantsHoldUnderAllSchedules) {
  sim::TrialPool pool;
  const std::vector<Outcome> outcomes = sweep_matrix(pool, run_duroc_trial);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    check_invariants(outcomes[i], kAllSchedules[i / kSeeds], i % kSeeds + 1,
                     "duroc");
  }
}

TEST(ChaosSweep, TrialsAreDeterministicPerSeed) {
  for (Schedule schedule : {Schedule::kCrash, Schedule::kLossy}) {
    for (std::uint64_t seed : {3u, 11u, 27u}) {
      EXPECT_EQ(run_grab_trial(schedule, seed),
                run_grab_trial(schedule, seed));
      EXPECT_EQ(run_duroc_trial(schedule, seed),
                run_duroc_trial(schedule, seed));
    }
  }
}

TEST(ChaosSweep, ParallelSweepIsByteIdenticalToSerial) {
  // The whole point of TrialPool: the parallel ensemble must be
  // indistinguishable from the serial loop it replaced, outcome by
  // outcome, regardless of worker count or completion order.
  auto serial = [&](auto trial) {
    std::vector<Outcome> out;
    for (Schedule schedule : kAllSchedules) {
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        out.push_back(trial(schedule, seed));
      }
    }
    return out;
  };
  sim::TrialPool wide(4);  // oversubscribed on small machines, on purpose
  EXPECT_EQ(serial(run_grab_trial), sweep_matrix(wide, run_grab_trial));
  EXPECT_EQ(serial(run_duroc_trial), sweep_matrix(wide, run_duroc_trial));
}

// ---- failure detector properties -------------------------------------------

TEST(ChaosDetector, QuietNetworkProducesNoVerdicts) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ChaosTrial trial(3, seed);
    core::GrabAllocator grab(*trial.mech);
    auto hb = chaos_heartbeats();
    hb.monitor_released = true;
    grab.set_heartbeats(hb);
    Outcome out;
    auto allocated = grab.allocate(
        trial.rsl({"required"}),
        {.on_started = [&](const core::RuntimeConfig&) { ++out.releases; },
         .on_done =
             [&](const util::Status& status) {
               ++out.terminals;
               out.ok = status.is_ok();
             }});
    ASSERT_TRUE(allocated.is_ok());
    trial.grid->run_until(kHorizon);
    const core::HeartbeatDetector* detector = grab.detector(allocated.value());
    ASSERT_NE(detector, nullptr);
    // No injected failures: the ensemble must succeed and the detector
    // must never have issued a verdict against a healthy subjob.
    EXPECT_EQ(out.terminals, 1);
    EXPECT_TRUE(out.ok);
    EXPECT_EQ(detector->verdicts(), 0u);
    EXPECT_GT(detector->beats_sent(), 0u);
  }
}

TEST(ChaosDetector, SlowNodeIsNotKilledWhileTimeoutsStillExpire) {
  // A latency spike shorter than the beat timeout must not trigger a
  // verdict: slow is not dead.
  ChaosTrial trial(2, 99);
  core::GrabAllocator grab(*trial.mech);
  grab.set_heartbeats(chaos_heartbeats());  // beat timeout 1 s
  trial.inject->slow_node(trial.grid->host("site2")->contact(),
                          200 * sim::kMillisecond, sim::kSecond,
                          30 * sim::kSecond);
  Outcome out;
  auto allocated = grab.allocate(
      trial.rsl({"required"}),
      {.on_started = [&](const core::RuntimeConfig&) { ++out.releases; },
       .on_done =
           [&](const util::Status& status) {
             ++out.terminals;
             out.ok = status.is_ok();
           }});
  ASSERT_TRUE(allocated.is_ok());
  trial.grid->run_until(kHorizon);
  EXPECT_EQ(out.terminals, 1);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(grab.detector(allocated.value())->verdicts(), 0u);
}

TEST(ChaosDetector, PartitionedManagerAbortsFastInGrab) {
  // Healthy but slow-starting application; the partition of one
  // gatekeeper produces no event at all, so without heartbeats the abort
  // would wait for the full startup deadline.  The detector turns the
  // silence into an abort in ~interval * misses_to_dead.
  ChaosTrial trial(2, 7);
  // Slow startup so detection, not the barrier, decides the outcome.
  app::StartupProfile profile;
  profile.init_delay = 60 * sim::kSecond;
  profile.checkin_resend = 2 * sim::kSecond;
  app::install_app(trial.grid->executables(), "slowsim", profile,
                   &trial.stats, 17);
  core::GrabAllocator grab(*trial.mech);
  grab.set_heartbeats(chaos_heartbeats());
  std::vector<std::string> subs = {
      testbed::rsl_subjob("site1", 4, "slowsim", "required"),
      testbed::rsl_subjob("site2", 4, "slowsim", "required")};
  Outcome out;
  auto allocated = grab.allocate(
      testbed::rsl_multi(subs),
      {.on_started = [&](const core::RuntimeConfig&) { ++out.releases; },
       .on_done =
           [&](const util::Status& status) {
             ++out.terminals;
             out.ok = status.is_ok();
             out.finished_at = trial.grid->engine().now();
           }});
  ASSERT_TRUE(allocated.is_ok());
  trial.inject->partition_between(trial.mech->endpoint().id(),
                                  trial.grid->host("site2")->contact(),
                                  5 * sim::kSecond, kHorizon);
  trial.grid->run_until(kHorizon);
  EXPECT_EQ(out.terminals, 1);
  EXPECT_FALSE(out.ok);  // atomicity preserved: everything rolled back
  EXPECT_EQ(out.releases, 0);
  EXPECT_GE(grab.detector(allocated.value())->verdicts(), 1u);
  // Abort-fast: far earlier than the startup deadline.
  EXPECT_LT(out.finished_at, 30 * sim::kSecond);
  EXPECT_LT(out.finished_at, kStartupTimeout);
}

TEST(ChaosDetector, OptionalDeathAfterReleaseDegradesDuroc) {
  // Post-commit graceful degradation: an optional subjob's manager dies
  // after release; the ensemble reports kDegraded and runs to completion.
  ChaosTrial trial(2, 21);
  core::DurocAllocator duroc(*trial.mech);
  core::EnsembleMonitor monitor;
  Outcome out;
  core::RequestCallbacks user;
  user.on_released = [&](const core::RuntimeConfig&) {
    ++out.releases;
    out.released_at = trial.grid->engine().now();
  };
  user.on_terminal = [&](const util::Status& status) {
    ++out.terminals;
    out.ok = status.is_ok();
  };
  core::CoallocationRequest* req =
      duroc.create_request(monitor.wrap(std::move(user)));
  monitor.bind(req);
  std::vector<std::string> subs = {
      testbed::rsl_subjob("site1", 4, "sim", "required"),
      testbed::rsl_subjob("site2", 4, "sim", "optional")};
  ASSERT_TRUE(req->add_rsl(testbed::rsl_multi(subs)).is_ok());
  req->start();
  ASSERT_TRUE(req->commit().is_ok());
  auto hb = chaos_heartbeats();
  hb.monitor_released = true;
  auto detector = duroc.watch(req->id(), hb);
  // The apps release within ~1 s and run for 30 s; cut the optional
  // manager off well inside the run window.
  trial.inject->partition_between(trial.mech->endpoint().id(),
                                  trial.grid->host("site2")->contact(),
                                  10 * sim::kSecond, kHorizon);
  trial.grid->run_until(kHorizon);
  EXPECT_EQ(out.releases, 1);
  EXPECT_EQ(out.terminals, 1);
  EXPECT_TRUE(out.ok);  // the ensemble survived the optional death
  EXPECT_GE(detector->verdicts(), 1u);
  bool degraded = false;
  for (core::GlobalEvent e : monitor.history()) {
    if (e == core::GlobalEvent::kDegraded) degraded = true;
  }
  EXPECT_TRUE(degraded);
}

// ---- check-in re-send ------------------------------------------------------

/// Check-in phase under a total-loss window covering the moment every
/// process enters the barrier.  `resend_period` arms the re-transmission.
Outcome run_checkin_loss_trial(sim::Time resend_period, std::uint64_t seed) {
  ChaosTrial trial(2, seed);
  app::StartupProfile profile;
  profile.init_delay = 40 * sim::kSecond;  // check-ins land mid-window
  profile.run_time = 5 * sim::kSecond;
  profile.checkin_resend = resend_period;
  app::install_app(trial.grid->executables(), "checkin", profile,
                   &trial.stats, seed * 3 + 2);
  // No heartbeats here: during blanket loss the detector would
  // (correctly) declare everything dead; this test isolates the barrier.
  trial.inject->lossy_window(1.0, 30 * sim::kSecond, 90 * sim::kSecond);
  core::GrabAllocator grab(*trial.mech);
  std::vector<std::string> subs = {
      testbed::rsl_subjob("site1", 4, "checkin", "required"),
      testbed::rsl_subjob("site2", 4, "checkin", "required")};
  Outcome out;
  auto allocated = grab.allocate(
      testbed::rsl_multi(subs),
      {.on_started =
           [&](const core::RuntimeConfig&) {
             ++out.releases;
             out.released_at = trial.grid->engine().now();
           },
       .on_done =
           [&](const util::Status& status) {
             ++out.terminals;
             out.ok = status.is_ok();
             out.finished_at = trial.grid->engine().now();
           }});
  EXPECT_TRUE(allocated.is_ok());
  trial.grid->run_until(kHorizon);
  return out;
}

TEST(ChaosBarrier, CheckinResendSurvivesLossyWindow) {
  // Without re-send, the 8 one-shot check-ins lost in the window stall
  // the barrier until the startup deadline kills the transaction; with
  // re-send, the barrier fills as soon as the window closes.
  const Outcome oneshot = run_checkin_loss_trial(0, 5);
  EXPECT_EQ(oneshot.terminals, 1);
  EXPECT_FALSE(oneshot.ok);
  EXPECT_EQ(oneshot.releases, 0);

  const Outcome resend = run_checkin_loss_trial(2 * sim::kSecond, 5);
  EXPECT_EQ(resend.terminals, 1);
  EXPECT_TRUE(resend.ok);
  EXPECT_EQ(resend.releases, 1);
  // Released promptly once the loss window closed, well before the
  // startup deadline that doomed the one-shot run.
  EXPECT_LT(resend.released_at, oneshot.finished_at);

  // And the whole trial replays exactly.
  const Outcome again = run_checkin_loss_trial(2 * sim::kSecond, 5);
  EXPECT_EQ(resend, again);
}

}  // namespace
}  // namespace grid
