// Edge-case tests for the wire codec: varint boundaries, truncated and
// oversized inputs, overlong encodings, and the zero-copy view accessors.
//
// The message path trusts this codec completely — a decoder that reads one
// byte past a length prefix, or a varint that silently wraps, corrupts
// protocol state without crashing.  These tests pin the exact wire bytes at
// every varint width boundary and the "reader goes bad, never throws"
// contract on malformed input.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "simkit/bufpool.hpp"
#include "simkit/codec.hpp"

namespace grid {
namespace {

util::Bytes encode_varint(std::uint64_t v) {
  util::Writer w;
  w.varint(v);
  return w.take_bytes();
}

// ---- varint width boundaries ------------------------------------------------

TEST(VarintCodec, BoundaryValuesRoundTripAtExactWidths) {
  // LEB128 widths flip at every 7-bit boundary; check each edge from both
  // sides plus the extremes.
  struct Case {
    std::uint64_t value;
    std::size_t bytes;
  };
  const Case cases[] = {
      {0, 1},
      {1, 1},
      {127, 1},                      // 2^7 - 1: last 1-byte value
      {128, 2},                      // 2^7: first 2-byte value
      {16383, 2},                    // 2^14 - 1
      {16384, 3},                    // 2^14
      {(1ull << 21) - 1, 3},         //
      {1ull << 21, 4},               //
      {(1ull << 28) - 1, 4},         //
      {1ull << 28, 5},               //
      {(1ull << 35), 6},             //
      {(1ull << 42), 7},             //
      {(1ull << 49), 8},             //
      {(1ull << 56), 9},             //
      {(1ull << 63) - 1, 9},         // 2^63 - 1: last 9-byte value
      {1ull << 63, 10},              // 2^63: first 10-byte value
      {0xffffffffffffffffull, 10},   // 2^64 - 1: max
  };
  for (const Case& c : cases) {
    const util::Bytes enc = encode_varint(c.value);
    EXPECT_EQ(enc.size(), c.bytes) << "value " << c.value;
    util::Reader r(enc);
    EXPECT_EQ(r.varint(), c.value);
    EXPECT_TRUE(r.done());
  }
}

TEST(VarintCodec, ExactWireBytesAtBoundaries) {
  EXPECT_EQ(encode_varint(0), (util::Bytes{0x00}));
  EXPECT_EQ(encode_varint(127), (util::Bytes{0x7f}));
  EXPECT_EQ(encode_varint(128), (util::Bytes{0x80, 0x01}));
  EXPECT_EQ(encode_varint(300), (util::Bytes{0xac, 0x02}));
  EXPECT_EQ(encode_varint(16384), (util::Bytes{0x80, 0x80, 0x01}));
}

TEST(VarintCodec, OverlongEncodingStillDecodes) {
  // {0x80, 0x00} is a non-canonical zero (the encoder never emits it, but a
  // decoder that rejects it would be wrong per LEB128).  It must decode to
  // 0 and consume both bytes.
  const util::Bytes overlong{0x80, 0x00};
  util::Reader r(overlong);
  EXPECT_EQ(r.varint(), 0u);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.done());
}

TEST(VarintCodec, TruncatedVarintMarksReaderBad) {
  // Continuation bit set but the buffer ends: the reader must go bad, not
  // read past the end or loop.
  const util::Bytes truncated{0x80, 0x80};
  util::Reader r(truncated);
  EXPECT_EQ(r.varint(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(VarintCodec, MoreThan64BitsMarksReaderBad) {
  // Ten continuation bytes followed by more payload would need >64 bits.
  const util::Bytes wide{0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
                         0x80, 0x80, 0x80, 0x80, 0x01};
  util::Reader r(wide);
  r.varint();
  EXPECT_FALSE(r.ok());
}

// ---- truncated / oversized strings and blobs --------------------------------

TEST(StringCodec, TruncatedMidStringMarksReaderBad) {
  util::Writer w;
  w.str("hello world");
  util::Bytes enc = w.take_bytes();
  enc.resize(enc.size() - 4);  // cut the string body short
  util::Reader r(enc);
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(StringCodec, OversizedLengthPrefixMarksReaderBad) {
  // A length prefix far beyond the remaining bytes must not allocate or
  // read out of bounds.
  util::Bytes enc;
  {
    util::Writer w;
    w.varint(1ull << 40);  // claims a terabyte-scale string
    enc = w.take_bytes();
  }
  enc.push_back('x');
  util::Reader r(enc);
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(StringCodec, BadReaderStaysBadForSubsequentReads) {
  const util::Bytes junk{0xff};  // truncated varint
  util::Reader r(junk);
  r.varint();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.blob().empty());
  EXPECT_FALSE(r.done());
}

TEST(BlobCodec, EmptyBlobAndStringRoundTrip) {
  util::Writer w;
  w.str("");
  w.blob(util::Bytes{});
  w.u8(0x5a);
  const util::Bytes enc = w.take_bytes();
  util::Reader r(enc);
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.blob().empty());
  EXPECT_EQ(r.u8(), 0x5a);
  EXPECT_TRUE(r.done());
}

// ---- zero-copy views --------------------------------------------------------

TEST(ViewCodec, StrViewMatchesCopyingAccessor) {
  util::Writer w;
  w.str("alpha");
  w.str("");
  w.str("omega");
  const util::Bytes enc = w.take_bytes();

  util::Reader copying(enc);
  util::Reader viewing(enc);
  for (int i = 0; i < 3; ++i) {
    const std::string s = copying.str();
    const std::string_view v = viewing.str_view();
    EXPECT_EQ(s, v);
  }
  EXPECT_TRUE(copying.done());
  EXPECT_TRUE(viewing.done());

  // The view aliases the message buffer — no copy.
  util::Reader alias(enc);
  const std::string_view v = alias.str_view();
  EXPECT_GE(reinterpret_cast<const std::uint8_t*>(v.data()), enc.data());
  EXPECT_LT(reinterpret_cast<const std::uint8_t*>(v.data()),
            enc.data() + enc.size());
}

TEST(ViewCodec, BlobViewMatchesCopyingAccessor) {
  util::Writer w;
  w.blob(util::Bytes{1, 2, 3, 4, 5});
  const util::Bytes enc = w.take_bytes();

  util::Reader copying(enc);
  util::Reader viewing(enc);
  const util::Bytes b = copying.blob();
  const auto v = viewing.blob_view();
  ASSERT_EQ(v.size(), b.size());
  EXPECT_TRUE(std::equal(v.begin(), v.end(), b.begin()));
  EXPECT_GE(v.data(), enc.data());
}

TEST(ViewCodec, TruncatedViewMarksReaderBadAndReturnsEmpty) {
  util::Writer w;
  w.str("0123456789");
  util::Bytes enc = w.take_bytes();
  enc.resize(5);
  util::Reader r(enc);
  EXPECT_TRUE(r.str_view().empty());
  EXPECT_FALSE(r.ok());
}

// ---- fixed-width little-endian layout ---------------------------------------

TEST(FixedCodec, PutLeWritesExactLittleEndianBytes) {
  util::Writer w;
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0102030405060708ull);
  const util::Bytes enc = w.take_bytes();
  const util::Bytes expect{0x34, 0x12,                          // u16
                           0xef, 0xbe, 0xad, 0xde,              // u32
                           0x08, 0x07, 0x06, 0x05,              // u64 low
                           0x04, 0x03, 0x02, 0x01};             // u64 high
  EXPECT_EQ(enc, expect);
  util::Reader r(enc);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ull);
  EXPECT_TRUE(r.done());
}

TEST(FixedCodec, SignedAndFloatRoundTrip) {
  util::Writer w;
  w.i32(-1);
  w.i64(-123456789012345ll);
  w.f64(3.14159);
  w.boolean(true);
  const util::Bytes enc = w.take_bytes();
  util::Reader r(enc);
  EXPECT_EQ(r.i32(), -1);
  EXPECT_EQ(r.i64(), -123456789012345ll);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_TRUE(r.done());
}

// ---- writer / pool integration ----------------------------------------------

TEST(WriterPool, TakeHandsOffThePooledBuffer) {
  util::Writer w;
  w.u32(7);
  sim::Payload p = w.take();
  EXPECT_TRUE(p.attached());
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(w.size(), 0u);  // writer is empty and reusable
  w.u8(1);
  EXPECT_EQ(w.size(), 1u);
}

TEST(WriterPool, ReaderOverPayloadSeesWriterBytes) {
  util::Writer w;
  w.varint(300);
  w.str("view");
  const sim::Payload p = w.take();
  util::Reader r(p);
  EXPECT_EQ(r.varint(), 300u);
  EXPECT_EQ(r.str_view(), "view");
  EXPECT_TRUE(r.done());
}

TEST(WriterPool, ReserveDoesNotChangeWireBytes) {
  util::Writer plain;
  plain.u32(1);
  plain.str("abc");
  util::Writer reserved;
  reserved.reserve(4096);
  reserved.u32(1);
  reserved.str("abc");
  EXPECT_EQ(plain.bytes(), reserved.bytes());
}

}  // namespace
}  // namespace grid
