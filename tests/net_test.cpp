// Unit tests for the network simulation and the RPC layer.
#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "app/failure.hpp"
#include "net/network.hpp"
#include "net/rpc.hpp"
#include "simkit/allocguard.hpp"

namespace grid {
namespace {

/// A node that records everything delivered to it.  Message itself is
/// move-only (it holds the pooled payload buffer), so the recorder copies
/// the fields it wants to inspect.
class Recorder : public net::Node {
 public:
  struct Received {
    net::NodeId src = net::kInvalidNode;
    std::uint32_t kind = 0;
    util::Bytes payload;
  };

  void handle_message(const net::Message& msg) override {
    messages.push_back({msg.src, msg.kind, msg.payload.bytes()});
  }
  void on_crash() override { ++crashes; }

  std::vector<Received> messages;
  int crashes = 0;
};

struct NetFixture : ::testing::Test {
  sim::Engine engine;
  net::Network network{engine};
  Recorder a, b;
  net::NodeId na = network.attach(&a, "a");
  net::NodeId nb = network.attach(&b, "b");
};

TEST_F(NetFixture, DeliversWithLatency) {
  network.set_latency_model(
      std::make_unique<net::FixedLatency>(5 * sim::kMillisecond));
  network.send(na, nb, 7, util::Bytes{1, 2, 3});
  engine.run();
  ASSERT_EQ(b.messages.size(), 1u);
  EXPECT_EQ(engine.now(), 5 * sim::kMillisecond);
  EXPECT_EQ(b.messages[0].kind, 7u);
  EXPECT_EQ(b.messages[0].src, na);
  EXPECT_EQ(b.messages[0].payload, (util::Bytes{1, 2, 3}));
}

TEST_F(NetFixture, PreservesFifoPerPair) {
  for (std::uint32_t i = 0; i < 10; ++i) network.send(na, nb, i, {});
  engine.run();
  ASSERT_EQ(b.messages.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(b.messages[i].kind, i);
}

TEST_F(NetFixture, SendFromUnknownNodeFails) {
  EXPECT_FALSE(network.send(9999, nb, 1, {}).is_ok());
}

TEST_F(NetFixture, SendToUnknownNodeIsSilentlyDropped) {
  EXPECT_TRUE(network.send(na, 9999, 1, {}).is_ok());
  engine.run();
  EXPECT_EQ(network.stats().dropped_down, 1u);
}

TEST_F(NetFixture, CrashedDestinationDropsInFlight) {
  network.send(na, nb, 1, {});
  network.set_node_up(nb, false);
  engine.run();
  EXPECT_TRUE(b.messages.empty());
  EXPECT_EQ(b.crashes, 1);
  EXPECT_EQ(network.stats().dropped_down, 1u);
}

TEST_F(NetFixture, CrashedSourceCannotTransmit) {
  network.set_node_up(na, false);
  network.send(na, nb, 1, {});
  engine.run();
  EXPECT_TRUE(b.messages.empty());
}

TEST_F(NetFixture, RestoredNodeReceivesAgain) {
  network.set_node_up(nb, false);
  network.set_node_up(nb, true);
  network.send(na, nb, 1, {});
  engine.run();
  EXPECT_EQ(b.messages.size(), 1u);
}

TEST_F(NetFixture, PartitionBlocksBothDirections) {
  network.set_partitioned(na, nb, true);
  network.send(na, nb, 1, {});
  network.send(nb, na, 2, {});
  engine.run();
  EXPECT_TRUE(a.messages.empty());
  EXPECT_TRUE(b.messages.empty());
  EXPECT_EQ(network.stats().dropped_partition, 2u);
  network.set_partitioned(na, nb, false);
  network.send(na, nb, 3, {});
  engine.run();
  EXPECT_EQ(b.messages.size(), 1u);
}

TEST_F(NetFixture, PartitionInjectedMidFlightSwallowsMessage) {
  network.send(na, nb, 1, {});
  network.set_partitioned(na, nb, true);  // before delivery event fires
  engine.run();
  EXPECT_TRUE(b.messages.empty());
}

TEST_F(NetFixture, RandomLossDropsApproximatelyP) {
  network.set_drop_probability(0.5);
  for (int i = 0; i < 2000; ++i) network.send(na, nb, 1, {});
  engine.run();
  EXPECT_NEAR(static_cast<double>(b.messages.size()), 1000.0, 120.0);
  EXPECT_EQ(network.stats().dropped_random + b.messages.size(), 2000u);
}

TEST_F(NetFixture, StatsCountBytes) {
  network.send(na, nb, 1, util::Bytes{0, 0, 0, 0});
  engine.run();
  EXPECT_EQ(network.stats().sent, 1u);
  EXPECT_EQ(network.stats().delivered, 1u);
  EXPECT_EQ(network.stats().bytes_sent, 4u);
  EXPECT_EQ(network.stats().bytes_delivered, 4u);
}

TEST_F(NetFixture, PayloadCountersTrackPoolReuse) {
  // Send-deliver cycles return each payload buffer to the pool before the
  // next send, so at most one message in the sequence can need a fresh
  // heap buffer (none, if the thread's pool is already warm).
  for (std::uint64_t i = 0; i < 8; ++i) {
    util::Writer w;
    w.u64(i);
    network.send(na, nb, 1, w.take());
    engine.run();
  }
  const net::NetworkStats& s = network.stats();
  EXPECT_EQ(s.payloads_fresh + s.payloads_recycled, 8u);
  EXPECT_LE(s.payloads_fresh, 1u);
  EXPECT_EQ(s.bytes_sent, 64u);
  EXPECT_EQ(s.bytes_delivered, 64u);
  EXPECT_EQ(b.messages.size(), 8u);
}

// ---- determinism contract (documented on Network::send) --------------------

TEST(NetworkDeterminism, DroppedSendDoesNotAdvanceLatencyRng) {
  constexpr sim::Time kBase = 10 * sim::kMillisecond;
  constexpr sim::Time kJitter = 5 * sim::kMillisecond;
  // Reference: the first delivery time on a fresh jitter stream.
  sim::Engine e1;
  net::Network n1{e1};
  Recorder r1a, r1b;
  const net::NodeId a1 = n1.attach(&r1a, "a");
  const net::NodeId b1 = n1.attach(&r1b, "b");
  n1.set_latency_model(
      std::make_unique<net::JitterLatency>(kBase, kJitter, sim::Rng(42)));
  n1.send(a1, b1, 1, {});
  e1.run();
  const sim::Time t_ref = e1.now();

  // Same latency stream, but a send that is dropped by injected loss
  // happens first.  Contract: the dropped send never consults the latency
  // model, so the surviving message's delivery time is unchanged.
  sim::Engine e2;
  net::Network n2{e2};
  Recorder r2a, r2b;
  const net::NodeId a2 = n2.attach(&r2a, "a");
  const net::NodeId b2 = n2.attach(&r2b, "b");
  n2.set_latency_model(
      std::make_unique<net::JitterLatency>(kBase, kJitter, sim::Rng(42)));
  n2.set_drop_probability(1.0);
  n2.send(a2, b2, 1, {});  // consumed by random loss at send time
  n2.set_drop_probability(0.0);
  n2.send(a2, b2, 2, {});
  e2.run();
  EXPECT_EQ(n2.stats().dropped_random, 1u);
  ASSERT_EQ(r2b.messages.size(), 1u);
  EXPECT_EQ(e2.now(), t_ref);

  // A crashed-source send is also dropped before the latency consult.
  sim::Engine e3;
  net::Network n3{e3};
  Recorder r3a, r3b;
  const net::NodeId a3 = n3.attach(&r3a, "a");
  const net::NodeId b3 = n3.attach(&r3b, "b");
  n3.set_latency_model(
      std::make_unique<net::JitterLatency>(kBase, kJitter, sim::Rng(42)));
  n3.set_node_up(a3, false);
  n3.send(a3, b3, 1, {});
  n3.set_node_up(a3, true);
  n3.send(a3, b3, 2, {});
  e3.run();
  ASSERT_EQ(r3b.messages.size(), 1u);
  EXPECT_EQ(e3.now(), t_ref);
}

TEST(NetworkDeterminism, PartitionDropConsumesLatencyDraw) {
  // The flip side of the contract: a message dropped at DELIVERY time (the
  // partition swallows it in flight) has already taken its latency draw,
  // so the next message rides the SECOND draw of the stream.
  constexpr sim::Time kBase = 10 * sim::kMillisecond;
  constexpr sim::Time kJitter = 5 * sim::kMillisecond;
  sim::Rng ref(42);
  const sim::Time draw1 = kBase + ref.uniform_time(0, kJitter);
  const sim::Time draw2 = kBase + ref.uniform_time(0, kJitter);
  ASSERT_NE(draw1, draw2);  // seed chosen so the draws differ

  struct TimeStamper : net::Node {
    sim::Engine* eng = nullptr;
    std::vector<sim::Time> at;
    void handle_message(const net::Message&) override {
      at.push_back(eng->now());
    }
  };
  sim::Engine e;
  net::Network n{e};
  TimeStamper src, dst;
  src.eng = &e;
  dst.eng = &e;
  const net::NodeId a = n.attach(&src, "a");
  const net::NodeId b = n.attach(&dst, "b");
  n.set_latency_model(
      std::make_unique<net::JitterLatency>(kBase, kJitter, sim::Rng(42)));
  n.set_partitioned(a, b, true);
  n.send(a, b, 1, {});  // consumes draw1...
  e.run();              // ...and is swallowed in flight by the partition
  EXPECT_EQ(n.stats().dropped_partition, 1u);
  n.set_partitioned(a, b, false);
  const sim::Time t_send2 = e.now();
  n.send(a, b, 2, {});  // rides draw2, not a replay of draw1
  e.run();
  EXPECT_EQ(dst.at, (std::vector<sim::Time>{t_send2 + draw2}));
}

TEST_F(NetFixture, NamesAreRetrievable) {
  EXPECT_EQ(network.name(na), "a");
  EXPECT_EQ(network.name(12345), "<unknown>");
}

TEST_F(NetFixture, SlowNodeDelaysBothDirections) {
  network.set_latency_model(
      std::make_unique<net::FixedLatency>(5 * sim::kMillisecond));
  network.set_node_extra_delay(nb, 20 * sim::kMillisecond);
  network.send(na, nb, 1, {});
  engine.run();
  EXPECT_EQ(engine.now(), 25 * sim::kMillisecond);
  network.send(nb, na, 2, {});
  engine.run();
  EXPECT_EQ(engine.now(), 50 * sim::kMillisecond);
  network.set_node_extra_delay(nb, 0);
  network.send(na, nb, 3, {});
  engine.run();
  EXPECT_EQ(engine.now(), 55 * sim::kMillisecond);
}

TEST_F(NetFixture, RestoreWithInFlightMessages) {
  // Messages in flight toward a crashed node are dropped even if the node
  // is restored before their delivery time: the crash cut the wire.
  network.set_latency_model(
      std::make_unique<net::FixedLatency>(10 * sim::kMillisecond));
  network.send(na, nb, 1, {});
  app::FailureInjector inject(network);
  inject.crash_at(nb, 2 * sim::kMillisecond);
  inject.restore_at(nb, 5 * sim::kMillisecond);
  // A message sent after the restore is delivered normally.
  engine.schedule_at(6 * sim::kMillisecond,
                     [&] { network.send(na, nb, 2, {}); });
  engine.run();
  ASSERT_EQ(b.messages.size(), 1u);
  EXPECT_EQ(b.messages[0].kind, 2u);
  EXPECT_EQ(b.crashes, 1);
}

// ---- failure injection windows ---------------------------------------------

TEST_F(NetFixture, LossyWindowsOverlapTakeMax) {
  app::FailureInjector inject(network);
  inject.lossy_window(0.2, 10, 40);
  inject.lossy_window(0.5, 20, 30);  // nested, higher loss
  std::vector<double> probes;
  for (sim::Time t : {5, 15, 25, 35, 45}) {
    engine.schedule_at(t, [&] { probes.push_back(network.drop_probability()); });
  }
  engine.run();
  EXPECT_EQ(probes,
            (std::vector<double>{0.0, 0.2, 0.5, 0.2, 0.0}));
}

TEST_F(NetFixture, LossyWindowEndDoesNotCancelStillOpenWindow) {
  app::FailureInjector inject(network);
  inject.lossy_window(0.3, 10, 50);
  inject.lossy_window(0.3, 20, 30);  // same probability, shorter
  std::vector<double> probes;
  for (sim::Time t : {25, 35, 55}) {
    engine.schedule_at(t, [&] { probes.push_back(network.drop_probability()); });
  }
  engine.run();
  // At 35 the inner window has closed but the outer one still applies.
  EXPECT_EQ(probes, (std::vector<double>{0.3, 0.3, 0.0}));
}

TEST_F(NetFixture, LinkFlappingAlternatesAndHealsAtEnd) {
  app::FailureInjector inject(network);
  inject.flap_link(na, nb, 10, 50, 10);  // down [10,20) up [20,30) ...
  std::vector<bool> partitioned;
  for (sim::Time t : {5, 15, 25, 35, 45, 55}) {
    engine.schedule_at(
        t, [&] { partitioned.push_back(network.is_partitioned(na, nb)); });
  }
  engine.run();
  EXPECT_EQ(partitioned,
            (std::vector<bool>{false, true, false, true, false, false}));
}

TEST(LatencyModels, MatrixUsesPairsAndDefault) {
  net::MatrixLatency m(10);
  m.set_pair(1, 2, 99);
  EXPECT_EQ(m.latency(1, 2, 0), 99);
  EXPECT_EQ(m.latency(2, 1, 0), 99);  // symmetric
  EXPECT_EQ(m.latency(1, 3, 0), 10);
}

TEST(LatencyModels, BandwidthAddsSerialization) {
  net::BandwidthLatency bw(sim::kMillisecond, 1000.0);  // 1000 B/s
  EXPECT_EQ(bw.latency(1, 2, 0), sim::kMillisecond);
  EXPECT_EQ(bw.latency(1, 2, 1000), sim::kMillisecond + sim::kSecond);
}

TEST(LatencyModels, JitterStaysInBand) {
  net::JitterLatency j(10 * sim::kMillisecond, 5 * sim::kMillisecond,
                       sim::Rng(1));
  for (int i = 0; i < 100; ++i) {
    const sim::Time t = j.latency(1, 2, 0);
    EXPECT_GE(t, 10 * sim::kMillisecond);
    EXPECT_LE(t, 15 * sim::kMillisecond);
  }
}

// ---- rpc ------------------------------------------------------------------------

struct RpcFixture : ::testing::Test {
  sim::Engine engine;
  net::Network network{engine};
  net::Endpoint client{network, "client"};
  net::Endpoint server{network, "server"};
};

TEST_F(RpcFixture, CallAndRespond) {
  server.register_method(
      42, [&](net::NodeId caller, std::uint64_t id, util::Reader& args) {
        const auto x = args.u32();
        util::Writer w;
        w.u32(x * 2);
        server.respond(caller, id, w.take());
      });
  std::uint32_t got = 0;
  util::Writer w;
  w.u32(21);
  client.call(server.id(), 42, w.take(), 0,
              [&](const util::Status& status, util::Reader& reply) {
                ASSERT_TRUE(status.is_ok());
                got = reply.u32();
              });
  engine.run();
  EXPECT_EQ(got, 42u);
}

TEST_F(RpcFixture, ErrorResponsePropagates) {
  server.register_method(
      1, [&](net::NodeId caller, std::uint64_t id, util::Reader&) {
        server.respond_error(caller, id, util::ErrorCode::kPermissionDenied,
                             "nope");
      });
  util::Status got;
  client.call(server.id(), 1, {}, 0,
              [&](const util::Status& status, util::Reader&) { got = status; });
  engine.run();
  EXPECT_EQ(got.code(), util::ErrorCode::kPermissionDenied);
  EXPECT_EQ(got.message(), "nope");
}

TEST_F(RpcFixture, UnknownMethodReturnsNotFound) {
  util::Status got;
  client.call(server.id(), 777, {}, 0,
              [&](const util::Status& status, util::Reader&) { got = status; });
  engine.run();
  EXPECT_EQ(got.code(), util::ErrorCode::kNotFound);
}

TEST_F(RpcFixture, TimeoutFiresWhenServerSilent) {
  server.register_method(1, [](net::NodeId, std::uint64_t, util::Reader&) {
    // never responds
  });
  util::Status got;
  client.call(server.id(), 1, {}, sim::kSecond,
              [&](const util::Status& status, util::Reader&) { got = status; });
  engine.run();
  EXPECT_EQ(got.code(), util::ErrorCode::kTimeout);
  EXPECT_EQ(engine.now(), sim::kSecond);
  EXPECT_EQ(client.pending_calls(), 0u);
}

TEST_F(RpcFixture, TimeoutFiresWhenServerCrashed) {
  network.set_node_up(server.id(), false);
  util::Status got;
  client.call(server.id(), 1, {}, sim::kSecond,
              [&](const util::Status& status, util::Reader&) { got = status; });
  engine.run();
  EXPECT_EQ(got.code(), util::ErrorCode::kTimeout);
}

TEST_F(RpcFixture, LateResponseAfterTimeoutIsIgnored) {
  server.register_method(
      1, [&](net::NodeId caller, std::uint64_t id, util::Reader&) {
        engine.schedule_after(2 * sim::kSecond,
                              [&, caller, id] { server.respond(caller, id, {}); });
      });
  int calls = 0;
  client.call(server.id(), 1, {}, sim::kSecond,
              [&](const util::Status&, util::Reader&) { ++calls; });
  engine.run();
  EXPECT_EQ(calls, 1);  // only the timeout fires
}

TEST_F(RpcFixture, CancelPreventsCallback) {
  server.register_method(
      1, [&](net::NodeId caller, std::uint64_t id, util::Reader&) {
        server.respond(caller, id, {});
      });
  int calls = 0;
  const auto id = client.call(
      server.id(), 1, {}, 0,
      [&](const util::Status&, util::Reader&) { ++calls; });
  EXPECT_TRUE(client.cancel_call(id));
  EXPECT_FALSE(client.cancel_call(id));
  engine.run();
  EXPECT_EQ(calls, 0);
}

TEST_F(RpcFixture, NotifyDispatchesByKind) {
  int hits = 0;
  server.register_notify(9, [&](net::NodeId src, util::Reader& payload) {
    EXPECT_EQ(src, client.id());
    EXPECT_EQ(payload.u32(), 123u);
    ++hits;
  });
  util::Writer w;
  w.u32(123);
  client.notify(server.id(), 9, w.take());
  client.notify(server.id(), 10, {});  // unregistered kind: dropped
  engine.run();
  EXPECT_EQ(hits, 1);
}

TEST_F(RpcFixture, CrashDropsPendingCallsSilently) {
  server.register_method(1, [](net::NodeId, std::uint64_t, util::Reader&) {});
  int calls = 0;
  client.call(server.id(), 1, {}, 10 * sim::kSecond,
              [&](const util::Status&, util::Reader&) { ++calls; });
  bool hook = false;
  client.crash_hook = [&] { hook = true; };
  network.set_node_up(client.id(), false);
  engine.run();
  EXPECT_EQ(calls, 0);  // a dead client gets no callbacks
  EXPECT_TRUE(hook);
  EXPECT_EQ(client.pending_calls(), 0u);
}

TEST_F(RpcFixture, EndpointDestructionCancelsOutstandingCalls) {
  // Regression: destroying an endpoint with calls in flight used to leave
  // their timeout events scheduled against the dead object.
  server.register_method(1, [](net::NodeId, std::uint64_t, util::Reader&) {
    // never responds: both the response path and the timeout are pending
  });
  auto doomed = std::make_unique<net::Endpoint>(network, "doomed");
  int callbacks = 0;
  doomed->call(server.id(), 1, {}, sim::kSecond,
               [&](const util::Status&, util::Reader&) { ++callbacks; });
  doomed->call(server.id(), 1, {}, 2 * sim::kSecond,
               [&](const util::Status&, util::Reader&) { ++callbacks; });
  EXPECT_EQ(doomed->pending_calls(), 2u);
  doomed.reset();
  engine.run();  // timeout events must not fire into freed memory
  EXPECT_EQ(callbacks, 0);
}

TEST_F(RpcFixture, ConcurrentCallsMatchResponses) {
  server.register_method(
      5, [&](net::NodeId caller, std::uint64_t id, util::Reader& args) {
        const auto v = args.u32();
        util::Writer w;
        w.u32(v);
        // Respond out of order: delay even values.
        const sim::Time delay =
            (v % 2 == 0) ? 100 * sim::kMillisecond : sim::kMillisecond;
        engine.schedule_after(delay,
                              [&, caller, id, bytes = w.take()]() mutable {
                                server.respond(caller, id, std::move(bytes));
                              });
      });
  std::vector<std::uint32_t> got;
  for (std::uint32_t i = 0; i < 6; ++i) {
    util::Writer w;
    w.u32(i);
    client.call(server.id(), 5, w.take(), 0,
                [&](const util::Status& status, util::Reader& reply) {
                  ASSERT_TRUE(status.is_ok());
                  got.push_back(reply.u32());
                });
  }
  engine.run();
  ASSERT_EQ(got.size(), 6u);
  // Odd values return first, but each response matched its own call.
  EXPECT_EQ(got, (std::vector<std::uint32_t>{1, 3, 5, 0, 2, 4}));
}

TEST_F(RpcFixture, NotifyFrameFanOutSharesOneBuffer) {
  // One encode, N destinations: every send shares the same pooled buffer.
  net::Endpoint r1{network, "r1"}, r2{network, "r2"}, r3{network, "r3"};
  int hits = 0;
  for (net::Endpoint* e : {&r1, &r2, &r3}) {
    e->register_notify(4, [&](net::NodeId, util::Reader& p) {
      EXPECT_EQ(p.str(), "broadcast");
      ++hits;
    });
  }
  util::Writer w;
  w.str("broadcast");
  const sim::Payload frame = net::Endpoint::encode_notify(4, w.take());
  EXPECT_EQ(frame.ref_count(), 1u);
  for (net::Endpoint* e : {&r1, &r2, &r3}) {
    client.notify_frame(e->id(), frame.share());
  }
  // Our handle plus one per in-flight message.
  EXPECT_EQ(frame.ref_count(), 4u);
  engine.run();
  EXPECT_EQ(hits, 3);
  EXPECT_EQ(frame.ref_count(), 1u);  // deliveries released their shares
}

TEST_F(RpcFixture, CallTableSurvivesChurnAndReusesSlots) {
  // Sequentially chained calls churn the slab's single slot; interleaved
  // batches grow it.  Either way every response matches its own call and
  // the table drains to empty.
  server.register_method(
      7, [&](net::NodeId caller, std::uint64_t id, util::Reader& args) {
        const auto v = args.u64();
        util::Writer w;
        w.u64(v + 1);
        server.respond(caller, id, w.take());
      });
  std::uint64_t received = 0;
  std::function<void(std::uint64_t)> chain = [&](std::uint64_t v) {
    if (v >= 200) return;
    util::Writer w;
    w.u64(v);
    client.call(server.id(), 7, w.take(), sim::kSecond,
                [&](const util::Status& status, util::Reader& reply) {
                  ASSERT_TRUE(status.is_ok());
                  received = reply.u64();
                  chain(received);
                });
  };
  chain(0);
  // An interleaved burst on top of the chain.
  for (std::uint64_t i = 1000; i < 1032; ++i) {
    util::Writer w;
    w.u64(i);
    client.call(server.id(), 7, w.take(), sim::kSecond,
                [](const util::Status& status, util::Reader&) {
                  ASSERT_TRUE(status.is_ok());
                });
  }
  engine.run();
  EXPECT_EQ(received, 200u);
  EXPECT_EQ(client.pending_calls(), 0u);
}

TEST_F(RpcFixture, LargeResponseCaptureStillFires) {
  // Captures beyond ResponseFn's inline capacity must box, not break.
  server.register_method(
      1, [&](net::NodeId caller, std::uint64_t id, util::Reader&) {
        server.respond(caller, id, {});
      });
  std::array<std::uint64_t, 16> big{};
  big.fill(7);
  bool fired = false;
  client.call(server.id(), 1, {}, 0,
              [&fired, big](const util::Status& status, util::Reader&) {
                EXPECT_TRUE(status.is_ok());
                EXPECT_EQ(big[15], 7u);
                fired = true;
              });
  engine.run();
  EXPECT_TRUE(fired);
}


// ---- endpoint teardown ----------------------------------------------------------

// Destroying an endpoint with calls still in flight must drain both call
// tables, kill every timer that captures the endpoint, and never fire the
// response callbacks.  The teardown audit reports exactly what it found.
TEST_F(RpcFixture, TeardownMidFlightDrainsTablesAndSilencesCallbacks) {
  int fired = 0;
  {
    net::Endpoint doomed{network, "doomed"};
    // One plain call with a timeout (server never answers: method 9 is
    // registered but deliberately silent) ...
    server.register_method(9, [](net::NodeId, std::uint64_t, util::Reader&) {});
    util::Writer w;
    w.u32(1);
    doomed.call(server.id(), 9, w.take(), 5 * sim::kSecond,
                [&](const util::Status&, util::Reader&) { ++fired; });
    // ... and one retrying call whose first attempt is in flight (its
    // inner call occupies a second pending slot plus a timeout timer).
    net::RetryPolicy policy;
    doomed.retrying_call(server.id(), 9, {}, policy,
                         [&](const util::Status&, util::Reader&) { ++fired; });
    EXPECT_EQ(doomed.pending_calls(), 2u);
    EXPECT_EQ(doomed.pending_retrying_calls(), 1u);
    // Destroyed here, with everything outstanding.
  }
  const auto& report = net::Endpoint::last_teardown_report();
  EXPECT_EQ(report.pending_calls, 2u);
  EXPECT_EQ(report.retrying_calls, 1u);
  EXPECT_EQ(report.timers_cancelled, 2u);  // both attempt-timeout timers
  EXPECT_EQ(report.leaked_slots, 0u);
  // Draining the rest of the simulation (request frames arriving at the
  // server, responses sent back to a detached node) must fire nothing.
  engine.run();
  EXPECT_EQ(fired, 0);
}

TEST_F(RpcFixture, TeardownWithBackoffTimerCancelsIt) {
  int fired = 0;
  {
    net::Endpoint doomed{network, "doomed"};
    server.register_method(9, [](net::NodeId, std::uint64_t, util::Reader&) {});
    net::RetryPolicy policy;
    policy.attempt_timeout = 10 * sim::kMillisecond;
    policy.initial_backoff = 10 * sim::kSecond;
    policy.jitter = 0.0;
    // The server swallows method 9: the first attempt times out and the
    // call parks on its backoff timer (clamped to max_backoff, still far
    // past the point where we tear down).
    doomed.retrying_call(server.id(), 9, {}, policy,
                         [&](const util::Status&, util::Reader&) { ++fired; });
    engine.run_until(sim::kSecond);
    EXPECT_EQ(doomed.pending_calls(), 0u);        // attempt timed out
    EXPECT_EQ(doomed.pending_retrying_calls(), 1u);  // waiting out backoff
  }
  const auto& report = net::Endpoint::last_teardown_report();
  EXPECT_EQ(report.retrying_calls, 1u);
  EXPECT_EQ(report.timers_cancelled, 1u);  // the backoff timer
  EXPECT_EQ(report.leaked_slots, 0u);
  engine.run();
  EXPECT_EQ(fired, 0);
}

// ---- allocation shape -----------------------------------------------------------

// The zero-allocation steady-state claim, asserted in-tree (bench/micro_net
// makes the same check at benchmark scale).  After warmup, a request/
// response round-trip must not touch the heap: payloads come from the
// pool, call slots from slabs, and callbacks stay inline.
TEST_F(RpcFixture, SteadyStateRoundTripAllocatesNothing) {
  server.register_method(
      7, [&](net::NodeId caller, std::uint64_t id, util::Reader& args) {
        const auto x = args.u32();
        util::Writer w;
        w.reserve(4);
        w.u32(x + 1);
        server.respond(caller, id, w.take());
      });
  std::uint32_t sink = 0;
  auto roundtrip = [&] {
    util::Writer w;
    w.reserve(4);
    w.u32(5);
    client.call(server.id(), 7, w.take(), 0,
                [&sink](const util::Status&, util::Reader& reply) {
                  sink += reply.u32();
                });
    engine.run();
  };
  for (int i = 0; i < 64; ++i) roundtrip();  // pools and slabs reach capacity
  sink = 0;
  sim::AllocGuard guard;
  for (int i = 0; i < 256; ++i) roundtrip();
  EXPECT_EQ(guard.allocations(), 0u);
  EXPECT_EQ(sink, 256u * 6u);
}

}  // namespace
}  // namespace grid
