// Tests for the configuration mechanisms (§3.3) and the gridmpi runtime:
// runtime queries, bootstrap address exchange, point-to-point messages,
// and collectives across heterogeneous subjob layouts.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <numeric>

#include "config/gridmpi.hpp"
#include "core/app_barrier.hpp"
#include "test_util.hpp"

namespace grid {
namespace {

using test::Outcome;
using test::SmallGrid;

// ---- ConfigRuntime (pure queries) ------------------------------------------

core::ReleaseInfo sample_info() {
  core::ReleaseInfo info;
  info.config.request = 9;
  info.config.total_processes = 10;
  info.config.subjobs = {
      {101, 0, 2, 0, 11, "host1"},
      {102, 1, 5, 2, 22, "host2"},
      {103, 2, 3, 7, 33, "host3"},
  };
  info.subjob_index = 1;
  info.local_rank = 3;
  info.global_rank = 5;
  info.subjob_members = {22, 23, 24, 25, 26};
  return info;
}

TEST(ConfigRuntime, Section33OperationSet) {
  cfg::ConfigRuntime rt(sample_info());
  // "determine the number of subjobs in a resource set"
  EXPECT_EQ(rt.subjob_count(), 3);
  // "determine the size of a specific subjob"
  EXPECT_EQ(rt.subjob_size(0), 2);
  EXPECT_EQ(rt.subjob_size(1), 5);
  EXPECT_EQ(rt.subjob_size(2), 3);
  EXPECT_EQ(rt.subjob_size(7), 0);
  // intra-subjob communication: member addresses
  EXPECT_EQ(rt.my_subjob_members().size(), 5u);
  // inter-subjob communication: a contactable node per subjob
  EXPECT_EQ(rt.subjob_leader(0), 11u);
  EXPECT_EQ(rt.subjob_leader(2), 33u);
  EXPECT_EQ(rt.subjob_leader(-1), net::kInvalidNode);
}

TEST(ConfigRuntime, DerivedCoordinates) {
  cfg::ConfigRuntime rt(sample_info());
  EXPECT_EQ(rt.my_subjob(), 1);
  EXPECT_EQ(rt.my_local_rank(), 3);
  EXPECT_EQ(rt.my_global_rank(), 5);
  EXPECT_FALSE(rt.is_leader());
  EXPECT_EQ(rt.total_processes(), 10);
  EXPECT_EQ(rt.rank_base(2), 7);
  EXPECT_EQ(rt.locate(0), (std::pair<std::int32_t, std::int32_t>{0, 0}));
  EXPECT_EQ(rt.locate(6), (std::pair<std::int32_t, std::int32_t>{1, 4}));
  EXPECT_EQ(rt.locate(9), (std::pair<std::int32_t, std::int32_t>{2, 2}));
  EXPECT_EQ(rt.locate(42), (std::pair<std::int32_t, std::int32_t>{-1, -1}));
}

TEST(RuntimeConfig, CodecRoundTrip) {
  const core::ReleaseInfo info = sample_info();
  util::Writer w;
  info.encode(w);
  util::Reader r(w.bytes());
  const core::ReleaseInfo back = core::ReleaseInfo::decode(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back.config, info.config);
  EXPECT_EQ(back.subjob_index, info.subjob_index);
  EXPECT_EQ(back.global_rank, info.global_rank);
  EXPECT_EQ(back.subjob_members, info.subjob_members);
}

// ---- gridmpi over a real co-allocation ---------------------------------------

/// Shared driver: each MpiApp process registers its communicator here once
/// initialized; the test then runs collective scripts over them.
struct MpiWorld {
  std::map<std::int32_t, cfg::Communicator*> by_rank;
  int ready = 0;
  int expected = 0;
  std::function<void()> on_world_ready;

  void mark_ready(cfg::Communicator* c) {
    by_rank[c->rank()] = c;
    if (++ready == expected && on_world_ready) on_world_ready();
  }
};

/// Process behaviour: barrier, then Communicator::init, then report ready.
class MpiApp final : public gram::ProcessBehavior {
 public:
  explicit MpiApp(MpiWorld* world) : world_(world) {}

  void start(gram::ProcessApi& api) override {
    api_ = &api;
    barrier_ = std::make_unique<core::BarrierClient>(api);
    barrier_->enter(
        true, "",
        [this](const core::ReleaseInfo& info) {
          comm_ = std::make_unique<cfg::Communicator>(barrier_->endpoint(),
                                                      info);
          comm_->init([this] { world_->mark_ready(comm_.get()); });
        },
        [this](const std::string&) { api_->exit(true, "aborted"); });
  }

  void on_terminate() override {
    comm_.reset();
    barrier_.reset();
  }

 private:
  MpiWorld* world_;
  gram::ProcessApi* api_ = nullptr;
  std::unique_ptr<core::BarrierClient> barrier_;
  std::unique_ptr<cfg::Communicator> comm_;
};

struct MpiFixture {
  explicit MpiFixture(const std::vector<std::int32_t>& subjob_sizes) {
    const int hosts = static_cast<int>(subjob_sizes.size());
    g = std::make_unique<SmallGrid>(hosts);
    g->grid->executables().install(
        "mpiapp", [this] { return std::make_unique<MpiApp>(&world); });
    world.expected = std::accumulate(subjob_sizes.begin(), subjob_sizes.end(), 0);
    auto* req = g->coallocator->create_request(outcome.callbacks());
    std::vector<std::string> subs;
    for (int i = 0; i < hosts; ++i) {
      subs.push_back(testbed::rsl_subjob("host" + std::to_string(i + 1),
                                         subjob_sizes[static_cast<size_t>(i)],
                                         "mpiapp", "required"));
    }
    EXPECT_TRUE(req->add_rsl(testbed::rsl_multi(subs)).is_ok());
    req->commit();
  }

  std::unique_ptr<SmallGrid> g;
  MpiWorld world;
  Outcome outcome;
};

TEST(GridMpi, BootstrapBuildsFullWorld) {
  MpiFixture f({3, 2, 4});
  f.g->grid->run();
  ASSERT_EQ(f.world.ready, 9);
  for (int r = 0; r < 9; ++r) {
    ASSERT_TRUE(f.world.by_rank.contains(r)) << "rank " << r;
    EXPECT_EQ(f.world.by_rank[r]->size(), 9);
    EXPECT_TRUE(f.world.by_rank[r]->initialized());
  }
}

TEST(GridMpi, SingleSubjobSingleProcess) {
  MpiFixture f({1});
  f.g->grid->run();
  ASSERT_EQ(f.world.ready, 1);
  EXPECT_EQ(f.world.by_rank[0]->size(), 1);
}

TEST(GridMpi, PointToPointAcrossSubjobs) {
  MpiFixture f({2, 2});
  std::string got;
  std::int32_t got_src = -1;
  f.world.on_world_ready = [&] {
    // rank 3 (subjob 1) -> rank 0 (subjob 0): crosses subjob boundary.
    f.world.by_rank[0]->recv(7, [&](std::int32_t src, util::Reader& r) {
      got_src = src;
      got = r.str();
    });
    util::Writer w;
    w.str("hello across subjobs");
    f.world.by_rank[3]->send(0, 7, w.take_bytes());
  };
  f.g->grid->run();
  EXPECT_EQ(got_src, 3);
  EXPECT_EQ(got, "hello across subjobs");
}

TEST(GridMpi, EarlyMessagesDeliveredOnRecvRegistration) {
  MpiFixture f({1, 1});
  std::string got;
  f.world.on_world_ready = [&] {
    util::Writer w;
    w.str("early");
    f.world.by_rank[1]->send(0, 3, w.take_bytes());
    // Register the handler after the message is already in flight.
    f.g->grid->engine().schedule_after(sim::kSecond, [&] {
      f.world.by_rank[0]->recv(3, [&](std::int32_t, util::Reader& r) {
        got = r.str();
      });
    });
  };
  f.g->grid->run();
  EXPECT_EQ(got, "early");
}

TEST(GridMpi, BarrierSynchronizesAllRanks) {
  MpiFixture f({2, 3});
  int out = 0;
  f.world.on_world_ready = [&] {
    for (auto& [rank, comm] : f.world.by_rank) {
      comm->barrier([&] { ++out; });
    }
  };
  f.g->grid->run();
  EXPECT_EQ(out, 5);
}

TEST(GridMpi, BcastDeliversRootPayload) {
  MpiFixture f({2, 2});
  std::map<std::int32_t, std::string> got;
  f.world.on_world_ready = [&] {
    for (auto& [rank, comm] : f.world.by_rank) {
      util::Bytes payload;
      if (rank == 1) {
        util::Writer w;
        w.str("broadcast payload");
        // bcast with root=1: root passes the payload, others pass empty.
        payload = w.take_bytes();
      }
      comm->bcast(1, payload, [&, rank = rank](util::Bytes data) {
        util::Reader r(data);
        got[rank] = r.str();
      });
    }
  };
  f.g->grid->run();
  ASSERT_EQ(got.size(), 4u);
  for (auto& [rank, s] : got) EXPECT_EQ(s, "broadcast payload") << rank;
}

TEST(GridMpi, AllReduceSumsContributions) {
  MpiFixture f({3, 1, 2});
  std::map<std::int32_t, std::int64_t> got;
  f.world.on_world_ready = [&] {
    for (auto& [rank, comm] : f.world.by_rank) {
      comm->allreduce_sum(rank + 1, [&, rank = rank](std::int64_t total) {
        got[rank] = total;
      });
    }
  };
  f.g->grid->run();
  ASSERT_EQ(got.size(), 6u);
  for (auto& [rank, total] : got) EXPECT_EQ(total, 21) << rank;  // 1+..+6
}

TEST(GridMpi, AllReduceMinAndMax) {
  MpiFixture f({2, 2});
  std::map<std::int32_t, std::int64_t> mins, maxs;
  f.world.on_world_ready = [&] {
    for (auto& [rank, comm] : f.world.by_rank) {
      // values: 10, 7, 4, 1 for ranks 0..3
      const std::int64_t v = 10 - 3 * rank;
      comm->allreduce_min(v, [&, rank = rank](std::int64_t m) {
        mins[rank] = m;
      });
      comm->allreduce_max(v, [&, rank = rank](std::int64_t m) {
        maxs[rank] = m;
      });
    }
  };
  f.g->grid->run();
  ASSERT_EQ(mins.size(), 4u);
  for (auto& [rank, m] : mins) EXPECT_EQ(m, 1) << rank;
  for (auto& [rank, m] : maxs) EXPECT_EQ(m, 10) << rank;
}

TEST(GridMpi, GatherCollectsInRankOrder) {
  MpiFixture f({2, 3});
  std::vector<util::Bytes> gathered;
  f.world.on_world_ready = [&] {
    for (auto& [rank, comm] : f.world.by_rank) {
      util::Writer w;
      w.str("from-rank-" + std::to_string(rank));
      comm->gather(/*root=*/2, w.take_bytes(),
                   [&, rank = rank](std::vector<util::Bytes> pieces) {
                     if (rank == 2) gathered = std::move(pieces);
                   });
    }
  };
  f.g->grid->run();
  ASSERT_EQ(gathered.size(), 5u);
  for (std::int32_t r = 0; r < 5; ++r) {
    util::Reader reader(gathered[static_cast<std::size_t>(r)]);
    EXPECT_EQ(reader.str(), "from-rank-" + std::to_string(r));
  }
}

TEST(GridMpi, ConsecutiveCollectivesKeepOrder) {
  MpiFixture f({2, 2});
  std::map<std::int32_t, std::vector<std::int64_t>> got;
  f.world.on_world_ready = [&] {
    for (auto& [rank, comm] : f.world.by_rank) {
      comm->allreduce_sum(1, [&, rank = rank](std::int64_t t) {
        got[rank].push_back(t);
      });
      comm->allreduce_sum(10, [&, rank = rank](std::int64_t t) {
        got[rank].push_back(t);
      });
    }
  };
  f.g->grid->run();
  for (auto& [rank, results] : got) {
    EXPECT_EQ(results, (std::vector<std::int64_t>{4, 40})) << rank;
  }
}

/// Parameterized layout sweep: bootstrap works for any subjob structure.
class GridMpiLayoutSweep
    : public ::testing::TestWithParam<std::vector<std::int32_t>> {};

TEST_P(GridMpiLayoutSweep, WorldFormsAndReduces) {
  MpiFixture f(GetParam());
  const auto total = std::accumulate(GetParam().begin(), GetParam().end(), 0);
  std::map<std::int32_t, std::int64_t> got;
  f.world.on_world_ready = [&] {
    for (auto& [rank, comm] : f.world.by_rank) {
      comm->allreduce_sum(1, [&, rank = rank](std::int64_t t) {
        got[rank] = t;
      });
    }
  };
  f.g->grid->run();
  ASSERT_EQ(f.world.ready, total);
  for (auto& [rank, t] : got) EXPECT_EQ(t, total);
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, GridMpiLayoutSweep,
    ::testing::Values(std::vector<std::int32_t>{1},
                      std::vector<std::int32_t>{4},
                      std::vector<std::int32_t>{1, 1},
                      std::vector<std::int32_t>{8, 1},
                      std::vector<std::int32_t>{1, 8},
                      std::vector<std::int32_t>{3, 3, 3},
                      std::vector<std::int32_t>{5, 1, 2, 7},
                      std::vector<std::int32_t>{2, 2, 2, 2, 2, 2}));

}  // namespace
}  // namespace grid
