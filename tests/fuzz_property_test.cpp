// Additional property sweeps: randomized edit-operation sequences on the
// request editor and the live mechanism layer, randomized gridmpi traffic,
// and co-allocation under jittered network latency.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "config/gridmpi.hpp"
#include "core/app_barrier.hpp"
#include "rsl/editor.hpp"
#include "rsl/parser.hpp"
#include "test_util.hpp"

namespace grid {
namespace {

using test::Outcome;
using test::SmallGrid;

// ---- RequestEditor randomized ops ------------------------------------------

class EditorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EditorFuzz, InvariantsUnderRandomEditSequences) {
  sim::Rng rng(GetParam() * 7919);
  rsl::RequestEditor editor({});
  std::int64_t expected_total = 0;
  std::size_t expected_size = 0;
  std::size_t journal_entries = 0;
  for (int op = 0; op < 300; ++op) {
    const auto pick = rng.uniform_int(0, 3);
    if (pick <= 1 || editor.size() == 0) {  // add (biased)
      rsl::JobRequest j;
      j.resource_manager_contact = "h" + std::to_string(rng.uniform_int(0, 9));
      j.executable = "x";
      j.count = static_cast<std::int32_t>(rng.uniform_int(1, 16));
      j.label = rng.chance(0.5)
                    ? "L" + std::to_string(rng.uniform_int(0, 4))
                    : "";
      expected_total += j.count;
      ++expected_size;
      ++journal_entries;
      editor.add(std::move(j));
    } else if (pick == 2) {  // remove
      const auto index =
          static_cast<std::size_t>(rng.uniform_int(0, editor.size() - 1));
      expected_total -= editor.subjobs()[index].count;
      --expected_size;
      ++journal_entries;
      ASSERT_TRUE(editor.remove(index).is_ok());
    } else {  // substitute
      const auto index =
          static_cast<std::size_t>(rng.uniform_int(0, editor.size() - 1));
      rsl::JobRequest j;
      j.resource_manager_contact = "s" + std::to_string(rng.uniform_int(0, 9));
      j.executable = "y";
      j.count = static_cast<std::int32_t>(rng.uniform_int(1, 16));
      expected_total +=
          j.count - editor.subjobs()[index].count;
      ++journal_entries;
      ASSERT_TRUE(editor.substitute(index, std::move(j)).is_ok());
    }
    ASSERT_EQ(editor.size(), expected_size);
    ASSERT_EQ(editor.total_count(), expected_total);
    ASSERT_EQ(editor.journal().size(), journal_entries);
  }
  if (editor.size() > 0) {
    // Whatever the final state, it prints and reparses identically.
    auto reparsed = rsl::RequestEditor::from_text(editor.to_string());
    ASSERT_TRUE(reparsed.is_ok());
    EXPECT_EQ(reparsed.value().subjobs(), editor.subjobs());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EditorFuzz, ::testing::Range<std::uint64_t>(1, 7));

// ---- live request randomized pre-commit edits ----------------------------------

class LiveEditFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LiveEditFuzz, RandomEditsThenCommitAlwaysResolves) {
  for (std::uint64_t sub = 0; sub < 4; ++sub) {
    const std::uint64_t seed = GetParam() * 100 + sub;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    sim::Rng rng(seed);
    SmallGrid g(4, testbed::CostModel::fast(),
                app::StartupProfile{.init_delay = 2 * sim::kSecond,
                                    .init_jitter = 2 * sim::kSecond});
    core::RequestConfig config;
    config.startup_timeout = 5 * sim::kMinute;
    Outcome outcome;
    auto* req = g.coallocator->create_request(outcome.callbacks(), config);
    std::vector<core::SubjobHandle> handles;
    auto random_job = [&] {
      rsl::JobRequest j;
      j.resource_manager_contact =
          "host" + std::to_string(rng.uniform_int(1, 4));
      j.executable = "app";
      j.count = static_cast<std::int32_t>(rng.uniform_int(1, 8));
      j.start_type = rng.chance(0.5) ? rsl::SubjobStartType::kInteractive
                                     : rsl::SubjobStartType::kRequired;
      return j;
    };
    for (int i = 0; i < 3; ++i) {
      auto added = req->add_subjob(random_job());
      ASSERT_TRUE(added.is_ok());
      handles.push_back(added.value());
    }
    req->start();
    // Random edits spread over the first seconds of the pipeline.
    for (int e = 0; e < 6; ++e) {
      const sim::Time at = rng.uniform_time(0, 3 * sim::kSecond);
      g.grid->engine().schedule_at(at, [&, e] {
        if (req->state() != core::RequestState::kEditing) return;
        sim::Rng op_rng(seed * 31 + static_cast<std::uint64_t>(e));
        const auto pick = op_rng.uniform_int(0, 2);
        if (pick == 0) {
          auto added = req->add_subjob(random_job());
          if (added.is_ok()) handles.push_back(added.value());
        } else if (pick == 1 && !handles.empty()) {
          req->remove_subjob(handles[static_cast<std::size_t>(
              op_rng.uniform_int(0, handles.size() - 1))]);
        } else if (!handles.empty()) {
          req->substitute_subjob(
              handles[static_cast<std::size_t>(
                  op_rng.uniform_int(0, handles.size() - 1))],
              random_job());
        }
      });
    }
    g.grid->engine().schedule_at(4 * sim::kSecond, [&] {
      if (req->state() == core::RequestState::kEditing &&
          req->live_subjob_count() > 0) {
        req->commit();
      } else if (req->state() == core::RequestState::kEditing) {
        req->abort("nothing left");
      }
    });
    g.grid->run_until(sim::kHour);
    // Always resolves; if released, the config covers every live subjob.
    EXPECT_NE(req->state(), core::RequestState::kEditing);
    EXPECT_NE(req->state(), core::RequestState::kCommitted);
    if (outcome.released) {
      EXPECT_EQ(outcome.config.total_processes,
                req->total_live_processes());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LiveEditFuzz,
                         ::testing::Range<std::uint64_t>(1, 7));

// ---- label lookup ------------------------------------------------------------------

TEST(Labels, FindLabeledTracksEdits) {
  SmallGrid g(2);
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  ASSERT_TRUE(req->add_rsl(testbed::rsl_multi({
                               testbed::rsl_subjob("host1", 1, "app",
                                                   "required", "master"),
                               testbed::rsl_subjob("host2", 4, "app",
                                                   "interactive", "workers"),
                           }))
                  .is_ok());
  const core::SubjobHandle master = req->find_labeled("master");
  const core::SubjobHandle workers = req->find_labeled("workers");
  EXPECT_NE(master, 0u);
  EXPECT_NE(workers, 0u);
  EXPECT_EQ(req->find_labeled("nope"), 0u);
  ASSERT_TRUE(req->remove_subjob(workers).is_ok());
  EXPECT_EQ(req->find_labeled("workers"), 0u);  // no longer live
  EXPECT_EQ(req->find_labeled("master"), master);
}

// ---- gridmpi randomized traffic --------------------------------------------------

struct FuzzWorld {
  std::map<std::int32_t, cfg::Communicator*> by_rank;
  int ready = 0;
  int expected = 0;
  std::function<void()> on_ready;
  void mark(cfg::Communicator* c) {
    by_rank[c->rank()] = c;
    if (++ready == expected && on_ready) on_ready();
  }
};

class FuzzMpiApp final : public gram::ProcessBehavior {
 public:
  explicit FuzzMpiApp(FuzzWorld* world) : world_(world) {}
  void start(gram::ProcessApi& api) override {
    api_ = &api;
    barrier_ = std::make_unique<core::BarrierClient>(api);
    barrier_->enter(true, "",
                    [this](const core::ReleaseInfo& info) {
                      comm_ = std::make_unique<cfg::Communicator>(
                          barrier_->endpoint(), info);
                      comm_->init([this] { world_->mark(comm_.get()); });
                    },
                    [this](const std::string&) { api_->exit(true, ""); });
  }
  void on_terminate() override {
    comm_.reset();
    barrier_.reset();
  }

 private:
  FuzzWorld* world_;
  gram::ProcessApi* api_ = nullptr;
  std::unique_ptr<core::BarrierClient> barrier_;
  std::unique_ptr<cfg::Communicator> comm_;
};

class GridMpiFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridMpiFuzz, RandomPointToPointTrafficAllDelivered) {
  sim::Rng rng(GetParam() * 1337);
  const int hosts = static_cast<int>(rng.uniform_int(2, 4));
  SmallGrid g(hosts);
  FuzzWorld world;
  g.grid->executables().install(
      "fuzzmpi", [&world] { return std::make_unique<FuzzMpiApp>(&world); });
  std::vector<std::string> subs;
  int total = 0;
  for (int i = 1; i <= hosts; ++i) {
    const int count = static_cast<int>(rng.uniform_int(1, 5));
    total += count;
    subs.push_back(testbed::rsl_subjob("host" + std::to_string(i), count,
                                       "fuzzmpi", "required"));
  }
  world.expected = total;
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  ASSERT_TRUE(req->add_rsl(testbed::rsl_multi(subs)).is_ok());
  req->commit();

  std::map<std::int32_t, std::int64_t> received_sum;
  std::map<std::int32_t, std::int64_t> expected_sum;
  int messages = 0;
  world.on_ready = [&] {
    for (auto& [rank, comm] : world.by_rank) {
      comm->recv(5, [&, rank = rank](std::int32_t, util::Reader& r) {
        received_sum[rank] += r.i64();
      });
    }
    // Random messages: every payload is accounted to its destination.
    for (int m = 0; m < 200; ++m) {
      const auto src =
          static_cast<std::int32_t>(rng.uniform_int(0, total - 1));
      const auto dst =
          static_cast<std::int32_t>(rng.uniform_int(0, total - 1));
      if (src == dst) continue;
      const std::int64_t value = rng.uniform_int(1, 1000);
      expected_sum[dst] += value;
      ++messages;
      util::Writer w;
      w.i64(value);
      world.by_rank[src]->send(dst, 5, w.take_bytes());
    }
  };
  g.grid->run();
  ASSERT_EQ(world.ready, total);
  EXPECT_GT(messages, 0);
  for (auto& [rank, sum] : expected_sum) {
    EXPECT_EQ(received_sum[rank], sum) << "rank " << rank;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridMpiFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---- jittered network --------------------------------------------------------------

class JitterSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JitterSweep, CoallocationSurvivesLatencyJitter) {
  SmallGrid g(3);
  g.grid->network().set_latency_model(std::make_unique<net::JitterLatency>(
      2 * sim::kMillisecond, 50 * sim::kMillisecond, sim::Rng(GetParam())));
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  req->add_rsl(g.rsl(8, "required"));
  req->commit();
  g.grid->run();
  EXPECT_TRUE(outcome.released);
  EXPECT_TRUE(outcome.status.is_ok());
  EXPECT_EQ(outcome.config.total_processes, 24);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitterSweep,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace grid
