// Unit tests for the GRAM layer: gatekeeper request pipeline, job manager
// lifecycle, state callbacks, NIS costs, and failure modes.
#include <gtest/gtest.h>

#include <vector>

#include "app/behaviors.hpp"
#include "gram/client.hpp"
#include "testbed/grid.hpp"

namespace grid {
namespace {

struct GramFixture : ::testing::Test {
  GramFixture() : grid_(testbed::CostModel::fast()) {
    grid_.add_host("rm1", 64);
    app::install_app(grid_.executables(), "app", app::StartupProfile{},
                     &stats_);
    cred_ = grid_.make_user("/CN=alice", "alice");
    endpoint_ = std::make_unique<net::Endpoint>(grid_.network(), "client");
    client_ = std::make_unique<gram::Client>(*endpoint_, grid_.ca(), cred_,
                                             grid_.costs().gsi);
  }

  net::NodeId rm1() { return grid_.host("rm1")->contact(); }

  static std::string rsl(int count, const std::string& exe = "app") {
    return "&(resourceManagerContact=rm1)(count=" + std::to_string(count) +
           ")(executable=" + exe + ")";
  }

  testbed::Grid grid_{testbed::CostModel::fast()};
  app::BarrierStats stats_;
  gsi::Credential cred_;
  std::unique_ptr<net::Endpoint> endpoint_;
  std::unique_ptr<gram::Client> client_;
};

TEST_F(GramFixture, JobRunsThroughFullLifecycle) {
  util::Result<gram::JobId> accepted{
      util::Status(util::ErrorCode::kInternal, "unset")};
  std::vector<gram::JobState> states;
  client_->submit(
      rm1(), rsl(4), 10 * sim::kSecond,
      [&](util::Result<gram::JobId> r) { accepted = std::move(r); },
      [&](const gram::JobStateChange& c) { states.push_back(c.state); });
  grid_.run();
  ASSERT_TRUE(accepted.is_ok()) << accepted.status().to_string();
  EXPECT_EQ(states, (std::vector<gram::JobState>{gram::JobState::kPending,
                                                 gram::JobState::kActive,
                                                 gram::JobState::kDone}));
  // Without a co-allocator the app runs as a plain GRAM job.
  EXPECT_EQ(grid_.host("rm1")->gatekeeper().job_count(), 1u);
  auto state = grid_.host("rm1")->gatekeeper().job_state(accepted.value());
  ASSERT_TRUE(state.is_ok());
  EXPECT_EQ(state.value(), gram::JobState::kDone);
}

TEST_F(GramFixture, SubmitWithoutStateCallbackStillAccepted) {
  bool accepted = false;
  client_->submit(rm1(), rsl(1), 10 * sim::kSecond,
                  [&](util::Result<gram::JobId> r) { accepted = r.is_ok(); });
  grid_.run();
  EXPECT_TRUE(accepted);
}

TEST_F(GramFixture, BadRslRejected) {
  util::Status status;
  client_->submit(rm1(), "&(count=", 10 * sim::kSecond,
                  [&](util::Result<gram::JobId> r) { status = r.status(); });
  grid_.run();
  EXPECT_EQ(status.code(), util::ErrorCode::kInvalidArgument);
}

TEST_F(GramFixture, MissingExecutableFailsJob) {
  std::vector<gram::JobState> states;
  client_->submit(
      rm1(), rsl(2, "no-such-binary"), 10 * sim::kSecond,
      [](util::Result<gram::JobId>) {},
      [&](const gram::JobStateChange& c) { states.push_back(c.state); });
  grid_.run();
  ASSERT_FALSE(states.empty());
  EXPECT_EQ(states.back(), gram::JobState::kFailed);
}

TEST_F(GramFixture, UnknownContactAttributeStillRouted) {
  // The resourceManagerContact in the RSL is advisory at the GRAM level;
  // the request goes to whichever gatekeeper the client addressed.
  bool ok = false;
  client_->submit(rm1(),
                  "&(resourceManagerContact=elsewhere)(executable=app)",
                  10 * sim::kSecond,
                  [&](util::Result<gram::JobId> r) { ok = r.is_ok(); });
  grid_.run();
  EXPECT_TRUE(ok);
}

TEST_F(GramFixture, UnmappedUserDenied) {
  net::Endpoint ep(grid_.network(), "mallory");
  gram::Client mallory(ep, grid_.ca(),
                       grid_.ca().issue("/CN=mallory", sim::kTimeNever / 2),
                       grid_.costs().gsi);
  util::Status status;
  mallory.submit(rm1(), rsl(1), 10 * sim::kSecond,
                 [&](util::Result<gram::JobId> r) { status = r.status(); });
  grid_.run();
  EXPECT_EQ(status.code(), util::ErrorCode::kPermissionDenied);
}

TEST_F(GramFixture, ForgedSessionTokenDenied) {
  // Bypass the client and send a job request with a made-up token.
  gram::JobRequestArgs args;
  args.session_token = 0xdead;
  args.rsl = rsl(1);
  util::Writer w;
  args.encode(w);
  util::Status status;
  endpoint_->call(rm1(), gram::kMethodJobRequest, w.take(), 10 * sim::kSecond,
                  [&](const util::Status& s, util::Reader&) { status = s; });
  grid_.run();
  EXPECT_EQ(status.code(), util::ErrorCode::kPermissionDenied);
}

TEST_F(GramFixture, CancelRunningJob) {
  app::StartupProfile forever;
  forever.run_time = sim::kHour;
  app::install_app(grid_.executables(), "longapp", forever, &stats_);
  util::Result<gram::JobId> accepted{
      util::Status(util::ErrorCode::kInternal, "unset")};
  std::vector<gram::JobState> states;
  client_->submit(
      rm1(), rsl(4, "longapp"), 10 * sim::kSecond,
      [&](util::Result<gram::JobId> r) { accepted = std::move(r); },
      [&](const gram::JobStateChange& c) { states.push_back(c.state); });
  grid_.run_until(5 * sim::kSecond);
  ASSERT_TRUE(accepted.is_ok());
  util::Status cancel_status(util::ErrorCode::kInternal, "unset");
  client_->cancel(rm1(), accepted.value(), 10 * sim::kSecond,
                  [&](util::Status s) { cancel_status = s; });
  grid_.run();
  EXPECT_TRUE(cancel_status.is_ok());
  ASSERT_FALSE(states.empty());
  EXPECT_EQ(states.back(), gram::JobState::kFailed);
  EXPECT_LT(sim::to_seconds(grid_.engine().now()), 3600.0);
}

TEST_F(GramFixture, CancelUnknownJobFails) {
  util::Status status;
  client_->cancel(rm1(), 999999, 10 * sim::kSecond,
                  [&](util::Status s) { status = s; });
  grid_.run();
  EXPECT_EQ(status.code(), util::ErrorCode::kNotFound);
}

TEST_F(GramFixture, StatusQueryReflectsState) {
  util::Result<gram::JobId> accepted{
      util::Status(util::ErrorCode::kInternal, "unset")};
  client_->submit(rm1(), rsl(1), 10 * sim::kSecond,
                  [&](util::Result<gram::JobId> r) { accepted = std::move(r); });
  grid_.run();
  ASSERT_TRUE(accepted.is_ok());
  util::Result<gram::JobState> state{
      util::Status(util::ErrorCode::kInternal, "unset")};
  client_->status(rm1(), accepted.value(), 10 * sim::kSecond,
                  [&](util::Result<gram::JobState> s) { state = std::move(s); });
  grid_.run();
  ASSERT_TRUE(state.is_ok());
  EXPECT_EQ(state.value(), gram::JobState::kDone);
}

TEST_F(GramFixture, PingProbesLiveness) {
  util::Status up_status(util::ErrorCode::kInternal, "unset");
  client_->ping(rm1(), sim::kSecond, [&](util::Status s) { up_status = s; });
  grid_.run();
  EXPECT_TRUE(up_status.is_ok());
  grid_.host("rm1")->crash();
  util::Status down_status;
  client_->ping(rm1(), sim::kSecond, [&](util::Status s) { down_status = s; });
  grid_.run();
  EXPECT_EQ(down_status.code(), util::ErrorCode::kTimeout);
}

TEST_F(GramFixture, CrashedHostTimesOutSubmission) {
  grid_.host("rm1")->crash();
  util::Status status;
  client_->submit(rm1(), rsl(1), 2 * sim::kSecond,
                  [&](util::Result<gram::JobId> r) { status = r.status(); });
  grid_.run();
  EXPECT_EQ(status.code(), util::ErrorCode::kTimeout);
}

TEST_F(GramFixture, HostCrashMidJobSilencesCallbacks) {
  app::StartupProfile forever;
  forever.run_time = sim::kHour;
  app::install_app(grid_.executables(), "longapp", forever, &stats_);
  std::vector<gram::JobState> states;
  client_->submit(
      rm1(), rsl(2, "longapp"), 10 * sim::kSecond,
      [](util::Result<gram::JobId>) {},
      [&](const gram::JobStateChange& c) { states.push_back(c.state); });
  grid_.run_until(5 * sim::kSecond);
  ASSERT_FALSE(states.empty());
  EXPECT_EQ(states.back(), gram::JobState::kActive);
  const auto before = states.size();
  grid_.host("rm1")->crash();
  grid_.run();
  EXPECT_EQ(states.size(), before);  // a dead host reports nothing
}

TEST_F(GramFixture, RestoredHostAcceptsNewWork) {
  grid_.host("rm1")->crash();
  grid_.run();
  grid_.host("rm1")->restore();
  bool ok = false;
  client_->submit(rm1(), rsl(1), 10 * sim::kSecond,
                  [&](util::Result<gram::JobId> r) { ok = r.is_ok(); });
  grid_.run();
  EXPECT_TRUE(ok);
}

TEST_F(GramFixture, NisLookupsServedPerRequest) {
  const auto before = grid_.nis().lookups_served();
  bool ok = false;
  client_->submit(rm1(), rsl(1), 10 * sim::kSecond,
                  [&](util::Result<gram::JobId> r) { ok = r.is_ok(); });
  grid_.run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(grid_.nis().lookups_served(), before + 1);
}

TEST_F(GramFixture, CrashedNisFailsRequests) {
  grid_.network().set_node_up(grid_.nis().id(), false);
  util::Status status;
  client_->submit(rm1(), rsl(1), 60 * sim::kSecond,
                  [&](util::Result<gram::JobId> r) { status = r.status(); });
  grid_.run();
  EXPECT_EQ(status.code(), util::ErrorCode::kUnavailable);
}

TEST_F(GramFixture, BatchHostQueuesUntilProcessorsFree) {
  grid_.add_host("batch1", 8, testbed::SchedulerKind::kFcfs);
  app::StartupProfile slow;
  slow.run_time = 30 * sim::kSecond;
  app::install_app(grid_.executables(), "slowapp", slow, &stats_);
  std::vector<sim::Time> active_times;
  auto submit_one = [&] {
    client_->submit(
        grid_.host("batch1")->contact(),
        "&(resourceManagerContact=batch1)(count=8)(executable=slowapp)",
        10 * sim::kSecond, [](util::Result<gram::JobId>) {},
        [&](const gram::JobStateChange& c) {
          if (c.state == gram::JobState::kActive) {
            active_times.push_back(grid_.engine().now());
          }
        });
  };
  submit_one();
  submit_one();
  grid_.run();
  ASSERT_EQ(active_times.size(), 2u);
  // The second 8-processor job waited for the first to drain (~30 s).
  EXPECT_GT(active_times[1] - active_times[0], 25 * sim::kSecond);
}

/// Behaviour that records what the process sees of its context.
class IntrospectApp final : public gram::ProcessBehavior {
 public:
  struct Seen {
    std::vector<std::string> args;
    std::string home;
    std::int32_t count = 0;
    std::string host;
  };
  explicit IntrospectApp(Seen* out) : out_(out) {}
  void start(gram::ProcessApi& api) override {
    if (api.local_rank() == 0) {
      out_->args = api.arguments();
      out_->home = api.getenv("HOME");
      out_->count = api.local_count();
      out_->host = api.host_name();
    }
    api.exit(true, "");
  }

 private:
  Seen* out_;
};

TEST_F(GramFixture, ArgumentsAndEnvironmentReachProcesses) {
  IntrospectApp::Seen seen;
  grid_.executables().install("introspect", [&seen] {
    return std::make_unique<IntrospectApp>(&seen);
  });
  bool ok = false;
  client_->submit(rm1(),
                  "&(resourceManagerContact=rm1)(count=3)"
                  "(executable=introspect)(arguments=-v --fast input.dat)"
                  "(environment=(HOME /home/alice)(MODE batch))",
                  10 * sim::kSecond,
                  [&](util::Result<gram::JobId> r) { ok = r.is_ok(); });
  grid_.run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(seen.args,
            (std::vector<std::string>{"-v", "--fast", "input.dat"}));
  EXPECT_EQ(seen.home, "/home/alice");
  EXPECT_EQ(seen.count, 3);
  EXPECT_EQ(seen.host, "rm1");
}

TEST_F(GramFixture, MaxWallTimeEnforcedFromRsl) {
  app::StartupProfile forever;
  forever.run_time = sim::kHour;
  app::install_app(grid_.executables(), "longapp", forever, &stats_);
  std::vector<gram::JobState> states;
  client_->submit(
      rm1(),
      "&(resourceManagerContact=rm1)(count=2)(executable=longapp)"
      "(maxWallTime=5)",  // five minutes
      10 * sim::kSecond, [](util::Result<gram::JobId>) {},
      [&](const gram::JobStateChange& c) { states.push_back(c.state); });
  grid_.run();
  ASSERT_FALSE(states.empty());
  EXPECT_EQ(states.back(), gram::JobState::kFailed);
  EXPECT_LT(grid_.engine().now(), 6 * sim::kMinute);
  EXPECT_GE(grid_.engine().now(), 5 * sim::kMinute);
}

TEST_F(GramFixture, PaperCostsProduceTwoSecondSubmission) {
  // With the calibrated (paper) cost model a single GRAM submission takes
  // ~2 s to ACTIVE (Figure 2).
  testbed::Grid grid(testbed::CostModel::paper());
  grid.add_host("rm", 64);
  app::BarrierStats stats;
  app::install_app(grid.executables(), "app", app::StartupProfile{}, &stats);
  net::Endpoint ep(grid.network(), "client");
  gram::Client client(ep, grid.ca(), grid.make_user("/CN=u", "u"),
                      grid.costs().gsi);
  sim::Time active_at = -1;
  client.submit(
      grid.host("rm")->contact(),
      "&(resourceManagerContact=rm)(count=16)(executable=app)",
      30 * sim::kSecond, [](util::Result<gram::JobId>) {},
      [&](const gram::JobStateChange& c) {
        if (c.state == gram::JobState::kActive) active_at = grid.engine().now();
      });
  grid.run();
  ASSERT_GE(active_at, 0);
  EXPECT_NEAR(sim::to_seconds(active_at), 2.0, 0.25);
}

}  // namespace
}  // namespace grid
