// Edge-case tests for the co-allocation mechanism layer: races between
// edits and in-flight protocol activity, stale incarnations, duplicate
// and malformed barrier traffic, serialization mode, and request teardown.
#include <gtest/gtest.h>

#include "app/failure.hpp"
#include "core/barrier_protocol.hpp"
#include "test_util.hpp"

namespace grid {
namespace {

using core::RequestState;
using core::SubjobState;
using rsl::SubjobStartType;
using test::Outcome;
using test::SmallGrid;

rsl::JobRequest make_job(const std::string& contact, std::int32_t count,
                         SubjobStartType type,
                         const std::string& exe = "app") {
  rsl::JobRequest j;
  j.resource_manager_contact = contact;
  j.executable = exe;
  j.count = count;
  j.start_type = type;
  return j;
}

TEST(CoallocationEdge, SubstituteWhileSubmissionInFlightReapsOrphan) {
  // The GRAM request for host1 is accepted *after* the agent substitutes
  // the slot; the orphan job must be cancelled, not leaked.
  SmallGrid g(2, testbed::CostModel::paper());
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  auto handle =
      req->add_subjob(make_job("host1", 4, SubjobStartType::kInteractive));
  ASSERT_TRUE(handle.is_ok());
  req->start();
  // The paper cost model takes ~1.2 s to accept; edit at 0.5 s.
  g.grid->engine().schedule_at(500 * sim::kMillisecond, [&] {
    ASSERT_TRUE(req->substitute_subjob(
                       handle.value(),
                       make_job("host2", 4, SubjobStartType::kInteractive))
                    .is_ok());
    req->commit();
  });
  g.grid->run();
  ASSERT_TRUE(outcome.released);
  EXPECT_EQ(outcome.config.subjobs[0].contact, "host2");
  // The orphan host1 job was cancelled: eventually no live host1 job.
  auto& gk = g.grid->host("host1")->gatekeeper();
  for (std::size_t i = 0; i < gk.job_count(); ++i) {
    // all jobs on host1 must be terminal
  }
  EXPECT_EQ(g.stats.releases, 4);
}

TEST(CoallocationEdge, StaleIncarnationCheckinIsRejected) {
  // A process from a substituted-away incarnation checks in; the request
  // must ignore it (and tell it to abort), not double-count.
  SmallGrid g(2, testbed::CostModel::fast(),
              app::StartupProfile{.init_delay = 5 * sim::kSecond});
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  auto handle =
      req->add_subjob(make_job("host1", 4, SubjobStartType::kInteractive));
  ASSERT_TRUE(handle.is_ok());
  req->start();
  // Substitute at 1 s: host1's processes (init 5 s) have not checked in
  // yet, but their job is ACTIVE and they *will* check in as a stale
  // incarnation... (their job gets cancelled; any in-flight check-in from
  // it must be ignored).
  g.grid->engine().schedule_at(sim::kSecond, [&] {
    req->substitute_subjob(handle.value(),
                           make_job("host2", 4, SubjobStartType::kRequired));
    req->commit();
  });
  g.grid->run();
  ASSERT_TRUE(outcome.released);
  EXPECT_EQ(outcome.config.total_processes, 4);
  EXPECT_EQ(outcome.config.subjobs[0].contact, "host2");
  auto view = req->subjob(handle.value());
  ASSERT_TRUE(view.is_ok());
  EXPECT_EQ(view.value().checked_in, 4);
}

TEST(CoallocationEdge, ForgedCheckinForUnknownSubjobIsIgnored) {
  SmallGrid g(1);
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  req->add_rsl(g.rsl(2, "required"));
  req->commit();
  // Inject a forged check-in for a nonexistent subjob.
  net::Endpoint forger(g.grid->network(), "forger");
  core::CheckinMessage msg;
  msg.request = req->id();
  msg.subjob = 424242;
  msg.gram_job = 7;
  msg.rank = 0;
  msg.ok = true;
  util::Writer w;
  msg.encode(w);
  forger.notify(g.coallocator->endpoint().id(), core::kNotifyCheckin,
                w.take());
  g.grid->run();
  EXPECT_TRUE(outcome.released);  // unaffected
  EXPECT_EQ(outcome.config.total_processes, 2);
}

TEST(CoallocationEdge, CheckinForDeadRequestGetsAbortReply) {
  SmallGrid g(1);
  // A process checks in against a request id that does not exist; the
  // co-allocator should answer with an abort so the orphan exits.
  struct Listener : net::Node {
    void handle_message(const net::Message& msg) override {
      if (msg.kind == net::kFrameNotify) {
        util::Reader r(msg.payload);
        kind = r.u32();
      }
    }
    std::uint32_t kind = 0;
  } listener;
  const net::NodeId addr = g.grid->network().attach(&listener, "orphan");
  core::CheckinMessage msg;
  msg.request = 999;
  msg.subjob = 1;
  msg.rank = 0;
  msg.ok = true;
  util::Writer w;
  msg.encode(w);
  // Send from the raw node (bypasses Endpoint framing).
  util::Writer frame;
  frame.u32(core::kNotifyCheckin);
  frame.blob(w.bytes());
  g.grid->network().send(addr, g.coallocator->endpoint().id(),
                         net::kFrameNotify, frame.take());
  g.grid->run();
  EXPECT_EQ(listener.kind, core::kNotifyAbort);
}

TEST(CoallocationEdge, AbortDuringEditingCancelsEverything) {
  SmallGrid g(3, testbed::CostModel::fast(),
              app::StartupProfile{.init_delay = 10 * sim::kSecond});
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  req->add_rsl(g.rsl(4, "interactive"));
  req->start();
  g.grid->engine().schedule_at(2 * sim::kSecond,
                               [&] { req->abort("operator abort"); });
  g.grid->run();
  EXPECT_FALSE(outcome.released);
  EXPECT_TRUE(outcome.terminal);
  EXPECT_EQ(req->state(), RequestState::kAborted);
  EXPECT_EQ(g.stats.releases, 0);
  // The simulation quiesces quickly: no runaway retries.
  EXPECT_LT(g.grid->engine().now(), sim::kMinute);
}

TEST(CoallocationEdge, DoubleCommitRejected) {
  SmallGrid g(1);
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  req->add_rsl(g.rsl(2, "required"));
  ASSERT_TRUE(req->commit().is_ok());
  EXPECT_EQ(req->commit().code(), util::ErrorCode::kFailedPrecondition);
  g.grid->run();
  EXPECT_TRUE(outcome.released);
}

TEST(CoallocationEdge, AbortAfterTerminalIsIdempotent) {
  SmallGrid g(1);
  Outcome outcome;
  int terminal_count = 0;
  auto cbs = outcome.callbacks();
  auto chained = cbs.on_terminal;
  cbs.on_terminal = [&, chained](const util::Status& s) {
    ++terminal_count;
    chained(s);
  };
  auto* req = g.coallocator->create_request(cbs);
  req->add_rsl(g.rsl(2, "required"));
  req->commit();
  g.grid->run();
  EXPECT_TRUE(outcome.status.is_ok());
  req->abort("too late");
  req->kill();
  g.grid->run();
  EXPECT_EQ(terminal_count, 1);
  EXPECT_EQ(req->state(), RequestState::kDone);
}

TEST(CoallocationEdge, SerializeUntilCheckinOrdersSubjobsStrictly) {
  SmallGrid g(3, testbed::CostModel::fast(),
              app::StartupProfile{.init_delay = sim::kSecond});
  core::RequestConfig config;
  config.serialize_until_checkin = true;
  std::vector<std::pair<core::SubjobHandle, core::SubjobState>> events;
  Outcome outcome;
  auto cbs = outcome.callbacks();
  cbs.on_subjob = [&](core::SubjobHandle h, SubjobState s,
                      const util::Status&) { events.emplace_back(h, s); };
  auto* req = g.coallocator->create_request(cbs, config);
  req->add_rsl(g.rsl(2, "required"));
  req->commit();
  g.grid->run();
  ASSERT_TRUE(outcome.released);
  // Subjob i+1 must not start submitting before subjob i checked in.
  std::vector<core::SubjobHandle> submit_order, checkin_order;
  for (const auto& [h, s] : events) {
    if (s == SubjobState::kSubmitting) submit_order.push_back(h);
    if (s == SubjobState::kCheckedIn) checkin_order.push_back(h);
  }
  ASSERT_EQ(submit_order.size(), 3u);
  ASSERT_EQ(checkin_order.size(), 3u);
  for (std::size_t i = 0; i + 1 < submit_order.size(); ++i) {
    // find positions in the flat event list
    auto pos = [&](core::SubjobHandle h, SubjobState s) {
      for (std::size_t k = 0; k < events.size(); ++k) {
        if (events[k].first == h && events[k].second == s) return k;
      }
      return events.size();
    };
    EXPECT_LT(pos(submit_order[i], SubjobState::kCheckedIn),
              pos(submit_order[i + 1], SubjobState::kSubmitting));
  }
}

TEST(CoallocationEdge, LivenessProbeDetectsDeadHostEarly) {
  // Without probing, a host that dies after accepting the job is only
  // detected at the startup deadline (30 min here).  With probing every
  // 10 s, the failure surfaces within ~half a minute.
  SmallGrid g(2, testbed::CostModel::fast(),
              app::StartupProfile{.init_delay = 10 * sim::kMinute});
  core::RequestConfig config;
  config.startup_timeout = 30 * sim::kMinute;
  config.rpc_timeout = 5 * sim::kSecond;
  config.liveness_probe_interval = 10 * sim::kSecond;
  config.liveness_failures_allowed = 2;
  Outcome outcome;
  util::Status failure;
  auto cbs = outcome.callbacks();
  cbs.on_subjob = [&](core::SubjobHandle, SubjobState s,
                      const util::Status& why) {
    // Record only the root-cause failure; the abort marks the rest.
    if (s == SubjobState::kFailed && failure.is_ok()) failure = why;
  };
  auto* req = g.coallocator->create_request(cbs, config);
  req->add_rsl(g.rsl(4, "required"));
  req->commit();
  // host2 dies while its application initializes.
  g.grid->engine().schedule_at(5 * sim::kSecond,
                               [&] { g.grid->host("host2")->crash(); });
  g.grid->run();
  EXPECT_FALSE(outcome.released);
  EXPECT_EQ(outcome.status.code(), util::ErrorCode::kAborted);
  EXPECT_EQ(failure.code(), util::ErrorCode::kUnavailable);
  // Detected by probing in well under a minute, not at the 30 min deadline.
  EXPECT_LT(g.grid->engine().now(), sim::kMinute);
}

TEST(CoallocationEdge, LivenessProbeToleratesTransientLoss) {
  // A short network outage must not kill the subjob if probes recover
  // within the allowed failure budget.
  SmallGrid g(1, testbed::CostModel::fast(),
              app::StartupProfile{.init_delay = 2 * sim::kMinute});
  core::RequestConfig config;
  config.startup_timeout = 30 * sim::kMinute;
  config.rpc_timeout = 2 * sim::kSecond;
  config.liveness_probe_interval = 10 * sim::kSecond;
  config.liveness_failures_allowed = 3;
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks(), config);
  req->add_rsl(g.rsl(4, "required"));
  req->commit();
  // One probe window of total loss (~12 s): at most 1-2 misses, then
  // recovery.
  app::FailureInjector chaos(g.grid->network());
  chaos.lossy_window(1.0, 20 * sim::kSecond, 32 * sim::kSecond);
  g.grid->run();
  EXPECT_TRUE(outcome.released);
  EXPECT_TRUE(outcome.status.is_ok());
}

TEST(CoallocationEdge, DestroyRequestMidFlightIsSafe) {
  SmallGrid g(2, testbed::CostModel::fast(),
              app::StartupProfile{.init_delay = 10 * sim::kSecond});
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  req->add_rsl(g.rsl(4, "required"));
  req->commit();
  const core::RequestId id = req->id();
  g.grid->engine().schedule_at(2 * sim::kSecond, [&, id] {
    g.coallocator->destroy_request(id);
  });
  g.grid->run();  // must not crash; late messages are dropped/aborted
  EXPECT_EQ(g.coallocator->request_count(), 0u);
  EXPECT_FALSE(outcome.released);
}

TEST(CoallocationEdge, RemovingLastLiveSubjobThenCommitAborts) {
  SmallGrid g(1);
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  auto handle =
      req->add_subjob(make_job("host1", 2, SubjobStartType::kInteractive));
  ASSERT_TRUE(handle.is_ok());
  ASSERT_TRUE(req->remove_subjob(handle.value()).is_ok());
  ASSERT_TRUE(req->commit().is_ok());  // request non-empty but nothing live
  g.grid->run();
  EXPECT_FALSE(outcome.released);
  EXPECT_EQ(outcome.status.code(), util::ErrorCode::kAborted);
}

TEST(CoallocationEdge, TotalsTrackEdits) {
  SmallGrid g(3);
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  auto a = req->add_subjob(make_job("host1", 4, SubjobStartType::kRequired));
  auto b =
      req->add_subjob(make_job("host2", 8, SubjobStartType::kInteractive));
  EXPECT_EQ(req->live_subjob_count(), 2u);
  EXPECT_EQ(req->total_live_processes(), 12);
  req->remove_subjob(b.value());
  EXPECT_EQ(req->live_subjob_count(), 1u);
  EXPECT_EQ(req->total_live_processes(), 4);
  req->substitute_subjob(a.value(),
                         make_job("host3", 6, SubjobStartType::kRequired));
  EXPECT_EQ(req->total_live_processes(), 6);
}

TEST(CoallocationEdge, RequestsAreIsolated) {
  // An abort of one request must not disturb another sharing the
  // co-allocator, even against the same hosts.
  SmallGrid g(2, testbed::CostModel::fast(),
              app::StartupProfile{.init_delay = 2 * sim::kSecond});
  Outcome a, b;
  auto* ra = g.coallocator->create_request(a.callbacks());
  auto* rb = g.coallocator->create_request(b.callbacks());
  ra->add_rsl(g.rsl(4, "required"));
  rb->add_rsl(g.rsl(4, "required"));
  ra->commit();
  rb->commit();
  g.grid->engine().schedule_at(sim::kSecond, [&] { ra->abort("stop A"); });
  g.grid->run();
  EXPECT_FALSE(a.released);
  EXPECT_TRUE(b.released);
  EXPECT_TRUE(b.status.is_ok());
}

TEST(CoallocationEdge, OneProcessSubjobAndWideSubjobCoexist) {
  SmallGrid g(2);
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  req->add_subjob(make_job("host1", 1, SubjobStartType::kRequired));
  req->add_subjob(make_job("host2", 64, SubjobStartType::kRequired));
  req->commit();
  g.grid->run();
  ASSERT_TRUE(outcome.released);
  EXPECT_EQ(outcome.config.total_processes, 65);
  EXPECT_EQ(outcome.config.subjobs[0].size, 1);
  EXPECT_EQ(outcome.config.subjobs[1].rank_base, 1);
}

}  // namespace
}  // namespace grid
