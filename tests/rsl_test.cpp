// Unit tests for the RSL language: lexer, parser, printer, typed
// attributes, editor, and variable substitution.
#include <gtest/gtest.h>

#include "rsl/attributes.hpp"
#include "rsl/editor.hpp"
#include "rsl/lexer.hpp"
#include "rsl/parser.hpp"
#include "simkit/rng.hpp"

namespace grid::rsl {
namespace {

// ---- lexer -----------------------------------------------------------------

TEST(Lexer, StructuralTokens) {
  auto toks = tokenize("+&|()=!=<<=>>=");
  ASSERT_EQ(toks.size(), 12u);
  EXPECT_EQ(toks[0].kind, TokenKind::kPlus);
  EXPECT_EQ(toks[1].kind, TokenKind::kAmp);
  EXPECT_EQ(toks[2].kind, TokenKind::kPipe);
  EXPECT_EQ(toks[3].kind, TokenKind::kLParen);
  EXPECT_EQ(toks[4].kind, TokenKind::kRParen);
  EXPECT_EQ(toks[5].kind, TokenKind::kEq);
  EXPECT_EQ(toks[6].kind, TokenKind::kNe);
  EXPECT_EQ(toks[7].kind, TokenKind::kLt);
  EXPECT_EQ(toks[8].kind, TokenKind::kLe);
  EXPECT_EQ(toks[9].kind, TokenKind::kGt);
  EXPECT_EQ(toks[10].kind, TokenKind::kGe);
  EXPECT_EQ(toks[11].kind, TokenKind::kEnd);
}

TEST(Lexer, UnquotedLiteral) {
  auto toks = tokenize("executable a.out-v2/bin_x");
  EXPECT_EQ(toks[0].text, "executable");
  EXPECT_EQ(toks[1].text, "a.out-v2/bin_x");
}

TEST(Lexer, QuotedLiteralsWithEscapes) {
  auto toks = tokenize(R"("hello world" 'sq' "with ""inner"" quotes")");
  EXPECT_EQ(toks[0].text, "hello world");
  EXPECT_TRUE(toks[0].quoted);
  EXPECT_EQ(toks[1].text, "sq");
  EXPECT_EQ(toks[2].text, R"(with "inner" quotes)");
}

TEST(Lexer, QuotedPreservesSpecialCharacters) {
  auto toks = tokenize("\"(a=b)&(c)\"");
  EXPECT_EQ(toks[0].kind, TokenKind::kLiteral);
  EXPECT_EQ(toks[0].text, "(a=b)&(c)");
}

TEST(Lexer, VariableReference) {
  auto toks = tokenize("$(HOME)");
  EXPECT_EQ(toks[0].kind, TokenKind::kVariable);
  EXPECT_EQ(toks[0].text, "HOME");
}

TEST(Lexer, Comments) {
  auto toks = tokenize("a (* this is (nested-ish) ignored *) b");
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, ErrorsAreReported) {
  EXPECT_EQ(tokenize("\"unterminated")[0].kind, TokenKind::kError);
  EXPECT_EQ(tokenize("$(noclose")[0].kind, TokenKind::kError);
  EXPECT_EQ(tokenize("$x")[0].kind, TokenKind::kError);
  EXPECT_EQ(tokenize("!x")[0].kind, TokenKind::kError);
  EXPECT_EQ(tokenize("(* unterminated")[0].kind, TokenKind::kError);
  EXPECT_EQ(tokenize("$()")[0].kind, TokenKind::kError);
}

TEST(Lexer, OffsetsPointIntoSource) {
  auto toks = tokenize("  abc  def");
  EXPECT_EQ(toks[0].offset, 2u);
  EXPECT_EQ(toks[1].offset, 7u);
}

// ---- parser ----------------------------------------------------------------

TEST(Parser, PaperFigure1Example) {
  const char* rsl =
      "+(&(resourceManagerContact=RM1)"
      "(count=1)(executable=master)"
      "(subjobStartType=required))"
      "(&(resourceManagerContact=RM2)"
      "(count=4)(executable=worker)"
      "(subjobStartType=interactive))";
  auto result = parse(rsl);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const Spec& spec = result.value();
  ASSERT_TRUE(spec.is_multi());
  ASSERT_EQ(spec.children().size(), 2u);
  const Spec& master = spec.children()[0];
  ASSERT_TRUE(master.is_conj());
  const Relation* contact = master.find_relation("resourceManagerContact");
  ASSERT_NE(contact, nullptr);
  EXPECT_EQ(contact->single_value()->text(), "RM1");
  const Relation* count = master.find_relation("count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->single_value()->as_int(), 1);
}

TEST(Parser, ImplicitConjunction) {
  auto result = parse("(executable=a.out)(count=2)");
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result.value().is_conj());
  EXPECT_EQ(result.value().children().size(), 2u);
}

TEST(Parser, Disjunction) {
  auto result = parse("|(&(count=1))(&(count=2))");
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result.value().is_disj());
}

TEST(Parser, NestedCombinators) {
  auto result = parse("+(&(a=1)(|(&(b=2))(&(b=3))))");
  ASSERT_TRUE(result.is_ok());
  const Spec& conj = result.value().children()[0];
  ASSERT_EQ(conj.children().size(), 2u);
  EXPECT_TRUE(conj.children()[1].is_disj());
}

TEST(Parser, RelationOperators) {
  auto result = parse("(&(count>=4)(memory<1024)(arch!=ia64))");
  ASSERT_TRUE(result.is_ok());
  const Spec& conj = result.value().children()[0];
  EXPECT_EQ(conj.children()[0].relation().op, Op::kGe);
  EXPECT_EQ(conj.children()[1].relation().op, Op::kLt);
  EXPECT_EQ(conj.children()[2].relation().op, Op::kNe);
}

TEST(Parser, ValueSequencesAndLists) {
  auto result = parse("(&(arguments=a b c)(environment=(X 1)(Y 2)))");
  ASSERT_TRUE(result.is_ok());
  const Spec& conj = result.value().children()[0];
  EXPECT_EQ(conj.children()[0].relation().values.size(), 3u);
  const Relation& env = conj.children()[1].relation();
  ASSERT_EQ(env.values.size(), 2u);
  EXPECT_TRUE(env.values[0].is_list());
  EXPECT_EQ(env.values[0].items()[0].text(), "X");
}

TEST(Parser, AttributeNamesAreCanonicalized) {
  auto result = parse("(&(Resource_Manager_Contact=rm))");
  ASSERT_TRUE(result.is_ok());
  EXPECT_NE(result.value().children()[0].find_relation(
                "resourcemanagercontact"),
            nullptr);
}

TEST(Parser, RejectsMalformedInput) {
  EXPECT_FALSE(parse("").is_ok());
  EXPECT_FALSE(parse("+").is_ok());
  EXPECT_FALSE(parse("(&(count=))").is_ok());       // missing value
  EXPECT_FALSE(parse("(&(count 4))").is_ok());      // missing operator
  EXPECT_FALSE(parse("(&(count=4)").is_ok());       // unbalanced paren
  EXPECT_FALSE(parse("(&(count=4)))").is_ok());     // trailing input
  EXPECT_FALSE(parse("(&(=4))").is_ok());           // missing attribute
  EXPECT_FALSE(parse("xyz").is_ok());               // bare literal
}

TEST(Parser, ErrorsIncludeOffset) {
  auto result = parse("(&(count=4)");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("offset"), std::string::npos);
}

TEST(Parser, MultiRequestHelperEnforcesPlus) {
  EXPECT_TRUE(parse_multi_request("+(&(a=1))").is_ok());
  EXPECT_FALSE(parse_multi_request("&(a=1)").is_ok());
}

// ---- printer round trips ------------------------------------------------------

TEST(Printer, RoundTripsCanonicalForm) {
  const char* inputs[] = {
      "+(&(a=1))(&(b=2))",
      "(&(executable=\"my app\")(arguments=x y z))",
      "|(&(count=1))(&(count=2))",
      "(&(environment=(A 1)(B 2)))",
      "(&(path=\"with \"\"quotes\"\" inside\"))",
  };
  for (const char* in : inputs) {
    auto first = parse(in);
    ASSERT_TRUE(first.is_ok()) << in;
    const std::string printed = first.value().to_string();
    auto second = parse(printed);
    ASSERT_TRUE(second.is_ok()) << printed;
    EXPECT_EQ(first.value(), second.value()) << printed;
  }
}

// Property: a randomly generated spec survives print -> parse unchanged.
class PrintParseProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Value random_value(sim::Rng& rng, int depth) {
    const auto pick = rng.uniform_int(0, depth > 1 ? 2 : 1);
    if (pick == 0) {
      std::string s;
      const auto len = rng.uniform_int(1, 10);
      for (std::int64_t i = 0; i < len; ++i) {
        // Mix of safe and quote-requiring characters.
        static const char alphabet[] =
            "abcXYZ019._-/ ()&=\"'$";
        s += alphabet[rng.uniform_int(0, sizeof(alphabet) - 2)];
      }
      return Value::literal(s);
    }
    if (pick == 1) {
      return Value::variable("V" + std::to_string(rng.uniform_int(0, 9)));
    }
    std::vector<Value> items;
    const auto n = rng.uniform_int(1, 3);
    for (std::int64_t i = 0; i < n; ++i) {
      items.push_back(random_value(rng, depth - 1));
    }
    return Value::list(std::move(items));
  }

  Spec random_spec(sim::Rng& rng, int depth) {
    if (depth <= 0 || rng.chance(0.4)) {
      Relation r;
      r.attribute = "attr" + std::to_string(rng.uniform_int(0, 20));
      r.op = static_cast<Op>(rng.uniform_int(0, 5));
      const auto n = rng.uniform_int(1, 3);
      for (std::int64_t i = 0; i < n; ++i) {
        r.values.push_back(random_value(rng, 2));
      }
      return Spec::relation(std::move(r));
    }
    std::vector<Spec> children;
    const auto n = rng.uniform_int(1, 4);
    for (std::int64_t i = 0; i < n; ++i) {
      children.push_back(random_spec(rng, depth - 1));
    }
    switch (rng.uniform_int(0, 2)) {
      case 0:
        return Spec::multi(std::move(children));
      case 1:
        return Spec::conj(std::move(children));
      default:
        return Spec::disj(std::move(children));
    }
  }
};

TEST_P(PrintParseProperty, RoundTrips) {
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    // Top level must be a combinator or conj of relations for parseability.
    std::vector<Spec> children;
    const auto n = rng.uniform_int(1, 4);
    for (std::int64_t i = 0; i < n; ++i) {
      children.push_back(random_spec(rng, 2));
    }
    const Spec spec = Spec::multi(std::move(children));
    const std::string text = spec.to_string();
    auto reparsed = parse(text);
    ASSERT_TRUE(reparsed.is_ok())
        << text << " -> " << reparsed.status().to_string();
    EXPECT_EQ(spec, reparsed.value()) << text;
    // Pretty printing parses back to the same tree too.
    auto pretty = parse(spec.to_pretty_string());
    ASSERT_TRUE(pretty.is_ok());
    EXPECT_EQ(spec, pretty.value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrintParseProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---- variables -------------------------------------------------------------------

TEST(Variables, SubstitutionReplacesReferences) {
  auto spec = parse("&(executable=$(EXE))(directory=$(DIR))");
  ASSERT_TRUE(spec.is_ok());
  auto out = substitute_variables(spec.value(),
                                  {{"EXE", "a.out"}, {"DIR", "/tmp"}});
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value()
                .children()[0]
                .relation()
                .single_value()
                ->text(),
            "a.out");
}

TEST(Variables, UnboundVariableFails) {
  auto spec = parse("(&(executable=$(MISSING)))");
  ASSERT_TRUE(spec.is_ok());
  auto out = substitute_variables(spec.value(), {});
  EXPECT_FALSE(out.is_ok());
  EXPECT_EQ(out.status().code(), util::ErrorCode::kNotFound);
}

TEST(Variables, SubstitutionDescendsIntoLists) {
  auto spec = parse("&(environment=(HOME $(H)))");
  ASSERT_TRUE(spec.is_ok());
  auto out = substitute_variables(spec.value(), {{"H", "/home/u"}});
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value()
                .children()[0]
                .relation()
                .values[0]
                .items()[1]
                .text(),
            "/home/u");
}

// ---- typed attributes ---------------------------------------------------------------

TEST(Attributes, ExtractsAllKnownFields) {
  auto spec = parse(
      "&(resourceManagerContact=rm1)(count=8)(executable=sim)"
      "(arguments=-v --fast)(environment=(A 1)(B 2))(directory=/work)"
      "(stdout=out.log)(stderr=err.log)(maxWallTime=30)(jobType=mpi)"
      "(subjobStartType=interactive)(label=workers)(customAttr=xyz)");
  ASSERT_TRUE(spec.is_ok());
  auto job = JobRequest::from_spec(spec.value());
  ASSERT_TRUE(job.is_ok()) << job.status().to_string();
  const JobRequest& j = job.value();
  EXPECT_EQ(j.resource_manager_contact, "rm1");
  EXPECT_EQ(j.count, 8);
  EXPECT_EQ(j.executable, "sim");
  EXPECT_EQ(j.arguments, (std::vector<std::string>{"-v", "--fast"}));
  ASSERT_EQ(j.environment.size(), 2u);
  EXPECT_EQ(j.environment[0].first, "A");
  EXPECT_EQ(j.directory, "/work");
  EXPECT_EQ(j.stdout_path, "out.log");
  EXPECT_EQ(j.stderr_path, "err.log");
  EXPECT_EQ(j.max_wall_time, 30 * sim::kMinute);
  EXPECT_EQ(j.job_type, JobType::kMpi);
  EXPECT_EQ(j.start_type, SubjobStartType::kInteractive);
  EXPECT_EQ(j.label, "workers");
  ASSERT_EQ(j.extras.size(), 1u);
  EXPECT_EQ(j.extras[0].attribute, "customattr");
}

TEST(Attributes, DefaultsApplied) {
  auto spec = parse("&(resourceManagerContact=rm)(executable=x)");
  auto job = JobRequest::from_spec(spec.value());
  ASSERT_TRUE(job.is_ok());
  EXPECT_EQ(job.value().count, 1);
  EXPECT_EQ(job.value().start_type, SubjobStartType::kRequired);
  EXPECT_EQ(job.value().job_type, JobType::kMultiple);
}

TEST(Attributes, RejectsMissingRequiredFields) {
  auto no_contact = parse("&(executable=x)");
  EXPECT_FALSE(JobRequest::from_spec(no_contact.value()).is_ok());
  auto no_exe = parse("&(resourceManagerContact=rm)");
  EXPECT_FALSE(JobRequest::from_spec(no_exe.value()).is_ok());
}

TEST(Attributes, RejectsBadValues) {
  const char* bad[] = {
      "&(resourceManagerContact=rm)(executable=x)(count=0)",
      "&(resourceManagerContact=rm)(executable=x)(count=-3)",
      "&(resourceManagerContact=rm)(executable=x)(count=abc)",
      "&(resourceManagerContact=rm)(executable=x)(count>=4)",
      "&(resourceManagerContact=rm)(executable=x)(subjobStartType=maybe)",
      "&(resourceManagerContact=rm)(executable=x)(jobType=weird)",
      "&(resourceManagerContact=rm)(executable=x)(maxWallTime=0)",
      "&(resourceManagerContact=rm)(executable=x)(environment=(A))",
  };
  for (const char* text : bad) {
    auto spec = parse(text);
    ASSERT_TRUE(spec.is_ok()) << text;
    EXPECT_FALSE(JobRequest::from_spec(spec.value()).is_ok()) << text;
  }
}

TEST(Attributes, ToSpecRoundTrips) {
  auto spec = parse(
      "&(resourceManagerContact=rm1)(count=8)(executable=sim)"
      "(arguments=-v)(environment=(A 1))(maxWallTime=30)(jobType=single)"
      "(subjobStartType=optional)(label=w)(extra=1)");
  auto job = JobRequest::from_spec(spec.value());
  ASSERT_TRUE(job.is_ok());
  auto job2 = JobRequest::from_spec(job.value().to_spec());
  ASSERT_TRUE(job2.is_ok());
  EXPECT_EQ(job.value(), job2.value());
}

TEST(Attributes, ParseJobRequestsWalksMultiRequest) {
  auto spec = parse(
      "+(&(resourceManagerContact=a)(executable=x))"
      "(&(resourceManagerContact=b)(executable=y)(count=4))");
  auto jobs = parse_job_requests(spec.value());
  ASSERT_TRUE(jobs.is_ok());
  ASSERT_EQ(jobs.value().size(), 2u);
  EXPECT_EQ(jobs.value()[1].count, 4);
}

TEST(Attributes, StartTypeNamesRoundTrip) {
  for (auto t : {SubjobStartType::kRequired, SubjobStartType::kInteractive,
                 SubjobStartType::kOptional}) {
    auto parsed = parse_start_type(to_string(t));
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed.value(), t);
  }
  EXPECT_TRUE(parse_start_type("REQUIRED").is_ok());  // case-insensitive
}

// ---- editor -----------------------------------------------------------------------

JobRequest make_job(const std::string& contact, const std::string& label = "") {
  JobRequest j;
  j.resource_manager_contact = contact;
  j.executable = "app";
  j.count = 4;
  j.label = label;
  return j;
}

TEST(Editor, AddRemoveSubstitute) {
  RequestEditor ed({make_job("a", "one"), make_job("b", "two")});
  EXPECT_EQ(ed.size(), 2u);
  EXPECT_EQ(ed.total_count(), 8);

  ed.add(make_job("c", "three"));
  EXPECT_EQ(ed.size(), 3u);

  ASSERT_TRUE(ed.remove_labeled("two").is_ok());
  EXPECT_EQ(ed.size(), 2u);
  EXPECT_EQ(ed.find_labeled("two"), ed.size());

  ASSERT_TRUE(ed.substitute(0, make_job("z", "one")).is_ok());
  EXPECT_EQ(ed.subjobs()[0].resource_manager_contact, "z");

  EXPECT_EQ(ed.journal().size(), 3u);
  EXPECT_EQ(ed.journal()[0].kind, EditRecord::Kind::kAdd);
  EXPECT_EQ(ed.journal()[1].kind, EditRecord::Kind::kDelete);
  EXPECT_EQ(ed.journal()[2].kind, EditRecord::Kind::kSubstitute);
}

TEST(Editor, ErrorsOnBadIndices) {
  RequestEditor ed({make_job("a")});
  EXPECT_FALSE(ed.remove(5).is_ok());
  EXPECT_FALSE(ed.substitute(5, make_job("b")).is_ok());
  EXPECT_FALSE(ed.remove_labeled("nope").is_ok());
}

TEST(Editor, FromTextAndBackToSpec) {
  auto ed = RequestEditor::from_text(
      "+(&(resourceManagerContact=a)(executable=x))"
      "(&(resourceManagerContact=b)(executable=y))");
  ASSERT_TRUE(ed.is_ok());
  const std::string out = ed.value().to_string();
  auto reparsed = parse_multi_request(out);
  ASSERT_TRUE(reparsed.is_ok());
  EXPECT_EQ(reparsed.value().children().size(), 2u);
}

TEST(Editor, FromTextRejectsNonMulti) {
  EXPECT_FALSE(RequestEditor::from_text("&(a=1)").is_ok());
}

// ---- spec mutation helpers ------------------------------------------------------------

TEST(Spec, SetAndRemoveRelation) {
  auto spec = parse("&(a=1)(b=2)");
  ASSERT_TRUE(spec.is_ok());
  Spec s = spec.value();
  s.set_relation(Relation::eq("a", std::int64_t{9}));
  EXPECT_EQ(s.find_relation("a")->single_value()->as_int(), 9);
  s.set_relation(Relation::eq("c", std::int64_t{3}));
  EXPECT_NE(s.find_relation("c"), nullptr);
  EXPECT_TRUE(s.remove_relation("b"));
  EXPECT_FALSE(s.remove_relation("b"));
  EXPECT_EQ(s.find_relation("b"), nullptr);
}

}  // namespace
}  // namespace grid::rsl
