// Tests for the extension components: RSL alternatives, the
// AlternativesAgent, the ensemble monitor (§3.4), and co-reservation.
#include <gtest/gtest.h>

#include "core/composite.hpp"
#include "core/monitor.hpp"
#include "core/strategies.hpp"
#include "rsl/alternatives.hpp"
#include "rsl/parser.hpp"
#include "sched/coreservation.hpp"
#include "test_util.hpp"

namespace grid {
namespace {

using core::RequestState;
using core::SubjobState;
using test::Outcome;
using test::SmallGrid;

// ---- RSL alternatives --------------------------------------------------------

TEST(Alternatives, ParsesMixedSlots) {
  auto slots = rsl::parse_with_alternatives(
      "+(|(&(resourceManagerContact=A)(executable=sim))"
      "(&(resourceManagerContact=B)(executable=sim)))"
      "(&(resourceManagerContact=C)(count=2)(executable=master))");
  ASSERT_TRUE(slots.is_ok()) << slots.status().to_string();
  ASSERT_EQ(slots.value().size(), 2u);
  ASSERT_EQ(slots.value()[0].options.size(), 2u);
  EXPECT_EQ(slots.value()[0].options[0].resource_manager_contact, "A");
  EXPECT_EQ(slots.value()[0].options[1].resource_manager_contact, "B");
  ASSERT_EQ(slots.value()[1].options.size(), 1u);
  EXPECT_EQ(slots.value()[1].options[0].count, 2);
}

TEST(Alternatives, RejectsBadShapes) {
  EXPECT_FALSE(rsl::parse_with_alternatives("&(a=1)").is_ok());
  EXPECT_FALSE(
      rsl::parse_with_alternatives("+(|(&(executable=x))))").is_ok());
  // Option missing required attributes.
  EXPECT_FALSE(rsl::parse_with_alternatives(
                   "+(|(&(resourceManagerContact=A))"
                   "(&(resourceManagerContact=B)(executable=x)))")
                   .is_ok());
}

TEST(Alternatives, AgentFallsBackToSecondOption) {
  SmallGrid g(3);
  // host1 is down; the slot's alternative on host2 succeeds.
  g.grid->host("host1")->crash();
  Outcome outcome;
  const std::string rsl = std::string("+") +
      "(|(&(resourceManagerContact=host1)(count=4)(executable=app))" +
      "(&(resourceManagerContact=host2)(count=4)(executable=app)))" +
      "(&(resourceManagerContact=host3)(count=2)(executable=app))";
  auto agent = core::AlternativesAgent::from_rsl(*g.coallocator, rsl,
                                                 outcome.callbacks());
  ASSERT_TRUE(agent.is_ok()) << agent.status().to_string();
  g.grid->run();
  EXPECT_TRUE(outcome.released);
  EXPECT_EQ(agent.value()->fallbacks_used(), 1u);
  EXPECT_EQ(outcome.config.total_processes, 6);
  EXPECT_EQ(outcome.config.subjobs[0].contact, "host2");
  EXPECT_EQ(outcome.config.subjobs[1].contact, "host3");
}

TEST(Alternatives, RequiredSlotSurvivesViaAlternative) {
  // The repaired-in-callback path: a *required* slot's failure does not
  // abort the request when the agent substitutes an alternative during
  // the failure callback.
  SmallGrid g(2);
  g.grid->host("host1")->crash();
  Outcome outcome;
  std::vector<rsl::SubjobAlternatives> slots(1);
  for (const char* host : {"host1", "host2"}) {
    rsl::JobRequest j;
    j.resource_manager_contact = host;
    j.executable = "app";
    j.count = 4;
    j.start_type = rsl::SubjobStartType::kRequired;
    slots[0].options.push_back(std::move(j));
  }
  core::AlternativesAgent agent(*g.coallocator, std::move(slots),
                                outcome.callbacks());
  g.grid->run();
  EXPECT_TRUE(outcome.released);
  EXPECT_EQ(outcome.config.subjobs[0].contact, "host2");
}

TEST(Alternatives, AgentAbortsWhenAllOptionsFail) {
  SmallGrid g(2);
  g.grid->host("host1")->crash();
  g.grid->host("host2")->crash();
  core::RequestConfig config;
  config.rpc_timeout = 5 * sim::kSecond;
  (void)config;
  Outcome outcome;
  std::vector<rsl::SubjobAlternatives> slots(1);
  for (const char* host : {"host1", "host2"}) {
    rsl::JobRequest j;
    j.resource_manager_contact = host;
    j.executable = "app";
    j.count = 4;
    j.start_type = rsl::SubjobStartType::kRequired;
    slots[0].options.push_back(std::move(j));
  }
  core::AlternativesAgent agent(*g.coallocator, std::move(slots),
                                outcome.callbacks());
  g.grid->run();
  EXPECT_FALSE(outcome.released);
  EXPECT_TRUE(outcome.terminal);
  EXPECT_EQ(outcome.status.code(), util::ErrorCode::kAborted);
}

// ---- ensemble monitor ----------------------------------------------------------

TEST(Monitor, ObservesGlobalTransitions) {
  SmallGrid g(2);
  core::EnsembleMonitor monitor;
  Outcome outcome;
  auto* req = g.coallocator->create_request(
      monitor.wrap(outcome.callbacks()));
  monitor.bind(req);
  req->add_rsl(g.rsl(4, "required"));
  req->commit();
  g.grid->run();
  ASSERT_TRUE(outcome.released);
  const auto& h = monitor.history();
  // ALL_PENDING -> ALL_ACTIVE -> RELEASED -> DONE, in order.
  auto find = [&](core::GlobalEvent e) {
    for (std::size_t i = 0; i < h.size(); ++i) {
      if (h[i] == e) return static_cast<std::ptrdiff_t>(i);
    }
    return static_cast<std::ptrdiff_t>(-1);
  };
  EXPECT_GE(find(core::GlobalEvent::kAllPending), 0);
  EXPECT_GT(find(core::GlobalEvent::kAllActive),
            find(core::GlobalEvent::kAllPending));
  EXPECT_GT(find(core::GlobalEvent::kReleased),
            find(core::GlobalEvent::kAllActive));
  EXPECT_GT(find(core::GlobalEvent::kDone),
            find(core::GlobalEvent::kReleased));
  const auto summary = monitor.summary();
  EXPECT_EQ(summary.live_subjobs, 2u);
  EXPECT_EQ(summary.count(SubjobState::kDone), 2u);
  EXPECT_EQ(summary.request_state, RequestState::kDone);
}

TEST(Monitor, ReportsDegradationAfterRelease) {
  SmallGrid g(2, testbed::CostModel::fast(),
              app::StartupProfile{.run_time = sim::kHour});
  core::EnsembleMonitor monitor;
  Outcome outcome;
  auto* req = g.coallocator->create_request(
      monitor.wrap(outcome.callbacks()));
  monitor.bind(req);
  req->add_rsl(g.rsl(4, "required"));
  req->commit();
  g.grid->run_until(sim::kMinute);
  ASSERT_TRUE(outcome.released);
  // Kill one subjob's GRAM job out from under the running ensemble.
  auto view = req->subjob(req->subjobs()[1]);
  ASSERT_TRUE(view.is_ok());
  g.grid->host("host2")->scheduler().cancel(view.value().gram_job);
  g.grid->run_until(2 * sim::kMinute);
  bool degraded = false;
  for (core::GlobalEvent e : monitor.history()) {
    if (e == core::GlobalEvent::kDegraded) degraded = true;
  }
  EXPECT_TRUE(degraded);
  const auto summary = monitor.summary();
  EXPECT_EQ(summary.failures, 1u);
  EXPECT_EQ(summary.live_subjobs, 1u);
}

TEST(Monitor, KillIsTheCollectiveControlOperation) {
  SmallGrid g(2, testbed::CostModel::fast(),
              app::StartupProfile{.run_time = sim::kHour});
  core::EnsembleMonitor monitor;
  Outcome outcome;
  auto* req = g.coallocator->create_request(
      monitor.wrap(outcome.callbacks()));
  monitor.bind(req);
  req->add_rsl(g.rsl(4, "required"));
  req->commit();
  g.grid->run_until(sim::kMinute);
  ASSERT_TRUE(outcome.released);
  monitor.kill();
  g.grid->run();
  EXPECT_EQ(req->state(), RequestState::kAborted);
  EXPECT_FALSE(monitor.history().empty());
  EXPECT_EQ(monitor.history().back(), core::GlobalEvent::kAborted);
}

// ---- hierarchical co-allocation (§3.1) --------------------------------------

TEST(Composite, TwoLevelCommitReleasesChildrenTogether) {
  // Two organizations, each with its own co-allocator identity, gather
  // their halves; the composite releases the union simultaneously.
  SmallGrid g(4, testbed::CostModel::fast(),
              app::StartupProfile{.init_delay = sim::kSecond,
                                  .init_jitter = 4 * sim::kSecond});
  auto org_b = g.grid->make_coallocator("org-b", "/CN=org-b");
  std::vector<core::RuntimeConfig> configs;
  util::Status done(util::ErrorCode::kInternal, "unset");
  core::CompositeAgent composite(
      {.on_released =
           [&](const std::vector<core::RuntimeConfig>& c) { configs = c; },
       .on_terminal = [&](const util::Status& s) { done = s; }});
  auto* child_a = composite.add_child(*g.coallocator);
  auto* child_b = composite.add_child(*org_b);
  child_a->add_rsl(testbed::rsl_multi(
      {testbed::rsl_subjob("host1", 4, "app"),
       testbed::rsl_subjob("host2", 4, "app")}));
  child_b->add_rsl(testbed::rsl_multi(
      {testbed::rsl_subjob("host3", 4, "app"),
       testbed::rsl_subjob("host4", 4, "app")}));
  composite.start();
  g.grid->run();
  ASSERT_TRUE(composite.released());
  ASSERT_EQ(configs.size(), 2u);
  EXPECT_EQ(configs[0].total_processes, 8);
  EXPECT_EQ(configs[1].total_processes, 8);
  EXPECT_TRUE(done.is_ok()) << done.to_string();
  // Simultaneity: both children were released at the same instant.
  EXPECT_EQ(child_a->released_at(), child_b->released_at());
  EXPECT_EQ(g.stats.releases, 16);
}

TEST(Composite, ChildFailureAbortsTheHierarchy) {
  SmallGrid g(3);
  app::install_app(g.grid->executables(), "crasher",
                   app::StartupProfile{.mode = app::FailureMode::kFailedCheck},
                   &g.stats);
  util::Status done;
  core::CompositeAgent composite(
      {.on_released = nullptr,
       .on_terminal = [&](const util::Status& s) { done = s; }});
  auto* healthy = composite.add_child(*g.coallocator);
  auto* doomed = composite.add_child(*g.coallocator);
  healthy->add_rsl(
      testbed::rsl_multi({testbed::rsl_subjob("host1", 4, "app")}));
  doomed->add_rsl(testbed::rsl_multi(
      {testbed::rsl_subjob("host2", 4, "crasher", "required")}));
  composite.start();
  g.grid->run();
  EXPECT_FALSE(composite.released());
  EXPECT_EQ(done.code(), util::ErrorCode::kAborted);
  EXPECT_EQ(healthy->state(), core::RequestState::kAborted);
  EXPECT_EQ(g.stats.releases, 0);  // nothing escaped the two-level barrier
}

TEST(Composite, FastChildWaitsForSlowChild) {
  SmallGrid g(2);
  app::install_app(g.grid->executables(), "slow",
                   app::StartupProfile{.init_delay = sim::kMinute}, &g.stats);
  core::RequestConfig config;
  config.startup_timeout = sim::kHour;
  std::vector<core::RuntimeConfig> configs;
  core::CompositeAgent composite(
      {.on_released =
           [&](const std::vector<core::RuntimeConfig>& c) { configs = c; },
       .on_terminal = nullptr});
  auto* fast = composite.add_child(*g.coallocator, {}, config);
  auto* slow = composite.add_child(*g.coallocator, {}, config);
  fast->add_rsl(testbed::rsl_multi({testbed::rsl_subjob("host1", 2, "app")}));
  slow->add_rsl(testbed::rsl_multi({testbed::rsl_subjob("host2", 2, "slow")}));
  composite.start();
  g.grid->run_until(30 * sim::kSecond);
  // The fast child holds its resources at the barrier, unreleased.
  EXPECT_EQ(fast->state(), core::RequestState::kEditing);
  EXPECT_TRUE(configs.empty());
  g.grid->run();
  EXPECT_EQ(configs.size(), 2u);
  EXPECT_EQ(fast->released_at(), slow->released_at());
}

// ---- co-reservation -------------------------------------------------------------

struct CoResFixture : ::testing::Test {
  sim::Engine engine;
  std::vector<std::unique_ptr<sched::ReservationScheduler>> machines;

  void make_machines(int k, std::int32_t procs = 64) {
    for (int i = 0; i < k; ++i) {
      machines.push_back(
          std::make_unique<sched::ReservationScheduler>(engine, procs));
    }
  }
  std::vector<sched::ReservationScheduler*> pointers() {
    std::vector<sched::ReservationScheduler*> out;
    for (auto& m : machines) out.push_back(m.get());
    return out;
  }
};

TEST_F(CoResFixture, AcquiresCommonWindowOnIdleMachines) {
  make_machines(3);
  sched::CoReservationAgent::Options options;
  options.duration = sim::kHour;
  options.count = 32;
  auto holds = sched::CoReservationAgent::acquire(pointers(), options);
  ASSERT_TRUE(holds.is_ok()) << holds.status().to_string();
  ASSERT_EQ(holds.value().size(), 3u);
  const sim::Time start =
      sched::CoReservationAgent::window_start(holds.value());
  EXPECT_EQ(start, 0);
  for (const auto& h : holds.value()) {
    EXPECT_EQ(h.reservation.start, start);
    EXPECT_EQ(h.reservation.count, 32);
  }
}

TEST_F(CoResFixture, SkipsOverBusyWindows) {
  make_machines(2);
  // Machine 1 is fully reserved for the first two hours.
  ASSERT_TRUE(machines[1]->reserve(0, 2 * sim::kHour, 64).is_ok());
  sched::CoReservationAgent::Options options;
  options.duration = sim::kHour;
  options.count = 32;
  options.step = 30 * sim::kMinute;
  auto holds = sched::CoReservationAgent::acquire(pointers(), options);
  ASSERT_TRUE(holds.is_ok());
  EXPECT_EQ(sched::CoReservationAgent::window_start(holds.value()),
            2 * sim::kHour);
  // The rollback left no stray reservations on machine 0.
  EXPECT_EQ(machines[0]->reservation_count(), 1u);
}

TEST_F(CoResFixture, FailsCleanlyPastHorizon) {
  make_machines(2);
  ASSERT_TRUE(machines[0]->reserve(0, 100 * sim::kHour, 64).is_ok());
  sched::CoReservationAgent::Options options;
  options.duration = sim::kHour;
  options.count = 32;
  options.horizon = 10 * sim::kHour;
  auto holds = sched::CoReservationAgent::acquire(pointers(), options);
  EXPECT_FALSE(holds.is_ok());
  EXPECT_EQ(holds.status().code(), util::ErrorCode::kResourceExhausted);
  // All-or-nothing: the unconstrained machine holds no leftover windows.
  EXPECT_EQ(machines[1]->reservation_count(), 0u);
}

TEST_F(CoResFixture, ReleaseClearsHolds) {
  make_machines(2);
  sched::CoReservationAgent::Options options;
  options.count = 16;
  auto holds = sched::CoReservationAgent::acquire(pointers(), options);
  ASSERT_TRUE(holds.is_ok());
  auto held = holds.take();
  sched::CoReservationAgent::release(held);
  EXPECT_TRUE(held.empty());
  EXPECT_EQ(machines[0]->reservation_count(), 0u);
  EXPECT_EQ(machines[1]->reservation_count(), 0u);
}

TEST_F(CoResFixture, RejectsDegenerateOptions) {
  make_machines(1);
  sched::CoReservationAgent::Options options;
  options.step = 0;
  EXPECT_FALSE(
      sched::CoReservationAgent::acquire(pointers(), options).is_ok());
  EXPECT_FALSE(
      sched::CoReservationAgent::acquire({}, {}).is_ok());
}

}  // namespace
}  // namespace grid
