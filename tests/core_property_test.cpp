// Property tests: co-allocation protocol invariants under randomized
// workloads and failure injection.
//
// Each trial builds a random grid (host count, subjob sizes, start types,
// per-process failure modes, host crashes) and runs a committed DUROC
// request to quiescence, then checks the §3.2 safety properties:
//
//   P1  the request always resolves: RELEASED / DONE / ABORTED, never stuck
//       in COMMITTED once a startup timeout is configured;
//   P2  if the barrier released, every subjob in the configuration was
//       fully checked in, rank bases are contiguous, and every live
//       non-optional subjob is present;
//   P3  if a required subjob failed before release, the request aborted
//       and no process ever escaped the barrier;
//   P4  process accounting is conservative (releases never exceed
//       successful check-ins; every released process belongs to the final
//       configuration);
//   P5  the simulation is deterministic: re-running the same seed gives
//       identical outcomes and virtual end times.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "test_util.hpp"

namespace grid {
namespace {

using core::RequestState;
using core::SubjobState;

struct TrialResult {
  RequestState state = RequestState::kEditing;
  bool released = false;
  util::Status status;
  core::RuntimeConfig config;
  sim::Time end_time = 0;
  std::int64_t releases = 0;
  std::int64_t checkins_ok = 0;
  std::int64_t aborts = 0;
  bool required_failed_pre_release = false;
  std::vector<core::SubjobView> views;
};

TrialResult run_trial(std::uint64_t seed) {
  sim::Rng rng(seed);
  const int hosts = static_cast<int>(rng.uniform_int(2, 6));

  testbed::Grid grid(testbed::CostModel::fast(), seed);
  app::BarrierStats stats;
  for (int i = 1; i <= hosts; ++i) {
    grid.add_host("host" + std::to_string(i), 64);
  }
  // Install one executable per failure mix; processes draw their mode.
  for (int i = 1; i <= hosts; ++i) {
    app::StartupProfile profile;
    profile.init_delay = rng.uniform_time(0, 2 * sim::kSecond);
    profile.init_jitter = rng.uniform_time(0, sim::kSecond);
    profile.run_time = rng.uniform_time(0, 2 * sim::kSecond);
    profile.failure_probability = rng.chance(0.5) ? rng.uniform(0.0, 0.3) : 0;
    profile.mode_on_chance = static_cast<app::FailureMode>(
        rng.uniform_int(1, 3));  // failcheck / crash / hang
    app::install_app(grid.executables(), "app" + std::to_string(i), profile,
                     &stats, seed * 131 + static_cast<std::uint64_t>(i));
  }
  auto coallocator = grid.make_coallocator("agent", "/CN=prop");
  core::RequestConfig config;
  config.startup_timeout = 2 * sim::kMinute;
  config.rpc_timeout = 10 * sim::kSecond;

  TrialResult result;
  core::RequestCallbacks cbs;
  cbs.on_released = [&](const core::RuntimeConfig& c) {
    result.released = true;
    result.config = c;
  };
  cbs.on_terminal = [&](const util::Status& s) { result.status = s; };
  auto* req = coallocator->create_request(cbs, config);

  std::vector<core::SubjobHandle> handles;
  cbs.on_subjob = nullptr;
  const int subjobs = static_cast<int>(rng.uniform_int(1, hosts));
  for (int i = 0; i < subjobs; ++i) {
    rsl::JobRequest j;
    const int host = static_cast<int>(rng.uniform_int(1, hosts));
    j.resource_manager_contact = "host" + std::to_string(host);
    j.executable = "app" + std::to_string(host);
    j.count = static_cast<std::int32_t>(rng.uniform_int(1, 8));
    j.start_type = static_cast<rsl::SubjobStartType>(rng.uniform_int(0, 2));
    auto added = req->add_subjob(std::move(j));
    if (added.is_ok()) handles.push_back(added.value());
  }
  // Occasionally crash a host mid-allocation.
  if (rng.chance(0.3)) {
    const int victim = static_cast<int>(rng.uniform_int(1, hosts));
    const sim::Time at = rng.uniform_time(0, 10 * sim::kSecond);
    grid.engine().schedule_at(at, [&grid, victim] {
      grid.host("host" + std::to_string(victim))->crash();
    });
  }
  req->commit();
  grid.run_until(sim::kHour);  // generous cap; everything resolves earlier

  // Detect "required failed before release".
  for (core::SubjobHandle h : handles) {
    auto view = req->subjob(h);
    if (!view.is_ok()) continue;
    result.views.push_back(view.value());
    if (view.value().start_type == rsl::SubjobStartType::kRequired &&
        view.value().state == SubjobState::kFailed && !result.released) {
      result.required_failed_pre_release = true;
    }
  }
  result.state = req->state();
  result.end_time = grid.engine().now();
  result.releases = stats.releases;
  result.checkins_ok = stats.checkins_ok;
  result.aborts = stats.aborts;
  return result;
}

class CoallocationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoallocationProperty, InvariantsHoldUnderRandomFailures) {
  for (std::uint64_t sub = 0; sub < 8; ++sub) {
    const std::uint64_t seed = GetParam() * 1000 + sub;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const TrialResult r = run_trial(seed);

    // P1: resolution.  Once committed with a startup timeout, the request
    // cannot be stuck waiting on the barrier.
    EXPECT_NE(r.state, RequestState::kEditing);
    EXPECT_NE(r.state, RequestState::kCommitted);

    if (r.released) {
      // P2: configuration integrity.
      std::int32_t expected_base = 0;
      for (const auto& layout : r.config.subjobs) {
        EXPECT_EQ(layout.rank_base, expected_base);
        expected_base += layout.size;
        EXPECT_GT(layout.size, 0);
        EXPECT_NE(layout.leader, net::kInvalidNode);
      }
      EXPECT_EQ(r.config.total_processes, expected_base);
      for (const auto& v : r.views) {
        if (v.start_type == rsl::SubjobStartType::kOptional) continue;
        if (v.state == SubjobState::kFailed ||
            v.state == SubjobState::kDeleted) {
          continue;
        }
        bool in_config = false;
        for (const auto& layout : r.config.subjobs) {
          if (layout.subjob == v.handle) in_config = true;
        }
        EXPECT_TRUE(in_config)
            << "live non-optional subjob missing from configuration";
      }
    } else {
      // P3: atomicity of failure before release.
      EXPECT_EQ(r.releases, 0);
      EXPECT_EQ(r.state, RequestState::kAborted);
    }
    if (r.required_failed_pre_release) {
      EXPECT_EQ(r.state, RequestState::kAborted);
      EXPECT_FALSE(r.released);
    }

    // P4: accounting.
    EXPECT_LE(r.releases, r.checkins_ok);

    // P5: determinism.
    const TrialResult again = run_trial(seed);
    EXPECT_EQ(again.state, r.state);
    EXPECT_EQ(again.released, r.released);
    EXPECT_EQ(again.end_time, r.end_time);
    EXPECT_EQ(again.releases, r.releases);
    EXPECT_EQ(again.checkins_ok, r.checkins_ok);
    EXPECT_EQ(again.config.total_processes, r.config.total_processes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoallocationProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---- GRAB atomicity ------------------------------------------------------------

/// P6 (GRAB): atomic transactions are all-or-nothing.  If the allocation
/// starts, the released configuration contains *every* subjob of the
/// original request at full size; if anything failed, nothing is released
/// and all processes are reaped.
class GrabAtomicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GrabAtomicity, AllOrNothingUnderRandomFailures) {
  for (std::uint64_t sub = 0; sub < 8; ++sub) {
    const std::uint64_t seed = GetParam() * 500 + sub;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    sim::Rng rng(seed);
    const int hosts = static_cast<int>(rng.uniform_int(2, 5));
    testbed::Grid grid(testbed::CostModel::fast(), seed);
    app::BarrierStats stats;
    for (int i = 1; i <= hosts; ++i) {
      grid.add_host("host" + std::to_string(i), 64);
    }
    app::StartupProfile profile;
    profile.init_delay = rng.uniform_time(0, sim::kSecond);
    profile.failure_probability = rng.uniform(0.0, 0.4);
    profile.failure_per_job = true;
    profile.mode_on_chance = static_cast<app::FailureMode>(
        rng.uniform_int(1, 3));
    app::install_app(grid.executables(), "app", profile, &stats, seed * 3);
    auto mech = grid.make_coallocator("grab", "/CN=atomic");
    core::GrabAllocator grab(*mech);
    core::RequestConfig config;
    config.startup_timeout = 2 * sim::kMinute;
    std::vector<rsl::JobRequest> subjobs;
    std::int32_t requested = 0;
    const int n = static_cast<int>(rng.uniform_int(1, hosts));
    for (int i = 0; i < n; ++i) {
      rsl::JobRequest j;
      j.resource_manager_contact =
          "host" + std::to_string(rng.uniform_int(1, hosts));
      j.executable = "app";
      j.count = static_cast<std::int32_t>(rng.uniform_int(1, 8));
      requested += j.count;
      subjobs.push_back(std::move(j));
    }
    bool started = false;
    util::Status done(util::ErrorCode::kInternal, "unset");
    std::int32_t released_processes = -1;
    auto id = grab.allocate(
        std::move(subjobs),
        {.on_started =
             [&](const core::RuntimeConfig& c) {
               started = true;
               released_processes = c.total_processes;
             },
         .on_done = [&](const util::Status& s) { done = s; }},
        config);
    ASSERT_TRUE(id.is_ok());
    grid.run_until(sim::kHour);
    if (started) {
      // All: every requested processor is in the released configuration.
      EXPECT_EQ(released_processes, requested);
      EXPECT_EQ(stats.releases, requested);
    } else {
      // Nothing: the transaction rolled back completely.
      EXPECT_EQ(done.code(), util::ErrorCode::kAborted);
      EXPECT_EQ(stats.releases, 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GrabAtomicity,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace grid
