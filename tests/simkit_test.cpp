// Unit tests for the discrete-event engine, RNG, statistics, codec, and
// status types.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "simkit/bufpool.hpp"
#include "simkit/codec.hpp"
#include "simkit/engine.hpp"
#include "simkit/idmap.hpp"
#include "simkit/inplace_function.hpp"
#include "simkit/rng.hpp"
#include "simkit/stats.hpp"
#include "simkit/status.hpp"
#include "simkit/time.hpp"
#include "simkit/trialpool.hpp"

namespace grid {
namespace {

// ---- engine -----------------------------------------------------------------

TEST(Engine, StartsAtTimeZero) {
  sim::Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, RunsEventsInTimeOrder) {
  sim::Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, SameTimeEventsRunFifo) {
  sim::Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  sim::Engine e;
  sim::Time inner = -1;
  e.schedule_at(100, [&] {
    e.schedule_after(50, [&] { inner = e.now(); });
  });
  e.run();
  EXPECT_EQ(inner, 150);
}

TEST(Engine, SchedulingInThePastClampsToNow) {
  sim::Engine e;
  sim::Time fired = -1;
  e.schedule_at(100, [&] {
    e.schedule_at(10, [&] { fired = e.now(); });
  });
  e.run();
  EXPECT_EQ(fired, 100);
}

TEST(Engine, CancelPreventsExecution) {
  sim::Engine e;
  bool fired = false;
  auto id = e.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelReturnsFalseForFiredEvent) {
  sim::Engine e;
  auto id = e.schedule_at(10, [] {});
  e.run();
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, CancelTwiceReturnsFalse) {
  sim::Engine e;
  auto id = e.schedule_at(10, [] {});
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, DefaultEventIdIsInvalidToCancel) {
  sim::Engine e;
  EXPECT_FALSE(e.cancel(sim::EventId{}));
}

TEST(Engine, RunUntilStopsAtDeadline) {
  sim::Engine e;
  std::vector<sim::Time> fired;
  e.schedule_at(10, [&] { fired.push_back(10); });
  e.schedule_at(20, [&] { fired.push_back(20); });
  e.schedule_at(30, [&] { fired.push_back(30); });
  e.run_until(20);
  EXPECT_EQ(fired, (std::vector<sim::Time>{10, 20}));
  EXPECT_EQ(e.now(), 20);
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  sim::Engine e;
  EXPECT_FALSE(e.step());
  e.schedule_at(1, [] {});
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

TEST(Engine, EventsScheduledDuringRunExecute) {
  sim::Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) e.schedule_after(1, recurse);
  };
  e.schedule_at(0, recurse);
  e.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(e.now(), 4);
}

TEST(Engine, ExecutedCounterCounts) {
  sim::Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_at(i, [] {});
  e.run();
  EXPECT_EQ(e.executed(), 7u);
}

TEST(Engine, PendingExcludesCancelled) {
  sim::Engine e;
  auto a = e.schedule_at(1, [] {});
  e.schedule_at(2, [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.cancel(a);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, CancelFromInsideFiringCallback) {
  // A firing callback may disarm any pending event, including one
  // scheduled for the same instant, and may not disarm itself (it has
  // already fired).
  sim::Engine e;
  bool victim_fired = false;
  sim::EventId self;
  sim::EventId victim = e.schedule_at(10, [&] { victim_fired = true; });
  self = e.schedule_at(5, [&] {
    EXPECT_TRUE(e.cancel(victim));
    EXPECT_FALSE(e.cancel(self));  // the firing event is no longer pending
  });
  e.run();
  EXPECT_FALSE(victim_fired);
  EXPECT_EQ(e.executed(), 1u);
}

TEST(Engine, CancelSameInstantSiblingFromCallback) {
  sim::Engine e;
  std::vector<int> fired;
  sim::EventId second;
  e.schedule_at(5, [&] {
    fired.push_back(1);
    EXPECT_TRUE(e.cancel(second));
  });
  second = e.schedule_at(5, [&] { fired.push_back(2); });
  e.schedule_at(5, [&] { fired.push_back(3); });
  e.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(Engine, ReentrantZeroDelayRunsFifo) {
  // Events scheduled from inside a callback with zero delay land at the
  // same instant and must still run in scheduling order, after any events
  // already queued for that instant.
  sim::Engine e;
  std::vector<int> order;
  e.schedule_at(5, [&] {
    order.push_back(1);
    e.schedule_after(0, [&] {
      order.push_back(3);
      e.schedule_after(0, [&] { order.push_back(5); });
    });
    e.schedule_after(0, [&] { order.push_back(4); });
  });
  e.schedule_at(5, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(e.now(), 5);
}

TEST(Engine, SlabReuseDoesNotResurrectStaleIds) {
  // After an event fires or is cancelled its slab slot is recycled; a held
  // handle to the old occupant must never cancel the new one.
  sim::Engine e;
  auto stale_fired = e.schedule_at(1, [] {});
  auto stale_cancelled = e.schedule_at(2, [] {});
  e.cancel(stale_cancelled);
  e.run();
  // Refill the slab: the freed slots are reused by these events.
  bool a_fired = false, b_fired = false;
  e.schedule_at(10, [&] { a_fired = true; });
  e.schedule_at(11, [&] { b_fired = true; });
  EXPECT_FALSE(e.cancel(stale_fired));
  EXPECT_FALSE(e.cancel(stale_cancelled));
  EXPECT_EQ(e.pending(), 2u);
  e.run();
  EXPECT_TRUE(a_fired);
  EXPECT_TRUE(b_fired);
}

TEST(Engine, SeededShufflePreservesSameTimeFifo) {
  // Adversarial heap exercise: schedule events at a handful of instants in
  // shuffled order, cancel a seeded subset, and assert that per instant
  // the survivors fire exactly in scheduling order.  This is the
  // determinism contract the protocols rely on, under enough churn that a
  // broken sift or stale heap_pos would scramble it.
  sim::Rng rng(0x5eed);
  for (int trial = 0; trial < 20; ++trial) {
    sim::Engine e;
    constexpr int kEvents = 300;
    std::vector<int> arrival(kEvents);
    std::iota(arrival.begin(), arrival.end(), 0);
    // Fisher-Yates with the sim RNG, so the trial is reproducible.
    for (int i = kEvents - 1; i > 0; --i) {
      std::swap(arrival[static_cast<std::size_t>(i)],
                arrival[static_cast<std::size_t>(rng.uniform_int(0, i))]);
    }
    struct Scheduled {
      sim::EventId id;
      sim::Time at;
      int order;  // scheduling order, the FIFO key
      bool cancelled = false;
    };
    std::vector<Scheduled> events;
    std::vector<std::pair<sim::Time, int>> fired;
    for (int order = 0; order < kEvents; ++order) {
      const sim::Time at = arrival[static_cast<std::size_t>(order)] % 7;
      Scheduled s;
      s.at = at;
      s.order = order;
      s.id = e.schedule_at(at, [&fired, &e, order] {
        fired.emplace_back(e.now(), order);
      });
      events.push_back(s);
    }
    for (Scheduled& s : events) {
      if (rng.chance(0.3)) {
        EXPECT_TRUE(e.cancel(s.id));
        s.cancelled = true;
      }
    }
    e.run();
    std::vector<std::pair<sim::Time, int>> expected;
    for (sim::Time at = 0; at < 7; ++at) {
      for (const Scheduled& s : events) {
        if (!s.cancelled && s.at == at) expected.emplace_back(at, s.order);
      }
    }
    EXPECT_EQ(fired, expected) << "trial " << trial;
  }
}

TEST(Engine, TimeNeverEventsAreUnreachable) {
  // The kTimeNever contract: a parked event is pending but never fires,
  // not even via run() or run_until(kTimeNever).
  sim::Engine e;
  bool parked_fired = false;
  bool normal_fired = false;
  auto parked = e.schedule_at(sim::kTimeNever, [&] { parked_fired = true; });
  e.schedule_at(10, [&] { normal_fired = true; });
  e.run();
  EXPECT_TRUE(normal_fired);
  EXPECT_FALSE(parked_fired);
  EXPECT_EQ(e.now(), 10);  // the clock never jumped to the end of time
  EXPECT_EQ(e.pending(), 1u);
  e.run_until(sim::kTimeNever);
  EXPECT_FALSE(parked_fired);
  EXPECT_EQ(e.now(), 10);
  EXPECT_FALSE(e.step());
  // Parked events are still cancellable.
  EXPECT_TRUE(e.cancel(parked));
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, OverflowingDelayParksAtTimeNever) {
  sim::Engine e;
  bool fired = false;
  e.schedule_at(100, [&] {
    e.schedule_after(sim::kTimeNever - 10, [&] { fired = true; });
  });
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.now(), 100);
  EXPECT_EQ(e.pending(), 1u);
}

// ---- inplace function -------------------------------------------------------

TEST(InplaceFunction, SmallCaptureInvokes) {
  int hits = 0;
  sim::InplaceFunction<64> f([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceFunction, DefaultAndNullptrAreEmpty) {
  sim::InplaceFunction<64> f;
  EXPECT_FALSE(static_cast<bool>(f));
  f = [] {};
  EXPECT_TRUE(static_cast<bool>(f));
  f = nullptr;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InplaceFunction, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  sim::InplaceFunction<64> a([counter] { ++*counter; });
  sim::InplaceFunction<64> b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(*counter, 1);
  a = std::move(b);
  a();
  EXPECT_EQ(*counter, 2);
}

TEST(InplaceFunction, LargeCaptureBoxesAndStillWorks) {
  // A capture bigger than the inline buffer takes the boxed path; the
  // destructor must release it exactly once (ASan would flag otherwise).
  struct Big {
    char payload[200] = {0};
    std::shared_ptr<int> counter;
  };
  auto counter = std::make_shared<int>(0);
  Big big;
  big.counter = counter;
  {
    sim::InplaceFunction<64> f([big] { ++*big.counter; });
    static_assert(sizeof(big) > 64);
    f();
    sim::InplaceFunction<64> g(std::move(f));
    g();
  }
  EXPECT_EQ(*counter, 2);
  EXPECT_EQ(counter.use_count(), 2);  // only `counter` and big's copy remain
}

TEST(InplaceFunction, DestroysCaptureWhenCleared) {
  auto token = std::make_shared<int>(7);
  sim::InplaceFunction<64> f([token] {});
  EXPECT_EQ(token.use_count(), 2);
  f = nullptr;
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InplaceFunction, NonVoidSignaturePassesArgsAndReturns) {
  // The RPC ResponseFn uses a non-void() signature; exercise argument
  // forwarding and return values through both the inline and boxed paths.
  sim::InplaceFunction<64, int(int, int)> add([](int a, int b) {
    return a + b;
  });
  EXPECT_EQ(add(2, 3), 5);

  std::string log;
  sim::InplaceFunction<64, void(const std::string&, int)> record(
      [&log](const std::string& s, int n) { log = s + ":" + std::to_string(n); });
  record("x", 7);
  EXPECT_EQ(log, "x:7");

  struct Big {
    char pad[200] = {0};
    int bias = 10;
  };
  sim::InplaceFunction<64, int(int)> boxed([big = Big{}](int v) {
    return v + big.bias;
  });
  EXPECT_EQ(boxed(1), 11);
  sim::InplaceFunction<64, int(int)> moved(std::move(boxed));
  EXPECT_EQ(moved(2), 12);
}

// ---- id map / slab ----------------------------------------------------------

TEST(IdMap, InsertFindErase) {
  sim::IdMap m;
  EXPECT_EQ(m.find(42), sim::IdMap::kNotFound);
  m.insert(42, 7);
  m.insert(1, 0);
  EXPECT_EQ(m.find(42), 7u);
  EXPECT_EQ(m.find(1), 0u);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.erase(42));
  EXPECT_FALSE(m.erase(42));
  EXPECT_EQ(m.find(42), sim::IdMap::kNotFound);
  EXPECT_EQ(m.find(1), 0u);
}

TEST(IdMap, RandomizedChurnMatchesUnorderedMap) {
  // Drive the open-addressed table and a reference std::unordered_map with
  // the same operation stream; they must agree at every step.  The churn
  // (heavy interleaved erases) specifically exercises backward-shift
  // deletion, where an off-by-one corrupts probe runs silently.
  sim::Rng rng(0xc0ffee);
  sim::IdMap m;
  std::unordered_map<std::uint64_t, std::uint32_t> ref;
  std::vector<std::uint64_t> live;
  for (int step = 0; step < 20000; ++step) {
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.5 || live.empty()) {
      // Insert a fresh key.  Mix small sequential-ish ids (the call-id
      // pattern) with sparse ones to create clustered probe runs.
      const std::uint64_t key =
          roll < 0.25
              ? static_cast<std::uint64_t>(rng.uniform_int(1, 4096))
              : (static_cast<std::uint64_t>(rng.uniform_int(1, 0xffffffff))
                     << 16 |
                 1);
      if (ref.contains(key)) continue;
      const auto value = static_cast<std::uint32_t>(step);
      m.insert(key, value);
      ref.emplace(key, value);
      live.push_back(key);
    } else if (roll < 0.85) {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      const std::uint64_t key = live[at];
      EXPECT_TRUE(m.erase(key));
      ref.erase(key);
      live[at] = live.back();
      live.pop_back();
    } else {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      EXPECT_EQ(m.find(live[at]), ref.at(live[at]));
      // A key absent from both sides must be absent from both.
      const std::uint64_t ghost =
          static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30)) << 40;
      if (!ref.contains(ghost)) {
        EXPECT_EQ(m.find(ghost), sim::IdMap::kNotFound);
        EXPECT_FALSE(m.erase(ghost));
      }
    }
    ASSERT_EQ(m.size(), ref.size());
  }
  // Final cross-check: every surviving key maps identically.
  for (const auto& [k, v] : ref) EXPECT_EQ(m.find(k), v);
}

TEST(IdSlab, EmplaceFindEraseRecyclesSlots) {
  sim::IdSlab<std::string> slab;
  slab.emplace(10, "ten");
  slab.emplace(20, "twenty");
  ASSERT_NE(slab.find(10), nullptr);
  EXPECT_EQ(*slab.find(10), "ten");
  EXPECT_EQ(slab.find(30), nullptr);
  EXPECT_TRUE(slab.erase(10));
  EXPECT_FALSE(slab.erase(10));
  EXPECT_EQ(slab.find(10), nullptr);
  // The freed slot is reused; heavy churn must not grow the slab.
  for (std::uint64_t id = 100; id < 1100; ++id) {
    slab.emplace(id, "x");
    EXPECT_TRUE(slab.erase(id));
  }
  EXPECT_EQ(slab.size(), 1u);  // only id 20 left
  int visited = 0;
  slab.for_each([&](std::uint64_t id, const std::string& v) {
    EXPECT_EQ(id, 20u);
    EXPECT_EQ(v, "twenty");
    ++visited;
  });
  EXPECT_EQ(visited, 1);
  slab.clear();
  EXPECT_TRUE(slab.empty());
  EXPECT_EQ(slab.find(20), nullptr);
}

// ---- buffer pool ------------------------------------------------------------

TEST(BufferPool, RecyclesBuffersAndRetainsCapacity) {
  sim::BufferPool pool;
  {
    sim::Payload p = pool.acquire();
    EXPECT_TRUE(p.attached());
    EXPECT_FALSE(p.recycled());
    p.mutable_bytes().assign(512, 0xab);
    EXPECT_EQ(p.size(), 512u);
  }  // handle drops -> buffer back on the free list
  EXPECT_EQ(pool.free_count(), 1u);
  sim::Payload q = pool.acquire();
  EXPECT_TRUE(q.recycled());
  EXPECT_EQ(q.size(), 0u);  // recycled buffers come back empty...
  EXPECT_GE(q.mutable_bytes().capacity(), 512u);  // ...but keep capacity
  EXPECT_EQ(pool.total_buffers(), 1u);
  EXPECT_EQ(pool.stats().acquired, 2u);
  EXPECT_EQ(pool.stats().fresh, 1u);
  EXPECT_EQ(pool.stats().recycled, 1u);
}

TEST(BufferPool, ShareBumpsRefCountAndFreesOnce) {
  sim::BufferPool pool;
  sim::Payload a = pool.acquire();
  a.mutable_bytes() = {1, 2, 3};
  EXPECT_EQ(a.ref_count(), 1u);
  sim::Payload b = a.share();
  sim::Payload c = b.share();
  EXPECT_EQ(a.ref_count(), 3u);
  EXPECT_EQ(b.data(), a.data());  // same storage, no copy
  b.reset();
  c.reset();
  EXPECT_EQ(a.ref_count(), 1u);
  EXPECT_EQ(pool.free_count(), 0u);  // still held by `a`
  a.reset();
  EXPECT_EQ(pool.free_count(), 1u);
}

TEST(BufferPool, AdoptedVectorCountsAsFresh) {
  sim::BufferPool pool;
  util::Bytes v{9, 8, 7};
  sim::Payload p = pool.adopt(std::move(v));
  EXPECT_FALSE(p.recycled());  // storage came from the general allocator
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.data()[0], 9);
  p.reset();
  // The wrapper buffer itself is recyclable even though the vector wasn't.
  sim::Payload q = pool.acquire();
  EXPECT_TRUE(q.recycled());
}

TEST(BufferPool, WriterTakeRoundTripsThroughThePool) {
  // The Writer/pool contract the message path relies on: encode, take(),
  // drop, re-encode — steady state reuses one buffer.
  const std::size_t before = sim::BufferPool::local().stats().fresh;
  for (int i = 0; i < 8; ++i) {
    util::Writer w;
    w.u32(0x12345678);
    w.str("steady");
    sim::Payload p = w.take();
    util::Reader r(p);
    EXPECT_EQ(r.u32(), 0x12345678u);
    EXPECT_EQ(r.str(), "steady");
  }
  const std::size_t after = sim::BufferPool::local().stats().fresh;
  EXPECT_LE(after - before, 1u);  // at most the first iteration allocates
}

// ---- trial pool -------------------------------------------------------------

TEST(TrialPool, ResultsComeBackInIndexOrder) {
  sim::TrialPool pool(4);
  const std::vector<std::uint64_t> out = pool.map<std::uint64_t>(
      100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(TrialPool, MatchesSerialLoopForSeededEngineTrials) {
  // The core promise: a parallel ensemble of isolated engine trials is
  // byte-identical to the serial loop, whatever the worker count.
  auto trial = [](std::size_t i) {
    sim::Engine e;
    sim::Rng rng(0xfeed + i);
    std::uint64_t digest = 0;
    for (int k = 0; k < 200; ++k) {
      const sim::Time at = rng.uniform_time(1, 1000);
      auto id = e.schedule_at(at, [&digest, &e] { digest ^= e.now() * 31; });
      if (rng.chance(0.25)) e.cancel(id);
    }
    e.run();
    return digest ^ e.executed();
  };
  std::vector<std::uint64_t> serial;
  for (std::size_t i = 0; i < 64; ++i) serial.push_back(trial(i));
  for (unsigned workers : {1u, 3u, 8u}) {
    sim::TrialPool pool(workers);
    EXPECT_EQ(pool.workers(), workers);
    EXPECT_EQ(pool.map<std::uint64_t>(64, trial), serial);
  }
}

TEST(TrialPool, ReusableAcrossSweeps) {
  sim::TrialPool pool(2);
  for (int sweep = 0; sweep < 10; ++sweep) {
    const std::vector<int> out =
        pool.map<int>(17, [sweep](std::size_t i) {
          return sweep * 100 + static_cast<int>(i);
        });
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], sweep * 100 + static_cast<int>(i));
    }
  }
}

TEST(TrialPool, PropagatesFirstException) {
  sim::TrialPool pool(2);
  EXPECT_THROW(pool.run_indexed(32,
                                [](std::size_t i) {
                                  if (i == 5) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool survives a failed sweep.
  const std::vector<int> out =
      pool.map<int>(4, [](std::size_t i) { return static_cast<int>(i); });
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
}

// ---- time ---------------------------------------------------------------------

TEST(Time, ConversionRoundTrips) {
  EXPECT_EQ(sim::from_seconds(2.0), 2 * sim::kSecond);
  EXPECT_DOUBLE_EQ(sim::to_seconds(1500 * sim::kMillisecond), 1.5);
  EXPECT_DOUBLE_EQ(sim::to_millis(3 * sim::kMillisecond), 3.0);
}

TEST(Time, FormatPicksUnits) {
  EXPECT_EQ(sim::format_time(2 * sim::kSecond), "2.000s");
  EXPECT_EQ(sim::format_time(3 * sim::kMillisecond), "3.000ms");
  EXPECT_EQ(sim::format_time(5 * sim::kMicrosecond), "5us");
  EXPECT_EQ(sim::format_time(7), "7ns");
  EXPECT_EQ(sim::format_time(sim::kTimeNever), "never");
}

// ---- rng -----------------------------------------------------------------------

TEST(Rng, DeterministicForEqualSeeds) {
  sim::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  sim::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntStaysInRange) {
  sim::Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-3, 11);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 11);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  sim::Rng r(7);
  EXPECT_EQ(r.uniform_int(5, 5), 5);
  EXPECT_EQ(r.uniform_int(9, 2), 9);  // inverted: returns lo
}

TEST(Rng, DoubleInUnitInterval) {
  sim::Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceEdgeCases) {
  sim::Rng r(5);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
  EXPECT_FALSE(r.chance(-0.5));
  EXPECT_TRUE(r.chance(1.5));
}

TEST(Rng, ChanceApproximatesProbability) {
  sim::Rng r(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  sim::Rng r(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  sim::Rng r(17);
  util::Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.1);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(Rng, ForkProducesIndependentStream) {
  sim::Rng a(42);
  sim::Rng child = a.fork();
  sim::Rng b(42);
  b.next_u64();  // same position as `a` after fork
  // The child stream must not replay the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformTimeInRange) {
  sim::Rng r(23);
  for (int i = 0; i < 100; ++i) {
    const sim::Time t = r.uniform_time(10, 20);
    EXPECT_GE(t, 10);
    EXPECT_LE(t, 20);
  }
}

// ---- stats ---------------------------------------------------------------------

TEST(Accumulator, BasicMoments) {
  util::Accumulator a;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(v);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, EmptyIsZero) {
  util::Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(Accumulator, MergeMatchesCombinedStream) {
  util::Accumulator all, left, right;
  sim::Rng r(29);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-5, 5);
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Samples, QuantilesInterpolate) {
  util::Samples s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
}

TEST(Samples, EmptyQuantileIsZero) {
  util::Samples s;
  EXPECT_EQ(s.quantile(0.5), 0.0);
}

TEST(Histogram, BinsAndOverflow) {
  util::Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(0.0);
  h.add(1.9);
  h.add(5.0);
  h.add(10.0);
  h.add(99.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin(0), 2u);  // 0.0 and 1.9
  EXPECT_EQ(h.bin(2), 1u);  // 5.0
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
  EXPECT_FALSE(h.render().empty());
}

// ---- codec -----------------------------------------------------------------------

TEST(Codec, PrimitiveRoundTrip) {
  util::Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i32(-42);
  w.i64(-1234567890123LL);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);
  util::Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123LL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(Codec, StringAndBlobRoundTrip) {
  util::Writer w;
  w.str("hello grid");
  w.str("");
  w.blob({0x01, 0x02, 0x03});
  util::Reader r(w.bytes());
  EXPECT_EQ(r.str(), "hello grid");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.blob(), (util::Bytes{0x01, 0x02, 0x03}));
  EXPECT_TRUE(r.done());
}

TEST(Codec, ReadPastEndMarksBad) {
  util::Writer w;
  w.u8(1);
  util::Reader r(w.bytes());
  r.u8();
  EXPECT_TRUE(r.ok());
  r.u32();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u64(), 0u);  // stays bad, returns zero
}

TEST(Codec, TruncatedStringMarksBad) {
  util::Writer w;
  w.varint(100);  // claims 100 bytes
  w.u8('x');
  util::Reader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Codec, OverlongVarintMarksBad) {
  util::Bytes bad(11, 0xff);
  util::Reader r(bad);
  r.varint();
  EXPECT_FALSE(r.ok());
}

class CodecVarintSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecVarintSweep, RoundTrips) {
  util::Writer w;
  w.varint(GetParam());
  util::Reader r(w.bytes());
  EXPECT_EQ(r.varint(), GetParam());
  EXPECT_TRUE(r.done());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, CodecVarintSweep,
    ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 129ULL, 16383ULL, 16384ULL,
                      (1ULL << 32) - 1, 1ULL << 32, UINT64_MAX - 1,
                      UINT64_MAX));

TEST(Codec, RandomizedMixedRoundTrip) {
  sim::Rng rng(31337);
  for (int trial = 0; trial < 50; ++trial) {
    util::Writer w;
    std::vector<std::uint64_t> vals;
    std::vector<std::string> strs;
    for (int i = 0; i < 20; ++i) {
      const std::uint64_t v = rng.next_u64() >> (rng.uniform_int(0, 63));
      vals.push_back(v);
      w.varint(v);
      std::string s;
      const auto len = rng.uniform_int(0, 40);
      for (std::int64_t k = 0; k < len; ++k) {
        s += static_cast<char>(rng.uniform_int(0, 255));
      }
      strs.push_back(s);
      w.str(s);
    }
    util::Reader r(w.bytes());
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(r.varint(), vals[static_cast<size_t>(i)]);
      EXPECT_EQ(r.str(), strs[static_cast<size_t>(i)]);
    }
    EXPECT_TRUE(r.done());
  }
}

// ---- status -----------------------------------------------------------------------

TEST(Status, OkByDefault) {
  util::Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  util::Status s(util::ErrorCode::kTimeout, "deadline");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), util::ErrorCode::kTimeout);
  EXPECT_EQ(s.to_string(), "TIMEOUT: deadline");
}

TEST(Result, ValueAndError) {
  util::Result<int> ok(7);
  EXPECT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.value(), 7);
  util::Result<int> err(util::ErrorCode::kNotFound, "gone");
  EXPECT_FALSE(err.is_ok());
  EXPECT_EQ(err.status().code(), util::ErrorCode::kNotFound);
}

TEST(Result, TakeMovesValue) {
  util::Result<std::string> r(std::string("payload"));
  const std::string v = r.take();
  EXPECT_EQ(v, "payload");
}


TEST(IdSlab, OperatorIndexFindsOrDefaultConstructs) {
  sim::IdSlab<int> slab;
  slab[7] = 41;          // default-constructs, then assigns
  EXPECT_EQ(slab.size(), 1u);
  slab[7] = 42;          // finds the existing entry: replace, not grow
  EXPECT_EQ(slab.size(), 1u);
  ASSERT_NE(slab.find(7), nullptr);
  EXPECT_EQ(*slab.find(7), 42);
}

TEST(IdSlab, ForEachVisitsSlotOrderNotInsertionOrder) {
  // The determinism contract: iteration order is a pure function of the
  // emplace/erase history.  Erasing id 2 vacates slot 1; the next emplace
  // recycles that slot, so id 4 is visited between 1 and 3.
  sim::IdSlab<int> slab;
  slab.emplace(1, 10);
  slab.emplace(2, 20);
  slab.emplace(3, 30);
  slab.erase(2);
  slab.emplace(4, 40);
  std::vector<std::uint64_t> order;
  slab.for_each([&](std::uint64_t id, int&) { order.push_back(id); });
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 4, 3}));
}

TEST(IdSlab, ConsistentHoldsAcrossRandomChurn) {
  sim::Rng rng(0xc0ffee);
  sim::IdSlab<std::uint64_t> slab;
  std::vector<std::uint64_t> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.chance(0.6)) {
      const std::uint64_t id = rng.uniform_int(1, 1u << 20);
      if (slab.find(id) == nullptr) {
        slab.emplace(id, id * 3);
        live.push_back(id);
      }
    } else {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      slab.erase(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_TRUE(slab.consistent()) << "after step " << step;
    ASSERT_EQ(slab.size(), live.size());
  }
  for (const std::uint64_t id : live) {
    ASSERT_NE(slab.find(id), nullptr);
    EXPECT_EQ(*slab.find(id), id * 3);
  }
}

}  // namespace
}  // namespace grid
