// Property tests for sched::Profile, the time-indexed free-slot structure
// behind the EASY backfill rewrite (DESIGN.md §5.4).
//
// Three families:
//   - structural invariants after every mutation (sorted, coalesced,
//     0 <= free <= capacity), via the always-available invariants_ok();
//   - queries against a naive model that keeps the raw occupancy list and
//     answers by linear scan (free_at, min_free_over, earliest_fit,
//     busy_work_after);
//   - incremental == rebuilt-from-scratch: after any interleaving of
//     reserves and releases, the canonical interval list equals a fresh
//     Profile fed only the surviving occupancies.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sched/profile.hpp"
#include "simkit/rng.hpp"

namespace grid::sched {
namespace {

struct Occupancy {
  sim::Time start = 0;
  sim::Time end = 0;
  std::int32_t count = 0;
};

// The model: raw occupancy list, every query a linear scan.
class NaiveProfile {
 public:
  explicit NaiveProfile(std::int32_t capacity) : capacity_(capacity) {}

  void add(const Occupancy& o) { occ_.push_back(o); }
  void remove(std::size_t index) {
    occ_.erase(occ_.begin() + static_cast<std::ptrdiff_t>(index));
  }
  const std::vector<Occupancy>& occupancies() const { return occ_; }

  std::int32_t free_at(sim::Time t) const {
    std::int32_t busy = 0;
    for (const Occupancy& o : occ_) {
      if (o.start <= t && t < o.end) busy += o.count;
    }
    return capacity_ - busy;
  }

  std::int32_t min_free_over(sim::Time from, sim::Time to) const {
    std::int32_t best = free_at(from);
    for (const Occupancy& o : occ_) {
      for (const sim::Time t : {o.start, o.end}) {
        if (t > from && t < to) best = std::min(best, free_at(t));
      }
    }
    return best;
  }

  sim::Time earliest_fit(sim::Time from, std::int32_t count,
                         sim::Time duration) const {
    std::vector<sim::Time> candidates{from};
    for (const Occupancy& o : occ_) {
      if (o.end > from) candidates.push_back(o.end);  // frees capacity at end
    }
    std::sort(candidates.begin(), candidates.end());
    for (const sim::Time t : candidates) {
      const sim::Time until =
          duration >= sim::kTimeNever - t ? sim::kTimeNever : t + duration;
      const bool fits = duration == 0
                            ? free_at(t) >= count
                            : min_free_over(t, until) >= count;
      if (fits) return t;
    }
    return sim::kTimeNever;
  }

  std::int64_t busy_work_after(sim::Time from) const {
    std::int64_t work = 0;
    for (const Occupancy& o : occ_) {
      const sim::Time s = std::max(from, o.start);
      if (o.end > s) {
        work += static_cast<std::int64_t>(o.count) * (o.end - s);
      }
    }
    return work;
  }

 private:
  std::int32_t capacity_;
  std::vector<Occupancy> occ_;
};

Profile rebuild(std::int32_t capacity, const std::vector<Occupancy>& occ) {
  Profile p(capacity);
  for (const Occupancy& o : occ) p.reserve(o.start, o.end, o.count);
  return p;
}

Occupancy random_occupancy(sim::Rng& rng, std::int32_t headroom) {
  Occupancy o;
  o.start = rng.uniform_time(0, 10000);
  o.end = rng.chance(0.1) ? sim::kTimeNever
                             : o.start + rng.uniform_time(1, 5000);
  o.count = static_cast<std::int32_t>(rng.uniform_int(1, headroom));
  return o;
}

TEST(Profile, FreshProfileIsAllFree) {
  Profile p(64);
  EXPECT_TRUE(p.invariants_ok());
  EXPECT_EQ(p.free_at(0), 64);
  EXPECT_EQ(p.free_at(sim::kTimeNever), 64);
  ASSERT_EQ(p.intervals().size(), 1u);
  const Profile::Fit fit = p.earliest_fit(0, 64);
  EXPECT_EQ(fit.at, 0);
  EXPECT_EQ(fit.free, 64);
}

TEST(Profile, HalfOpenWindowSemantics) {
  Profile p(8);
  p.reserve(10, 20, 3);
  EXPECT_EQ(p.free_at(9), 8);
  EXPECT_EQ(p.free_at(10), 5);
  EXPECT_EQ(p.free_at(19), 5);
  EXPECT_EQ(p.free_at(20), 8);  // released exactly at the end
}

TEST(Profile, NeverIsAnOrdinaryBreakpoint) {
  Profile p(8);
  p.reserve(5, sim::kTimeNever, 8);
  EXPECT_EQ(p.free_at(sim::kTimeNever - 1), 0);
  EXPECT_EQ(p.free_at(sim::kTimeNever), 8);
  // A machine-wide fit waits for the end of time, never fails.
  const Profile::Fit fit = p.earliest_fit(6, 8);
  EXPECT_EQ(fit.at, sim::kTimeNever);
  EXPECT_EQ(fit.free, 8);
}

TEST(Profile, EarliestFitSkipsTooShortGaps) {
  Profile p(4);
  p.reserve(0, 10, 3);    // 1 free until 10
  p.reserve(15, 30, 3);   // gap [10, 15) of full capacity, then 1 free
  // Width 2 for duration 4: [11, 15) just fits inside the gap (half-open
  // windows), but [12, 16) would clip the next occupancy, pushing the fit
  // all the way past it.
  EXPECT_EQ(p.earliest_fit(0, 2, 4).at, 10);
  EXPECT_EQ(p.earliest_fit(11, 2, 4).at, 11);
  EXPECT_EQ(p.earliest_fit(12, 2, 4).at, 30);
  EXPECT_EQ(p.earliest_fit(12, 1, 4).at, 12);
}

TEST(Profile, AdvanceToForgetsOnlyThePast) {
  Profile p(16);
  p.reserve(0, 100, 4);
  p.reserve(50, 200, 8);
  Profile copy = p;
  p.advance_to(120);
  EXPECT_TRUE(p.invariants_ok());
  for (sim::Time t = 120; t <= 220; t += 10) {
    EXPECT_EQ(p.free_at(t), copy.free_at(t)) << "t=" << t;
  }
  EXPECT_LE(p.intervals().size(), copy.intervals().size());
}

TEST(Profile, RandomizedQueriesMatchNaiveModel) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    sim::Rng rng(0x9f0f11eULL + seed * 7919);
    const std::int32_t capacity =
        static_cast<std::int32_t>(rng.uniform_int(1, 128));
    Profile p(capacity);
    NaiveProfile model(capacity);
    for (int step = 0; step < 200; ++step) {
      // Add a new occupancy if it fits everywhere in its window (the
      // Profile contract forbids oversubscription), else drop one.
      Occupancy o = random_occupancy(rng, capacity);
      const bool can_add =
          o.end > o.start && model.min_free_over(o.start, o.end) >= o.count;
      if (can_add && (model.occupancies().empty() || rng.chance(0.7))) {
        p.reserve(o.start, o.end, o.count);
        model.add(o);
      } else if (!model.occupancies().empty()) {
        const std::size_t victim = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(model.occupancies().size()) - 1));
        const Occupancy gone = model.occupancies()[victim];
        p.release(gone.start, gone.end, gone.count);
        model.remove(victim);
      }
      ASSERT_TRUE(p.invariants_ok()) << "seed " << seed << " step " << step;
      // Point queries at random times and at every breakpoint boundary.
      for (int q = 0; q < 8; ++q) {
        const sim::Time t = rng.uniform_time(0, 16000);
        ASSERT_EQ(p.free_at(t), model.free_at(t))
            << "seed " << seed << " step " << step << " t=" << t;
      }
      for (const Profile::Interval& iv : p.intervals()) {
        ASSERT_EQ(iv.free, model.free_at(iv.start));
        if (iv.start > 0) {
          ASSERT_EQ(p.free_at(iv.start - 1), model.free_at(iv.start - 1));
        }
      }
      // Range and fit queries against the linear-scan model.
      const sim::Time from = rng.uniform_time(0, 12000);
      const sim::Time to = from + rng.uniform_time(1, 6000);
      ASSERT_EQ(p.min_free_over(from, to), model.min_free_over(from, to));
      const std::int32_t want =
          static_cast<std::int32_t>(rng.uniform_int(1, capacity));
      const sim::Time dur = rng.chance(0.5) ? 0 : rng.uniform_time(1, 3000);
      ASSERT_EQ(p.earliest_fit(from, want, dur).at,
                model.earliest_fit(from, want, dur))
          << "seed " << seed << " step " << step << " from=" << from
          << " want=" << want << " dur=" << dur;
    }
  }
}

TEST(Profile, IncrementalEqualsRebuildFromScratch) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    sim::Rng rng(0xacc0a1edULL + seed * 104729);
    const std::int32_t capacity =
        static_cast<std::int32_t>(rng.uniform_int(2, 96));
    Profile p(capacity);
    NaiveProfile model(capacity);
    for (int step = 0; step < 300; ++step) {
      Occupancy o = random_occupancy(rng, capacity);
      const bool can_add =
          o.end > o.start && model.min_free_over(o.start, o.end) >= o.count;
      if (can_add && (model.occupancies().empty() || rng.chance(0.6))) {
        p.reserve(o.start, o.end, o.count);
        model.add(o);
      } else if (!model.occupancies().empty()) {
        const std::size_t victim = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(model.occupancies().size()) - 1));
        const Occupancy gone = model.occupancies()[victim];
        p.release(gone.start, gone.end, gone.count);
        model.remove(victim);
      }
      // Canonical form makes this an exact vector comparison: the
      // incremental structure must be indistinguishable from one that
      // only ever saw the surviving occupancies.
      const Profile fresh = rebuild(capacity, model.occupancies());
      ASSERT_EQ(p.intervals(), fresh.intervals())
          << "seed " << seed << " step " << step;
    }
  }
}

TEST(Profile, BusyWorkMatchesNaiveIntegral) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    sim::Rng rng(0xb0a7ULL + seed);
    const std::int32_t capacity = 64;
    Profile p(capacity);
    NaiveProfile model(capacity);
    for (int step = 0; step < 50; ++step) {
      Occupancy o;
      o.start = rng.uniform_time(0, 5000);
      o.end = o.start + rng.uniform_time(1, 4000);  // bounded ends only
      o.count = static_cast<std::int32_t>(rng.uniform_int(1, 8));
      if (model.min_free_over(o.start, o.end) < o.count) continue;
      p.reserve(o.start, o.end, o.count);
      model.add(o);
      const sim::Time from = rng.uniform_time(0, 8000);
      ASSERT_EQ(p.busy_work_after(from, 0), model.busy_work_after(from))
          << "seed " << seed << " step " << step << " from=" << from;
    }
  }
}

TEST(Profile, BusyWorkExcludesNeverEndingOccupancies) {
  Profile p(16);
  p.reserve(0, sim::kTimeNever, 3);  // a job with no usable estimate
  p.reserve(10, 30, 5);
  // exclude_busy = 3 keeps the unbounded occupancy out of the integral.
  EXPECT_EQ(p.busy_work_after(0, 3), 5 * 20);
  EXPECT_EQ(p.busy_work_after(20, 3), 5 * 10);
  EXPECT_EQ(p.busy_work_after(30, 3), 0);
}

}  // namespace
}  // namespace grid::sched
