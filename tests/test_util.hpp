// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "app/behaviors.hpp"
#include "core/duroc.hpp"
#include "core/grab.hpp"
#include "testbed/grid.hpp"

namespace grid::test {

/// A grid with `hosts` fork-scheduled machines named host1..hostN, the
/// fast cost model, and a standard healthy app installed as "app".
struct SmallGrid {
  explicit SmallGrid(int hosts = 3,
                     testbed::CostModel costs = testbed::CostModel::fast(),
                     app::StartupProfile profile = {}) {
    grid = std::make_unique<testbed::Grid>(costs);
    for (int i = 1; i <= hosts; ++i) {
      grid->add_host("host" + std::to_string(i), 64);
    }
    app::install_app(grid->executables(), "app", profile, &stats);
    coallocator = grid->make_coallocator("agent", "/O=Grid/CN=tester");
  }

  std::string rsl(int count_per_host, const std::string& start_type,
                  int hosts_used = -1) const {
    std::vector<std::string> subs;
    const auto n = hosts_used < 0
                       ? static_cast<int>(grid->host_count())
                       : hosts_used;
    for (int i = 1; i <= n; ++i) {
      subs.push_back(testbed::rsl_subjob("host" + std::to_string(i),
                                         count_per_host, "app", start_type));
    }
    return testbed::rsl_multi(subs);
  }

  std::unique_ptr<testbed::Grid> grid;
  app::BarrierStats stats;
  std::unique_ptr<core::Coallocator> coallocator;
};

/// Records the terminal outcome of a request.
struct Outcome {
  bool released = false;
  bool terminal = false;
  util::Status status;
  core::RuntimeConfig config;

  core::RequestCallbacks callbacks() {
    return core::RequestCallbacks{
        .on_subjob = nullptr,
        .on_released =
            [this](const core::RuntimeConfig& c) {
              released = true;
              config = c;
            },
        .on_terminal =
            [this](const util::Status& s) {
              terminal = true;
              status = s;
            },
    };
  }
};

}  // namespace grid::test
