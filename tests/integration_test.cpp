// Integration tests: full-paper scenarios across all modules.
//
//  * the Figure 1 master/worker request with interactive workers;
//  * the §2 scenario: a crashed machine replaced dynamically, then a slow
//    machine dropped, with the computation proceeding at reduced fidelity;
//  * the §4.3 scale experiment: 13 machines, 1386 processes, failures
//    configured around;
//  * forecast-guided resource selection (§2.2);
//  * co-reservation across contended batch machines (§2.2 / §5).
#include <gtest/gtest.h>

#include <numeric>

#include "app/failure.hpp"
#include "core/strategies.hpp"
#include "sched/infoservice.hpp"
#include "sched/predict.hpp"
#include "test_util.hpp"

namespace grid {
namespace {

using core::RequestState;
using core::SubjobState;
using rsl::SubjobStartType;
using test::Outcome;

TEST(Integration, Figure1MasterWorker) {
  // "+(&(resourceManagerContact=RM1)(count=1)(executable=master)
  //    (subjobStartType=required))
  //   (&(resourceManagerContact=RM2)(count=4)(executable=worker)
  //    (subjobStartType=interactive)) ..."
  testbed::Grid grid(testbed::CostModel::fast());
  app::BarrierStats stats;
  for (int i = 1; i <= 5; ++i) grid.add_host("RM" + std::to_string(i), 64);
  app::install_app(grid.executables(), "master", {}, &stats);
  app::install_app(grid.executables(), "worker", {}, &stats);
  // RM4's worker pool is broken (application check fails there).
  app::install_app(grid.executables(), "broken-worker",
                   {.mode = app::FailureMode::kFailedCheck}, &stats);
  auto coallocator = grid.make_coallocator("agent", "/CN=mw");
  std::vector<std::string> subs = {
      testbed::rsl_subjob("RM1", 1, "master", "required"),
      testbed::rsl_subjob("RM2", 4, "worker", "interactive"),
      testbed::rsl_subjob("RM3", 4, "worker", "interactive"),
      testbed::rsl_subjob("RM4", 4, "broken-worker", "interactive"),
      testbed::rsl_subjob("RM5", 4, "worker", "interactive"),
  };
  Outcome outcome;
  // Enough workers = 8; the agent commits once it has them and drops the
  // rest (exactly the Figure 1 narrative).
  core::MinimumCountAgent agent(
      *coallocator,
      {.minimum_processes = 9, .decision_deadline = 10 * sim::kMinute},
      outcome.callbacks());
  ASSERT_TRUE(agent.request().add_rsl(testbed::rsl_multi(subs)).is_ok());
  agent.request().start();
  grid.run();
  ASSERT_TRUE(outcome.released);
  // Master plus at least two healthy worker subjobs; the broken RM4 pool
  // is not in the final configuration.
  EXPECT_GE(outcome.config.total_processes, 9);
  for (const auto& layout : outcome.config.subjobs) {
    EXPECT_NE(layout.contact, "RM4");
  }
  EXPECT_TRUE(outcome.status.is_ok());
}

TEST(Integration, Section2ScenarioReplaceThenDrop) {
  // A 400-processor simulation on five machines.  One machine is down and
  // is replaced dynamically; later another is too slow and is dropped,
  // proceeding with 4/5 of the fidelity.
  testbed::Grid grid(testbed::CostModel::fast());
  app::BarrierStats stats;
  for (int i = 1; i <= 6; ++i) grid.add_host("site" + std::to_string(i), 128);
  app::install_app(grid.executables(), "sim", {}, &stats);
  app::install_app(grid.executables(), "sim-slow",
                   {.init_delay = 30 * sim::kMinute}, &stats);
  grid.host("site3")->crash();  // down before the request arrives

  auto coallocator = grid.make_coallocator("agent", "/CN=sc2");
  core::RequestConfig config;
  config.rpc_timeout = 5 * sim::kSecond;
  config.startup_timeout = 5 * sim::kMinute;

  Outcome outcome;
  core::CoallocationRequest* req = nullptr;
  int replacements = 0;
  core::RequestCallbacks cbs = outcome.callbacks();
  cbs.on_subjob = [&](core::SubjobHandle h, SubjobState s,
                      const util::Status&) {
    if (s != SubjobState::kFailed ||
        req->state() != RequestState::kEditing) {
      return;
    }
    auto view = req->subjob(h);
    if (!view.is_ok()) return;
    if (view.value().contact == "site3" && replacements == 0) {
      // Failure #1: machine down.  Replace it with the dynamically
      // located spare (site6).
      ++replacements;
      auto original = req->subjob_request(h);
      ASSERT_TRUE(original.is_ok());
      rsl::JobRequest r = original.take();
      r.resource_manager_contact = "site6";
      ASSERT_TRUE(req->substitute_subjob(h, std::move(r)).is_ok());
    }
    // Failure #2 (the slow site5, which times out): drop it and proceed
    // with four machines — handled by simply leaving it failed.
  };
  req = coallocator->create_request(cbs, config);
  req->add_subjob([&] {
    rsl::JobRequest j;
    j.resource_manager_contact = "site1";
    j.executable = "sim";
    j.count = 80;
    j.start_type = SubjobStartType::kRequired;
    return j;
  }());
  for (const auto& [site, exe] :
       std::vector<std::pair<std::string, std::string>>{
           {"site2", "sim"}, {"site3", "sim"}, {"site4", "sim"},
           {"site5", "sim-slow"}}) {
    rsl::JobRequest j;
    j.resource_manager_contact = site;
    j.executable = exe;
    j.count = 80;
    j.start_type = SubjobStartType::kInteractive;
    req->add_subjob(std::move(j));
  }
  req->start();
  grid.run_until(20 * sim::kMinute);
  ASSERT_EQ(replacements, 1);
  // After the replacement checked in and the slow site timed out, the
  // agent commits with what it has: 4 x 80 = 320 processors at reduced
  // fidelity (site5 dropped).
  ASSERT_EQ(req->state(), RequestState::kEditing);
  ASSERT_TRUE(req->commit().is_ok());
  grid.run();
  ASSERT_TRUE(outcome.released);
  EXPECT_EQ(outcome.config.total_processes, 320);
  bool has_site6 = false;
  for (const auto& layout : outcome.config.subjobs) {
    EXPECT_NE(layout.contact, "site3");
    EXPECT_NE(layout.contact, "site5");
    if (layout.contact == "site6") has_site6 = true;
  }
  EXPECT_TRUE(has_site6);
}

TEST(Integration, SfExpressScaleRun) {
  // §4.3: "starting a computation on 1386 processors distributed across 13
  // different parallel supercomputers ... there were difficulties starting
  // some components ... DUROC was successfully used to configure around
  // these failures."
  testbed::Grid grid(testbed::CostModel::fast());
  app::BarrierStats stats;
  std::vector<std::int32_t> sizes = {128, 128, 128, 128, 108, 108, 108,
                                     108, 108, 108, 104, 61, 61};
  ASSERT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0), 1386);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    grid.add_host("super" + std::to_string(i + 1), 256);
  }
  grid.add_host("spare", 256);
  app::install_app(grid.executables(), "sf", {}, &stats);
  app::install_app(grid.executables(), "sf-broken",
                   {.mode = app::FailureMode::kCrashBeforeBarrier}, &stats);

  auto coallocator = grid.make_coallocator("agent", "/CN=sf");
  Outcome outcome;
  // super7 has an application failure; the replacement agent substitutes
  // the spare machine (running the healthy binary there).
  core::CoallocationRequest* req = nullptr;
  core::RequestCallbacks cbs = outcome.callbacks();
  bool repaired = false;
  cbs.on_subjob = [&](core::SubjobHandle h, SubjobState s,
                      const util::Status&) {
    if (s == SubjobState::kFailed && !repaired &&
        req->state() == RequestState::kEditing) {
      auto view = req->subjob(h);
      if (view.is_ok() && view.value().contact == "super7") {
        repaired = true;
        auto original = req->subjob_request(h);
        rsl::JobRequest r = original.take();
        r.resource_manager_contact = "spare";
        r.executable = "sf";
        req->substitute_subjob(h, std::move(r));
      }
    }
  };
  core::RequestConfig config;
  config.startup_timeout = 10 * sim::kMinute;
  req = coallocator->create_request(cbs, config);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    rsl::JobRequest j;
    j.resource_manager_contact = "super" + std::to_string(i + 1);
    j.executable = (i + 1 == 7) ? "sf-broken" : "sf";
    j.count = sizes[i];
    j.start_type = SubjobStartType::kInteractive;
    req->add_subjob(std::move(j));
  }
  req->start();
  grid.run_until(10 * sim::kMinute);
  ASSERT_TRUE(repaired);
  ASSERT_TRUE(req->commit().is_ok());
  grid.run();
  ASSERT_TRUE(outcome.released);
  EXPECT_EQ(outcome.config.total_processes, 1386);
  EXPECT_EQ(outcome.config.subjobs.size(), 13u);
  EXPECT_EQ(stats.releases, 1386);
}

TEST(Integration, ForecastGuidedSelectionAvoidsBusyMachine) {
  // §2.2: "the co-allocator may use information published by local
  // managers to select from among alternative candidate resources".
  testbed::Grid grid(testbed::CostModel::fast());
  app::BarrierStats stats;
  grid.add_host("busy", 32, testbed::SchedulerKind::kFcfs);
  grid.add_host("idle", 32, testbed::SchedulerKind::kFcfs);
  app::install_app(grid.executables(), "app", {}, &stats);
  // Pre-load the busy machine with an hour of work.
  sched::JobDescriptor bg;
  bg.id = 0xb6;
  bg.count = 32;
  bg.runtime = sim::kHour;
  bg.estimated_runtime = sim::kHour;
  grid.host("busy")->scheduler().submit(bg, nullptr, nullptr);

  sched::LoadInformationService gis(grid.engine(), 10 * sim::kSecond);
  gis.register_resource("busy", &grid.host("busy")->scheduler());
  gis.register_resource("idle", &grid.host("idle")->scheduler());
  gis.publish_now();
  sched::AggregateWorkPredictor predictor;

  // Broker: pick the candidate with the smaller predicted wait.
  std::string best;
  sim::Time best_wait = sim::kTimeNever;
  for (const std::string& cand : {std::string("busy"), std::string("idle")}) {
    auto snap = gis.query(cand);
    ASSERT_TRUE(snap.is_ok());
    const sim::Time w = predictor.predict(snap.value(), 16);
    if (w < best_wait) {
      best_wait = w;
      best = cand;
    }
  }
  EXPECT_EQ(best, "idle");

  auto coallocator = grid.make_coallocator("agent", "/CN=fc");
  Outcome outcome;
  auto* req = coallocator->create_request(outcome.callbacks());
  req->add_rsl(testbed::rsl_multi(
      {testbed::rsl_subjob(best, 16, "app", "required")}));
  req->commit();
  grid.run_until(sim::kMinute);
  EXPECT_TRUE(outcome.released);  // would still queue behind the hour on "busy"
}

TEST(Integration, CoReservationGuaranteesSimultaneousStart) {
  // §5: co-reservation — obtain windows on two contended machines, then
  // co-allocate into them; both subjobs start exactly at the window.
  testbed::Grid grid(testbed::CostModel::fast());
  app::BarrierStats stats;
  grid.add_host("resA", 32, testbed::SchedulerKind::kReservation);
  grid.add_host("resB", 32, testbed::SchedulerKind::kReservation);
  app::install_app(grid.executables(), "app", {}, &stats);
  auto* schedA = grid.host("resA")->reservation_scheduler();
  auto* schedB = grid.host("resB")->reservation_scheduler();
  ASSERT_NE(schedA, nullptr);
  ASSERT_NE(schedB, nullptr);

  // Background load would otherwise occupy both machines.
  for (int i = 0; i < 4; ++i) {
    sched::JobDescriptor bg;
    bg.id = static_cast<sched::JobId>(0x100 + i);
    bg.count = 32;
    bg.runtime = 30 * sim::kMinute;
    bg.estimated_runtime = 30 * sim::kMinute;
    (i % 2 == 0 ? schedA : schedB)->submit(bg, nullptr, nullptr);
  }
  // Co-reservation: a window on each machine at t = 2h.
  const sim::Time start = 2 * sim::kHour;
  const sim::Time end = start + sim::kHour;
  auto ra = schedA->reserve(start, end, 16);
  auto rb = schedB->reserve(start, end, 16);
  ASSERT_TRUE(ra.is_ok());
  ASSERT_TRUE(rb.is_ok());

  // Submit the co-allocated pieces into the reserved windows.
  std::vector<sim::Time> starts;
  for (auto& [sched, res] :
       std::vector<std::pair<sched::ReservationScheduler*, sched::Reservation>>{
           {schedA, ra.value()}, {schedB, rb.value()}}) {
    sched::JobDescriptor d;
    d.id = res.id + 0x8000;
    d.count = 16;
    d.runtime = 20 * sim::kMinute;
    ASSERT_TRUE(sched
                    ->submit_reserved(d, res.id,
                                      [&](sched::JobId) {
                                        starts.push_back(grid.engine().now());
                                      },
                                      nullptr)
                    .is_ok());
  }
  grid.run();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0], start);
  EXPECT_EQ(starts[1], start);  // simultaneous, guaranteed
}

TEST(Integration, TwoConcurrentRequestsShareOneCoallocator) {
  test::SmallGrid g(4);
  Outcome a, b;
  auto* ra = g.coallocator->create_request(a.callbacks());
  auto* rb = g.coallocator->create_request(b.callbacks());
  ra->add_rsl(testbed::rsl_multi({testbed::rsl_subjob("host1", 4, "app"),
                                  testbed::rsl_subjob("host2", 4, "app")}));
  rb->add_rsl(testbed::rsl_multi({testbed::rsl_subjob("host3", 4, "app"),
                                  testbed::rsl_subjob("host4", 4, "app")}));
  ra->commit();
  rb->commit();
  g.grid->run();
  EXPECT_TRUE(a.released);
  EXPECT_TRUE(b.released);
  EXPECT_TRUE(a.status.is_ok());
  EXPECT_TRUE(b.status.is_ok());
  EXPECT_EQ(g.stats.releases, 16);
}

TEST(Integration, MessageLossDelaysButDoesNotBreakAllocation) {
  test::SmallGrid g(2);
  g.grid->network().set_drop_probability(0.0);
  core::RequestConfig config;
  config.rpc_timeout = 5 * sim::kSecond;
  config.startup_timeout = 10 * sim::kMinute;
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks(), config);
  req->add_rsl(g.rsl(4, "required"));
  // A lossy window during submission: RPCs time out; DUROC treats the
  // affected subjob as failed (required -> abort).  This documents that
  // transport loss surfaces as subjob failure, not a hang.
  app::FailureInjector chaos(g.grid->network());
  chaos.lossy_window(1.0, sim::kMillisecond, 20 * sim::kSecond);
  req->commit();
  g.grid->run();
  EXPECT_TRUE(outcome.terminal);
  EXPECT_FALSE(outcome.released);
  EXPECT_EQ(outcome.status.code(), util::ErrorCode::kAborted);
  EXPECT_LT(g.grid->engine().now(), sim::kHour);
}

}  // namespace
}  // namespace grid
