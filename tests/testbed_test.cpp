// Tests for the testbed assembly layer, reporting, logging, and the app
// behaviour / failure-injection substrate.
#include <gtest/gtest.h>

#include "app/failure.hpp"
#include "rsl/parser.hpp"
#include "simkit/log.hpp"
#include "test_util.hpp"
#include "testbed/report.hpp"
#include "testbed/scale.hpp"

namespace grid {
namespace {

// ---- reporting ----------------------------------------------------------------

TEST(Report, TableAlignsAndRules) {
  testbed::Table t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"much-longer-name", "22.25"});
  const std::string out = t.render();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Numeric cells are right-aligned: the short number is padded left.
  EXPECT_NE(out.find("  1.5"), std::string::npos);
}

TEST(Report, RowsPaddedToHeaderCount) {
  testbed::Table t({"a", "b", "c"});
  t.add_row({"only-one"});
  const std::string out = t.render();
  EXPECT_NE(out.find("only-one"), std::string::npos);
}

TEST(Report, NumFormatting) {
  EXPECT_EQ(testbed::Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(testbed::Table::num(std::int64_t{42}), "42");
}

// ---- logging ------------------------------------------------------------------

TEST(Logger, StampsWithVirtualTimeAndComponent) {
  sim::Engine engine;
  util::Logger logger(engine, "gram/host1");
  logger.set_level(util::LogLevel::kDebug);
  std::vector<std::string> lines;
  logger.set_sink([&](std::string_view line) { lines.emplace_back(line); });
  engine.schedule_at(1500 * sim::kMillisecond, [&] {
    GRID_LOG(logger, kInfo) << "job " << 7 << " started";
  });
  engine.run();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("[1.500s]"), std::string::npos);
  EXPECT_NE(lines[0].find("INFO"), std::string::npos);
  EXPECT_NE(lines[0].find("gram/host1"), std::string::npos);
  EXPECT_NE(lines[0].find("job 7 started"), std::string::npos);
}

TEST(Logger, LevelFiltersBelowThreshold) {
  sim::Engine engine;
  util::Logger logger(engine, "x");
  logger.set_level(util::LogLevel::kWarn);
  int lines = 0;
  logger.set_sink([&](std::string_view) { ++lines; });
  GRID_LOG(logger, kDebug) << "hidden";
  GRID_LOG(logger, kInfo) << "hidden";
  GRID_LOG(logger, kWarn) << "shown";
  GRID_LOG(logger, kError) << "shown";
  EXPECT_EQ(lines, 2);
}

TEST(Logger, ChildExtendsComponent) {
  sim::Engine engine;
  util::Logger parent(engine, "gram");
  parent.set_level(util::LogLevel::kInfo);
  std::string got;
  parent.set_sink([&](std::string_view line) { got = std::string(line); });
  util::Logger child = parent.child("jm42");
  GRID_LOG(child, kInfo) << "x";
  EXPECT_NE(got.find("gram/jm42"), std::string::npos);
}

// ---- testbed grid ----------------------------------------------------------------

TEST(Testbed, HostLookupAndResolver) {
  testbed::Grid grid(testbed::CostModel::fast());
  grid.add_host("alpha", 16);
  grid.add_host("beta", 32, testbed::SchedulerKind::kFcfs);
  EXPECT_EQ(grid.host_count(), 2u);
  EXPECT_NE(grid.host("alpha"), nullptr);
  EXPECT_EQ(grid.host("gamma"), nullptr);
  auto resolver = grid.resolver();
  EXPECT_TRUE(resolver("alpha").is_ok());
  EXPECT_EQ(resolver("gamma").status().code(), util::ErrorCode::kNotFound);
  EXPECT_EQ(grid.host("beta")->scheduler().policy(), "fcfs");
  EXPECT_EQ(grid.host("alpha")->scheduler().policy(), "fork");
  EXPECT_EQ(grid.host("alpha")->scheduler().total_processors(), 16);
}

TEST(Testbed, SchedulerKindsExposeTypedAccessors) {
  testbed::Grid grid(testbed::CostModel::fast());
  grid.add_host("f", 8, testbed::SchedulerKind::kFork);
  grid.add_host("b", 8, testbed::SchedulerKind::kBackfill);
  grid.add_host("r", 8, testbed::SchedulerKind::kReservation);
  EXPECT_EQ(grid.host("f")->batch_scheduler(), nullptr);
  EXPECT_NE(grid.host("b")->batch_scheduler(), nullptr);
  EXPECT_NE(grid.host("r")->reservation_scheduler(), nullptr);
  EXPECT_EQ(grid.host("b")->scheduler().policy(), "easy-backfill");
  EXPECT_EQ(grid.host("r")->scheduler().policy(), "fcfs+reservations");
}

TEST(Testbed, CrashAndRestoreAreObservable) {
  testbed::Grid grid(testbed::CostModel::fast());
  auto& host = grid.add_host("h", 8);
  EXPECT_TRUE(host.is_up());
  host.crash();
  EXPECT_FALSE(host.is_up());
  host.restore();
  EXPECT_TRUE(host.is_up());
}

TEST(Testbed, RslHelpersEmitParseableRequests) {
  const std::string text = testbed::rsl_multi(
      {testbed::rsl_subjob("h1", 4, "exe", "interactive", "workers"),
       testbed::rsl_subjob("h2", 1, "exe")});
  auto spec = rsl::parse_multi_request(text);
  ASSERT_TRUE(spec.is_ok()) << spec.status().to_string();
  auto jobs = rsl::parse_job_requests(spec.value());
  ASSERT_TRUE(jobs.is_ok());
  ASSERT_EQ(jobs.value().size(), 2u);
  EXPECT_EQ(jobs.value()[0].label, "workers");
  EXPECT_EQ(jobs.value()[0].start_type, rsl::SubjobStartType::kInteractive);
  EXPECT_EQ(jobs.value()[1].count, 1);
}

// ---- app behaviours -----------------------------------------------------------------

TEST(AppBehavior, BarrierStatsAggregates) {
  app::BarrierStats stats;
  stats.records.push_back({"h", 1, 0, 10 * sim::kSecond, 14 * sim::kSecond});
  stats.records.push_back({"h", 1, 1, 10 * sim::kSecond, 18 * sim::kSecond});
  stats.records.push_back({"h", 1, 2, -1, -1});  // never released
  auto samples = stats.wait_samples();
  EXPECT_EQ(samples.count(), 2u);
  EXPECT_DOUBLE_EQ(samples.min(), 4.0);
  EXPECT_DOUBLE_EQ(samples.max(), 8.0);
  stats.clear();
  EXPECT_TRUE(stats.records.empty());
}

TEST(AppBehavior, PerJobFailureScopeFailsWholeSubjobOnce) {
  // failure_per_job: only rank 0 draws, so the per-subjob failure rate is
  // exactly p, independent of subjob width.
  int failed_subjobs = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    test::SmallGrid g(1);
    app::StartupProfile profile;
    profile.failure_probability = 0.5;
    profile.failure_per_job = true;
    profile.mode_on_chance = app::FailureMode::kFailedCheck;
    app::install_app(g.grid->executables(), "risky", profile, &g.stats,
                     1000 + static_cast<std::uint64_t>(t));
    test::Outcome outcome;
    auto* req = g.coallocator->create_request(outcome.callbacks());
    rsl::JobRequest j;
    j.resource_manager_contact = "host1";
    j.executable = "risky";
    j.count = 32;  // wide subjob: per-process draws would fail ~always
    req->add_subjob(std::move(j));
    req->commit();
    g.grid->run();
    if (!outcome.released) ++failed_subjobs;
  }
  // ~50% of trials fail; with per-process draws 32-wide subjobs would fail
  // in essentially 100% of trials.
  EXPECT_GT(failed_subjobs, 8);
  EXPECT_LT(failed_subjobs, 32);
}

TEST(AppBehavior, FailureInjectorSchedulesWindows) {
  sim::Engine engine;
  net::Network network(engine);
  struct Sink : net::Node {
    void handle_message(const net::Message&) override { ++received; }
    int received = 0;
  } sink;
  const net::NodeId a = network.attach(&sink, "a");
  const net::NodeId b = network.attach(&sink, "b");
  app::FailureInjector injector(network);
  injector.partition_between(a, b, sim::kSecond, 2 * sim::kSecond);
  injector.crash_at(a, 3 * sim::kSecond);
  injector.restore_at(a, 4 * sim::kSecond);
  EXPECT_EQ(injector.injected_events(), 3u);
  // During the partition window nothing is delivered.
  engine.schedule_at(1500 * sim::kMillisecond,
                     [&] { network.send(a, b, 1, {}); });
  // After the partition lifts, delivery works again.
  engine.schedule_at(2500 * sim::kMillisecond,
                     [&] { network.send(a, b, 1, {}); });
  // While crashed the node cannot receive.
  engine.schedule_at(3500 * sim::kMillisecond,
                     [&] { network.send(b, a, 1, {}); });
  // After restore it can.
  engine.schedule_at(4500 * sim::kMillisecond,
                     [&] { network.send(b, a, 1, {}); });
  engine.run();
  EXPECT_EQ(sink.received, 2);
}

TEST(AppBehavior, InstallAppIsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    test::SmallGrid g(2);
    app::StartupProfile profile;
    profile.init_jitter = sim::kSecond;
    profile.failure_probability = 0.3;
    profile.mode_on_chance = app::FailureMode::kFailedCheck;
    app::install_app(g.grid->executables(), "x", profile, &g.stats, seed);
    test::Outcome outcome;
    auto* req = g.coallocator->create_request(outcome.callbacks());
    req->add_rsl(testbed::rsl_multi({testbed::rsl_subjob("host1", 8, "x"),
                                     testbed::rsl_subjob("host2", 8, "x")}));
    req->commit();
    g.grid->run();
    return std::make_pair(outcome.released, g.grid->engine().now());
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_EQ(run_once(8), run_once(8));
}

// ---- per-host cost scaling ----------------------------------------------------

TEST(HostCostScale, ScaledHostStartsSlower) {
  // Two one-host grids differing only in cost_scale: the scaled host pays
  // proportionally more for GSI + gatekeeper work, so the same atomic
  // request releases strictly later.
  auto release_time = [](double scale) {
    test::SmallGrid g(0);
    testbed::HostSpec spec;
    spec.name = "host1";
    spec.processors = 64;
    spec.cost_scale = scale;
    g.grid->add_host(spec);
    test::Outcome outcome;
    auto* req = g.coallocator->create_request(outcome.callbacks());
    EXPECT_TRUE(
        req->add_rsl(testbed::rsl_multi({testbed::rsl_subjob("host1", 8, "app")}))
            .is_ok());
    req->commit();
    g.grid->run();
    EXPECT_TRUE(outcome.released) << outcome.status.to_string();
    return g.grid->engine().now();
  };
  const sim::Time base = release_time(1.0);
  const sim::Time scaled = release_time(8.0);
  EXPECT_GT(scaled, base);
}

// ---- grid-at-scale scenario ---------------------------------------------------

testbed::ScaleSpec tiny_scale_spec(std::uint64_t seed) {
  testbed::ScaleSpec spec;
  spec.resources = 12;
  spec.seed = seed;
  spec.duration = 10 * sim::kMinute;
  spec.background_jobs_per_day = 40'000.0;  // ~280 jobs in the window
  spec.transactions_per_day = 2'000.0;      // ~14 transactions
  spec.agents = 1;
  spec.broker_candidates = 6;
  spec.min_subjobs = 2;
  spec.max_subjobs = 3;
  spec.publish_interval = 10 * sim::kSecond;
  return spec;
}

TEST(ScaleScenario, SustainsBackgroundAndCoallocationTraffic) {
  testbed::ScaleScenario scenario(tiny_scale_spec(21));
  const testbed::ScaleMetrics m = scenario.run();
  EXPECT_EQ(m.simulated, 10 * sim::kMinute);
  EXPECT_GT(m.background_submitted, 100u);
  EXPECT_GT(m.background_completed, 0u);
  EXPECT_GT(m.txn_attempted, 0u);
  EXPECT_GT(m.txn_placed, 0u);
  EXPECT_GT(m.txn_released, 0u);
  EXPECT_GE(m.gis_queries_served, m.txn_attempted);
  EXPECT_GT(m.info.publish_rounds, 0u);
  EXPECT_GT(m.jobs_total(), m.background_submitted);
}

TEST(ScaleScenario, IsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    testbed::ScaleScenario scenario(tiny_scale_spec(seed));
    return scenario.run();
  };
  const testbed::ScaleMetrics a = run_once(33);
  const testbed::ScaleMetrics b = run_once(33);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.background_submitted, b.background_submitted);
  EXPECT_EQ(a.txn_placed, b.txn_placed);
  EXPECT_EQ(a.txn_released, b.txn_released);
  const testbed::ScaleMetrics c = run_once(34);
  EXPECT_NE(a.fingerprint, c.fingerprint);
}

}  // namespace
}  // namespace grid
