// GRID_CHECKED tripwire tests.
//
// Under the `checked` preset every simkit invariant GRID_CHECK guards is a
// hard abort; these death tests prove each tripwire actually fires on the
// misuse it names — a tripwire that never fires is indistinguishable from
// one that was compiled out.  Under any other preset GRID_CHECK is a
// no-op, so the whole suite reduces to a single skip marker (the binary
// still builds and links everywhere, keeping the checked-only code from
// rotting).
#include <gtest/gtest.h>

#include <utility>

#include "net/network.hpp"
#include "net/rpc.hpp"
#include "sched/profile.hpp"
#include "simkit/bufpool.hpp"
#include "simkit/check.hpp"
#include "simkit/codec.hpp"
#include "simkit/engine.hpp"
#include "simkit/idmap.hpp"

namespace grid {
namespace {

#if defined(GRID_CHECKED)

TEST(CheckedDeathTest, IdMapRejectsReservedZeroKey) {
  sim::IdMap m;
  EXPECT_DEATH(m.insert(0, 1), "key 0 is reserved");
}

TEST(CheckedDeathTest, IdMapRejectsDuplicateInsert) {
  sim::IdMap m;
  m.insert(5, 1);
  EXPECT_DEATH(m.insert(5, 2), "already present");
}

TEST(CheckedDeathTest, IdSlabRejectsZeroId) {
  sim::IdSlab<int> slab;
  EXPECT_DEATH(slab.emplace(0, 1), "ids must be nonzero");
}

TEST(CheckedDeathTest, IdSlabRejectsDuplicateEmplace) {
  sim::IdSlab<int> slab;
  slab.emplace(9, 1);
  EXPECT_DEATH(slab.emplace(9, 2), "already present");
}

TEST(CheckedDeathTest, SharedPayloadIsFrozen) {
  util::Writer w;
  w.u32(1234);
  sim::Payload p = w.take();
  sim::Payload other = p.share();
  // Two live handles: the unique-owner mutation rule must abort.
  EXPECT_DEATH(p.mutable_bytes(), "shared buffer");
}

TEST(CheckedDeathTest, UniquePayloadMayStillMutate) {
  util::Writer w;
  w.u32(1234);
  sim::Payload p = w.take();
  p.mutable_bytes().push_back(0xff);  // sole owner: allowed
  EXPECT_EQ(p.size(), 5u);
}

TEST(CheckedDeathTest, ProfileAbortsOnOversubscription) {
  sched::Profile p(4);
  p.reserve(0, 100, 3);
  // Claiming 2 more where only 1 is free drives free below zero.
  EXPECT_DEATH(p.reserve(50, 150, 2), "oversubscribed");
}

TEST(CheckedDeathTest, ProfileAbortsOnOverRelease) {
  sched::Profile p(4);
  p.reserve(0, 100, 2);
  // Returning more than was claimed would push free past capacity.
  EXPECT_DEATH(p.release(0, 100, 3), "release exceeds capacity");
}

// Positive coverage: a full simulation under GRID_CHECKED runs every
// hot-path audit (engine heap self-check after cancel, slab consistency
// on erase, endpoint teardown drain, profile interval-list audit after
// every scheduler mutation) without tripping any of them.
TEST(CheckedClean, CancelHeavyWorkloadPassesHeapAudit) {
  sim::Engine e;
  std::vector<sim::EventId> ids;
  int fired = 0;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(e.schedule_at((i % 50) * sim::kMillisecond, [&] { ++fired; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    e.cancel(ids[i]);  // each cancel runs the O(n) heap audit
  }
  e.run();
  EXPECT_EQ(fired, 200 - 67);
}

TEST(CheckedClean, EndpointLifecyclePassesTeardownAudit) {
  sim::Engine e;
  net::Network net{e};
  net::Endpoint server{net, "server"};
  server.register_method(
      1, [&](net::NodeId caller, std::uint64_t id, util::Reader&) {
        server.respond(caller, id, {});
      });
  {
    net::Endpoint client{net, "client"};
    for (int i = 0; i < 20; ++i) {
      client.call(server.id(), 1, {}, sim::kSecond,
                  [](const util::Status&, util::Reader&) {});
    }
    e.run_until(sim::kMillisecond);  // leave some calls in flight
  }
  EXPECT_EQ(net::Endpoint::last_teardown_report().leaked_slots, 0u);
  e.run();
}

#else  // !GRID_CHECKED

TEST(CheckedTest, RequiresGridCheckedBuild) {
  GTEST_SKIP() << "GRID_CHECK tripwires compile to no-ops in this build; "
                  "configure with --preset checked to run the death tests.";
}

#endif

}  // namespace
}  // namespace grid
