// Tests for the co-allocation mechanism layer: two-phase commit, barrier,
// subjob categories (required / interactive / optional), edit operations,
// GRAB atomic semantics, agent strategies, and monitoring/control.
#include <gtest/gtest.h>

#include "core/strategies.hpp"
#include "test_util.hpp"

namespace grid {
namespace {

using core::RequestState;
using core::SubjobState;
using rsl::SubjobStartType;
using test::Outcome;
using test::SmallGrid;

rsl::JobRequest make_job(const std::string& contact, std::int32_t count,
                         SubjobStartType type,
                         const std::string& exe = "app") {
  rsl::JobRequest j;
  j.resource_manager_contact = contact;
  j.executable = exe;
  j.count = count;
  j.start_type = type;
  return j;
}

// ---- basic success paths -----------------------------------------------------

TEST(Coallocation, AtomicRequestReleasesAllProcesses) {
  SmallGrid g(3);
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  ASSERT_TRUE(req->add_rsl(g.rsl(8, "required")).is_ok());
  req->start();
  ASSERT_TRUE(req->commit().is_ok());
  g.grid->run();
  EXPECT_TRUE(outcome.released);
  EXPECT_TRUE(outcome.terminal);
  EXPECT_TRUE(outcome.status.is_ok()) << outcome.status.to_string();
  EXPECT_EQ(outcome.config.total_processes, 24);
  EXPECT_EQ(outcome.config.subjobs.size(), 3u);
  EXPECT_EQ(g.stats.releases, 24);
  EXPECT_EQ(g.stats.completions, 24);
  EXPECT_EQ(req->state(), RequestState::kDone);
}

TEST(Coallocation, ConfigurationAssignsContiguousRanks) {
  SmallGrid g(3);
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  req->add_subjob(make_job("host1", 2, SubjobStartType::kRequired));
  req->add_subjob(make_job("host2", 5, SubjobStartType::kRequired));
  req->add_subjob(make_job("host3", 3, SubjobStartType::kRequired));
  req->start();
  req->commit();
  g.grid->run();
  ASSERT_TRUE(outcome.released);
  ASSERT_EQ(outcome.config.subjobs.size(), 3u);
  EXPECT_EQ(outcome.config.subjobs[0].rank_base, 0);
  EXPECT_EQ(outcome.config.subjobs[0].size, 2);
  EXPECT_EQ(outcome.config.subjobs[1].rank_base, 2);
  EXPECT_EQ(outcome.config.subjobs[2].rank_base, 7);
  EXPECT_EQ(outcome.config.total_processes, 10);
  for (const auto& layout : outcome.config.subjobs) {
    EXPECT_NE(layout.leader, net::kInvalidNode);
  }
}

TEST(Coallocation, ReleaseOnlyAfterCommit) {
  SmallGrid g(2);
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  req->add_rsl(g.rsl(4, "required"));
  req->start();
  g.grid->run();  // everything checks in, but no commit was issued
  EXPECT_FALSE(outcome.released);
  EXPECT_EQ(req->state(), RequestState::kEditing);
  ASSERT_TRUE(req->commit().is_ok());
  g.grid->run();
  EXPECT_TRUE(outcome.released);
}

TEST(Coallocation, CommitBeforeCheckinsAlsoWorks) {
  SmallGrid g(2);
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  req->add_rsl(g.rsl(4, "required"));
  ASSERT_TRUE(req->commit().is_ok());  // commit() implies start()
  g.grid->run();
  EXPECT_TRUE(outcome.released);
}

TEST(Coallocation, EmptyRequestCannotCommit) {
  SmallGrid g(1);
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  EXPECT_EQ(req->commit().code(), util::ErrorCode::kFailedPrecondition);
}

TEST(Coallocation, SubjobViewsTrackTimeline) {
  SmallGrid g(1);
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  req->add_rsl(g.rsl(4, "required"));
  req->commit();
  g.grid->run();
  auto handles = req->subjobs();
  ASSERT_EQ(handles.size(), 1u);
  auto view = req->subjob(handles[0]);
  ASSERT_TRUE(view.is_ok());
  const core::SubjobView& v = view.value();
  EXPECT_EQ(v.state, SubjobState::kDone);
  EXPECT_EQ(v.count, 4);
  EXPECT_EQ(v.checked_in, 4);
  EXPECT_LE(v.submitted_at, v.accepted_at);
  EXPECT_LE(v.accepted_at, v.active_at);
  EXPECT_LE(v.active_at, v.checked_in_at);
  EXPECT_LE(v.checked_in_at, v.released_at);
}

// ---- failure semantics by category ---------------------------------------------

TEST(Coallocation, RequiredFailureAbortsEverything) {
  SmallGrid g(3);
  app::install_app(g.grid->executables(), "crasher",
                   app::StartupProfile{.mode = app::FailureMode::kFailedCheck},
                   &g.stats);
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  req->add_subjob(make_job("host1", 4, SubjobStartType::kRequired));
  req->add_subjob(make_job("host2", 4, SubjobStartType::kRequired, "crasher"));
  req->add_subjob(make_job("host3", 4, SubjobStartType::kRequired));
  req->commit();
  g.grid->run();
  EXPECT_FALSE(outcome.released);
  EXPECT_TRUE(outcome.terminal);
  EXPECT_EQ(outcome.status.code(), util::ErrorCode::kAborted);
  EXPECT_EQ(req->state(), RequestState::kAborted);
  // No process escapes the barrier; survivors were told to abort.
  EXPECT_EQ(g.stats.releases, 0);
}

TEST(Coallocation, CrashBeforeBarrierAbortsRequired) {
  SmallGrid g(2);
  app::install_app(
      g.grid->executables(), "crasher",
      app::StartupProfile{.mode = app::FailureMode::kCrashBeforeBarrier},
      &g.stats);
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  req->add_subjob(make_job("host1", 4, SubjobStartType::kRequired));
  req->add_subjob(make_job("host2", 4, SubjobStartType::kRequired, "crasher"));
  req->commit();
  g.grid->run();
  EXPECT_FALSE(outcome.released);
  EXPECT_EQ(outcome.status.code(), util::ErrorCode::kAborted);
}

TEST(Coallocation, HangingSubjobTimesOutAndAborts) {
  SmallGrid g(2);
  app::install_app(g.grid->executables(), "hang",
                   app::StartupProfile{.mode = app::FailureMode::kHang},
                   &g.stats);
  core::RequestConfig config;
  config.startup_timeout = 30 * sim::kSecond;
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks(), config);
  req->add_subjob(make_job("host1", 4, SubjobStartType::kRequired));
  req->add_subjob(make_job("host2", 4, SubjobStartType::kRequired, "hang"));
  req->commit();
  g.grid->run();
  EXPECT_FALSE(outcome.released);
  EXPECT_EQ(outcome.status.code(), util::ErrorCode::kAborted);
  // Aborted promptly after the startup deadline, not hung forever.
  EXPECT_LT(g.grid->engine().now(), sim::kMinute);
}

TEST(Coallocation, OptionalFailureIsIgnored) {
  SmallGrid g(3);
  app::install_app(g.grid->executables(), "crasher",
                   app::StartupProfile{.mode = app::FailureMode::kFailedCheck},
                   &g.stats);
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  req->add_subjob(make_job("host1", 4, SubjobStartType::kRequired));
  req->add_subjob(make_job("host2", 4, SubjobStartType::kOptional, "crasher"));
  req->commit();
  g.grid->run();
  EXPECT_TRUE(outcome.released);
  EXPECT_EQ(outcome.config.total_processes, 4);  // only the required subjob
}

TEST(Coallocation, BarrierDoesNotWaitForOptional) {
  SmallGrid g(2);
  // The optional subjob initializes for 10 minutes; release must not wait.
  app::install_app(g.grid->executables(), "slow",
                   app::StartupProfile{.init_delay = 10 * sim::kMinute},
                   &g.stats);
  core::RequestConfig config;
  config.startup_timeout = sim::kHour;
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks(), config);
  req->add_subjob(make_job("host1", 4, SubjobStartType::kRequired));
  req->add_subjob(make_job("host2", 4, SubjobStartType::kOptional, "slow"));
  req->commit();
  g.grid->run_until(2 * sim::kMinute);
  EXPECT_TRUE(outcome.released);
  EXPECT_EQ(outcome.config.total_processes, 4);
  // The optional subjob joins later, extending the configuration.
  g.grid->run();
  auto handles = req->subjobs();
  auto view = req->subjob(handles[1]);
  ASSERT_TRUE(view.is_ok());
  EXPECT_EQ(req->runtime_config().total_processes, 8);
  EXPECT_EQ(req->runtime_config().subjobs.size(), 2u);
  EXPECT_EQ(req->runtime_config().subjobs[1].rank_base, 4);
}

TEST(Coallocation, InteractiveFailurePreCommitContinues) {
  SmallGrid g(3);
  app::install_app(g.grid->executables(), "crasher",
                   app::StartupProfile{.mode = app::FailureMode::kFailedCheck},
                   &g.stats);
  Outcome outcome;
  core::SubjobHandle failed_handle = 0;
  auto cbs = outcome.callbacks();
  cbs.on_subjob = [&](core::SubjobHandle h, SubjobState s,
                      const util::Status&) {
    if (s == SubjobState::kFailed) failed_handle = h;
  };
  auto* req = g.coallocator->create_request(cbs);
  req->add_subjob(make_job("host1", 4, SubjobStartType::kRequired));
  req->add_subjob(
      make_job("host2", 4, SubjobStartType::kInteractive, "crasher"));
  req->start();
  g.grid->run();
  EXPECT_NE(failed_handle, 0u);
  EXPECT_EQ(req->state(), RequestState::kEditing);  // not aborted
  // Agent decides to go ahead with what's left.
  ASSERT_TRUE(req->commit().is_ok());
  g.grid->run();
  EXPECT_TRUE(outcome.released);
  EXPECT_EQ(outcome.config.total_processes, 4);
}

TEST(Coallocation, InteractiveFailureCanBeSubstituted) {
  SmallGrid g(3);
  app::install_app(g.grid->executables(), "crasher",
                   app::StartupProfile{.mode = app::FailureMode::kFailedCheck},
                   &g.stats);
  Outcome outcome;
  bool substituted = false;
  core::CoallocationRequest* req = nullptr;
  auto cbs = outcome.callbacks();
  cbs.on_subjob = [&](core::SubjobHandle h, SubjobState s,
                      const util::Status&) {
    if (s == SubjobState::kFailed && !substituted) {
      substituted = true;
      // Replace the failed interactive subjob with a healthy one on host3.
      ASSERT_TRUE(
          req->substitute_subjob(h, make_job("host3", 4,
                                             SubjobStartType::kInteractive))
              .is_ok());
    }
  };
  req = g.coallocator->create_request(cbs);
  req->add_subjob(make_job("host1", 4, SubjobStartType::kRequired));
  req->add_subjob(
      make_job("host2", 4, SubjobStartType::kInteractive, "crasher"));
  req->start();
  g.grid->run();
  ASSERT_TRUE(substituted);
  ASSERT_TRUE(req->commit().is_ok());
  g.grid->run();
  EXPECT_TRUE(outcome.released);
  EXPECT_EQ(outcome.config.total_processes, 8);
  EXPECT_EQ(outcome.config.subjobs[1].contact, "host3");
}

TEST(Coallocation, InteractiveFailureAfterCommitAborts) {
  SmallGrid g(2);
  app::install_app(g.grid->executables(), "hang",
                   app::StartupProfile{.mode = app::FailureMode::kHang},
                   &g.stats);
  core::RequestConfig config;
  config.startup_timeout = 30 * sim::kSecond;
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks(), config);
  req->add_subjob(make_job("host1", 4, SubjobStartType::kRequired));
  req->add_subjob(make_job("host2", 4, SubjobStartType::kInteractive, "hang"));
  req->commit();  // commit before the hang is detected
  g.grid->run();
  EXPECT_FALSE(outcome.released);
  EXPECT_EQ(outcome.status.code(), util::ErrorCode::kAborted);
}

TEST(Coallocation, HostCrashMidAllocationIsDetected) {
  SmallGrid g(2, testbed::CostModel::fast(),
              app::StartupProfile{.init_delay = 10 * sim::kSecond});
  core::RequestConfig config;
  config.startup_timeout = 30 * sim::kSecond;
  config.rpc_timeout = 5 * sim::kSecond;
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks(), config);
  req->add_rsl(g.rsl(4, "required"));
  req->commit();
  // Crash host2 while its processes are initializing.
  g.grid->engine().schedule_at(2 * sim::kSecond,
                               [&] { g.grid->host("host2")->crash(); });
  g.grid->run();
  EXPECT_FALSE(outcome.released);
  EXPECT_EQ(outcome.status.code(), util::ErrorCode::kAborted);
  EXPECT_LT(g.grid->engine().now(), 2 * sim::kMinute);
}

// ---- editing --------------------------------------------------------------------

TEST(Coallocation, EditsRejectedAfterCommit) {
  SmallGrid g(2);
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  req->add_rsl(g.rsl(2, "required"));
  req->commit();
  EXPECT_EQ(req->add_subjob(make_job("host1", 1, SubjobStartType::kOptional))
                .status()
                .code(),
            util::ErrorCode::kFailedPrecondition);
  EXPECT_EQ(req->remove_subjob(req->subjobs()[0]).code(),
            util::ErrorCode::kFailedPrecondition);
  EXPECT_EQ(req->substitute_subjob(req->subjobs()[0],
                                   make_job("host2", 1,
                                            SubjobStartType::kRequired))
                .code(),
            util::ErrorCode::kFailedPrecondition);
  g.grid->run();
  EXPECT_TRUE(outcome.released);
}

TEST(Coallocation, RemoveSubjobCancelsItsJob) {
  SmallGrid g(2, testbed::CostModel::fast(),
              app::StartupProfile{.init_delay = 20 * sim::kSecond});
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  req->add_subjob(make_job("host1", 4, SubjobStartType::kRequired));
  const auto removable =
      req->add_subjob(make_job("host2", 4, SubjobStartType::kInteractive));
  ASSERT_TRUE(removable.is_ok());
  req->start();
  g.grid->run_until(5 * sim::kSecond);  // both accepted, still initializing
  ASSERT_TRUE(req->remove_subjob(removable.value()).is_ok());
  req->commit();
  g.grid->run();
  EXPECT_TRUE(outcome.released);
  EXPECT_EQ(outcome.config.total_processes, 4);
  auto view = req->subjob(removable.value());
  ASSERT_TRUE(view.is_ok());
  EXPECT_EQ(view.value().state, SubjobState::kDeleted);
}

TEST(Coallocation, AddSubjobWhilePipelineRuns) {
  SmallGrid g(3);
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  req->add_subjob(make_job("host1", 2, SubjobStartType::kRequired));
  req->start();
  g.grid->engine().schedule_at(sim::kSecond, [&] {
    req->add_subjob(make_job("host2", 2, SubjobStartType::kRequired));
    req->add_subjob(make_job("host3", 2, SubjobStartType::kRequired));
    req->commit();
  });
  g.grid->run();
  EXPECT_TRUE(outcome.released);
  EXPECT_EQ(outcome.config.total_processes, 6);
}

TEST(Coallocation, UnknownContactFailsSubjob) {
  SmallGrid g(1);
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  req->add_subjob(make_job("nowhere", 2, SubjobStartType::kRequired));
  req->commit();
  g.grid->run();
  EXPECT_FALSE(outcome.released);
  EXPECT_EQ(outcome.status.code(), util::ErrorCode::kAborted);
}

// ---- control / monitoring --------------------------------------------------------

TEST(Coallocation, KillTerminatesReleasedComputation) {
  SmallGrid g(2, testbed::CostModel::fast(),
              app::StartupProfile{.run_time = sim::kHour});
  Outcome outcome;
  auto* req = g.coallocator->create_request(outcome.callbacks());
  req->add_rsl(g.rsl(4, "required"));
  req->commit();
  g.grid->run_until(sim::kMinute);
  ASSERT_TRUE(outcome.released);
  req->kill();
  g.grid->run();
  EXPECT_EQ(req->state(), RequestState::kAborted);
  EXPECT_LT(sim::to_seconds(g.grid->engine().now()), 3600.0);
  EXPECT_EQ(g.stats.completions, 0);
}

TEST(Coallocation, PostReleaseFailureIsMonitoringEventByDefault) {
  SmallGrid g(2);
  // host2's processes run for an hour but host2 crashes mid-run.
  app::StartupProfile longrun{.run_time = sim::kHour};
  app::install_app(g.grid->executables(), "longapp", longrun, &g.stats);
  Outcome outcome;
  std::vector<std::pair<core::SubjobHandle, SubjobState>> events;
  auto cbs = outcome.callbacks();
  cbs.on_subjob = [&](core::SubjobHandle h, SubjobState s,
                      const util::Status&) { events.emplace_back(h, s); };
  auto* req = g.coallocator->create_request(cbs);
  req->add_subjob(make_job("host1", 2, SubjobStartType::kRequired, "longapp"));
  req->add_subjob(make_job("host2", 2, SubjobStartType::kRequired, "longapp"));
  req->commit();
  g.grid->run_until(sim::kMinute);
  ASSERT_TRUE(outcome.released);
  // Cancel host2's GRAM job out from under the computation.
  auto view = req->subjob(req->subjobs()[1]);
  ASSERT_TRUE(view.is_ok());
  g.grid->host("host2")->gatekeeper();
  // Kill via scheduler-level wall clock: simulate by cancelling through
  // the gatekeeper's job manager.
  g.grid->engine().schedule_after(sim::kSecond, [&] {
    auto* host = g.grid->host("host2");
    // Cancel all host2 jobs (there is exactly one).
    host->scheduler().cancel(view.value().gram_job);
  });
  g.grid->run();
  // The request is NOT aborted; the failure shows up as a subjob event.
  bool saw_post_release_failure = false;
  for (const auto& [h, s] : events) {
    if (h == req->subjobs()[1] && s == SubjobState::kFailed) {
      saw_post_release_failure = true;
    }
  }
  EXPECT_TRUE(saw_post_release_failure);
}

// ---- GRAB (atomic transactions) -----------------------------------------------------

TEST(Grab, AllocatesAtomically) {
  SmallGrid g(3);
  core::GrabAllocator grab(*g.coallocator);
  bool started = false;
  util::Status done(util::ErrorCode::kInternal, "unset");
  auto id = grab.allocate(g.rsl(8, "required"),
                          {.on_started = [&](const core::RuntimeConfig& c) {
                             started = true;
                             EXPECT_EQ(c.total_processes, 24);
                           },
                           .on_done = [&](const util::Status& s) { done = s; }});
  ASSERT_TRUE(id.is_ok()) << id.status().to_string();
  g.grid->run();
  EXPECT_TRUE(started);
  EXPECT_TRUE(done.is_ok());
}

TEST(Grab, IgnoresStartTypesEverythingRequired) {
  SmallGrid g(2);
  app::install_app(g.grid->executables(), "crasher",
                   app::StartupProfile{.mode = app::FailureMode::kFailedCheck},
                   &g.stats);
  core::GrabAllocator grab(*g.coallocator);
  bool started = false;
  util::Status done;
  // The crasher subjob is marked optional, but GRAB's atomic semantics
  // treat everything as required: the whole allocation must fail.
  const std::string rsl = testbed::rsl_multi({
      testbed::rsl_subjob("host1", 4, "app", "required"),
      testbed::rsl_subjob("host2", 4, "crasher", "optional"),
  });
  auto id = grab.allocate(
      rsl, {.on_started = [&](const core::RuntimeConfig&) { started = true; },
            .on_done = [&](const util::Status& s) { done = s; }});
  ASSERT_TRUE(id.is_ok());
  g.grid->run();
  EXPECT_FALSE(started);
  EXPECT_EQ(done.code(), util::ErrorCode::kAborted);
}

TEST(Grab, RejectsEmptyAndBadRequests) {
  SmallGrid g(1);
  core::GrabAllocator grab(*g.coallocator);
  EXPECT_FALSE(grab.allocate("", {}).is_ok());
  EXPECT_FALSE(grab.allocate("&(a=1)", {}).is_ok());
  EXPECT_FALSE(grab.allocate("+(&(count=2))", {}).is_ok());  // no exe/contact
}

TEST(Grab, CancelRollsBack) {
  SmallGrid g(2, testbed::CostModel::fast(),
              app::StartupProfile{.run_time = sim::kHour});
  core::GrabAllocator grab(*g.coallocator);
  util::Status done;
  auto id = grab.allocate(
      g.rsl(4, "required"),
      {.on_started = [](const core::RuntimeConfig&) {},
       .on_done = [&](const util::Status& s) { done = s; }});
  ASSERT_TRUE(id.is_ok());
  g.grid->run_until(sim::kMinute);
  grab.cancel(id.value());
  g.grid->run();
  EXPECT_EQ(done.code(), util::ErrorCode::kAborted);
}

// ---- agent strategies ------------------------------------------------------------------

TEST(Strategies, ReplacementAgentSubstitutesFromPool) {
  SmallGrid g(4);
  app::install_app(g.grid->executables(), "crasher",
                   app::StartupProfile{.mode = app::FailureMode::kFailedCheck},
                   &g.stats);
  Outcome outcome;
  core::ReplacementAgent agent(
      *g.coallocator,
      {.spare_contacts = {"host3", "host4"}, .auto_commit = true},
      outcome.callbacks());
  agent.request().add_subjob(make_job("host1", 4, SubjobStartType::kRequired));
  agent.request().add_subjob(
      make_job("host2", 4, SubjobStartType::kInteractive, "crasher"));
  agent.request().start();
  g.grid->run();
  // The substitute keeps the failed subjob's shape, including its
  // executable, so the "crasher" fails on host3 and host4 too; once the
  // pool is exhausted the agent commits to what it holds (host1).
  EXPECT_EQ(agent.substitutions_made(), 2u);
  EXPECT_TRUE(agent.spares_left().empty());
  EXPECT_TRUE(outcome.released);
  EXPECT_EQ(outcome.config.total_processes, 4);
  EXPECT_EQ(outcome.config.subjobs[0].contact, "host1");
}

TEST(Strategies, ReplacementAgentRecoversWithHealthySpare) {
  // A host whose *resource* is down (crashed gatekeeper) rather than whose
  // application is broken: the substitute runs the same executable on a
  // healthy machine and succeeds — the §3.2 replacement scenario.
  SmallGrid g(3);
  core::RequestConfig config;
  config.rpc_timeout = 5 * sim::kSecond;
  g.grid->host("host2")->crash();
  Outcome outcome;
  core::ReplacementAgent agent(*g.coallocator,
                               {.spare_contacts = {"host3"}},
                               outcome.callbacks());
  agent.request().add_subjob(make_job("host1", 4, SubjobStartType::kRequired));
  agent.request().add_subjob(
      make_job("host2", 4, SubjobStartType::kInteractive));
  agent.request().start();
  g.grid->run();
  EXPECT_EQ(agent.substitutions_made(), 1u);
  EXPECT_TRUE(outcome.released);
  EXPECT_EQ(outcome.config.total_processes, 8);
  EXPECT_EQ(outcome.config.subjobs[1].contact, "host3");
}

TEST(Strategies, MinimumCountAgentDropsLaggards) {
  SmallGrid g(4);
  app::install_app(g.grid->executables(), "slow",
                   app::StartupProfile{.init_delay = 20 * sim::kMinute},
                   &g.stats);
  Outcome outcome;
  core::MinimumCountAgent agent(
      *g.coallocator,
      {.minimum_processes = 8, .decision_deadline = sim::kHour},
      outcome.callbacks());
  agent.request().add_subjob(
      make_job("host1", 4, SubjobStartType::kInteractive));
  agent.request().add_subjob(
      make_job("host2", 4, SubjobStartType::kInteractive));
  agent.request().add_subjob(
      make_job("host3", 4, SubjobStartType::kInteractive, "slow"));
  agent.request().start();
  g.grid->run_until(5 * sim::kMinute);
  // 8 fast processes checked in; the slow subjob was dropped and the
  // request committed without it (the §2 scenario resolution).
  EXPECT_TRUE(outcome.released);
  EXPECT_EQ(outcome.config.total_processes, 8);
  g.grid->run();
  EXPECT_TRUE(outcome.terminal);
}

TEST(Strategies, MinimumCountAgentAbortsAtDeadline) {
  SmallGrid g(2);
  app::install_app(g.grid->executables(), "slow",
                   app::StartupProfile{.init_delay = 20 * sim::kMinute},
                   &g.stats);
  Outcome outcome;
  core::MinimumCountAgent agent(
      *g.coallocator,
      {.minimum_processes = 8, .decision_deadline = 2 * sim::kMinute},
      outcome.callbacks());
  agent.request().add_subjob(
      make_job("host1", 4, SubjobStartType::kInteractive, "slow"));
  agent.request().add_subjob(
      make_job("host2", 4, SubjobStartType::kInteractive, "slow"));
  agent.request().start();
  g.grid->run();
  EXPECT_FALSE(outcome.released);
  EXPECT_EQ(outcome.status.code(), util::ErrorCode::kAborted);
}

TEST(Strategies, FirstAvailableCommitsToFastestResource) {
  SmallGrid g(3);
  app::install_app(g.grid->executables(), "slow",
                   app::StartupProfile{.init_delay = 5 * sim::kMinute},
                   &g.stats);
  Outcome outcome;
  std::vector<rsl::JobRequest> alternatives = {
      make_job("host1", 4, SubjobStartType::kInteractive, "slow"),
      make_job("host2", 4, SubjobStartType::kInteractive),  // fast
      make_job("host3", 4, SubjobStartType::kInteractive, "slow"),
  };
  core::FirstAvailableAgent agent(*g.coallocator, std::move(alternatives),
                                  outcome.callbacks());
  g.grid->run();
  EXPECT_TRUE(outcome.released);
  ASSERT_EQ(outcome.config.subjobs.size(), 1u);
  EXPECT_EQ(outcome.config.subjobs[0].contact, "host2");
  EXPECT_NE(agent.winner(), 0u);
}

TEST(Strategies, FirstAvailableAbortsWhenAllFail) {
  SmallGrid g(2);
  app::install_app(g.grid->executables(), "crasher",
                   app::StartupProfile{.mode = app::FailureMode::kFailedCheck},
                   &g.stats);
  Outcome outcome;
  std::vector<rsl::JobRequest> alternatives = {
      make_job("host1", 2, SubjobStartType::kInteractive, "crasher"),
      make_job("host2", 2, SubjobStartType::kInteractive, "crasher"),
  };
  core::FirstAvailableAgent agent(*g.coallocator, std::move(alternatives),
                                  outcome.callbacks());
  g.grid->run();
  EXPECT_FALSE(outcome.released);
  EXPECT_EQ(outcome.status.code(), util::ErrorCode::kAborted);
}

}  // namespace
}  // namespace grid
